package sched

import (
	"context"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
)

// --- online re-optimization: deltas ------------------------------------------

// Delta is one mutation of a scheduling instance — a job arriving or
// departing, a job changing size, a machine joining or failing. Deltas are
// the unit of the online workload: Engine.Resolve applies one to a solved
// instance and re-enters a warm dual search instead of solving the mutated
// instance cold.
type Delta = core.Delta

// DeltaKind enumerates the supported instance mutations.
type DeltaKind = core.DeltaKind

// Delta kinds.
const (
	DeltaJobArrive     = core.DeltaJobArrive
	DeltaJobDepart     = core.DeltaJobDepart
	DeltaJobResize     = core.DeltaJobResize
	DeltaMachineAdd    = core.DeltaMachineAdd
	DeltaMachineRemove = core.DeltaMachineRemove
)

// ArriveJob builds a job-arrival delta for base-size environments
// (identical, uniform, restricted; for restricted also set Eligible).
func ArriveJob(class int, size float64) Delta { return core.ArriveJob(class, size) }

// ArriveJobUnrelated builds a job-arrival delta with per-machine processing
// times.
func ArriveJobUnrelated(class int, proc []float64) Delta {
	return core.ArriveJobUnrelated(class, proc)
}

// DepartJob builds a job-departure delta.
func DepartJob(job int) Delta { return core.DepartJob(job) }

// ResizeJob builds a size-change delta for base-size environments.
func ResizeJob(job int, size float64) Delta { return core.ResizeJob(job, size) }

// AddMachine builds a machine-addition delta (see core.AddMachine for the
// per-environment field semantics).
func AddMachine(speed float64, proc, setup []float64, eligible []int) Delta {
	return core.AddMachine(speed, proc, setup, eligible)
}

// RemoveMachine builds a machine-failure delta.
func RemoveMachine(machine int) Delta { return core.RemoveMachine(machine) }

// --- handles -----------------------------------------------------------------

// Handle is a solved instance kept warm for incremental re-solving: it pins
// the instance, its solve result, and (inside the engine) the retained
// solver state — the LP relaxation and the accepted bracket edge of the dual
// search. Obtain one with Engine.Open, mutate it with Engine.Resolve.
//
// A Handle is immutable; Resolve returns a new Handle for the post-delta
// instance. The retained solver state, however, is consumed by the first
// Resolve that uses it (it is patched in place) — resolving the same Handle
// twice is correct but only the first call gets the patched-relaxation fast
// path.
type Handle struct {
	eng *Engine
	in  *Instance
	fp  string
	res Result
}

// Instance returns the instance this handle solved.
func (h *Handle) Instance() *Instance { return h.in }

// Result returns the solve outcome for the handle's instance.
func (h *Handle) Result() Result { return h.res }

// Fingerprint returns the canonical fingerprint of the handle's instance.
func (h *Handle) Fingerprint() string { return h.fp }

// Open solves an instance and returns a re-solvable handle: the solve runs
// like Engine.Solve, but the engine additionally retains the solver's
// warm-start state (for the randomized rounding, its LP relaxation and the
// dual search's accepted bracket edge) keyed by the instance fingerprint, so
// a subsequent Resolve on the handle re-enters the search warm.
func (e *Engine) Open(ctx context.Context, in *Instance, opts ...SolveOption) (*Handle, error) {
	if in == nil {
		return nil, fmt.Errorf("sched: Open: nil instance")
	}
	cfg := e.config(opts)
	cfg.retain = true
	res, err := e.solveOne(ctx, in, cfg)
	if err != nil {
		return nil, err
	}
	return &Handle{eng: e, in: in, fp: in.Fingerprint(), res: res}, nil
}

// Resolve applies a delta to a solved handle and re-solves the mutated
// instance warm. Everything the previous solve certified is carried across
// the delta by the monotonicity lemmas (core.Delta):
//
//   - the previous schedule is patched into a feasible witness of the new
//     instance (Delta.PatchSchedule) — its makespan is a certified upper
//     bound, and it is the fallback of last resort;
//   - the previous lower bound transfers when the delta provably never
//     shrinks the optimum (Delta.RaisesOn);
//   - the dual search's accepted bracket edge lifts constructively
//     (Delta.AcceptedCap), so the new search opens on a tight bracket
//     instead of bootstrapping cold; and
//   - the retained LP relaxation is patched in place (columns, clamps, RHS)
//     and re-enters the simplex from its previous basis, falling back to a
//     cold rebuild when the delta defeats patching.
//
// The fallback chain is total: when any warm component is unavailable — no
// retained state (already consumed, evicted, or the previous solve used a
// solver without retainable state), an unpatched relaxation, no witness —
// Resolve degrades toward an ordinary cold solve of the mutated instance.
// The verdict is always equivalent to Solve(delta.Apply(prev)); only
// latency differs.
func (e *Engine) Resolve(ctx context.Context, prev *Handle, d Delta, opts ...SolveOption) (*Handle, error) {
	if prev == nil || prev.in == nil {
		return nil, fmt.Errorf("sched: Resolve: nil handle")
	}
	if prev.eng != e {
		return nil, fmt.Errorf("sched: Resolve: handle belongs to a different engine")
	}
	newIn, err := d.Apply(prev.in)
	if err != nil {
		return nil, fmt.Errorf("sched: Resolve: %w", err)
	}
	cfg := e.config(opts)
	cfg.retain = true

	// Certified knowledge transfer: witness, lower bound, accepted cap.
	witness := d.PatchSchedule(prev.res.Schedule, prev.in, newIn)
	witnessMs := math.Inf(1)
	if witness != nil {
		witnessMs = witness.Makespan(newIn)
		if !core.IsFinite(witnessMs) {
			witness = nil
		}
	}
	lower := 0.0
	if d.RaisesOn(prev.in) && prev.res.LowerBound > 0 {
		lower = prev.res.LowerBound
	}

	// Retained solver state is consumed exclusively: Take removes it, so a
	// concurrent Resolve of the same handle can never share (and race on)
	// the mutable relaxation.
	st := e.states.Take(prev.fp)
	searchUpper := witnessMs
	if st != nil {
		accepted := st.Accepted
		if accepted <= 0 {
			accepted = st.Upper
		}
		if c := d.AcceptedCap(accepted, prev.in, newIn); c < searchUpper {
			searchUpper = c
		}
	}

	if witness != nil {
		ws := &core.WarmStart{Lower: lower, Upper: searchUpper, Fallback: witness}
		if st != nil && st.Rel != nil && core.IsFinite(searchUpper) {
			// Patch the retained relaxation in place. On error the
			// relaxation is unusable for this delta (structural change,
			// bracket above its envelope) and is dropped — the solver then
			// rebuilds cold, which is the correctness-preserving fallback.
			if perr := st.Rel.ApplyDelta(d, newIn, searchUpper); perr == nil {
				ws.State = st.Rel
			}
		}
		cfg.warm = ws
		cfg.seed = &engine.CachedBounds{
			Upper:     witnessMs,
			Lower:     lower,
			Schedule:  witness,
			Algorithm: prev.res.Algorithm + "+delta",
		}
	} else if lower > 0 {
		cfg.seed = &engine.CachedBounds{Upper: math.Inf(1), Lower: lower}
	}

	res, err := e.solveOne(ctx, newIn, cfg)
	if err != nil {
		return nil, err
	}
	return &Handle{eng: e, in: newIn, fp: newIn.Fingerprint(), res: res}, nil
}

// StreamResult is one event's outcome within an Engine.Stream run.
type StreamResult struct {
	// Delta is the event, as passed in.
	Delta Delta
	// Result is the re-solve outcome; meaningful only when Err is nil.
	Result Result
	// Latency is the event's wall-clock re-solve time (the online-serving
	// metric: how long the schedule was stale after the event).
	Latency time.Duration
	// Err is the per-event failure (an inapplicable delta, a solver error,
	// the context's cancellation). The stream continues from the last good
	// handle.
	Err error
}

// Stream folds a delta sequence over an instance: Open the initial
// instance, then Resolve each delta in order, each re-solve warm-started
// from its predecessor. It returns the final handle and one StreamResult
// per delta. An event whose delta fails to apply (or whose solve fails) is
// recorded in its StreamResult and skipped — the stream continues from the
// last successfully solved handle. Stream fails outright only when the
// initial Open does, or when ctx is cancelled (the remaining events are
// marked with the context error).
func (e *Engine) Stream(ctx context.Context, in *Instance, deltas []Delta, opts ...SolveOption) (*Handle, []StreamResult, error) {
	h, err := e.Open(ctx, in, opts...)
	if err != nil {
		return nil, nil, err
	}
	out := make([]StreamResult, len(deltas))
	for i, d := range deltas {
		out[i].Delta = d
		if ctx.Err() != nil {
			out[i].Err = ctx.Err()
			continue
		}
		start := time.Now()
		next, rerr := e.Resolve(ctx, h, d, opts...)
		out[i].Latency = time.Since(start)
		if rerr != nil {
			out[i].Err = rerr
			continue
		}
		out[i].Result = next.res
		h = next
	}
	return h, out, nil
}

// ReadDeltaStream parses an instance plus delta sequence written by
// WriteDeltaStream (the `instgen -stream` / `schedbench -online`
// interchange format).
func ReadDeltaStream(r io.Reader) (*Instance, []Delta, error) {
	return core.ReadDeltaStream(r)
}

// WriteDeltaStream serializes an instance and a delta sequence as a single
// JSON document.
func WriteDeltaStream(w io.Writer, in *Instance, deltas []Delta) error {
	return core.WriteDeltaStream(w, in, deltas)
}
