package sched_test

import (
	"context"
	"fmt"
	"log"

	"repro"
)

// ExampleNew builds a long-lived engine handle and solves one instance
// through automatic strongest-applicable dispatch.
func ExampleNew() {
	// Four jobs in two setup classes on two identical machines.
	in, err := sched.NewIdentical(
		[]float64{4, 3, 2, 2}, // job sizes
		[]int{0, 0, 1, 1},     // job classes
		[]float64{2, 3},       // setup sizes per class
		2,                     // machines
	)
	if err != nil {
		log.Fatal(err)
	}

	eng, err := sched.New()
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Solve(context.Background(), in, sched.WithEps(0.25))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s found makespan %.0f (certified ≥ %.0f)\n",
		res.Algorithm, res.Makespan, res.LowerBound)
	// Output:
	// ptas(eps=0.25) found makespan 9 (certified ≥ 9)
}

// ExampleEngine_SolveBatch solves several instances through the engine's
// worker pool — the service mode. Fingerprint-identical instances in one
// batch warm-start from each other's bounds via the shared cache.
func ExampleEngine_SolveBatch() {
	in, err := sched.NewIdentical(
		[]float64{4, 3, 2, 2}, []int{0, 0, 1, 1}, []float64{2, 3}, 2)
	if err != nil {
		log.Fatal(err)
	}

	eng, err := sched.New(sched.WithWorkers(2))
	if err != nil {
		log.Fatal(err)
	}
	batch := []*sched.Instance{in, in.Clone(), in.Clone()}
	for i, br := range eng.SolveBatch(context.Background(), batch) {
		if br.Err != nil {
			log.Fatal(br.Err)
		}
		fmt.Printf("instance %d: makespan %.0f\n", i, br.Result.Makespan)
	}
	fmt.Printf("fingerprints cached: %d\n", eng.CachedFingerprints())
	// Output:
	// instance 0: makespan 9
	// instance 1: makespan 9
	// instance 2: makespan 9
	// fingerprints cached: 1
}

// ExampleWithEvents streams a solve's anytime progress — incumbent
// makespans converging down, certified lower bounds converging up — to a
// channel as the solver publishes them.
func ExampleWithEvents() {
	in, err := sched.NewIdentical(
		[]float64{4, 3, 2, 2}, []int{0, 0, 1, 1}, []float64{2, 3}, 2)
	if err != nil {
		log.Fatal(err)
	}

	eng, err := sched.New()
	if err != nil {
		log.Fatal(err)
	}
	events := make(chan sched.Event, 16)
	if _, err := eng.Solve(context.Background(), in,
		sched.WithAlgorithm("greedy"), sched.WithEvents(events)); err != nil {
		log.Fatal(err)
	}
	for len(events) > 0 {
		ev := <-events
		fmt.Printf("%s %.0f\n", ev.Kind, ev.Value)
	}
	// Output:
	// incumbent 11
	// lower-bound 8
}
