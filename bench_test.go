package sched

// The benchmark harness regenerates every experiment of the reproduction
// (DESIGN.md §4, EXPERIMENTS.md): BenchmarkE1 … BenchmarkE11 run the
// corresponding experiment end-to-end (in quick mode so `go test -bench=.`
// terminates in reasonable time; `go run ./cmd/schedbench -all` runs the
// full sizes and prints the tables). The remaining benchmarks measure the
// individual algorithms.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/baseline"
	"repro/internal/exact"
	"repro/internal/experiments"
	"repro/internal/gen"
	"repro/internal/lp"
	"repro/internal/ptas"
	"repro/internal/rounding"
	"repro/internal/special"
)

func benchExperiment(b *testing.B, id string) {
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(experiments.Config{Seed: 1, Quick: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1LPTLemma21(b *testing.B)           { benchExperiment(b, "E1") }
func BenchmarkE2PTASvsEps(b *testing.B)            { benchExperiment(b, "E2") }
func BenchmarkE3Figure1(b *testing.B)              { benchExperiment(b, "E3") }
func BenchmarkE4RandomizedRounding(b *testing.B)   { benchExperiment(b, "E4") }
func BenchmarkE5IntegralityGap(b *testing.B)       { benchExperiment(b, "E5") }
func BenchmarkE6SetCoverSeparation(b *testing.B)   { benchExperiment(b, "E6") }
func BenchmarkE7ClassUniformRA(b *testing.B)       { benchExperiment(b, "E7") }
func BenchmarkE8ClassUniformPT(b *testing.B)       { benchExperiment(b, "E8") }
func BenchmarkE9PlaceholderAblation(b *testing.B)  { benchExperiment(b, "E9") }
func BenchmarkE10IterationAblation(b *testing.B)   { benchExperiment(b, "E10") }
func BenchmarkE11RuntimeScaling(b *testing.B)      { benchExperiment(b, "E11") }
func BenchmarkE12HeuristicLandscape(b *testing.B)  { benchExperiment(b, "E12") }
func BenchmarkE13LocalSearchAblation(b *testing.B) { benchExperiment(b, "E13") }
func BenchmarkE14SplittableTradeoff(b *testing.B)  { benchExperiment(b, "E14") }

// --- algorithm micro-benchmarks --------------------------------------------

func BenchmarkLemma21LPT(b *testing.B) {
	for _, n := range []int{100, 1000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			in := gen.Uniform(rng, gen.Params{N: n, M: 8, K: 10})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := baseline.Lemma21LPT(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkGreedy(b *testing.B) {
	for _, n := range []int{100, 1000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			in := gen.Unrelated(rng, gen.Params{N: n, M: 8, K: 10})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := baseline.Greedy(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPTAS(b *testing.B) {
	for _, eps := range []float64{0.5, 0.25} {
		b.Run(fmt.Sprintf("eps=%.2f", eps), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			in := gen.Uniform(rng, gen.Params{N: 14, M: 4, K: 3})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := ptas.Schedule(context.Background(), in, ptas.Options{Eps: eps}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkRoundingLPSolve(b *testing.B) {
	for _, n := range []int{8, 16} {
		b.Run(fmt.Sprintf("n=m=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			in := gen.Unrelated(rng, gen.Params{N: n, M: n, K: 4})
			g, err := baseline.Greedy(in)
			if err != nil {
				b.Fatal(err)
			}
			T := g.Makespan(in)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := rounding.SolveLP(in, T); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// roundingGuessSetup builds the M=10, N=100, K=8 unrelated instance and the
// descending guess trajectory T₀ > T₁ > … a dual-approximation search
// walks: the shape whose per-guess LP cost the warm-start machinery exists
// to kill. The trajectory spans feasible and infeasible guesses.
func roundingGuessSetup(b *testing.B) (in *Instance, ub float64, guesses []float64) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	in = gen.Unrelated(rng, gen.Params{N: 100, M: 10, K: 8})
	g, err := baseline.Greedy(in)
	if err != nil {
		b.Fatal(err)
	}
	ub = g.Makespan(in)
	for T := ub; len(guesses) < 8; T *= 0.85 {
		guesses = append(guesses, T)
	}
	return in, ub, guesses
}

// BenchmarkRoundingGuessCold is the pre-relaxation dense path: every guess
// rebuilds the whole LP (O(M·N) variables and constraints) and a fresh
// tableau from scratch. Compare with BenchmarkRoundingGuessWarm.
func BenchmarkRoundingGuessCold(b *testing.B) {
	in, _, guesses := roundingGuessSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, T := range guesses {
			f, err := rounding.SolveLP(in, T)
			if err != nil {
				b.Fatal(err)
			}
			f.Release()
		}
	}
}

// BenchmarkRoundingGuessWarm measures the same guess trajectory through a
// Relaxation: one build at T=ub, then in-place re-solves (mutated RHS and
// bounds, basis warm-started via dual simplex) per guess.
func BenchmarkRoundingGuessWarm(b *testing.B) {
	for _, kind := range []lp.BackendKind{lp.Dense, lp.Sparse} {
		b.Run(string(kind), func(b *testing.B) {
			in, ub, guesses := roundingGuessSetup(b)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rel, err := rounding.NewRelaxation(in, rounding.RelaxationConfig{Envelope: ub, Backend: kind})
				if err != nil {
					b.Fatal(err)
				}
				for _, T := range guesses {
					if _, err := rel.ReSolve(T); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkLPBackend compares a single cold solve of the rounding
// relaxation at T=ub across the LP solvers: the legacy tableau
// (Problem.Solve via SolveLP), the dense backend and the sparse revised
// backend.
func BenchmarkLPBackend(b *testing.B) {
	run := func(b *testing.B, solve func() error) {
		b.Helper()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := solve(); err != nil {
				b.Fatal(err)
			}
		}
	}
	in, ub, _ := roundingGuessSetup(b)
	// The build phase alone: constructing the ILP-UM model (every AddVar /
	// AddConstraint call) plus the backend's standard form, no solving. This
	// is the phase the append-only coefficient-triplet Problem storage
	// targets (AddConstraint previously built a per-row dedup map).
	b.Run("build", func(b *testing.B) {
		run(b, func() error {
			_, err := rounding.NewRelaxation(in, rounding.RelaxationConfig{Envelope: ub})
			return err
		})
	})
	b.Run("legacy", func(b *testing.B) {
		run(b, func() error {
			f, err := rounding.SolveLP(in, ub)
			f.Release()
			return err
		})
	})
	for _, kind := range []lp.BackendKind{lp.Dense, lp.Sparse} {
		b.Run(string(kind), func(b *testing.B) {
			run(b, func() error {
				rel, err := rounding.NewRelaxation(in, rounding.RelaxationConfig{Envelope: ub, Backend: kind})
				if err != nil {
					return err
				}
				_, err = rel.ReSolve(ub)
				return err
			})
		})
	}
	// The interior-point cold path on the same instance: Mehrotra iterations
	// over the sparse Cholesky of the normal equations, crossover, and the
	// simplex re-certification pivots — the whole hybrid solve.
	b.Run("ipm-cold", func(b *testing.B) {
		run(b, func() error {
			rel, err := rounding.NewRelaxation(in, rounding.RelaxationConfig{Envelope: ub, Backend: lp.IPM})
			if err != nil {
				return err
			}
			_, err = rel.ReSolve(ub)
			return err
		})
	})
}

// BenchmarkColdBuildLarge is the anchor shape of the LP-backend acceptance
// run (M=20, N=200, K=12 — 4220 rows): one relaxation build plus the cold
// solve at T=ub, per backend. This is the regime the auto trigger targets;
// auto must track ipm here, and ipm must beat the pure sparse simplex.
func BenchmarkColdBuildLarge(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	in := gen.Unrelated(rng, gen.Params{N: 200, M: 20, K: 12})
	g, err := baseline.Greedy(in)
	if err != nil {
		b.Fatal(err)
	}
	ub := g.Makespan(in)
	for _, tc := range []struct {
		name       string
		kind       lp.BackendKind
		noPresolve bool
	}{
		{"simplex", lp.Sparse, false},
		{"ipm", lp.IPM, false},
		{"auto", lp.Auto, false},
		// The unpresolved baselines: what the same backends cost without
		// the reduction + equilibration pipeline in front.
		{"simplex-nopresolve", lp.Sparse, true},
		{"ipm-nopresolve", lp.IPM, true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rel, err := rounding.NewRelaxation(in, rounding.RelaxationConfig{Envelope: ub, Backend: tc.kind, NoPresolve: tc.noPresolve})
				if err != nil {
					b.Fatal(err)
				}
				frac, err := rel.ReSolve(ub)
				if err != nil {
					b.Fatal(err)
				}
				if frac == nil {
					b.Fatal("envelope guess infeasible")
				}
			}
		})
	}
}

// benchDualSearch runs the full randomized-rounding dual search (greedy
// bootstrap, one relaxation build, warm per-guess LP re-solves, rounding)
// at the M=10/N=100/K=8 reference shape with the given speculative search
// parallelism. Seq vs SpecK isolates the pluggable-strategy win: fewer
// serial search rounds, k concurrent LP re-solves on per-worker relaxation
// clones. The wall-clock speedup requires spare cores (GOMAXPROCS > 1);
// on a single-CPU runner speculation degrades to in-batch bisection and
// should track Seq.
func benchDualSearch(b *testing.B, workers int) {
	in, _, _ := roundingGuessSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := rounding.Schedule(context.Background(), in, rounding.Options{
			Rng:           rand.New(rand.NewSource(1)),
			SearchWorkers: workers,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Schedule == nil {
			b.Fatal("no schedule")
		}
	}
}

func BenchmarkDualSearchSeq(b *testing.B)   { benchDualSearch(b, 1) }
func BenchmarkDualSearchSpec2(b *testing.B) { benchDualSearch(b, 2) }
func BenchmarkDualSearchSpec4(b *testing.B) { benchDualSearch(b, 4) }

func BenchmarkRandomizedRoundingFull(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	in := gen.Unrelated(rng, gen.Params{N: 16, M: 6, K: 4})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rounding.Schedule(context.Background(), in, rounding.Options{Rng: rng}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClassUniformRA(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	in := gen.RestrictedClassUniform(rng, gen.Params{N: 30, M: 6, K: 5})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := special.ScheduleClassUniformRA(context.Background(), in, special.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClassUniformPT(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	in := gen.UnrelatedClassUniform(rng, gen.Params{N: 30, M: 6, K: 5})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := special.ScheduleClassUniformPT(context.Background(), in, special.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBranchAndBound(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	in := gen.Uniform(rng, gen.Params{N: 12, M: 3, K: 3})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, st := exact.BranchAndBound(context.Background(), in, exact.Options{}); !st.Proven {
			b.Fatal("not proven")
		}
	}
}

// --- engine benchmarks -----------------------------------------------------

// BenchmarkSolveEngine measures registry dispatch plus the selected solver,
// per machine environment (compare against the direct algorithm benchmarks
// above to see the dispatch overhead).
func BenchmarkSolveEngine(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		name string
		in   *Instance
	}{
		{"identical", gen.Identical(rng, gen.Params{N: 14, M: 4, K: 3})},
		{"uniform", gen.Uniform(rng, gen.Params{N: 14, M: 4, K: 3})},
		{"unrelated", gen.Unrelated(rng, gen.Params{N: 14, M: 4, K: 3})},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Solve(tc.in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSolveBatch measures the engine's service mode: a batch of
// instances solved through the worker pool. The "cold" variant disables the
// warm-start cache so every iteration pays full solver cost; the "warm"
// variant models steady-state service traffic, where iteration two onward
// re-solves fingerprints the cache already knows.
func BenchmarkSolveBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	ins := make([]*Instance, 16)
	for i := range ins {
		ins[i] = gen.Uniform(rng, gen.Params{N: 14, M: 4, K: 3})
	}
	for _, mode := range []struct {
		name string
		opts []SolveOption
	}{
		{"cold", []SolveOption{WithoutWarmStart()}},
		{"warm", nil},
	} {
		b.Run(mode.name, func(b *testing.B) {
			eng, err := New(WithWorkers(4))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, br := range eng.SolveBatch(context.Background(), ins, mode.opts...) {
					if br.Err != nil {
						b.Fatal(br.Err)
					}
				}
			}
		})
	}
}

// BenchmarkGovernedBatchPortfolio measures the governor under the
// multiplicative load it was built for — a batch of portfolio solves, each
// member running a wide speculative search — against the WithUngoverned
// baseline, whose layers each size themselves independently. The governed
// variant holds concurrent LP solves at the token budget; the ungoverned
// one oversubscribes (see `schedbench -oversub` for the CLI form).
func BenchmarkGovernedBatchPortfolio(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	ins := make([]*Instance, 8)
	for i := range ins {
		ins[i] = gen.Unrelated(rng, gen.Params{N: 24, M: 4, K: 3})
	}
	for _, mode := range []struct {
		name string
		opts []EngineOption
	}{
		{"governed", nil},
		{"ungoverned", []EngineOption{WithUngoverned()}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			eng, err := New(append(mode.opts, WithBoundCache(0))...)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := eng.SolveBatch(context.Background(), ins,
					WithPortfolio(), WithSearchWorkers(4),
					WithSeed(3), WithoutWarmStart())
				for _, br := range res {
					if br.Err != nil {
						b.Fatal(br.Err)
					}
				}
			}
		})
	}
}

// BenchmarkBoundCacheHit measures a fingerprint-cache hit: re-solving an
// instance the engine has already solved, so the dual search starts
// narrowed to the cached bounds. Compare against BenchmarkSolveEngine to
// see the warm-start win.
func BenchmarkBoundCacheHit(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	in := gen.Uniform(rng, gen.Params{N: 14, M: 4, K: 3})
	eng, err := New()
	if err != nil {
		b.Fatal(err)
	}
	if _, err := eng.Solve(context.Background(), in); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Solve(context.Background(), in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPortfolio measures the concurrent race of all applicable solvers
// (wall-clock should track the slowest member, not the sum).
func BenchmarkPortfolio(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		name string
		in   *Instance
	}{
		{"identical", gen.Identical(rng, gen.Params{N: 14, M: 4, K: 3})},
		{"unrelated", gen.Unrelated(rng, gen.Params{N: 14, M: 4, K: 3})},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Portfolio(context.Background(), tc.in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- incremental re-solve benchmarks -----------------------------------------

// onlineBenchInstance is the PR's online-workload anchor shape: M=10 machines,
// N=100 jobs, K=8 classes, unrelated times, sparse LP backend (the default).
func onlineBenchInstance(rng *rand.Rand) *Instance {
	return gen.Unrelated(rng, gen.Params{N: 100, M: 10, K: 8})
}

// arrivalDelta draws a fresh random job arrival (per-machine times), so no
// two iterations mutate toward a fingerprint-identical instance.
func arrivalDelta(rng *rand.Rand, in *Instance) Delta {
	proc := make([]float64, in.M)
	for i := range proc {
		proc[i] = 1 + float64(rng.Intn(99))
	}
	return ArriveJobUnrelated(rng.Intn(in.K), proc)
}

// BenchmarkResolveDelta measures the warm re-solve of a single job arrival:
// Engine.Resolve entering the dual search with the patched witness, the
// lifted accept bracket and the in-place-patched LP relaxation. The handle
// is re-opened outside the timer each iteration (retained state is consumed
// by its Resolve). Compare against BenchmarkResolveCold for the speedup.
func BenchmarkResolveDelta(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	in := onlineBenchInstance(rng)
	// Bound cache off: the measurement is the Resolve pipeline itself, not
	// the fingerprint cache.
	eng, err := New(WithBoundCache(0))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		h, err := eng.Open(ctx, in)
		if err != nil {
			b.Fatal(err)
		}
		d := arrivalDelta(rng, in)
		b.StartTimer()
		if _, err := eng.Resolve(ctx, h, d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkResolveCold is the baseline for BenchmarkResolveDelta: the same
// post-arrival instance solved from scratch.
func BenchmarkResolveCold(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	in := onlineBenchInstance(rng)
	eng, err := New(WithBoundCache(0))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		newIn, err := arrivalDelta(rng, in).Apply(in)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := eng.Solve(ctx, newIn, WithoutWarmStart()); err != nil {
			b.Fatal(err)
		}
	}
}
