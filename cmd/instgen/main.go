// Command instgen generates random scheduling instances in the library's
// JSON format.
//
// Usage:
//
//	instgen -kind uniform -n 50 -m 8 -k 5 -seed 3 > instance.json
//	instgen -kind unrelated -n 20 -m 4 -k 3
//	instgen -kind restricted-cu ...       (class-uniform restrictions)
//	instgen -kind unrelated-cu ...        (class-uniform processing times)
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/core"
	"repro/internal/gen"
)

func main() {
	var (
		kind     = flag.String("kind", "uniform", "identical|uniform|unrelated|restricted|restricted-cu|unrelated-cu")
		n        = flag.Int("n", 20, "number of jobs")
		m        = flag.Int("m", 4, "number of machines")
		k        = flag.Int("k", 3, "number of setup classes")
		seed     = flag.Int64("seed", 1, "random seed")
		minJob   = flag.Int("min-job", 1, "minimum job size")
		maxJob   = flag.Int("max-job", 100, "maximum job size")
		minSetup = flag.Int("min-setup", 1, "minimum setup size")
		maxSetup = flag.Int("max-setup", 50, "maximum setup size")
	)
	flag.Parse()
	rng := rand.New(rand.NewSource(*seed))
	p := gen.Params{
		N: *n, M: *m, K: *k,
		MinJob: *minJob, MaxJob: *maxJob,
		MinSetup: *minSetup, MaxSetup: *maxSetup,
	}
	var in *core.Instance
	switch *kind {
	case "identical":
		in = gen.Identical(rng, p)
	case "uniform":
		in = gen.Uniform(rng, p)
	case "unrelated":
		in = gen.Unrelated(rng, p)
	case "restricted":
		in = gen.Restricted(rng, p)
	case "restricted-cu":
		in = gen.RestrictedClassUniform(rng, p)
	case "unrelated-cu":
		in = gen.UnrelatedClassUniform(rng, p)
	default:
		fmt.Fprintf(os.Stderr, "instgen: unknown kind %q\n", *kind)
		os.Exit(2)
	}
	if err := in.WriteJSON(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "instgen:", err)
		os.Exit(1)
	}
}
