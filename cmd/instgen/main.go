// Command instgen generates random scheduling instances in the library's
// JSON format.
//
// Usage:
//
//	instgen -kind uniform -n 50 -m 8 -k 5 -seed 3 -o instance.json
//	instgen -kind uniform -n 50 -m 8 -k 5 > instance.json        (stdout default)
//	instgen -kind unrelated -n 20 -m 4 -k 3
//	instgen -kind restricted-cu ...       (class-uniform restrictions)
//	instgen -kind unrelated-cu ...        (class-uniform processing times)
//	instgen -kind unrelated -check        solve via the engine, summary on stderr
//	instgen -kind unrelated -stream 50    instance + 50-event delta sequence
//	                                      (the `schedbench -online` input)
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/gen"
)

func main() {
	var (
		kind     = flag.String("kind", "uniform", "identical|uniform|unrelated|restricted|restricted-cu|unrelated-cu")
		n        = flag.Int("n", 20, "number of jobs")
		m        = flag.Int("m", 4, "number of machines")
		k        = flag.Int("k", 3, "number of setup classes")
		seed     = flag.Int64("seed", 1, "random seed")
		minJob   = flag.Int("min-job", 1, "minimum job size")
		maxJob   = flag.Int("max-job", 100, "maximum job size")
		minSetup = flag.Int("min-setup", 1, "minimum setup size")
		maxSetup = flag.Int("max-setup", 50, "maximum setup size")
		outPath  = flag.String("o", "", "write the instance/stream to this file instead of stdout")
		check    = flag.Bool("check", false, "solve the generated instance through the engine and print a summary to stderr")
		timeout  = flag.Duration("timeout", 10*time.Second, "deadline for -check")
		stream   = flag.Int("stream", 0, "emit a delta-stream document with this many online events instead of a bare instance")
		arriveW  = flag.Int("arrive-weight", 0, "arrival weight of the -stream event mix (0 = default mix 4:2:2:1:1)")
	)
	flag.Parse()
	rng := rand.New(rand.NewSource(*seed))
	p := gen.Params{
		N: *n, M: *m, K: *k,
		MinJob: *minJob, MaxJob: *maxJob,
		MinSetup: *minSetup, MaxSetup: *maxSetup,
	}
	var in *core.Instance
	switch *kind {
	case "identical":
		in = gen.Identical(rng, p)
	case "uniform":
		in = gen.Uniform(rng, p)
	case "unrelated":
		in = gen.Unrelated(rng, p)
	case "restricted":
		in = gen.Restricted(rng, p)
	case "restricted-cu":
		in = gen.RestrictedClassUniform(rng, p)
	case "unrelated-cu":
		in = gen.UnrelatedClassUniform(rng, p)
	default:
		fmt.Fprintf(os.Stderr, "instgen: unknown kind %q\n", *kind)
		os.Exit(2)
	}
	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "instgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	if *stream > 0 {
		// Delta-stream mode: one JSON document holding the instance plus a
		// reproducible online event sequence, every delta valid in order.
		deltas := gen.DeltaStream(rng, in, gen.StreamParams{Events: *stream, ArriveW: *arriveW})
		if err := core.WriteDeltaStream(out, in, deltas); err != nil {
			fmt.Fprintln(os.Stderr, "instgen:", err)
			os.Exit(1)
		}
	} else if err := in.WriteJSON(out); err != nil {
		fmt.Fprintln(os.Stderr, "instgen:", err)
		os.Exit(1)
	}
	if *check {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		// One engine Solve does selection and solving in a single dispatch;
		// the chosen solver is reported by the Result itself.
		eng, err := sched.New()
		if err != nil {
			fmt.Fprintln(os.Stderr, "instgen: check:", err)
			os.Exit(1)
		}
		res, err := eng.Solve(ctx, in)
		if err != nil {
			fmt.Fprintln(os.Stderr, "instgen: check:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "instgen: check: solved by %s makespan=%.0f lowerBound=%.1f ratio=%.3f\n",
			res.Algorithm, res.Makespan, res.LowerBound, res.Ratio())
		if res.Note != "" {
			fmt.Fprintf(os.Stderr, "instgen: check note: %s\n", res.Note)
		}
	}
}
