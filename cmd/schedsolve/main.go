// Command schedsolve reads a scheduling instance in the library's JSON
// format and solves it through an engine handle (sched.New).
//
// Usage:
//
//	schedsolve -in instance.json                    auto-dispatch (strongest applicable solver)
//	schedsolve -in instance.json -algo ptas -eps 0.25
//	schedsolve -in instance.json -algo rounding -seed 7
//	schedsolve -in instance.json -portfolio         race all applicable solvers
//	schedsolve -in instance.json -portfolio -timeout 2s
//	schedsolve -in instance.json -portfolio -gap 0.05
//	schedsolve -in instance.json -trace             stream bound improvements to stderr
//	schedsolve -list-algos                          show registered solvers
//
// -timeout bounds the run with a context deadline: in-flight searches
// (PTAS dynamic program, branch-and-bound, LP rounding binary search) stop
// and the best schedule found so far is returned. -gap stops a portfolio
// race as soon as the shared incumbent is certified within (1+gap)× the
// best lower bound published by any racer. -trace subscribes to the
// engine's anytime event stream and prints every incumbent improvement and
// certified-bound update as it happens.
//
// The chosen assignment is printed as JSON: {"machine": [...], "makespan": X}.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"slices"
	"time"

	"repro"
)

func main() {
	var (
		inPath    = flag.String("in", "", "instance JSON file (required)")
		algo      = flag.String("algo", "auto", "auto, or a registered solver name (see -list-algos); 'optimal' is an alias for branch-and-bound")
		eps       = flag.Float64("eps", 0.5, "accuracy parameter for the PTAS")
		seed      = flag.Int64("seed", 0, "seed for randomized solvers (0 = fixed default)")
		timeout   = flag.Duration("timeout", 0, "deadline for the whole solve (0 = none), e.g. 500ms, 2s")
		portfolio = flag.Bool("portfolio", false, "race all applicable solvers concurrently and keep the best schedule")
		gap       = flag.Float64("gap", 0, "portfolio mode: stop the race once the incumbent is within (1+gap)x the best certified lower bound (0 = race to completion)")
		localOpt  = flag.Bool("local-search", false, "post-optimize the result with best-improvement descent")
		maxJobs   = flag.Int("max-jobs", 0, "job guard override for branch-and-bound (0 = default 16)")
		gantt     = flag.Bool("gantt", false, "print an ASCII Gantt chart of the result to stderr")
		trace     = flag.Bool("trace", false, "stream incumbent/lower-bound improvements to stderr as they happen")
		listAlgos = flag.Bool("list-algos", false, "list registered solvers with capabilities and exit")
	)
	flag.Parse()

	eng, err := sched.New()
	if err != nil {
		fatal(err)
	}
	if *listAlgos {
		for _, info := range eng.SolverInfo() {
			fmt.Printf("%-18s priority %2d  %s\n", info.Name, info.Priority, info.Guarantee)
		}
		return
	}
	if *inPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*inPath)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	in, err := sched.ReadInstance(f)
	if err != nil {
		fatal(err)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	opts := []sched.SolveOption{
		sched.WithEps(*eps),
		sched.WithSeed(*seed),
		sched.WithMaxJobs(*maxJobs),
		sched.WithLocalSearch(*localOpt),
		sched.WithGap(*gap),
	}
	if *trace {
		events, cancelEvents := eng.Events(256)
		done := make(chan struct{})
		go func() {
			defer close(done)
			for ev := range events {
				fmt.Fprintf(os.Stderr, "schedsolve: %8s  %-11s %.6g\n",
					ev.At.Round(10*time.Microsecond), ev.Kind, ev.Value)
			}
		}()
		defer func() { cancelEvents(); <-done }()
	}

	var res sched.Result
	var outcomes []outcomeJSON
	var winner string
	var withinGap bool
	switch {
	case *portfolio:
		pr, err := eng.Portfolio(ctx, in, opts...)
		if err != nil {
			fatal(err)
		}
		res = pr.Best
		winner = pr.Winner
		withinGap = pr.WithinGap
		for _, o := range pr.Outcomes {
			oj := outcomeJSON{
				Solver:            o.Solver,
				ElapsedMs:         float64(o.Elapsed) / float64(time.Millisecond),
				UpperImprovements: o.Bounds.UpperImprovements,
				LowerImprovements: o.Bounds.LowerImprovements,
			}
			if o.Bounds.BestUpperAt > 0 {
				oj.TimeToBestMs = float64(o.Bounds.BestUpperAt) / float64(time.Millisecond)
			}
			if o.Err != nil {
				oj.Error = o.Err.Error()
			} else {
				oj.Makespan = o.Result.Makespan
				oj.Note = o.Result.Note
			}
			outcomes = append(outcomes, oj)
		}
	default:
		if *algo != "auto" {
			name := *algo
			if name == "optimal" {
				name = sched.AlgoExact
			}
			if !slices.Contains(eng.Solvers(), name) {
				fatal(fmt.Errorf("unknown algorithm %q (use -list-algos)", *algo))
			}
			opts = append(opts, sched.WithAlgorithm(name))
		}
		res, err = eng.Solve(ctx, in, opts...)
		if err != nil {
			fatal(err)
		}
	}

	out := struct {
		Algorithm  string        `json:"algorithm"`
		Machine    []int         `json:"machine"`
		Makespan   float64       `json:"makespan"`
		LowerBound float64       `json:"lowerBound,omitempty"`
		Note       string        `json:"note,omitempty"`
		Winner     string        `json:"winner,omitempty"`
		WithinGap  bool          `json:"withinGap,omitempty"`
		Portfolio  []outcomeJSON `json:"portfolio,omitempty"`
	}{res.Algorithm, res.Schedule.Assign, res.Makespan, res.LowerBound, res.Note, winner, withinGap, outcomes}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", " ")
	if err := enc.Encode(out); err != nil {
		fatal(err)
	}
	if *gantt {
		tl, err := sched.BuildTimeline(in, res.Schedule)
		if err != nil {
			fatal(err)
		}
		fmt.Fprint(os.Stderr, tl.Gantt(72))
	}
}

type outcomeJSON struct {
	Solver    string  `json:"solver"`
	Makespan  float64 `json:"makespan,omitempty"`
	Note      string  `json:"note,omitempty"`
	Error     string  `json:"error,omitempty"`
	ElapsedMs float64 `json:"elapsedMs"`
	// Incumbent-bus contributions: how often the member improved the shared
	// makespan / lower bound, and when it last held the incumbent.
	UpperImprovements int     `json:"upperImprovements,omitempty"`
	LowerImprovements int     `json:"lowerImprovements,omitempty"`
	TimeToBestMs      float64 `json:"timeToBestMs,omitempty"`
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "schedsolve:", err)
	os.Exit(1)
}
