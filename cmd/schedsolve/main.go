// Command schedsolve reads a scheduling instance in the library's JSON
// format and solves it with the requested algorithm.
//
// Usage:
//
//	schedsolve -in instance.json                 auto-dispatch (sched.Solve)
//	schedsolve -in instance.json -algo ptas -eps 0.25
//	schedsolve -in instance.json -algo rounding
//	schedsolve -in instance.json -algo lpt|greedy|optimal|ra2|pt3
//
// The chosen assignment is printed as JSON: {"machine": [...], "makespan": X}.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	var (
		inPath = flag.String("in", "", "instance JSON file (required)")
		algo   = flag.String("algo", "auto", "auto|lpt|greedy|ptas|rounding|ra2|pt3|optimal")
		eps    = flag.Float64("eps", 0.5, "accuracy parameter for -algo ptas")
		gantt  = flag.Bool("gantt", false, "print an ASCII Gantt chart of the result to stderr")
	)
	flag.Parse()
	if *inPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*inPath)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	in, err := sched.ReadInstance(f)
	if err != nil {
		fatal(err)
	}

	var res sched.Result
	switch *algo {
	case "auto":
		res, err = sched.Solve(in)
	case "lpt":
		res, err = sched.LPT(in)
	case "greedy":
		res, err = sched.Greedy(in)
	case "ptas":
		res, err = sched.PTAS(in, *eps)
	case "rounding":
		res, err = sched.RandomizedRounding(in, nil)
	case "ra2":
		res, err = sched.ClassUniformRA(in)
	case "pt3":
		res, err = sched.ClassUniformPT(in)
	case "optimal":
		res, _, err = sched.Optimal(in, 0)
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algo))
	}
	if err != nil {
		fatal(err)
	}
	out := struct {
		Algorithm  string  `json:"algorithm"`
		Machine    []int   `json:"machine"`
		Makespan   float64 `json:"makespan"`
		LowerBound float64 `json:"lowerBound,omitempty"`
	}{res.Algorithm, res.Schedule.Assign, res.Makespan, res.LowerBound}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", " ")
	if err := enc.Encode(out); err != nil {
		fatal(err)
	}
	if *gantt {
		tl, err := sched.BuildTimeline(in, res.Schedule)
		if err != nil {
			fatal(err)
		}
		fmt.Fprint(os.Stderr, tl.Gantt(72))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "schedsolve:", err)
	os.Exit(1)
}
