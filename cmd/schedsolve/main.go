// Command schedsolve reads a scheduling instance in the library's JSON
// format and solves it through the solver engine.
//
// Usage:
//
//	schedsolve -in instance.json                    auto-dispatch (strongest applicable solver)
//	schedsolve -in instance.json -algo ptas -eps 0.25
//	schedsolve -in instance.json -algo rounding -seed 7
//	schedsolve -in instance.json -portfolio         race all applicable solvers
//	schedsolve -in instance.json -portfolio -timeout 2s
//	schedsolve -in instance.json -portfolio -gap 0.05
//	schedsolve -list-algos                          show registered solvers
//
// -timeout bounds the run with a context deadline: in-flight searches
// (PTAS dynamic program, branch-and-bound, LP rounding binary search) stop
// and the best schedule found so far is returned. -gap stops a portfolio
// race as soon as the shared incumbent is certified within (1+gap)× the
// best lower bound published by any racer.
//
// The chosen assignment is printed as JSON: {"machine": [...], "makespan": X}.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro"
	"repro/internal/engine"
)

func main() {
	var (
		inPath    = flag.String("in", "", "instance JSON file (required)")
		algo      = flag.String("algo", "auto", "auto, or a registered solver name (see -list-algos); 'optimal' is an alias for branch-and-bound")
		eps       = flag.Float64("eps", 0.5, "accuracy parameter for the PTAS")
		seed      = flag.Int64("seed", 0, "seed for randomized solvers (0 = fixed default)")
		timeout   = flag.Duration("timeout", 0, "deadline for the whole solve (0 = none), e.g. 500ms, 2s")
		portfolio = flag.Bool("portfolio", false, "race all applicable solvers concurrently and keep the best schedule")
		gap       = flag.Float64("gap", 0, "portfolio mode: stop the race once the incumbent is within (1+gap)x the best certified lower bound (0 = race to completion)")
		localOpt  = flag.Bool("local-search", false, "post-optimize the result with best-improvement descent")
		maxJobs   = flag.Int("max-jobs", 0, "job guard override for branch-and-bound (0 = default 16)")
		gantt     = flag.Bool("gantt", false, "print an ASCII Gantt chart of the result to stderr")
		listAlgos = flag.Bool("list-algos", false, "list registered solvers with capabilities and exit")
	)
	flag.Parse()
	if *listAlgos {
		for _, s := range engine.Default().Solvers() {
			caps := s.Capabilities()
			fmt.Printf("%-18s priority %2d  %s\n", s.Name(), caps.Priority, caps.Guarantee)
		}
		return
	}
	if *inPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*inPath)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	in, err := sched.ReadInstance(f)
	if err != nil {
		fatal(err)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	opt := sched.SolveOptions{
		Eps:         *eps,
		Seed:        *seed,
		MaxJobs:     *maxJobs,
		LocalSearch: *localOpt,
		Gap:         *gap,
	}

	var res sched.Result
	var outcomes []outcomeJSON
	var winner string
	var withinGap bool
	switch {
	case *portfolio:
		pr, err := sched.Portfolio(ctx, in, opt)
		if err != nil {
			fatal(err)
		}
		res = pr.Best
		winner = pr.Winner
		withinGap = pr.WithinGap
		for _, o := range pr.Outcomes {
			oj := outcomeJSON{
				Solver:            o.Solver,
				ElapsedMs:         float64(o.Elapsed) / float64(time.Millisecond),
				UpperImprovements: o.Bounds.UpperImprovements,
				LowerImprovements: o.Bounds.LowerImprovements,
			}
			if o.Bounds.BestUpperAt > 0 {
				oj.TimeToBestMs = float64(o.Bounds.BestUpperAt) / float64(time.Millisecond)
			}
			if o.Err != nil {
				oj.Error = o.Err.Error()
			} else {
				oj.Makespan = o.Result.Makespan
				oj.Note = o.Result.Note
			}
			outcomes = append(outcomes, oj)
		}
	case *algo == "auto":
		res, err = sched.SolveWithContext(ctx, in, opt)
		if err != nil {
			fatal(err)
		}
	default:
		name := *algo
		if name == "optimal" {
			name = engine.NameExact
		}
		if _, ok := engine.Default().Get(name); !ok {
			fatal(fmt.Errorf("unknown algorithm %q (use -list-algos)", *algo))
		}
		// SolveNamed (not Solver.Solve directly) so -local-search and any
		// future engine post-passes apply to named dispatch too.
		res, err = engine.Default().SolveNamed(ctx, name, in, opt)
		if err != nil {
			fatal(err)
		}
	}

	out := struct {
		Algorithm  string        `json:"algorithm"`
		Machine    []int         `json:"machine"`
		Makespan   float64       `json:"makespan"`
		LowerBound float64       `json:"lowerBound,omitempty"`
		Note       string        `json:"note,omitempty"`
		Winner     string        `json:"winner,omitempty"`
		WithinGap  bool          `json:"withinGap,omitempty"`
		Portfolio  []outcomeJSON `json:"portfolio,omitempty"`
	}{res.Algorithm, res.Schedule.Assign, res.Makespan, res.LowerBound, res.Note, winner, withinGap, outcomes}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", " ")
	if err := enc.Encode(out); err != nil {
		fatal(err)
	}
	if *gantt {
		tl, err := sched.BuildTimeline(in, res.Schedule)
		if err != nil {
			fatal(err)
		}
		fmt.Fprint(os.Stderr, tl.Gantt(72))
	}
}

type outcomeJSON struct {
	Solver    string  `json:"solver"`
	Makespan  float64 `json:"makespan,omitempty"`
	Note      string  `json:"note,omitempty"`
	Error     string  `json:"error,omitempty"`
	ElapsedMs float64 `json:"elapsedMs"`
	// Incumbent-bus contributions: how often the member improved the shared
	// makespan / lower bound, and when it last held the incumbent.
	UpperImprovements int     `json:"upperImprovements,omitempty"`
	LowerImprovements int     `json:"lowerImprovements,omitempty"`
	TimeToBestMs      float64 `json:"timeToBestMs,omitempty"`
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "schedsolve:", err)
	os.Exit(1)
}
