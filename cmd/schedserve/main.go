// Command schedserve runs the solver as an HTTP service: the engine's
// service mode (SolveBatch-style admission on the governor, per-request
// deadlines, anytime event streams, the fingerprint bound cache) behind a
// network face with admission control, request coalescing and SSE
// streaming (see internal/serve).
//
// Usage:
//
//	schedserve -addr :8080
//	schedserve -addr :8080 -workers 8 -queue 128
//	schedserve -cache-load bounds.json -cache-save bounds.json
//
// Endpoints:
//
//	POST /v1/solve              solve one instance (JSON: {"instance": ..., "options": {...}})
//	POST /v1/batch              solve many instances through SolveBatch
//	GET  /v1/solve/{id}         fetch a solve's result (202 while running)
//	GET  /v1/solve/{id}/events  SSE stream of incumbent/lower-bound events + terminal result
//	GET  /healthz               liveness (503 while draining)
//	GET  /statsz                queue/shed/coalesce/cache/governor counters
//
// Admission: requests are shed with 429 (queue full) or 503 (deadline not
// meetable by the queue's drain estimate), both with Retry-After. Identical
// concurrent requests (same instance fingerprint and option digest)
// coalesce onto one engine solve. On SIGINT/SIGTERM the server stops
// accepting work, drains in-flight solves under -drain, saves the bound
// cache when -cache-save is set, and exits 0 on a clean drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
	"repro/internal/serve"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.Int("workers", 0, "engine concurrency budget (0 = GOMAXPROCS)")
		queue      = flag.Int("queue", 64, "admission bound: max requests admitted (queued + solving) at once")
		cacheSize  = flag.Int("cache", 1024, "bound cache capacity in fingerprints (0 disables)")
		defTimeout = flag.Duration("default-timeout", 10*time.Second, "request deadline when the client sends none")
		maxTimeout = flag.Duration("max-timeout", 60*time.Second, "cap on client-requested deadlines")
		retain     = flag.Duration("retain", 60*time.Second, "how long completed solves stay fetchable by id")
		linger     = flag.Duration("coalesce-linger", 250*time.Millisecond, "serve identical requests arriving this soon after a solve completed from its result (0 = concurrent coalescing only)")
		drain      = flag.Duration("drain", 15*time.Second, "graceful-shutdown budget for in-flight solves")
		lpBackend  = flag.String("lp", "", "server default LP backend for feasibility LPs (dense|sparse|ipm|auto; requests naming lpBackend override it)")
		cacheLoad  = flag.String("cache-load", "", "bound-cache snapshot to load at startup (monotone merge)")
		cacheSave  = flag.String("cache-save", "", "write a bound-cache snapshot here on shutdown")
	)
	flag.Parse()

	var engOpts []sched.EngineOption
	if *workers > 0 {
		engOpts = append(engOpts, sched.WithWorkers(*workers))
	}
	engOpts = append(engOpts, sched.WithBoundCache(*cacheSize))
	eng, err := sched.New(engOpts...)
	if err != nil {
		fatal(err)
	}
	if *cacheLoad != "" {
		f, err := os.Open(*cacheLoad)
		if err != nil {
			fatal(err)
		}
		n, err := eng.LoadBounds(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("loading %s: %w", *cacheLoad, err))
		}
		fmt.Fprintf(os.Stderr, "schedserve: merged %d cached bounds from %s\n", n, *cacheLoad)
	}

	srv := serve.New(eng, serve.Config{
		Queue:          *queue,
		Workers:        *workers,
		DefaultTimeout: *defTimeout,
		MaxTimeout:     *maxTimeout,
		Retain:         *retain,
		Linger:         *linger,
		LPBackend:      *lpBackend,
	})
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "schedserve: listening on %s (queue=%d cache=%d)\n", ln.Addr(), *queue, *cacheSize)

	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "schedserve: %v — draining (budget %s)\n", sig, *drain)
	case err := <-errCh:
		fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Drain and Shutdown run together: Drain flips the serve layer into
	// shedding mode at once (new requests on open connections answer 503 +
	// Retry-After) and waits for admitted solves, while Shutdown refuses
	// new connections and waits for in-flight HTTP exchanges.
	drainErr := make(chan error, 1)
	go func() { drainErr <- srv.Drain(ctx) }()
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "schedserve: shutdown:", err)
	}
	if err := <-drainErr; err != nil {
		fmt.Fprintln(os.Stderr, "schedserve: drain incomplete:", err)
	} else {
		fmt.Fprintln(os.Stderr, "schedserve: drained cleanly")
	}

	if *cacheSave != "" {
		f, err := os.Create(*cacheSave)
		if err != nil {
			fatal(err)
		}
		err = eng.SaveBounds(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(fmt.Errorf("saving %s: %w", *cacheSave, err))
		}
		st := eng.CacheStats()
		fmt.Fprintf(os.Stderr, "schedserve: saved %d cached bounds to %s\n", st.Entries, *cacheSave)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "schedserve:", err)
	os.Exit(1)
}
