// Command schedbench regenerates the paper-validation experiments (see
// DESIGN.md §4 and EXPERIMENTS.md).
//
// Usage:
//
//	schedbench -list              list all experiments
//	schedbench -exp E4            run one experiment
//	schedbench -all               run the whole suite
//	schedbench -all -quick        smaller sizes (seconds instead of minutes)
//	schedbench -seed 7 -exp E2    change the master seed
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list experiments and exit")
		exp   = flag.String("exp", "", "experiment id to run (e.g. E4)")
		all   = flag.Bool("all", false, "run every experiment")
		quick = flag.Bool("quick", false, "reduced instance sizes")
		seed  = flag.Int64("seed", 1, "master random seed")
	)
	flag.Parse()

	cfg := experiments.Config{Seed: *seed, Quick: *quick}
	switch {
	case *list:
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n     claim: %s\n", e.ID, e.Name, e.Claim)
		}
	case *exp != "":
		e, ok := experiments.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
		if err := run(e, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	case *all:
		for _, e := range experiments.All() {
			if err := run(e, cfg); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func run(e experiments.Experiment, cfg experiments.Config) error {
	fmt.Printf("### %s — %s\n", e.ID, e.Name)
	fmt.Printf("### paper claim: %s\n\n", e.Claim)
	out, err := e.Run(cfg)
	if err != nil {
		return fmt.Errorf("%s: %w", e.ID, err)
	}
	fmt.Println(out)
	return nil
}
