// Command schedbench regenerates the paper-validation experiments (see
// DESIGN.md §4 and EXPERIMENTS.md) and benchmarks the solver engine.
//
// Usage:
//
//	schedbench -list              list all experiments
//	schedbench -exp E4            run one experiment
//	schedbench -all               run the whole suite
//	schedbench -all -quick        smaller sizes (seconds instead of minutes)
//	schedbench -seed 7 -exp E2    change the master seed
//	schedbench -engine            race every registered solver per environment
//	schedbench -engine -timeout 2s -n 40 -m 6
//	schedbench -engine -lp dense  pin the LP backend (compare against -lp sparse)
//	schedbench -engine -search-workers 4   speculative parallel dual search
//	schedbench -oversub -batch 16 -n 40 -m 5 -k 4    governed vs ungoverned
//	schedbench -online -events 50 -n 60 -m 6         warm Resolve vs cold re-solve
//	schedbench -online -stream stream.json           replay an instgen -stream file
//	schedbench -serve-load -rps 30 -dur 5s -dup-frac 0.8 -n 100 -m 10 -k 8
//	schedbench -serve-load -url http://localhost:8080 ...    against a running schedserve
//
// The -engine mode generates one instance per machine environment and runs
// every applicable registry solver plus the portfolio race on it, printing
// per-solver makespans, runtimes and LP pivot counts (the lp-iters column;
// see the -lp flag for backend comparison rows); -timeout bounds each run
// with a context deadline; -search-workers evaluates that many makespan
// guesses concurrently in every dual-approximation search (the sw column
// shows the effective parallelism per solver).
//
// The -serve-load mode is an open-loop load generator against the HTTP
// solver service (internal/serve): Poisson arrivals at -rps for -dur, a
// -dup-frac share of requests repeating one anchor instance (the traffic
// request coalescing and the bound cache dedupe), the rest pairwise
// distinct. It reports completed throughput, latency percentiles, the shed
// rate (429/503 admission rejections) and the coalesce hit rate, plus one
// JSON line per run for the BENCH_* artifacts. With no -url it starts an
// in-process server.
//
// The -oversub mode measures the concurrency governor: it fires the worst
// multiplicative load the API can express — a SolveBatch of -batch
// instances, each solved as a portfolio race, each member running a
// -search-workers-wide speculative search — at a governed engine and at a
// WithUngoverned one, and prints wall clock, the observed peak of
// simultaneous LP solves, and the governor's token statistics for each.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/dual"
	"repro/internal/experiments"
	"repro/internal/gen"
	"repro/internal/lp"
	"repro/internal/table"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list experiments and exit")
		exp     = flag.String("exp", "", "experiment id to run (e.g. E4)")
		all     = flag.Bool("all", false, "run every experiment")
		quick   = flag.Bool("quick", false, "reduced instance sizes")
		seed    = flag.Int64("seed", 1, "master random seed")
		engMode = flag.Bool("engine", false, "benchmark the solver engine: per-kind solver race + portfolio")
		timeout = flag.Duration("timeout", 0, "context deadline per engine run (0 = none)")
		gap     = flag.Float64("gap", 0, "engine mode: early-terminate the portfolio at this optimality gap (0 = race to completion)")
		n       = flag.Int("n", 24, "engine mode: number of jobs")
		m       = flag.Int("m", 4, "engine mode: number of machines")
		k       = flag.Int("k", 3, "engine mode: number of setup classes")
		lpKind  = flag.String("lp", "", "engine mode: LP backend for the randomized rounding's feasibility LPs (dense|sparse|ipm|auto; default sparse)")
	noPre   = flag.Bool("no-presolve", false, "disable the LP presolve/equilibration pipeline ahead of cold LP builds (baseline measurement)")
		sworker = flag.Int("search-workers", 0, "engine mode: speculative parallelism of dual-approximation searches (guesses evaluated concurrently; <2 = sequential bisection)")
		oversub = flag.Bool("oversub", false, "oversubscription scenario: governed vs ungoverned engine under batch × portfolio × speculative-search load")
		batch   = flag.Int("batch", 8, "oversub mode: instances per SolveBatch")
		online  = flag.Bool("online", false, "online re-optimization scenario: warm Resolve chain vs cold re-solves over a delta stream, per-event latency percentiles")
		stream  = flag.String("stream", "", "online mode: delta-stream file from `instgen -stream` (empty = generate -events events in memory)")
		events  = flag.Int("events", 50, "online mode: generated event count when no -stream file is given")

		serveLoad  = flag.Bool("serve-load", false, "solver-service load generator: open-loop Poisson arrivals against the HTTP front end")
		url        = flag.String("url", "", "serve-load mode: base URL of a running schedserve (empty = start an in-process server)")
		rps        = flag.Float64("rps", 30, "serve-load mode: mean request arrival rate per second")
		dur        = flag.Duration("dur", 5*time.Second, "serve-load mode: load duration")
		dupFrac    = flag.Float64("dup-frac", 0.5, "serve-load mode: fraction of requests repeating the anchor instance (the coalescing/cache traffic)")
		reqTimeout = flag.Duration("req-timeout", 2*time.Second, "serve-load mode: per-request deadline sent with each solve")
	)
	flag.Parse()

	cfg := experiments.Config{Seed: *seed, Quick: *quick}
	switch {
	case *list:
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n     claim: %s\n", e.ID, e.Name, e.Claim)
		}
	case *engMode:
		if err := engineBench(*seed, *n, *m, *k, *timeout, *gap, *lpKind, *sworker, *noPre); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	case *oversub:
		if err := oversubBench(*seed, *n, *m, *k, *batch, *sworker, *timeout); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	case *online:
		if err := onlineBench(*seed, *n, *m, *k, *events, *stream, *lpKind, *timeout); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	case *serveLoad:
		if err := serveLoadBench(*url, *rps, *dur, *dupFrac, *seed, *n, *m, *k, *reqTimeout); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	case *exp != "":
		e, ok := experiments.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
		if err := run(e, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	case *all:
		for _, e := range experiments.All() {
			if err := run(e, cfg); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func run(e experiments.Experiment, cfg experiments.Config) error {
	fmt.Printf("### %s — %s\n", e.ID, e.Name)
	fmt.Printf("### paper claim: %s\n\n", e.Claim)
	out, err := e.Run(cfg)
	if err != nil {
		return fmt.Errorf("%s: %w", e.ID, err)
	}
	fmt.Println(out)
	return nil
}

// engineBench generates one instance per machine environment and dispatches
// every applicable solver (and the portfolio race) through the engine
// registry, reporting makespans, lower-bound ratios, runtimes and — for the
// portfolio — the time-to-incumbent: how far into the race the winning
// makespan was published to the shared bound bus.
func engineBench(seed int64, n, m, k int, timeout time.Duration, gap float64, lpKind string, sworkers int, noPresolve bool) error {
	// Every row solves cold (WithoutWarmStart): the rows compare the
	// algorithms, so a warm start from an earlier row's cached bounds would
	// contaminate the measurement. The -lp flag pins the LP backend of the
	// randomized-rounding solver (other solvers run no backend-selectable
	// LPs); the lp-iters column makes backend wins visible in the table
	// (pivot counts per run), not just in microbenchmarks. -search-workers
	// turns on the speculative parallel dual search (the sw column shows
	// the effective parallelism per solver; "-" for solvers that run no
	// guess search).
	if sworkers < 1 {
		sworkers = 1
	}
	// WithWorkers is the governor's global token budget; size it to the
	// requested search width so a solo solve can actually be granted that
	// many concurrent guess evaluations.
	eng, err := sched.New(sched.WithWorkers(sworkers))
	if err != nil {
		return err
	}
	cases := []struct {
		name string
		gen  func(*rand.Rand, gen.Params) *core.Instance
	}{
		{"identical", gen.Identical},
		{"uniform", gen.Uniform},
		{"restricted-cu", gen.RestrictedClassUniform},
		{"unrelated-cu", gen.UnrelatedClassUniform},
		{"unrelated", gen.Unrelated},
	}
	params := gen.Params{N: n, M: m, K: k}
	for _, c := range cases {
		rng := rand.New(rand.NewSource(seed))
		in := c.gen(rng, params)
		title := fmt.Sprintf("engine race — %s (n=%d m=%d K=%d)", c.name, in.N, in.M, in.K)
		if lpKind != "" {
			title += fmt.Sprintf(" [lp=%s]", lpKind)
		}
		if noPresolve {
			title += " [no-presolve]"
		}
		tab := table.New(title, "solver", "makespan", "ratio", "time", "lp-iters", "presolve", "sw", "tti")
		for _, name := range eng.Applicable(in) {
			ctx, cancel := withTimeout(timeout)
			before := lp.PresolveTotals()
			start := time.Now()
			res, err := eng.Solve(ctx, in,
				sched.WithAlgorithm(name), sched.WithoutWarmStart(),
				sched.WithLPBackend(lpKind), sched.WithLPPresolve(!noPresolve),
				sched.WithSearchWorkers(sworkers))
			elapsed := time.Since(start)
			cancel()
			if err != nil {
				tab.AddRow(name, "error", err.Error(), fmtDur(elapsed), "-", "-", "-", "-")
				continue
			}
			tab.AddRow(name, fmt.Sprintf("%.0f", res.Makespan), fmt.Sprintf("%.3f", res.Ratio()),
				fmtDur(elapsed), fmtIters(res.LPIters), presolveCell(before, lp.PresolveTotals()),
				fmtSearchWorkers(name, sworkers), "-")
		}
		ctx, cancel := withTimeout(timeout)
		before := lp.PresolveTotals()
		start := time.Now()
		pr, err := eng.Portfolio(ctx, in,
			sched.WithGap(gap), sched.WithoutWarmStart(),
			sched.WithLPBackend(lpKind), sched.WithLPPresolve(!noPresolve),
			sched.WithSearchWorkers(sworkers))
		elapsed := time.Since(start)
		cancel()
		if err != nil {
			tab.AddRow("portfolio", "error", err.Error(), fmtDur(elapsed), "-", "-", "-", "-")
		} else {
			tti := "-"
			for _, o := range pr.Outcomes {
				if o.Solver == pr.Winner && o.Bounds.BestUpperAt > 0 {
					tti = fmtDur(o.Bounds.BestUpperAt)
				}
			}
			name := fmt.Sprintf("portfolio→%s", pr.Winner)
			if pr.WithinGap {
				name += " (gap hit)"
			}
			tab.AddRow(name, fmt.Sprintf("%.0f", pr.Best.Makespan), fmt.Sprintf("%.3f", pr.Best.Ratio()),
				fmtDur(elapsed), fmtIters(pr.Best.LPIters), presolveCell(before, lp.PresolveTotals()),
				fmtSearchWorkers(pr.Winner, sworkers), tti)
		}
		fmt.Println(tab.String())
	}
	return nil
}

// oversubBench measures what the governor buys under multiplicative load.
// One batch of unrelated instances is solved twice — on a governed engine
// (default budget: GOMAXPROCS) and on a WithUngoverned one — with every
// parallelism layer engaged: SolveBatch dispatch × portfolio racing ×
// speculative search width. The lp-peak column is measured at the LP layer
// itself (the resource the tokens meter), so the governed row demonstrates
// the budget held while the ungoverned row shows the multiplicative blow-up
// it replaces; gov-peak/waits/degraded report how the tokens were spent.
func oversubBench(seed int64, n, m, k, batch, sworkers int, timeout time.Duration) error {
	if sworkers < 1 {
		sworkers = 4
	}
	if batch < 1 {
		batch = 8
	}
	rng := rand.New(rand.NewSource(seed))
	ins := make([]*core.Instance, batch)
	for i := range ins {
		ins[i] = gen.Unrelated(rng, gen.Params{N: n, M: m, K: k})
	}
	rows := []struct {
		name string
		opts []sched.EngineOption
	}{
		{"governed", nil},
		{"ungoverned", []sched.EngineOption{sched.WithUngoverned()}},
	}
	tab := table.New(
		fmt.Sprintf("oversubscription — batch=%d × portfolio × speculate(%d), unrelated n=%d m=%d K=%d, budget=%d",
			batch, sworkers, n, m, k, runtime.GOMAXPROCS(0)),
		"engine", "wall", "Σ makespan", "lp-peak", "gov-peak", "waits", "degraded")
	for _, r := range rows {
		eng, err := sched.New(r.opts...)
		if err != nil {
			return err
		}
		lp.SolveGauge.Reset()
		ctx, cancel := withTimeout(timeout)
		start := time.Now()
		res := eng.SolveBatch(ctx, ins,
			sched.WithPortfolio(), sched.WithSearchWorkers(sworkers),
			sched.WithSeed(seed), sched.WithoutWarmStart())
		wall := time.Since(start)
		cancel()
		sum := 0.0
		for i, br := range res {
			if br.Err != nil {
				return fmt.Errorf("%s: instance %d: %w", r.name, i, br.Err)
			}
			sum += br.Result.Makespan
		}
		govPeak, waits, degraded := "-", "-", "-"
		if len(r.opts) == 0 {
			st := eng.GovernorStats()
			govPeak = fmt.Sprintf("%d/%d", st.Peak, st.Budget)
			waits = fmt.Sprintf("%d", st.Waits)
			degraded = fmt.Sprintf("%d", st.Degradations)
		}
		tab.AddRow(r.name, fmtDur(wall), fmt.Sprintf("%.0f", sum),
			fmt.Sprintf("%d", lp.SolveGauge.Peak()), govPeak, waits, degraded)
	}
	fmt.Println(tab.String())
	return nil
}

// onlineBench measures the incremental re-solve pipeline on an online
// workload: a delta stream (from `instgen -stream`, or generated) is served
// twice — warm, as an Open + Resolve chain carrying patched witnesses,
// lifted brackets and the retained LP relaxation across events, and cold,
// re-solving each post-delta instance from scratch — and the per-event
// latency distribution of each mode is printed. The latency of an event is
// the online-serving metric: how long the schedule stayed stale after the
// event arrived.
func onlineBench(seed int64, n, m, k, events int, streamFile, lpKind string, timeout time.Duration) error {
	var in *core.Instance
	var deltas []core.Delta
	if streamFile != "" {
		f, err := os.Open(streamFile)
		if err != nil {
			return err
		}
		in, deltas, err = core.ReadDeltaStream(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", streamFile, err)
		}
	} else {
		rng := rand.New(rand.NewSource(seed))
		in = gen.Unrelated(rng, gen.Params{N: n, M: m, K: k})
		deltas = gen.DeltaStream(rng, in, gen.StreamParams{Events: events})
	}

	type row struct {
		name      string
		latencies []time.Duration
		total     time.Duration
		lastMs    float64
		solved    int
		waits     string
	}
	var rows []row

	// Warm: one engine, one Resolve chain.
	warmEng, err := sched.New()
	if err != nil {
		return err
	}
	ctx, cancel := withTimeout(timeout)
	start := time.Now()
	h, evs, err := warmEng.Stream(ctx, in, deltas,
		sched.WithLPBackend(lpKind), sched.WithSeed(seed))
	wall := time.Since(start)
	cancel()
	if err != nil {
		return fmt.Errorf("warm stream: %w", err)
	}
	warm := row{name: "warm (Resolve)", total: wall, lastMs: h.Result().Makespan}
	for _, ev := range evs {
		if ev.Err != nil {
			continue
		}
		warm.latencies = append(warm.latencies, ev.Latency)
		warm.solved++
	}
	st := warmEng.GovernorStats()
	warm.waits = fmt.Sprintf("%d/%s", st.Waits, st.WaitTime.Round(10*time.Microsecond))
	rows = append(rows, warm)

	// Cold: each post-delta instance solved from scratch, cache off.
	coldEng, err := sched.New(sched.WithBoundCache(0))
	if err != nil {
		return err
	}
	cold := row{name: "cold (Solve)", waits: "-"}
	cur := in
	ctx, cancel = withTimeout(timeout)
	start = time.Now()
	for _, d := range deltas {
		next, aerr := d.Apply(cur)
		if aerr != nil {
			continue // same skip as the warm stream
		}
		evStart := time.Now()
		res, serr := coldEng.Solve(ctx, next,
			sched.WithoutWarmStart(), sched.WithLPBackend(lpKind), sched.WithSeed(seed))
		if serr != nil {
			cancel()
			return fmt.Errorf("cold solve: %w", serr)
		}
		cold.latencies = append(cold.latencies, time.Since(evStart))
		cold.solved++
		cold.lastMs = res.Makespan
		cur = next
	}
	cold.total = time.Since(start)
	cancel()
	rows = append(rows, cold)

	tab := table.New(
		fmt.Sprintf("online re-optimization — %s n=%d m=%d K=%d, %d events", in.Kind, in.N, in.M, in.K, len(deltas)),
		"mode", "events", "p50", "p90", "p99", "max", "wall", "final-ms", "gov-waits")
	for _, r := range rows {
		tab.AddRow(r.name, fmt.Sprintf("%d", r.solved),
			fmtDur(percentile(r.latencies, 0.50)), fmtDur(percentile(r.latencies, 0.90)),
			fmtDur(percentile(r.latencies, 0.99)), fmtDur(percentile(r.latencies, 1.0)),
			fmtDur(r.total), fmt.Sprintf("%.0f", r.lastMs), r.waits)
	}
	fmt.Println(tab.String())
	if len(warm.latencies) > 0 && len(cold.latencies) > 0 {
		fmt.Printf("p50 speedup: %.1fx, wall speedup: %.1fx\n\n",
			float64(percentile(cold.latencies, 0.50))/float64(percentile(warm.latencies, 0.50)),
			float64(cold.total)/float64(warm.total))
	}
	return nil
}

// percentile returns the q-quantile (0 < q <= 1) of the latencies by the
// nearest-rank method; zero for an empty sample.
func percentile(lat []time.Duration, q float64) time.Duration {
	if len(lat) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func withTimeout(d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		return context.Background(), func() {}
	}
	return context.WithTimeout(context.Background(), d)
}

func fmtDur(d time.Duration) string {
	return d.Round(10 * time.Microsecond).String()
}

// fmtIters renders an LP pivot count, dashing out solvers that run no LPs.
func fmtIters(n int64) string {
	if n <= 0 {
		return "-"
	}
	return fmt.Sprintf("%d", n)
}

// presolveCell renders the presolve pipeline's aggregate work between two
// lp.PresolveTotals snapshots: percentage of rows and nonzeros removed
// across every presolve run the row triggered, plus the mean number of
// Ruiz scaling passes per run. "-" when no presolve ran (solver without
// LPs, or -no-presolve).
func presolveCell(before, after lp.PresolveTotalsSnapshot) string {
	runs := after.Runs - before.Runs
	if runs <= 0 {
		return "-"
	}
	rb := after.RowsBefore - before.RowsBefore
	ra := after.RowsAfter - before.RowsAfter
	nb := after.NNZBefore - before.NNZBefore
	na := after.NNZAfter - before.NNZAfter
	sp := after.ScalePasses - before.ScalePasses
	rowPct, nnzPct := 0.0, 0.0
	if rb > 0 {
		rowPct = 100 * float64(rb-ra) / float64(rb)
	}
	if nb > 0 {
		nnzPct = 100 * float64(nb-na) / float64(nb)
	}
	return fmt.Sprintf("r-%.0f%% z-%.0f%% s%.1f", rowPct, nnzPct, float64(sp)/float64(runs))
}

// dualSearchSolvers names the registry solvers that run a dual-approximation
// guess search (and therefore honor -search-workers).
var dualSearchSolvers = map[string]bool{
	sched.AlgoPTAS:     true,
	sched.AlgoRounding: true,
	sched.AlgoRA2:      true,
	sched.AlgoPT3:      true,
}

// fmtSearchWorkers renders the effective speculative search parallelism of
// a solver row — the requested width clamped to what the runtime can
// overlap — dashing out solvers without a guess search.
func fmtSearchWorkers(solver string, n int) string {
	if !dualSearchSolvers[solver] {
		return "-"
	}
	return fmt.Sprintf("%d", dual.EffectiveParallelism(n))
}
