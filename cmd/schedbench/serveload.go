package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/serve"
	"repro/internal/table"
)

// serveLoadBench is the `-serve-load` mode: an open-loop load generator
// against the solver service. Arrivals are Poisson at -rps for -dur —
// open-loop means the arrival process never waits for responses, so a
// saturated server accumulates queue (and sheds) instead of silently
// slowing the generator down, which is the regime admission control is for.
// A -dup-frac fraction of requests repeats one anchor instance (these
// exercise coalescing and the bound cache); the rest are pairwise-distinct
// instances. Reported: completed throughput, latency percentiles over
// completed requests, shed rate (429/503 responses), and the coalesce hit
// rate (follower fraction of completed solves, from the X-Coalesce
// header). With -url empty an in-process server over a fresh engine is
// started; point -url at a running schedserve to measure over real
// sockets.
func serveLoadBench(url string, rps float64, dur time.Duration, dupFrac float64, seed int64, n, m, k int, reqTimeout time.Duration) error {
	if rps <= 0 || dur <= 0 {
		return fmt.Errorf("serve-load: need -rps > 0 and -dur > 0")
	}
	if dupFrac < 0 || dupFrac > 1 {
		return fmt.Errorf("serve-load: -dup-frac must be in [0,1]")
	}
	var shutdown func()
	if url == "" {
		var err error
		url, shutdown, err = startLocalServer()
		if err != nil {
			return err
		}
		defer shutdown()
	}

	// Payloads: one anchor instance for the duplicated share of traffic,
	// and a locked generator handing out pairwise-distinct instances for
	// the rest. Every payload pins its per-request deadline and seed so the
	// coalescing digest matches across duplicates.
	rng := rand.New(rand.NewSource(seed))
	params := gen.Params{N: n, M: m, K: k}
	anchor, err := encodeSolveRequest(gen.Unrelated(rng, params), reqTimeout)
	if err != nil {
		return err
	}
	var genMu sync.Mutex
	nextDistinct := func() ([]byte, error) {
		genMu.Lock()
		defer genMu.Unlock()
		return encodeSolveRequest(gen.Unrelated(rng, params), reqTimeout)
	}

	type outcome struct {
		status   int
		latency  time.Duration
		coalesce string
		err      bool
	}
	var (
		mu       sync.Mutex
		outs     []outcome
		wg       sync.WaitGroup
		client   = &http.Client{Timeout: reqTimeout + 5*time.Second}
		arrivals = 0
	)
	arrRng := rand.New(rand.NewSource(seed + 1))
	start := time.Now()
	end := start.Add(dur)
	for now := start; now.Before(end); now = time.Now() {
		// Exponential inter-arrival times make the arrival process Poisson.
		wait := time.Duration(arrRng.ExpFloat64() / rps * float64(time.Second))
		time.Sleep(wait)
		if !time.Now().Before(end) {
			break
		}
		payload := anchor
		if arrRng.Float64() >= dupFrac {
			if payload, err = nextDistinct(); err != nil {
				return err
			}
		}
		arrivals++
		wg.Add(1)
		go func(body []byte) {
			defer wg.Done()
			t0 := time.Now()
			o := outcome{}
			resp, err := client.Post(url+"/v1/solve", "application/json", bytes.NewReader(body))
			o.latency = time.Since(t0)
			if err != nil {
				o.err = true
			} else {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				o.status = resp.StatusCode
				o.coalesce = resp.Header.Get("X-Coalesce")
			}
			mu.Lock()
			outs = append(outs, o)
			mu.Unlock()
		}(payload)
	}
	wg.Wait()
	wall := time.Since(start)

	var (
		okLat              []time.Duration
		ok, shed, failed   int
		leaders, followers int
	)
	for _, o := range outs {
		switch {
		case o.err:
			failed++
		case o.status == http.StatusOK:
			ok++
			okLat = append(okLat, o.latency)
			switch o.coalesce {
			case "leader":
				leaders++
			case "follower":
				followers++
			}
		case o.status == http.StatusTooManyRequests || o.status == http.StatusServiceUnavailable:
			shed++
		default:
			failed++
		}
	}
	throughput := float64(ok) / wall.Seconds()
	shedRate := 0.0
	if len(outs) > 0 {
		shedRate = float64(shed) / float64(len(outs))
	}
	coalesceRate := 0.0
	if leaders+followers > 0 {
		coalesceRate = float64(followers) / float64(leaders+followers)
	}

	tab := table.New(
		fmt.Sprintf("serve-load — open loop, rps=%g dur=%s dup-frac=%g, unrelated n=%d m=%d K=%d, req-timeout=%s",
			rps, dur, dupFrac, n, m, k, reqTimeout),
		"sent", "ok", "shed", "failed", "throughput", "p50", "p90", "p99", "max", "shed-rate", "coalesce-hit")
	tab.AddRow(
		fmt.Sprintf("%d", arrivals), fmt.Sprintf("%d", ok), fmt.Sprintf("%d", shed), fmt.Sprintf("%d", failed),
		fmt.Sprintf("%.1f/s", throughput),
		fmtDur(percentile(okLat, 0.50)), fmtDur(percentile(okLat, 0.90)),
		fmtDur(percentile(okLat, 0.99)), fmtDur(percentile(okLat, 1.0)),
		fmt.Sprintf("%.3f", shedRate), fmt.Sprintf("%.3f", coalesceRate))
	fmt.Println(tab.String())

	// One machine-readable line per run, for the BENCH_* artifacts.
	rec := map[string]any{
		"bench": "serve-load", "rps": rps, "durSec": dur.Seconds(), "dupFrac": dupFrac,
		"n": n, "m": m, "k": k,
		"sent": arrivals, "ok": ok, "shed": shed, "failed": failed,
		"throughputPerSec": round3(throughput),
		"p50Ms":            latMs(okLat, 0.50), "p90Ms": latMs(okLat, 0.90),
		"p99Ms": latMs(okLat, 0.99), "maxMs": latMs(okLat, 1.0),
		"shedRate": round3(shedRate), "coalesceHitRate": round3(coalesceRate),
		"leaders": leaders, "followers": followers,
	}
	line, _ := json.Marshal(rec)
	fmt.Println(string(line))

	// Server-side counters close the loop on the client-observed numbers.
	if resp, err := client.Get(url + "/statsz"); err == nil {
		var pretty bytes.Buffer
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if json.Indent(&pretty, raw, "", " ") == nil {
			fmt.Printf("statsz: %s\n", pretty.String())
		}
	}
	if ok == 0 {
		return fmt.Errorf("serve-load: no request completed successfully (%d sent, %d shed, %d failed)", arrivals, shed, failed)
	}
	return nil
}

// encodeSolveRequest wraps an instance in the service's request envelope.
func encodeSolveRequest(in *core.Instance, timeout time.Duration) ([]byte, error) {
	var instJSON bytes.Buffer
	if err := in.WriteJSON(&instJSON); err != nil {
		return nil, err
	}
	req := serve.SolveRequest{
		Instance: json.RawMessage(instJSON.Bytes()),
		Options:  serve.SolveOptions{Timeout: serve.Duration(timeout)},
	}
	return json.Marshal(req)
}

// startLocalServer runs an in-process solver service on a loopback port.
func startLocalServer() (url string, shutdown func(), err error) {
	eng, err := sched.New()
	if err != nil {
		return "", nil, err
	}
	srv := serve.New(eng, serve.Config{Linger: 250 * time.Millisecond})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	fmt.Fprintf(os.Stderr, "serve-load: started in-process server on %s\n", ln.Addr())
	return "http://" + ln.Addr().String(), func() { hs.Close() }, nil
}

func round3(v float64) float64 { return float64(int(v*1000+0.5)) / 1000 }

func latMs(lat []time.Duration, q float64) float64 {
	return round3(float64(percentile(lat, q)) / float64(time.Millisecond))
}
