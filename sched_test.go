package sched

import (
	"bytes"
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/gen"
)

func TestSolveDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		name string
		in   *Instance
		want string
	}{
		{"identical", gen.Identical(rng, gen.Params{N: 8, M: 2, K: 2}), "ptas"},
		{"uniform", gen.Uniform(rng, gen.Params{N: 8, M: 2, K: 2}), "ptas"},
		{"restricted class-uniform", gen.RestrictedClassUniform(rng, gen.Params{N: 8, M: 2, K: 2}), "class-uniform-ra-2approx"},
		{"unrelated class-uniform", gen.UnrelatedClassUniform(rng, gen.Params{N: 8, M: 2, K: 2}), "class-uniform-pt-3approx"},
		{"unrelated", gen.Unrelated(rng, gen.Params{N: 8, M: 2, K: 2}), "randomized-rounding"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Solve(tc.in)
			if err != nil {
				t.Fatalf("Solve: %v", err)
			}
			if len(res.Algorithm) < len(tc.want) || res.Algorithm[:len(tc.want)] != tc.want {
				t.Errorf("algorithm = %q, want prefix %q", res.Algorithm, tc.want)
			}
			if res.Schedule == nil || !res.Schedule.Complete() {
				t.Fatal("incomplete schedule")
			}
			if err := res.Schedule.Validate(tc.in); err != nil {
				t.Errorf("Validate: %v", err)
			}
		})
	}
}

func TestSolveWithContextAndPortfolio(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	in := gen.Identical(rng, gen.Params{N: 12, M: 3, K: 2})

	res, err := SolveWithContext(context.Background(), in)
	if err != nil {
		t.Fatalf("SolveWithContext: %v", err)
	}
	if err := res.Schedule.Validate(in); err != nil {
		t.Errorf("Validate: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	pr, err := Portfolio(ctx, in)
	if err != nil {
		t.Fatalf("Portfolio: %v", err)
	}
	if len(pr.Outcomes) < 2 {
		t.Fatalf("portfolio raced %d solvers, want >= 2", len(pr.Outcomes))
	}
	for _, o := range pr.Outcomes {
		if o.Err == nil && o.Result.Makespan < pr.Best.Makespan-1e-9 {
			t.Errorf("member %s beat the reported best (%v < %v)", o.Solver, o.Result.Makespan, pr.Best.Makespan)
		}
	}
	if err := pr.Best.Schedule.Validate(in); err != nil {
		t.Errorf("portfolio best invalid: %v", err)
	}
	if len(Solvers()) < 5 {
		t.Errorf("registry lists %d solvers, want the full paper set", len(Solvers()))
	}
}

func TestPublicConstructorsAndSolvers(t *testing.T) {
	in, err := NewIdentical([]float64{4, 3, 2, 2}, []int{0, 0, 1, 1}, []float64{2, 3}, 2)
	if err != nil {
		t.Fatalf("NewIdentical: %v", err)
	}
	lpt, err := LPT(in)
	if err != nil {
		t.Fatalf("LPT: %v", err)
	}
	gr, err := Greedy(in)
	if err != nil {
		t.Fatalf("Greedy: %v", err)
	}
	opt, proven, err := Optimal(in, 0)
	if err != nil || !proven {
		t.Fatalf("Optimal: %v (proven=%v)", err, proven)
	}
	for _, r := range []Result{lpt, gr} {
		if r.Makespan < opt.Makespan-1e-9 {
			t.Errorf("%s makespan %v below optimum %v", r.Algorithm, r.Makespan, opt.Makespan)
		}
	}
	res, err := PTAS(in, 0.25)
	if err != nil {
		t.Fatalf("PTAS: %v", err)
	}
	if res.Makespan < opt.Makespan-1e-9 {
		t.Errorf("PTAS makespan %v below optimum %v", res.Makespan, opt.Makespan)
	}
}

func TestRandomizedRoundingPublic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := gen.Unrelated(rng, gen.Params{N: 10, M: 3, K: 2})
	res, err := RandomizedRounding(in, rng)
	if err != nil {
		t.Fatalf("RandomizedRounding: %v", err)
	}
	if err := res.Schedule.Validate(in); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if res.LowerBound <= 0 || res.Makespan < res.LowerBound-1e-9 {
		t.Errorf("inconsistent bounds: makespan=%v lb=%v", res.Makespan, res.LowerBound)
	}
}

func TestReadInstanceRoundTrip(t *testing.T) {
	in, err := NewUniform([]float64{5, 6}, []int{0, 1}, []float64{1, 2}, []float64{1, 2})
	if err != nil {
		t.Fatalf("NewUniform: %v", err)
	}
	var buf bytes.Buffer
	if err := in.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	out, err := ReadInstance(&buf)
	if err != nil {
		t.Fatalf("ReadInstance: %v", err)
	}
	if out.N != 2 || out.Kind != Uniform {
		t.Errorf("round trip lost data: %v", out)
	}
}

func TestOptimalRejectsLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	in := gen.Identical(rng, gen.Params{N: 40, M: 3, K: 2})
	if _, _, err := Optimal(in, 0); err == nil {
		t.Error("Optimal accepted a 40-job instance under the default guard")
	}
}

func TestLocalSearchPublic(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	in := gen.Unrelated(rng, gen.Params{N: 15, M: 3, K: 3})
	g, err := Greedy(in)
	if err != nil {
		t.Fatal(err)
	}
	improved := LocalSearch(in, g.Schedule)
	if improved.Makespan(in) > g.Makespan+1e-9 {
		t.Error("LocalSearch worsened the schedule")
	}
	if err := improved.Validate(in); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestSplittablePublic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	in := gen.UnrelatedClassUniform(rng, gen.Params{N: 10, M: 3, K: 3})
	split, ms, err := Splittable(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := split.Validate(in); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if ms <= 0 {
		t.Errorf("makespan = %v", ms)
	}
}

func TestIdenticalHeuristicsPublic(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	in := gen.Identical(rng, gen.Params{N: 20, M: 4, K: 3})
	for _, f := range []func(*Instance) (Result, error){NextFitBatch, SplitBigClasses} {
		res, err := f(in)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Schedule.Validate(in); err != nil {
			t.Errorf("%s: %v", res.Algorithm, err)
		}
	}
}

func TestBuildTimelinePublic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	in := gen.Identical(rng, gen.Params{N: 12, M: 3, K: 2})
	res, err := Greedy(in)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := BuildTimeline(in, res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Makespan != res.Makespan {
		t.Errorf("timeline makespan %v != schedule makespan %v", tl.Makespan, res.Makespan)
	}
	if len(tl.Gantt(60)) == 0 {
		t.Error("empty gantt")
	}
}

func TestFigure1Public(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	in := gen.Uniform(rng, gen.Params{N: 8, M: 3, K: 2})
	fig, err := Figure1(in, 1000, 0.5)
	if err != nil || len(fig) == 0 {
		t.Errorf("Figure1: %v (len=%d)", err, len(fig))
	}
}
