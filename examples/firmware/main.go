// Firmware: restricted assignment with class-uniform restrictions — the
// Theorem 3.10 special case, with its 2-approximation.
//
// A test lab flashes firmware images onto device batches. Each firmware
// family (class) can only run on the rigs holding the matching hardware
// revision — the same rig set for every batch of the family (class-uniform
// restrictions). Flashing a family on a rig first requires installing its
// toolchain (the setup).
//
// Run with: go run ./examples/firmware
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	rng := rand.New(rand.NewSource(3))

	const (
		nBatches  = 30
		nFamilies = 6
		nRigs     = 8
	)
	// Rig compatibility per firmware family: a contiguous-ish random rig
	// subset, identical for all batches of the family.
	famRigs := make([][]int, nFamilies)
	for f := range famRigs {
		for r := 0; r < nRigs; r++ {
			if rng.Float64() < 0.45 {
				famRigs[f] = append(famRigs[f], r)
			}
		}
		if len(famRigs[f]) == 0 {
			famRigs[f] = []int{rng.Intn(nRigs)}
		}
	}

	sizes := make([]float64, nBatches)
	family := make([]int, nBatches)
	eligible := make([][]int, nBatches)
	for b := range sizes {
		sizes[b] = float64(3 + rng.Intn(28)) // 3–30 minutes per batch
		family[b] = rng.Intn(nFamilies)
		eligible[b] = famRigs[family[b]]
	}
	toolchain := make([]float64, nFamilies)
	for f := range toolchain {
		toolchain[f] = float64(10 + rng.Intn(21)) // 10–30 minutes install
	}

	in, err := sched.NewRestricted(sizes, family, toolchain, nRigs, eligible)
	if err != nil {
		log.Fatal(err)
	}

	// The engine detects the class-uniform structure and auto-selects the
	// Theorem 3.10 2-approximation — the strongest applicable solver.
	eng, err := sched.New()
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Solve(context.Background(), in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s:    makespan %.1f min\n", res.Algorithm, res.Makespan)
	fmt.Printf("certified bound:    optimum ≥ %.1f min (ratio ≤ %.2f)\n",
		res.LowerBound, res.Makespan/res.LowerBound)

	fmt.Println("\nrig plan:")
	loads := res.Schedule.Loads(in)
	for r, js := range res.Schedule.MachineJobs(in) {
		fams := map[int]bool{}
		for _, j := range js {
			fams[family[j]] = true
		}
		fmt.Printf("  rig %d: %2d batches, %d toolchains installed, busy %.1f min\n",
			r, len(js), len(fams), loads[r])
	}
}
