// Online: incremental re-solving over a live job stream — the online
// re-optimization workload Engine.Resolve serves.
//
// A render farm schedules frames (jobs) grouped by scene (class: switching
// a node to a new scene loads its assets, the setup). The farm is live:
// frames arrive and get cancelled, a node drains for maintenance, another
// joins. Rather than re-solving each mutated instance from scratch, the
// farm opens a re-solvable handle once and folds each event into it:
// the previous schedule is patched into a feasible fallback, certified
// bounds carry across the mutation where the theory allows (a job arrival
// can only raise the optimum), and the solver's LP relaxation is patched
// in place and re-enters the simplex from its previous basis.
//
// Run with: go run ./examples/online
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro"
)

func main() {
	rng := rand.New(rand.NewSource(5))

	const (
		nodes  = 6  // render nodes (unrelated: GPU generations differ per scene)
		frames = 48 // initial frames queued
		scenes = 5  // asset groups
	)

	// Frame cost depends on the node (unrelated machines); loading a scene's
	// assets onto a node is the setup.
	class := make([]int, frames)
	for j := range class {
		class[j] = rng.Intn(scenes)
	}
	p := make([][]float64, nodes)
	s := make([][]float64, nodes)
	for i := range p {
		speed := 0.5 + rng.Float64() // node generation factor
		p[i] = make([]float64, frames)
		for j := range p[i] {
			p[i][j] = (4 + rng.Float64()*12) / speed
		}
		s[i] = make([]float64, scenes)
		for k := range s[i] {
			s[i][k] = (6 + rng.Float64()*10) / speed
		}
	}
	in, err := sched.NewUnrelated(p, class, s)
	if err != nil {
		log.Fatal(err)
	}

	eng, err := sched.New()
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// Open once: the solve runs normally, and the engine retains the
	// solver's warm-start state for the handle.
	start := time.Now()
	h, err := eng.Open(ctx, in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial plan   %3d frames on %d nodes  makespan %6.1f  (%s, %v)\n",
		in.N, in.M, h.Result().Makespan, h.Result().Algorithm, time.Since(start).Round(time.Millisecond))

	// The shift's events, folded into the handle one at a time.
	newFrame := func() []float64 {
		proc := make([]float64, h.Instance().M)
		for i := range proc {
			proc[i] = 4 + rng.Float64()*12
		}
		return proc
	}
	// Each delta is built against the handle's current instance (an arrival
	// needs one processing time per currently-live node).
	events := []struct {
		what  string
		delta func() sched.Delta
	}{
		{"frame arrives (scene 2)", func() sched.Delta { return sched.ArriveJobUnrelated(2, newFrame()) }},
		{"frame arrives (scene 0)", func() sched.Delta { return sched.ArriveJobUnrelated(0, newFrame()) }},
		{"frame 7 cancelled", func() sched.Delta { return sched.DepartJob(7) }},
		{"node 3 drains", func() sched.Delta { return sched.RemoveMachine(3) }},
		{"frame arrives (scene 4)", func() sched.Delta { return sched.ArriveJobUnrelated(4, newFrame()) }},
	}
	for _, ev := range events {
		start = time.Now()
		next, err := eng.Resolve(ctx, h, ev.delta())
		if err != nil {
			log.Fatal(err)
		}
		h = next
		res := h.Result()
		fmt.Printf("%-24s n=%-3d m=%d  makespan %6.1f  lower %6.1f  re-solved in %v\n",
			ev.what, h.Instance().N, h.Instance().M, res.Makespan, res.LowerBound,
			time.Since(start).Round(time.Millisecond))
	}

	// Stream does the same fold in one call, reporting per-event latency —
	// the online-serving metric (how long the plan stayed stale per event).
	deltas := []sched.Delta{
		sched.ArriveJobUnrelated(1, newFrame()),
		sched.ArriveJobUnrelated(3, newFrame()),
		sched.DepartJob(2),
	}
	final, results, err := eng.Stream(ctx, h.Instance(), deltas)
	if err != nil {
		log.Fatal(err)
	}
	var worst time.Duration
	for _, r := range results {
		if r.Err == nil && r.Latency > worst {
			worst = r.Latency
		}
	}
	fmt.Printf("stream of %d further events: final makespan %.1f, worst event latency %v\n",
		len(deltas), final.Result().Makespan, worst.Round(time.Millisecond))
}
