// Printshop: uniformly related machines with changeover setups — the
// motivating production-system scenario from the paper's introduction.
//
// A print shop owns presses of different generations (speeds 1×, 2×, 4×).
// Print jobs are grouped by paper stock; switching stock requires cleaning
// and recalibration whose duration depends on the stock (and, through the
// press speed, on the machine). We schedule a day's workload with the
// Section 2 PTAS at two accuracies and with the Lemma 2.1 LPT rule, all
// through one engine handle.
//
// Run with: go run ./examples/printshop
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	rng := rand.New(rand.NewSource(7))

	const (
		nJobs   = 40
		nStocks = 5
	)
	speeds := []float64{1, 1, 2, 2, 4} // five presses, three generations

	jobs := make([]float64, nJobs)
	stock := make([]int, nJobs)
	for j := range jobs {
		jobs[j] = float64(5 + rng.Intn(56)) // 5–60 minutes at speed 1
		stock[j] = rng.Intn(nStocks)
	}
	setups := make([]float64, nStocks)
	for k := range setups {
		setups[k] = float64(15 + rng.Intn(31)) // 15–45 minutes at speed 1
	}

	in, err := sched.NewUniform(jobs, stock, setups, speeds)
	if err != nil {
		log.Fatal(err)
	}

	eng, err := sched.New()
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	lpt, err := eng.Solve(ctx, in, sched.WithAlgorithm("lpt"), sched.WithoutWarmStart())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LPT (4.74-approx):   makespan %.1f min\n", lpt.Makespan)

	for _, eps := range []float64{0.5, 0.25} {
		res, err := eng.Solve(ctx, in,
			sched.WithAlgorithm("ptas"), sched.WithEps(eps), sched.WithoutWarmStart())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("PTAS ε=%-5.3g:        makespan %.1f min (certified ≥ %.1f)\n",
			eps, res.Makespan, res.LowerBound)
	}

	// The detailed plan re-solves the same fingerprint: this run
	// warm-starts from the bounds the rows above left in the engine's
	// cache, so its dual search starts already narrowed.
	res, err := eng.Solve(ctx, in, sched.WithAlgorithm("ptas"), sched.WithEps(0.25))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nper-press plan (ε=1/4):")
	loads := res.Schedule.Loads(in)
	for i, js := range res.Schedule.MachineJobs(in) {
		stocks := map[int]bool{}
		for _, j := range js {
			stocks[stock[j]] = true
		}
		fmt.Printf("  press %d (speed %.0fx): %2d jobs, %d stock changeovers, busy %.1f min\n",
			i, speeds[i], len(js), len(stocks), loads[i])
	}
}
