// Quickstart: build a small instance, solve it with the automatic
// dispatcher, and print the schedule.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// Eight jobs in three setup classes on three identical machines.
	// Sizes are minutes; a machine must spend the class's setup time
	// before the first job of that class it runs.
	jobs := []float64{12, 7, 9, 4, 16, 3, 8, 5}
	class := []int{0, 0, 1, 1, 2, 2, 2, 0}
	setups := []float64{6, 10, 4}

	in, err := sched.NewIdentical(jobs, class, setups, 3)
	if err != nil {
		log.Fatal(err)
	}

	res, err := sched.Solve(in) // identical machines → the Section 2 PTAS
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("algorithm:   %s\n", res.Algorithm)
	fmt.Printf("makespan:    %.1f minutes\n", res.Makespan)
	fmt.Printf("lower bound: %.1f (certified: no schedule can beat this)\n", res.LowerBound)
	for i, js := range res.Schedule.MachineJobs(in) {
		fmt.Printf("machine %d: jobs %v\n", i, js)
	}

	// The exact optimum is tractable at this size — compare.
	opt, proven, err := sched.Optimal(in, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact optimum: %.1f (proven=%v) — ratio %.3f\n",
		opt.Makespan, proven, res.Makespan/opt.Makespan)
}
