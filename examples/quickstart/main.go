// Quickstart: build a small instance, solve it through an engine handle,
// and print the schedule.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	// Eight jobs in three setup classes on three identical machines.
	// Sizes are minutes; a machine must spend the class's setup time
	// before the first job of that class it runs.
	jobs := []float64{12, 7, 9, 4, 16, 3, 8, 5}
	class := []int{0, 0, 1, 1, 2, 2, 2, 0}
	setups := []float64{6, 10, 4}

	in, err := sched.NewIdentical(jobs, class, setups, 3)
	if err != nil {
		log.Fatal(err)
	}

	// An Engine is the long-lived handle: it owns the solver registry and
	// a bound cache keyed by instance fingerprint, so repeated solves of
	// the same instance warm-start from each other's bounds.
	eng, err := sched.New()
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	res, err := eng.Solve(ctx, in) // identical machines → the Section 2 PTAS
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("algorithm:   %s\n", res.Algorithm)
	fmt.Printf("makespan:    %.1f minutes\n", res.Makespan)
	fmt.Printf("lower bound: %.1f (certified: no schedule can beat this)\n", res.LowerBound)
	for i, js := range res.Schedule.MachineJobs(in) {
		fmt.Printf("machine %d: jobs %v\n", i, js)
	}

	// The exact optimum is tractable at this size — compare. This second
	// solve of the same fingerprint warm-starts from the cached PTAS
	// bounds: the branch-and-bound's pruning threshold is primed before it
	// expands a single node.
	opt, err := eng.Solve(ctx, in, sched.WithAlgorithm("branch-and-bound"))
	if err != nil {
		log.Fatal(err)
	}
	// Certified optimal when the lower bound meets the makespan.
	proven := opt.LowerBound >= opt.Makespan
	fmt.Printf("exact optimum: %.1f (proven=%v, %d nodes) — ratio %.3f\n",
		opt.Makespan, proven, opt.Nodes, res.Makespan/opt.Makespan)
}
