// Datacenter: unrelated machines with data-staging setups — the computer-
// system scenario from the paper's introduction, where a setup models
// transferring the dataset a job group needs onto the executing machine.
//
// Heterogeneous nodes (GPU, big-memory, standard) process analytics jobs
// grouped by input dataset. A job's runtime depends on the node type
// (unrelated machines); before the first job over a dataset runs on a
// node, the dataset must be staged there (setup time = dataset size /
// node's ingest bandwidth). We compare the paper's randomized rounding
// (Theorem 3.3) with the greedy baseline, then race the whole applicable
// solver set in a portfolio while streaming its anytime progress — the
// incumbent makespan converging down, the certified bound converging up.
//
// Run with: go run ./examples/datacenter
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro"
)

func main() {
	rng := rand.New(rand.NewSource(11))

	const (
		nJobs     = 24
		nDatasets = 4
		nNodes    = 6
	)
	// Node ingest bandwidth (GB/min) and per-node speed profile.
	bandwidth := []float64{10, 10, 4, 4, 2, 2}
	affinity := make([][]float64, nNodes) // runtime multiplier per node
	for i := range affinity {
		affinity[i] = make([]float64, nDatasets)
		for d := range affinity[i] {
			affinity[i][d] = 0.5 + rng.Float64()*2.5 // 0.5×–3× depending on fit
		}
	}
	datasetGB := make([]float64, nDatasets)
	for d := range datasetGB {
		datasetGB[d] = float64(20 + rng.Intn(81)) // 20–100 GB
	}

	class := make([]int, nJobs)
	base := make([]float64, nJobs)
	for j := range class {
		class[j] = rng.Intn(nDatasets)
		base[j] = float64(2 + rng.Intn(19)) // 2–20 minutes at multiplier 1
	}
	p := make([][]float64, nNodes)
	s := make([][]float64, nNodes)
	for i := 0; i < nNodes; i++ {
		p[i] = make([]float64, nJobs)
		s[i] = make([]float64, nDatasets)
		for j := 0; j < nJobs; j++ {
			p[i][j] = base[j] * affinity[i][class[j]]
		}
		for d := 0; d < nDatasets; d++ {
			s[i][d] = datasetGB[d] / bandwidth[i] // staging minutes
		}
	}

	in, err := sched.NewUnrelated(p, class, s)
	if err != nil {
		log.Fatal(err)
	}

	eng, err := sched.New()
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// Head-to-head, solving cold so each row measures its own algorithm.
	greedy, err := eng.Solve(ctx, in, sched.WithAlgorithm("greedy"), sched.WithoutWarmStart())
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Solve(ctx, in, sched.WithAlgorithm("rounding"), sched.WithSeed(11), sched.WithoutWarmStart())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("greedy baseline:      makespan %.1f min\n", greedy.Makespan)
	fmt.Printf("randomized rounding:  makespan %.1f min\n", res.Makespan)
	fmt.Printf("certified LP bound:   no schedule beats %.1f min\n", res.LowerBound)
	fmt.Printf("rounding is within %.2f× of optimal on this instance\n",
		res.Makespan/res.LowerBound)

	// Portfolio race with a live event stream: every incumbent improvement
	// and certified-bound update is printed as the racers publish it. Cold,
	// so the whole anytime trajectory is visible (a warm-started race would
	// begin at the cached bounds and have little left to improve).
	events := make(chan sched.Event, 256)
	pr, err := eng.Portfolio(ctx, in,
		sched.WithEvents(events), sched.WithTimeout(5*time.Second), sched.WithoutWarmStart())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nportfolio race (winner %s, makespan %.1f):\n", pr.Winner, pr.Best.Makespan)
drain:
	for {
		select {
		case ev := <-events:
			fmt.Printf("  %8s  %-11s %.1f\n", ev.At.Round(10*time.Microsecond), ev.Kind, ev.Value)
		default:
			break drain
		}
	}

	fmt.Println("\nstaging plan (portfolio best):")
	loads := pr.Best.Schedule.Loads(in)
	for i, js := range pr.Best.Schedule.MachineJobs(in) {
		datasets := map[int]bool{}
		for _, j := range js {
			datasets[class[j]] = true
		}
		fmt.Printf("  node %d: %2d jobs, %d datasets staged, busy %.1f min\n",
			i, len(js), len(datasets), loads[i])
	}
}
