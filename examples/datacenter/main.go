// Datacenter: unrelated machines with data-staging setups — the computer-
// system scenario from the paper's introduction, where a setup models
// transferring the dataset a job group needs onto the executing machine.
//
// Heterogeneous nodes (GPU, big-memory, standard) process analytics jobs
// grouped by input dataset. A job's runtime depends on the node type
// (unrelated machines); before the first job over a dataset runs on a
// node, the dataset must be staged there (setup time = dataset size /
// node's ingest bandwidth). We compare the paper's randomized rounding
// (Theorem 3.3) with the greedy baseline.
//
// Run with: go run ./examples/datacenter
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	rng := rand.New(rand.NewSource(11))

	const (
		nJobs     = 24
		nDatasets = 4
		nNodes    = 6
	)
	// Node ingest bandwidth (GB/min) and per-node speed profile.
	bandwidth := []float64{10, 10, 4, 4, 2, 2}
	affinity := make([][]float64, nNodes) // runtime multiplier per node
	for i := range affinity {
		affinity[i] = make([]float64, nDatasets)
		for d := range affinity[i] {
			affinity[i][d] = 0.5 + rng.Float64()*2.5 // 0.5×–3× depending on fit
		}
	}
	datasetGB := make([]float64, nDatasets)
	for d := range datasetGB {
		datasetGB[d] = float64(20 + rng.Intn(81)) // 20–100 GB
	}

	class := make([]int, nJobs)
	base := make([]float64, nJobs)
	for j := range class {
		class[j] = rng.Intn(nDatasets)
		base[j] = float64(2 + rng.Intn(19)) // 2–20 minutes at multiplier 1
	}
	p := make([][]float64, nNodes)
	s := make([][]float64, nNodes)
	for i := 0; i < nNodes; i++ {
		p[i] = make([]float64, nJobs)
		s[i] = make([]float64, nDatasets)
		for j := 0; j < nJobs; j++ {
			p[i][j] = base[j] * affinity[i][class[j]]
		}
		for d := 0; d < nDatasets; d++ {
			s[i][d] = datasetGB[d] / bandwidth[i] // staging minutes
		}
	}

	in, err := sched.NewUnrelated(p, class, s)
	if err != nil {
		log.Fatal(err)
	}

	greedy, err := sched.Greedy(in)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sched.RandomizedRounding(in, rng)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("greedy baseline:      makespan %.1f min\n", greedy.Makespan)
	fmt.Printf("randomized rounding:  makespan %.1f min\n", res.Makespan)
	fmt.Printf("certified LP bound:   no schedule beats %.1f min\n", res.LowerBound)
	fmt.Printf("rounding is within %.2f× of optimal on this instance\n",
		res.Makespan/res.LowerBound)

	fmt.Println("\nstaging plan (rounding):")
	loads := res.Schedule.Loads(in)
	for i, js := range res.Schedule.MachineJobs(in) {
		datasets := map[int]bool{}
		for _, j := range js {
			datasets[class[j]] = true
		}
		fmt.Printf("  node %d: %2d jobs, %d datasets staged, busy %.1f min\n",
			i, len(js), len(datasets), loads[i])
	}
}
