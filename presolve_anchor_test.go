package sched_test

import (
	"math/rand"
	"testing"

	"repro/internal/baseline"
	"repro/internal/gen"
	"repro/internal/lp"
	"repro/internal/rounding"
)

// TestPresolveAnchorReductions pins the presolve pipeline's behavior on the
// LP-backend anchor shape (M=20, N=200, K=12 — 4220 rows, the
// BenchmarkColdBuildLarge instance).
//
// At the envelope T=ub no x_ij is clamped (every p_ij is below the greedy
// makespan), so the classical reductions find nothing — the measured cold
// speedup there comes from Ruiz equilibration cutting solver iterations,
// and this test asserts the scaling engaged. At a tight mid-search guess
// (T = 0.35·ub) the clamps give presolve real material, and the row and
// nonzero reductions must clear 20%.
func TestPresolveAnchorReductions(t *testing.T) {
	if testing.Short() {
		t.Skip("anchor-sized LP build")
	}
	rng := rand.New(rand.NewSource(1))
	in := gen.Unrelated(rng, gen.Params{N: 200, M: 20, K: 12})
	g, err := baseline.Greedy(in)
	if err != nil {
		t.Fatal(err)
	}
	ub := g.Makespan(in)

	// Envelope solve: no structural material, but scaling must run and the
	// solve must go through the wrapper (info populated, not bypassed).
	rel, err := rounding.NewRelaxation(in, rounding.RelaxationConfig{Envelope: ub, Backend: lp.Sparse})
	if err != nil {
		t.Fatal(err)
	}
	frac, err := rel.ReSolve(ub)
	if err != nil {
		t.Fatal(err)
	}
	if frac == nil {
		t.Fatal("envelope guess infeasible")
	}
	pi := rel.Presolve()
	if pi == nil || pi.Bypassed {
		t.Fatalf("envelope solve did not run through presolve: %+v", pi)
	}
	if pi.ScalePasses == 0 {
		t.Fatal("Ruiz scaling did not engage on the anchor")
	}
	t.Logf("envelope: rows %d→%d, nnz %d→%d, scale passes %d",
		pi.RowsBefore, pi.RowsAfter, pi.NNZBefore, pi.NNZAfter, pi.ScalePasses)

	// Clamped variant: a fresh relaxation whose first solve happens at a
	// tight guess, so the p_ij > T clamps are part of the presolved
	// problem. This is where the reductions must bite.
	rel2, err := rounding.NewRelaxation(in, rounding.RelaxationConfig{Envelope: ub, Backend: lp.Sparse})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rel2.ReSolve(0.35 * ub); err != nil {
		t.Fatal(err)
	}
	pi2 := rel2.Presolve()
	if pi2 == nil {
		t.Fatal("clamped solve did not run through presolve")
	}
	t.Logf("clamped T=0.35·ub: rows %d→%d (%.1f%%), nnz %d→%d (%.1f%%)",
		pi2.RowsBefore, pi2.RowsAfter, 100*pi2.RowReduction(),
		pi2.NNZBefore, pi2.NNZAfter, 100*pi2.NNZReduction())
	if pi2.RowReduction() < 0.20 {
		t.Errorf("row reduction %.1f%% below the 20%% anchor target", 100*pi2.RowReduction())
	}
	if pi2.NNZReduction() < 0.20 {
		t.Errorf("nnz reduction %.1f%% below the 20%% anchor target", 100*pi2.NNZReduction())
	}
}
