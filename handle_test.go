package sched

import (
	"context"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/testutil"
)

func TestEngineFunctionalOptions(t *testing.T) {
	eng, err := New()
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rng := rand.New(rand.NewSource(1))
	in := gen.Identical(rng, gen.Params{N: 10, M: 3, K: 2})

	auto, err := eng.Solve(context.Background(), in)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !strings.HasPrefix(auto.Algorithm, "ptas") {
		t.Errorf("auto dispatch chose %q, want the PTAS", auto.Algorithm)
	}
	if err := auto.Schedule.Validate(in); err != nil {
		t.Errorf("Validate: %v", err)
	}

	named, err := eng.Solve(context.Background(), in, WithAlgorithm("lpt"), WithoutWarmStart())
	if err != nil {
		t.Fatalf("Solve(lpt): %v", err)
	}
	if named.Algorithm != "lpt" {
		t.Errorf("named dispatch ran %q, want lpt", named.Algorithm)
	}

	if _, err := eng.Solve(context.Background(), in, WithAlgorithm("no-such-solver")); err == nil {
		t.Error("unknown WithAlgorithm name did not error")
	}
}

func TestEngineWithSolversSubset(t *testing.T) {
	eng, err := New(WithSolvers("lpt", "greedy"))
	if err != nil {
		t.Fatalf("New(WithSolvers): %v", err)
	}
	if got := eng.Solvers(); len(got) != 2 {
		t.Fatalf("Solvers() = %v, want two", got)
	}
	rng := rand.New(rand.NewSource(2))
	in := gen.Identical(rng, gen.Params{N: 10, M: 3, K: 2})
	res, err := eng.Solve(context.Background(), in)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Algorithm != "lpt" {
		t.Errorf("heuristics-only engine chose %q, want lpt (the stronger of the pair)", res.Algorithm)
	}
	if names := eng.Applicable(in); len(names) != 2 || names[0] != "lpt" {
		t.Errorf("Applicable = %v, want [lpt greedy]", names)
	}

	if _, err := New(WithSolvers("nope")); err == nil {
		t.Error("unknown solver name in WithSolvers did not error")
	}
	if _, err := New(WithWorkers(0)); err == nil {
		t.Error("WithWorkers(0) did not error")
	}
}

func TestEngineWithDefaults(t *testing.T) {
	eng, err := New(WithDefaults(WithAlgorithm("greedy"), WithoutWarmStart()))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rng := rand.New(rand.NewSource(3))
	in := gen.Identical(rng, gen.Params{N: 10, M: 3, K: 2})
	res, err := eng.Solve(context.Background(), in)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Algorithm != "greedy" {
		t.Errorf("engine default WithAlgorithm ignored: got %q", res.Algorithm)
	}
	// Per-call options override the engine defaults.
	res, err = eng.Solve(context.Background(), in, WithAlgorithm("lpt"))
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Algorithm != "lpt" {
		t.Errorf("per-call option did not override default: got %q", res.Algorithm)
	}
}

// TestWarmStartReducesBranchAndBoundNodes is the warm-start regression
// test: the second solve of a fingerprint-identical instance must prime
// the branch-and-bound from the cached bounds and therefore expand strictly
// fewer nodes, while returning a schedule no worse than the first solve's.
func TestWarmStartReducesBranchAndBoundNodes(t *testing.T) {
	eng, err := New()
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rng := rand.New(rand.NewSource(1))
	in := gen.Uniform(rng, gen.Params{N: 12, M: 3, K: 3})
	ctx := context.Background()

	first, err := eng.Solve(ctx, in, WithAlgorithm("branch-and-bound"))
	if err != nil {
		t.Fatalf("first solve: %v", err)
	}
	if eng.CachedFingerprints() != 1 {
		t.Fatalf("cache holds %d fingerprints after first solve, want 1", eng.CachedFingerprints())
	}

	second, err := eng.Solve(ctx, in.Clone(), WithAlgorithm("branch-and-bound"))
	if err != nil {
		t.Fatalf("second solve: %v", err)
	}
	if second.Nodes >= first.Nodes {
		t.Errorf("warm-started solve expanded %d nodes, want fewer than the cold solve's %d",
			second.Nodes, first.Nodes)
	}
	if second.Makespan > first.Makespan+1e-9 {
		t.Errorf("warm-started makespan %v worse than first solve's %v", second.Makespan, first.Makespan)
	}
	if err := second.Schedule.Validate(in); err != nil {
		t.Errorf("warm-started schedule invalid: %v", err)
	}
	// The first solve proved optimality, so the warm-started result must
	// carry the matching certified bound.
	if second.LowerBound < second.Makespan-1e-9 {
		t.Errorf("warm-started solve lost the certified bound: lb=%v ms=%v",
			second.LowerBound, second.Makespan)
	}

	// A cold solve of the same instance ignores the cache again.
	cold, err := eng.Solve(ctx, in.Clone(), WithAlgorithm("branch-and-bound"), WithoutWarmStart())
	if err != nil {
		t.Fatalf("cold solve: %v", err)
	}
	if cold.Nodes != first.Nodes {
		t.Errorf("WithoutWarmStart solve expanded %d nodes, want the cold count %d", cold.Nodes, first.Nodes)
	}
}

func TestSolveBatchMixedKinds(t *testing.T) {
	eng, err := New(WithWorkers(4))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rng := rand.New(rand.NewSource(4))
	ins := []*Instance{
		gen.Identical(rng, gen.Params{N: 10, M: 3, K: 2}),
		gen.Uniform(rng, gen.Params{N: 10, M: 3, K: 2}),
		gen.Unrelated(rng, gen.Params{N: 10, M: 3, K: 2}),
		nil, // per-instance error, must not sink the batch
		gen.RestrictedClassUniform(rng, gen.Params{N: 10, M: 3, K: 2}),
	}
	out := eng.SolveBatch(context.Background(), ins)
	if len(out) != len(ins) {
		t.Fatalf("batch returned %d results for %d instances", len(out), len(ins))
	}
	for i, br := range out {
		if ins[i] == nil {
			if br.Err == nil {
				t.Errorf("nil instance %d did not error", i)
			}
			continue
		}
		if br.Err != nil {
			t.Errorf("instance %d: %v", i, br.Err)
			continue
		}
		if br.Instance != ins[i] {
			t.Errorf("result %d not index-aligned", i)
		}
		if err := br.Result.Schedule.Validate(ins[i]); err != nil {
			t.Errorf("instance %d schedule invalid: %v", i, err)
		}
		if br.Elapsed <= 0 {
			t.Errorf("instance %d reports non-positive elapsed %v", i, br.Elapsed)
		}
	}
}

// TestSolveBatchSharedCache exercises many concurrent workers solving
// fingerprint-identical instances against one shared bound cache (run under
// -race in CI).
func TestSolveBatchSharedCache(t *testing.T) {
	eng, err := New(WithWorkers(8))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rng := rand.New(rand.NewSource(5))
	base := gen.Uniform(rng, gen.Params{N: 12, M: 3, K: 3})
	other := gen.Identical(rng, gen.Params{N: 12, M: 3, K: 2})
	ins := make([]*Instance, 0, 24)
	for i := 0; i < 12; i++ {
		ins = append(ins, base.Clone(), other.Clone())
	}
	out := eng.SolveBatch(context.Background(), ins)
	var wantBase, wantOther float64
	for i, br := range out {
		if br.Err != nil {
			t.Fatalf("instance %d: %v", i, br.Err)
		}
		if err := br.Result.Schedule.Validate(ins[i]); err != nil {
			t.Fatalf("instance %d schedule invalid: %v", i, err)
		}
		// All solves of one fingerprint must agree on the makespan: the
		// solver is deterministic and the cache substitution is monotone.
		want := &wantBase
		if i%2 == 1 {
			want = &wantOther
		}
		if *want == 0 {
			*want = br.Result.Makespan
		} else if br.Result.Makespan > *want+1e-9 || br.Result.Makespan < *want-1e-9 {
			t.Errorf("instance %d makespan %v, want %v", i, br.Result.Makespan, *want)
		}
	}
	if got := eng.CachedFingerprints(); got != 2 {
		t.Errorf("cache holds %d fingerprints, want 2", got)
	}
}

func TestSolveBatchPerRequestDeadline(t *testing.T) {
	eng, err := New(WithWorkers(3))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Each instance is far too large to solve exactly in 60ms; the
	// per-request deadline must stop each search and surface best-so-far
	// schedules with explanatory notes rather than hanging the batch.
	rng := rand.New(rand.NewSource(6))
	ins := make([]*Instance, 3)
	for i := range ins {
		ins[i] = gen.Uniform(rng, gen.Params{N: 24, M: 4, K: 12, MinJob: 500, MaxJob: 1500})
	}
	start := time.Now()
	out := eng.SolveBatch(context.Background(), ins,
		WithAlgorithm("branch-and-bound"), WithMaxJobs(24), WithTimeout(60*time.Millisecond))
	elapsed := time.Since(start)
	for i, br := range out {
		if br.Err != nil {
			t.Fatalf("instance %d: %v", i, br.Err)
		}
		if br.Result.Note == "" {
			t.Errorf("instance %d: deadline-bounded exact search reported no note", i)
		}
		if err := br.Result.Schedule.Validate(ins[i]); err != nil {
			t.Errorf("instance %d schedule invalid: %v", i, err)
		}
	}
	// Three 60ms requests on three workers plus slack; far below what the
	// searches would need to complete.
	if elapsed > 5*time.Second {
		t.Errorf("batch took %v despite per-request deadlines", elapsed)
	}
}

func TestSolveBatchCancelledContext(t *testing.T) {
	eng, err := New()
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rng := rand.New(rand.NewSource(7))
	ins := []*Instance{
		gen.Identical(rng, gen.Params{N: 10, M: 3, K: 2}),
		gen.Identical(rng, gen.Params{N: 10, M: 3, K: 2}),
	}
	for i, br := range eng.SolveBatch(ctx, ins) {
		if br.Err == nil {
			t.Errorf("instance %d solved under a cancelled batch context", i)
		}
	}
}

// TestEventsConcurrentSubscribers runs concurrent solves against multiple
// engine-level subscribers plus a per-call channel (run under -race in CI).
func TestEventsConcurrentSubscribers(t *testing.T) {
	eng, err := New(WithWorkers(4))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	sub1, cancel1 := eng.Events(1024)
	sub2, cancel2 := eng.Events(1024)
	defer cancel2()

	counts := make([]int, 2)
	var wg sync.WaitGroup
	for i, sub := range []<-chan Event{sub1, sub2} {
		wg.Add(1)
		go func(i int, sub <-chan Event) {
			defer wg.Done()
			for ev := range sub {
				if ev.Fingerprint == "" {
					t.Error("event without fingerprint")
				}
				counts[i]++
			}
		}(i, sub)
	}

	rng := rand.New(rand.NewSource(8))
	ins := make([]*Instance, 8)
	for i := range ins {
		ins[i] = gen.Uniform(rng, gen.Params{N: 12, M: 3, K: 3})
	}
	callCh := make(chan Event, 1024)
	out := eng.SolveBatch(context.Background(), ins, WithEvents(callCh))
	for i, br := range out {
		if br.Err != nil {
			t.Fatalf("instance %d: %v", i, br.Err)
		}
	}
	cancel1()
	cancel2()
	cancel1() // idempotent
	wg.Wait()

	for i, c := range counts {
		if c == 0 {
			t.Errorf("subscriber %d saw no events", i)
		}
	}
	if len(callCh) == 0 {
		t.Error("per-call WithEvents channel saw no events")
	}
	// Fingerprints on the call channel must belong to the batch.
	valid := map[string]bool{}
	for _, in := range ins {
		valid[in.Fingerprint()] = true
	}
	for len(callCh) > 0 {
		if ev := <-callCh; !valid[ev.Fingerprint] {
			t.Errorf("event carries unknown fingerprint %q", ev.Fingerprint)
		}
	}
}

func TestCompatWrappersRejectMultipleOptions(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	in := gen.Identical(rng, gen.Params{N: 8, M: 2, K: 2})
	if _, err := SolveWithContext(context.Background(), in, SolveOptions{Eps: 0.5}, SolveOptions{Eps: 0.25}); err == nil {
		t.Error("SolveWithContext accepted two SolveOptions")
	}
	if _, err := Portfolio(context.Background(), in, SolveOptions{}, SolveOptions{}); err == nil {
		t.Error("Portfolio accepted two SolveOptions")
	}
	// One option still works.
	if _, err := SolveWithContext(context.Background(), in, SolveOptions{Eps: 0.5}); err != nil {
		t.Errorf("SolveWithContext with one option: %v", err)
	}
}

func TestEngineWithCustomRegistry(t *testing.T) {
	reg := NewDefaultRegistry()
	called := false
	err := reg.Register(NewSolver("always-zero", SolverCaps{
		Kinds:     []Kind{Identical, Uniform, RestrictedAssignment, Unrelated},
		Guarantee: "test stub",
		Priority:  1000,
	}, func(ctx context.Context, in *Instance, opt SolveOptions) (Result, error) {
		called = true
		g, err := Greedy(in)
		if err != nil {
			return Result{}, err
		}
		g.Algorithm = "always-zero"
		return g, nil
	}))
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	eng, err := New(WithRegistry(reg))
	if err != nil {
		t.Fatalf("New(WithRegistry): %v", err)
	}
	rng := rand.New(rand.NewSource(10))
	in := gen.Identical(rng, gen.Params{N: 8, M: 2, K: 2})
	res, err := eng.Solve(context.Background(), in)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !called || res.Algorithm != "always-zero" {
		t.Errorf("custom top-priority solver not selected: algorithm=%q called=%v", res.Algorithm, called)
	}
}

func TestPortfolioWarmStartMonotone(t *testing.T) {
	eng, err := New()
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rng := rand.New(rand.NewSource(11))
	in := gen.Uniform(rng, gen.Params{N: 14, M: 3, K: 3})
	ctx := context.Background()
	first, err := eng.Portfolio(ctx, in)
	if err != nil {
		t.Fatalf("first portfolio: %v", err)
	}
	second, err := eng.Portfolio(ctx, in.Clone())
	if err != nil {
		t.Fatalf("second portfolio: %v", err)
	}
	if second.Best.Makespan > first.Best.Makespan+1e-9 {
		t.Errorf("warm-started portfolio regressed: %v > %v", second.Best.Makespan, first.Best.Makespan)
	}
	if err := second.Best.Schedule.Validate(in); err != nil {
		t.Errorf("warm-started portfolio schedule invalid: %v", err)
	}
	// When the warm-start substitution swapped in the cached schedule,
	// Winner must follow: it names whoever produced the returned Best, not
	// a raced member that was beaten by the cache.
	if strings.Contains(second.Best.Note, "warm start") && second.Winner != second.Best.Algorithm {
		t.Errorf("substituted Best came from %q but Winner says %q", second.Best.Algorithm, second.Winner)
	}
}

// TestWithSearchWorkersPlumbing: the speculative dual search rides the
// engine handle end-to-end, and the engine clamps the per-call parallelism
// to its WithWorkers budget — a single-worker engine with
// WithSearchWorkers(8) must behave exactly like the sequential search
// (byte-identical result for a seeded randomized solver).
func TestWithSearchWorkersPlumbing(t *testing.T) {
	testutil.ForceParallel(t)
	rng := rand.New(rand.NewSource(21))
	in := gen.Unrelated(rng, gen.Params{N: 20, M: 4, K: 3})
	ctx := context.Background()

	// Clamped engine: budget 1 forces the sequential path.
	one, err := New(WithWorkers(1), WithBoundCache(0))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	clamped, err := one.Solve(ctx, in,
		WithAlgorithm(AlgoRounding), WithSearchWorkers(8), WithSeed(3), WithoutWarmStart())
	if err != nil {
		t.Fatalf("clamped solve: %v", err)
	}
	seq, err := one.Solve(ctx, in,
		WithAlgorithm(AlgoRounding), WithSeed(3), WithoutWarmStart())
	if err != nil {
		t.Fatalf("sequential solve: %v", err)
	}
	if clamped.Makespan != seq.Makespan || clamped.LPIters != seq.LPIters {
		t.Errorf("WithSearchWorkers(8) on a 1-worker engine diverged from sequential: makespan %v vs %v, lp-iters %d vs %d",
			clamped.Makespan, seq.Makespan, clamped.LPIters, seq.LPIters)
	}

	// Unclamped engine: the speculative search runs for real and stays
	// consistent.
	four, err := New(WithWorkers(4), WithBoundCache(0))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	spec, err := four.Solve(ctx, in,
		WithAlgorithm(AlgoRounding), WithSearchWorkers(4), WithSeed(3), WithoutWarmStart())
	if err != nil {
		t.Fatalf("speculative solve: %v", err)
	}
	if err := spec.Schedule.Validate(in); err != nil {
		t.Errorf("speculative schedule invalid: %v", err)
	}
	if spec.LowerBound > spec.Makespan+1e-9 {
		t.Errorf("speculative bounds inconsistent: lower %g > makespan %g", spec.LowerBound, spec.Makespan)
	}
}
