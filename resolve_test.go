package sched

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/gen"
)

// randDeltaSched draws a delta applicable to in (public-API mirror of the
// core test helper).
func randDeltaSched(rng *rand.Rand, in *Instance) Delta {
	for {
		switch rng.Intn(5) {
		case 0: // arrive
			if in.Kind.String() == "unrelated" {
				proc := make([]float64, in.M)
				for i := range proc {
					proc[i] = 1 + float64(rng.Intn(99))
				}
				return ArriveJobUnrelated(rng.Intn(in.K), proc)
			}
			d := ArriveJob(rng.Intn(in.K), 1+float64(rng.Intn(99)))
			if len(in.Eligible) > 0 {
				for i := 0; i < in.M; i++ {
					if rng.Float64() < 0.6 {
						d.Eligible = append(d.Eligible, i)
					}
				}
				if len(d.Eligible) == 0 {
					d.Eligible = []int{rng.Intn(in.M)}
				}
			}
			return d
		case 1: // depart
			if in.N > 2 {
				return DepartJob(rng.Intn(in.N))
			}
		case 2: // resize
			if in.Kind.String() == "unrelated" {
				d := Delta{Kind: DeltaJobResize, Job: rng.Intn(in.N)}
				d.Proc = make([]float64, in.M)
				for i := range d.Proc {
					d.Proc[i] = 1 + float64(rng.Intn(99))
				}
				return d
			}
			return ResizeJob(rng.Intn(in.N), 1+float64(rng.Intn(99)))
		case 3: // machine add
			d := Delta{Kind: DeltaMachineAdd}
			switch in.Kind.String() {
			case "unrelated":
				d.Proc = make([]float64, in.N)
				for j := range d.Proc {
					d.Proc[j] = 1 + float64(rng.Intn(99))
				}
				d.Setup = make([]float64, in.K)
				for c := range d.Setup {
					d.Setup[c] = 1 + float64(rng.Intn(49))
				}
			case "restricted":
				for j := 0; j < in.N; j++ {
					if rng.Float64() < 0.5 {
						d.Eligible = append(d.Eligible, j)
					}
				}
			}
			return d
		case 4: // machine remove
			if in.M > 2 {
				d := RemoveMachine(rng.Intn(in.M))
				if _, err := d.Apply(in); err == nil {
					return d
				}
			}
		}
	}
}

// TestResolveMatchesColdSolve is the differential corpus of the incremental
// pipeline: along random delta chains, every warm Resolve must agree with a
// cold Solve of the delta-applied instance — same fingerprint, a feasible
// schedule, cross-sound certified bounds (each run's lower bound must be a
// true bound on the optimum the other run's makespan witnesses), and
// makespans in the same approximation regime. Run under -race it also
// exercises the retention store's exclusive ownership.
func TestResolveMatchesColdSolve(t *testing.T) {
	if testing.Short() {
		t.Skip("differential corpus is slow")
	}
	type mk struct {
		name string
		gen  func(*rand.Rand) *Instance
	}
	makers := []mk{
		{"unrelated", func(rng *rand.Rand) *Instance {
			return gen.Unrelated(rng, gen.Params{N: 14, M: 3, K: 3})
		}},
		{"restricted", func(rng *rand.Rand) *Instance {
			return gen.Restricted(rng, gen.Params{N: 14, M: 3, K: 3})
		}},
		{"sparse-setup", func(rng *rand.Rand) *Instance {
			return gen.Unrelated(rng, gen.SetupHeavy(12, 3, 4))
		}},
	}
	for _, backend := range []string{"sparse", "dense"} {
		for _, m := range makers {
			m := m
			backend := backend
			t.Run(backend+"/"+m.name, func(t *testing.T) {
				t.Parallel()
				ctx := context.Background()
				rng := rand.New(rand.NewSource(int64(len(backend) + len(m.name))))
				in := m.gen(rng)
				warmEng, err := New(WithDefaults(WithLPBackend(backend)))
				if err != nil {
					t.Fatal(err)
				}
				coldEng, err := New(WithBoundCache(0), WithDefaults(WithLPBackend(backend)))
				if err != nil {
					t.Fatal(err)
				}
				h, err := warmEng.Open(ctx, in)
				if err != nil {
					t.Fatalf("Open: %v", err)
				}
				for step := 0; step < 5; step++ {
					d := randDeltaSched(rng, h.Instance())
					newIn, err := d.Apply(h.Instance())
					if err != nil {
						t.Fatalf("step %d: Apply(%v): %v", step, d, err)
					}
					warm, err := warmEng.Resolve(ctx, h, d)
					if err != nil {
						t.Fatalf("step %d: Resolve(%v): %v", step, d, err)
					}
					cold, err := coldEng.Solve(ctx, newIn, WithoutWarmStart())
					if err != nil {
						t.Fatalf("step %d: cold Solve: %v", step, err)
					}

					// Fingerprint property: Resolve solved exactly the
					// instance a cold Apply produces.
					if warm.Fingerprint() != newIn.Fingerprint() {
						t.Fatalf("step %d: Resolve fingerprint %s != Apply fingerprint %s",
							step, warm.Fingerprint(), newIn.Fingerprint())
					}

					wr, cr := warm.Result(), cold
					if wr.Schedule == nil || wr.Schedule.Validate(newIn) != nil {
						t.Fatalf("step %d: warm schedule infeasible: %v", step, wr.Schedule.Validate(newIn))
					}
					if wr.Makespan != wr.Schedule.Makespan(newIn) {
						t.Fatalf("step %d: warm makespan %g not witnessed by its schedule (%g)",
							step, wr.Makespan, wr.Schedule.Makespan(newIn))
					}

					// Cross-soundness: each run's certified lower bound must
					// hold against the optimum the other run's feasible
					// schedule upper-bounds. A lower bound leaking across a
					// non-raising delta fails here.
					const eps = 1e-6
					if wr.LowerBound > cr.Makespan+eps {
						t.Fatalf("step %d (%v): warm lower bound %g exceeds cold makespan %g — unsound transfer",
							step, d, wr.LowerBound, cr.Makespan)
					}
					if cr.LowerBound > wr.Makespan+eps {
						t.Fatalf("step %d (%v): cold lower bound %g exceeds warm makespan %g",
							step, d, cr.LowerBound, wr.Makespan)
					}

					// Same approximation regime: warm re-solving must not
					// degrade quality (both runs carry the same guarantees).
					if wr.Makespan > 2*cr.Makespan+eps || cr.Makespan > 2*wr.Makespan+eps {
						t.Fatalf("step %d (%v): warm %g vs cold %g diverge beyond the approximation regime",
							step, d, wr.Makespan, cr.Makespan)
					}
					h = warm
				}
			})
		}
	}
}

// TestResolveHandleContracts covers the handle API edges: nil handles,
// cross-engine handles, inapplicable deltas.
func TestResolveHandleContracts(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(11))
	in := gen.Unrelated(rng, gen.Params{N: 8, M: 2, K: 2})
	e1, _ := New()
	e2, _ := New()
	if _, err := e1.Resolve(ctx, nil, DepartJob(0)); err == nil {
		t.Error("nil handle accepted")
	}
	if _, err := e1.Open(ctx, nil); err == nil {
		t.Error("nil instance accepted")
	}
	h, err := e1.Open(ctx, in)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Resolve(ctx, h, DepartJob(0)); err == nil {
		t.Error("cross-engine handle accepted")
	}
	if _, err := e1.Resolve(ctx, h, DepartJob(999)); err == nil {
		t.Error("inapplicable delta accepted")
	}
	// The failed delta must not have consumed the handle's usability.
	next, err := e1.Resolve(ctx, h, DepartJob(0))
	if err != nil {
		t.Fatalf("Resolve after failed delta: %v", err)
	}
	if next.Instance().N != in.N-1 {
		t.Fatalf("post-departure N = %d, want %d", next.Instance().N, in.N-1)
	}
}

// TestStreamFoldsDeltas runs the Stream convenience over a small event
// sequence and checks per-event accounting.
func TestStreamFoldsDeltas(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(13))
	in := gen.Unrelated(rng, gen.Params{N: 10, M: 3, K: 2})
	deltas := []Delta{
		ArriveJobUnrelated(0, []float64{5, 7, 9}),
		DepartJob(2),
		DepartJob(999), // inapplicable: recorded, stream continues
		ArriveJobUnrelated(1, []float64{3, 4, 5}),
	}
	e, _ := New()
	h, events, err := e.Stream(ctx, in, deltas)
	if err != nil {
		t.Fatalf("Stream: %v", err)
	}
	if len(events) != len(deltas) {
		t.Fatalf("got %d events, want %d", len(events), len(deltas))
	}
	for i, ev := range events {
		if i == 2 {
			if ev.Err == nil {
				t.Error("inapplicable delta did not record an error")
			}
			continue
		}
		if ev.Err != nil {
			t.Fatalf("event %d: %v", i, ev.Err)
		}
		if ev.Result.Schedule == nil {
			t.Fatalf("event %d: no schedule", i)
		}
		if ev.Latency <= 0 {
			t.Errorf("event %d: non-positive latency", i)
		}
	}
	// N: 10 +1 -1 (skip) +1 = 11
	if h.Instance().N != 11 {
		t.Fatalf("final N = %d, want 11", h.Instance().N)
	}
	if err := h.Result().Schedule.Validate(h.Instance()); err != nil {
		t.Fatalf("final schedule invalid: %v", err)
	}
}
