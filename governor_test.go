package sched

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/lp"
	"repro/internal/testutil"
)

// TestGovernorBoundsLPConcurrency saturates every parallelism layer at once
// — a batch of instances, each solved as a portfolio race, each member
// running a wide speculative search — and asserts from outside the engine
// (via the LP package's own concurrency gauge) that the number of
// simultaneously running LP solves never exceeded the governor budget. Run
// under -race this doubles as the data-race stress for the token plumbing.
func TestGovernorBoundsLPConcurrency(t *testing.T) {
	testutil.ForceParallel(t)
	const budget = 2
	eng, err := New(WithWorkers(budget), WithBoundCache(0))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rng := rand.New(rand.NewSource(31))
	ins := make([]*Instance, 8)
	for i := range ins {
		ins[i] = gen.Unrelated(rng, gen.Params{N: 12, M: 3, K: 2})
	}
	lp.SolveGauge.Reset()
	res := eng.SolveBatch(context.Background(), ins,
		WithPortfolio(), WithSearchWorkers(4), WithSeed(5), WithoutWarmStart())
	for i, br := range res {
		if br.Err != nil {
			t.Fatalf("instance %d: %v", i, br.Err)
		}
		if err := br.Result.Schedule.Validate(ins[i]); err != nil {
			t.Errorf("instance %d: invalid schedule: %v", i, err)
		}
	}
	if peak := lp.SolveGauge.Peak(); peak > budget {
		t.Errorf("peak concurrent LP solves %d exceeds governor budget %d", peak, budget)
	}
	st := eng.GovernorStats()
	if st.Budget != budget {
		t.Errorf("GovernorStats.Budget = %d, want %d", st.Budget, budget)
	}
	if st.Peak > budget {
		t.Errorf("GovernorStats.Peak = %d exceeds budget %d", st.Peak, budget)
	}
	if st.InUse != 0 {
		t.Errorf("GovernorStats.InUse = %d after batch returned, want 0", st.InUse)
	}
	// 8 jobs × (portfolio + speculation) against 2 tokens must have had to
	// degrade somewhere; a zero count would mean the layers never consulted
	// the governor at all.
	if st.Degradations == 0 {
		t.Error("GovernorStats.Degradations = 0 under heavy oversubscription")
	}
}

// TestGovernorBudgetOneNoDeadlock drives the full layering — batch ×
// portfolio × speculation — through a single-token governor. The
// acquire-or-degrade contract (blocking acquires only at admission, with no
// tokens held) means everything must serialize and finish; a watchdog turns
// a deadlock into a test failure rather than a suite timeout.
func TestGovernorBudgetOneNoDeadlock(t *testing.T) {
	testutil.ForceParallel(t)
	eng, err := New(WithWorkers(1), WithBoundCache(0))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rng := rand.New(rand.NewSource(47))
	ins := make([]*Instance, 6)
	for i := range ins {
		ins[i] = gen.Unrelated(rng, gen.Params{N: 10, M: 3, K: 2})
	}
	lp.SolveGauge.Reset()
	var res []BatchResult
	done := make(chan struct{})
	go func() {
		defer close(done)
		res = eng.SolveBatch(context.Background(), ins,
			WithPortfolio(), WithSearchWorkers(4), WithSeed(5), WithoutWarmStart())
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		t.Fatal("governed batch deadlocked at budget 1")
	}
	for i, br := range res {
		if br.Err != nil {
			t.Fatalf("instance %d: %v", i, br.Err)
		}
	}
	if peak := lp.SolveGauge.Peak(); peak > 1 {
		t.Errorf("peak concurrent LP solves %d at budget 1, want 1", peak)
	}
}

// TestGovernorDegradationEquivalence pins the degradation ladder's floor:
// a governed engine starved to one token must degrade every layer to the
// exact sequential algorithm the ungoverned one-worker engine runs, so a
// seeded solve produces the identical makespan and simplex effort on both.
// Degraded parallelism is a scheduling change, never an algorithmic one.
func TestGovernorDegradationEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	in := gen.Unrelated(rng, gen.Params{N: 18, M: 4, K: 3})
	ctx := context.Background()

	gov, err := New(WithWorkers(1), WithBoundCache(0))
	if err != nil {
		t.Fatalf("New(governed): %v", err)
	}
	ung, err := New(WithWorkers(1), WithUngoverned(), WithBoundCache(0))
	if err != nil {
		t.Fatalf("New(ungoverned): %v", err)
	}
	opts := []SolveOption{
		WithAlgorithm(AlgoRounding), WithSearchWorkers(4), WithSeed(9), WithoutWarmStart(),
	}
	g, err := gov.Solve(ctx, in, opts...)
	if err != nil {
		t.Fatalf("governed solve: %v", err)
	}
	u, err := ung.Solve(ctx, in, opts...)
	if err != nil {
		t.Fatalf("ungoverned solve: %v", err)
	}
	if g.Makespan != u.Makespan || g.LPIters != u.LPIters {
		t.Errorf("budget-1 governed solve diverged from ungoverned 1-worker solve: makespan %v vs %v, lp-iters %d vs %d",
			g.Makespan, u.Makespan, g.LPIters, u.LPIters)
	}
}

// TestGovernorBoundsIPMBackend repeats the oversubscription stress on the
// interior-point backend: the hybrid solve (IPM + crossover + simplex
// cleanup) holds exactly one gauge slot, so the governor's LP-peak ≤
// budget invariant must survive swapping the cold solver. Run under -race
// this also stresses the chol workspace pooling across solver goroutines.
func TestGovernorBoundsIPMBackend(t *testing.T) {
	testutil.ForceParallel(t)
	const budget = 2
	eng, err := New(WithWorkers(budget), WithBoundCache(0))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rng := rand.New(rand.NewSource(53))
	ins := make([]*Instance, 6)
	for i := range ins {
		ins[i] = gen.Unrelated(rng, gen.Params{N: 14, M: 3, K: 2})
	}
	lp.SolveGauge.Reset()
	res := eng.SolveBatch(context.Background(), ins,
		WithAlgorithm(AlgoRounding), WithLPBackend("ipm"),
		WithSearchWorkers(4), WithSeed(5), WithoutWarmStart())
	for i, br := range res {
		if br.Err != nil {
			t.Fatalf("instance %d: %v", i, br.Err)
		}
		if err := br.Result.Schedule.Validate(ins[i]); err != nil {
			t.Errorf("instance %d: invalid schedule: %v", i, err)
		}
		if br.Result.LPIters <= 0 {
			t.Errorf("instance %d: no LP effort recorded on ipm backend", i)
		}
	}
	if peak := lp.SolveGauge.Peak(); peak > budget {
		t.Errorf("peak concurrent LP solves %d exceeds governor budget %d on ipm backend", peak, budget)
	}
}
