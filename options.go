package sched

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
)

// --- engine construction options -------------------------------------------

// engineConfig accumulates EngineOptions inside New.
type engineConfig struct {
	registry   *engine.Registry
	solvers    []string
	workers    int
	cacheSize  int
	defaults   []SolveOption
	ungoverned bool
}

// EngineOption configures an Engine at construction (sched.New).
type EngineOption func(*engineConfig) error

// WithSolvers restricts the engine to the named subset of the registered
// solver set (see Solvers for the names), in the given order. Automatic
// selection and portfolio races then consider only these solvers — e.g.
// WithSolvers("lpt", "greedy") builds a heuristics-only engine for
// latency-critical traffic. Unknown or duplicate names are a construction
// error.
func WithSolvers(names ...string) EngineOption {
	return func(c *engineConfig) error {
		if len(names) == 0 {
			return fmt.Errorf("sched: WithSolvers needs at least one solver name")
		}
		c.solvers = append([]string(nil), names...)
		return nil
	}
}

// WithRegistry replaces the engine's solver registry wholesale. This is the
// hook for plugging in solvers beyond the paper set (alternative LP
// backends, custom heuristics): build a registry with NewRegistry or
// NewDefaultRegistry, Register additional Solver implementations (see
// NewSolver), and hand it to the engine. WithSolvers, when also given,
// subsets this registry.
func WithRegistry(reg *Registry) EngineOption {
	return func(c *engineConfig) error {
		if reg == nil {
			return fmt.Errorf("sched: WithRegistry needs a non-nil registry")
		}
		c.registry = reg
		return nil
	}
}

// WithWorkers sets the engine's global concurrency budget — the token
// count of its governor. The default is runtime.GOMAXPROCS(0).
//
// Every unit of parallelism the engine spends draws from this one budget:
// SolveBatch admits at most n instances at a time, a portfolio race's
// extra members each cost a token, and a speculative dual search
// (WithSearchWorkers) widens only as far as the remaining tokens allow.
// The layers compose cooperatively — each admitted solve owns one
// guaranteed token, and everything beyond it is acquire-or-degrade — so
// batch × portfolio × speculation traffic never runs more than n LP
// solves at once and never deadlocks, even at n = 1. See
// Engine.GovernorStats for observed utilization, and WithUngoverned for
// the pre-governor clamping behavior.
func WithWorkers(n int) EngineOption {
	return func(c *engineConfig) error {
		if n < 1 {
			return fmt.Errorf("sched: WithWorkers(%d): need at least one worker", n)
		}
		c.workers = n
		return nil
	}
}

// WithUngoverned disables the engine's concurrency governor, restoring
// the independent local clamps: SolveBatch runs a WithWorkers-sized
// worker pool, each solve clamps its own SearchWorkers to the worker
// budget, and portfolio races launch every member on its own goroutine
// regardless of load. Layered traffic can then oversubscribe the box
// multiplicatively (batch × portfolio × speculation); the option exists
// as the baseline row for oversubscription comparisons (see `schedbench
// -oversub`) and as an escape hatch should governed admission interact
// badly with an embedding application's own scheduler.
func WithUngoverned() EngineOption {
	return func(c *engineConfig) error {
		c.ungoverned = true
		return nil
	}
}

// WithBoundCache sets the capacity (in distinct instance fingerprints) of
// the engine's warm-start bound cache; entries <= 0 disables caching
// entirely. The default capacity is 256 fingerprints with FIFO eviction.
func WithBoundCache(entries int) EngineOption {
	return func(c *engineConfig) error {
		c.cacheSize = entries
		return nil
	}
}

// WithDefaults installs per-call options applied to every Solve, Portfolio
// and SolveBatch on the engine, before the call's own options (which
// therefore override them) — e.g. New(WithDefaults(WithEps(0.25),
// WithTimeout(2*time.Second))) builds an engine with a house accuracy and
// deadline policy.
func WithDefaults(opts ...SolveOption) EngineOption {
	return func(c *engineConfig) error {
		c.defaults = append(c.defaults, opts...)
		return nil
	}
}

// --- per-call solve options ------------------------------------------------

// solveConfig accumulates SolveOptions for one Solve/Portfolio/SolveBatch
// call.
type solveConfig struct {
	opt       engine.Options
	algorithm string
	timeout   time.Duration
	events    chan<- Event
	cold      bool
	portfolio bool
	// admitted marks a solve whose governor token was already acquired by
	// the caller (SolveBatch workers acquire per job), so begin must not
	// acquire a second one.
	admitted bool
	// retain marks a solve whose state should be kept for incremental
	// re-solving (Open/Resolve): the fingerprint is computed even on a
	// cache-less engine, the solver is asked to hand back its warm-start
	// state, and the outcome is stored in the engine's StateStore.
	retain bool
	// warm carries the re-solve warm start derived from a previous handle
	// (bracket, witness, patched relaxation) into the solver.
	warm *core.WarmStart
	// seed, when non-nil, is delta-derived certified knowledge about this
	// exact instance (the patched witness schedule and lifted bounds). It
	// merges into the session's warm-start seed ahead of the fingerprint
	// cache — including under WithoutWarmStart, which opts out of the
	// cache, not of explicitly provided knowledge.
	seed *engine.CachedBounds
}

// SolveOption tunes one engine call (Engine.Solve, Engine.Portfolio,
// Engine.SolveBatch). Options are applied in order after the engine's
// WithDefaults.
type SolveOption func(*solveConfig)

// WithEps sets the accuracy parameter of the PTAS (default 1/2; smaller is
// more accurate and slower).
func WithEps(eps float64) SolveOption {
	return func(c *solveConfig) { c.opt.Eps = eps }
}

// WithPrecision sets the relative precision of dual-approximation binary
// searches (default per solver).
func WithPrecision(p float64) SolveOption {
	return func(c *solveConfig) { c.opt.Precision = p }
}

// WithSeed seeds randomized solvers (the LP rounding); 0 keeps the fixed
// default stream, so runs are deterministic unless a seed is chosen.
// Determinism is per seed format: the rounding's draw consumption changed
// in v2 (batched fixed-point Bernoulli draws), so a seed reproduces runs
// within this release line but not schedules recorded under v1.
func WithSeed(seed int64) SolveOption {
	return func(c *solveConfig) { c.opt.Seed = seed }
}

// WithMaxJobs overrides the job-count guard of the exact branch-and-bound
// and widens its capability match accordingly.
func WithMaxJobs(n int) SolveOption {
	return func(c *solveConfig) { c.opt.MaxJobs = n }
}

// WithNodeLimit caps branch-and-bound search nodes (0 = unlimited).
func WithNodeLimit(n int64) SolveOption {
	return func(c *solveConfig) { c.opt.NodeLimit = n }
}

// WithNodeCap bounds the PTAS dynamic-program nodes per guess (0 = solver
// default).
func WithNodeCap(n int64) SolveOption {
	return func(c *solveConfig) { c.opt.NodeCap = n }
}

// WithRoundingC sets the iteration multiplier of the randomized rounding
// (0 = solver default).
func WithRoundingC(c0 int) SolveOption {
	return func(c *solveConfig) { c.opt.RoundingC = c0 }
}

// WithLPBackend selects the LP solver backend for solvers that run LPs
// (the randomized rounding's per-guess feasibility tests): "sparse" — the
// warm-started sparse revised simplex, the default — "dense", the
// reference dense solver, "ipm" — interior-point (Mehrotra
// predictor-corrector over a sparse Cholesky of the normal equations) for
// the cold solve, crossing over to a simplex basis so warm re-solves stay
// on the dual-simplex path — or "auto", which picks IPM on instances
// large enough to amortize the factorization and sparse otherwise.
// Unknown names are reported as a solve error. Result.LPIters exposes the
// per-run LP effort (pivots plus interior-point iterations) for
// comparisons, and `schedbench -engine -lp=dense|sparse|ipm|auto` prints
// comparison rows.
func WithLPBackend(kind string) SolveOption {
	return func(c *solveConfig) { c.opt.LPBackend = kind }
}

// WithLPPresolve toggles the LP presolve + equilibration-scaling pipeline
// that runs ahead of every cold LP backend build (on by default): fixed
// and implied-fixed variables are eliminated, redundant and singleton rows
// removed, and the reduced matrix Ruiz-scaled before it reaches the
// simplex or interior-point solver. Solutions, bases and infeasibility
// certificates are mapped back to the original problem, so verdicts are
// identical either way; pass false to measure the unpresolved baseline
// (`schedbench -no-presolve` does the same).
func WithLPPresolve(on bool) SolveOption {
	return func(c *solveConfig) { c.opt.LPNoPresolve = !on }
}

// WithSearchWorkers sets the speculative parallelism of dual-approximation
// binary searches: solvers that search over a makespan guess (the PTAS,
// the randomized rounding, the class-uniform special cases) evaluate up to
// n guesses concurrently per round (dual.Speculate), each worker on its
// own warm-start state — the rounding clones its LP relaxation (backend,
// basis, workspace) per worker, so warm bases never race. Verdicts are
// equivalent to the sequential bisection within the search precision;
// wall-clock improves when spare cores exist, at the cost of redundant
// guess work. Values < 2 keep the sequential bisection.
//
// On a governed engine (the default), n is a request, not a reservation:
// each search round runs as wide as the governor's remaining tokens allow
// at that moment, shrinking toward plain bisection when batch or
// portfolio traffic holds the budget. There is no multiplicative
// oversubscription to size around — ask for the width a solo solve should
// use and let the governor arbitrate contention. Only with WithUngoverned
// does n act as a hard per-solve clamp (capped at the engine's worker
// budget and GOMAXPROCS), multiplying across concurrent batch workers and
// portfolio members.
func WithSearchWorkers(n int) SolveOption {
	return func(c *solveConfig) { c.opt.SearchWorkers = n }
}

// WithLocalSearch toggles the best-improvement descent post-pass on the
// chosen schedule.
func WithLocalSearch(on bool) SolveOption {
	return func(c *solveConfig) { c.opt.LocalSearch = on }
}

// WithGap sets the relative optimality gap at which a portfolio race
// terminates early: once the shared incumbent is within a factor 1+gap of
// the best certified lower bound, remaining racers are cancelled.
func WithGap(gap float64) SolveOption {
	return func(c *solveConfig) { c.opt.Gap = gap }
}

// WithBounds connects the call to a caller-owned bound bus (see
// NewBoundBus): the solve primes its searches from the bus's bounds and
// publishes improvements back as they appear. The bus is trusted as
// certified knowledge about the instance being solved — it must only ever
// carry bounds for that one instance (fingerprint), or the solve can
// return unsound lower bounds. For the same reason SolveBatch, whose
// options apply to every instance in the batch, ignores this option; batch
// warm starts ride the fingerprint cache instead. Cache bounds are still
// folded in unless WithoutWarmStart is given.
func WithBounds(bus BoundBus) SolveOption {
	return func(c *solveConfig) { c.opt.Bounds = bus }
}

// WithAlgorithm dispatches to the named registered solver (see Solvers)
// instead of automatic strongest-applicable selection. Portfolio races
// (Engine.Portfolio or WithPortfolio) ignore this option — they always
// race every applicable solver.
func WithAlgorithm(name string) SolveOption {
	return func(c *solveConfig) { c.algorithm = name }
}

// WithPortfolio makes the solve race every applicable solver instead of
// dispatching to the strongest one, keeping the best result — the
// Solve/SolveBatch-shaped counterpart of Engine.Portfolio for callers who
// want racing without the per-member outcome report. Under the governor
// the race's extra members are acquire-or-degrade: on a saturated engine
// the members run priority-sequentially on the solve's own token, still
// sharing incumbents and certified bounds. WithAlgorithm is ignored when
// this option is set.
func WithPortfolio() SolveOption {
	return func(c *solveConfig) { c.portfolio = true }
}

// WithTimeout bounds the call with a deadline. In SolveBatch the timeout is
// per request: each instance gets its own deadline from the moment a worker
// picks it up, which is the service-mode contract (a slow instance cannot
// starve the rest of the batch's time budget).
func WithTimeout(d time.Duration) SolveOption {
	return func(c *solveConfig) { c.timeout = d }
}

// WithEvents streams the call's bound improvements — incumbent makespans
// going down, certified lower bounds going up — to ch as they happen.
// Sends never block: give the channel enough buffer for the expected event
// volume or drain it concurrently, or improvements are dropped. The channel
// is not closed when the solve returns; it can be reused across calls.
// Engine.Events subscribes to all calls instead.
func WithEvents(ch chan<- Event) SolveOption {
	return func(c *solveConfig) { c.events = ch }
}

// WithoutWarmStart solves cold: the engine's fingerprint-keyed bound cache
// is neither consulted nor allowed to substitute a better cached schedule,
// though the call's final bounds are still recorded for future solves.
// Benchmarks and algorithm comparisons use this to measure the algorithm
// itself rather than the cache.
func WithoutWarmStart() SolveOption {
	return func(c *solveConfig) { c.cold = true }
}

// WithOptions imports a flat SolveOptions struct wholesale, replacing every
// field-mapped option applied so far (it is the bridge the compatibility
// wrappers and CLI tools use; new code should prefer the individual
// functional options).
func WithOptions(opt SolveOptions) SolveOption {
	return func(c *solveConfig) { c.opt = opt }
}

// defaultWorkers is the governor budget used when WithWorkers is not
// given.
func defaultWorkers() int { return runtime.GOMAXPROCS(0) }
