// Package sched is the public API of this library, a faithful
// implementation of "Scheduling on (Un-)Related Machines with Setup Times"
// (Jansen, Maack, Mäcker; IPPS 2019).
//
// The problem: n jobs partitioned into K classes are scheduled on m
// parallel machines; a machine pays the setup time s_{ik} once for every
// class k it processes, and the makespan (maximum machine load, processing
// plus setups) is minimized.
//
// Algorithms provided (paper reference in parentheses):
//
//   - LPT: the setup-aware LPT rule, a 3(1+1/√3) ≈ 4.74-approximation for
//     identical and uniformly related machines (Lemma 2.1).
//   - PTAS: a (1+O(ε))-approximation for identical and uniformly related
//     machines (Section 2).
//   - RandomizedRounding: an O(log n + log m)-approximation for unrelated
//     machines via LP rounding (Theorem 3.3) — asymptotically optimal
//     unless NP ⊆ RP (Theorem 3.5).
//   - ClassUniformRA: a 2-approximation for restricted assignment when all
//     jobs of a class share one eligible machine set (Theorem 3.10).
//   - ClassUniformPT: a 3-approximation for unrelated machines when all
//     jobs of a class have identical processing times per machine
//     (Theorem 3.11).
//   - Greedy: a setup-aware list scheduler (no guarantee; the practical
//     baseline), and Optimal: exact branch-and-bound for small instances.
//
// Solve dispatches to the strongest applicable algorithm automatically
// through the solver engine (package internal/engine): a registry of
// pluggable solvers with capability matching. SolveWithContext adds
// deadline/cancellation support, and Portfolio races every applicable
// solver concurrently and returns the best schedule found.
//
// Instances are built with NewIdentical, NewUniform, NewRestricted and
// NewUnrelated, or loaded from JSON via ReadInstance.
package sched

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sync"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/exact"
	"repro/internal/identical"
	"repro/internal/improve"
	"repro/internal/ptas"
	"repro/internal/rounding"
	"repro/internal/special"
	"repro/internal/timeline"
)

// Instance is a scheduling instance (see core.Instance for field docs).
type Instance = core.Instance

// Schedule is a job → machine assignment.
type Schedule = core.Schedule

// Result bundles a schedule, its makespan and a certified lower bound.
type Result = core.Result

// Kind identifies the machine environment.
type Kind = core.Kind

// Machine environment kinds.
const (
	Identical            = core.Identical
	Uniform              = core.Uniform
	RestrictedAssignment = core.RestrictedAssignment
	Unrelated            = core.Unrelated
)

// Inf marks ineligible processing/setup times in unrelated instances.
var Inf = core.Inf

// NewIdentical builds an identical-machines instance: job sizes p, job
// classes, setup sizes s and m machines.
func NewIdentical(p []float64, class []int, s []float64, m int) (*Instance, error) {
	return core.NewIdentical(p, class, s, m)
}

// NewUniform builds a uniformly-related-machines instance with speeds v.
func NewUniform(p []float64, class []int, s []float64, v []float64) (*Instance, error) {
	return core.NewUniform(p, class, s, v)
}

// NewRestricted builds a restricted-assignment instance; eligible[j] lists
// the machines job j may run on.
func NewRestricted(p []float64, class []int, s []float64, m int, eligible [][]int) (*Instance, error) {
	return core.NewRestricted(p, class, s, m, eligible)
}

// NewUnrelated builds an unrelated-machines instance from an m×n processing
// matrix and an m×K setup matrix (use Inf for ineligible pairs).
func NewUnrelated(p [][]float64, class []int, s [][]float64) (*Instance, error) {
	return core.NewUnrelated(p, class, s)
}

// ReadInstance deserializes an instance from its JSON representation.
func ReadInstance(r io.Reader) (*Instance, error) { return core.ReadJSON(r) }

// SolveOptions is the unified tuning surface of the solver engine (see
// engine.Options for field docs): accuracy (Eps, Precision), randomness
// (Seed), search limits (MaxJobs, NodeLimit, NodeCap, RoundingC) and the
// LocalSearch post-pass.
type SolveOptions = engine.Options

// PortfolioResult reports a portfolio race: the best result plus the
// per-solver outcomes.
type PortfolioResult = engine.PortfolioResult

// SolverOutcome is one solver's contribution to a portfolio race.
type SolverOutcome = engine.SolverOutcome

var (
	defaultEngineOnce sync.Once
	defaultEngine     *Engine
)

// DefaultEngine returns the lazily-built package-level Engine behind the
// compatibility wrappers (Solve, Portfolio, PTAS, …): the full paper solver
// set with a warm-start bound cache. Long-lived programs that want their
// own solver sets, worker budgets or event streams should build engines
// with New instead.
func DefaultEngine() *Engine {
	defaultEngineOnce.Do(func() {
		e, err := New()
		if err != nil {
			panic(fmt.Sprintf("sched: building the default engine: %v", err))
		}
		defaultEngine = e
	})
	return defaultEngine
}

// Solvers returns the names of all registered solvers (usable with the
// schedsolve -algo flag, WithAlgorithm and WithSolvers).
func Solvers() []string { return DefaultEngine().Solvers() }

// LPT runs the setup-aware LPT rule of Lemma 2.1 (identical/uniform
// machines; approximation factor 3(1+1/√3) ≈ 4.74).
func LPT(in *Instance) (Result, error) {
	return solveByName(context.Background(), engine.NameLPT, in, SolveOptions{})
}

// Greedy runs the setup-aware list scheduler (all machine environments, no
// approximation guarantee).
func Greedy(in *Instance) (Result, error) {
	return solveByName(context.Background(), engine.NameGreedy, in, SolveOptions{})
}

// PTAS runs the Section 2 approximation scheme for identical or uniform
// machines with accuracy parameter eps (pass 0 for the default 1/2; smaller
// eps gives better schedules and longer runtimes).
func PTAS(in *Instance, eps float64) (Result, error) {
	return solveByName(context.Background(), engine.NamePTAS, in, SolveOptions{Eps: eps})
}

// RandomizedRounding runs the Section 3.1 O(log n + log m)-approximation
// for unrelated machines. Pass a nil rng for a fixed-seed deterministic run.
func RandomizedRounding(in *Instance, rng *rand.Rand) (Result, error) {
	return rounding.Schedule(context.Background(), in, rounding.Options{Rng: rng})
}

// ClassUniformRA runs the Theorem 3.10 2-approximation for restricted
// assignment with class-uniform eligible machine sets.
func ClassUniformRA(in *Instance) (Result, error) {
	return special.ScheduleClassUniformRA(context.Background(), in, special.Options{})
}

// ClassUniformPT runs the Theorem 3.11 3-approximation for unrelated
// machines with class-uniform processing times.
func ClassUniformPT(in *Instance) (Result, error) {
	return special.ScheduleClassUniformPT(context.Background(), in, special.Options{})
}

// solveByName dispatches to one registered solver through the default
// engine. Named single-algorithm wrappers always solve cold: LPT(in) must
// run LPT, not hand back a cached PTAS schedule.
func solveByName(ctx context.Context, name string, in *Instance, opt SolveOptions) (Result, error) {
	return DefaultEngine().Solve(ctx, in, WithOptions(opt), WithAlgorithm(name), WithoutWarmStart())
}

// Optimal computes an exact optimum by branch-and-bound. It refuses
// instances with more than maxJobs jobs (pass 0 for the default guard of
// 16); the bool result reports whether optimality was proven.
func Optimal(in *Instance, maxJobs int) (Result, bool, error) {
	return OptimalWithContext(context.Background(), in, maxJobs)
}

// OptimalWithContext is Optimal under a context: a cancelled or expired
// ctx stops the branch-and-bound and returns the best schedule found so
// far (not proven optimal, with Result.Note saying why).
func OptimalWithContext(ctx context.Context, in *Instance, maxJobs int) (Result, bool, error) {
	sched, opt, st := exact.BranchAndBound(ctx, in, exact.Options{MaxJobs: maxJobs})
	if sched == nil {
		if st.Reason == exact.StopTooLarge {
			return Result{}, false, fmt.Errorf("sched: instance too large for exact search (n=%d)", in.N)
		}
		return Result{}, false, fmt.Errorf("sched: exact search found no schedule (%s)", st.Reason)
	}
	res := Result{
		Algorithm:  "branch-and-bound",
		Schedule:   sched,
		Makespan:   opt,
		LowerBound: opt,
		Nodes:      st.Nodes,
	}
	if !st.Proven {
		res.LowerBound = exact.VolumeLowerBound(in)
		res.Note = fmt.Sprintf("search incomplete (%s after %d nodes); makespan is an upper bound only", st.Reason, st.Nodes)
	}
	return res, st.Proven, nil
}

// Solve dispatches through the default engine to the strongest algorithm
// applicable to the instance: the PTAS for identical/uniform machines, the
// 2-approximation for class-uniform restricted assignment, the
// 3-approximation for class-uniform processing times, and randomized
// rounding for general unrelated machines. Repeated solves of a
// fingerprint-identical instance warm-start from the default engine's
// bound cache.
func Solve(in *Instance) (Result, error) {
	return SolveWithContext(context.Background(), in)
}

// SolveWithContext is Solve under a context: a deadline or cancellation
// stops in-flight searches (PTAS dynamic program, branch-and-bound nodes,
// LP rounding's binary search) and returns the best feasible schedule
// reached, with Result.Note explaining any early stop. Pass at most one
// SolveOptions to tune the chosen solver; Engine.Solve with functional
// options (WithEps, WithGap, …) is the richer interface.
func SolveWithContext(ctx context.Context, in *Instance, opts ...SolveOptions) (Result, error) {
	opt, err := onlyOpt("SolveWithContext", opts)
	if err != nil {
		return Result{}, err
	}
	return DefaultEngine().Solve(ctx, in, WithOptions(opt))
}

// SolveBatch solves many instances through the default engine's worker
// pool; see Engine.SolveBatch for the service-mode semantics (per-request
// deadlines via WithTimeout, per-instance results and errors).
func SolveBatch(ctx context.Context, ins []*Instance, opts ...SolveOption) []BatchResult {
	return DefaultEngine().SolveBatch(ctx, ins, opts...)
}

// Portfolio races every solver applicable to the instance concurrently
// under the shared ctx — typically bounded by a deadline — and returns the
// minimum-makespan schedule along with every member's outcome. At least
// two solvers race for every machine environment (the specialists plus the
// baselines and, for small instances, the exact search). Pass at most one
// SolveOptions; Engine.Portfolio with functional options is the richer
// interface.
func Portfolio(ctx context.Context, in *Instance, opts ...SolveOptions) (PortfolioResult, error) {
	opt, err := onlyOpt("Portfolio", opts)
	if err != nil {
		return PortfolioResult{}, err
	}
	return DefaultEngine().Portfolio(ctx, in, WithOptions(opt))
}

// onlyOpt unpacks the optional trailing SolveOptions of the compatibility
// wrappers. More than one is rejected loudly: an earlier version silently
// dropped every option after the first, which is exactly the kind of
// footgun the variadic-struct signature invites.
func onlyOpt(fn string, opts []SolveOptions) (SolveOptions, error) {
	switch len(opts) {
	case 0:
		return SolveOptions{}, nil
	case 1:
		return opts[0], nil
	default:
		return SolveOptions{}, fmt.Errorf(
			"sched: %s accepts at most one SolveOptions, got %d — merge them, or use Engine.Solve with functional options (WithEps, WithGap, …)",
			fn, len(opts))
	}
}

// Figure1 renders the speed-group diagnostic of the paper's Figure 1 for a
// uniform instance at makespan guess T and accuracy eps.
func Figure1(in *Instance, T, eps float64) (string, error) {
	return ptas.Figure1(in, T, eps)
}

// LocalSearch post-optimizes a feasible schedule by best-improvement
// descent over job moves, swaps and class consolidation. It never worsens
// the schedule.
func LocalSearch(in *Instance, s *Schedule) *Schedule {
	improved, _ := improve.Improve(context.Background(), in, s, improve.DefaultOptions())
	return improved
}

// SplitSchedule is a fractional (splittable-model) schedule; see
// Splittable.
type SplitSchedule = special.SplitSchedule

// Splittable solves the splittable relaxation of Correa et al. [5] — class
// workloads may be divided across machines, every carrier paying the full
// setup — via LP-RelaxedRA and the Section 3.3 pseudoforest rounding. Put
// each job in its own class for job-level splitting.
func Splittable(in *Instance) (*SplitSchedule, float64, error) {
	res, err := special.ScheduleSplittable(context.Background(), in, special.Options{})
	if err != nil {
		return nil, 0, err
	}
	return res.Split, res.Makespan, nil
}

// Timeline materializes a complete feasible schedule into explicit batched
// start/end times per machine (setups before each class batch) and can
// render an ASCII Gantt chart.
type Timeline = timeline.Timeline

// BuildTimeline materializes sched into a Timeline.
func BuildTimeline(in *Instance, s *Schedule) (*Timeline, error) {
	return timeline.Build(in, s)
}

// NextFitBatch runs the whole-class batching heuristic for identical
// machines (the regime of Mäcker et al. [24] that Section 2 generalizes).
func NextFitBatch(in *Instance) (Result, error) {
	sched, err := identical.NextFitBatch(in)
	if err != nil {
		return Result{}, err
	}
	return Result{Algorithm: "next-fit-batch", Schedule: sched,
		Makespan: sched.Makespan(in), LowerBound: exact.VolumeLowerBound(in)}, nil
}

// SplitBigClasses runs the class-splitting batch heuristic for identical
// machines.
func SplitBigClasses(in *Instance) (Result, error) {
	sched, err := identical.SplitBigClasses(in)
	if err != nil {
		return Result{}, err
	}
	return Result{Algorithm: "split-big-classes", Schedule: sched,
		Makespan: sched.Makespan(in), LowerBound: exact.VolumeLowerBound(in)}, nil
}
