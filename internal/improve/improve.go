// Package improve implements local-search post-optimization for schedules:
// best-improvement descent over job moves, job swaps and class
// consolidation. The paper's algorithms come with worst-case guarantees;
// local search is the standard practical complement (cf. the heuristics
// literature surveyed by Allahverdi et al. [2,3,1] in the paper's related
// work) and the E13 ablation quantifies how much it helps each algorithm's
// schedules.
package improve

import (
	"context"
	"math"

	"repro/internal/core"
)

// Options bounds the descent.
type Options struct {
	// MaxRounds caps the number of full improvement sweeps (default 50).
	MaxRounds int
	// Moves enables single-job relocation (default true when zero-valued
	// Options are used via Improve).
	Moves bool
	// Swaps enables pairwise job exchange.
	Swaps bool
	// Consolidate enables moving an entire class from one machine to
	// another (the move that pays off when a setup dominates its jobs).
	Consolidate bool
}

// DefaultOptions enables every neighborhood.
func DefaultOptions() Options {
	return Options{MaxRounds: 50, Moves: true, Swaps: true, Consolidate: true}
}

// Result reports what the descent did.
type Result struct {
	// Rounds is the number of sweeps performed.
	Rounds int
	// Applied is the number of improving steps taken.
	Applied int
	// Before and After are the makespans at entry and exit.
	Before, After float64
	// Stopped is true when the context was cancelled before the descent
	// reached a local optimum (the returned schedule is still valid and no
	// worse than the input).
	Stopped bool
}

// state tracks loads incrementally during the descent.
type state struct {
	in      *core.Instance
	assign  []int
	loads   []float64
	classOn [][]int // count of jobs of class k on machine i
}

func newState(in *core.Instance, sched *core.Schedule) *state {
	st := &state{
		in:      in,
		assign:  append([]int(nil), sched.Assign...),
		loads:   make([]float64, in.M),
		classOn: make([][]int, in.M),
	}
	for i := range st.classOn {
		st.classOn[i] = make([]int, in.K)
	}
	for j, i := range st.assign {
		if i < 0 {
			continue
		}
		st.loads[i] += in.P[i][j]
		if st.classOn[i][in.Class[j]] == 0 {
			st.loads[i] += in.S[i][in.Class[j]]
		}
		st.classOn[i][in.Class[j]]++
	}
	return st
}

func (st *state) makespan() float64 {
	ms := 0.0
	for _, l := range st.loads {
		if l > ms {
			ms = l
		}
	}
	return ms
}

// removeCost returns the load decrease on machine i when job j leaves it.
func (st *state) removeCost(j, i int) float64 {
	d := st.in.P[i][j]
	if st.classOn[i][st.in.Class[j]] == 1 {
		d += st.in.S[i][st.in.Class[j]]
	}
	return d
}

// addCost returns the load increase on machine i when job j joins it.
func (st *state) addCost(j, i int) float64 {
	d := st.in.P[i][j]
	if st.classOn[i][st.in.Class[j]] == 0 {
		d += st.in.S[i][st.in.Class[j]]
	}
	return d
}

func (st *state) moveJob(j, to int) {
	from := st.assign[j]
	k := st.in.Class[j]
	st.loads[from] -= st.removeCost(j, from)
	st.classOn[from][k]--
	st.loads[to] += st.addCost(j, to)
	st.classOn[to][k]++
	st.assign[j] = to
}

// Improve runs best-improvement descent on a copy of sched and returns the
// improved schedule. The input schedule must be complete and feasible. The
// context is checked between descent rounds: cancellation stops the
// descent and returns the best schedule reached so far (never worse than
// the input).
func Improve(ctx context.Context, in *core.Instance, sched *core.Schedule, opt Options) (*core.Schedule, Result) {
	if opt.MaxRounds <= 0 {
		opt = DefaultOptions()
	}
	st := newState(in, sched)
	res := Result{Before: st.makespan()}
	for res.Rounds = 0; res.Rounds < opt.MaxRounds; res.Rounds++ {
		if ctx.Err() != nil {
			res.Stopped = true
			break
		}
		improved := false
		if opt.Moves && st.bestMove() {
			improved, res.Applied = true, res.Applied+1
		}
		if opt.Swaps && st.bestSwap() {
			improved, res.Applied = true, res.Applied+1
		}
		if opt.Consolidate && st.bestConsolidation() {
			improved, res.Applied = true, res.Applied+1
		}
		if !improved {
			break
		}
	}
	res.After = st.makespan()
	return &core.Schedule{Assign: st.assign}, res
}

// bestMove relocates one job off a makespan machine if that strictly
// reduces the makespan. Returns whether a move was applied.
func (st *state) bestMove() bool {
	ms := st.makespan()
	bestJ, bestI, bestPeak := -1, -1, ms
	for j, from := range st.assign {
		if from < 0 || st.loads[from] < ms-core.Eps {
			continue // only moves off critical machines can help
		}
		fromAfter := st.loads[from] - st.removeCost(j, from)
		for i := 0; i < st.in.M; i++ {
			if i == from || !st.in.Eligibility(i, j, math.Inf(1)) {
				continue
			}
			toAfter := st.loads[i] + st.addCost(j, i)
			peak := st.peakAfter(from, i, fromAfter, toAfter)
			if peak < bestPeak-core.Eps {
				bestJ, bestI, bestPeak = j, i, peak
			}
		}
	}
	if bestJ < 0 {
		return false
	}
	st.moveJob(bestJ, bestI)
	return true
}

// bestSwap exchanges two jobs across machines if the makespan strictly
// drops. Only pairs touching a critical machine are considered.
func (st *state) bestSwap() bool {
	ms := st.makespan()
	bestA, bestB, bestPeak := -1, -1, ms
	for a, ia := range st.assign {
		if ia < 0 || st.loads[ia] < ms-core.Eps {
			continue
		}
		for b, ib := range st.assign {
			if ib < 0 || ib == ia || b == a {
				continue
			}
			if !st.in.Eligibility(ib, a, math.Inf(1)) || !st.in.Eligibility(ia, b, math.Inf(1)) {
				continue
			}
			// Simulate: remove a from ia and b from ib, then cross-add.
			// Class counting interacts when a and b share a class.
			aAfter, bAfter := st.simulateSwap(a, b)
			peak := st.peakAfter(ia, ib, aAfter, bAfter)
			if peak < bestPeak-core.Eps {
				bestA, bestB, bestPeak = a, b, peak
			}
		}
	}
	if bestA < 0 {
		return false
	}
	ia, ib := st.assign[bestA], st.assign[bestB]
	st.moveJob(bestA, ib)
	st.moveJob(bestB, ia)
	return true
}

// simulateSwap returns the post-swap loads of a's and b's machines.
func (st *state) simulateSwap(a, b int) (loadA, loadB float64) {
	ia, ib := st.assign[a], st.assign[b]
	ka, kb := st.in.Class[a], st.in.Class[b]
	loadA = st.loads[ia] - st.removeCost(a, ia)
	loadB = st.loads[ib] - st.removeCost(b, ib)
	// Add b to ia: setup needed unless class kb still present on ia after
	// a left (a may have been the only kb job — only if ka == kb).
	cntKbOnIa := st.classOn[ia][kb]
	if ka == kb {
		cntKbOnIa--
	}
	loadA += st.in.P[ia][b]
	if cntKbOnIa == 0 {
		loadA += st.in.S[ia][kb]
	}
	cntKaOnIb := st.classOn[ib][ka]
	if ka == kb {
		cntKaOnIb--
	}
	loadB += st.in.P[ib][a]
	if cntKaOnIb == 0 {
		loadB += st.in.S[ib][ka]
	}
	return loadA, loadB
}

// bestConsolidation moves all jobs of one class from one machine onto
// another machine already hosting (or newly paying for) that class.
func (st *state) bestConsolidation() bool {
	ms := st.makespan()
	type cand struct {
		from, to, k int
	}
	best := cand{-1, -1, -1}
	bestPeak := ms
	for from := 0; from < st.in.M; from++ {
		if st.loads[from] < ms-core.Eps {
			continue
		}
		for k := 0; k < st.in.K; k++ {
			if st.classOn[from][k] == 0 {
				continue
			}
			// Gather the chunk.
			var chunk []int
			vol := 0.0
			for j, i := range st.assign {
				if i == from && st.in.Class[j] == k {
					chunk = append(chunk, j)
				}
			}
			for to := 0; to < st.in.M; to++ {
				if to == from {
					continue
				}
				ok := true
				vol = 0
				for _, j := range chunk {
					if !st.in.Eligibility(to, j, math.Inf(1)) {
						ok = false
						break
					}
					vol += st.in.P[to][j]
				}
				if !ok {
					continue
				}
				fromAfter := st.loads[from] - chunkRemoveCost(st, chunk, from, k)
				toAfter := st.loads[to] + vol
				if st.classOn[to][k] == 0 {
					toAfter += st.in.S[to][k]
				}
				peak := st.peakAfter(from, to, fromAfter, toAfter)
				if peak < bestPeak-core.Eps {
					best, bestPeak = cand{from, to, k}, peak
				}
			}
		}
	}
	if best.from < 0 {
		return false
	}
	for j, i := range st.assign {
		if i == best.from && st.in.Class[j] == best.k {
			st.moveJob(j, best.to)
		}
	}
	return true
}

func chunkRemoveCost(st *state, chunk []int, from, k int) float64 {
	vol := st.in.S[from][k]
	for _, j := range chunk {
		vol += st.in.P[from][j]
	}
	return vol
}

// peakAfter returns the makespan if machines a and b take the given new
// loads and everything else stays.
func (st *state) peakAfter(a, b int, loadA, loadB float64) float64 {
	peak := math.Max(loadA, loadB)
	for i, l := range st.loads {
		if i == a || i == b {
			continue
		}
		if l > peak {
			peak = l
		}
	}
	return peak
}
