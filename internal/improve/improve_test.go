package improve

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/gen"
)

func randomInstance(rng *rand.Rand, n int) *core.Instance {
	p := gen.Params{N: n, M: 1 + rng.Intn(4), K: 1 + rng.Intn(3)}
	switch rng.Intn(4) {
	case 0:
		return gen.Identical(rng, p)
	case 1:
		return gen.Uniform(rng, p)
	case 2:
		return gen.Unrelated(rng, p)
	default:
		return gen.Restricted(rng, p)
	}
}

// Invariants: the descent never produces an infeasible schedule and never
// increases the makespan.
func TestImproveInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomInstance(rng, 1+rng.Intn(25))
		start, err := baseline.Greedy(in)
		if err != nil {
			return false
		}
		improved, res := Improve(context.Background(), in, start, DefaultOptions())
		if err := improved.Validate(in); err != nil {
			return false
		}
		ms := improved.Makespan(in)
		if ms > res.Before+core.Eps {
			return false
		}
		if absDiff(ms, res.After) > 1e-6 {
			return false // reported makespan must match the real one
		}
		return res.After <= res.Before+core.Eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func absDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

// The incremental load bookkeeping must agree with a fresh recomputation
// after many applied moves.
func TestIncrementalLoadsConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomInstance(rng, 5+rng.Intn(20))
		start, err := baseline.Greedy(in)
		if err != nil {
			return false
		}
		st := newState(in, start)
		for step := 0; step < 10; step++ {
			if !st.bestMove() && !st.bestSwap() && !st.bestConsolidation() {
				break
			}
		}
		fresh := (&core.Schedule{Assign: st.assign}).Loads(in)
		for i := range fresh {
			if absDiff(fresh[i], st.loads[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestImproveFindsObviousMove(t *testing.T) {
	// Two identical machines, both jobs on machine 0: moving one is
	// clearly better.
	in, err := core.NewIdentical([]float64{10, 10}, []int{0, 1}, []float64{1, 1}, 2)
	if err != nil {
		t.Fatalf("NewIdentical: %v", err)
	}
	start := &core.Schedule{Assign: []int{0, 0}}
	improved, res := Improve(context.Background(), in, start, DefaultOptions())
	if res.After >= res.Before {
		t.Fatalf("no improvement: before=%v after=%v", res.Before, res.After)
	}
	if improved.Makespan(in) != 11 {
		t.Errorf("makespan = %v, want 11", improved.Makespan(in))
	}
}

func TestConsolidationMove(t *testing.T) {
	// Class 0 has a huge setup and is split across both machines; jobs are
	// tiny, so consolidating onto one machine wins. Machine 1 also hosts a
	// singleton class to keep it from going empty.
	in, err := core.NewIdentical(
		[]float64{1, 1, 1, 1, 30}, []int{0, 0, 0, 0, 1}, []float64{100, 5}, 2)
	if err != nil {
		t.Fatalf("NewIdentical: %v", err)
	}
	start := &core.Schedule{Assign: []int{0, 0, 1, 1, 1}}
	// Before: m0 = 100+2 = 102, m1 = 100+2+5+30 = 137.
	improved, res := Improve(context.Background(), in, start, DefaultOptions())
	if res.After >= 137-core.Eps {
		t.Fatalf("consolidation not found: before=%v after=%v", res.Before, res.After)
	}
	// Optimal-ish: class 0 together on m0 (104), class 1 on m1 (35).
	if got := improved.Makespan(in); got > 104+core.Eps {
		t.Errorf("makespan = %v, want <= 104", got)
	}
}

func TestSwapSharedClassAccounting(t *testing.T) {
	// Swapping two jobs of the SAME class across machines must not corrupt
	// setup accounting (the tricky cntK adjustment path).
	in, err := core.NewUnrelated(
		[][]float64{{1, 9}, {9, 1}},
		[]int{0, 0},
		[][]float64{{5}, {5}},
	)
	if err != nil {
		t.Fatalf("NewUnrelated: %v", err)
	}
	start := &core.Schedule{Assign: []int{1, 0}} // both misplaced: loads 14/14
	improved, _ := Improve(context.Background(), in, start, DefaultOptions())
	if got := improved.Makespan(in); got > 6+core.Eps {
		t.Errorf("makespan = %v, want 6 (swap to native machines)", got)
	}
	if err := improved.Validate(in); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestImproveTightensTowardsOptimum(t *testing.T) {
	better, total := 0, 0
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		in := gen.Unrelated(rng, gen.Params{N: 9, M: 3, K: 2})
		_, opt, bst := exact.BranchAndBound(context.Background(), in, exact.Options{})
		proven := bst.Proven
		if !proven || opt <= 0 {
			continue
		}
		start, err := baseline.Greedy(in)
		if err != nil {
			t.Fatal(err)
		}
		improved, _ := Improve(context.Background(), in, start, DefaultOptions())
		if improved.Makespan(in) < start.Makespan(in)-core.Eps {
			better++
		}
		if improved.Makespan(in) < opt-core.Eps {
			t.Fatalf("seed %d: local search beat the proven optimum — accounting bug", seed)
		}
		total++
	}
	if total == 0 {
		t.Fatal("vacuous")
	}
	t.Logf("local search improved greedy on %d/%d instances", better, total)
}

func TestNeighborhoodToggles(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	in := gen.Identical(rng, gen.Params{N: 15, M: 3, K: 2})
	start, err := baseline.Greedy(in)
	if err != nil {
		t.Fatal(err)
	}
	onlyMoves := Options{MaxRounds: 50, Moves: true}
	improved, res := Improve(context.Background(), in, start, onlyMoves)
	if err := improved.Validate(in); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if res.After > res.Before+core.Eps {
		t.Error("moves-only descent worsened the schedule")
	}
}
