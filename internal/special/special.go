// Package special implements the two constant-factor special cases of
// Section 3.3 of the paper:
//
//   - restricted assignment with class-uniform restrictions (all jobs of a
//     class share the same eligible machine set): a 2-approximation
//     (Theorem 3.10), and
//   - unrelated machines with class-uniform processing times (all jobs of a
//     class have the same processing time on any given machine): a
//     3-approximation (Theorem 3.11).
//
// Both run the dual approximation framework over the relaxed linear program
// LP-RelaxedRA, which has one variable x̄_ik per class-machine pair (the
// fraction of class k's workload processed on machine i):
//
//	Σ_k x̄_ik (p̄_ik + α_ik s_ik) ≤ T   ∀i     (11)
//	Σ_i x̄_ik = 1                      ∀k     (12)
//	x̄_ik ≥ 0                                 (13)
//	x̄_ik = 0   for excluded pairs            (14)/(16)
//
// where p̄_ik is the total workload of class k on machine i and
// α_ik = max{1, p̄_ik/(T−s_ik)}. An extreme solution (which the simplex
// substrate produces) induces a bipartite support graph that is a
// pseudoforest; the rounding of Correa et al. [5], restated in the paper,
// turns it into an integral solution losing only a constant factor.
package special

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dual"
	"repro/internal/exact"
	"repro/internal/lp"
)

// fracTol is the tolerance below which an LP value counts as 0 and above
// 1−fracTol counts as 1 when building the support graph.
const fracTol = 1e-7

// Options configures the special-case algorithms.
type Options struct {
	// Precision is the relative precision of the binary search on T
	// (default 0.02).
	Precision float64
	// Rng is unused by the deterministic rounding but kept for signature
	// symmetry with the other algorithms; may be nil.
	Rng *rand.Rand
	// Bounds, when non-nil, connects the run to a live bound exchange (the
	// engine portfolio's incumbent bus): the greedy bootstrap and every
	// accepted guess are published as incumbents the moment they appear,
	// LP-RelaxedRA-infeasible guesses as certified lower bounds, and the
	// binary search skips guesses at or above the live incumbent.
	Bounds core.BoundBus
	// SearchWorkers is the speculative parallelism of the binary search on
	// T (dual.Speculate): that many guesses are LP-solved and rounded
	// concurrently. The per-guess procedure builds a fresh LP-RelaxedRA
	// problem and support graph each call and reads only the immutable
	// instance, so workers share no mutable state. 0 or 1 keeps the
	// sequential bisection.
	SearchWorkers int
	// Budget, when non-nil, governs the search width live (the engine's
	// global concurrency budget): each round runs as wide as the budget
	// grants, degrading toward sequential bisection when the box is
	// saturated. Nil keeps the local GOMAXPROCS clamp.
	Budget core.TokenBudget
}

func (o Options) normalize() Options {
	if o.Precision <= 0 {
		o.Precision = 0.02
	}
	return o
}

// relaxed is the LP-RelaxedRA solution for one guess T.
type relaxed struct {
	T    float64
	xbar [][]float64 // m×K
	work [][]float64 // p̄_ik (Inf when ineligible)
}

// solveRelaxed builds and solves LP-RelaxedRA for guess T. The pair (i,k)
// is admitted only when admit(i,k) holds (the per-variant exclusion rule
// (14)/(16)). Returns nil when the LP is infeasible.
func solveRelaxed(in *core.Instance, T float64, admit func(i, k int) bool) (*relaxed, error) {
	work := in.ClassWork()
	p := &lp.Problem{}
	idx := make([][]int, in.M)
	for i := 0; i < in.M; i++ {
		idx[i] = make([]int, in.K)
		for k := 0; k < in.K; k++ {
			idx[i][k] = -1
			if !core.IsFinite(work[i][k]) || !core.IsFinite(in.S[i][k]) {
				continue
			}
			if in.S[i][k] > T+core.Eps {
				continue // (14)
			}
			if !admit(i, k) {
				continue
			}
			// α_ik needs T − s_ik > 0 unless the class has no workload.
			if work[i][k] > core.Eps && T-in.S[i][k] <= core.Eps {
				continue
			}
			idx[i][k] = p.AddVar(0, 1)
		}
	}
	// (11): machine capacity with setup inflation α_ik.
	for i := 0; i < in.M; i++ {
		terms := []lp.Term{}
		for k := 0; k < in.K; k++ {
			if idx[i][k] < 0 {
				continue
			}
			alpha := 1.0
			if work[i][k] > core.Eps {
				if a := work[i][k] / (T - in.S[i][k]); a > 1 {
					alpha = a
				}
			}
			coef := work[i][k] + alpha*in.S[i][k]
			if coef > 0 {
				terms = append(terms, lp.Term{Var: idx[i][k], Coef: coef})
			}
		}
		if len(terms) > 0 {
			p.AddConstraint(lp.LE, T, terms...)
		}
	}
	// (12): every class fully distributed.
	present := make([]bool, in.K)
	for _, k := range in.Class {
		present[k] = true
	}
	for k := 0; k < in.K; k++ {
		if !present[k] {
			continue // class without jobs: nothing to schedule
		}
		terms := []lp.Term{}
		for i := 0; i < in.M; i++ {
			if idx[i][k] >= 0 {
				terms = append(terms, lp.Term{Var: idx[i][k], Coef: 1})
			}
		}
		if len(terms) == 0 {
			return nil, nil
		}
		p.AddConstraint(lp.EQ, 1, terms...)
	}
	sol, err := p.Solve()
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, nil
	}
	r := &relaxed{T: T, xbar: make([][]float64, in.M), work: work}
	for i := 0; i < in.M; i++ {
		r.xbar[i] = make([]float64, in.K)
		for k := 0; k < in.K; k++ {
			if idx[i][k] >= 0 {
				v := sol.Value(idx[i][k])
				switch {
				case v < fracTol:
					v = 0
				case v > 1-fracTol:
					v = 1
				}
				r.xbar[i][k] = v
			}
		}
	}
	return r, nil
}

// schedule runs the shared dual approximation loop with the given decider
// and packages the outcome. The context is checked between guesses. The
// decider must be safe for concurrent calls when opt.SearchWorkers > 1
// (both Theorem 3.10/3.11 deciders are: they build a fresh LP and support
// graph per guess over the read-only instance).
func schedule(ctx context.Context, in *core.Instance, name string, opt Options, decide dual.Decider) (core.Result, error) {
	opt = opt.normalize()
	greedy, err := baseline.Greedy(in)
	if err != nil {
		return core.Result{}, err
	}
	ub := greedy.Makespan(in)
	lb := exact.VolumeLowerBound(in)
	if opt.Bounds != nil {
		opt.Bounds.PublishUpper(ub) // the greedy schedule is feasible
		opt.Bounds.PublishLower(lb)
	}
	workers := dual.PlanParallelism(opt.SearchWorkers, opt.Budget)
	deciders := make([]dual.GuessDecider, workers)
	for w := range deciders {
		deciders[w] = func(g dual.Guess) (*core.Schedule, bool) { return decide(g.T) }
	}
	out := dual.Run(ctx, dual.Config{
		Instance:  in,
		Lower:     lb,
		Upper:     ub,
		Precision: opt.Precision,
		Fallback:  greedy,
		Bus:       opt.Bounds,
		Strategy:  dual.Speculate(workers),
		Deciders:  deciders,
		Budget:    opt.Budget,
	})
	low := out.LowerBound
	if lb > low {
		low = lb
	}
	note := ""
	if out.Err != nil {
		note = fmt.Sprintf("binary search stopped early (%v after %d guesses); schedule is best-so-far, constant-factor guarantee not certified", out.Err, out.Guesses)
	}
	return core.Result{
		Algorithm:  name,
		Schedule:   out.Schedule,
		Makespan:   out.Makespan,
		LowerBound: low,
		Note:       note,
	}, nil
}

// maxJobOfClass returns, per class, the largest job size (restricted
// assignment base sizes).
func maxJobOfClass(in *core.Instance) []float64 {
	maxP := make([]float64, in.K)
	for j := 0; j < in.N; j++ {
		if in.JobSize[j] > maxP[in.Class[j]] {
			maxP[in.Class[j]] = in.JobSize[j]
		}
	}
	return maxP
}
