package special

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/testutil"
)

func TestCheckClassUniformRA(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	good := gen.RestrictedClassUniform(rng, gen.Params{N: 10, M: 3, K: 2})
	if err := CheckClassUniformRA(good); err != nil {
		t.Errorf("valid instance rejected: %v", err)
	}
	unrelated := gen.Unrelated(rng, gen.Params{N: 5, M: 2, K: 2})
	if err := CheckClassUniformRA(unrelated); err == nil {
		t.Error("unrelated instance accepted")
	}
	// Per-job restricted instance that violates class uniformity.
	bad, err := core.NewRestricted(
		[]float64{1, 1}, []int{0, 0}, []float64{1}, 2,
		[][]int{{0}, {1}},
	)
	if err != nil {
		t.Fatalf("NewRestricted: %v", err)
	}
	if err := CheckClassUniformRA(bad); err == nil {
		t.Error("non-class-uniform instance accepted")
	}
}

func TestCheckClassUniformPT(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	good := gen.UnrelatedClassUniform(rng, gen.Params{N: 10, M: 3, K: 2})
	if err := CheckClassUniformPT(good); err != nil {
		t.Errorf("valid instance rejected: %v", err)
	}
	bad := gen.Unrelated(rng, gen.Params{N: 10, M: 3, K: 2})
	if err := CheckClassUniformPT(bad); err == nil {
		t.Error("generic unrelated instance accepted (class times differ w.h.p.)")
	}
}

func TestScheduleClassUniformRAFeasible(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := gen.Params{N: 1 + rng.Intn(20), M: 1 + rng.Intn(4), K: 1 + rng.Intn(4)}
		in := gen.RestrictedClassUniform(rng, p)
		res, err := ScheduleClassUniformRA(context.Background(), in, Options{})
		if err != nil {
			return false
		}
		return res.Schedule != nil && res.Schedule.Complete() && res.Schedule.Validate(in) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Theorem 3.10: ratio ≤ 2, with slack for the binary-search precision.
func TestScheduleClassUniformRAWithinFactor2(t *testing.T) {
	checked := 0
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		in := gen.RestrictedClassUniform(rng, gen.Params{N: 7 + rng.Intn(4), M: 2 + rng.Intn(2), K: 1 + rng.Intn(3)})
		_, opt, bst := exact.BranchAndBound(context.Background(), in, exact.Options{})
		proven := bst.Proven
		if !proven || opt <= 0 {
			continue
		}
		res, err := ScheduleClassUniformRA(context.Background(), in, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Makespan > 2.1*opt+core.Eps {
			t.Errorf("seed %d: makespan %v > 2.1·Opt (%v)", seed, res.Makespan, opt)
		}
		checked++
	}
	if checked == 0 {
		t.Error("no instance was checked; test vacuous")
	}
}

func TestScheduleClassUniformPTFeasible(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := gen.Params{N: 1 + rng.Intn(20), M: 1 + rng.Intn(4), K: 1 + rng.Intn(4)}
		in := gen.UnrelatedClassUniform(rng, p)
		res, err := ScheduleClassUniformPT(context.Background(), in, Options{})
		if err != nil {
			return false
		}
		return res.Schedule != nil && res.Schedule.Complete() && res.Schedule.Validate(in) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Theorem 3.11: ratio ≤ 3, with slack for the binary-search precision.
func TestScheduleClassUniformPTWithinFactor3(t *testing.T) {
	checked := 0
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		in := gen.UnrelatedClassUniform(rng, gen.Params{N: 7 + rng.Intn(4), M: 2 + rng.Intn(2), K: 1 + rng.Intn(3)})
		_, opt, bst := exact.BranchAndBound(context.Background(), in, exact.Options{})
		proven := bst.Proven
		if !proven || opt <= 0 {
			continue
		}
		res, err := ScheduleClassUniformPT(context.Background(), in, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Makespan > 3.1*opt+core.Eps {
			t.Errorf("seed %d: makespan %v > 3.1·Opt (%v)", seed, res.Makespan, opt)
		}
		checked++
	}
	if checked == 0 {
		t.Error("no instance was checked; test vacuous")
	}
}

func TestRejectsWrongStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	generic := gen.Unrelated(rng, gen.Params{N: 8, M: 3, K: 2})
	if _, err := ScheduleClassUniformRA(context.Background(), generic, Options{}); err == nil {
		t.Error("RA algorithm accepted an unrelated instance")
	}
	perJob := gen.Restricted(rng, gen.Params{N: 12, M: 3, K: 2})
	if err := CheckClassUniformRA(perJob); err == nil {
		t.Skip("random per-job instance happened to be class-uniform")
	}
	if _, err := ScheduleClassUniformRA(context.Background(), perJob, Options{}); err == nil {
		t.Error("RA algorithm accepted a non-class-uniform instance")
	}
}

func TestLowerBoundSound(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		in := gen.RestrictedClassUniform(rng, gen.Params{N: 8, M: 2, K: 2})
		_, opt, bst := exact.BranchAndBound(context.Background(), in, exact.Options{})
		proven := bst.Proven
		if !proven {
			continue
		}
		res, err := ScheduleClassUniformRA(context.Background(), in, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.LowerBound > opt+1e-6 {
			t.Errorf("seed %d: claimed lower bound %v exceeds true optimum %v", seed, res.LowerBound, opt)
		}
	}
}

// TestSpeculativeSearchWorkers: both special-case deciders are stateless
// per guess, so the speculative parallel search (run under -race) must
// produce valid schedules whose certified bounds agree with the sequential
// search within the combined precision.
func TestSpeculativeSearchWorkers(t *testing.T) {
	testutil.ForceParallel(t)
	rng := rand.New(rand.NewSource(4))
	cases := []struct {
		name  string
		in    *core.Instance
		solve func(*core.Instance, Options) (core.Result, error)
	}{
		{"ra2", gen.RestrictedClassUniform(rng, gen.Params{N: 24, M: 4, K: 4}),
			func(in *core.Instance, o Options) (core.Result, error) {
				return ScheduleClassUniformRA(context.Background(), in, o)
			}},
		{"pt3", gen.UnrelatedClassUniform(rng, gen.Params{N: 24, M: 4, K: 4}),
			func(in *core.Instance, o Options) (core.Result, error) {
				return ScheduleClassUniformPT(context.Background(), in, o)
			}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seq, err := tc.solve(tc.in, Options{})
			if err != nil {
				t.Fatal(err)
			}
			spec, err := tc.solve(tc.in, Options{SearchWorkers: 3})
			if err != nil {
				t.Fatal(err)
			}
			if spec.Schedule == nil || spec.Schedule.Validate(tc.in) != nil {
				t.Fatal("speculative search produced an invalid schedule")
			}
			// The LP-feasibility threshold is deterministic; both searches
			// certify lower bounds within one precision step below it.
			const prec = 0.02
			if seq.LowerBound > 0 && spec.LowerBound > 0 {
				ratio := seq.LowerBound / spec.LowerBound
				if ratio < 1/(1+prec)/(1+prec) || ratio > (1+prec)*(1+prec) {
					t.Errorf("sequential lower bound %g vs speculative %g beyond precision",
						seq.LowerBound, spec.LowerBound)
				}
			}
		})
	}
}
