package special

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/dual"
)

// ScheduleClassUniformRA implements Theorem 3.10: a 2-approximation for the
// restricted assignment problem with class-uniform restrictions (all jobs of
// a class share one eligible machine set M_k). The instance must be a
// restricted-assignment instance whose eligibility is class-uniform;
// CheckClassUniformRA reports violations.
func ScheduleClassUniformRA(ctx context.Context, in *core.Instance, opt Options) (core.Result, error) {
	if err := CheckClassUniformRA(in); err != nil {
		return core.Result{}, err
	}
	var mu sync.Mutex
	var solveErr error
	decide := func(T float64) (*core.Schedule, bool) {
		// Any schedule with makespan ≤ T pays p_j + s_{k_j} ≤ T for every
		// job (in restricted assignment the setup size is machine-
		// independent on eligible machines), so T below that is rejected.
		for j := 0; j < in.N; j++ {
			if in.JobSize[j]+in.SetupSize[in.Class[j]] > T+core.Eps {
				return nil, false
			}
		}
		r, err := solveRelaxed(in, T, func(i, k int) bool { return true })
		if err != nil {
			mu.Lock()
			if solveErr == nil {
				solveErr = err
			}
			mu.Unlock()
			return nil, true
		}
		if r == nil {
			return nil, false
		}
		return roundRA(in, r), true
	}
	res, err := schedule(ctx, in, "class-uniform-ra-2approx", opt, dual.Decider(decide))
	if err == nil && solveErr != nil {
		err = solveErr
	}
	return res, err
}

// CheckClassUniformRA verifies the structural precondition of Theorem 3.10.
func CheckClassUniformRA(in *core.Instance) error {
	if in.Kind != core.RestrictedAssignment {
		return fmt.Errorf("special: need a restricted-assignment instance, got %v", in.Kind)
	}
	byClass := in.JobsOfClass()
	for k, jobs := range byClass {
		if len(jobs) == 0 {
			continue
		}
		for _, j := range jobs[1:] {
			for i := 0; i < in.M; i++ {
				if in.Eligible[j][i] != in.Eligible[jobs[0]][i] {
					return fmt.Errorf("special: class %d is not class-uniform (jobs %d and %d differ on machine %d)", k, jobs[0], j, i)
				}
			}
		}
	}
	return nil
}

// roundRA performs the rounding of Section 3.3.1 on an extreme LP solution:
// pseudoforest extraction, the i−→i+ workload move, and the greedy slot
// fill with i+ last. The result is a complete feasible schedule with
// makespan at most 2T.
func roundRA(in *core.Instance, r *relaxed) *core.Schedule {
	xb := cloneMatrix(r.xbar)
	g := newSupportGraph(in.M, in.K, xb)
	roots := g.breakCycles()
	kept := g.orientAndPrune(roots)

	iPlus := make([]int, in.K) // chosen i+ per class (-1 if none)
	for k := range iPlus {
		iPlus[k] = -1
	}
	for k := 0; k < in.K; k++ {
		// Machines in Ẽ for this class, plus the (≤1) fractional machine
		// outside Ẽ.
		minus := -1
		for i := 0; i < in.M; i++ {
			v := xb[i][k]
			if v <= fracTol || v >= 1-fracTol {
				continue
			}
			if kept[[2]int{i, k}] {
				if iPlus[k] < 0 {
					iPlus[k] = i
				}
			} else {
				minus = i
			}
		}
		if minus >= 0 {
			if iPlus[k] < 0 {
				// Defensive: Lemma 3.8 guarantees a kept edge whenever a
				// fractional edge was dropped; fall back to the largest
				// fractional carrier if numerics ever violate it.
				best := -1.0
				for i := 0; i < in.M; i++ {
					if i != minus && xb[i][k] > best {
						best, iPlus[k] = xb[i][k], i
					}
				}
			}
			if iPlus[k] >= 0 {
				xb[iPlus[k]][k] += xb[minus][k]
				xb[minus][k] = 0
			}
		}
	}
	return fillSlots(in, r, xb, iPlus)
}

// fillSlots turns the modified fractional solution into a schedule: for
// every class, machine i reserves a slot of x̄_ik·p̄_ik time and the class's
// jobs are filled greedily, with the designated last machine (i+, or the
// largest slot when none) absorbing the remainder.
func fillSlots(in *core.Instance, r *relaxed, xb [][]float64, last []int) *core.Schedule {
	sched := core.NewSchedule(in.N)
	byClass := in.JobsOfClass()
	for k := 0; k < in.K; k++ {
		jobs := byClass[k]
		if len(jobs) == 0 {
			continue
		}
		type slot struct {
			machine  int
			capacity float64
		}
		var slots []slot
		for i := 0; i < in.M; i++ {
			if xb[i][k] > fracTol {
				slots = append(slots, slot{i, xb[i][k] * r.work[i][k]})
			}
		}
		if len(slots) == 0 {
			// Cannot happen for feasible LPs; guard against zero-job-size
			// classes whose x̄ row was all-zero by using any eligible
			// machine.
			for i := 0; i < in.M; i++ {
				if core.IsFinite(r.work[i][k]) {
					slots = append(slots, slot{i, 0})
					break
				}
			}
		}
		// Order: the designated last machine goes last; ties broken by
		// machine index for determinism. When no designated machine,
		// the largest slot absorbs the remainder.
		lastM := -1
		if last != nil {
			lastM = last[k]
		}
		if lastM < 0 {
			best := -1.0
			for _, s := range slots {
				if s.capacity > best {
					best, lastM = s.capacity, s.machine
				}
			}
		}
		sort.Slice(slots, func(a, b int) bool {
			la, lb := slots[a].machine == lastM, slots[b].machine == lastM
			if la != lb {
				return lb // non-last machines first
			}
			return slots[a].machine < slots[b].machine
		})
		ji := 0
		for si := 0; si < len(slots)-1 && ji < len(jobs); si++ {
			filled := 0.0
			for ji < len(jobs) && filled < slots[si].capacity-core.Eps {
				j := jobs[ji]
				sched.Assign[j] = slots[si].machine
				filled += in.P[slots[si].machine][j]
				ji++
			}
		}
		for ; ji < len(jobs); ji++ {
			sched.Assign[jobs[ji]] = slots[len(slots)-1].machine
		}
	}
	return sched
}

func cloneMatrix(m [][]float64) [][]float64 {
	out := make([][]float64, len(m))
	for i := range m {
		out[i] = append([]float64(nil), m[i]...)
	}
	return out
}
