package special

import "sort"

// supportGraph is the bipartite graph of strictly fractional x̄ values:
// class nodes on one side, machine nodes on the other, one edge per pair
// with 0 < x̄_ik < 1. For an extreme solution of LP-RelaxedRA each connected
// component is a pseudotree (at most one cycle), which the rounding relies
// on.
type supportGraph struct {
	m, k int
	// adjacency as sorted edge lists; nodes are encoded as
	// machine i -> i, class k -> m + k.
	adj map[int][]int
}

func machineNode(i int) int         { return i }
func classNode(m, k int) int        { return m + k }
func isClassNode(m, node int) bool  { return node >= m }
func classOfNode(m, node int) int   { return node - m }
func machineOfNode(_, node int) int { return node }

func newSupportGraph(m, k int, xbar [][]float64) *supportGraph {
	g := &supportGraph{m: m, k: k, adj: map[int][]int{}}
	for i := 0; i < m; i++ {
		for c := 0; c < k; c++ {
			if v := xbar[i][c]; v > fracTol && v < 1-fracTol {
				g.addEdge(machineNode(i), classNode(m, c))
			}
		}
	}
	return g
}

func (g *supportGraph) addEdge(a, b int) {
	g.adj[a] = append(g.adj[a], b)
	g.adj[b] = append(g.adj[b], a)
}

func (g *supportGraph) removeEdge(a, b int) {
	g.adj[a] = removeOne(g.adj[a], b)
	g.adj[b] = removeOne(g.adj[b], a)
}

func removeOne(list []int, v int) []int {
	for i, x := range list {
		if x == v {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}

func (g *supportGraph) hasEdge(a, b int) bool {
	for _, x := range g.adj[a] {
		if x == b {
			return true
		}
	}
	return false
}

// nodes returns the sorted node set (nodes with at least one edge).
func (g *supportGraph) nodes() []int {
	out := make([]int, 0, len(g.adj))
	for v, ns := range g.adj {
		if len(ns) > 0 {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}

// components returns the connected components (as sorted node lists).
func (g *supportGraph) components() [][]int {
	seen := map[int]bool{}
	var comps [][]int
	for _, start := range g.nodes() {
		if seen[start] {
			continue
		}
		var comp []int
		stack := []int{start}
		seen[start] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, v)
			for _, w := range g.adj[v] {
				if !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// findCycle returns the unique cycle of the component containing start as an
// ordered node sequence v0, v1, …, v_{L-1} (edges v0v1, …, v_{L-1}v0), or
// nil if the component is a tree. Components of extreme solutions are
// pseudotrees, so "a" cycle is "the" cycle.
func (g *supportGraph) findCycle(comp []int) []int {
	// Iterative DFS tracking parent; the first back edge closes the cycle.
	inComp := map[int]bool{}
	for _, v := range comp {
		inComp[v] = true
	}
	parent := map[int]int{}
	state := map[int]int{} // 0 unvisited, 1 in stack path, 2 done
	type frame struct {
		v, idx int
	}
	start := comp[0]
	parent[start] = -1
	stack := []frame{{start, 0}}
	state[start] = 1
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		ns := g.adj[f.v]
		if f.idx >= len(ns) {
			state[f.v] = 2
			stack = stack[:len(stack)-1]
			continue
		}
		w := ns[f.idx]
		f.idx++
		if w == parent[f.v] {
			continue
		}
		switch state[w] {
		case 0:
			parent[w] = f.v
			state[w] = 1
			stack = append(stack, frame{w, 0})
		case 1:
			// Back edge f.v—w: cycle is w … f.v along parents.
			var cyc []int
			for u := f.v; u != w; u = parent[u] {
				cyc = append(cyc, u)
			}
			cyc = append(cyc, w)
			// Reverse to get walk order w → … → f.v, closing edge f.v—w.
			for l, r := 0, len(cyc)-1; l < r; l, r = l+1, r-1 {
				cyc[l], cyc[r] = cyc[r], cyc[l]
			}
			return cyc
		}
	}
	return nil
}

// breakCycles applies the paper's cycle-breaking: for each component with a
// cycle, pick a class node v on it, fix the walk direction, and remove every
// second edge starting with the edge leaving v. Afterward the graph is a
// forest. It returns the set of class nodes that anchored a cycle (the
// paper's J(C) roots, one per kept cycle edge is implied by rooting later).
func (g *supportGraph) breakCycles() map[int]bool {
	cycleClasses := map[int]bool{}
	for _, comp := range g.components() {
		cyc := g.findCycle(comp)
		if cyc == nil {
			continue
		}
		// Rotate so the walk starts at a class node (bipartite cycles
		// alternate, so one of the first two nodes is a class).
		if !isClassNode(g.m, cyc[0]) {
			cyc = append(cyc[1:], cyc[0])
		}
		for idx, v := range cyc {
			if isClassNode(g.m, v) {
				cycleClasses[v] = true
			}
			if idx%2 == 0 {
				// Remove the edge leaving position idx.
				w := cyc[(idx+1)%len(cyc)]
				g.removeEdge(v, w)
			}
		}
	}
	return cycleClasses
}

// orientAndPrune roots every tree of the (now cycle-free) graph at a class
// node — preferring a cycle-anchored class from breakCycles — directs edges
// away from the root, and deletes every edge leaving a machine node. The
// returned set Ẽ contains the kept (machine, class) pairs and satisfies
// Lemma 3.8: every machine is in at most one pair, and every class loses at
// most one fractional machine.
func (g *supportGraph) orientAndPrune(roots map[int]bool) map[[2]int]bool {
	kept := map[[2]int]bool{}
	seen := map[int]bool{}
	for _, comp := range g.components() {
		// Pick the root: a designated cycle class if present, else the
		// smallest class node.
		root := -1
		for _, v := range comp {
			if roots[v] {
				root = v
				break
			}
		}
		if root < 0 {
			for _, v := range comp {
				if isClassNode(g.m, v) {
					root = v
					break
				}
			}
		}
		if root < 0 {
			continue // single machine node with no edges
		}
		if seen[root] {
			continue
		}
		// BFS from the root, keeping class→machine edges only.
		queue := []int{root}
		seen[root] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range g.adj[v] {
				if seen[w] {
					continue
				}
				seen[w] = true
				if isClassNode(g.m, v) {
					// class v → machine w: kept.
					kept[[2]int{machineOfNode(g.m, w), classOfNode(g.m, v)}] = true
				}
				queue = append(queue, w)
			}
		}
	}
	return kept
}
