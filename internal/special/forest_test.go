package special

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// buildXbar creates a fractional matrix with edges at the given (machine,
// class) pairs, each at value 0.5.
func buildXbar(m, k int, edges [][2]int) [][]float64 {
	xb := make([][]float64, m)
	for i := range xb {
		xb[i] = make([]float64, k)
	}
	for _, e := range edges {
		xb[e[0]][e[1]] = 0.5
	}
	return xb
}

func TestFindCycleOnTree(t *testing.T) {
	// Path: class0 - machine0 - class1 (no cycle).
	g := newSupportGraph(2, 2, buildXbar(2, 2, [][2]int{{0, 0}, {0, 1}}))
	comps := g.components()
	if len(comps) != 1 {
		t.Fatalf("components = %d, want 1", len(comps))
	}
	if cyc := g.findCycle(comps[0]); cyc != nil {
		t.Errorf("found cycle %v in a tree", cyc)
	}
}

func TestFindCycleOnFourCycle(t *testing.T) {
	// Cycle: class0 - machine0 - class1 - machine1 - class0.
	g := newSupportGraph(2, 2, buildXbar(2, 2, [][2]int{{0, 0}, {0, 1}, {1, 1}, {1, 0}}))
	comps := g.components()
	cyc := g.findCycle(comps[0])
	if len(cyc) != 4 {
		t.Fatalf("cycle length = %d, want 4 (%v)", len(cyc), cyc)
	}
}

func TestBreakCyclesYieldsForest(t *testing.T) {
	g := newSupportGraph(2, 2, buildXbar(2, 2, [][2]int{{0, 0}, {0, 1}, {1, 1}, {1, 0}}))
	roots := g.breakCycles()
	if len(roots) == 0 {
		t.Error("no cycle classes recorded")
	}
	for _, comp := range g.components() {
		if cyc := g.findCycle(comp); cyc != nil {
			t.Errorf("cycle %v remains after breakCycles", cyc)
		}
	}
}

// Lemma 3.8 property check on random *pseudotree* graphs (the structure
// extreme LP solutions guarantee): after breakCycles + orientAndPrune,
// (1) every machine appears in at most one kept pair, and (2) every class
// keeps at least one of its fractional machines, i.e. loses at most one
// (classes have degree 2 in the construction).
func TestLemma38PropertiesOnRandomGraphs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// One component with exactly one cycle of length 2L, plus pendant
		// classes each hooked to one existing machine and one fresh leaf
		// machine (no new cycles). Every class has degree exactly 2.
		L := 2 + rng.Intn(3)
		k := L + rng.Intn(4)
		mCount := L
		edges := [][2]int{}
		for c := 0; c < L; c++ {
			edges = append(edges, [2]int{c, c}, [2]int{(c + 1) % L, c})
		}
		for c := L; c < k; c++ {
			edges = append(edges, [2]int{rng.Intn(mCount), c})
			edges = append(edges, [2]int{mCount, c})
			mCount++
		}
		m := mCount
		xb := buildXbar(m, k, edges)
		g := newSupportGraph(m, k, xb)
		roots := g.breakCycles()
		for _, comp := range g.components() {
			if g.findCycle(comp) != nil {
				return false // breakCycles left a cycle
			}
		}
		kept := g.orientAndPrune(roots)
		// Property 1: machine in ≤ 1 kept pair.
		perMachine := map[int]int{}
		for e := range kept {
			perMachine[e[0]]++
		}
		for _, c := range perMachine {
			if c > 1 {
				return false
			}
		}
		// Property 2: every class keeps ≥ 1 edge (degree-2 classes lose
		// at most one fractional machine).
		keptPerClass := map[int]int{}
		for e := range kept {
			keptPerClass[e[1]]++
		}
		for c := 0; c < k; c++ {
			if keptPerClass[c] == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestOrientAndPruneKeepsClassToMachineOnly(t *testing.T) {
	// Star: class0 fractional on machines 0,1,2.
	g := newSupportGraph(3, 1, buildXbar(3, 1, [][2]int{{0, 0}, {1, 0}, {2, 0}}))
	kept := g.orientAndPrune(nil)
	if len(kept) != 3 {
		t.Errorf("kept %d edges, want 3 (root keeps all children)", len(kept))
	}
	for e := range kept {
		if e[1] != 0 {
			t.Errorf("kept edge %v references unknown class", e)
		}
	}
}
