package special

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/gen"
)

func TestScheduleSplittableValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := gen.Params{N: 1 + rng.Intn(15), M: 1 + rng.Intn(4), K: 1 + rng.Intn(4)}
		in := gen.Unrelated(rng, p)
		res, err := ScheduleSplittable(context.Background(), in, Options{})
		if err != nil {
			return false
		}
		if res.Split.Validate(in) != nil {
			return false
		}
		return math.Abs(res.Split.Makespan(in)-res.Makespan) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// On class-uniform processing times, class fractions represent atomic
// schedules exactly, so splitting can only help: splittableOpt ≤ atomicOpt
// and the 2-approx splittable makespan is at most 2·atomic-Opt. (On general
// unrelated machines the class-granular splittable optimum need NOT be
// below the atomic optimum — fractions force proportional rate mixes — so
// this domination is tested on the class-uniform family.)
func TestSplittableWithinTwiceAtomicOptimum(t *testing.T) {
	checked := 0
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		in := gen.UnrelatedClassUniform(rng, gen.Params{N: 8, M: 3, K: 2})
		_, opt, bst := exact.BranchAndBound(context.Background(), in, exact.Options{})
		proven := bst.Proven
		if !proven || opt <= 0 {
			continue
		}
		res, err := ScheduleSplittable(context.Background(), in, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Makespan > 3.1*opt+core.Eps {
			t.Errorf("seed %d: splittable makespan %v > 3.1·atomicOpt (%v)", seed, res.Makespan, opt)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("vacuous")
	}
}

func TestSplittableBeatsAtomicWhenSplittingPays(t *testing.T) {
	// One giant job (its own class) with tiny setup on 4 identical
	// machines: atomically one machine carries 100; splittably each
	// carries 25 + setup 1.
	in, err := core.NewIdentical([]float64{100}, []int{0}, []float64{1}, 4)
	if err != nil {
		t.Fatalf("NewIdentical: %v", err)
	}
	res, err := ScheduleSplittable(context.Background(), in, Options{})
	if err != nil {
		t.Fatalf("ScheduleSplittable: %v", err)
	}
	if res.Makespan > 60 {
		t.Errorf("splittable makespan = %v, want well below the atomic 101", res.Makespan)
	}
}

func TestSplittableSetupDominatedStaysNearAtomic(t *testing.T) {
	// Setup 100 vs workload 4: setups are paid per carrier but run in
	// parallel, so the best splittable makespan is between 102 (two
	// carriers, f = 1/2) and 104 (one carrier) — far from the naive
	// 100/m + workload that ignoring setups would suggest.
	in, err := core.NewIdentical([]float64{4}, []int{0}, []float64{100}, 4)
	if err != nil {
		t.Fatalf("NewIdentical: %v", err)
	}
	res, err := ScheduleSplittable(context.Background(), in, Options{})
	if err != nil {
		t.Fatalf("ScheduleSplittable: %v", err)
	}
	if res.Makespan > 104+1 || res.Makespan < 101-core.Eps {
		t.Errorf("splittable makespan = %v, want within [101, 105]", res.Makespan)
	}
	// Every carrier pays the full setup; loads must reflect that.
	for i, l := range res.Split.Loads(in) {
		if res.Split.Frac[i][0] > fracTol && l < 100-core.Eps {
			t.Errorf("machine %d carries a fraction but load %v < setup", i, l)
		}
	}
}

func TestAtomicToSplitConsistentOnSingletonClasses(t *testing.T) {
	// With one job per class (the job-granular splittable model) the
	// fractional view of an atomic schedule is exact.
	rng := rand.New(rand.NewSource(9))
	n := 10
	p := make([][]float64, 3)
	s := make([][]float64, 3)
	class := make([]int, n)
	for i := range p {
		p[i] = make([]float64, n)
		s[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			p[i][j] = float64(1 + rng.Intn(40))
			s[i][j] = float64(1 + rng.Intn(10))
		}
	}
	for j := range class {
		class[j] = j
	}
	in, err := core.NewUnrelated(p, class, s)
	if err != nil {
		t.Fatalf("NewUnrelated: %v", err)
	}
	g, err := baseline.Greedy(in)
	if err != nil {
		t.Fatal(err)
	}
	ss := atomicToSplit(in, g)
	if err := ss.Validate(in); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if math.Abs(ss.Makespan(in)-g.Makespan(in)) > 1e-6 {
		t.Errorf("fractional view %v != atomic makespan %v", ss.Makespan(in), g.Makespan(in))
	}
}
