package special

import (
	"context"
	"fmt"
	"math"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dual"
)

// The splittable model of Correa et al. [5] — the system whose LP the paper
// adopts for Section 3.3: the workload of a class may be split arbitrarily
// across machines (parts may even run in parallel), but every machine
// processing a positive fraction of class k pays the full setup s_ik.
// Solving LP-RelaxedRA and applying the pseudoforest rounding with the
// Section 3.3.2-style proportional redistribution (whole class to i− when
// x̄_{i−k} > 1/2, else spread i−'s share over the kept machines) — and
// *without* the final integral job fill, since fractions are the solution —
// yields a constant-factor approximation on unrelated machines. ([5] obtain
// 1+φ ≈ 2.618 with a sharper analysis of the same LP; we inherit the
// paper's ≤ 3 constant and measure much better ratios in practice, see
// experiment E14.) The plain 3.3.1 move is NOT sound here: it shifts a
// workload share between machines with different rates.
//
// On class-uniform processing times the atomic problem upper-bounds the
// splittable one, so comparing the two quantifies the value of splitting
// against the extra setups it costs (the trade-off studied in [6]).

// SplitSchedule is a fractional assignment: Frac[i][k] is the fraction of
// class k's workload processed on machine i (Σ_i Frac[i][k] = 1 for every
// class with jobs).
type SplitSchedule struct {
	Frac [][]float64
}

// Loads returns the per-machine loads: fractional processing plus one full
// setup for every class with a positive fraction.
func (ss *SplitSchedule) Loads(in *core.Instance) []float64 {
	work := in.ClassWork()
	loads := make([]float64, in.M)
	for i := 0; i < in.M; i++ {
		for k := 0; k < in.K; k++ {
			if f := ss.Frac[i][k]; f > fracTol {
				loads[i] += f*work[i][k] + in.S[i][k]
			}
		}
	}
	return loads
}

// Makespan returns the maximum load.
func (ss *SplitSchedule) Makespan(in *core.Instance) float64 {
	ms := 0.0
	for _, l := range ss.Loads(in) {
		if l > ms {
			ms = l
		}
	}
	return ms
}

// Validate checks that every class with jobs is fully distributed over
// machines where it is eligible.
func (ss *SplitSchedule) Validate(in *core.Instance) error {
	work := in.ClassWork()
	present := make([]bool, in.K)
	for _, k := range in.Class {
		present[k] = true
	}
	for k := 0; k < in.K; k++ {
		if !present[k] {
			continue
		}
		sum := 0.0
		for i := 0; i < in.M; i++ {
			f := ss.Frac[i][k]
			if f < -fracTol || f > 1+fracTol {
				return fmt.Errorf("special: fraction out of range: frac[%d][%d]=%v", i, k, f)
			}
			if f > fracTol && (!core.IsFinite(work[i][k]) || !core.IsFinite(in.S[i][k])) {
				return fmt.Errorf("special: class %d fractionally placed on ineligible machine %d", k, i)
			}
			sum += f
		}
		if math.Abs(sum-1) > 1e-6 {
			return fmt.Errorf("special: class %d distributed to %v, want 1", k, sum)
		}
	}
	return nil
}

// SplitResult is the outcome of the splittable scheduler.
type SplitResult struct {
	Split      *SplitSchedule
	Makespan   float64
	LowerBound float64
}

// ScheduleSplittable computes a constant-factor approximation for the
// splittable model: dual approximation over LP-RelaxedRA with the
// pseudoforest rounding of Section 3.3.2, stopping before the integral job
// fill (fractions are the solution). Classes act as the splittable units;
// to split at job granularity, put each job in its own class.
func ScheduleSplittable(ctx context.Context, in *core.Instance, opt Options) (SplitResult, error) {
	opt = opt.normalize()
	// Atomic greedy is a feasible splittable schedule: its upper bound
	// seeds the search.
	greedy, err := baseline.Greedy(in)
	if err != nil {
		return SplitResult{}, err
	}
	ub := greedy.Makespan(in)
	lb := splitVolumeLowerBound(in)
	var best *SplitSchedule
	bestMs := math.Inf(1)
	var solveErr error
	out := dual.Search(ctx, in, lb, ub, opt.Precision, nil, func(T float64) (*core.Schedule, bool) {
		r, err := solveRelaxed(in, T, func(i, k int) bool { return true })
		if err != nil {
			solveErr = err
			return nil, true
		}
		if r == nil {
			return nil, false
		}
		ss := roundSplittable(in, r)
		if ms := ss.Makespan(in); ms < bestMs {
			best, bestMs = ss, ms
		}
		return nil, true
	})
	if solveErr != nil {
		return SplitResult{}, solveErr
	}
	if best == nil {
		// Every guess rejected (possible only for degenerate ranges); fall
		// back to the atomic greedy as fractions.
		best = atomicToSplit(in, greedy)
		bestMs = best.Makespan(in)
	}
	low := out.LowerBound
	if lb > low {
		low = lb
	}
	return SplitResult{Split: best, Makespan: bestMs, LowerBound: low}, nil
}

// roundSplittable applies the Section 3.3.2 pseudoforest rounding (cycle
// break, orientation, then whole-class-to-i− or proportional
// redistribution) and returns the resulting fractions.
func roundSplittable(in *core.Instance, r *relaxed) *SplitSchedule {
	xb := cloneMatrix(r.xbar)
	g := newSupportGraph(in.M, in.K, xb)
	roots := g.breakCycles()
	kept := g.orientAndPrune(roots)
	for k := 0; k < in.K; k++ {
		minus := -1
		var keptMachines []int
		for i := 0; i < in.M; i++ {
			v := xb[i][k]
			if v <= fracTol || v >= 1-fracTol {
				continue
			}
			if kept[[2]int{i, k}] {
				keptMachines = append(keptMachines, i)
			} else {
				minus = i
			}
		}
		if minus < 0 {
			continue
		}
		if xb[minus][k] > 0.5 {
			for i := 0; i < in.M; i++ {
				xb[i][k] = 0
			}
			xb[minus][k] = 1
			continue
		}
		tot := 0.0
		for _, i := range keptMachines {
			tot += xb[i][k]
		}
		if tot <= fracTol {
			continue // nothing to scale onto; keep as is (still valid fractions)
		}
		factor := (tot + xb[minus][k]) / tot
		for _, i := range keptMachines {
			xb[i][k] *= factor
		}
		xb[minus][k] = 0
	}
	return &SplitSchedule{Frac: xb}
}

// atomicToSplit converts an integral schedule into fractions by job count.
// Exact when classes are singletons (the job-granular splittable model);
// for multi-job classes on unrelated machines, class-level fractions
// cannot represent an arbitrary atomic schedule exactly, so this is only
// the defensive fallback of ScheduleSplittable.
func atomicToSplit(in *core.Instance, sched *core.Schedule) *SplitSchedule {
	frac := make([][]float64, in.M)
	for i := range frac {
		frac[i] = make([]float64, in.K)
	}
	perClass := make([]float64, in.K)
	for j, i := range sched.Assign {
		k := in.Class[j]
		frac[i][k]++
		perClass[k]++
	}
	for i := 0; i < in.M; i++ {
		for k := 0; k < in.K; k++ {
			if perClass[k] > 0 {
				frac[i][k] /= perClass[k]
			}
		}
	}
	return &SplitSchedule{Frac: frac}
}

// splitVolumeLowerBound is the volume bound for the splittable model. The
// atomic bound (exact.VolumeLowerBound) is NOT valid here — a split job
// never has to fit on one machine — so the bound is: (a) every class with
// jobs pays its cheapest setup somewhere, and (b) total machine load is at
// least Σ_k (min_i s_ik + min_i p̄_ik), since a convex split of class k
// costs at least its best-rate workload.
func splitVolumeLowerBound(in *core.Instance) float64 {
	work := in.ClassWork()
	present := make([]bool, in.K)
	for _, k := range in.Class {
		present[k] = true
	}
	lb, vol := 0.0, 0.0
	for k := 0; k < in.K; k++ {
		if !present[k] {
			continue
		}
		minS, minW := math.Inf(1), math.Inf(1)
		for i := 0; i < in.M; i++ {
			if in.S[i][k] < minS {
				minS = in.S[i][k]
			}
			if work[i][k] < minW {
				minW = work[i][k]
			}
		}
		if !core.IsFinite(minS) || !core.IsFinite(minW) {
			continue
		}
		if minS > lb {
			lb = minS
		}
		vol += minS + minW
	}
	if v := vol / float64(in.M); v > lb {
		lb = v
	}
	return lb
}
