package special

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/dual"
)

// ScheduleClassUniformPT implements Theorem 3.11: a 3-approximation for
// unrelated machines with class-uniform processing times (for every machine
// i and class k, all jobs of k take the same time p_{ik} on i). The
// instance must satisfy this structure; CheckClassUniformPT reports
// violations.
func ScheduleClassUniformPT(ctx context.Context, in *core.Instance, opt Options) (core.Result, error) {
	if err := CheckClassUniformPT(in); err != nil {
		return core.Result{}, err
	}
	classTime := classTimes(in)
	var mu sync.Mutex
	var solveErr error
	decide := func(T float64) (*core.Schedule, bool) {
		// Constraint (16): a pair (i,k) is admitted only if one job plus
		// the setup fits under T. Valid because all jobs of k cost the
		// same on i: a machine processing any of them within T satisfies
		// s_ik + p_ik ≤ T.
		admit := func(i, k int) bool {
			pt := classTime[i][k]
			if pt < 0 {
				return true // class without jobs: unconstrained
			}
			if !core.IsFinite(pt) {
				return false
			}
			return in.S[i][k]+pt <= T+core.Eps
		}
		r, err := solveRelaxed(in, T, admit)
		if err != nil {
			mu.Lock()
			if solveErr == nil {
				solveErr = err
			}
			mu.Unlock()
			return nil, true
		}
		if r == nil {
			return nil, false
		}
		return roundPT(in, r), true
	}
	res, err := schedule(ctx, in, "class-uniform-pt-3approx", opt, dual.Decider(decide))
	if err == nil && solveErr != nil {
		err = solveErr
	}
	return res, err
}

// CheckClassUniformPT verifies the structural precondition of Theorem 3.11.
func CheckClassUniformPT(in *core.Instance) error {
	if in.Kind != core.Unrelated && in.Kind != core.Identical && in.Kind != core.Uniform {
		return fmt.Errorf("special: need an unrelated-machines instance, got %v", in.Kind)
	}
	byClass := in.JobsOfClass()
	for k, jobs := range byClass {
		if len(jobs) == 0 {
			continue
		}
		for _, j := range jobs[1:] {
			for i := 0; i < in.M; i++ {
				if in.P[i][j] != in.P[i][jobs[0]] {
					return fmt.Errorf("special: class %d does not have class-uniform processing times (jobs %d and %d differ on machine %d)", k, jobs[0], j, i)
				}
			}
		}
	}
	return nil
}

// classTimes returns the per-(machine, class) job processing time, or -1
// for classes without jobs.
func classTimes(in *core.Instance) [][]float64 {
	byClass := in.JobsOfClass()
	out := make([][]float64, in.M)
	for i := range out {
		out[i] = make([]float64, in.K)
		for k := range out[i] {
			if len(byClass[k]) == 0 {
				out[i][k] = -1
			} else {
				out[i][k] = in.P[i][byClass[k][0]]
			}
		}
	}
	return out
}

// roundPT performs the rounding of Section 3.3.2: pseudoforest extraction
// as in 3.3.1, then, per class, either the whole class moves to the dropped
// machine i− (when x̄_{i−k} > 1/2) or i−'s share is redistributed
// proportionally over the kept machines. Greedy slot filling finishes the
// schedule; the result has makespan at most 3T.
func roundPT(in *core.Instance, r *relaxed) *core.Schedule {
	xb := cloneMatrix(r.xbar)
	g := newSupportGraph(in.M, in.K, xb)
	roots := g.breakCycles()
	kept := g.orientAndPrune(roots)

	for k := 0; k < in.K; k++ {
		minus := -1
		var keptMachines []int
		for i := 0; i < in.M; i++ {
			v := xb[i][k]
			if v <= fracTol || v >= 1-fracTol {
				continue
			}
			if kept[[2]int{i, k}] {
				keptMachines = append(keptMachines, i)
			} else {
				minus = i
			}
		}
		if minus < 0 {
			continue
		}
		if xb[minus][k] > 0.5 {
			// Process the entire class on i−.
			for i := 0; i < in.M; i++ {
				xb[i][k] = 0
			}
			xb[minus][k] = 1
			continue
		}
		// Redistribute i−'s share proportionally over the kept machines
		// (the paper bounds this by doubling; exact proportional scaling
		// preserves Σ_i x̄_ik = 1 and never exceeds the doubling bound).
		tot := 0.0
		for _, i := range keptMachines {
			tot += xb[i][k]
		}
		if tot <= fracTol {
			// Defensive fallback mirroring roundRA: give the share to the
			// largest remaining carrier.
			best, bi := -1.0, -1
			for i := 0; i < in.M; i++ {
				if i != minus && xb[i][k] > best {
					best, bi = xb[i][k], i
				}
			}
			if bi >= 0 {
				xb[bi][k] += xb[minus][k]
				xb[minus][k] = 0
			}
			continue
		}
		factor := (tot + xb[minus][k]) / tot
		for _, i := range keptMachines {
			xb[i][k] *= factor
		}
		xb[minus][k] = 0
	}
	return fillSlots(in, r, xb, nil)
}
