// Package table renders simple ASCII tables for the experiment harness and
// CLI tools.
package table

import (
	"fmt"
	"strings"
)

// Table is a titled grid of string cells with a header row.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	// Notes are free-form lines printed under the table (e.g. the paper
	// claim the table validates).
	Notes []string
}

// New creates a table with the given title and column headers.
func New(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row; values are formatted with %v, floats with %.4g.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}
