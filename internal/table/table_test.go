package table

import (
	"strings"
	"testing"
)

func TestRendering(t *testing.T) {
	tb := New("demo", "name", "value")
	tb.AddRow("alpha", 1.23456)
	tb.AddRow("b", 42)
	tb.AddNote("a note with %d args", 2)
	out := tb.String()
	for _, want := range []string{"== demo ==", "name", "value", "alpha", "1.235", "42", "note: a note with 2 args"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Columns aligned: header and separator lines have equal length.
	lines := strings.Split(out, "\n")
	if len(lines) < 4 {
		t.Fatalf("too few lines: %q", out)
	}
	if len(lines[1]) != len(lines[2]) {
		t.Errorf("header %q and separator %q misaligned", lines[1], lines[2])
	}
}

func TestFloatFormatting(t *testing.T) {
	tb := New("", "x")
	tb.AddRow(3.0)
	if !strings.Contains(tb.String(), "3") {
		t.Errorf("float row lost: %s", tb.String())
	}
}

func TestEmptyTable(t *testing.T) {
	tb := New("empty", "a")
	out := tb.String()
	if !strings.Contains(out, "empty") || !strings.Contains(out, "a") {
		t.Errorf("empty table broken: %q", out)
	}
}
