package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
)

// StreamParams controls delta-sequence generation (DeltaStream). Zero
// weights select the default event mix; zero size ranges inherit the
// Params defaults (jobs in [1,100], setups in [1,50]).
type StreamParams struct {
	// Events is the number of deltas to generate.
	Events int
	// ArriveW, DepartW, ResizeW, AddW, RemoveW weight the event mix. All
	// zero selects the default mix 4:2:2:1:1 — arrival-dominated, the
	// typical online-scheduling workload shape.
	ArriveW, DepartW, ResizeW, AddW, RemoveW int
	// MinJob, MaxJob, MinSetup, MaxSetup bound the sizes of arriving or
	// resized jobs and of new machines' rows. Defaults as Params.
	MinJob, MaxJob, MinSetup, MaxSetup int
}

func (p StreamParams) normalize() StreamParams {
	if p.ArriveW == 0 && p.DepartW == 0 && p.ResizeW == 0 && p.AddW == 0 && p.RemoveW == 0 {
		p.ArriveW, p.DepartW, p.ResizeW, p.AddW, p.RemoveW = 4, 2, 2, 1, 1
	}
	if p.MinJob == 0 && p.MaxJob == 0 {
		p.MinJob, p.MaxJob = 1, 100
	}
	if p.MinSetup == 0 && p.MaxSetup == 0 {
		p.MinSetup, p.MaxSetup = 1, 50
	}
	return p
}

// DeltaStream generates a reproducible sequence of p.Events deltas, each
// valid in sequence starting from in (every delta applies cleanly to the
// instance produced by its predecessors). The input instance is not
// mutated. Deltas that would leave the instance degenerate — removing the
// last machine, departing below one job, stranding a job with no eligible
// machine — are never emitted; when the weighted mix draws an inapplicable
// kind, the draw is retried, so the mix is a bias, not a guarantee.
func DeltaStream(rng *rand.Rand, in *core.Instance, p StreamParams) []core.Delta {
	p = p.normalize()
	if p.Events < 0 {
		panic(fmt.Sprintf("gen: DeltaStream with negative Events %d", p.Events))
	}
	deltas := make([]core.Delta, 0, p.Events)
	cur := in
	total := p.ArriveW + p.DepartW + p.ResizeW + p.AddW + p.RemoveW
	for len(deltas) < p.Events {
		d, ok := drawDelta(rng, cur, p, total)
		if !ok {
			continue
		}
		next, err := d.Apply(cur)
		if err != nil {
			// The draw guards cover the common degeneracies; Apply is the
			// final arbiter (e.g. a removal stranding a restricted job).
			continue
		}
		deltas = append(deltas, d)
		cur = next
	}
	return deltas
}

func drawDelta(rng *rand.Rand, in *core.Instance, p StreamParams, total int) (core.Delta, bool) {
	w := rng.Intn(total)
	switch {
	case w < p.ArriveW:
		return drawArrive(rng, in, p), true
	case w < p.ArriveW+p.DepartW:
		if in.N <= 1 {
			return core.Delta{}, false
		}
		return core.DepartJob(rng.Intn(in.N)), true
	case w < p.ArriveW+p.DepartW+p.ResizeW:
		return drawResize(rng, in, p), true
	case w < p.ArriveW+p.DepartW+p.ResizeW+p.AddW:
		return drawMachineAdd(rng, in, p), true
	default:
		if in.M <= 1 {
			return core.Delta{}, false
		}
		return core.RemoveMachine(rng.Intn(in.M)), true
	}
}

func drawArrive(rng *rand.Rand, in *core.Instance, p StreamParams) core.Delta {
	class := rng.Intn(in.K)
	if in.Kind == core.Unrelated {
		proc := make([]float64, in.M)
		for i := range proc {
			proc[i] = intIn(rng, p.MinJob, p.MaxJob)
		}
		return core.ArriveJobUnrelated(class, proc)
	}
	d := core.ArriveJob(class, intIn(rng, p.MinJob, p.MaxJob))
	if in.Kind == core.RestrictedAssignment {
		for i := 0; i < in.M; i++ {
			if rng.Float64() < 0.6 {
				d.Eligible = append(d.Eligible, i)
			}
		}
		if len(d.Eligible) == 0 {
			d.Eligible = []int{rng.Intn(in.M)}
		}
	}
	return d
}

func drawResize(rng *rand.Rand, in *core.Instance, p StreamParams) core.Delta {
	j := rng.Intn(in.N)
	if in.Kind == core.Unrelated {
		d := core.Delta{Kind: core.DeltaJobResize, Job: j}
		d.Proc = make([]float64, in.M)
		for i := range d.Proc {
			d.Proc[i] = intIn(rng, p.MinJob, p.MaxJob)
		}
		return d
	}
	return core.ResizeJob(j, intIn(rng, p.MinJob, p.MaxJob))
}

func drawMachineAdd(rng *rand.Rand, in *core.Instance, p StreamParams) core.Delta {
	d := core.Delta{Kind: core.DeltaMachineAdd}
	switch in.Kind {
	case core.Uniform:
		d.Speed = intIn(rng, 1, 4)
	case core.Unrelated:
		d.Proc = make([]float64, in.N)
		for j := range d.Proc {
			d.Proc[j] = intIn(rng, p.MinJob, p.MaxJob)
		}
		d.Setup = make([]float64, in.K)
		for k := range d.Setup {
			d.Setup[k] = intIn(rng, p.MinSetup, p.MaxSetup)
		}
	case core.RestrictedAssignment:
		for j := 0; j < in.N; j++ {
			if rng.Float64() < 0.5 {
				d.Eligible = append(d.Eligible, j)
			}
		}
		if len(d.Eligible) == 0 {
			d.Eligible = []int{rng.Intn(in.N)}
		}
	}
	return d
}
