// Package gen provides seeded random instance generators for every machine
// environment and for the structured special cases of Section 3.3 of the
// paper. The paper itself contains no workloads (it is a theory paper), so
// these generators are designed to cover the regimes its analysis
// distinguishes: setup-dominated vs job-dominated loads, few large vs many
// small classes, and homogeneous vs highly skewed machine speeds.
//
// All generators take an explicit *rand.Rand so experiments are reproducible.
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
)

// Params controls the shape of generated instances. Zero fields are replaced
// by the documented defaults in normalize.
type Params struct {
	// N, M, K are the number of jobs, machines and setup classes.
	N, M, K int
	// MinJob and MaxJob bound the (integral) job sizes. Defaults: 1, 100.
	MinJob, MaxJob int
	// MinSetup and MaxSetup bound the (integral) setup sizes.
	// Defaults: 1, 50.
	MinSetup, MaxSetup int
	// SpeedMax, for uniform instances, is the maximum machine speed; speeds
	// are drawn uniformly from {1, …, SpeedMax}. Default: 4.
	SpeedMax int
	// EligibleProb, for restricted instances, is the probability that a
	// machine is eligible (per job or per class); at least one machine is
	// always made eligible. Default: 0.5.
	EligibleProb float64
}

func (p Params) normalize() Params {
	if p.MinJob == 0 && p.MaxJob == 0 {
		p.MinJob, p.MaxJob = 1, 100
	}
	if p.MinSetup == 0 && p.MaxSetup == 0 {
		p.MinSetup, p.MaxSetup = 1, 50
	}
	if p.SpeedMax == 0 {
		p.SpeedMax = 4
	}
	if p.EligibleProb == 0 {
		p.EligibleProb = 0.5
	}
	if p.K <= 0 {
		p.K = 1
	}
	return p
}

func (p Params) check() {
	if p.N <= 0 || p.M <= 0 {
		panic(fmt.Sprintf("gen: need positive N and M, got N=%d M=%d", p.N, p.M))
	}
	if p.MinJob < 0 || p.MaxJob < p.MinJob || p.MinSetup < 0 || p.MaxSetup < p.MinSetup {
		panic(fmt.Sprintf("gen: bad size ranges %+v", p))
	}
}

func intIn(rng *rand.Rand, lo, hi int) float64 {
	if hi <= lo {
		return float64(lo)
	}
	return float64(lo + rng.Intn(hi-lo+1))
}

func (p Params) jobs(rng *rand.Rand) ([]float64, []int, []float64) {
	sizes := make([]float64, p.N)
	class := make([]int, p.N)
	for j := range sizes {
		sizes[j] = intIn(rng, p.MinJob, p.MaxJob)
		class[j] = rng.Intn(p.K)
	}
	setups := make([]float64, p.K)
	for k := range setups {
		setups[k] = intIn(rng, p.MinSetup, p.MaxSetup)
	}
	return sizes, class, setups
}

// Identical generates an identical-machines instance.
func Identical(rng *rand.Rand, p Params) *core.Instance {
	p = p.normalize()
	p.check()
	sizes, class, setups := p.jobs(rng)
	in, err := core.NewIdentical(sizes, class, setups, p.M)
	if err != nil {
		panic(fmt.Sprintf("gen: %v", err)) // generator bug, not input error
	}
	return in
}

// Uniform generates a uniformly-related-machines instance with integral
// speeds in {1, …, SpeedMax}.
func Uniform(rng *rand.Rand, p Params) *core.Instance {
	p = p.normalize()
	p.check()
	sizes, class, setups := p.jobs(rng)
	speeds := make([]float64, p.M)
	for i := range speeds {
		speeds[i] = intIn(rng, 1, p.SpeedMax)
	}
	in, err := core.NewUniform(sizes, class, setups, speeds)
	if err != nil {
		panic(fmt.Sprintf("gen: %v", err))
	}
	return in
}

// Unrelated generates an unrelated-machines instance with independent
// uniform processing times per job-machine pair and setup times per
// class-machine pair.
func Unrelated(rng *rand.Rand, p Params) *core.Instance {
	p = p.normalize()
	p.check()
	_, class, _ := p.jobs(rng)
	pm := make([][]float64, p.M)
	sm := make([][]float64, p.M)
	for i := 0; i < p.M; i++ {
		pm[i] = make([]float64, p.N)
		sm[i] = make([]float64, p.K)
		for j := 0; j < p.N; j++ {
			pm[i][j] = intIn(rng, p.MinJob, p.MaxJob)
		}
		for k := 0; k < p.K; k++ {
			sm[i][k] = intIn(rng, p.MinSetup, p.MaxSetup)
		}
	}
	in, err := core.NewUnrelated(pm, class, sm)
	if err != nil {
		panic(fmt.Sprintf("gen: %v", err))
	}
	return in
}

// Restricted generates a restricted-assignment instance with per-job
// eligibility sets drawn independently with probability EligibleProb.
func Restricted(rng *rand.Rand, p Params) *core.Instance {
	p = p.normalize()
	p.check()
	sizes, class, setups := p.jobs(rng)
	elig := make([][]int, p.N)
	for j := range elig {
		for i := 0; i < p.M; i++ {
			if rng.Float64() < p.EligibleProb {
				elig[j] = append(elig[j], i)
			}
		}
		if len(elig[j]) == 0 {
			elig[j] = []int{rng.Intn(p.M)}
		}
	}
	in, err := core.NewRestricted(sizes, class, setups, p.M, elig)
	if err != nil {
		panic(fmt.Sprintf("gen: %v", err))
	}
	return in
}

// RestrictedClassUniform generates the special case of Section 3.3.1: a
// restricted-assignment instance where all jobs of a class share the same
// eligibility set M_k.
func RestrictedClassUniform(rng *rand.Rand, p Params) *core.Instance {
	p = p.normalize()
	p.check()
	sizes, class, setups := p.jobs(rng)
	classElig := make([][]int, p.K)
	for k := range classElig {
		for i := 0; i < p.M; i++ {
			if rng.Float64() < p.EligibleProb {
				classElig[k] = append(classElig[k], i)
			}
		}
		if len(classElig[k]) == 0 {
			classElig[k] = []int{rng.Intn(p.M)}
		}
	}
	elig := make([][]int, p.N)
	for j := range elig {
		elig[j] = classElig[class[j]]
	}
	in, err := core.NewRestricted(sizes, class, setups, p.M, elig)
	if err != nil {
		panic(fmt.Sprintf("gen: %v", err))
	}
	return in
}

// UnrelatedClassUniform generates the special case of Section 3.3.2: an
// unrelated-machines instance where all jobs of a class have the same
// processing time on any given machine (p_{ij} depends only on (i, class j)).
func UnrelatedClassUniform(rng *rand.Rand, p Params) *core.Instance {
	p = p.normalize()
	p.check()
	_, class, _ := p.jobs(rng)
	classTime := make([][]float64, p.M) // classTime[i][k]
	sm := make([][]float64, p.M)
	for i := 0; i < p.M; i++ {
		classTime[i] = make([]float64, p.K)
		sm[i] = make([]float64, p.K)
		for k := 0; k < p.K; k++ {
			classTime[i][k] = intIn(rng, p.MinJob, p.MaxJob)
			sm[i][k] = intIn(rng, p.MinSetup, p.MaxSetup)
		}
	}
	pm := make([][]float64, p.M)
	for i := 0; i < p.M; i++ {
		pm[i] = make([]float64, p.N)
		for j := 0; j < p.N; j++ {
			pm[i][j] = classTime[i][class[j]]
		}
	}
	in, err := core.NewUnrelated(pm, class, sm)
	if err != nil {
		panic(fmt.Sprintf("gen: %v", err))
	}
	return in
}

// SetupHeavy returns Params biased toward large setup times relative to job
// sizes (the regime where ignoring classes is most costly).
func SetupHeavy(n, m, k int) Params {
	return Params{N: n, M: m, K: k, MinJob: 1, MaxJob: 20, MinSetup: 30, MaxSetup: 100}
}

// JobHeavy returns Params biased toward large jobs and small setups (the
// regime closest to classical makespan scheduling).
func JobHeavy(n, m, k int) Params {
	return Params{N: n, M: m, K: k, MinJob: 30, MaxJob: 100, MinSetup: 1, MaxSetup: 10}
}
