package gen

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func TestGeneratorsProduceValidInstances(t *testing.T) {
	kinds := []struct {
		name string
		f    func(*rand.Rand, Params) *core.Instance
		kind core.Kind
	}{
		{"identical", Identical, core.Identical},
		{"uniform", Uniform, core.Uniform},
		{"unrelated", Unrelated, core.Unrelated},
		{"restricted", Restricted, core.RestrictedAssignment},
		{"restrictedClassUniform", RestrictedClassUniform, core.RestrictedAssignment},
		{"unrelatedClassUniform", UnrelatedClassUniform, core.Unrelated},
	}
	for _, k := range kinds {
		t.Run(k.name, func(t *testing.T) {
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				p := Params{N: 1 + rng.Intn(20), M: 1 + rng.Intn(5), K: 1 + rng.Intn(4)}
				in := k.f(rng, p)
				if in.Kind != k.kind {
					return false
				}
				if in.N != p.N || in.M != p.M || in.K != p.K {
					return false
				}
				return in.Validate() == nil
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestDeterminism(t *testing.T) {
	a := Uniform(rand.New(rand.NewSource(7)), Params{N: 10, M: 3, K: 2})
	b := Uniform(rand.New(rand.NewSource(7)), Params{N: 10, M: 3, K: 2})
	for j := range a.JobSize {
		if a.JobSize[j] != b.JobSize[j] || a.Class[j] != b.Class[j] {
			t.Fatal("same seed produced different instances")
		}
	}
	for i := range a.Speed {
		if a.Speed[i] != b.Speed[i] {
			t.Fatal("same seed produced different speeds")
		}
	}
}

func TestRestrictedClassUniformSharedEligibility(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := RestrictedClassUniform(rng, Params{N: 30, M: 5, K: 3})
	byClass := in.JobsOfClass()
	for k, jobs := range byClass {
		for _, j := range jobs[1:] {
			for i := 0; i < in.M; i++ {
				if in.Eligible[j][i] != in.Eligible[jobs[0]][i] {
					t.Fatalf("class %d jobs %d and %d differ in eligibility on machine %d", k, jobs[0], j, i)
				}
			}
		}
	}
}

func TestUnrelatedClassUniformSharedTimes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	in := UnrelatedClassUniform(rng, Params{N: 25, M: 4, K: 3})
	byClass := in.JobsOfClass()
	for _, jobs := range byClass {
		for _, j := range jobs[1:] {
			for i := 0; i < in.M; i++ {
				if in.P[i][j] != in.P[i][jobs[0]] {
					t.Fatalf("jobs %d and %d of the same class differ on machine %d", jobs[0], j, i)
				}
			}
		}
	}
}

func TestSizeRangesRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := Params{N: 50, M: 3, K: 2, MinJob: 10, MaxJob: 20, MinSetup: 5, MaxSetup: 7}
	in := Identical(rng, p)
	for j, s := range in.JobSize {
		if s < 10 || s > 20 {
			t.Errorf("job %d size %v outside [10,20]", j, s)
		}
	}
	for k, s := range in.SetupSize {
		if s < 5 || s > 7 {
			t.Errorf("class %d setup %v outside [5,7]", k, s)
		}
	}
}

func TestPresets(t *testing.T) {
	sh := SetupHeavy(10, 2, 3)
	if sh.MinSetup <= sh.MaxJob {
		t.Errorf("SetupHeavy should have setups dominating jobs: %+v", sh)
	}
	jh := JobHeavy(10, 2, 3)
	if jh.MinJob <= jh.MaxSetup {
		t.Errorf("JobHeavy should have jobs dominating setups: %+v", jh)
	}
}

func TestParamsPanics(t *testing.T) {
	for name, p := range map[string]Params{
		"zero jobs":     {N: 0, M: 1},
		"zero machines": {N: 1, M: 0},
		"bad job range": {N: 1, M: 1, MinJob: 5, MaxJob: 2},
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("Params %+v did not panic", p)
				}
			}()
			Identical(rand.New(rand.NewSource(1)), p)
		})
	}
}
