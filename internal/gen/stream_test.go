package gen

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/core"
)

// TestDeltaStreamValidInSequence: every generated delta applies cleanly to
// the instance produced by its predecessors, for every kind.
func TestDeltaStreamValidInSequence(t *testing.T) {
	makers := map[string]func(*rand.Rand) *core.Instance{
		"identical":  func(rng *rand.Rand) *core.Instance { return Identical(rng, Params{N: 10, M: 3, K: 2}) },
		"uniform":    func(rng *rand.Rand) *core.Instance { return Uniform(rng, Params{N: 10, M: 3, K: 2}) },
		"restricted": func(rng *rand.Rand) *core.Instance { return Restricted(rng, Params{N: 10, M: 3, K: 2}) },
		"unrelated":  func(rng *rand.Rand) *core.Instance { return Unrelated(rng, Params{N: 10, M: 3, K: 2}) },
	}
	for name, mk := range makers {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(41))
			in := mk(rng)
			deltas := DeltaStream(rng, in, StreamParams{Events: 40})
			if len(deltas) != 40 {
				t.Fatalf("got %d deltas, want 40", len(deltas))
			}
			cur := in
			for i, d := range deltas {
				next, err := d.Apply(cur)
				if err != nil {
					t.Fatalf("delta %d (%v) does not apply: %v", i, d, err)
				}
				if err := next.Validate(); err != nil {
					t.Fatalf("delta %d (%v) produced invalid instance: %v", i, d, err)
				}
				cur = next
			}
			if in.N != 10 || in.M != 3 {
				t.Fatal("DeltaStream mutated its input instance")
			}
		})
	}
}

// TestDeltaStreamDeterministic: the same seed yields the byte-identical
// serialized stream (the reproducibility contract of `instgen -stream`).
func TestDeltaStreamDeterministic(t *testing.T) {
	emit := func() []byte {
		rng := rand.New(rand.NewSource(7))
		in := Unrelated(rng, Params{N: 12, M: 4, K: 3})
		deltas := DeltaStream(rng, in, StreamParams{Events: 25})
		var buf bytes.Buffer
		if err := core.WriteDeltaStream(&buf, in, deltas); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := emit(), emit()
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different serialized streams")
	}

	// And the round trip re-reads to an applying sequence.
	in, deltas, err := core.ReadDeltaStream(bytes.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	cur := in
	for i, d := range deltas {
		next, aerr := d.Apply(cur)
		if aerr != nil {
			t.Fatalf("round-tripped delta %d: %v", i, aerr)
		}
		cur = next
	}
}

// TestDeltaStreamMixBias: with a single-kind weight the stream is all that
// kind (when applicable).
func TestDeltaStreamMixBias(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	in := Unrelated(rng, Params{N: 8, M: 3, K: 2})
	deltas := DeltaStream(rng, in, StreamParams{Events: 10, ArriveW: 1})
	for i, d := range deltas {
		if d.Kind != core.DeltaJobArrive {
			t.Fatalf("delta %d kind = %v, want arrive-only stream", i, d.Kind)
		}
	}
}
