package core

// TokenBudget is the cooperative concurrency budget solvers draw extra
// parallelism from: a weighted semaphore owned by the engine (its governor)
// and shared by every compute lane in the process — batch dispatch,
// portfolio member launch, speculative search width. One token stands for
// one goroutine allowed to burn a core.
//
// The cooperative contract that makes a shared budget deadlock-free:
//
//   - every solve is admitted with one guaranteed token (acquired blocking
//     by the engine before the solver runs, released when the solve ends),
//     so a running solver always owns at least one lane;
//   - everything beyond that lane is acquire-or-degrade: TryAcquire never
//     blocks, and a caller granted fewer tokens than it asked for runs the
//     same work at lower width (a portfolio races its members sequentially,
//     a speculative search evaluates its round on fewer workers) instead of
//     waiting. A solver holding its guaranteed token therefore never sleeps
//     on the budget, and budget=1 degrades every layer to sequential
//     execution rather than deadlock.
//
// Implementations must be safe for concurrent use; the engine's Governor is
// the canonical one. A nil TokenBudget in an options struct means
// ungoverned: callers fall back to their local clamps.
type TokenBudget interface {
	// Cap returns the total token budget (≥ 1).
	Cap() int
	// TryAcquire grabs up to n extra tokens without blocking and returns
	// how many were granted (0..n). A grant short of n counts as a
	// degradation in the budget's stats.
	TryAcquire(n int) int
	// Release returns n previously acquired tokens.
	Release(n int)
}
