package core

import (
	"bytes"
	"math/rand"
	"testing"
)

// randInstance builds a random valid instance of the given kind.
func randInstance(t *testing.T, rng *rand.Rand, kind Kind, n, m, k int) *Instance {
	t.Helper()
	p := make([]float64, n)
	class := make([]int, n)
	for j := range p {
		p[j] = 1 + float64(rng.Intn(99))
		class[j] = rng.Intn(k)
	}
	s := make([]float64, k)
	for c := range s {
		s[c] = 1 + float64(rng.Intn(49))
	}
	switch kind {
	case Identical:
		in, err := NewIdentical(p, class, s, m)
		if err != nil {
			t.Fatalf("NewIdentical: %v", err)
		}
		return in
	case Uniform:
		v := make([]float64, m)
		for i := range v {
			v[i] = 1 + rng.Float64()*3
		}
		in, err := NewUniform(p, class, s, v)
		if err != nil {
			t.Fatalf("NewUniform: %v", err)
		}
		return in
	case RestrictedAssignment:
		elig := make([][]int, n)
		for j := range elig {
			for i := 0; i < m; i++ {
				if rng.Float64() < 0.6 {
					elig[j] = append(elig[j], i)
				}
			}
			if len(elig[j]) == 0 {
				elig[j] = []int{rng.Intn(m)}
			}
		}
		in, err := NewRestricted(p, class, s, m, elig)
		if err != nil {
			t.Fatalf("NewRestricted: %v", err)
		}
		return in
	case Unrelated:
		pm := make([][]float64, m)
		sm := make([][]float64, m)
		for i := 0; i < m; i++ {
			pm[i] = make([]float64, n)
			sm[i] = make([]float64, k)
			for j := 0; j < n; j++ {
				pm[i][j] = 1 + float64(rng.Intn(99))
			}
			for c := 0; c < k; c++ {
				sm[i][c] = 1 + float64(rng.Intn(49))
			}
		}
		in, err := NewUnrelated(pm, class, sm)
		if err != nil {
			t.Fatalf("NewUnrelated: %v", err)
		}
		return in
	}
	t.Fatalf("unknown kind %v", kind)
	return nil
}

// randDelta draws a delta applicable to in.
func randDelta(rng *rand.Rand, in *Instance) Delta {
	for {
		switch rng.Intn(5) {
		case 0: // arrive
			d := Delta{Kind: DeltaJobArrive, Class: rng.Intn(in.K)}
			if in.Kind == Unrelated {
				d.Proc = make([]float64, in.M)
				for i := range d.Proc {
					d.Proc[i] = 1 + float64(rng.Intn(99))
				}
			} else {
				d.Size = 1 + float64(rng.Intn(99))
				if in.Kind == RestrictedAssignment {
					for i := 0; i < in.M; i++ {
						if rng.Float64() < 0.6 {
							d.Eligible = append(d.Eligible, i)
						}
					}
					if len(d.Eligible) == 0 {
						d.Eligible = []int{rng.Intn(in.M)}
					}
				}
			}
			return d
		case 1: // depart
			if in.N > 1 {
				return DepartJob(rng.Intn(in.N))
			}
		case 2: // resize
			d := Delta{Kind: DeltaJobResize, Job: rng.Intn(in.N)}
			if in.Kind == Unrelated {
				d.Proc = make([]float64, in.M)
				for i := range d.Proc {
					d.Proc[i] = 1 + float64(rng.Intn(99))
				}
			} else {
				d.Size = 1 + float64(rng.Intn(99))
			}
			return d
		case 3: // machine add
			d := Delta{Kind: DeltaMachineAdd}
			switch in.Kind {
			case Uniform:
				d.Speed = 1 + rng.Float64()*3
			case Unrelated:
				d.Proc = make([]float64, in.N)
				for j := range d.Proc {
					d.Proc[j] = 1 + float64(rng.Intn(99))
				}
				d.Setup = make([]float64, in.K)
				for c := range d.Setup {
					d.Setup[c] = 1 + float64(rng.Intn(49))
				}
			case RestrictedAssignment:
				for j := 0; j < in.N; j++ {
					if rng.Float64() < 0.5 {
						d.Eligible = append(d.Eligible, j)
					}
				}
			}
			return d
		case 4: // machine remove
			if in.M > 1 {
				d := RemoveMachine(rng.Intn(in.M))
				if _, err := d.Apply(in); err == nil {
					return d
				}
			}
		}
	}
}

// TestDeltaApplyFingerprintCanonical is the property test of the incremental
// pipeline's keying invariant: applying a delta yields an instance whose
// fingerprint equals that of the same instance rebuilt from scratch through
// the public constructors, for every kind × delta mix.
func TestDeltaApplyFingerprintCanonical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	kinds := []Kind{Identical, Uniform, RestrictedAssignment, Unrelated}
	for _, kind := range kinds {
		in := randInstance(t, rng, kind, 12, 4, 3)
		cur := in
		for step := 0; step < 40; step++ {
			d := randDelta(rng, cur)
			next, err := d.Apply(cur)
			if err != nil {
				t.Fatalf("%v step %d: Apply(%v): %v", kind, step, d, err)
			}
			if err := next.Validate(); err != nil {
				t.Fatalf("%v step %d: Apply(%v) produced invalid instance: %v", kind, step, d, err)
			}
			// Rebuild from the post-delta base data via the constructors and
			// compare fingerprints.
			var rebuilt *Instance
			switch kind {
			case Identical:
				rebuilt, err = NewIdentical(next.JobSize, next.Class, next.SetupSize, next.M)
			case Uniform:
				rebuilt, err = NewUniform(next.JobSize, next.Class, next.SetupSize, next.Speed)
			case RestrictedAssignment:
				rebuilt, err = NewRestricted(next.JobSize, next.Class, next.SetupSize, next.M, eligibleLists(next))
			case Unrelated:
				rebuilt, err = NewUnrelated(next.P, next.Class, next.S)
			}
			if err != nil {
				t.Fatalf("%v step %d: rebuild: %v", kind, step, err)
			}
			if got, want := next.Fingerprint(), rebuilt.Fingerprint(); got != want {
				t.Fatalf("%v step %d: Apply(%v) fingerprint %s != rebuilt %s", kind, step, d, got, want)
			}
			cur = next
		}
	}
}

// TestDeltaPatchSchedule checks that a patched schedule is a feasible
// witness of the post-delta instance whenever Apply succeeds.
func TestDeltaPatchSchedule(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	kinds := []Kind{Identical, Uniform, RestrictedAssignment, Unrelated}
	for _, kind := range kinds {
		cur := randInstance(t, rng, kind, 10, 3, 2)
		// Start from a trivially feasible greedy schedule.
		sched := &Schedule{Assign: make([]int, cur.N)}
		for j := range sched.Assign {
			sched.Assign[j] = -1
			if !placeGreedy(sched, cur, j) {
				t.Fatalf("%v: cannot place job %d", kind, j)
			}
		}
		for step := 0; step < 30; step++ {
			d := randDelta(rng, cur)
			next, err := d.Apply(cur)
			if err != nil {
				t.Fatalf("%v step %d: Apply(%v): %v", kind, step, d, err)
			}
			patched := d.PatchSchedule(sched, cur, next)
			if patched == nil {
				t.Fatalf("%v step %d: PatchSchedule(%v) returned nil", kind, step, d)
			}
			if err := patched.Validate(next); err != nil {
				t.Fatalf("%v step %d: patched schedule invalid after %v: %v", kind, step, d, err)
			}
			if ms := patched.Makespan(next); !IsFinite(ms) {
				t.Fatalf("%v step %d: patched makespan not finite after %v", kind, step, d)
			}
			cur, sched = next, patched
		}
	}
}

// TestDeltaAcceptedCap validates the constructive feasibility lifts: for
// deltas with a finite cap, a schedule witnessing the pre-delta guess lifts
// to a post-delta schedule within the capped guess.
func TestDeltaAcceptedCap(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	in := randInstance(t, rng, Unrelated, 10, 3, 2)
	sched := &Schedule{Assign: make([]int, in.N)}
	for j := range sched.Assign {
		sched.Assign[j] = -1
		if !placeGreedy(sched, in, j) {
			t.Fatalf("cannot place job %d", j)
		}
	}
	accepted := sched.Makespan(in)
	for step := 0; step < 50; step++ {
		d := randDelta(rng, in)
		next, err := d.Apply(in)
		if err != nil {
			t.Fatalf("step %d: Apply(%v): %v", step, d, err)
		}
		cap := d.AcceptedCap(accepted, in, next)
		if d.Kind == DeltaMachineRemove {
			if IsFinite(cap) {
				t.Fatalf("step %d: machine-remove cap should be +Inf, got %v", step, cap)
			}
			continue
		}
		patched := d.PatchSchedule(sched, in, next)
		if patched == nil {
			t.Fatalf("step %d: PatchSchedule(%v) returned nil", step, d)
		}
		// The constructive witness behind the cap: patched makespan must not
		// exceed the lifted guess (greedy placement only does better than
		// the single-machine construction in the proof).
		if ms := patched.Makespan(next); ms > cap+Eps {
			t.Fatalf("step %d: %v patched makespan %v exceeds AcceptedCap %v (accepted %v)", step, d, ms, cap, accepted)
		}
	}
}

// TestDeltaRaisesOn spot-checks the monotonicity classification.
func TestDeltaRaisesOn(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	in := randInstance(t, rng, Identical, 6, 3, 2)
	cases := []struct {
		d    Delta
		want bool
	}{
		{ArriveJob(0, 10), true},
		{RemoveMachine(1), true},
		{ResizeJob(2, in.JobSize[2]+5), true},
		{ResizeJob(2, in.JobSize[2]-0.5), false},
		{DepartJob(0), false},
		{Delta{Kind: DeltaMachineAdd}, false},
	}
	for _, c := range cases {
		if got := c.d.RaisesOn(in); got != c.want {
			t.Fatalf("RaisesOn(%v) = %v, want %v", c.d, got, c.want)
		}
	}
}

// TestDeltaStreamRoundTrip exercises the JSON interchange format.
func TestDeltaStreamRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	in := randInstance(t, rng, Unrelated, 8, 3, 2)
	var deltas []Delta
	cur := in
	for i := 0; i < 10; i++ {
		d := randDelta(rng, cur)
		next, err := d.Apply(cur)
		if err != nil {
			t.Fatalf("Apply: %v", err)
		}
		deltas = append(deltas, d)
		cur = next
	}
	var buf bytes.Buffer
	if err := WriteDeltaStream(&buf, in, deltas); err != nil {
		t.Fatalf("WriteDeltaStream: %v", err)
	}
	in2, deltas2, err := ReadDeltaStream(&buf)
	if err != nil {
		t.Fatalf("ReadDeltaStream: %v", err)
	}
	if in2.Fingerprint() != in.Fingerprint() {
		t.Fatalf("instance fingerprint changed across round trip")
	}
	if len(deltas2) != len(deltas) {
		t.Fatalf("got %d deltas, want %d", len(deltas2), len(deltas))
	}
	cur1, cur2 := in, in2
	for i := range deltas {
		n1, err1 := deltas[i].Apply(cur1)
		n2, err2 := deltas2[i].Apply(cur2)
		if err1 != nil || err2 != nil {
			t.Fatalf("replay delta %d: %v / %v", i, err1, err2)
		}
		if n1.Fingerprint() != n2.Fingerprint() {
			t.Fatalf("delta %d diverges after round trip", i)
		}
		cur1, cur2 = n1, n2
	}
}

// TestSimilarityKeyBuckets checks that small perturbations usually collide
// while structural changes never do.
func TestSimilarityKeyBuckets(t *testing.T) {
	p := []float64{40, 42, 38, 41, 39, 40, 43, 37}
	class := []int{0, 0, 1, 1, 0, 1, 0, 1}
	s := []float64{5, 7}
	a, err := NewIdentical(p, class, s, 4)
	if err != nil {
		t.Fatal(err)
	}
	// A ~2% size tweak well inside the volume bucket keeps the key.
	p2 := append([]float64(nil), p...)
	p2[0] = 41
	b, err := NewIdentical(p2, class, s, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatalf("perturbed instance should change the exact fingerprint")
	}
	if a.SimilarityKey() != b.SimilarityKey() {
		t.Fatalf("2%% perturbation changed the similarity key")
	}
	// Doubling the machine count changes the machine bucket.
	c, err := NewIdentical(p, class, s, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.SimilarityKey() == c.SimilarityKey() {
		t.Fatalf("doubling machines kept the similarity key")
	}
	// A different environment never collides.
	v := []float64{1, 1, 1, 1}
	d, err := NewUniform(p, class, s, v)
	if err != nil {
		t.Fatal(err)
	}
	if a.SimilarityKey() == d.SimilarityKey() {
		t.Fatalf("different kind kept the similarity key")
	}
}
