package core

import (
	"fmt"
	"math"
)

// Instance is a setup-time scheduling instance. All four machine
// environments materialize the full matrices P and S; the base fields
// (JobSize, SetupSize, Speed, Eligible) are populated only for the
// environments to which they apply and are retained so structure-exploiting
// algorithms (e.g. the uniform-machines PTAS) need not reverse-engineer them.
//
// Instances are treated as immutable by all algorithms in this module; use
// Clone before mutating a shared instance.
type Instance struct {
	// Kind is the machine environment.
	Kind Kind
	// N, M and K are the number of jobs, machines and setup classes.
	N, M, K int
	// Class maps each job to its setup class in [0, K).
	Class []int

	// P is the m×n processing-time matrix; P[i][j] = p_{ij}. Inf marks an
	// ineligible pair.
	P [][]float64
	// S is the m×K setup-time matrix; S[i][k] = s_{ik}. Inf marks a class
	// that can never be set up on the machine.
	S [][]float64

	// JobSize holds p_j for identical, uniform and restricted instances
	// (nil for unrelated).
	JobSize []float64
	// SetupSize holds s_k for identical, uniform and restricted instances
	// (nil for unrelated).
	SetupSize []float64
	// Speed holds v_i for uniform instances (nil otherwise).
	Speed []float64
	// Eligible holds, for restricted-assignment instances, the per-job
	// machine eligibility: Eligible[j][i] reports whether job j may run on
	// machine i (nil otherwise).
	Eligible [][]bool
}

// NewIdentical builds an identical-machines instance from job sizes p (len
// n), job classes class (len n, values in [0,K)), setup sizes s (len K) and a
// machine count m.
func NewIdentical(p []float64, class []int, s []float64, m int) (*Instance, error) {
	speeds := make([]float64, m)
	for i := range speeds {
		speeds[i] = 1
	}
	inst, err := NewUniform(p, class, s, speeds)
	if err != nil {
		return nil, err
	}
	inst.Kind = Identical
	inst.Speed = nil
	return inst, nil
}

// NewUniform builds a uniformly-related-machines instance from job sizes p,
// job classes class, setup sizes s and machine speeds v (len m, all > 0).
// Processing times are p_j/v_i and setup times s_k/v_i.
func NewUniform(p []float64, class []int, s []float64, v []float64) (*Instance, error) {
	n, k, m := len(p), len(s), len(v)
	if err := checkBase(p, class, s); err != nil {
		return nil, err
	}
	if m == 0 {
		return nil, fmt.Errorf("core: no machines")
	}
	for i, vi := range v {
		if !(vi > 0) || !IsFinite(vi) {
			return nil, fmt.Errorf("core: speed of machine %d is %v, want > 0", i, vi)
		}
	}
	inst := &Instance{
		Kind: Uniform, N: n, M: m, K: k,
		Class:     append([]int(nil), class...),
		JobSize:   append([]float64(nil), p...),
		SetupSize: append([]float64(nil), s...),
		Speed:     append([]float64(nil), v...),
	}
	inst.P = make([][]float64, m)
	inst.S = make([][]float64, m)
	for i := 0; i < m; i++ {
		inst.P[i] = make([]float64, n)
		inst.S[i] = make([]float64, k)
		for j := 0; j < n; j++ {
			inst.P[i][j] = p[j] / v[i]
		}
		for c := 0; c < k; c++ {
			inst.S[i][c] = s[c] / v[i]
		}
	}
	return inst, nil
}

// NewRestricted builds a restricted-assignment instance. eligible[j] lists
// the machines on which job j may run (it must be non-empty for every job).
// The setup time of class k on machine i is s_k if some job of class k is
// eligible on i, and Inf otherwise.
func NewRestricted(p []float64, class []int, s []float64, m int, eligible [][]int) (*Instance, error) {
	n, k := len(p), len(s)
	if err := checkBase(p, class, s); err != nil {
		return nil, err
	}
	if m <= 0 {
		return nil, fmt.Errorf("core: no machines")
	}
	if len(eligible) != n {
		return nil, fmt.Errorf("core: eligibility lists for %d jobs, want %d", len(eligible), n)
	}
	inst := &Instance{
		Kind: RestrictedAssignment, N: n, M: m, K: k,
		Class:     append([]int(nil), class...),
		JobSize:   append([]float64(nil), p...),
		SetupSize: append([]float64(nil), s...),
	}
	inst.Eligible = make([][]bool, n)
	inst.P = make([][]float64, m)
	inst.S = make([][]float64, m)
	for i := 0; i < m; i++ {
		inst.P[i] = make([]float64, n)
		inst.S[i] = make([]float64, k)
		for j := 0; j < n; j++ {
			inst.P[i][j] = Inf
		}
		for c := 0; c < k; c++ {
			inst.S[i][c] = Inf
		}
	}
	for j, ms := range eligible {
		if len(ms) == 0 {
			return nil, fmt.Errorf("core: job %d has no eligible machine", j)
		}
		inst.Eligible[j] = make([]bool, m)
		for _, i := range ms {
			if i < 0 || i >= m {
				return nil, fmt.Errorf("core: job %d eligible on machine %d, want [0,%d)", j, i, m)
			}
			inst.Eligible[j][i] = true
			inst.P[i][j] = p[j]
			inst.S[i][class[j]] = s[class[j]]
		}
	}
	return inst, nil
}

// NewUnrelated builds an unrelated-machines instance from an m×n processing
// matrix, job classes, and an m×K setup matrix. Inf entries mark ineligible
// job-machine and class-machine pairs; every job needs at least one finite
// processing time.
func NewUnrelated(p [][]float64, class []int, s [][]float64) (*Instance, error) {
	m := len(p)
	if m == 0 {
		return nil, fmt.Errorf("core: no machines")
	}
	n := len(p[0])
	if len(s) != m {
		return nil, fmt.Errorf("core: setup matrix has %d rows, want %d", len(s), m)
	}
	k := len(s[0])
	if len(class) != n {
		return nil, fmt.Errorf("core: %d class labels, want %d", len(class), n)
	}
	inst := &Instance{
		Kind: Unrelated, N: n, M: m, K: k,
		Class: append([]int(nil), class...),
		P:     make([][]float64, m),
		S:     make([][]float64, m),
	}
	for i := 0; i < m; i++ {
		if len(p[i]) != n || len(s[i]) != k {
			return nil, fmt.Errorf("core: ragged matrix row %d", i)
		}
		inst.P[i] = append([]float64(nil), p[i]...)
		inst.S[i] = append([]float64(nil), s[i]...)
		for j := 0; j < n; j++ {
			if pv := p[i][j]; pv < 0 || math.IsNaN(pv) {
				return nil, fmt.Errorf("core: p[%d][%d] = %v, want >= 0", i, j, pv)
			}
		}
		for c := 0; c < k; c++ {
			if sv := s[i][c]; sv < 0 || math.IsNaN(sv) {
				return nil, fmt.Errorf("core: s[%d][%d] = %v, want >= 0", i, c, sv)
			}
		}
	}
	for j := 0; j < n; j++ {
		if class[j] < 0 || class[j] >= k {
			return nil, fmt.Errorf("core: job %d has class %d, want [0,%d)", j, class[j], k)
		}
		ok := false
		for i := 0; i < m; i++ {
			if IsFinite(p[i][j]) && IsFinite(s[i][class[j]]) {
				ok = true
				break
			}
		}
		if !ok {
			return nil, fmt.Errorf("core: job %d has no machine with finite processing and setup time", j)
		}
	}
	return inst, nil
}

func checkBase(p []float64, class []int, s []float64) error {
	if len(p) == 0 {
		return fmt.Errorf("core: no jobs")
	}
	if len(class) != len(p) {
		return fmt.Errorf("core: %d class labels, want %d", len(class), len(p))
	}
	if len(s) == 0 {
		return fmt.Errorf("core: no setup classes")
	}
	for j, pj := range p {
		if pj < 0 || !IsFinite(pj) {
			return fmt.Errorf("core: job %d has size %v, want finite >= 0", j, pj)
		}
	}
	for k, sk := range s {
		if sk < 0 || !IsFinite(sk) {
			return fmt.Errorf("core: class %d has setup size %v, want finite >= 0", k, sk)
		}
	}
	for j, c := range class {
		if c < 0 || c >= len(s) {
			return fmt.Errorf("core: job %d has class %d, want [0,%d)", j, c, len(s))
		}
	}
	return nil
}

// Clone returns a deep copy of the instance.
func (in *Instance) Clone() *Instance {
	out := &Instance{Kind: in.Kind, N: in.N, M: in.M, K: in.K}
	out.Class = append([]int(nil), in.Class...)
	out.JobSize = append([]float64(nil), in.JobSize...)
	out.SetupSize = append([]float64(nil), in.SetupSize...)
	out.Speed = append([]float64(nil), in.Speed...)
	if in.P != nil {
		out.P = make([][]float64, len(in.P))
		for i := range in.P {
			out.P[i] = append([]float64(nil), in.P[i]...)
		}
	}
	if in.S != nil {
		out.S = make([][]float64, len(in.S))
		for i := range in.S {
			out.S[i] = append([]float64(nil), in.S[i]...)
		}
	}
	if in.Eligible != nil {
		out.Eligible = make([][]bool, len(in.Eligible))
		for j := range in.Eligible {
			out.Eligible[j] = append([]bool(nil), in.Eligible[j]...)
		}
	}
	return out
}

// JobsOfClass returns, for each class k, the (sorted) list of jobs with
// Class[j] == k.
func (in *Instance) JobsOfClass() [][]int {
	byClass := make([][]int, in.K)
	for j, k := range in.Class {
		byClass[k] = append(byClass[k], j)
	}
	return byClass
}

// ClassWork returns, for each machine i and class k, the total workload
// Σ_{j: class j = k} p_{ij} (the quantity written p̄_{ik} in Section 3.3 of
// the paper). The result is Inf if any job of the class is ineligible on i.
func (in *Instance) ClassWork() [][]float64 {
	w := make([][]float64, in.M)
	for i := 0; i < in.M; i++ {
		w[i] = make([]float64, in.K)
		for j := 0; j < in.N; j++ {
			w[i][in.Class[j]] += in.P[i][j]
		}
	}
	return w
}

// Eligibility reports whether job j may be processed on machine i within
// makespan bound t (finite processing time, finite setup, and p_{ij} +
// s_{i,class(j)} fits under t when t is finite; pass Inf for no bound).
func (in *Instance) Eligibility(i, j int, t float64) bool {
	p := in.P[i][j]
	s := in.S[i][in.Class[j]]
	if !IsFinite(p) || !IsFinite(s) {
		return false
	}
	return p+s <= t+Eps
}

// TotalWork returns Σ_j min_i p_{ij}, a crude volume measure used by lower
// bounds and sanity checks.
func (in *Instance) TotalWork() float64 {
	total := 0.0
	for j := 0; j < in.N; j++ {
		best := Inf
		for i := 0; i < in.M; i++ {
			if in.P[i][j] < best {
				best = in.P[i][j]
			}
		}
		total += best
	}
	return total
}

// Validate checks internal consistency of the instance (matrix shapes, class
// ranges, environment-specific invariants). Constructors always produce
// valid instances; Validate is for instances deserialized from files.
func (in *Instance) Validate() error {
	if in.N <= 0 || in.M <= 0 || in.K <= 0 {
		return fmt.Errorf("core: non-positive dimension n=%d m=%d K=%d", in.N, in.M, in.K)
	}
	if len(in.Class) != in.N {
		return fmt.Errorf("core: %d class labels, want %d", len(in.Class), in.N)
	}
	for j, c := range in.Class {
		if c < 0 || c >= in.K {
			return fmt.Errorf("core: job %d has class %d, want [0,%d)", j, c, in.K)
		}
	}
	if len(in.P) != in.M || len(in.S) != in.M {
		return fmt.Errorf("core: matrices have %d/%d rows, want %d", len(in.P), len(in.S), in.M)
	}
	for i := 0; i < in.M; i++ {
		if len(in.P[i]) != in.N {
			return fmt.Errorf("core: P row %d has %d entries, want %d", i, len(in.P[i]), in.N)
		}
		if len(in.S[i]) != in.K {
			return fmt.Errorf("core: S row %d has %d entries, want %d", i, len(in.S[i]), in.K)
		}
		for j, pv := range in.P[i] {
			if pv < 0 || math.IsNaN(pv) {
				return fmt.Errorf("core: p[%d][%d] = %v", i, j, pv)
			}
		}
		for k, sv := range in.S[i] {
			if sv < 0 || math.IsNaN(sv) {
				return fmt.Errorf("core: s[%d][%d] = %v", i, k, sv)
			}
		}
	}
	if in.Kind == Uniform {
		if len(in.Speed) != in.M {
			return fmt.Errorf("core: %d speeds, want %d", len(in.Speed), in.M)
		}
		for i, v := range in.Speed {
			if !(v > 0) || !IsFinite(v) {
				return fmt.Errorf("core: speed of machine %d is %v", i, v)
			}
		}
	}
	if in.Kind != Unrelated {
		if len(in.JobSize) != in.N || len(in.SetupSize) != in.K {
			return fmt.Errorf("core: base sizes missing for %v instance", in.Kind)
		}
	}
	for j := 0; j < in.N; j++ {
		ok := false
		for i := 0; i < in.M; i++ {
			if in.Eligibility(i, j, Inf) {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("core: job %d has no feasible machine", j)
		}
	}
	return nil
}

// String returns a short human-readable summary.
func (in *Instance) String() string {
	return fmt.Sprintf("%v instance: n=%d jobs, m=%d machines, K=%d classes", in.Kind, in.N, in.M, in.K)
}
