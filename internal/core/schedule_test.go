package core

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLoadsCountsSetupOncePerClass(t *testing.T) {
	in, err := NewIdentical([]float64{3, 4, 5}, []int{0, 0, 1}, []float64{10, 20}, 2)
	if err != nil {
		t.Fatalf("NewIdentical: %v", err)
	}
	s := &Schedule{Assign: []int{0, 0, 0}}
	loads := s.Loads(in)
	// 3+4+5 processing + one setup of 10 (class 0) + one of 20 (class 1).
	if math.Abs(loads[0]-42) > Eps {
		t.Errorf("load[0] = %v, want 42", loads[0])
	}
	if loads[1] != 0 {
		t.Errorf("load[1] = %v, want 0", loads[1])
	}
	if got := s.SetupCount(in); got != 2 {
		t.Errorf("SetupCount = %d, want 2", got)
	}
}

func TestLoadsSplitClassPaysSetupTwice(t *testing.T) {
	in, err := NewIdentical([]float64{3, 4}, []int{0, 0}, []float64{10}, 2)
	if err != nil {
		t.Fatalf("NewIdentical: %v", err)
	}
	s := &Schedule{Assign: []int{0, 1}}
	loads := s.Loads(in)
	if math.Abs(loads[0]-13) > Eps || math.Abs(loads[1]-14) > Eps {
		t.Errorf("loads = %v, want [13 14]", loads)
	}
	if got := s.SetupCount(in); got != 2 {
		t.Errorf("SetupCount = %d, want 2 (class split across machines)", got)
	}
}

func TestMakespanUniform(t *testing.T) {
	in := mustUniform(t, []float64{6, 6}, []int{0, 0}, []float64{2}, []float64{1, 2})
	s := &Schedule{Assign: []int{0, 1}}
	// Machine 0: (6+2)/1 = 8; machine 1: (6+2)/2 = 4.
	if ms := s.Makespan(in); math.Abs(ms-8) > Eps {
		t.Errorf("makespan = %v, want 8", ms)
	}
}

func TestValidateCatchesInfeasibleAssignment(t *testing.T) {
	in, err := NewRestricted([]float64{1, 1}, []int{0, 1}, []float64{1, 1}, 2,
		[][]int{{0}, {1}})
	if err != nil {
		t.Fatalf("NewRestricted: %v", err)
	}
	good := &Schedule{Assign: []int{0, 1}}
	if err := good.Validate(in); err != nil {
		t.Errorf("feasible schedule rejected: %v", err)
	}
	bad := &Schedule{Assign: []int{1, 1}}
	if err := bad.Validate(in); err == nil {
		t.Error("ineligible assignment accepted")
	}
	out := &Schedule{Assign: []int{0, 7}}
	if err := out.Validate(in); err == nil {
		t.Error("out-of-range machine accepted")
	}
	incomplete := NewSchedule(2)
	if err := incomplete.Validate(in); err == nil {
		t.Error("incomplete schedule accepted")
	}
	short := &Schedule{Assign: []int{0}}
	if err := short.Validate(in); err == nil {
		t.Error("short schedule accepted")
	}
}

func TestValidateWithin(t *testing.T) {
	in, err := NewIdentical([]float64{5}, []int{0}, []float64{5}, 1)
	if err != nil {
		t.Fatalf("NewIdentical: %v", err)
	}
	s := &Schedule{Assign: []int{0}}
	if err := s.ValidateWithin(in, 10); err != nil {
		t.Errorf("makespan 10 within bound 10 rejected: %v", err)
	}
	if err := s.ValidateWithin(in, 9.5); err == nil {
		t.Error("makespan 10 accepted within bound 9.5")
	}
}

func TestNewScheduleAndComplete(t *testing.T) {
	s := NewSchedule(3)
	if s.Complete() {
		t.Error("fresh schedule reports complete")
	}
	for j := range s.Assign {
		s.Assign[j] = 0
	}
	if !s.Complete() {
		t.Error("fully assigned schedule reports incomplete")
	}
}

func TestMachineJobs(t *testing.T) {
	in, err := NewIdentical([]float64{1, 1, 1}, []int{0, 0, 0}, []float64{1}, 2)
	if err != nil {
		t.Fatalf("NewIdentical: %v", err)
	}
	s := &Schedule{Assign: []int{1, 0, 1}}
	mj := s.MachineJobs(in)
	if len(mj[0]) != 1 || mj[0][0] != 1 {
		t.Errorf("machine 0 jobs = %v, want [1]", mj[0])
	}
	if len(mj[1]) != 2 {
		t.Errorf("machine 1 jobs = %v, want 2 jobs", mj[1])
	}
}

func TestResultRatio(t *testing.T) {
	r := Result{Makespan: 6, LowerBound: 3}
	if got := r.Ratio(); math.Abs(got-2) > Eps {
		t.Errorf("Ratio = %v, want 2", got)
	}
	if got := (Result{Makespan: 6}).Ratio(); !math.IsNaN(got) {
		t.Errorf("Ratio without lower bound = %v, want NaN", got)
	}
}

// Property: for any random identical instance and any assignment, the
// makespan equals the maximum over machines of (sum of processing times +
// sum of distinct class setups), computed independently here.
func TestMakespanMatchesDirectComputation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		m := 1 + rng.Intn(4)
		kk := 1 + rng.Intn(3)
		p := make([]float64, n)
		class := make([]int, n)
		for j := range p {
			p[j] = float64(1 + rng.Intn(50))
			class[j] = rng.Intn(kk)
		}
		s := make([]float64, kk)
		for k := range s {
			s[k] = float64(rng.Intn(20))
		}
		in, err := NewIdentical(p, class, s, m)
		if err != nil {
			return false
		}
		sched := NewSchedule(n)
		for j := range sched.Assign {
			sched.Assign[j] = rng.Intn(m)
		}
		// Direct recomputation.
		want := 0.0
		for i := 0; i < m; i++ {
			li := 0.0
			classes := map[int]bool{}
			for j := 0; j < n; j++ {
				if sched.Assign[j] == i {
					li += p[j]
					classes[class[j]] = true
				}
			}
			for k := range classes {
				li += s[k]
			}
			if li > want {
				want = li
			}
		}
		return math.Abs(sched.Makespan(in)-want) < Eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: JSON round-trips preserve instances exactly.
func TestJSONRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var in *Instance
		var err error
		switch rng.Intn(3) {
		case 0:
			in, err = NewIdentical([]float64{1, 2, 3}, []int{0, 1, 0}, []float64{4, 5}, 2)
		case 1:
			in, err = NewUniform([]float64{1, 2}, []int{0, 0}, []float64{3}, []float64{1, 2.5})
		default:
			in, err = NewUnrelated(
				[][]float64{{1, Inf}, {2, 3}},
				[]int{0, 1},
				[][]float64{{1, Inf}, {0, 2}},
			)
		}
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := in.WriteJSON(&buf); err != nil {
			return false
		}
		out, err := ReadJSON(&buf)
		if err != nil {
			return false
		}
		if out.Kind != in.Kind || out.N != in.N || out.M != in.M || out.K != in.K {
			return false
		}
		for i := range in.P {
			for j := range in.P[i] {
				a, b := in.P[i][j], out.P[i][j]
				if a != b && !(math.IsInf(a, 1) && math.IsInf(b, 1)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(bytes.NewBufferString("{")); err == nil {
		t.Error("truncated JSON accepted")
	}
	if _, err := ReadJSON(bytes.NewBufferString(`{"kind":"alien","n":1,"m":1,"k":1}`)); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := ReadJSON(bytes.NewBufferString(`{"kind":"identical","n":1,"m":1,"k":1,"class":[0],"p":[["oops"]],"s":[[1]]}`)); err == nil {
		t.Error("bad time literal accepted")
	}
}
