package core

// BoundBus is a live, concurrency-safe exchange of makespan bounds between
// solvers working on the same instance. Racing solvers publish every
// improved feasible makespan (the incumbent) and every certified lower
// bound they establish, and read the live values back to prune their own
// searches: a branch-and-bound primes and re-tightens its pruning threshold
// from Upper, and a dual-approximation binary search skips guesses at or
// above the incumbent and publishes rejected guesses through PublishLower.
//
// Implementations must be safe for concurrent use from multiple goroutines;
// the engine's Incumbent is the canonical one. All methods tolerate being
// called with values that do not improve the current bounds (the publish
// methods report whether the bound actually moved).
type BoundBus interface {
	// Upper returns the best known feasible makespan, +Inf when none has
	// been published yet.
	Upper() float64
	// Lower returns the best certified lower bound on the optimal makespan,
	// 0 when none has been published yet.
	Lower() float64
	// PublishUpper records a feasible makespan and reports whether it
	// strictly improved the incumbent.
	PublishUpper(v float64) bool
	// PublishLower records a certified lower bound and reports whether it
	// strictly improved the strongest known bound.
	PublishLower(v float64) bool
}
