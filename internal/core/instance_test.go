package core

import (
	"math"
	"testing"
)

func mustUniform(t *testing.T, p []float64, class []int, s []float64, v []float64) *Instance {
	t.Helper()
	in, err := NewUniform(p, class, s, v)
	if err != nil {
		t.Fatalf("NewUniform: %v", err)
	}
	return in
}

func TestNewIdentical(t *testing.T) {
	in, err := NewIdentical([]float64{3, 5, 2}, []int{0, 1, 0}, []float64{1, 2}, 2)
	if err != nil {
		t.Fatalf("NewIdentical: %v", err)
	}
	if in.Kind != Identical {
		t.Errorf("kind = %v, want identical", in.Kind)
	}
	if in.N != 3 || in.M != 2 || in.K != 2 {
		t.Errorf("dims = %d,%d,%d, want 3,2,2", in.N, in.M, in.K)
	}
	for i := 0; i < 2; i++ {
		if in.P[i][1] != 5 {
			t.Errorf("P[%d][1] = %v, want 5", i, in.P[i][1])
		}
		if in.S[i][1] != 2 {
			t.Errorf("S[%d][1] = %v, want 2", i, in.S[i][1])
		}
	}
	if err := in.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestNewUniformSpeedScaling(t *testing.T) {
	in := mustUniform(t, []float64{6}, []int{0}, []float64{3}, []float64{1, 2, 3})
	want := [][]float64{{6}, {3}, {2}}
	for i := range want {
		if math.Abs(in.P[i][0]-want[i][0]) > Eps {
			t.Errorf("P[%d][0] = %v, want %v", i, in.P[i][0], want[i][0])
		}
	}
	if math.Abs(in.S[2][0]-1) > Eps {
		t.Errorf("S[2][0] = %v, want 1", in.S[2][0])
	}
}

func TestNewUniformErrors(t *testing.T) {
	cases := []struct {
		name  string
		p     []float64
		class []int
		s     []float64
		v     []float64
	}{
		{"no jobs", nil, nil, []float64{1}, []float64{1}},
		{"class mismatch", []float64{1}, []int{0, 1}, []float64{1}, []float64{1}},
		{"no classes", []float64{1}, []int{0}, nil, []float64{1}},
		{"negative size", []float64{-1}, []int{0}, []float64{1}, []float64{1}},
		{"negative setup", []float64{1}, []int{0}, []float64{-2}, []float64{1}},
		{"class out of range", []float64{1}, []int{1}, []float64{1}, []float64{1}},
		{"no machines", []float64{1}, []int{0}, []float64{1}, nil},
		{"zero speed", []float64{1}, []int{0}, []float64{1}, []float64{0}},
		{"negative speed", []float64{1}, []int{0}, []float64{1}, []float64{-1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewUniform(tc.p, tc.class, tc.s, tc.v); err == nil {
				t.Errorf("NewUniform(%s) succeeded, want error", tc.name)
			}
		})
	}
}

func TestNewRestricted(t *testing.T) {
	in, err := NewRestricted(
		[]float64{4, 4, 7}, []int{0, 0, 1}, []float64{2, 1}, 3,
		[][]int{{0, 1}, {1}, {2}},
	)
	if err != nil {
		t.Fatalf("NewRestricted: %v", err)
	}
	if got := in.P[0][0]; got != 4 {
		t.Errorf("P[0][0] = %v, want 4", got)
	}
	if got := in.P[2][0]; !math.IsInf(got, 1) {
		t.Errorf("P[2][0] = %v, want Inf", got)
	}
	// Class 0 has jobs eligible on machines 0 and 1 only.
	if got := in.S[0][0]; got != 2 {
		t.Errorf("S[0][0] = %v, want 2", got)
	}
	if got := in.S[2][0]; !math.IsInf(got, 1) {
		t.Errorf("S[2][0] = %v, want Inf", got)
	}
	if err := in.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestNewRestrictedErrors(t *testing.T) {
	if _, err := NewRestricted([]float64{1}, []int{0}, []float64{1}, 2, [][]int{{}}); err == nil {
		t.Error("empty eligibility accepted")
	}
	if _, err := NewRestricted([]float64{1}, []int{0}, []float64{1}, 2, [][]int{{5}}); err == nil {
		t.Error("out-of-range machine accepted")
	}
	if _, err := NewRestricted([]float64{1}, []int{0}, []float64{1}, 2, nil); err == nil {
		t.Error("missing eligibility accepted")
	}
}

func TestNewUnrelated(t *testing.T) {
	in, err := NewUnrelated(
		[][]float64{{1, 2}, {3, Inf}},
		[]int{0, 1},
		[][]float64{{1, 1}, {1, 1}},
	)
	if err != nil {
		t.Fatalf("NewUnrelated: %v", err)
	}
	if in.Kind != Unrelated || in.N != 2 || in.M != 2 || in.K != 2 {
		t.Errorf("unexpected shape: %v", in)
	}
	if err := in.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestNewUnrelatedNoFeasibleMachine(t *testing.T) {
	_, err := NewUnrelated(
		[][]float64{{Inf}, {Inf}},
		[]int{0},
		[][]float64{{1}, {1}},
	)
	if err == nil {
		t.Error("job with no feasible machine accepted")
	}
	// Finite processing but infinite setup everywhere is also infeasible.
	_, err = NewUnrelated(
		[][]float64{{1}, {1}},
		[]int{0},
		[][]float64{{Inf}, {Inf}},
	)
	if err == nil {
		t.Error("job with no finite setup accepted")
	}
}

func TestCloneIndependence(t *testing.T) {
	in := mustUniform(t, []float64{1, 2}, []int{0, 1}, []float64{1, 1}, []float64{1, 2})
	cp := in.Clone()
	cp.P[0][0] = 99
	cp.Class[0] = 1
	cp.Speed[1] = 7
	if in.P[0][0] == 99 || in.Class[0] == 1 || in.Speed[1] == 7 {
		t.Error("Clone shares memory with original")
	}
}

func TestJobsOfClass(t *testing.T) {
	in := mustUniform(t, []float64{1, 2, 3, 4}, []int{1, 0, 1, 1}, []float64{1, 1}, []float64{1})
	by := in.JobsOfClass()
	if len(by[0]) != 1 || by[0][0] != 1 {
		t.Errorf("class 0 jobs = %v, want [1]", by[0])
	}
	if len(by[1]) != 3 {
		t.Errorf("class 1 jobs = %v, want 3 jobs", by[1])
	}
}

func TestClassWork(t *testing.T) {
	in := mustUniform(t, []float64{2, 4, 6}, []int{0, 0, 1}, []float64{1, 1}, []float64{1, 2})
	w := in.ClassWork()
	if math.Abs(w[0][0]-6) > Eps {
		t.Errorf("work[0][0] = %v, want 6", w[0][0])
	}
	if math.Abs(w[1][0]-3) > Eps {
		t.Errorf("work[1][0] = %v, want 3", w[1][0])
	}
	if math.Abs(w[1][1]-3) > Eps {
		t.Errorf("work[1][1] = %v, want 3", w[1][1])
	}
}

func TestEligibility(t *testing.T) {
	in, err := NewUnrelated(
		[][]float64{{5, Inf}, {2, 3}},
		[]int{0, 0},
		[][]float64{{1}, {1}},
	)
	if err != nil {
		t.Fatalf("NewUnrelated: %v", err)
	}
	if !in.Eligibility(0, 0, 6) {
		t.Error("job 0 on machine 0 with T=6 should be eligible (5+1 <= 6)")
	}
	if in.Eligibility(0, 0, 5.5) {
		t.Error("job 0 on machine 0 with T=5.5 should not fit (5+1 > 5.5)")
	}
	if in.Eligibility(0, 1, 100) {
		t.Error("job 1 has infinite processing time on machine 0")
	}
	// A machine whose setup time is infinite is never eligible, regardless
	// of the processing time.
	in2, err := NewUnrelated(
		[][]float64{{5}, {2}},
		[]int{0},
		[][]float64{{1}, {Inf}},
	)
	if err != nil {
		t.Fatalf("NewUnrelated: %v", err)
	}
	if in2.Eligibility(1, 0, 100) {
		t.Error("machine 1 has infinite setup; should be ineligible")
	}
}

func TestTotalWork(t *testing.T) {
	in, err := NewUnrelated(
		[][]float64{{4, 10}, {6, 2}},
		[]int{0, 0},
		[][]float64{{0}, {0}},
	)
	if err != nil {
		t.Fatalf("NewUnrelated: %v", err)
	}
	if got := in.TotalWork(); math.Abs(got-6) > Eps {
		t.Errorf("TotalWork = %v, want 6 (4 + 2)", got)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		Identical: "identical", Uniform: "uniform",
		RestrictedAssignment: "restricted", Unrelated: "unrelated",
		Kind(42): "Kind(42)",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestValidateRejectsCorrupted(t *testing.T) {
	fresh := func() *Instance {
		in, err := NewUniform([]float64{1, 2}, []int{0, 1}, []float64{1, 1}, []float64{1, 2})
		if err != nil {
			t.Fatalf("NewUniform: %v", err)
		}
		return in
	}
	mutations := map[string]func(*Instance){
		"bad class":      func(in *Instance) { in.Class[0] = 9 },
		"negative p":     func(in *Instance) { in.P[0][0] = -1 },
		"nan s":          func(in *Instance) { in.S[1][0] = math.NaN() },
		"short P row":    func(in *Instance) { in.P[0] = in.P[0][:1] },
		"short speeds":   func(in *Instance) { in.Speed = in.Speed[:1] },
		"zero dimension": func(in *Instance) { in.N = 0 },
		"missing sizes":  func(in *Instance) { in.JobSize = nil },
	}
	for name, mutate := range mutations {
		t.Run(name, func(t *testing.T) {
			in := fresh()
			mutate(in)
			if err := in.Validate(); err == nil {
				t.Errorf("corrupted instance (%s) validated", name)
			}
		})
	}
}
