package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
)

// fingerprintVersion is folded into every fingerprint so that a change to
// the encoding below can never collide with hashes produced by an older
// scheme (e.g. bounds persisted across processes).
const fingerprintVersion = "sched/instance/v1"

// Fingerprint returns a canonical content hash of the instance, stable
// across processes and identical for instances that pose the same
// scheduling problem: it covers the machine environment (Kind), the
// dimensions, the job→class map and the full processing and setup matrices.
// The derived base fields (JobSize, SetupSize, Speed, Eligible) are fully
// determined by Kind, P and S and are deliberately not hashed, so an
// instance and its Clone — or a deserialized copy — fingerprint alike.
//
// The engine layer keys its bound cache by this value: repeated solves of a
// fingerprint-identical instance warm-start from the bounds (and best
// schedule) established by earlier solves.
func (in *Instance) Fingerprint() string {
	h := sha256.New()
	var buf [8]byte
	putU := func(u uint64) {
		binary.LittleEndian.PutUint64(buf[:], u)
		h.Write(buf[:])
	}
	putF := func(f float64) { putU(math.Float64bits(f)) }

	h.Write([]byte(fingerprintVersion))
	putU(uint64(in.Kind))
	putU(uint64(in.N))
	putU(uint64(in.M))
	putU(uint64(in.K))
	for _, c := range in.Class {
		putU(uint64(c))
	}
	for _, row := range in.P {
		for _, v := range row {
			putF(v)
		}
	}
	for _, row := range in.S {
		for _, v := range row {
			putF(v)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
