package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
)

// fingerprintVersion is folded into every fingerprint so that a change to
// the encoding below can never collide with hashes produced by an older
// scheme (e.g. bounds persisted across processes).
const fingerprintVersion = "sched/instance/v1"

// Fingerprint returns a canonical content hash of the instance, stable
// across processes and identical for instances that pose the same
// scheduling problem: it covers the machine environment (Kind), the
// dimensions, the job→class map and the full processing and setup matrices.
// The derived base fields (JobSize, SetupSize, Speed, Eligible) are fully
// determined by Kind, P and S and are deliberately not hashed, so an
// instance and its Clone — or a deserialized copy — fingerprint alike.
//
// The engine layer keys its bound cache by this value: repeated solves of a
// fingerprint-identical instance warm-start from the bounds (and best
// schedule) established by earlier solves.
func (in *Instance) Fingerprint() string {
	h := sha256.New()
	var buf [8]byte
	putU := func(u uint64) {
		binary.LittleEndian.PutUint64(buf[:], u)
		h.Write(buf[:])
	}
	putF := func(f float64) { putU(math.Float64bits(f)) }

	h.Write([]byte(fingerprintVersion))
	putU(uint64(in.Kind))
	putU(uint64(in.N))
	putU(uint64(in.M))
	putU(uint64(in.K))
	for _, c := range in.Class {
		putU(uint64(c))
	}
	for _, row := range in.P {
		for _, v := range row {
			putF(v)
		}
	}
	for _, row := range in.S {
		for _, v := range row {
			putF(v)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// similarityVersion versions the SimilarityKey encoding the way
// fingerprintVersion versions Fingerprint.
const similarityVersion = "sched/simkey/v1"

// SimilarityKey returns a coarse bucketed profile of the instance: the
// machine environment, the class count, a log₂ bucket of the machine
// count, and per class a log₂ bucket of the job count and a log₁.₂₅
// bucket of the total processing volume (summed over min-per-machine
// times). Instances that differ by a few percent of volume or by small
// job swaps usually collide, while structurally different instances do
// not.
//
// Unlike Fingerprint, equal keys certify nothing: the engine uses them
// only to locate candidate schedules from similar instances, then
// re-prices each candidate on the new instance before trusting it (see
// engine.BoundCache.LookupSimilar). Bucket boundaries make the grouping
// best-effort — a 95%-similar pair can still land in adjacent buckets.
func (in *Instance) SimilarityKey() string {
	h := sha256.New()
	var buf [8]byte
	putU := func(u uint64) {
		binary.LittleEndian.PutUint64(buf[:], u)
		h.Write(buf[:])
	}
	h.Write([]byte(similarityVersion))
	putU(uint64(in.Kind))
	putU(uint64(in.K))
	putU(uint64(logBucket(float64(in.M), 2)))

	count := make([]int, in.K)
	vol := make([]float64, in.K)
	for j := 0; j < in.N; j++ {
		count[in.Class[j]]++
		best := Inf
		for i := 0; i < in.M; i++ {
			if in.P[i][j] < best {
				best = in.P[i][j]
			}
		}
		if IsFinite(best) {
			vol[in.Class[j]] += best
		}
	}
	for k := 0; k < in.K; k++ {
		putU(uint64(logBucket(float64(count[k]), 2)))
		putU(uint64(logBucket(vol[k], 1.25)))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// logBucket buckets x > 0 as floor(log_base(x)) shifted to stay
// non-negative; zero and negative values get a dedicated bucket.
func logBucket(x, base float64) int {
	if !(x > 0) {
		return 0
	}
	b := int(math.Floor(math.Log(x)/math.Log(base))) + 64
	if b < 1 {
		b = 1
	}
	return b
}
