package core

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// fileInstance is the on-disk JSON representation of an Instance. Infinite
// times are encoded as the string "inf" because JSON has no Inf literal.
type fileInstance struct {
	Kind      string      `json:"kind"`
	N         int         `json:"n"`
	M         int         `json:"m"`
	K         int         `json:"k"`
	Class     []int       `json:"class"`
	P         [][]jsonNum `json:"p"`
	S         [][]jsonNum `json:"s"`
	JobSize   []float64   `json:"jobSize,omitempty"`
	SetupSize []float64   `json:"setupSize,omitempty"`
	Speed     []float64   `json:"speed,omitempty"`
	Eligible  [][]bool    `json:"eligible,omitempty"`
}

// jsonNum marshals float64 with Inf support.
type jsonNum float64

// MarshalJSON encodes +Inf as the string "inf".
func (x jsonNum) MarshalJSON() ([]byte, error) {
	if math.IsInf(float64(x), 1) {
		return []byte(`"inf"`), nil
	}
	return json.Marshal(float64(x))
}

// UnmarshalJSON decodes either a number or the string "inf".
func (x *jsonNum) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		if s == "inf" {
			*x = jsonNum(math.Inf(1))
			return nil
		}
		return fmt.Errorf("core: unknown time literal %q", s)
	}
	var f float64
	if err := json.Unmarshal(b, &f); err != nil {
		return err
	}
	*x = jsonNum(f)
	return nil
}

func kindName(k Kind) string { return k.String() }

func kindFromName(s string) (Kind, error) {
	switch s {
	case "identical":
		return Identical, nil
	case "uniform":
		return Uniform, nil
	case "restricted":
		return RestrictedAssignment, nil
	case "unrelated":
		return Unrelated, nil
	}
	return 0, fmt.Errorf("core: unknown kind %q", s)
}

// WriteJSON serializes the instance to w in the library's JSON format.
func (in *Instance) WriteJSON(w io.Writer) error {
	fi := fileInstance{
		Kind: kindName(in.Kind), N: in.N, M: in.M, K: in.K,
		Class:     in.Class,
		JobSize:   in.JobSize,
		SetupSize: in.SetupSize,
		Speed:     in.Speed,
		Eligible:  in.Eligible,
	}
	fi.P = make([][]jsonNum, len(in.P))
	for i := range in.P {
		fi.P[i] = make([]jsonNum, len(in.P[i]))
		for j, v := range in.P[i] {
			fi.P[i][j] = jsonNum(v)
		}
	}
	fi.S = make([][]jsonNum, len(in.S))
	for i := range in.S {
		fi.S[i] = make([]jsonNum, len(in.S[i]))
		for j, v := range in.S[i] {
			fi.S[i][j] = jsonNum(v)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(fi)
}

// ReadJSON deserializes an instance written by WriteJSON and validates it.
func ReadJSON(r io.Reader) (*Instance, error) {
	var fi fileInstance
	if err := json.NewDecoder(r).Decode(&fi); err != nil {
		return nil, fmt.Errorf("core: decoding instance: %w", err)
	}
	kind, err := kindFromName(fi.Kind)
	if err != nil {
		return nil, err
	}
	in := &Instance{
		Kind: kind, N: fi.N, M: fi.M, K: fi.K,
		Class:     fi.Class,
		JobSize:   fi.JobSize,
		SetupSize: fi.SetupSize,
		Speed:     fi.Speed,
		Eligible:  fi.Eligible,
	}
	in.P = make([][]float64, len(fi.P))
	for i := range fi.P {
		in.P[i] = make([]float64, len(fi.P[i]))
		for j, v := range fi.P[i] {
			in.P[i][j] = float64(v)
		}
	}
	in.S = make([][]float64, len(fi.S))
	for i := range fi.S {
		in.S[i] = make([]float64, len(fi.S[i]))
		for j, v := range fi.S[i] {
			in.S[i][j] = float64(v)
		}
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return in, nil
}
