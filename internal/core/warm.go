package core

// WarmStart carries re-solve knowledge from a previous solve of a related
// instance into a new solve of the current instance. Every field is about
// the instance being solved — the engine's Resolve path derives them from
// the pre-delta solve via the Delta monotonicity lemmas (see Delta.RaisesOn
// and Delta.AcceptedCap) before handing them to a solver.
type WarmStart struct {
	// Lower, when > 0, is a certified lower bound on the optimal makespan
	// of the instance (sound to prune below).
	Lower float64
	// Upper, when > 0 and finite, is a makespan guess at which the solver's
	// decision procedure is guaranteed to accept, so dual-approximation
	// searches may open their bracket at Upper instead of a cold greedy
	// bound.
	Upper float64
	// Fallback, when non-nil, is a feasible schedule of the instance (a
	// patched previous schedule). Its makespan backs Upper, and it is the
	// result of last resort when a search produces nothing better.
	Fallback *Schedule
	// State is solver-specific retained state — for the randomized
	// rounding, the *rounding.Relaxation patched to this instance by
	// ApplyDelta. Solvers type-assert and ignore states they do not own.
	State any
}
