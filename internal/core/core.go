// Package core defines the instance and schedule model for the problem of
// scheduling jobs with class setup times on parallel machines, as studied in
// "Scheduling on (Un-)Related Machines with Setup Times" (Jansen, Maack,
// Mäcker; IPPS 2019).
//
// An instance consists of n jobs partitioned into K classes and m machines.
// Processing job j on machine i takes p_{ij} time, and a machine pays the
// setup time s_{ik} once for every class k of which it processes at least one
// job. The load of machine i under an assignment σ is
//
//	L_i = Σ_{j: σ(j)=i} p_{ij} + Σ_{k used on i} s_{ik}
//
// and the objective is to minimize the makespan max_i L_i.
//
// Four machine environments are supported (Kind): identical, uniformly
// related, restricted assignment, and unrelated. All environments are
// materialized into full processing-time and setup-time matrices so that
// algorithms can be written uniformly; environment-specific base data (job
// sizes, speeds, eligibility sets) is retained for algorithms that exploit
// it, such as the uniform-machines PTAS.
package core

import (
	"fmt"
	"math"
)

// Eps is the absolute slack used for floating-point load comparisons
// throughout the library. Generators emit integral sizes, so accumulated
// error stays far below this threshold for all supported instance sizes.
const Eps = 1e-9

// Inf marks an infeasible processing or setup time (job not eligible on the
// machine, or class that can never be set up there).
var Inf = math.Inf(1)

// Kind identifies the machine environment of an instance.
type Kind int

const (
	// Identical machines: p_{ij} = p_j and s_{ik} = s_k.
	Identical Kind = iota
	// Uniform machines: machine speeds v_i with p_{ij} = p_j/v_i and
	// s_{ik} = s_k/v_i.
	Uniform
	// RestrictedAssignment: p_{ij} ∈ {p_j, ∞} and s_{ik} ∈ {s_k, ∞}.
	RestrictedAssignment
	// Unrelated machines: arbitrary p_{ij} ≥ 0 and s_{ik} ≥ 0 (∞ allowed).
	Unrelated
)

// String returns the conventional name of the machine environment.
func (k Kind) String() string {
	switch k {
	case Identical:
		return "identical"
	case Uniform:
		return "uniform"
	case RestrictedAssignment:
		return "restricted"
	case Unrelated:
		return "unrelated"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// IsFinite reports whether x is a usable (non-infinite, non-NaN) time value.
func IsFinite(x float64) bool {
	return !math.IsInf(x, 0) && !math.IsNaN(x)
}
