package core

import (
	"fmt"
	"math"
)

// Schedule is a non-preemptive assignment of jobs to machines.
// Assign[j] = i means job j runs on machine i. Because setup times depend
// only on the machine and the class (not on the previously processed class),
// a machine can always batch its jobs class-by-class, so the assignment
// fully determines the makespan; no intra-machine order is stored.
type Schedule struct {
	Assign []int
}

// NewSchedule returns a schedule with all jobs unassigned (-1).
func NewSchedule(n int) *Schedule {
	a := make([]int, n)
	for j := range a {
		a[j] = -1
	}
	return &Schedule{Assign: a}
}

// Clone returns a deep copy of the schedule.
func (s *Schedule) Clone() *Schedule {
	return &Schedule{Assign: append([]int(nil), s.Assign...)}
}

// Complete reports whether every job is assigned to some machine.
func (s *Schedule) Complete() bool {
	for _, i := range s.Assign {
		if i < 0 {
			return false
		}
	}
	return true
}

// Loads returns the per-machine loads (processing plus one setup per class
// present on the machine) of the schedule under the given instance.
// Unassigned jobs contribute nothing.
func (s *Schedule) Loads(in *Instance) []float64 {
	loads := make([]float64, in.M)
	seen := make([]int, in.M*in.K) // 0 = unseen, 1 = setup counted
	for j, i := range s.Assign {
		if i < 0 {
			continue
		}
		loads[i] += in.P[i][j]
		k := in.Class[j]
		if seen[i*in.K+k] == 0 {
			seen[i*in.K+k] = 1
			loads[i] += in.S[i][k]
		}
	}
	return loads
}

// Makespan returns the maximum machine load. It is +Inf if any assigned job
// is infeasible on its machine and 0 for an empty schedule.
func (s *Schedule) Makespan(in *Instance) float64 {
	max := 0.0
	for _, l := range s.Loads(in) {
		if l > max {
			max = l
		}
	}
	return max
}

// SetupCount returns the total number of setups paid across all machines.
func (s *Schedule) SetupCount(in *Instance) int {
	seen := make(map[[2]int]bool)
	for j, i := range s.Assign {
		if i < 0 {
			continue
		}
		seen[[2]int{i, in.Class[j]}] = true
	}
	return len(seen)
}

// Validate checks that the schedule is a feasible complete solution for the
// instance: every job assigned to a machine in range with finite processing
// and setup time. It does not bound the makespan.
func (s *Schedule) Validate(in *Instance) error {
	if len(s.Assign) != in.N {
		return fmt.Errorf("core: schedule covers %d jobs, want %d", len(s.Assign), in.N)
	}
	for j, i := range s.Assign {
		if i < 0 || i >= in.M {
			return fmt.Errorf("core: job %d assigned to machine %d, want [0,%d)", j, i, in.M)
		}
		if !IsFinite(in.P[i][j]) {
			return fmt.Errorf("core: job %d assigned to machine %d where p=∞", j, i)
		}
		if !IsFinite(in.S[i][in.Class[j]]) {
			return fmt.Errorf("core: job %d of class %d assigned to machine %d where setup=∞", j, in.Class[j], i)
		}
	}
	return nil
}

// ValidateWithin additionally checks that the makespan is at most bound
// (with Eps slack).
func (s *Schedule) ValidateWithin(in *Instance, bound float64) error {
	if err := s.Validate(in); err != nil {
		return err
	}
	if ms := s.Makespan(in); ms > bound+Eps {
		return fmt.Errorf("core: makespan %.6g exceeds bound %.6g", ms, bound)
	}
	return nil
}

// MachineJobs returns, for each machine, the jobs assigned to it.
func (s *Schedule) MachineJobs(in *Instance) [][]int {
	out := make([][]int, in.M)
	for j, i := range s.Assign {
		if i >= 0 {
			out[i] = append(out[i], j)
		}
	}
	return out
}

// Result bundles a schedule with the makespan it achieves and the name of
// the algorithm that produced it; the experiment harness and CLI tools
// report Results.
type Result struct {
	Algorithm string
	Schedule  *Schedule
	Makespan  float64
	// LowerBound, when non-zero, is a certified lower bound on the optimal
	// makespan established by the producing algorithm (e.g. an LP value).
	LowerBound float64
	// Note, when non-empty, explains a degraded run: why a search gave up
	// early (node cap, deadline, size guard) and what that does to the
	// algorithm's guarantee. An empty Note means the algorithm ran to
	// completion with its full guarantee intact.
	Note string
	// Nodes counts the search nodes this run expanded (branch-and-bound
	// tree nodes, PTAS dynamic-program nodes); 0 for algorithms that do not
	// run a node-based search. Warm-started solves report the effort of the
	// current run, not of the run that produced any cached bounds.
	Nodes int64
	// LPIters counts the simplex pivots performed across every LP solved by
	// this run (the randomized rounding's per-guess feasibility tests); 0
	// for algorithms that solve no LPs. It is the per-backend effort metric
	// the LP-backend comparison rows of schedbench report.
	LPIters int64
}

// Ratio returns Makespan/LowerBound, or NaN when no lower bound is known.
func (r Result) Ratio() float64 {
	if r.LowerBound <= 0 {
		return math.NaN()
	}
	return r.Makespan / r.LowerBound
}
