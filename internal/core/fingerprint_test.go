package core

import (
	"bytes"
	"testing"
)

func fpInstance(t *testing.T) *Instance {
	t.Helper()
	in, err := NewUniform(
		[]float64{5, 3, 8, 2, 7},
		[]int{0, 1, 0, 2, 1},
		[]float64{2, 4, 1},
		[]float64{1, 2},
	)
	if err != nil {
		t.Fatalf("NewUniform: %v", err)
	}
	return in
}

func TestFingerprintDeterministicAndCloneStable(t *testing.T) {
	in := fpInstance(t)
	fp := in.Fingerprint()
	if len(fp) != 64 {
		t.Fatalf("fingerprint %q is not a sha256 hex digest", fp)
	}
	if got := in.Fingerprint(); got != fp {
		t.Errorf("fingerprint not deterministic: %q vs %q", got, fp)
	}
	if got := in.Clone().Fingerprint(); got != fp {
		t.Errorf("clone fingerprint differs: %q vs %q", got, fp)
	}
	// An independently-constructed identical instance matches too.
	if got := fpInstance(t).Fingerprint(); got != fp {
		t.Errorf("rebuilt instance fingerprint differs: %q vs %q", got, fp)
	}
}

func TestFingerprintRoundTripsThroughJSON(t *testing.T) {
	in := fpInstance(t)
	var buf bytes.Buffer
	if err := in.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	out, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if got, want := out.Fingerprint(), in.Fingerprint(); got != want {
		t.Errorf("JSON round trip changed the fingerprint: %q vs %q", got, want)
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := fpInstance(t).Fingerprint()

	perturbed := fpInstance(t)
	perturbed.P[1][3] += 1
	if perturbed.Fingerprint() == base {
		t.Error("changing one processing time kept the fingerprint")
	}

	setup := fpInstance(t)
	setup.S[0][2] += 1
	if setup.Fingerprint() == base {
		t.Error("changing one setup time kept the fingerprint")
	}

	class := fpInstance(t)
	class.Class[0] = 1
	if class.Fingerprint() == base {
		t.Error("changing a job class kept the fingerprint")
	}

	kind := fpInstance(t)
	kind.Kind = Identical
	if kind.Fingerprint() == base {
		t.Error("changing the machine environment kept the fingerprint")
	}
}
