package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// DeltaKind enumerates the online-workload mutations an Instance supports.
type DeltaKind int

const (
	// DeltaJobArrive adds one job at index N (the end of the job list).
	DeltaJobArrive DeltaKind = iota
	// DeltaJobDepart removes job Job; jobs above it shift down by one.
	DeltaJobDepart
	// DeltaJobResize changes the processing requirement of job Job.
	DeltaJobResize
	// DeltaMachineAdd adds one machine at index M.
	DeltaMachineAdd
	// DeltaMachineRemove removes machine Machine (a failure or drain);
	// machines above it shift down by one.
	DeltaMachineRemove
)

var deltaKindNames = [...]string{"arrive", "depart", "resize", "machine-add", "machine-remove"}

// String returns the stream-format name of the kind.
func (k DeltaKind) String() string {
	if k < 0 || int(k) >= len(deltaKindNames) {
		return fmt.Sprintf("DeltaKind(%d)", int(k))
	}
	return deltaKindNames[k]
}

// MarshalJSON encodes the kind by name so delta streams are readable.
func (k DeltaKind) MarshalJSON() ([]byte, error) {
	if k < 0 || int(k) >= len(deltaKindNames) {
		return nil, fmt.Errorf("core: cannot marshal invalid delta kind %d", int(k))
	}
	return json.Marshal(deltaKindNames[k])
}

// UnmarshalJSON decodes a kind name.
func (k *DeltaKind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for i, name := range deltaKindNames {
		if name == s {
			*k = DeltaKind(i)
			return nil
		}
	}
	return fmt.Errorf("core: unknown delta kind %q", s)
}

// Delta is one mutation of a scheduling instance: a job arriving or
// departing, a job changing size, or a machine joining or failing. Deltas
// are the unit of the online re-optimization workload — Engine.Resolve
// re-enters a warm dual search after applying one instead of solving the
// mutated instance cold.
//
// Which fields are read depends on Kind and on the machine environment of
// the instance the delta is applied to:
//
//	arrive          Class always; Size (identical/uniform/restricted),
//	                Proc = per-machine processing times (unrelated, len M),
//	                Eligible = machine indices (restricted).
//	depart          Job.
//	resize          Job; Size or Proc as for arrive.
//	machine-add     Speed (uniform; 0 means 1), Proc = per-job processing
//	                times (unrelated, len N), Setup = per-class setup times
//	                (unrelated, len K), Eligible = job indices that become
//	                eligible on the new machine (restricted).
//	machine-remove  Machine.
//
// The zero value is a job arrival of class 0 with size 0.
type Delta struct {
	Kind     DeltaKind `json:"kind"`
	Job      int       `json:"job,omitempty"`
	Machine  int       `json:"machine,omitempty"`
	Class    int       `json:"class,omitempty"`
	Size     float64   `json:"size,omitempty"`
	Speed    float64   `json:"speed,omitempty"`
	Proc     []float64 `json:"proc,omitempty"`
	Setup    []float64 `json:"setup,omitempty"`
	Eligible []int     `json:"eligible,omitempty"`
}

// ArriveJob builds a job-arrival delta for base-size environments
// (identical, uniform, restricted). For restricted instances also set
// Eligible.
func ArriveJob(class int, size float64) Delta {
	return Delta{Kind: DeltaJobArrive, Class: class, Size: size}
}

// ArriveJobUnrelated builds a job-arrival delta with per-machine processing
// times.
func ArriveJobUnrelated(class int, proc []float64) Delta {
	return Delta{Kind: DeltaJobArrive, Class: class, Proc: append([]float64(nil), proc...)}
}

// DepartJob builds a job-departure delta.
func DepartJob(job int) Delta { return Delta{Kind: DeltaJobDepart, Job: job} }

// ResizeJob builds a size-change delta for base-size environments.
func ResizeJob(job int, size float64) Delta {
	return Delta{Kind: DeltaJobResize, Job: job, Size: size}
}

// AddMachine builds a machine-addition delta. The fields are read per
// environment: speed for uniform machines (0 means 1), proc = per-job
// processing times and setup = per-class setup times for unrelated machines,
// eligible = job indices that become eligible on the new machine for
// restricted assignment.
func AddMachine(speed float64, proc, setup []float64, eligible []int) Delta {
	return Delta{
		Kind:     DeltaMachineAdd,
		Speed:    speed,
		Proc:     append([]float64(nil), proc...),
		Setup:    append([]float64(nil), setup...),
		Eligible: append([]int(nil), eligible...),
	}
}

// RemoveMachine builds a machine-failure delta.
func RemoveMachine(machine int) Delta { return Delta{Kind: DeltaMachineRemove, Machine: machine} }

// String renders the delta for diagnostics.
func (d Delta) String() string {
	switch d.Kind {
	case DeltaJobArrive:
		return fmt.Sprintf("arrive(class=%d size=%g)", d.Class, d.Size)
	case DeltaJobDepart:
		return fmt.Sprintf("depart(job=%d)", d.Job)
	case DeltaJobResize:
		return fmt.Sprintf("resize(job=%d size=%g)", d.Job, d.Size)
	case DeltaMachineAdd:
		return "machine-add"
	case DeltaMachineRemove:
		return fmt.Sprintf("machine-remove(machine=%d)", d.Machine)
	}
	return d.Kind.String()
}

// Apply returns the instance after the delta. The input is not mutated.
// The result is canonical: it is built through the same constructor as a
// from-scratch instance, so Delta.Apply(in).Fingerprint() equals the
// fingerprint of the equivalent rebuilt instance (the property the
// engine's retention layer keys on). Apply fails when the delta does not
// fit the instance (bad indices, wrong-length vectors, a removal that
// leaves a job with no machine, negative or non-finite times).
func (d Delta) Apply(in *Instance) (*Instance, error) {
	switch d.Kind {
	case DeltaJobArrive:
		return d.applyArrive(in)
	case DeltaJobDepart:
		return d.applyDepart(in)
	case DeltaJobResize:
		return d.applyResize(in)
	case DeltaMachineAdd:
		return d.applyMachineAdd(in)
	case DeltaMachineRemove:
		return d.applyMachineRemove(in)
	}
	return nil, fmt.Errorf("core: unknown delta kind %d", int(d.Kind))
}

// rebuild constructs a canonical instance of in.Kind from base data. The
// eligible lists are only consulted for restricted instances.
func rebuild(kind Kind, p []float64, class []int, s []float64, m int, speed []float64, eligible [][]int) (*Instance, error) {
	switch kind {
	case Identical:
		return NewIdentical(p, class, s, m)
	case Uniform:
		return NewUniform(p, class, s, speed)
	case RestrictedAssignment:
		return NewRestricted(p, class, s, m, eligible)
	}
	return nil, fmt.Errorf("core: rebuild does not apply to kind %v", kind)
}

// eligibleLists converts the instance's boolean eligibility rows back into
// the machine-index lists NewRestricted takes.
func eligibleLists(in *Instance) [][]int {
	lists := make([][]int, in.N)
	for j := 0; j < in.N; j++ {
		for i := 0; i < in.M; i++ {
			if in.Eligible[j][i] {
				lists[j] = append(lists[j], i)
			}
		}
	}
	return lists
}

func (d Delta) applyArrive(in *Instance) (*Instance, error) {
	if d.Class < 0 || d.Class >= in.K {
		return nil, fmt.Errorf("core: arriving job has class %d, want [0,%d)", d.Class, in.K)
	}
	class := append(append([]int(nil), in.Class...), d.Class)
	if in.Kind == Unrelated {
		if len(d.Proc) != in.M {
			return nil, fmt.Errorf("core: arriving job has %d processing times, want %d", len(d.Proc), in.M)
		}
		p := make([][]float64, in.M)
		for i := range p {
			p[i] = append(append([]float64(nil), in.P[i]...), d.Proc[i])
		}
		return NewUnrelated(p, class, in.S)
	}
	if d.Size < 0 || !IsFinite(d.Size) {
		return nil, fmt.Errorf("core: arriving job has size %v, want finite >= 0", d.Size)
	}
	p := append(append([]float64(nil), in.JobSize...), d.Size)
	var elig [][]int
	if in.Kind == RestrictedAssignment {
		if len(d.Eligible) == 0 {
			return nil, fmt.Errorf("core: arriving job has no eligible machines")
		}
		elig = append(eligibleLists(in), append([]int(nil), d.Eligible...))
	}
	return rebuild(in.Kind, p, class, in.SetupSize, in.M, in.Speed, elig)
}

func (d Delta) applyDepart(in *Instance) (*Instance, error) {
	if d.Job < 0 || d.Job >= in.N {
		return nil, fmt.Errorf("core: departing job %d, want [0,%d)", d.Job, in.N)
	}
	if in.N == 1 {
		return nil, fmt.Errorf("core: cannot depart the last job")
	}
	class := dropInt(in.Class, d.Job)
	if in.Kind == Unrelated {
		p := make([][]float64, in.M)
		for i := range p {
			p[i] = dropFloat(in.P[i], d.Job)
		}
		return NewUnrelated(p, class, in.S)
	}
	p := dropFloat(in.JobSize, d.Job)
	var elig [][]int
	if in.Kind == RestrictedAssignment {
		lists := eligibleLists(in)
		elig = append(lists[:d.Job:d.Job], lists[d.Job+1:]...)
	}
	return rebuild(in.Kind, p, class, in.SetupSize, in.M, in.Speed, elig)
}

func (d Delta) applyResize(in *Instance) (*Instance, error) {
	if d.Job < 0 || d.Job >= in.N {
		return nil, fmt.Errorf("core: resizing job %d, want [0,%d)", d.Job, in.N)
	}
	if in.Kind == Unrelated {
		if len(d.Proc) != in.M {
			return nil, fmt.Errorf("core: resized job has %d processing times, want %d", len(d.Proc), in.M)
		}
		p := make([][]float64, in.M)
		for i := range p {
			p[i] = append([]float64(nil), in.P[i]...)
			p[i][d.Job] = d.Proc[i]
		}
		return NewUnrelated(p, in.Class, in.S)
	}
	if d.Size < 0 || !IsFinite(d.Size) {
		return nil, fmt.Errorf("core: resized job has size %v, want finite >= 0", d.Size)
	}
	p := append([]float64(nil), in.JobSize...)
	p[d.Job] = d.Size
	var elig [][]int
	if in.Kind == RestrictedAssignment {
		elig = eligibleLists(in)
	}
	return rebuild(in.Kind, p, in.Class, in.SetupSize, in.M, in.Speed, elig)
}

func (d Delta) applyMachineAdd(in *Instance) (*Instance, error) {
	switch in.Kind {
	case Identical:
		return NewIdentical(in.JobSize, in.Class, in.SetupSize, in.M+1)
	case Uniform:
		v := d.Speed
		if v == 0 {
			v = 1
		}
		return NewUniform(in.JobSize, in.Class, in.SetupSize, append(append([]float64(nil), in.Speed...), v))
	case RestrictedAssignment:
		elig := eligibleLists(in)
		for _, j := range d.Eligible {
			if j < 0 || j >= in.N {
				return nil, fmt.Errorf("core: new machine eligible for job %d, want [0,%d)", j, in.N)
			}
			elig[j] = append(elig[j], in.M)
		}
		return NewRestricted(in.JobSize, in.Class, in.SetupSize, in.M+1, elig)
	case Unrelated:
		if len(d.Proc) != in.N {
			return nil, fmt.Errorf("core: new machine has %d processing times, want %d", len(d.Proc), in.N)
		}
		if len(d.Setup) != in.K {
			return nil, fmt.Errorf("core: new machine has %d setup times, want %d", len(d.Setup), in.K)
		}
		p := append(append([][]float64(nil), in.P...), d.Proc)
		s := append(append([][]float64(nil), in.S...), d.Setup)
		return NewUnrelated(p, in.Class, s)
	}
	return nil, fmt.Errorf("core: machine-add does not apply to kind %v", in.Kind)
}

func (d Delta) applyMachineRemove(in *Instance) (*Instance, error) {
	if d.Machine < 0 || d.Machine >= in.M {
		return nil, fmt.Errorf("core: removing machine %d, want [0,%d)", d.Machine, in.M)
	}
	if in.M == 1 {
		return nil, fmt.Errorf("core: cannot remove the last machine")
	}
	switch in.Kind {
	case Identical:
		return NewIdentical(in.JobSize, in.Class, in.SetupSize, in.M-1)
	case Uniform:
		return NewUniform(in.JobSize, in.Class, in.SetupSize, dropFloat(in.Speed, d.Machine))
	case RestrictedAssignment:
		lists := eligibleLists(in)
		for j, ms := range lists {
			out := ms[:0]
			for _, i := range ms {
				if i < d.Machine {
					out = append(out, i)
				} else if i > d.Machine {
					out = append(out, i-1)
				}
			}
			if len(out) == 0 {
				return nil, fmt.Errorf("core: removing machine %d leaves job %d with no eligible machine", d.Machine, j)
			}
			lists[j] = out
		}
		return NewRestricted(in.JobSize, in.Class, in.SetupSize, in.M-1, lists)
	case Unrelated:
		p := make([][]float64, 0, in.M-1)
		s := make([][]float64, 0, in.M-1)
		for i := 0; i < in.M; i++ {
			if i == d.Machine {
				continue
			}
			p = append(p, in.P[i])
			s = append(s, in.S[i])
		}
		return NewUnrelated(p, in.Class, s)
	}
	return nil, fmt.Errorf("core: machine-remove does not apply to kind %v", in.Kind)
}

func dropInt(xs []int, i int) []int {
	out := make([]int, 0, len(xs)-1)
	out = append(out, xs[:i]...)
	return append(out, xs[i+1:]...)
}

func dropFloat(xs []float64, i int) []float64 {
	out := make([]float64, 0, len(xs)-1)
	out = append(out, xs[:i]...)
	return append(out, xs[i+1:]...)
}

// RaisesOn reports whether the delta provably cannot decrease the optimal
// makespan of in: a job arriving, a machine being removed, or a job growing
// on every machine. Any certified lower bound on the optimum of in then
// carries over to Apply(in) unchanged — the monotonicity the engine's warm
// re-solve exploits. False means "no such guarantee", not "it decreases".
func (d Delta) RaisesOn(in *Instance) bool {
	switch d.Kind {
	case DeltaJobArrive, DeltaMachineRemove:
		return true
	case DeltaJobResize:
		if d.Job < 0 || d.Job >= in.N {
			return false
		}
		if in.Kind == Unrelated {
			if len(d.Proc) != in.M {
				return false
			}
			for i := 0; i < in.M; i++ {
				if d.Proc[i] < in.P[i][d.Job] {
					return false
				}
			}
			return true
		}
		return d.Size >= in.JobSize[d.Job]
	}
	return false
}

// PatchSchedule transforms a feasible schedule for the pre-delta instance
// into a feasible schedule for the post-delta instance: an arriving job is
// placed greedily on the machine minimizing the resulting completion time,
// a departing job is dropped (indices shifted), a resized job stays put, a
// new machine starts empty, and the jobs of a removed machine are re-placed
// greedily. The result is a genuine feasible witness — its makespan on
// newIn is a certified upper bound on the new optimum — or nil when prev
// does not fit oldIn or a job cannot be re-placed.
func (d Delta) PatchSchedule(prev *Schedule, oldIn, newIn *Instance) *Schedule {
	if prev == nil || len(prev.Assign) != oldIn.N {
		return nil
	}
	switch d.Kind {
	case DeltaJobArrive:
		out := &Schedule{Assign: make([]int, newIn.N)}
		copy(out.Assign, prev.Assign)
		out.Assign[newIn.N-1] = -1
		if !placeGreedy(out, newIn, newIn.N-1) {
			return nil
		}
		return out
	case DeltaJobDepart:
		out := &Schedule{Assign: dropInt(prev.Assign, d.Job)}
		return out
	case DeltaJobResize:
		return prev.Clone()
	case DeltaMachineAdd:
		return prev.Clone()
	case DeltaMachineRemove:
		out := &Schedule{Assign: make([]int, newIn.N)}
		var orphans []int
		for j, i := range prev.Assign {
			switch {
			case i == d.Machine:
				out.Assign[j] = -1
				orphans = append(orphans, j)
			case i > d.Machine:
				out.Assign[j] = i - 1
			default:
				out.Assign[j] = i
			}
		}
		for _, j := range orphans {
			if !placeGreedy(out, newIn, j) {
				return nil
			}
		}
		return out
	}
	return nil
}

// placeGreedy assigns job j (currently unassigned) to the machine that
// minimizes the resulting completion time, accounting for setups already
// open on each machine. Reports false when no machine can take the job.
func placeGreedy(s *Schedule, in *Instance, j int) bool {
	loads := make([]float64, in.M)
	open := make([]map[int]bool, in.M)
	for jj, i := range s.Assign {
		if i < 0 || jj == j {
			continue
		}
		if open[i] == nil {
			open[i] = make(map[int]bool)
		}
		k := in.Class[jj]
		if !open[i][k] {
			open[i][k] = true
			loads[i] += in.S[i][k]
		}
		loads[i] += in.P[i][jj]
	}
	best, bestLoad := -1, Inf
	k := in.Class[j]
	for i := 0; i < in.M; i++ {
		p, su := in.P[i][j], in.S[i][k]
		if !IsFinite(p) || !IsFinite(su) {
			continue
		}
		add := p
		if open[i] == nil || !open[i][k] {
			add += su
		}
		if loads[i]+add < bestLoad {
			best, bestLoad = i, loads[i]+add
		}
	}
	if best < 0 {
		return false
	}
	s.Assign[j] = best
	return true
}

// AcceptedCap lifts a pre-delta accepted makespan guess to a post-delta
// guess at which the ILP-UM relaxation provably stays feasible, or +Inf
// when the delta admits no such lift (machine removal). accepted must be a
// guess the pre-delta decision procedure accepted.
//
// The lifts are constructive: the pre-delta fractional solution remains
// feasible verbatim after a departure or a machine addition; after an
// arrival it extends by assigning the new job integrally to the machine
// minimizing p + s (raising that machine's load by at most that minimum);
// after a resize each machine's load grows by at most the largest per-
// machine increase.
func (d Delta) AcceptedCap(accepted float64, oldIn, newIn *Instance) float64 {
	if !IsFinite(accepted) || accepted <= 0 {
		return Inf
	}
	switch d.Kind {
	case DeltaJobDepart, DeltaMachineAdd:
		return accepted
	case DeltaJobArrive:
		j := newIn.N - 1
		place := Inf
		k := newIn.Class[j]
		for i := 0; i < newIn.M; i++ {
			p, su := newIn.P[i][j], newIn.S[i][k]
			if IsFinite(p) && IsFinite(su) && p+su < place {
				place = p + su
			}
		}
		return accepted + place
	case DeltaJobResize:
		if d.Job < 0 || d.Job >= oldIn.N || oldIn.M != newIn.M {
			return Inf
		}
		grow := 0.0
		for i := 0; i < oldIn.M; i++ {
			po, pn := oldIn.P[i][d.Job], newIn.P[i][d.Job]
			if !IsFinite(po) || !IsFinite(pn) {
				if IsFinite(po) != IsFinite(pn) {
					return Inf // eligibility changed; the old fractional may be invalid
				}
				continue
			}
			if delta := pn - po; delta > grow {
				grow = delta
			}
		}
		return accepted + grow
	}
	return Inf
}

// deltaStream is the on-disk form of an instance plus a delta sequence (the
// `instgen -stream` / `schedbench -online` interchange format).
type deltaStream struct {
	Instance json.RawMessage `json:"instance"`
	Deltas   []Delta         `json:"deltas"`
}

// WriteDeltaStream serializes an instance and a delta sequence as a single
// JSON document.
func WriteDeltaStream(w io.Writer, in *Instance, deltas []Delta) error {
	var buf bytes.Buffer
	if err := in.WriteJSON(&buf); err != nil {
		return err
	}
	doc := deltaStream{Instance: json.RawMessage(buf.Bytes()), Deltas: deltas}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// ReadDeltaStream parses a document written by WriteDeltaStream, validating
// that every delta applies cleanly in sequence.
func ReadDeltaStream(r io.Reader) (*Instance, []Delta, error) {
	var doc deltaStream
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, nil, err
	}
	in, err := ReadJSON(bytes.NewReader(doc.Instance))
	if err != nil {
		return nil, nil, err
	}
	cur := in
	for i, d := range doc.Deltas {
		next, err := d.Apply(cur)
		if err != nil {
			return nil, nil, fmt.Errorf("core: delta %d (%v) does not apply: %w", i, d, err)
		}
		cur = next
	}
	return in, doc.Deltas, nil
}
