// Package serve is the solver-as-a-service layer: an HTTP/JSON front end
// over a sched.Engine handle. It adds the three things the in-process
// service mode cannot provide over the wire:
//
//   - Admission control and backpressure. Requests enter a bounded queue
//     whose slots feed SolveBatch-style admission on the engine governor
//     (every admitted solve still blocks for its one guaranteed compute
//     lane). When the queue is full the request is shed with 429; when the
//     queue's drain estimate (EWMA solve time × queue depth ÷ worker
//     budget) says the request's deadline cannot be met, it is shed with
//     503 — both with a Retry-After hint — so a saturated server degrades
//     by answering fast instead of by timing everything out.
//
//   - Fingerprint-keyed request coalescing. Concurrent requests for the
//     same canonical instance fingerprint (core.Instance.Fingerprint) and
//     option digest ride one engine call: the first becomes the leader and
//     computes, the rest are followers that receive the leader's response
//     byte-for-byte without consuming a queue slot or a governor token —
//     the dedupe primitive for many-users traffic, stacked on top of the
//     engine's warm-start bound cache (coalescing dedupes concurrent
//     repeats, the cache warm-starts sequential ones).
//
//   - Anytime event streaming. Every solve's incumbent/lower-bound
//     improvements are buffered on its flight and streamed over SSE from
//     GET /v1/solve/{id}/events, ending with the terminal result event —
//     the `schedsolve -trace` prototype, over the wire.
//
// Endpoints: POST /v1/solve, POST /v1/batch, GET /v1/solve/{id},
// GET /v1/solve/{id}/events, GET /healthz, GET /statsz.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/lp"
)

// maxRequestBody bounds request bodies (a 10k-job unrelated instance is a
// few MB of JSON).
const maxRequestBody = 64 << 20

// eventResult names the terminal SSE event carrying the solve's response
// body.
const eventResult = "result"

// Config tunes a Server. Zero values select the documented defaults.
type Config struct {
	// Queue is the admission bound: the maximum number of requests
	// admitted (queued + solving) at once. Default 64.
	Queue int
	// Workers is the engine's concurrency budget, used by the drain
	// estimate. Default: the engine governor's budget, else GOMAXPROCS.
	Workers int
	// DefaultTimeout is the request deadline applied when the client sends
	// none. Default 10s.
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested deadlines. Default 60s.
	MaxTimeout time.Duration
	// Retain is how long a completed flight stays addressable by ID (for
	// GET /v1/solve/{id} and the events replay). Default 60s.
	Retain time.Duration
	// Linger widens coalescing to near-concurrent repeats: a request whose
	// key matches a flight completed at most Linger ago is served that
	// flight's response without a new engine call. Sound because solves
	// are deterministic per seed and the bound cache is monotone — a fresh
	// solve of the identical request would return the same (or the same
	// cached) result. 0 disables (strictly concurrent coalescing only).
	Linger time.Duration
	// LPBackend is the server-wide default for SolveOptions.LPBackend
	// ("dense", "sparse", "ipm", "auto"); requests that name a backend
	// override it. Applied before the coalescing key is formed, so a
	// request inheriting the default and one naming the same backend
	// explicitly coalesce. Empty defers to the engine default.
	LPBackend string
}

// withDefaults fills unset Config fields.
func (c Config) withDefaults(eng *sched.Engine) Config {
	if c.Queue <= 0 {
		c.Queue = 64
	}
	if c.Workers <= 0 {
		if b := eng.GovernorStats().Budget; b > 0 {
			c.Workers = b
		} else {
			c.Workers = runtime.GOMAXPROCS(0)
		}
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 10 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 60 * time.Second
	}
	if c.Retain <= 0 {
		c.Retain = 60 * time.Second
	}
	return c
}

// Server is the HTTP front end over one engine handle. Create with New,
// mount via Handler, stop with Drain. All methods are safe for concurrent
// use.
type Server struct {
	eng *sched.Engine
	cfg Config
	mux *http.ServeMux

	baseCtx    context.Context // parent of every flight's solve context
	cancelBase context.CancelFunc
	draining   atomic.Bool
	wg         sync.WaitGroup // in-flight leader solves and batches

	mu      sync.Mutex
	flights map[string]*flight // by coalescing key: in-flight + linger window
	byID    map[string]*flight // in-flight + retained for Retain
	depth   int                // admitted requests (queue slots held)
	ewma    float64            // EWMA of observed solve seconds
	seq     atomic.Int64       // flight ID sequence
	purge   int                // registrations since last byID purge

	received  atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	shed429   atomic.Int64
	shed503   atomic.Int64
	timeouts  atomic.Int64 // followers/waiters that hit their own deadline
	leaders   atomic.Int64
	followers atomic.Int64
}

// New builds a Server over the engine.
func New(eng *sched.Engine, cfg Config) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		eng:        eng,
		cfg:        cfg.withDefaults(eng),
		mux:        http.NewServeMux(),
		baseCtx:    ctx,
		cancelBase: cancel,
		flights:    make(map[string]*flight),
		byID:       make(map[string]*flight),
	}
	s.mux.HandleFunc("POST /v1/solve", s.handleSolve)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("GET /v1/solve/{id}", s.handleResult)
	s.mux.HandleFunc("GET /v1/solve/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /statsz", s.handleStatsz)
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain gracefully shuts the service down: new requests are shed with 503
// immediately, while admitted solves run to completion. If ctx expires
// first, in-flight solve contexts are cancelled — solvers observe
// cancellation and return their best-so-far promptly — and Drain still
// waits for them to unwind before returning ctx's error.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.cancelBase()
		<-done
		return ctx.Err()
	}
}

// --- admission --------------------------------------------------------------

// shedError carries a load-shed decision to the response writer.
type shedError struct {
	status     int
	retryAfter time.Duration
	reason     string
}

// drainEstimateLocked estimates how long a request admitted now would wait
// for the queue ahead of it to drain plus its own solve: slots-in-queue ×
// EWMA solve time ÷ worker budget. Zero until the first completion trains
// the EWMA (an idle fresh server admits everything).
func (s *Server) drainEstimateLocked(extraSlots int) time.Duration {
	if s.ewma <= 0 {
		return 0
	}
	sec := s.ewma * float64(s.depth+extraSlots) / float64(s.cfg.Workers)
	return time.Duration(sec * float64(time.Second))
}

// retryAfter rounds an estimate up to whole seconds for the Retry-After
// header, minimum 1.
func retryAfter(d time.Duration) time.Duration {
	if d < time.Second {
		return time.Second
	}
	return time.Duration(math.Ceil(d.Seconds())) * time.Second
}

// admitOrJoin resolves a solve request against the coalescing map and the
// admission bound, atomically: join an existing flight as a follower
// (free), or admit a new leader flight holding one queue slot, or shed.
func (s *Server) admitOrJoin(key string, timeout time.Duration) (f *flight, leader bool, shed *shedError) {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if f := s.flights[key]; f != nil {
		if !f.isDone() {
			return f, false, nil
		}
		if s.cfg.Linger > 0 && now.Sub(f.doneAt) <= s.cfg.Linger {
			return f, false, nil
		}
		delete(s.flights, key)
	}
	if s.depth >= s.cfg.Queue {
		return nil, false, &shedError{
			status:     http.StatusTooManyRequests,
			retryAfter: retryAfter(s.drainEstimateLocked(0)),
			reason:     fmt.Sprintf("queue full (%d/%d admitted)", s.depth, s.cfg.Queue),
		}
	}
	if est := s.drainEstimateLocked(1); est > timeout {
		return nil, false, &shedError{
			status:     http.StatusServiceUnavailable,
			retryAfter: retryAfter(est - timeout),
			reason: fmt.Sprintf("deadline %s not meetable: queue drain estimate %s (%d admitted, EWMA solve %s)",
				timeout, est.Round(time.Millisecond), s.depth, time.Duration(s.ewma*float64(time.Second)).Round(time.Millisecond)),
		}
	}
	s.depth++
	f = s.newFlightLocked(key)
	return f, true, nil
}

// admitBatch reserves slots queue slots for a batch (no coalescing), or
// sheds.
func (s *Server) admitBatch(slots int, timeout time.Duration) *shedError {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.depth+slots > s.cfg.Queue {
		return &shedError{
			status:     http.StatusTooManyRequests,
			retryAfter: retryAfter(s.drainEstimateLocked(0)),
			reason:     fmt.Sprintf("queue cannot hold batch of %d (%d/%d admitted)", slots, s.depth, s.cfg.Queue),
		}
	}
	// The batch's per-instance deadline starts at worker pickup, but the
	// whole batch shares the request's wall-clock patience: shed when even
	// the first instance would start after the deadline.
	if est := s.drainEstimateLocked(slots); est > timeout {
		return &shedError{
			status:     http.StatusServiceUnavailable,
			retryAfter: retryAfter(est - timeout),
			reason:     fmt.Sprintf("deadline %s not meetable for batch of %d: drain estimate %s", timeout, slots, est.Round(time.Millisecond)),
		}
	}
	s.depth += slots
	return nil
}

// releaseSlots returns queue slots and trains the EWMA with an observed
// per-solve duration.
func (s *Server) releaseSlots(slots int, solveTime time.Duration, ok bool) {
	s.mu.Lock()
	s.depth -= slots
	if s.depth < 0 {
		s.depth = 0
	}
	if ok && solveTime > 0 {
		sec := solveTime.Seconds()
		if s.ewma <= 0 {
			s.ewma = sec
		} else {
			s.ewma = 0.8*s.ewma + 0.2*sec
		}
	}
	s.mu.Unlock()
}

// newFlightLocked registers a fresh flight under both maps and lazily
// purges retained flights past their window. Caller holds s.mu.
func (s *Server) newFlightLocked(key string) *flight {
	id := fmt.Sprintf("s%d", s.seq.Add(1))
	f := newFlight(id, key)
	s.flights[key] = f
	s.byID[id] = f
	if s.purge++; s.purge >= 64 {
		s.purge = 0
		cut := time.Now().Add(-s.cfg.Retain)
		for id, old := range s.byID {
			if old.isDone() && old.doneAt.Before(cut) {
				delete(s.byID, id)
				if s.flights[old.key] == old {
					delete(s.flights, old.key)
				}
			}
		}
	}
	return f
}

// requestTimeout resolves the request deadline: the JSON timeout field,
// else the X-Request-Deadline header (a Go duration like "500ms", or an
// RFC 3339 instant), else the server default; always capped at MaxTimeout.
func (s *Server) requestTimeout(opt Duration, hdr string) (time.Duration, error) {
	d := time.Duration(opt)
	if d == 0 && hdr != "" {
		if dd, err := time.ParseDuration(hdr); err == nil {
			d = dd
		} else if t, err2 := time.Parse(time.RFC3339, hdr); err2 == nil {
			d = time.Until(t)
		} else {
			return 0, fmt.Errorf("serve: X-Request-Deadline %q is neither a duration nor an RFC 3339 time", hdr)
		}
		if d <= 0 {
			// An already-expired explicit deadline: admissible only as an
			// immediate shed (the drain estimate can never meet it).
			return -1, nil
		}
	}
	if d <= 0 {
		d = s.cfg.DefaultTimeout
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d, nil
}

// --- handlers ---------------------------------------------------------------

// handleSolve serves POST /v1/solve: parse, coalesce-or-admit, then solve
// (leader) or wait (follower).
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	s.received.Add(1)
	if s.draining.Load() {
		s.writeShed(w, &shedError{status: http.StatusServiceUnavailable, retryAfter: time.Second, reason: "server is draining"})
		return
	}
	var req SolveRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	if len(req.Instance) == 0 {
		s.writeError(w, http.StatusBadRequest, `missing "instance"`, "")
		return
	}
	in, err := sched.ReadInstance(bytes.NewReader(req.Instance))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error(), "")
		return
	}
	timeout, err := s.requestTimeout(req.Options.Timeout, r.Header.Get("X-Request-Deadline"))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error(), "")
		return
	}
	if timeout < 0 {
		s.writeShed(w, &shedError{status: http.StatusServiceUnavailable, retryAfter: time.Second, reason: "request deadline already expired"})
		return
	}
	if req.Options.LPBackend == "" {
		req.Options.LPBackend = s.cfg.LPBackend
	}

	key := in.Fingerprint() + "|" + req.Options.digest()
	f, leader, shed := s.admitOrJoin(key, timeout)
	if shed != nil {
		s.writeShed(w, shed)
		return
	}
	if leader {
		s.leaders.Add(1)
		s.wg.Add(1)
		go s.runFlight(f, in, req.Options, timeout)
	} else {
		s.followers.Add(1)
		f.followers.Add(1)
	}
	w.Header().Set("X-Solve-ID", f.id)
	if leader {
		w.Header().Set("X-Coalesce", "leader")
	} else {
		w.Header().Set("X-Coalesce", "follower")
	}
	if req.Async {
		s.writeJSON(w, http.StatusAccepted, asyncBody{ID: f.id, Status: "running", Events: "/v1/solve/" + f.id + "/events"})
		return
	}
	// Wait for the flight under this request's own deadline. The small
	// grace lets a flight bounded by the same deadline deliver its
	// best-so-far result instead of racing the waiter's timer.
	timer := time.NewTimer(timeout + 100*time.Millisecond)
	defer timer.Stop()
	select {
	case <-f.done:
		s.writeFlight(w, f)
	case <-timer.C:
		s.timeouts.Add(1)
		s.writeError(w, http.StatusGatewayTimeout, "deadline exceeded waiting for the coalesced result", f.id)
	case <-r.Context().Done():
		// Client went away; the flight keeps computing for its followers
		// and the bound cache.
	}
}

// runFlight owns one engine solve: it runs detached from the leader's HTTP
// request (a disconnected leader must not cancel its followers' shared
// computation), pumps the solve's anytime events into the flight, and
// publishes the response bytes every rider of the flight returns.
func (s *Server) runFlight(f *flight, in *sched.Instance, o SolveOptions, timeout time.Duration) {
	defer s.wg.Done()
	ctx, cancel := context.WithTimeout(s.baseCtx, timeout)
	defer cancel()

	evCh := make(chan sched.Event, 256)
	quit := make(chan struct{})
	pumpDone := make(chan struct{})
	go func() {
		defer close(pumpDone)
		for {
			select {
			case ev := <-evCh:
				f.publish(encodeEvent(ev))
			case <-quit:
				for {
					select {
					case ev := <-evCh:
						f.publish(encodeEvent(ev))
					default:
						return
					}
				}
			}
		}
	}()

	start := time.Now()
	opts := append(o.engineOpts(), sched.WithEvents(evCh))
	res, err := s.eng.Solve(ctx, in, opts...)
	elapsed := time.Since(start)
	close(quit)
	<-pumpDone

	var status int
	var body []byte
	if err != nil {
		status = http.StatusInternalServerError
		if errors.Is(err, context.DeadlineExceeded) {
			status = http.StatusGatewayTimeout
		} else if errors.Is(err, context.Canceled) {
			status = http.StatusServiceUnavailable
		}
		body, _ = json.Marshal(errorBody{Error: err.Error(), ID: f.id})
		s.failed.Add(1)
	} else {
		status = http.StatusOK
		body, _ = json.Marshal(SolveResponse{
			ID:         f.id,
			Algorithm:  res.Algorithm,
			Machine:    res.Schedule.Assign,
			Makespan:   res.Makespan,
			LowerBound: res.LowerBound,
			Note:       res.Note,
			ElapsedMs:  float64(elapsed) / float64(time.Millisecond),
		})
		s.completed.Add(1)
	}
	s.finishFlight(f, status, body, elapsed, err == nil)
}

// finishFlight seals the flight: response set, terminal event published,
// queue slot returned, waiters released. The key map entry survives for
// the linger window (purged lazily by the next lookup); without linger it
// is dropped now so the next identical request solves fresh against the
// warm cache.
func (s *Server) finishFlight(f *flight, status int, body []byte, elapsed time.Duration, ok bool) {
	f.status = status
	f.body = body
	f.elapsed = elapsed
	f.doneAt = time.Now()
	f.publish(sseEvent{Name: eventResult, Data: body})
	if s.cfg.Linger <= 0 {
		s.mu.Lock()
		if s.flights[f.key] == f {
			delete(s.flights, f.key)
		}
		s.mu.Unlock()
	}
	s.releaseSlots(1, elapsed, ok)
	close(f.done)
}

// handleBatch serves POST /v1/batch through Engine.SolveBatch: one queue
// slot per instance, per-instance deadlines, no coalescing (batch entries
// warm-start each other through the engine's fingerprint cache instead).
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.received.Add(1)
	if s.draining.Load() {
		s.writeShed(w, &shedError{status: http.StatusServiceUnavailable, retryAfter: time.Second, reason: "server is draining"})
		return
	}
	var req BatchRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	if len(req.Instances) == 0 {
		s.writeError(w, http.StatusBadRequest, `missing "instances"`, "")
		return
	}
	ins := make([]*sched.Instance, len(req.Instances))
	for i, raw := range req.Instances {
		in, err := sched.ReadInstance(bytes.NewReader(raw))
		if err != nil {
			s.writeError(w, http.StatusBadRequest, fmt.Sprintf("instance %d: %v", i, err), "")
			return
		}
		ins[i] = in
	}
	timeout, err := s.requestTimeout(req.Options.Timeout, r.Header.Get("X-Request-Deadline"))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error(), "")
		return
	}
	if timeout < 0 {
		s.writeShed(w, &shedError{status: http.StatusServiceUnavailable, retryAfter: time.Second, reason: "request deadline already expired"})
		return
	}
	if shed := s.admitBatch(len(ins), timeout); shed != nil {
		s.writeShed(w, shed)
		return
	}
	if req.Options.LPBackend == "" {
		req.Options.LPBackend = s.cfg.LPBackend
	}
	s.wg.Add(1)
	defer s.wg.Done()

	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	go func() { // a disconnected client cancels its (uncoalesced) batch
		select {
		case <-r.Context().Done():
			cancel()
		case <-ctx.Done():
		}
	}()

	start := time.Now()
	opts := append(req.Options.engineOpts(), sched.WithTimeout(timeout))
	results := s.eng.SolveBatch(ctx, ins, opts...)
	wall := time.Since(start)

	resp := BatchResponse{Results: make([]BatchItem, len(results))}
	okCount := 0
	for i, br := range results {
		item := BatchItem{ElapsedMs: float64(br.Elapsed) / float64(time.Millisecond)}
		if br.Err != nil {
			item.Error = br.Err.Error()
			s.failed.Add(1)
		} else {
			item.Algorithm = br.Result.Algorithm
			item.Machine = br.Result.Schedule.Assign
			item.Makespan = br.Result.Makespan
			item.LowerBound = br.Result.LowerBound
			item.Note = br.Result.Note
			okCount++
			s.completed.Add(1)
		}
		resp.Results[i] = item
	}
	avg := time.Duration(0)
	if okCount > 0 {
		avg = wall / time.Duration(okCount)
	}
	s.releaseSlots(len(ins), avg, okCount > 0)
	s.writeJSON(w, http.StatusOK, resp)
}

// handleResult serves GET /v1/solve/{id}: the flight's response if done,
// else 202.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	f := s.flightByID(r.PathValue("id"))
	if f == nil {
		s.writeError(w, http.StatusNotFound, "unknown or expired solve id", "")
		return
	}
	w.Header().Set("X-Solve-ID", f.id)
	if !f.isDone() {
		s.writeJSON(w, http.StatusAccepted, asyncBody{ID: f.id, Status: "running", Events: "/v1/solve/" + f.id + "/events"})
		return
	}
	s.writeFlight(w, f)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	code := http.StatusOK
	if s.draining.Load() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	s.writeJSON(w, code, map[string]string{"status": status})
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.Stats())
}

// flightByID looks a flight up in the retention map.
func (s *Server) flightByID(id string) *flight {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.byID[id]
}

// --- stats ------------------------------------------------------------------

// QueueStats describes the admission queue's live state.
type QueueStats struct {
	// Depth is the number of requests currently admitted (queued or
	// solving); Capacity is the admission bound.
	Depth, Capacity int
	// EWMASolveMs is the drain estimator's exponentially-weighted average
	// of observed solve times, in milliseconds.
	EWMASolveMs float64
}

// RequestStats counts request outcomes since the server started.
type RequestStats struct {
	Received, Completed, Failed int64
	// Shed429 counts queue-full rejections, Shed503 deadline-unmeetable
	// (and draining) rejections; both carried a Retry-After.
	Shed429, Shed503 int64
	// Timeouts counts requests whose own deadline expired while waiting
	// for a (coalesced) flight.
	Timeouts int64
}

// CoalesceStats counts how solve traffic mapped onto engine calls.
type CoalesceStats struct {
	// Leaders is the number of engine solves started; Followers the number
	// of requests that rode an existing flight (the work the coalescer
	// saved).
	Leaders, Followers int64
}

// Stats is the /statsz document.
type Stats struct {
	Queue    QueueStats                `json:"queue"`
	Requests RequestStats              `json:"requests"`
	Coalesce CoalesceStats             `json:"coalesce"`
	Cache    sched.CacheStats          `json:"cache"`
	Governor sched.GovernorStats       `json:"governor"`
	Presolve lp.PresolveTotalsSnapshot `json:"presolve"`
	Draining bool                      `json:"draining"`
}

// Stats snapshots the server's counters plus the engine's cache and
// governor statistics.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	q := QueueStats{Depth: s.depth, Capacity: s.cfg.Queue, EWMASolveMs: s.ewma * 1000}
	s.mu.Unlock()
	return Stats{
		Queue: q,
		Requests: RequestStats{
			Received:  s.received.Load(),
			Completed: s.completed.Load(),
			Failed:    s.failed.Load(),
			Shed429:   s.shed429.Load(),
			Shed503:   s.shed503.Load(),
			Timeouts:  s.timeouts.Load(),
		},
		Coalesce: CoalesceStats{Leaders: s.leaders.Load(), Followers: s.followers.Load()},
		Cache:    s.eng.CacheStats(),
		Governor: s.eng.GovernorStats(),
		Presolve: lp.PresolveTotals(),
		Draining: s.draining.Load(),
	}
}

// --- response helpers -------------------------------------------------------

// readJSON decodes the request body into v, answering 400 on failure.
func (s *Server) readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	body := http.MaxBytesReader(w, r.Body, maxRequestBody)
	dec := json.NewDecoder(body)
	if err := dec.Decode(v); err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error(), "")
		return false
	}
	return true
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, status int, msg, id string) {
	s.writeJSON(w, status, errorBody{Error: msg, ID: id})
}

// writeShed answers a load-shed decision with its Retry-After hint and
// counts it.
func (s *Server) writeShed(w http.ResponseWriter, shed *shedError) {
	if shed.status == http.StatusTooManyRequests {
		s.shed429.Add(1)
	} else {
		s.shed503.Add(1)
	}
	w.Header().Set("Retry-After", strconv.Itoa(int(shed.retryAfter/time.Second)))
	s.writeJSON(w, shed.status, errorBody{Error: shed.reason})
}

// writeFlight writes a completed flight's sealed response verbatim — every
// rider of a flight answers with the same bytes.
func (s *Server) writeFlight(w http.ResponseWriter, f *flight) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(f.status)
	_, _ = w.Write(f.body)
}

// encodeEvent renders one engine event as an SSE payload.
func encodeEvent(ev sched.Event) sseEvent {
	data, _ := json.Marshal(struct {
		Value float64 `json:"value"`
		AtMs  float64 `json:"atMs"`
	}{ev.Value, float64(ev.At) / float64(time.Millisecond)})
	return sseEvent{Name: ev.Kind.String(), Data: data}
}
