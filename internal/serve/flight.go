package serve

import (
	"sync"
	"sync/atomic"
	"time"
)

// maxFlightEvents bounds the per-flight event replay buffer. A dual search
// emits tens of bound improvements, a long portfolio race maybe a few
// hundred; past the cap older context is less valuable than bounded memory,
// so further progress events are dropped from the buffer (live subscribers
// still receive them). The terminal result event is always appended.
const maxFlightEvents = 1024

// sseEvent is one server-sent event: a name ("incumbent", "lower-bound",
// "result") and its pre-encoded JSON data line.
type sseEvent struct {
	Name string
	Data []byte
}

// flight is one in-flight (or recently completed) solve computation: the
// unit requests coalesce onto. The first request for a coalescing key
// becomes the leader and owns the engine call; every later request for the
// same key while the flight is live becomes a follower, sharing the
// leader's eventual response bytes. The flight also carries the solve's
// anytime event stream for SSE subscribers, with a replay buffer so a
// subscriber attaching mid-solve (or after completion, within the
// retention window) sees the full bound trajectory.
type flight struct {
	id  string
	key string

	// done is closed by finishFlight after status/body/elapsed/doneAt are
	// set; they are immutable afterwards, so waiters read them without
	// locking.
	done    chan struct{}
	status  int
	body    []byte
	elapsed time.Duration
	doneAt  time.Time

	followers atomic.Int64

	mu     sync.Mutex
	events []sseEvent
	subs   map[chan sseEvent]struct{}
}

func newFlight(id, key string) *flight {
	return &flight{id: id, key: key, done: make(chan struct{}), subs: make(map[chan sseEvent]struct{})}
}

// isDone reports whether the flight has completed (its response is set).
func (f *flight) isDone() bool {
	select {
	case <-f.done:
		return true
	default:
		return false
	}
}

// publish appends the event to the replay buffer and fans it out to live
// subscribers. Sends never block: a subscriber that falls behind its buffer
// misses intermediate improvements (the SSE handler reconstructs the
// terminal result from the flight itself, so the final answer is never
// lost).
func (f *flight) publish(ev sseEvent) {
	f.mu.Lock()
	if len(f.events) < maxFlightEvents || ev.Name == eventResult {
		f.events = append(f.events, ev)
	}
	for ch := range f.subs {
		select {
		case ch <- ev:
		default:
		}
	}
	f.mu.Unlock()
}

// subscribe registers a live subscriber and returns the events published so
// far. Registration and the replay snapshot are atomic under the flight
// lock, so no event is missed or duplicated between replay and the channel.
func (f *flight) subscribe() (replay []sseEvent, ch chan sseEvent, cancel func()) {
	ch = make(chan sseEvent, 64)
	f.mu.Lock()
	replay = append([]sseEvent(nil), f.events...)
	f.subs[ch] = struct{}{}
	f.mu.Unlock()
	var once sync.Once
	cancel = func() {
		once.Do(func() {
			f.mu.Lock()
			delete(f.subs, ch)
			f.mu.Unlock()
		})
	}
	return replay, ch, cancel
}
