package serve

import (
	"fmt"
	"net/http"
)

// handleEvents serves GET /v1/solve/{id}/events: the solve's anytime bound
// trajectory as server-sent events. Buffered history is replayed first, so
// a subscriber attaching mid-solve (or within the retention window after
// completion) sees every improvement; the stream then follows the solve
// live and ends with the terminal "result" event carrying the response
// body. Event names are "incumbent" (improved feasible makespan),
// "lower-bound" (improved certified bound) and "result".
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	f := s.flightByID(r.PathValue("id"))
	if f == nil {
		s.writeError(w, http.StatusNotFound, "unknown or expired solve id", "")
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.writeError(w, http.StatusInternalServerError, "response writer does not support streaming", f.id)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Solve-ID", f.id)
	w.WriteHeader(http.StatusOK)

	replay, ch, cancel := f.subscribe()
	defer cancel()
	write := func(ev sseEvent) {
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Name, ev.Data)
	}
	for _, ev := range replay {
		write(ev)
		if ev.Name == eventResult {
			flusher.Flush()
			return
		}
	}
	flusher.Flush()

	for {
		select {
		case ev := <-ch:
			write(ev)
			flusher.Flush()
			if ev.Name == eventResult {
				return
			}
		case <-f.done:
			// The flight sealed. The subscriber channel may have buffered
			// events (or have dropped some under pressure): drain what is
			// there, then guarantee the terminal event from the sealed
			// response itself.
			for {
				select {
				case ev := <-ch:
					if ev.Name == eventResult {
						write(ev)
						flusher.Flush()
						return
					}
					write(ev)
				default:
					write(sseEvent{Name: eventResult, Data: f.body})
					flusher.Flush()
					return
				}
			}
		case <-r.Context().Done():
			return
		}
	}
}
