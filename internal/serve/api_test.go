package serve

import (
	"encoding/json"
	"testing"
	"time"
)

func TestDurationUnmarshal(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want time.Duration
		bad  bool
	}{
		{in: `"1.5s"`, want: 1500 * time.Millisecond},
		{in: `"250ms"`, want: 250 * time.Millisecond},
		{in: `2000000000`, want: 2 * time.Second}, // time.Duration's native shape
		{in: `"soon"`, bad: true},
		{in: `true`, bad: true},
	} {
		var d Duration
		err := json.Unmarshal([]byte(tc.in), &d)
		if tc.bad {
			if err == nil {
				t.Errorf("%s: unmarshalled to %v, want error", tc.in, time.Duration(d))
			}
			continue
		}
		if err != nil || time.Duration(d) != tc.want {
			t.Errorf("%s: got %v, %v; want %v", tc.in, time.Duration(d), err, tc.want)
		}
	}
	// Round trip through the marshalled form.
	b, err := json.Marshal(Duration(90 * time.Second))
	if err != nil || string(b) != `"1m30s"` {
		t.Errorf("marshal = %s, %v", b, err)
	}
}

func TestOptionDigest(t *testing.T) {
	base := SolveOptions{Algorithm: "ptas", Eps: 0.25}
	if base.digest() != (SolveOptions{Algorithm: "ptas", Eps: 0.25}).digest() {
		t.Error("identical options produced different digests")
	}
	// Every result-relevant field must split the digest…
	for name, other := range map[string]SolveOptions{
		"algorithm":   {Algorithm: "lpt", Eps: 0.25},
		"portfolio":   {Algorithm: "ptas", Eps: 0.25, Portfolio: true},
		"eps":         {Algorithm: "ptas", Eps: 0.5},
		"gap":         {Algorithm: "ptas", Eps: 0.25, Gap: 0.1},
		"precision":   {Algorithm: "ptas", Eps: 0.25, Precision: 0.01},
		"seed":        {Algorithm: "ptas", Eps: 0.25, Seed: 7},
		"localSearch": {Algorithm: "ptas", Eps: 0.25, LocalSearch: true},
		"lpBackend":   {Algorithm: "ptas", Eps: 0.25, LPBackend: "ipm"},
	} {
		if base.digest() == other.digest() {
			t.Errorf("digest ignores %s", name)
		}
	}
	// …and Timeout must not: deadlines never split coalescing.
	withTimeout := base
	withTimeout.Timeout = Duration(3 * time.Second)
	if base.digest() != withTimeout.digest() {
		t.Error("digest includes Timeout — identical requests with different deadlines would stop coalescing")
	}
}
