package serve

import (
	"encoding/json"
	"fmt"
	"time"

	"repro"
)

// SolveRequest is the body of POST /v1/solve: one instance in the library's
// JSON format (the `instgen` output, core.Instance.WriteJSON) plus solve
// options. With Async true the server responds 202 with the solve ID as
// soon as the request is admitted (or coalesced onto an in-flight solve);
// the result is then delivered as the terminal event of
// GET /v1/solve/{id}/events or fetched from GET /v1/solve/{id}.
type SolveRequest struct {
	Instance json.RawMessage `json:"instance"`
	Options  SolveOptions    `json:"options"`
	Async    bool            `json:"async,omitempty"`
}

// BatchRequest is the body of POST /v1/batch: many instances solved through
// Engine.SolveBatch under one shared option set. Options.Timeout is per
// instance (the SolveBatch contract), not for the whole batch.
type BatchRequest struct {
	Instances []json.RawMessage `json:"instances"`
	Options   SolveOptions      `json:"options"`
}

// SolveOptions is the wire form of the engine's per-call options. Timeout
// participates in admission control (the request is shed when the queue's
// drain estimate exceeds it) but not in the coalescing key: two identical
// instances with different deadlines still share one computation, bounded
// by the leader's deadline.
type SolveOptions struct {
	// Algorithm names a registered solver (see `schedsolve -list-algos`);
	// empty selects the strongest applicable one.
	Algorithm string `json:"algorithm,omitempty"`
	// Portfolio races every applicable solver and keeps the best schedule.
	Portfolio bool `json:"portfolio,omitempty"`
	// Eps is the PTAS accuracy parameter (0 = solver default).
	Eps float64 `json:"eps,omitempty"`
	// Gap early-terminates portfolio races at this optimality gap.
	Gap float64 `json:"gap,omitempty"`
	// Precision is the dual-search precision (0 = solver default).
	Precision float64 `json:"precision,omitempty"`
	// Seed drives randomized solvers (0 = fixed default stream).
	Seed int64 `json:"seed,omitempty"`
	// LocalSearch post-optimizes with best-improvement descent.
	LocalSearch bool `json:"localSearch,omitempty"`
	// LPBackend selects the LP backend for solvers that run feasibility
	// LPs: "dense", "sparse", "ipm", or "auto" (size-triggered
	// interior-point). Empty inherits the server's -lp default, then the
	// engine default. Participates in the coalescing key: solves on
	// different backends never share a computation.
	LPBackend string `json:"lpBackend,omitempty"`
	// Timeout is the request deadline as a Go duration string ("500ms",
	// "2s"); it covers queueing, engine admission and solving. The
	// X-Request-Deadline header is the field's header-borne alternative;
	// the JSON field wins when both are given. 0 selects the server
	// default.
	Timeout Duration `json:"timeout,omitempty"`
}

// digest canonicalizes the result-relevant options into the coalescing key
// suffix: requests coalesce only when both the instance fingerprint and
// this digest match, so an eps=0.1 PTAS request never rides an eps=0.5
// leader. Timeout is deliberately excluded (see SolveOptions).
func (o SolveOptions) digest() string {
	return fmt.Sprintf("algo=%s pf=%t eps=%g gap=%g prec=%g seed=%d ls=%t lp=%s",
		o.Algorithm, o.Portfolio, o.Eps, o.Gap, o.Precision, o.Seed, o.LocalSearch, o.LPBackend)
}

// engineOpts translates the wire options into engine call options. Zero
// values stay unset so the engine's own defaults (and WithDefaults policy)
// apply.
func (o SolveOptions) engineOpts() []sched.SolveOption {
	var opts []sched.SolveOption
	if o.Algorithm != "" {
		opts = append(opts, sched.WithAlgorithm(o.Algorithm))
	}
	if o.Portfolio {
		opts = append(opts, sched.WithPortfolio())
	}
	if o.Eps > 0 {
		opts = append(opts, sched.WithEps(o.Eps))
	}
	if o.Gap > 0 {
		opts = append(opts, sched.WithGap(o.Gap))
	}
	if o.Precision > 0 {
		opts = append(opts, sched.WithPrecision(o.Precision))
	}
	if o.Seed != 0 {
		opts = append(opts, sched.WithSeed(o.Seed))
	}
	if o.LocalSearch {
		opts = append(opts, sched.WithLocalSearch(true))
	}
	if o.LPBackend != "" {
		opts = append(opts, sched.WithLPBackend(o.LPBackend))
	}
	return opts
}

// SolveResponse is the body of a completed solve: the schedule, its
// makespan and the certified lower bound, plus the solve ID the events
// endpoint accepts. Coalesced followers receive the leader's response
// byte-for-byte; whether a response was computed or ridden is reported in
// the X-Coalesce header ("leader" / "follower"), never in the body.
type SolveResponse struct {
	ID         string  `json:"id"`
	Algorithm  string  `json:"algorithm"`
	Machine    []int   `json:"machine"`
	Makespan   float64 `json:"makespan"`
	LowerBound float64 `json:"lowerBound,omitempty"`
	Note       string  `json:"note,omitempty"`
	ElapsedMs  float64 `json:"elapsedMs"`
}

// BatchResponse is the body of POST /v1/batch, index-aligned with the
// request's instances.
type BatchResponse struct {
	Results []BatchItem `json:"results"`
}

// BatchItem is one instance's outcome inside a batch. Error, when set, is a
// per-instance failure (a solver error or the instance's deadline); the
// other fields are then zero.
type BatchItem struct {
	Algorithm  string  `json:"algorithm,omitempty"`
	Machine    []int   `json:"machine,omitempty"`
	Makespan   float64 `json:"makespan,omitempty"`
	LowerBound float64 `json:"lowerBound,omitempty"`
	Note       string  `json:"note,omitempty"`
	ElapsedMs  float64 `json:"elapsedMs"`
	Error      string  `json:"error,omitempty"`
}

// errorBody is the JSON error envelope of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
	ID    string `json:"id,omitempty"`
}

// asyncBody is the 202 response of an async solve submission.
type asyncBody struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	Events string `json:"events"`
}

// Duration marshals as a Go duration string ("1.5s") and unmarshals either
// that or a bare number of nanoseconds (time.Duration's native JSON shape).
type Duration time.Duration

// MarshalJSON encodes the duration as its Go string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON decodes a duration string or a nanosecond count.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		dd, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("serve: bad duration %q: %w", s, err)
		}
		*d = Duration(dd)
		return nil
	}
	var ns int64
	if err := json.Unmarshal(b, &ns); err != nil {
		return fmt.Errorf("serve: duration must be a string like \"2s\" or nanoseconds")
	}
	*d = Duration(ns)
	return nil
}
