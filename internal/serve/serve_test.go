package serve_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro"
	"repro/internal/serve"
)

// testHarness bundles an engine with an instrumented solver behind a test
// HTTP server. The solver counts invocations (the coalescing assertion),
// optionally blocks on a gate until the test releases it, and publishes a
// couple of bound improvements for the SSE tests.
type testHarness struct {
	srv     *serve.Server
	ts      *httptest.Server
	calls   atomic.Int64
	gate    chan struct{} // nil = no gating; else solves block until closed
	started chan struct{} // closed when the first gated solve begins
	delay   time.Duration
}

func newHarness(t *testing.T, workers int, cfg serve.Config, gated bool, delay time.Duration) *testHarness {
	t.Helper()
	h := &testHarness{delay: delay}
	if gated {
		h.gate = make(chan struct{})
		h.started = make(chan struct{})
	}
	var startOnce sync.Once
	solver := sched.NewSolver("probe",
		sched.SolverCaps{Kinds: []sched.Kind{sched.Identical}, Guarantee: "none", Priority: 1},
		func(ctx context.Context, in *sched.Instance, opt sched.SolveOptions) (sched.Result, error) {
			h.calls.Add(1)
			if opt.Bounds != nil {
				opt.Bounds.PublishUpper(float64(10 * in.N))
				opt.Bounds.PublishLower(1)
			}
			if h.gate != nil {
				startOnce.Do(func() { close(h.started) })
				select {
				case <-h.gate:
				case <-ctx.Done():
					return sched.Result{}, ctx.Err()
				}
			}
			if h.delay > 0 {
				select {
				case <-time.After(h.delay):
				case <-ctx.Done():
					return sched.Result{}, ctx.Err()
				}
			}
			sch := &sched.Schedule{Assign: make([]int, in.N)}
			if opt.Bounds != nil {
				opt.Bounds.PublishUpper(float64(in.N))
			}
			return sched.Result{Algorithm: "probe", Schedule: sch, Makespan: float64(in.N), LowerBound: 1}, nil
		})
	reg := sched.NewRegistry()
	if err := reg.Register(solver); err != nil {
		t.Fatal(err)
	}
	eng, err := sched.New(sched.WithRegistry(reg), sched.WithWorkers(workers))
	if err != nil {
		t.Fatal(err)
	}
	h.srv = serve.New(eng, cfg)
	h.ts = httptest.NewServer(h.srv.Handler())
	t.Cleanup(h.ts.Close)
	return h
}

// instanceBody builds a /v1/solve request body for an identical-machines
// instance with n unit jobs (n also distinguishes instances: different n →
// different fingerprint).
func instanceBody(t *testing.T, n int, opts serve.SolveOptions, async bool) []byte {
	t.Helper()
	p := make([]float64, n)
	class := make([]int, n)
	for i := range p {
		p[i] = 1
	}
	in, err := sched.NewIdentical(p, class, []float64{1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	var instJSON bytes.Buffer
	if err := in.WriteJSON(&instJSON); err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(serve.SolveRequest{Instance: instJSON.Bytes(), Options: opts, Async: async})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func postSolve(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestCoalesceSingleSolve is the coalescing contract end to end: N
// concurrent identical POSTs produce exactly one engine solve, and every
// response carries the leader's bytes verbatim.
func TestCoalesceSingleSolve(t *testing.T) {
	const clients = 16
	h := newHarness(t, 2, serve.Config{Queue: 4}, true, 0)

	body := instanceBody(t, 6, serve.SolveOptions{Timeout: serve.Duration(5 * time.Second)}, false)
	type reply struct {
		status   int
		coalesce string
		data     []byte
	}
	replies := make(chan reply, clients)
	for i := 0; i < clients; i++ {
		go func() {
			resp, data := postSolve(t, h.ts.URL, body)
			replies <- reply{resp.StatusCode, resp.Header.Get("X-Coalesce"), data}
		}()
	}
	// Every request has joined the flight (leader counted + 15 followers)
	// before the solver is released — the coalescing window is guaranteed
	// open, not timing-dependent.
	<-h.started
	waitFor(t, "all requests to join the flight", func() bool {
		st := h.srv.Stats()
		return st.Coalesce.Leaders+st.Coalesce.Followers == clients
	})
	close(h.gate)

	var leaderN int
	var first []byte
	for i := 0; i < clients; i++ {
		r := <-replies
		if r.status != http.StatusOK {
			t.Fatalf("reply %d: status %d body %s", i, r.status, r.data)
		}
		if r.coalesce == "leader" {
			leaderN++
		}
		if first == nil {
			first = r.data
		} else if !bytes.Equal(first, r.data) {
			t.Fatalf("responses differ:\n%s\nvs\n%s", first, r.data)
		}
	}
	if got := h.calls.Load(); got != 1 {
		t.Fatalf("engine solver invoked %d times, want exactly 1", got)
	}
	if leaderN != 1 {
		t.Fatalf("%d leaders, want 1", leaderN)
	}
	st := h.srv.Stats()
	if st.Coalesce.Leaders != 1 || st.Coalesce.Followers != clients-1 {
		t.Fatalf("coalesce stats = %+v, want 1 leader / %d followers", st.Coalesce, clients-1)
	}
}

// TestShedQueueFull: a saturated queue rejects new work with 429 +
// Retry-After while the already-queued requests still complete.
func TestShedQueueFull(t *testing.T) {
	h := newHarness(t, 1, serve.Config{Queue: 2}, true, 0)

	var wg sync.WaitGroup
	queued := make(chan reply2, 2)
	for i := 0; i < 2; i++ {
		n := 4 + i // distinct fingerprints: no coalescing between them
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, data := postSolve(t, h.ts.URL, instanceBody(t, n, serve.SolveOptions{Timeout: serve.Duration(10 * time.Second)}, false))
			queued <- reply2{resp.StatusCode, data}
		}()
	}
	waitFor(t, "queue to fill", func() bool { return h.srv.Stats().Queue.Depth == 2 })

	resp, data := postSolve(t, h.ts.URL, instanceBody(t, 9, serve.SolveOptions{Timeout: serve.Duration(50 * time.Millisecond)}, false))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated queue answered %d (%s), want 429", resp.StatusCode, data)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("429 without a usable Retry-After (%q)", ra)
	}

	close(h.gate) // let the queued solves run
	wg.Wait()
	for i := 0; i < 2; i++ {
		r := <-queued
		if r.status != http.StatusOK {
			t.Fatalf("queued request %d answered %d (%s) — shedding starved the queue", i, r.status, r.data)
		}
	}
	st := h.srv.Stats()
	if st.Requests.Shed429 != 1 {
		t.Fatalf("Shed429 = %d, want 1", st.Requests.Shed429)
	}
}

type reply2 struct {
	status int
	data   []byte
}

// TestShedDeadline: once the drain estimator is trained, a request whose
// deadline the queue cannot meet is shed with 503 without being admitted.
func TestShedDeadline(t *testing.T) {
	h := newHarness(t, 1, serve.Config{Queue: 8}, true, 0)

	// Train the EWMA with one ~80ms solve.
	trained := make(chan struct{})
	go func() {
		defer close(trained)
		resp, data := postSolve(t, h.ts.URL, instanceBody(t, 3, serve.SolveOptions{Timeout: serve.Duration(5 * time.Second)}, false))
		if resp.StatusCode != http.StatusOK {
			t.Errorf("training solve answered %d (%s)", resp.StatusCode, data)
		}
	}()
	<-h.started
	time.Sleep(80 * time.Millisecond)
	prevGate := h.gate
	close(prevGate)
	<-trained
	if h.srv.Stats().Queue.EWMASolveMs <= 0 {
		t.Fatal("EWMA not trained")
	}

	// Re-arm the gate and park four solves in the queue. The parked posts
	// drain in harness cleanup; they must not touch t after the test body
	// returns, so errors are ignored.
	h.gate = make(chan struct{})
	defer close(h.gate)
	for i := 0; i < 4; i++ {
		body := instanceBody(t, 20+i, serve.SolveOptions{Timeout: serve.Duration(10 * time.Second)}, false)
		go func() {
			resp, err := http.Post(h.ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	waitFor(t, "queue to hold 4", func() bool { return h.srv.Stats().Queue.Depth == 4 })

	resp, data := postSolve(t, h.ts.URL, instanceBody(t, 40, serve.SolveOptions{Timeout: serve.Duration(5 * time.Millisecond)}, false))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unmeetable deadline answered %d (%s), want 503", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &e) != nil || !strings.Contains(e.Error, "drain estimate") {
		t.Fatalf("503 body %s does not explain the drain estimate", data)
	}
}

// TestAsyncAndEvents drives the anytime streaming path: an async submit
// returns the solve ID immediately, the SSE endpoint replays and follows
// the bound trajectory, and the terminal "result" event carries the same
// body a sync request would have received.
func TestAsyncAndEvents(t *testing.T) {
	h := newHarness(t, 2, serve.Config{Queue: 4}, true, 0)

	resp, data := postSolve(t, h.ts.URL, instanceBody(t, 7, serve.SolveOptions{Timeout: serve.Duration(5 * time.Second)}, true))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit answered %d (%s), want 202", resp.StatusCode, data)
	}
	var ack struct {
		ID     string `json:"id"`
		Events string `json:"events"`
	}
	if err := json.Unmarshal(data, &ack); err != nil || ack.ID == "" {
		t.Fatalf("async ack %s: %v", data, err)
	}

	// While the solve is gated, the result endpoint reports 202.
	<-h.started
	r2, err := http.Get(h.ts.URL + "/v1/solve/" + ack.ID)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r2.Body)
	r2.Body.Close()
	if r2.StatusCode != http.StatusAccepted {
		t.Fatalf("in-flight result fetch answered %d, want 202", r2.StatusCode)
	}

	// Subscribe to the event stream, then release the solver.
	evResp, err := http.Get(h.ts.URL + ack.Events)
	if err != nil {
		t.Fatal(err)
	}
	defer evResp.Body.Close()
	if ct := evResp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type %q", ct)
	}
	close(h.gate)

	var names []string
	var resultData string
	scanner := bufio.NewScanner(evResp.Body)
	cur := ""
	for scanner.Scan() {
		line := scanner.Text()
		if strings.HasPrefix(line, "event: ") {
			cur = strings.TrimPrefix(line, "event: ")
			names = append(names, cur)
		}
		if strings.HasPrefix(line, "data: ") && cur == "result" {
			resultData = strings.TrimPrefix(line, "data: ")
			break
		}
	}
	if resultData == "" {
		t.Fatalf("no terminal result event (saw %v)", names)
	}
	sawIncumbent := false
	for _, n := range names {
		if n == "incumbent" {
			sawIncumbent = true
		}
	}
	if !sawIncumbent {
		t.Errorf("no incumbent event before the result (saw %v)", names)
	}
	var res serve.SolveResponse
	if err := json.Unmarshal([]byte(resultData), &res); err != nil {
		t.Fatalf("result event payload %s: %v", resultData, err)
	}
	if res.ID != ack.ID || res.Makespan != 7 || res.Algorithm != "probe" {
		t.Fatalf("result event = %+v", res)
	}

	// The result endpoint now serves the sealed body.
	waitFor(t, "flight completion", func() bool { return h.srv.Stats().Requests.Completed == 1 })
	r3, err := http.Get(h.ts.URL + "/v1/solve/" + ack.ID)
	if err != nil {
		t.Fatal(err)
	}
	final, _ := io.ReadAll(r3.Body)
	r3.Body.Close()
	if r3.StatusCode != http.StatusOK || !bytes.Equal(bytes.TrimSpace(final), []byte(resultData)) {
		t.Fatalf("result fetch after completion: %d %s, want the terminal event body %s", r3.StatusCode, final, resultData)
	}
}

// TestLingerCoalescesNearConcurrent: with Linger set, an identical request
// arriving just after completion rides the finished flight instead of
// starting a new solve.
func TestLingerCoalescesNearConcurrent(t *testing.T) {
	h := newHarness(t, 2, serve.Config{Queue: 4, Linger: time.Hour}, false, 0)
	body := instanceBody(t, 5, serve.SolveOptions{Timeout: serve.Duration(5 * time.Second)}, false)

	resp1, data1 := postSolve(t, h.ts.URL, body)
	resp2, data2 := postSolve(t, h.ts.URL, body)
	if resp1.StatusCode != 200 || resp2.StatusCode != 200 {
		t.Fatalf("status %d / %d", resp1.StatusCode, resp2.StatusCode)
	}
	if h.calls.Load() != 1 {
		t.Fatalf("solver ran %d times, want 1 (linger join)", h.calls.Load())
	}
	if resp2.Header.Get("X-Coalesce") != "follower" {
		t.Fatalf("second request coalesce = %q, want follower", resp2.Header.Get("X-Coalesce"))
	}
	if !bytes.Equal(data1, data2) {
		t.Fatalf("linger join returned different bytes")
	}
	// A different option digest must not join the lingering flight.
	other := instanceBody(t, 5, serve.SolveOptions{Timeout: serve.Duration(5 * time.Second), Seed: 99}, false)
	if resp3, _ := postSolve(t, h.ts.URL, other); resp3.Header.Get("X-Coalesce") != "leader" {
		t.Fatal("different option digest coalesced onto the lingering flight")
	}
	if h.calls.Load() != 2 {
		t.Fatalf("solver ran %d times after distinct-digest request, want 2", h.calls.Load())
	}
}

// TestDrainShedsNewAndFinishesOld: draining answers new work 503 while the
// admitted solve completes and stays fetchable.
func TestDrainShedsNewAndFinishesOld(t *testing.T) {
	h := newHarness(t, 2, serve.Config{Queue: 4}, true, 0)

	resp, data := postSolve(t, h.ts.URL, instanceBody(t, 8, serve.SolveOptions{Timeout: serve.Duration(5 * time.Second)}, true))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit answered %d (%s)", resp.StatusCode, data)
	}
	var ack struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(data, &ack); err != nil {
		t.Fatal(err)
	}
	<-h.started

	drainDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drainDone <- h.srv.Drain(ctx)
	}()
	waitFor(t, "draining flag", func() bool { return h.srv.Stats().Draining })

	shedResp, _ := postSolve(t, h.ts.URL, instanceBody(t, 11, serve.SolveOptions{}, false))
	if shedResp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("request during drain answered %d, want 503", shedResp.StatusCode)
	}
	hResp, err := http.Get(h.ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hResp.Body)
	hResp.Body.Close()
	if hResp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain = %d, want 503", hResp.StatusCode)
	}

	close(h.gate)
	if err := <-drainDone; err != nil {
		t.Fatalf("drain: %v", err)
	}
	r, err := http.Get(h.ts.URL + "/v1/solve/" + ack.ID)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("drained solve not fetchable: %d %s", r.StatusCode, body)
	}
}

// TestBatchEndpoint: many instances through one POST, index-aligned
// results.
func TestBatchEndpoint(t *testing.T) {
	h := newHarness(t, 2, serve.Config{Queue: 8}, false, 0)

	var raws []json.RawMessage
	for _, n := range []int{3, 4, 5} {
		p := make([]float64, n)
		class := make([]int, n)
		for i := range p {
			p[i] = 1
		}
		in, err := sched.NewIdentical(p, class, []float64{1}, 2)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := in.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		raws = append(raws, json.RawMessage(buf.Bytes()))
	}
	body, _ := json.Marshal(serve.BatchRequest{Instances: raws, Options: serve.SolveOptions{Timeout: serve.Duration(5 * time.Second)}})
	resp, err := http.Post(h.ts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch answered %d (%s)", resp.StatusCode, data)
	}
	var br serve.BatchResponse
	if err := json.Unmarshal(data, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 3 {
		t.Fatalf("%d results, want 3", len(br.Results))
	}
	for i, item := range br.Results {
		if item.Error != "" || item.Makespan != float64(3+i) {
			t.Fatalf("batch item %d = %+v", i, item)
		}
	}
	if h.calls.Load() != 3 {
		t.Fatalf("solver ran %d times, want 3", h.calls.Load())
	}
	if depth := h.srv.Stats().Queue.Depth; depth != 0 {
		t.Fatalf("queue depth %d after batch, want 0", depth)
	}
}

// TestStatszAndHealthz sanity-checks the observability endpoints.
func TestStatszAndHealthz(t *testing.T) {
	h := newHarness(t, 2, serve.Config{Queue: 4}, false, 0)
	if resp, data := postSolve(t, h.ts.URL, instanceBody(t, 4, serve.SolveOptions{}, false)); resp.StatusCode != 200 {
		t.Fatalf("solve answered %d (%s)", resp.StatusCode, data)
	}
	resp, err := http.Get(h.ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var st serve.Stats
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("statsz %s: %v", data, err)
	}
	if st.Requests.Received < 1 || st.Requests.Completed != 1 || st.Coalesce.Leaders != 1 {
		t.Fatalf("statsz counters %+v", st)
	}
	if st.Governor.Budget != 2 {
		t.Fatalf("statsz governor budget = %d, want 2", st.Governor.Budget)
	}
	hResp, err := http.Get(h.ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hData, _ := io.ReadAll(hResp.Body)
	hResp.Body.Close()
	if hResp.StatusCode != 200 || !strings.Contains(string(hData), "ok") {
		t.Fatalf("healthz %d %s", hResp.StatusCode, hData)
	}
}

// TestBadRequests: malformed inputs answer 400 with a JSON error.
func TestBadRequests(t *testing.T) {
	h := newHarness(t, 1, serve.Config{}, false, 0)
	for name, body := range map[string]string{
		"not json":         "{",
		"missing instance": `{}`,
		"bad instance":     `{"instance": {"kind": "nope"}}`,
		"bad timeout":      `{"instance": {"kind":"identical"}, "options": {"timeout": "soon"}}`,
	} {
		resp, err := http.Post(h.ts.URL+"/v1/solve", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", name, resp.StatusCode, data)
		}
	}
	// An already-expired explicit deadline is shed, not an input error.
	req, _ := http.NewRequest("POST", h.ts.URL+"/v1/solve", bytes.NewReader(instanceBody(t, 3, serve.SolveOptions{}, false)))
	req.Header.Set("X-Request-Deadline", time.Now().Add(-time.Second).Format(time.RFC3339))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("expired deadline answered %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("expired-deadline shed without Retry-After")
	}
}
