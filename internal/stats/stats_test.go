package stats

import (
	"math"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Errorf("unexpected summary %+v", s)
	}
	if math.Abs(s.Median-2.5) > 1e-12 {
		t.Errorf("median = %v, want 2.5", s.Median)
	}
	want := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 3)
	if math.Abs(s.Std-want) > 1e-12 {
		t.Errorf("std = %v, want %v", s.Std, want)
	}
}

func TestSummarizeOddMedian(t *testing.T) {
	s := Summarize([]float64{9, 1, 5})
	if s.Median != 5 {
		t.Errorf("median = %v, want 5", s.Median)
	}
}

func TestSummarizeDropsNaN(t *testing.T) {
	s := Summarize([]float64{1, math.NaN(), 3})
	if s.N != 2 || s.Mean != 2 {
		t.Errorf("NaN handling broken: %+v", s)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestSummarizeSingleton(t *testing.T) {
	s := Summarize([]float64{7})
	if s.N != 1 || s.Std != 0 || s.Median != 7 {
		t.Errorf("singleton summary = %+v", s)
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); math.Abs(g-2) > 1e-12 {
		t.Errorf("GeoMean(1,4) = %v, want 2", g)
	}
	if !math.IsNaN(GeoMean(nil)) {
		t.Error("GeoMean(nil) should be NaN")
	}
	if !math.IsNaN(GeoMean([]float64{1, 0})) {
		t.Error("GeoMean with zero should be NaN")
	}
}
