// Package stats provides the small set of summary statistics used by the
// experiment harness.
package stats

import (
	"math"
	"sort"
)

// Summary holds the usual aggregate statistics of a sample.
type Summary struct {
	N                int
	Mean, Std        float64
	Min, Max, Median float64
}

// Summarize computes the summary of xs (NaNs are dropped; an empty sample
// yields the zero Summary).
func Summarize(xs []float64) Summary {
	var clean []float64
	for _, x := range xs {
		if !math.IsNaN(x) {
			clean = append(clean, x)
		}
	}
	s := Summary{N: len(clean)}
	if s.N == 0 {
		return s
	}
	sorted := append([]float64(nil), clean...)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	s.Median = sorted[len(sorted)/2]
	if len(sorted)%2 == 0 {
		s.Median = (sorted[len(sorted)/2-1] + sorted[len(sorted)/2]) / 2
	}
	sum := 0.0
	for _, x := range clean {
		sum += x
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, x := range clean {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// GeoMean returns the geometric mean of xs (which must be positive).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}
