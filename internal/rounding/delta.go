package rounding

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/lp"
)

// ApplyDelta patches the relaxation in place so it models newIn =
// d.Apply(rel instance), retaining as much of the solved LP state as the
// delta allows. searchUpper is the largest makespan guess the next dual
// search may evaluate (the engine derives it from the patched previous
// schedule and Delta.AcceptedCap); it must not exceed the build envelope,
// since variables for processing times above the envelope were never
// created.
//
// The patch rungs, cheapest first:
//
//   - Pure clamp patch (job departure, machine removal): the existing
//     backend is mutated with SetVarUpper/SetRHS exactly like a guess
//     change, and the warm basis survives untouched.
//   - Extend-and-transplant (job arrival, machine addition, resize): the
//     retained lp.Problem grows by the delta's columns and rows (AddTerm
//     appends coefficient deltas to existing rows), and the current basis
//     is remapped onto the grown standard form (lp.ExtendBasis) for a
//     deferred rebuild-plus-Warm at the next ReSolve — a handful of
//     dual-simplex repair pivots instead of a cold phase-1 solve.
//   - Anything the first two rungs cannot express soundly (bracket above
//     the envelope, a job left with no variable, an infeasible retained
//     model) returns an error, and the caller falls back to a cold
//     NewRelaxation on newIn.
//
// Ownership contract: the relaxation's model is shared with any clones
// made for a speculative search. ApplyDelta must only be called once that
// search has finished and the caller holds the sole live reference (the
// engine's retention store hands out states exclusively). The instance
// newIn must be the exact value later passed to ScheduleDetailed — the
// warm path matches them by pointer identity.
func (rel *Relaxation) ApplyDelta(d core.Delta, newIn *core.Instance, searchUpper float64) error {
	if rel.mdl.infeasible {
		return fmt.Errorf("rounding: ApplyDelta on an infeasible relaxation")
	}
	if !(searchUpper > 0) || searchUpper > rel.envelope+core.Eps {
		return fmt.Errorf("rounding: ApplyDelta bracket %g outside envelope %g", searchUpper, rel.envelope)
	}
	// A still-deferred earlier patch must land before this one composes
	// with backend state.
	if rel.stale {
		rel.materialize()
	}
	if rel.be == nil {
		return fmt.Errorf("rounding: ApplyDelta on a relaxation without a backend")
	}
	switch d.Kind {
	case core.DeltaJobDepart:
		return rel.patchDepart(d, newIn)
	case core.DeltaMachineRemove:
		return rel.patchMachineRemove(d, newIn)
	case core.DeltaJobArrive:
		return rel.patchArrive(d, newIn)
	case core.DeltaMachineAdd:
		return rel.patchMachineAdd(newIn)
	case core.DeltaJobResize:
		return rel.patchResize(d, newIn)
	}
	return fmt.Errorf("rounding: ApplyDelta does not support delta kind %v", d.Kind)
}

// rebuildAvail recomputes the per-job unbanned-variable counts from the
// filtered xv/banned state.
func (rel *Relaxation) rebuildAvail(n int) {
	rel.avail = make([]int, n)
	for t, xv := range rel.mdl.xv {
		if !rel.banned[t] {
			rel.avail[xv.j]++
		}
	}
}

// patchDepart clamps the departing job's columns and pins its assignment
// row to zero — a pure in-place mutation the warm basis survives.
func (rel *Relaxation) patchDepart(d core.Delta, newIn *core.Instance) error {
	mdl, in := rel.mdl, rel.in
	if newIn.N != in.N-1 || newIn.M != in.M || d.Job < 0 || d.Job >= in.N {
		return fmt.Errorf("rounding: departure delta does not fit the relaxation")
	}
	jd := d.Job
	for i := 0; i < in.M; i++ {
		if v := mdl.xIdx[i][jd]; v >= 0 {
			rel.dead = append(rel.dead, v)
			rel.be.SetVarUpper(v, 0)
		}
		mdl.xIdx[i] = append(mdl.xIdx[i][:jd:jd], mdl.xIdx[i][jd+1:]...)
	}
	r := mdl.asgRow[jd]
	rel.deadRows = append(rel.deadRows, r)
	rel.be.SetRHS(r, 0)
	mdl.asgRow = append(mdl.asgRow[:jd:jd], mdl.asgRow[jd+1:]...)
	// Filter the clamp list in lockstep with its banned flags, shifting job
	// indices above the departed one.
	xv, banned := mdl.xv[:0], rel.banned[:0]
	for t := range mdl.xv {
		e := mdl.xv[t]
		if e.j == jd {
			continue
		}
		if e.j > jd {
			e.j--
		}
		xv = append(xv, e)
		banned = append(banned, rel.banned[t])
	}
	mdl.xv, rel.banned = xv, banned
	rel.rebuildAvail(newIn.N)
	rel.frac = makeFractional(newIn.M, newIn.N, newIn.K, false)
	rel.in = newIn
	return nil
}

// patchMachineRemove clamps every column of the removed machine. The
// machine's load row keeps its last RHS; with all its terms clamped it is
// trivially satisfied for every future guess.
func (rel *Relaxation) patchMachineRemove(d core.Delta, newIn *core.Instance) error {
	mdl, in := rel.mdl, rel.in
	if newIn.M != in.M-1 || newIn.N != in.N || d.Machine < 0 || d.Machine >= in.M {
		return fmt.Errorf("rounding: machine-remove delta does not fit the relaxation")
	}
	i0 := d.Machine
	// Precheck before any mutation: every job must keep at least one
	// variable on the surviving machines, or the relaxation could reject
	// guesses the instance actually admits above the envelope.
	for j := 0; j < in.N; j++ {
		ok := false
		for i := 0; i < in.M && !ok; i++ {
			ok = i != i0 && mdl.xIdx[i][j] >= 0
		}
		if !ok {
			return fmt.Errorf("rounding: removing machine %d leaves job %d without variables at the envelope", i0, j)
		}
	}
	gone := make(map[int]bool)
	for j := 0; j < in.N; j++ {
		if v := mdl.xIdx[i0][j]; v >= 0 {
			gone[v] = true
			rel.dead = append(rel.dead, v)
			rel.be.SetVarUpper(v, 0)
		}
	}
	for k := 0; k < in.K; k++ {
		if v := mdl.yIdx[i0][k]; v >= 0 {
			rel.dead = append(rel.dead, v)
			rel.be.SetVarUpper(v, 0)
		}
	}
	mdl.xIdx = append(mdl.xIdx[:i0:i0], mdl.xIdx[i0+1:]...)
	mdl.yIdx = append(mdl.yIdx[:i0:i0], mdl.yIdx[i0+1:]...)
	mdl.loadRow = append(mdl.loadRow[:i0:i0], mdl.loadRow[i0+1:]...)
	xv, banned := mdl.xv[:0], rel.banned[:0]
	for t := range mdl.xv {
		if gone[mdl.xv[t].v] {
			continue
		}
		xv = append(xv, mdl.xv[t])
		banned = append(banned, rel.banned[t])
	}
	mdl.xv, rel.banned = xv, banned
	rel.rebuildAvail(newIn.N)
	rel.frac = makeFractional(newIn.M, newIn.N, newIn.K, false)
	rel.in = newIn
	return nil
}

// addXVar appends a fresh x_ij variable with all its constraint presence:
// the machine's load row (created on demand), job j's assignment row
// (asgRow < 0 means the caller builds the row itself afterwards), and its
// own setup-domination row (4).
func (rel *Relaxation) addXVar(i, j int, p float64, yv int, asgRow int) int {
	prob := rel.mdl.prob
	v := prob.AddVar(0, 1)
	if p > 0 {
		if rel.mdl.loadRow[i] >= 0 {
			prob.AddTerm(rel.mdl.loadRow[i], lp.Term{Var: v, Coef: p})
		} else {
			rel.mdl.loadRow[i] = prob.NumRows()
			prob.AddConstraint(lp.LE, rel.envelope, lp.Term{Var: v, Coef: p})
		}
	}
	if asgRow >= 0 {
		prob.AddTerm(asgRow, lp.Term{Var: v, Coef: 1})
	}
	prob.AddConstraint(lp.LE, 0, lp.Term{Var: v, Coef: 1}, lp.Term{Var: yv, Coef: -1})
	rel.mdl.xv = append(rel.mdl.xv, relaxVar{v: v, j: j, p: p})
	rel.banned = append(rel.banned, false)
	return v
}

// extend finalizes a model-growing patch: the current basis is remapped
// onto the grown standard form and the backend rebuild is deferred to the
// next ReSolve.
func (rel *Relaxation) extend(oldVars, oldRows int) {
	snap := rel.be.Basis()
	ext, err := lp.ExtendBasis(snap, oldVars, rel.mdl.prob.NumVars(), oldRows, rel.mdl.prob.NumRows())
	if err != nil {
		ext = nil // rebuild cold; the patch itself stays valid
	}
	rel.pending, rel.stale = ext, true
	rel.be = nil
}

// patchArrive grows the model by the arriving job's columns and rows.
func (rel *Relaxation) patchArrive(d core.Delta, newIn *core.Instance) error {
	mdl, in := rel.mdl, rel.in
	if newIn.N != in.N+1 || newIn.M != in.M {
		return fmt.Errorf("rounding: arrival delta does not fit the relaxation")
	}
	jn := newIn.N - 1
	k := newIn.Class[jn]
	oldVars, oldRows := mdl.prob.NumVars(), mdl.prob.NumRows()
	type cand struct {
		i  int
		p  float64
		yv int
	}
	var cands []cand
	for i := 0; i < newIn.M; i++ {
		p := newIn.P[i][jn]
		if !core.IsFinite(p) || p > rel.envelope+core.Eps || !core.IsFinite(newIn.S[i][k]) {
			continue
		}
		if mdl.yIdx[i][k] < 0 {
			// The arrival flipped S[i][k] from infinite to finite (first
			// class-k job eligible on machine i): the retained model has no
			// setup variable there, and patching around it would let the
			// relaxation reject guesses newIn actually admits. Fall back to
			// a cold rebuild.
			return fmt.Errorf("rounding: arrival changes the setup structure on machine %d", i)
		}
		cands = append(cands, cand{i: i, p: p, yv: mdl.yIdx[i][k]})
	}
	if len(cands) == 0 {
		return fmt.Errorf("rounding: arriving job has no machine at the envelope %g", rel.envelope)
	}
	// New columns first (load-row coefficient included), then the job's
	// assignment row over all of them, then the (4) rows — addXVar is told
	// to skip the assignment row so it can be built as one EQ constraint.
	vars := make([]int, len(cands))
	asgTerms := make([]lp.Term, len(cands))
	for c, cd := range cands {
		prob := mdl.prob
		v := prob.AddVar(0, 1)
		if cd.p > 0 {
			if mdl.loadRow[cd.i] >= 0 {
				prob.AddTerm(mdl.loadRow[cd.i], lp.Term{Var: v, Coef: cd.p})
			} else {
				mdl.loadRow[cd.i] = prob.NumRows()
				prob.AddConstraint(lp.LE, rel.envelope, lp.Term{Var: v, Coef: cd.p})
			}
		}
		vars[c] = v
		asgTerms[c] = lp.Term{Var: v, Coef: 1}
	}
	mdl.asgRow = append(mdl.asgRow, mdl.prob.NumRows())
	mdl.prob.AddConstraint(lp.EQ, 1, asgTerms...)
	for c, cd := range cands {
		mdl.prob.AddConstraint(lp.LE, 0, lp.Term{Var: vars[c], Coef: 1}, lp.Term{Var: cd.yv, Coef: -1})
		mdl.xv = append(mdl.xv, relaxVar{v: vars[c], j: jn, p: cd.p})
		rel.banned = append(rel.banned, false)
	}
	for i := 0; i < newIn.M; i++ {
		mdl.xIdx[i] = append(mdl.xIdx[i], -1)
	}
	for c, cd := range cands {
		mdl.xIdx[cd.i][jn] = vars[c]
	}
	rel.extend(oldVars, oldRows)
	rel.rebuildAvail(newIn.N)
	rel.frac = makeFractional(newIn.M, newIn.N, newIn.K, false)
	rel.in = newIn
	return nil
}

// patchMachineAdd grows the model by the new machine's x and y columns,
// its load row, and its (4) rows, appending assignment-row terms in place.
func (rel *Relaxation) patchMachineAdd(newIn *core.Instance) error {
	mdl, in := rel.mdl, rel.in
	if newIn.M != in.M+1 || newIn.N != in.N {
		return fmt.Errorf("rounding: machine-add delta does not fit the relaxation")
	}
	i0 := newIn.M - 1
	oldVars, oldRows := mdl.prob.NumVars(), mdl.prob.NumRows()
	prob := mdl.prob
	yRow := make([]int, newIn.K)
	var loadTerms []lp.Term
	for k := 0; k < newIn.K; k++ {
		yRow[k] = -1
		if s := newIn.S[i0][k]; core.IsFinite(s) {
			yRow[k] = prob.AddVar(0, 1)
			if s > 0 {
				loadTerms = append(loadTerms, lp.Term{Var: yRow[k], Coef: s})
			}
		}
	}
	xRow := make([]int, newIn.N)
	type pair struct {
		v, yv int
	}
	var fours []pair
	for j := 0; j < newIn.N; j++ {
		xRow[j] = -1
		p := newIn.P[i0][j]
		k := newIn.Class[j]
		if !core.IsFinite(p) || p > rel.envelope+core.Eps || yRow[k] < 0 {
			continue
		}
		v := prob.AddVar(0, 1)
		xRow[j] = v
		if p > 0 {
			loadTerms = append(loadTerms, lp.Term{Var: v, Coef: p})
		}
		prob.AddTerm(mdl.asgRow[j], lp.Term{Var: v, Coef: 1})
		fours = append(fours, pair{v: v, yv: yRow[k]})
		mdl.xv = append(mdl.xv, relaxVar{v: v, j: j, p: p})
		rel.banned = append(rel.banned, false)
	}
	if len(loadTerms) > 0 {
		mdl.loadRow = append(mdl.loadRow, prob.NumRows())
		prob.AddConstraint(lp.LE, rel.envelope, loadTerms...)
	} else {
		mdl.loadRow = append(mdl.loadRow, -1)
	}
	for _, f := range fours {
		prob.AddConstraint(lp.LE, 0, lp.Term{Var: f.v, Coef: 1}, lp.Term{Var: f.yv, Coef: -1})
	}
	mdl.xIdx = append(mdl.xIdx, xRow)
	mdl.yIdx = append(mdl.yIdx, yRow)
	rel.extend(oldVars, oldRows)
	rel.rebuildAvail(newIn.N)
	rel.frac = makeFractional(newIn.M, newIn.N, newIn.K, false)
	rel.in = newIn
	return nil
}

// patchResize shifts the resized job's load-row coefficients by their
// deltas (the triplet storage accumulates), adds columns the new sizes
// newly admit, and kills columns the new sizes make ineligible. The model
// keeps its meaning for every consumer, but the existing backend predates
// the coefficient change, so the backend is always rebuilt (with the
// current basis transplanted — same or grown shape).
func (rel *Relaxation) patchResize(d core.Delta, newIn *core.Instance) error {
	mdl, in := rel.mdl, rel.in
	if newIn.N != in.N || newIn.M != in.M || d.Job < 0 || d.Job >= in.N {
		return fmt.Errorf("rounding: resize delta does not fit the relaxation")
	}
	j0 := d.Job
	k := in.Class[j0]
	oldVars, oldRows := mdl.prob.NumVars(), mdl.prob.NumRows()
	changed := false
	var killed map[int]bool
	for i := 0; i < in.M; i++ {
		pOld, pNew := in.P[i][j0], newIn.P[i][j0]
		v := mdl.xIdx[i][j0]
		switch {
		case v >= 0 && core.IsFinite(pNew):
			if pNew == pOld {
				continue
			}
			changed = true
			if delta := pNew - pOld; delta != 0 {
				if mdl.loadRow[i] >= 0 {
					mdl.prob.AddTerm(mdl.loadRow[i], lp.Term{Var: v, Coef: delta})
				} else if pNew > 0 {
					mdl.loadRow[i] = mdl.prob.NumRows()
					mdl.prob.AddConstraint(lp.LE, rel.envelope, lp.Term{Var: v, Coef: pNew})
				}
			}
			for t := range mdl.xv {
				if mdl.xv[t].v == v {
					mdl.xv[t].p = pNew
					break
				}
			}
		case v >= 0: // eligibility lost
			changed = true
			rel.dead = append(rel.dead, v)
			if killed == nil {
				killed = make(map[int]bool)
			}
			killed[v] = true
			mdl.xIdx[i][j0] = -1
		case core.IsFinite(pNew) && pNew <= rel.envelope+core.Eps && mdl.yIdx[i][k] >= 0:
			changed = true
			mdl.xIdx[i][j0] = rel.addXVar(i, j0, pNew, mdl.yIdx[i][k], mdl.asgRow[j0])
		}
	}
	if !changed {
		rel.in = newIn
		return nil
	}
	ok := false
	for i := 0; i < in.M && !ok; i++ {
		ok = mdl.xIdx[i][j0] >= 0
	}
	if !ok {
		return fmt.Errorf("rounding: resized job %d has no machine at the envelope %g", j0, rel.envelope)
	}
	if killed != nil {
		xv, banned := mdl.xv[:0], rel.banned[:0]
		for t := range mdl.xv {
			if killed[mdl.xv[t].v] {
				continue
			}
			xv = append(xv, mdl.xv[t])
			banned = append(banned, rel.banned[t])
		}
		mdl.xv, rel.banned = xv, banned
	}
	rel.extend(oldVars, oldRows)
	rel.rebuildAvail(newIn.N)
	rel.in = newIn
	return nil
}

// Envelope reports the makespan value the relaxation was built at — the
// ceiling ApplyDelta accepts for the next search bracket.
func (rel *Relaxation) Envelope() float64 { return rel.envelope }

// Instance returns the instance the relaxation currently models (the
// post-delta instance after ApplyDelta).
func (rel *Relaxation) Instance() *core.Instance { return rel.in }
