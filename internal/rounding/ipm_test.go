package rounding

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/lp"
)

// TestReSolveIPMTrajectoryMatchesSparse drives the same descending guess
// trajectories as the sparse backend through an IPM-backed Relaxation and
// cross-checks every verdict against cold SolveLP — the contract that lets
// the interior-point cold path slot under the dual search unchanged.
func TestReSolveIPMTrajectoryMatchesSparse(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := gen.Params{N: 14 + rng.Intn(10), M: 3 + rng.Intn(2), K: 2 + rng.Intn(3)}
		var in *core.Instance
		if seed%2 == 0 {
			in = gen.Unrelated(rng, p)
		} else {
			in = gen.UnrelatedClassUniform(rng, p)
		}
		g, err := baseline.Greedy(in)
		if err != nil {
			t.Fatalf("greedy: %v", err)
		}
		ub := g.Makespan(in)
		if ub <= 0 {
			continue
		}
		var guesses []float64
		for T := ub; T > ub/64; T *= 0.82 {
			guesses = append(guesses, T)
		}
		runGuessSequence(t, in, lp.IPM, ub, guesses)
	}
}

// TestAutoRelaxationSurfacesResolution pins the auto selection through the
// rounding layer: over the (lowered) row threshold the relaxation reports
// "auto(ipm)", under it "auto(sparse)", and ScheduleDetailed carries that
// string out via Detail.LPBackend.
func TestAutoRelaxationSurfacesResolution(t *testing.T) {
	oldRows := lp.AutoIPMMinRows
	oldNNZ := lp.AutoIPMMinNNZ
	lp.AutoIPMMinRows = 60
	lp.AutoIPMMinNNZ = 1 << 30
	defer func() { lp.AutoIPMMinRows = oldRows; lp.AutoIPMMinNNZ = oldNNZ }()

	rng := rand.New(rand.NewSource(7))
	big := gen.Unrelated(rng, gen.Params{N: 20, M: 4, K: 3})  // 4+20+80 rows ≥ 60
	small := gen.Unrelated(rng, gen.Params{N: 5, M: 2, K: 2}) // 2+5+10 rows < 60

	for _, tc := range []struct {
		in   *core.Instance
		want string
	}{
		{big, "auto(ipm)"},
		{small, "auto(sparse)"},
	} {
		rel, err := NewRelaxation(tc.in, RelaxationConfig{Backend: lp.Auto})
		if err != nil {
			t.Fatalf("NewRelaxation(auto): %v", err)
		}
		if rel.Backend() != lp.Auto {
			t.Errorf("Backend() = %v, want requested kind %v", rel.Backend(), lp.Auto)
		}
		if got := rel.ResolvedBackend(); got != tc.want {
			t.Errorf("ResolvedBackend() = %q, want %q", got, tc.want)
		}
	}

	res, det, err := ScheduleDetailed(context.Background(), big, Options{
		Rng:       rand.New(rand.NewSource(1)),
		LPBackend: "auto",
	})
	if err != nil {
		t.Fatalf("ScheduleDetailed(auto): %v", err)
	}
	if res.Schedule == nil || !res.Schedule.Complete() {
		t.Fatal("incomplete schedule")
	}
	if err := res.Schedule.Validate(big); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if det.LPBackend != "auto(ipm)" {
		t.Errorf("Detail.LPBackend = %q, want %q", det.LPBackend, "auto(ipm)")
	}
}

// TestScheduleDetailedIPMBackend runs the full algorithm end-to-end on the
// explicit ipm backend: valid bounded schedule, effort surfaced, backend
// reported verbatim.
func TestScheduleDetailedIPMBackend(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	in := gen.Unrelated(rng, gen.Params{N: 16, M: 3, K: 3})
	res, det, err := ScheduleDetailed(context.Background(), in, Options{
		Rng:       rand.New(rand.NewSource(2)),
		LPBackend: "ipm",
	})
	if err != nil {
		t.Fatalf("ScheduleDetailed: %v", err)
	}
	if res.Schedule == nil || !res.Schedule.Complete() {
		t.Fatal("incomplete schedule")
	}
	if err := res.Schedule.Validate(in); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if res.Makespan < res.LowerBound-core.Eps {
		t.Errorf("makespan %v below lower bound %v", res.Makespan, res.LowerBound)
	}
	if det.LPIterations <= 0 {
		t.Errorf("LP iterations not surfaced: %d", det.LPIterations)
	}
	if det.LPBackend != "ipm" {
		t.Errorf("Detail.LPBackend = %q, want %q", det.LPBackend, "ipm")
	}
}
