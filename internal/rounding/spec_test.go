package rounding

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dual"
	"repro/internal/gen"
	"repro/internal/lp"
	"repro/internal/testutil"
)

// probeThreshold runs a pure LP-feasibility dual search (no rounding, no
// randomness) over the relaxation with the given strategy and per-worker
// relaxation set, returning the final certified bracket. This is the
// deterministic core the speculative differential compares on.
func probeThreshold(t *testing.T, in *core.Instance, kind lp.BackendKind, workers int, ub float64) dual.Outcome {
	t.Helper()
	rel, err := NewRelaxation(in, RelaxationConfig{Envelope: ub, Backend: kind})
	if err != nil {
		t.Fatalf("NewRelaxation: %v", err)
	}
	if _, err := rel.ReSolve(ub); err != nil {
		t.Fatalf("seed ReSolve: %v", err)
	}
	rels := make([]*Relaxation, workers)
	rels[0] = rel
	for w := 1; w < workers; w++ {
		rels[w] = rel.Clone()
	}
	deciders := make([]dual.GuessDecider, workers)
	for w := range deciders {
		r := rels[w]
		deciders[w] = func(g dual.Guess) (*core.Schedule, bool) {
			f, err := r.ReSolve(g.T)
			if err != nil {
				t.Errorf("ReSolve(%g): %v", g.T, err)
				return nil, true
			}
			return nil, f != nil
		}
	}
	return dual.Run(context.Background(), dual.Config{
		Instance: in, Lower: 0, Upper: ub, Precision: 0.02,
		Strategy: dual.Speculate(workers), Deciders: deciders,
	})
}

// TestSpeculativeSearchMatchesBisectOnCorpus is the rounding-level
// differential of the verdict-equivalence contract: over random unrelated
// instances and both LP backends, the speculative parallel search must
// certify the same LP-feasibility threshold as sequential bisection within
// the combined precision. Run under -race this also exercises the
// clone-per-worker concurrency.
func TestSpeculativeSearchMatchesBisectOnCorpus(t *testing.T) {
	testutil.ForceParallel(t)
	for _, kind := range []lp.BackendKind{lp.Dense, lp.Sparse} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			for seed := int64(1); seed <= 5; seed++ {
				rng := rand.New(rand.NewSource(seed))
				in := gen.Unrelated(rng, gen.Params{N: 20, M: 4, K: 3})
				g, err := baseline.Greedy(in)
				if err != nil {
					t.Fatal(err)
				}
				ub := g.Makespan(in)
				seq := probeThreshold(t, in, kind, 1, ub)
				for _, workers := range []int{2, 4} {
					spec := probeThreshold(t, in, kind, workers, ub)
					if seq.Err != nil || spec.Err != nil {
						t.Fatalf("seed %d: unexpected errors %v / %v", seed, seq.Err, spec.Err)
					}
					// Both searches certify a bracket around the same LP
					// threshold: their lower bounds agree within the
					// squared precision.
					const prec = 0.02
					lo1, lo2 := seq.LowerBound, spec.LowerBound
					if lo1 > 0 && lo2 > 0 {
						ratio := lo1 / lo2
						if ratio < 1/(1+prec)/(1+prec) || ratio > (1+prec)*(1+prec) {
							t.Errorf("seed %d workers=%d: bisect lower %g vs speculate lower %g beyond precision",
								seed, workers, lo1, lo2)
						}
					}
				}
			}
		})
	}
}

// TestRelaxationCloneIndependence drives a clone through its own guess
// trajectory and verifies the parent's subsequent verdicts and fractional
// solutions are byte-identical to an untouched control relaxation.
func TestRelaxationCloneIndependence(t *testing.T) {
	for _, kind := range []lp.BackendKind{lp.Dense, lp.Sparse} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			rng := rand.New(rand.NewSource(3))
			in := gen.Unrelated(rng, gen.Params{N: 18, M: 4, K: 3})
			g, err := baseline.Greedy(in)
			if err != nil {
				t.Fatal(err)
			}
			ub := g.Makespan(in)
			cfg := RelaxationConfig{Envelope: ub, Backend: kind}
			subject, err := NewRelaxation(in, cfg)
			if err != nil {
				t.Fatal(err)
			}
			control, err := NewRelaxation(in, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := subject.ReSolve(ub); err != nil {
				t.Fatal(err)
			}
			if _, err := control.ReSolve(ub); err != nil {
				t.Fatal(err)
			}
			clone := subject.Clone()
			// Drive the clone hard: descending and re-ascending guesses
			// mutate its clamp state and warm basis repeatedly.
			for _, f := range []float64{0.8, 0.4, 0.1, 0.6, 0.25, 0.9} {
				if _, err := clone.ReSolve(ub * f); err != nil {
					t.Fatalf("clone ReSolve(%g·ub): %v", f, err)
				}
			}
			// The parent's trajectory must now match the control's exactly.
			for _, f := range []float64{0.9, 0.5, 0.2, 0.7} {
				T := ub * f
				fs, errS := subject.ReSolve(T)
				fc, errC := control.ReSolve(T)
				if (errS == nil) != (errC == nil) {
					t.Fatalf("T=%g: subject err %v, control err %v", T, errS, errC)
				}
				if (fs == nil) != (fc == nil) {
					t.Fatalf("T=%g: subject feasibility %v, control %v (clone perturbed parent)", T, fs != nil, fc != nil)
				}
				if fs == nil {
					continue
				}
				for i := range fs.xFlat {
					if fs.xFlat[i] != fc.xFlat[i] {
						t.Fatalf("T=%g: subject x[%d]=%v differs from control %v (clone perturbed parent basis)",
							T, i, fs.xFlat[i], fc.xFlat[i])
					}
				}
			}
		})
	}
}

// TestScheduleDetailedSpeculativeRace runs the full randomized-rounding
// pipeline with speculative search workers (run under -race): the schedule
// must be valid and the result internally consistent, and the LP effort of
// every worker must be accounted.
func TestScheduleDetailedSpeculativeRace(t *testing.T) {
	testutil.ForceParallel(t)
	rng := rand.New(rand.NewSource(5))
	in := gen.Unrelated(rng, gen.Params{N: 24, M: 4, K: 3})
	res, det, err := ScheduleDetailed(context.Background(), in, Options{
		Rng:           rand.New(rand.NewSource(1)),
		SearchWorkers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(in); err != nil {
		t.Fatalf("invalid schedule: %v", err)
	}
	if res.LowerBound > res.Makespan+core.Eps {
		t.Errorf("lower bound %g above makespan %g", res.LowerBound, res.Makespan)
	}
	g, err := baseline.Greedy(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan > g.Makespan(in)+core.Eps {
		t.Errorf("speculative result %g worse than the greedy bootstrap %g", res.Makespan, g.Makespan(in))
	}
	if det.LPIterations <= 0 {
		t.Error("no LP iterations accounted across workers")
	}
	// The sequential run on the same instance must land within the combined
	// search precision of the speculative one in terms of certified bounds.
	seqRes, _, err := ScheduleDetailed(context.Background(), in, Options{
		Rng: rand.New(rand.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if seqRes.LowerBound > 0 && res.LowerBound > 0 {
		ratio := seqRes.LowerBound / res.LowerBound
		const prec = 0.05
		if ratio < 1/(1+prec)/(1+prec) || ratio > (1+prec)*(1+prec) {
			t.Errorf("sequential lower bound %g vs speculative %g beyond precision", seqRes.LowerBound, res.LowerBound)
		}
	}
}

// TestScheduleDetailedSpeculativeCancellation: a deadline mid-search stops
// the speculative workers promptly and still returns a feasible best-so-far
// schedule.
func TestScheduleDetailedSpeculativeCancellation(t *testing.T) {
	testutil.ForceParallel(t)
	rng := rand.New(rand.NewSource(9))
	in := gen.Unrelated(rng, gen.Params{N: 60, M: 8, K: 6})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, _, err := ScheduleDetailed(ctx, in, Options{
		Rng:           rand.New(rand.NewSource(1)),
		SearchWorkers: 4,
	})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule == nil {
		t.Fatal("no schedule despite greedy fallback")
	}
	if err := res.Schedule.Validate(in); err != nil {
		t.Fatalf("invalid schedule after cancellation: %v", err)
	}
	if elapsed > 5*time.Second {
		t.Errorf("cancellation took %v, want prompt stop", elapsed)
	}
	if math.IsInf(res.Makespan, 0) {
		t.Error("no finite makespan after cancellation")
	}
}
