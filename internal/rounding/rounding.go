// Package rounding implements the randomized LP rounding algorithm of
// Section 3.1 of the paper: an O(log n + log m)-approximation for scheduling
// with setup times on unrelated machines.
//
// For a makespan guess T, the LP relaxation of ILP-UM is solved:
//
//	Σ_j x_ij p_ij + Σ_k y_ik s_ik ≤ T   ∀i            (1)
//	Σ_i x_ij = 1                        ∀j            (2)
//	0 ≤ x_ij, y_ik ≤ 1                                (3 relaxed)
//	y_i,k_j ≥ x_ij                      ∀i,j          (4)
//	x_ij = 0                            ∀i,j: p_ij > T (5)
//
// and rounded: in each of c·log n iterations every (machine, class) pair
// opens with probability y*_ik, and an open pair claims each of its
// class's jobs independently with probability x*_ij/y*_ik. Jobs assigned
// multiple times keep their first assignment; jobs never assigned fall back
// to argmin_i p_ij. Theorem 3.3: the result is O(T(log n + log m)) with
// high probability, and binary search over T (package dual) turns this into
// an O(log n + log m)-approximation.
package rounding

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dual"
	"repro/internal/exact"
	"repro/internal/lp"
)

// Options configures the rounding algorithm.
type Options struct {
	// C is the iteration multiplier: the rounding performs C·⌈log₂ n⌉
	// iterations (the paper's c). Default 3.
	C int
	// Rng supplies randomness; a fixed-seed source is created when nil.
	Rng *rand.Rand
	// Precision is the relative precision of the binary search on T.
	// Default 0.05.
	Precision float64
	// Bounds, when non-nil, connects the run to a live bound exchange (the
	// engine portfolio's incumbent bus): the greedy bootstrap and every
	// rounded schedule are published as incumbents the moment they appear,
	// LP-infeasible guesses as certified lower bounds, and the binary
	// search skips guesses at or above the live incumbent.
	Bounds core.BoundBus
}

func (o Options) normalize() Options {
	if o.C <= 0 {
		o.C = 3
	}
	if o.Rng == nil {
		o.Rng = rand.New(rand.NewSource(1))
	}
	if o.Precision <= 0 {
		o.Precision = 0.05
	}
	return o
}

// Fractional is the LP relaxation solution for one makespan guess.
type Fractional struct {
	// T is the makespan guess the relaxation was solved for.
	T float64
	// X[i][j] is the fractional assignment of job j to machine i.
	X [][]float64
	// Y[i][k] is the fractional setup of class k on machine i.
	Y [][]float64
}

// SolveLP solves the LP relaxation of ILP-UM for guess T. It returns
// (nil, nil) when the relaxation is infeasible — a certificate that no
// schedule with makespan ≤ T exists.
func SolveLP(in *core.Instance, T float64) (*Fractional, error) {
	p := &lp.Problem{}
	// Variable indices; -1 marks pairs fixed to zero by constraint (5) or
	// by infinite times.
	xIdx := make([][]int, in.M)
	yIdx := make([][]int, in.M)
	for i := 0; i < in.M; i++ {
		xIdx[i] = make([]int, in.N)
		yIdx[i] = make([]int, in.K)
		for j := 0; j < in.N; j++ {
			if core.IsFinite(in.P[i][j]) && in.P[i][j] <= T+core.Eps && core.IsFinite(in.S[i][in.Class[j]]) {
				xIdx[i][j] = p.AddVar(0, 1)
			} else {
				xIdx[i][j] = -1
			}
		}
		for k := 0; k < in.K; k++ {
			if core.IsFinite(in.S[i][k]) {
				yIdx[i][k] = p.AddVar(0, 1)
			} else {
				yIdx[i][k] = -1
			}
		}
	}
	// (1) machine load.
	for i := 0; i < in.M; i++ {
		terms := []lp.Term{}
		for j := 0; j < in.N; j++ {
			if xIdx[i][j] >= 0 && in.P[i][j] > 0 {
				terms = append(terms, lp.Term{Var: xIdx[i][j], Coef: in.P[i][j]})
			}
		}
		for k := 0; k < in.K; k++ {
			if yIdx[i][k] >= 0 && in.S[i][k] > 0 {
				terms = append(terms, lp.Term{Var: yIdx[i][k], Coef: in.S[i][k]})
			}
		}
		if len(terms) > 0 {
			p.AddConstraint(lp.LE, T, terms...)
		}
	}
	// (2) full assignment.
	for j := 0; j < in.N; j++ {
		terms := []lp.Term{}
		for i := 0; i < in.M; i++ {
			if xIdx[i][j] >= 0 {
				terms = append(terms, lp.Term{Var: xIdx[i][j], Coef: 1})
			}
		}
		if len(terms) == 0 {
			return nil, nil // job cannot run anywhere under T: infeasible
		}
		p.AddConstraint(lp.EQ, 1, terms...)
	}
	// (4) setup dominates assignment.
	for i := 0; i < in.M; i++ {
		for j := 0; j < in.N; j++ {
			if xIdx[i][j] < 0 {
				continue
			}
			k := in.Class[j]
			if yIdx[i][k] < 0 {
				return nil, nil // assignable job but un-setup-able class
			}
			p.AddConstraint(lp.LE, 0,
				lp.Term{Var: xIdx[i][j], Coef: 1},
				lp.Term{Var: yIdx[i][k], Coef: -1})
		}
	}
	sol, err := p.Solve()
	if err != nil {
		return nil, fmt.Errorf("rounding: LP solve for T=%g: %w", T, err)
	}
	if sol.Status != lp.Optimal {
		return nil, nil
	}
	f := &Fractional{T: T, X: make([][]float64, in.M), Y: make([][]float64, in.M)}
	for i := 0; i < in.M; i++ {
		f.X[i] = make([]float64, in.N)
		f.Y[i] = make([]float64, in.K)
		for j := 0; j < in.N; j++ {
			if xIdx[i][j] >= 0 {
				f.X[i][j] = sol.Value(xIdx[i][j])
			}
		}
		for k := 0; k < in.K; k++ {
			if yIdx[i][k] >= 0 {
				f.Y[i][k] = sol.Value(yIdx[i][k])
			}
		}
	}
	return f, nil
}

// RoundStats reports diagnostic counters from one rounding run.
type RoundStats struct {
	// Iterations is the number of rounding iterations performed.
	Iterations int
	// Fallback is the number of jobs assigned by the argmin-p fallback
	// (step 3 of the algorithm); Theorem 3.3's analysis makes this rare.
	Fallback int
}

// Round performs the randomized rounding of a fractional solution (steps
// 1–4 of the algorithm of Section 3.1) and returns a complete feasible
// schedule: c·⌈log₂ n⌉ open-and-claim iterations, duplicate removal by
// keeping first assignments, and the argmin-p fallback for never-claimed
// jobs. The context is polled between iterations; cancellation skips the
// remaining iterations and completes the schedule via the fallback, so the
// result is always feasible.
func Round(ctx context.Context, in *core.Instance, f *Fractional, c int, rng *rand.Rand) (*core.Schedule, RoundStats) {
	iters := c * int(math.Ceil(math.Log2(float64(in.N)+1)))
	if iters < 1 {
		iters = 1
	}
	sched := core.NewSchedule(in.N)
	byClass := in.JobsOfClass()
	assigned := 0
	stats := RoundStats{Iterations: iters}
	for h := 0; h < iters && assigned < in.N && ctx.Err() == nil; h++ {
		for i := 0; i < in.M; i++ {
			for k := 0; k < in.K; k++ {
				y := f.Y[i][k]
				if y <= 0 || rng.Float64() >= y {
					continue
				}
				// Machine i opens class k this iteration.
				for _, j := range byClass[k] {
					if sched.Assign[j] >= 0 {
						continue // duplicate-removal: keep first assignment
					}
					if x := f.X[i][j]; x > 0 && rng.Float64() < x/y {
						sched.Assign[j] = i
						assigned++
					}
				}
			}
		}
	}
	for j := 0; j < in.N; j++ {
		if sched.Assign[j] >= 0 {
			continue
		}
		stats.Fallback++
		best, bestP := -1, math.Inf(1)
		for i := 0; i < in.M; i++ {
			if in.Eligibility(i, j, math.Inf(1)) && in.P[i][j] < bestP {
				best, bestP = i, in.P[i][j]
			}
		}
		sched.Assign[j] = best
	}
	return sched, stats
}

// Detail carries diagnostics beyond the core Result.
type Detail struct {
	// PureMakespan is the best makespan achieved by a *rounded* schedule
	// alone, i.e. excluding the greedy bootstrap that Schedule's result
	// may fall back to. This is the quantity Theorem 3.3 speaks about.
	PureMakespan float64
	// PureSchedule is the schedule achieving PureMakespan (nil only when
	// every guess was LP-infeasible, which cannot happen for guesses at or
	// above the greedy makespan).
	PureSchedule *core.Schedule
	// Guesses is the number of LP feasibility tests performed.
	Guesses int
}

// Schedule runs the full algorithm: binary search on the makespan guess T
// with LP feasibility as the rejection certificate and randomized rounding
// as the construction. The returned Result carries the best schedule seen
// (rounded or the greedy bootstrap) and the largest LP-infeasible guess as
// a certified lower bound on Opt. The context is checked between guesses
// and between rounding iterations; a cancelled run returns the best
// schedule seen so far with Result.Note explaining the early stop.
func Schedule(ctx context.Context, in *core.Instance, opt Options) (core.Result, error) {
	res, _, err := ScheduleDetailed(ctx, in, opt)
	return res, err
}

// ScheduleDetailed is Schedule with rounding-specific diagnostics.
func ScheduleDetailed(ctx context.Context, in *core.Instance, opt Options) (core.Result, Detail, error) {
	opt = opt.normalize()
	var det Detail
	det.PureMakespan = math.Inf(1)
	greedy, err := baseline.Greedy(in)
	if err != nil {
		return core.Result{}, det, fmt.Errorf("rounding: greedy bootstrap: %w", err)
	}
	ub := greedy.Makespan(in)
	vol := exact.VolumeLowerBound(in)
	if opt.Bounds != nil {
		opt.Bounds.PublishUpper(ub) // the greedy schedule is feasible
		opt.Bounds.PublishLower(vol)
	}
	// Seed the pure-rounding record at T = ub, where the LP is feasible by
	// construction (the greedy schedule is an integral witness); the binary
	// search may otherwise reject every interior guess and leave no
	// rounded schedule at all.
	if ub > 0 && ctx.Err() == nil {
		if f, err := SolveLP(in, ub); err == nil && f != nil {
			sched, _ := Round(ctx, in, f, opt.C, opt.Rng)
			det.PureMakespan, det.PureSchedule = sched.Makespan(in), sched
			if opt.Bounds != nil {
				opt.Bounds.PublishUpper(det.PureMakespan)
			}
		}
	}
	var solveErr error
	out := dual.SearchWithBounds(ctx, in, 0, ub, opt.Precision, greedy, opt.Bounds, func(T float64) (*core.Schedule, bool) {
		det.Guesses++
		f, err := SolveLP(in, T)
		if err != nil {
			solveErr = err
			return nil, true // abort ascent; error reported below
		}
		if f == nil {
			return nil, false
		}
		sched, _ := Round(ctx, in, f, opt.C, opt.Rng)
		if ms := sched.Makespan(in); ms < det.PureMakespan {
			det.PureMakespan, det.PureSchedule = ms, sched
		}
		return sched, true
	})
	if solveErr != nil {
		return core.Result{}, det, solveErr
	}
	lb := out.LowerBound
	if vol > lb {
		lb = vol
	}
	note := ""
	if out.Err != nil {
		note = fmt.Sprintf("binary search stopped early (%v after %d guesses); schedule is best-so-far, O(log n + log m) guarantee not certified", out.Err, det.Guesses)
	}
	return core.Result{
		Algorithm:  "randomized-rounding",
		Schedule:   out.Schedule,
		Makespan:   out.Makespan,
		LowerBound: lb,
		Note:       note,
	}, det, nil
}
