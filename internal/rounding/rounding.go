// Package rounding implements the randomized LP rounding algorithm of
// Section 3.1 of the paper: an O(log n + log m)-approximation for scheduling
// with setup times on unrelated machines.
//
// For a makespan guess T, the LP relaxation of ILP-UM is solved:
//
//	Σ_j x_ij p_ij + Σ_k y_ik s_ik ≤ T   ∀i            (1)
//	Σ_i x_ij = 1                        ∀j            (2)
//	0 ≤ x_ij, y_ik ≤ 1                                (3 relaxed)
//	y_i,k_j ≥ x_ij                      ∀i,j          (4)
//	x_ij = 0                            ∀i,j: p_ij > T (5)
//
// and rounded: in each of c·log n iterations every (machine, class) pair
// opens with probability y*_ik, and an open pair claims each of its
// class's jobs independently with probability x*_ij/y*_ik. Jobs assigned
// multiple times keep their first assignment; jobs never assigned fall back
// to argmin_i p_ij. Theorem 3.3: the result is O(T(log n + log m)) with
// high probability, and binary search over T (package dual) turns this into
// an O(log n + log m)-approximation.
package rounding

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dual"
	"repro/internal/exact"
	"repro/internal/lp"
)

// Options configures the rounding algorithm.
type Options struct {
	// C is the iteration multiplier: the rounding performs C·⌈log₂ n⌉
	// iterations (the paper's c). Default 3.
	C int
	// Rng supplies randomness; a fixed-seed source is created when nil.
	// Runs are deterministic per seed under the current seed format (v2,
	// batched fixed-point draws — see Round); schedules differ from what
	// the same seed produced under v1.
	Rng *rand.Rand
	// Precision is the relative precision of the binary search on T.
	// Default 0.05.
	Precision float64
	// Bounds, when non-nil, connects the run to a live bound exchange (the
	// engine portfolio's incumbent bus): the greedy bootstrap and every
	// rounded schedule are published as incumbents the moment they appear,
	// LP-infeasible guesses as certified lower bounds, and the binary
	// search skips guesses at or above the live incumbent.
	Bounds core.BoundBus
	// LPBackend names the lp.Backend the per-guess feasibility LPs run on:
	// "sparse" (revised simplex, the default), "dense", "ipm"
	// (interior-point cold solve with crossover to warm simplex), "auto"
	// (size-triggered: IPM on large cold builds, sparse otherwise), or ""
	// for the default. Unknown names are a configuration error.
	LPBackend string
	// LPNoPresolve disables the LP presolve/scaling pipeline that
	// otherwise runs ahead of every cold backend build (lp.WithPresolve).
	// Off by default: presolve on.
	LPNoPresolve bool
	// SearchWorkers is the speculative parallelism of the binary search on
	// T (dual.Speculate): that many makespan guesses are evaluated
	// concurrently, each on its own Relaxation clone, shrinking the search
	// to fewer serial rounds. 0 or 1 keeps the sequential bisection.
	// Memory scales with workers (one LP backend per worker); verdicts are
	// equivalent to the sequential search within precision.
	SearchWorkers int
	// Budget, when non-nil, governs the search width live (the engine's
	// global concurrency budget): per-worker state is provisioned up to
	// min(SearchWorkers, Budget.Cap()) and each search round runs only as
	// wide as the budget grants at that moment, degrading toward the
	// sequential bisection on a saturated box. Nil keeps the local
	// GOMAXPROCS clamp.
	Budget core.TokenBudget
	// Warm, when usable (non-nil with a feasible Fallback witness and a
	// positive finite Upper), switches the run onto the incremental
	// re-solve path: the greedy bootstrap and the envelope-seed solve are
	// skipped, the binary search opens on [Warm.Lower, Warm.Upper] instead
	// of [0, greedy], Warm.Fallback stands in for the greedy witness, and
	// when Warm.State holds a *Relaxation already patched onto this exact
	// instance (pointer identity) the LP is re-entered with its retained
	// warm basis instead of being rebuilt. An unusable Warm value silently
	// degrades to the cold path — correctness never depends on it.
	Warm *core.WarmStart
}

func (o Options) normalize() Options {
	if o.C <= 0 {
		o.C = 3
	}
	if o.Rng == nil {
		o.Rng = rand.New(rand.NewSource(1))
	}
	if o.Precision <= 0 {
		o.Precision = 0.05
	}
	return o
}

// Fractional is the LP relaxation solution for one makespan guess.
type Fractional struct {
	// T is the makespan guess the relaxation was solved for.
	T float64
	// X[i][j] is the fractional assignment of job j to machine i.
	X [][]float64
	// Y[i][k] is the fractional setup of class k on machine i.
	Y [][]float64

	xFlat, yFlat []float64 // backing storage for the row slices
	pooled       bool      // eligible for fracPool recycling via Release
}

// fracPool recycles the O(M·(N+K)) matrix storage of Fractional values
// between SolveLP calls, so the cold path stops allocating it per guess.
var fracPool sync.Pool

// makeFractional builds a Fractional with flat backing storage.
func makeFractional(m, n, k int, pooled bool) *Fractional {
	f := &Fractional{
		X: make([][]float64, m), Y: make([][]float64, m),
		xFlat: make([]float64, m*n), yFlat: make([]float64, m*k),
		pooled: pooled,
	}
	for i := 0; i < m; i++ {
		f.X[i] = f.xFlat[i*n : (i+1)*n]
		f.Y[i] = f.yFlat[i*k : (i+1)*k]
	}
	return f
}

// newFractional returns a zeroed Fractional for the given shape, reusing
// pooled storage when a released value of the same shape is available.
func newFractional(m, n, k int) *Fractional {
	if v := fracPool.Get(); v != nil {
		f := v.(*Fractional)
		if len(f.X) == m && len(f.xFlat) == m*n && len(f.yFlat) == m*k {
			for i := range f.xFlat {
				f.xFlat[i] = 0
			}
			for i := range f.yFlat {
				f.yFlat[i] = 0
			}
			f.T = 0
			f.pooled = true // re-arm Release (cleared when it was released)
			return f
		}
		// Wrong shape (a different instance): let it be collected.
	}
	return makeFractional(m, n, k, true)
}

// Release returns the Fractional's matrix storage to an internal pool for
// reuse by a later SolveLP call. Callers that are done with a fractional
// solution (after rounding it) should release it; using f after Release is
// a use-after-free-style bug. Release is a no-op for values that do not
// own poolable storage (e.g. the reused buffer a Relaxation returns).
func (f *Fractional) Release() {
	if f == nil || !f.pooled {
		return
	}
	// Disarm before pooling so a double Release cannot put the same value
	// twice (two Gets would then share one backing array).
	f.pooled = false
	fracPool.Put(f)
}

// SolveLP solves the LP relaxation of ILP-UM for guess T. It returns
// (nil, nil) when the relaxation is infeasible — a certificate that no
// schedule with makespan ≤ T exists.
func SolveLP(in *core.Instance, T float64) (*Fractional, error) {
	mdl := buildILPModel(in, T)
	if mdl.infeasible {
		return nil, nil // some job cannot run anywhere under T
	}
	sol, err := mdl.prob.Solve()
	if err != nil {
		return nil, fmt.Errorf("rounding: LP solve for T=%g: %w", T, err)
	}
	if sol.Status != lp.Optimal {
		return nil, nil
	}
	f := newFractional(in.M, in.N, in.K)
	f.T = T
	fillFractional(f, in, mdl.xIdx, mdl.yIdx, sol.X)
	return f, nil
}

// ilpModel is the LP relaxation of ILP-UM — rows (1), (2), (4) —
// materialized at an envelope T: a variable exists for every (machine,
// job) pair assignable at T and the load RHS is T. It is the one model
// builder shared by the cold path (SolveLP solves it as-is) and the warm
// path (Relaxation mutates the variable bounds and RHS in place for
// smaller guesses), so the two can never drift apart.
type ilpModel struct {
	prob    *lp.Problem
	xIdx    [][]int // variable per (machine, job); -1 excluded
	yIdx    [][]int // variable per (machine, class); -1 excluded
	loadRow []int   // constraint row of machine i's load; -1 none
	asgRow  []int   // constraint row of job j's assignment EQ
	xv      []relaxVar
	// infeasible marks a job with no eligible machine at the envelope:
	// the relaxation (and the ILP) is infeasible at T and every T' ≤ T.
	infeasible bool
}

// relaxVar identifies one x_ij variable for constraint-(5) bound clamping.
type relaxVar struct {
	v int     // LP variable index
	j int     // job
	p float64 // p_ij, the clamp threshold
}

func buildILPModel(in *core.Instance, T float64) *ilpModel {
	mdl := &ilpModel{
		prob:    &lp.Problem{},
		xIdx:    make([][]int, in.M),
		yIdx:    make([][]int, in.M),
		loadRow: make([]int, in.M),
	}
	p := mdl.prob
	// Variable gating: x_ij exists iff the pair is assignable at T
	// (finite p ≤ T, finite class setup); y_ik iff the setup is finite.
	for i := 0; i < in.M; i++ {
		mdl.xIdx[i] = make([]int, in.N)
		mdl.yIdx[i] = make([]int, in.K)
		for j := 0; j < in.N; j++ {
			if core.IsFinite(in.P[i][j]) && in.P[i][j] <= T+core.Eps && core.IsFinite(in.S[i][in.Class[j]]) {
				v := p.AddVar(0, 1)
				mdl.xIdx[i][j] = v
				mdl.xv = append(mdl.xv, relaxVar{v: v, j: j, p: in.P[i][j]})
			} else {
				mdl.xIdx[i][j] = -1
			}
		}
		for k := 0; k < in.K; k++ {
			if core.IsFinite(in.S[i][k]) {
				mdl.yIdx[i][k] = p.AddVar(0, 1)
			} else {
				mdl.yIdx[i][k] = -1
			}
		}
	}
	// One scratch terms slice, preallocated for the widest row shape (a
	// load row has up to N assignment plus K setup terms) and reused
	// across rows: lp.Problem copies the coefficients out on AddConstraint.
	terms := make([]lp.Term, 0, in.N+in.K)
	// (1) machine load.
	for i := 0; i < in.M; i++ {
		terms = terms[:0]
		for j := 0; j < in.N; j++ {
			if mdl.xIdx[i][j] >= 0 && in.P[i][j] > 0 {
				terms = append(terms, lp.Term{Var: mdl.xIdx[i][j], Coef: in.P[i][j]})
			}
		}
		for k := 0; k < in.K; k++ {
			if mdl.yIdx[i][k] >= 0 && in.S[i][k] > 0 {
				terms = append(terms, lp.Term{Var: mdl.yIdx[i][k], Coef: in.S[i][k]})
			}
		}
		if len(terms) > 0 {
			mdl.loadRow[i] = p.NumRows()
			p.AddConstraint(lp.LE, T, terms...)
		} else {
			mdl.loadRow[i] = -1
		}
	}
	// (2) full assignment.
	mdl.asgRow = make([]int, in.N)
	for j := 0; j < in.N; j++ {
		terms = terms[:0]
		for i := 0; i < in.M; i++ {
			if mdl.xIdx[i][j] >= 0 {
				terms = append(terms, lp.Term{Var: mdl.xIdx[i][j], Coef: 1})
			}
		}
		if len(terms) == 0 {
			mdl.infeasible = true // job j can run nowhere at T
			return mdl
		}
		mdl.asgRow[j] = p.NumRows()
		p.AddConstraint(lp.EQ, 1, terms...)
	}
	// (4) setup dominates assignment (y exists whenever x does: the x
	// variable required a finite setup time).
	for i := 0; i < in.M; i++ {
		for j := 0; j < in.N; j++ {
			if mdl.xIdx[i][j] < 0 {
				continue
			}
			terms = append(terms[:0],
				lp.Term{Var: mdl.xIdx[i][j], Coef: 1},
				lp.Term{Var: mdl.yIdx[i][in.Class[j]], Coef: -1})
			p.AddConstraint(lp.LE, 0, terms...)
		}
	}
	return mdl
}

// fillFractional copies the structural LP values into the X/Y matrices;
// entries whose variable was fixed or excluded stay zero.
func fillFractional(f *Fractional, in *core.Instance, xIdx, yIdx [][]int, x []float64) {
	for i := 0; i < in.M; i++ {
		for j := 0; j < in.N; j++ {
			if v := xIdx[i][j]; v >= 0 {
				f.X[i][j] = x[v]
			}
		}
		for k := 0; k < in.K; k++ {
			if v := yIdx[i][k]; v >= 0 {
				f.Y[i][k] = x[v]
			}
		}
	}
}

// RelaxationConfig configures NewRelaxation.
type RelaxationConfig struct {
	// Envelope is the makespan value the relaxation is built at: every
	// x_ij with p_ij ≤ Envelope gets a variable, and ReSolve is exact for
	// any guess T ≤ Envelope. It should be an achievable makespan (the
	// greedy bound — then ReSolve is also exact above it); 0 computes the
	// greedy bound internally.
	Envelope float64
	// Backend selects the lp.Backend implementation ("" =
	// lp.DefaultBackend). lp.Auto resolves by problem size at build time;
	// rebuilds after ApplyDelta re-resolve it against the grown problem.
	Backend lp.BackendKind
	// NoPresolve opts the relaxation's backends out of the LP presolve and
	// equilibration-scaling pipeline (lp.WithPresolve(false)).
	NoPresolve bool
}

// Relaxation is the ILP-UM LP relaxation built once at the envelope T=ub
// and re-solved per guess. Where SolveLP rebuilds O(M·N) variables,
// O(M·N) constraints and a fresh solver for every binary-search guess,
// ReSolve applies a guess by mutating the built problem in place —
// constraint (5) clamps variable upper bounds to 0, the load RHS is
// updated — and warm-starts the backend from the previous optimal basis
// (dual simplex), so a dual-approximation search costs one build plus
// cheap re-solves instead of guesses × full solves.
//
// A Relaxation is not safe for concurrent use, and the Fractional returned
// by ReSolve is a buffer owned by the Relaxation, valid until the next
// ReSolve call.
type Relaxation struct {
	in         *core.Instance
	kind       lp.BackendKind
	noPresolve bool
	ws         *lp.Workspace
	mdl        *ilpModel
	be         lp.Backend

	envelope float64
	banned   []bool // current clamp state, parallel to mdl.xv
	avail    []int  // per job: count of unbanned x variables

	// Incremental re-solve state (ApplyDelta). dead lists variables
	// permanently fixed to 0 (a departed job's or removed machine's
	// columns) and deadRows lists rows whose RHS is permanently pinned to 0
	// (a departed job's assignment row); both must be replayed on any
	// backend rebuild. stale marks the backend as out of date with the
	// (extended) model; the rebuild is deferred to the next ReSolve so a
	// re-solve whose bracket closes without LP work never pays it. pending,
	// when non-nil, is a basis already remapped to the grown standard form,
	// transplanted into the fresh backend during that rebuild. lastT is the
	// RHS the retained basis was last optimal at, replayed before the
	// transplant repairs.
	dead     []int
	deadRows []int
	stale    bool
	pending  *lp.Basis
	lastT    float64

	frac     *Fractional
	iters    int
	presolve *lp.PresolveInfo // latest reduction stats (nil when bypassed off)
}

// NewRelaxation builds the relaxation once at cfg.Envelope (via the same
// buildILPModel that SolveLP solves cold). The zero config uses the
// greedy bound as envelope and the default LP backend.
func NewRelaxation(in *core.Instance, cfg RelaxationConfig) (*Relaxation, error) {
	kind, err := lp.ParseBackend(string(cfg.Backend))
	if err != nil {
		return nil, fmt.Errorf("rounding: %w", err)
	}
	ub := cfg.Envelope
	if ub <= 0 {
		g, err := baseline.Greedy(in)
		if err != nil {
			return nil, fmt.Errorf("rounding: greedy envelope: %w", err)
		}
		ub = g.Makespan(in)
	}
	rel := &Relaxation{
		in: in, kind: kind, noPresolve: cfg.NoPresolve, ws: lp.NewWorkspace(),
		mdl:      buildILPModel(in, ub),
		envelope: ub,
		avail:    make([]int, in.N),
		frac:     makeFractional(in.M, in.N, in.K, false),
	}
	rel.banned = make([]bool, len(rel.mdl.xv))
	for _, xv := range rel.mdl.xv {
		rel.avail[xv.j]++
	}
	if rel.mdl.infeasible {
		return rel, nil // every ReSolve reports infeasible without solving
	}
	rel.be, err = lp.NewBackend(kind, rel.mdl.prob, rel.ws, lp.WithPresolve(!cfg.NoPresolve))
	if err != nil {
		return nil, fmt.Errorf("rounding: %w", err)
	}
	return rel, nil
}

// Clone returns an independent Relaxation for speculative parallel dual
// searches: it shares the immutable built model (variables, rows, index
// maps) with the parent but owns its own LP backend (basis, factorization,
// workspace), clamp state and result buffer, so clones and parent can
// ReSolve concurrently on separate goroutines without perturbing each
// other's warm bases. The clone inherits the parent's current basis, which
// stays useful because consecutive guesses in a worker's sub-bracket differ
// only in RHS and bound clamps. Clone must not be called concurrently with
// ReSolve on the receiver. Iterations are counted per clone.
func (rel *Relaxation) Clone() *Relaxation {
	if rel.stale {
		// A deferred post-delta rebuild must land in the parent before the
		// backend can be cloned; a transplant failure falls back to a cold
		// backend inside materialize, so be is valid either way.
		rel.materialize()
	}
	c := &Relaxation{
		in: rel.in, kind: rel.kind, noPresolve: rel.noPresolve, ws: lp.NewWorkspace(), mdl: rel.mdl,
		envelope: rel.envelope,
		banned:   append([]bool(nil), rel.banned...),
		avail:    append([]int(nil), rel.avail...),
		dead:     append([]int(nil), rel.dead...),
		deadRows: append([]int(nil), rel.deadRows...),
		lastT:    rel.lastT,
		frac:     makeFractional(rel.in.M, rel.in.N, rel.in.K, false),
	}
	if rel.be != nil {
		c.be = rel.be.Clone()
	}
	return c
}

// Backend reports the lp backend kind the relaxation was requested with
// (possibly lp.Auto); ResolvedBackend reports what actually runs.
func (rel *Relaxation) Backend() lp.BackendKind { return rel.kind }

// ResolvedBackend reports the backend implementation the relaxation
// actually solves on, as "kind" when the request resolved to itself or
// "requested(resolved)" when it differed — "auto(ipm)" says the size
// trigger picked the interior-point path for this instance.
func (rel *Relaxation) ResolvedBackend() string {
	if rel.be == nil {
		return string(rel.kind)
	}
	if k := rel.be.Kind(); k != rel.kind {
		return fmt.Sprintf("%s(%s)", rel.kind, k)
	}
	return string(rel.kind)
}

// Iterations returns the cumulative simplex pivots across all ReSolve
// calls so far — the per-backend effort metric behind Detail.LPIterations.
func (rel *Relaxation) Iterations() int { return rel.iters }

// Presolve reports what the LP presolve pipeline did for this relaxation's
// backend — the stats from the most recent solve that ran through it, or
// nil when presolve is disabled or no solve has completed yet.
func (rel *Relaxation) Presolve() *lp.PresolveInfo { return rel.presolve }

// ReSolve solves the relaxation for guess T, reusing the built problem and
// warm-starting from the previous guess's basis. Like SolveLP it returns
// (nil, nil) when the relaxation is infeasible at T. The returned
// Fractional is owned by the Relaxation and valid until the next ReSolve.
//
// Verdicts are exact for T ≤ the build envelope. Above the envelope,
// variables for p_ij ∈ (envelope, T] were never created; when the envelope
// is an achievable makespan (the greedy bound, the default) the relaxation
// is feasible there and hence for every larger T, so verdicts remain
// correct for all T.
func (rel *Relaxation) ReSolve(T float64) (*Fractional, error) {
	if rel.mdl.infeasible {
		return nil, nil // a job ran nowhere even at the envelope
	}
	if rel.stale {
		rel.materialize()
	}
	if rel.be == nil {
		return nil, fmt.Errorf("rounding: relaxation has no backend (materialize failed)")
	}
	// Constraint (5): clamp x_ij with p_ij > T to 0 in place; lift clamps
	// the binary search's upward moves need again.
	for t, xv := range rel.mdl.xv {
		now := xv.p > T+core.Eps
		if now == rel.banned[t] {
			continue
		}
		u := 1.0
		if now {
			u = 0
			rel.avail[xv.j]--
		} else {
			rel.avail[xv.j]++
		}
		rel.be.SetVarUpper(xv.v, u)
		rel.banned[t] = now
	}
	for _, a := range rel.avail {
		if a == 0 {
			return nil, nil // some job cannot run anywhere under T
		}
	}
	for _, r := range rel.mdl.loadRow {
		if r >= 0 {
			rel.be.SetRHS(r, T)
		}
	}
	sol, err := rel.be.Solve()
	if err != nil {
		// The warm basis went numerically bad: rebuild the backend cold
		// (same problem, same workspace memory) and retry once.
		if rerr := rel.rebuild(T); rerr != nil {
			return nil, fmt.Errorf("rounding: LP rebuild for T=%g after %v: %w", T, err, rerr)
		}
		if sol, err = rel.be.Solve(); err != nil {
			return nil, fmt.Errorf("rounding: LP re-solve for T=%g: %w", T, err)
		}
	}
	rel.iters += sol.Iterations
	if sol.Presolve != nil {
		rel.presolve = sol.Presolve
	}
	rel.lastT = T
	switch sol.Status {
	case lp.Optimal:
	case lp.Infeasible:
		return nil, nil
	default:
		return nil, fmt.Errorf("rounding: LP re-solve for T=%g: unexpected status %v", T, sol.Status)
	}
	for i := range rel.frac.xFlat {
		rel.frac.xFlat[i] = 0
	}
	for i := range rel.frac.yFlat {
		rel.frac.yFlat[i] = 0
	}
	rel.frac.T = T
	fillFractional(rel.frac, rel.in, rel.mdl.xIdx, rel.mdl.yIdx, sol.X)
	return rel.frac, nil
}

// rebuild replaces the backend with a cold one and replays the current
// mutation state (clamped variables, permanently dead columns and rows,
// load RHS at T).
func (rel *Relaxation) rebuild(T float64) error {
	be, err := lp.NewBackend(rel.kind, rel.mdl.prob, rel.ws, lp.WithPresolve(!rel.noPresolve))
	if err != nil {
		return err
	}
	rel.replay(be, T)
	rel.be = be
	return nil
}

// replay pushes the relaxation's current mutation state into a freshly
// built backend: permanent deletions first, then the per-guess clamps and
// the load RHS.
func (rel *Relaxation) replay(be lp.Backend, T float64) {
	for _, v := range rel.dead {
		be.SetVarUpper(v, 0)
	}
	for _, r := range rel.deadRows {
		be.SetRHS(r, 0)
	}
	for t, b := range rel.banned {
		if b {
			be.SetVarUpper(rel.mdl.xv[t].v, 0)
		}
	}
	for _, r := range rel.mdl.loadRow {
		if r >= 0 {
			be.SetRHS(r, T)
		}
	}
}

// materialize completes a deferred ApplyDelta backend rebuild: it builds a
// backend over the grown problem, replays the retained mutation state at
// the basis's last optimal guess, and transplants the remapped basis so the
// next Solve repairs primal feasibility with dual-simplex pivots instead of
// a cold phase-1 run. A failed transplant (singular or rejected basis)
// degrades to the cold backend — correctness never depends on the warm
// start.
func (rel *Relaxation) materialize() {
	ext := rel.pending
	rel.pending, rel.stale = nil, false
	be, err := lp.NewBackend(rel.kind, rel.mdl.prob, rel.ws, lp.WithPresolve(!rel.noPresolve))
	if err != nil {
		rel.be = nil // surfaced by ReSolve as an error
		return
	}
	T := rel.lastT
	if T <= 0 {
		T = rel.envelope
	}
	rel.replay(be, T)
	if ext != nil {
		_ = be.Warm(ext) // cold continue on failure
	}
	rel.be = be
}

// bernScale is the fixed-point one: a batched Bernoulli draw with
// threshold t succeeds with probability t/bernScale.
const bernScale = 1 << 32

// bernThresh converts a probability to its 32-bit fixed-point draw
// threshold. p ≤ 0 maps to 0 (never succeeds, and callers skip the draw
// entirely), p ≥ 1 to bernScale (always succeeds: every 32-bit lane value
// is below it).
func bernThresh(p float64) uint64 {
	switch {
	case p <= 0:
		return 0
	case p >= 1:
		return bernScale
	default:
		return uint64(p * bernScale)
	}
}

// bern batches Bernoulli draws over the rng: one rng.Uint64() refill feeds
// two independent 32-bit lanes, each compared against a fixed-point
// threshold, so the rounding's innermost loops cost one rng call per two
// draws instead of one float conversion per draw. 32-bit resolution
// (granularity 2⁻³²) is far below the LP solver's own tolerance.
type bern struct {
	rng   *rand.Rand
	bits  uint64
	lanes int
}

// draw reports success with probability t/bernScale, consuming one lane.
func (b *bern) draw(t uint64) bool {
	if b.lanes == 0 {
		b.bits = b.rng.Uint64()
		b.lanes = 2
	}
	v := uint64(uint32(b.bits))
	b.bits >>= 32
	b.lanes--
	return v < t
}

// threshPool recycles the O(M·(N+K)) fixed-point threshold buffer between
// Round calls (one buffer per call, M·K open thresholds followed by M·N
// claim thresholds).
var threshPool sync.Pool

func getThresh(n int) []uint64 {
	if v := threshPool.Get(); v != nil {
		if s := *v.(*[]uint64); cap(s) >= n {
			return s[:n]
		}
	}
	return make([]uint64, n)
}

func putThresh(s []uint64) { threshPool.Put(&s) }

// RoundStats reports diagnostic counters from one rounding run.
type RoundStats struct {
	// Iterations is the number of rounding iterations performed.
	Iterations int
	// Fallback is the number of jobs assigned by the argmin-p fallback
	// (step 3 of the algorithm); Theorem 3.3's analysis makes this rare.
	Fallback int
}

// Round performs the randomized rounding of a fractional solution (steps
// 1–4 of the algorithm of Section 3.1) and returns a complete feasible
// schedule: c·⌈log₂ n⌉ open-and-claim iterations, duplicate removal by
// keeping first assignments, and the argmin-p fallback for never-claimed
// jobs. The context is polled between iterations; cancellation skips the
// remaining iterations and completes the schedule via the fallback, so the
// result is always feasible.
//
// Draws are batched (seed format v2): the open and claim probabilities are
// converted to fixed-point thresholds once per call, each rng.Uint64()
// feeds two Bernoulli draws, and fully-assigned classes stop consuming
// draws. A given rng seed therefore yields a different schedule than
// earlier (v1, per-draw Float64) releases produced — still deterministic
// per seed, and distributionally equivalent up to the 2⁻³² threshold
// granularity.
func Round(ctx context.Context, in *core.Instance, f *Fractional, c int, rng *rand.Rand) (*core.Schedule, RoundStats) {
	iters := c * int(math.Ceil(math.Log2(float64(in.N)+1)))
	if iters < 1 {
		iters = 1
	}
	sched := core.NewSchedule(in.N)
	byClass := in.JobsOfClass()
	assigned := 0
	stats := RoundStats{Iterations: iters}
	// Hoist the probability arithmetic out of the iteration loop: the open
	// threshold per (machine, class), the claim threshold x_ij/y_ik per
	// (machine, job). A zero threshold means "never" and is skipped without
	// consuming a draw.
	buf := getThresh(in.M*in.K + in.M*in.N)
	open := buf[:in.M*in.K]
	claim := buf[in.M*in.K:]
	for i := 0; i < in.M; i++ {
		ob, cb := open[i*in.K:], claim[i*in.N:]
		for k := 0; k < in.K; k++ {
			ob[k] = bernThresh(f.Y[i][k])
		}
		for j := 0; j < in.N; j++ {
			if x := f.X[i][j]; x > 0 {
				cb[j] = bernThresh(x / f.Y[i][in.Class[j]])
			} else {
				cb[j] = 0
			}
		}
	}
	// classLeft tracks unassigned jobs per class so exhausted classes stop
	// paying the open draw and the claim scan.
	classLeft := make([]int, in.K)
	for k, jobs := range byClass {
		classLeft[k] = len(jobs)
	}
	d := bern{rng: rng}
	for h := 0; h < iters && assigned < in.N && ctx.Err() == nil; h++ {
		for i := 0; i < in.M; i++ {
			ob, cb := open[i*in.K:], claim[i*in.N:]
			for k := 0; k < in.K; k++ {
				if classLeft[k] == 0 {
					continue // every job of the class is placed already
				}
				if t := ob[k]; t == 0 || !d.draw(t) {
					continue
				}
				// Machine i opens class k this iteration.
				for _, j := range byClass[k] {
					if sched.Assign[j] >= 0 {
						continue // duplicate-removal: keep first assignment
					}
					if t := cb[j]; t != 0 && d.draw(t) {
						sched.Assign[j] = i
						assigned++
						classLeft[k]--
					}
				}
			}
		}
	}
	putThresh(buf)
	for j := 0; j < in.N; j++ {
		if sched.Assign[j] >= 0 {
			continue
		}
		stats.Fallback++
		best, bestP := -1, math.Inf(1)
		for i := 0; i < in.M; i++ {
			if in.Eligibility(i, j, math.Inf(1)) && in.P[i][j] < bestP {
				best, bestP = i, in.P[i][j]
			}
		}
		sched.Assign[j] = best
	}
	return sched, stats
}

// Detail carries diagnostics beyond the core Result.
type Detail struct {
	// PureMakespan is the best makespan achieved by a *rounded* schedule
	// alone, i.e. excluding the greedy bootstrap that Schedule's result
	// may fall back to. This is the quantity Theorem 3.3 speaks about.
	PureMakespan float64
	// PureSchedule is the schedule achieving PureMakespan (nil only when
	// every guess was LP-infeasible, which cannot happen for guesses at or
	// above the greedy makespan).
	PureSchedule *core.Schedule
	// Guesses is the number of LP feasibility tests performed.
	Guesses int
	// LPIterations is the total number of LP iterations across every LP
	// solved (the build at T=ub plus each warm re-solve): simplex pivots,
	// plus interior-point iterations on the ipm/auto cold path — the
	// effort metric that makes LP-backend wins visible per run, not only
	// in microbenchmarks.
	LPIterations int
	// LPBackend is the lp backend the run solved on ("dense", "sparse",
	// "ipm"), with an auto request reporting its size-triggered
	// resolution as e.g. "auto(ipm)".
	LPBackend string
	// LPPresolve is the presolve pipeline's reduction report for the
	// primary relaxation (rows/columns/nonzeros before and after, scaling
	// passes), nil when presolve was disabled or never engaged.
	LPPresolve *lp.PresolveInfo
	// Accepted is the search's final accept-backed upper bracket edge
	// (dual.Outcome.Accepted). The re-solve pipeline retains it and lifts
	// it through Delta.AcceptedCap into the next search's bracket.
	Accepted float64
	// Relaxation is the primary (worker-0) relaxation the run solved on,
	// exposed so the engine can retain it — with its warm basis — for
	// ApplyDelta on the next delta. Callers that keep it own it: it must
	// not be used after the instance is re-solved elsewhere.
	Relaxation *Relaxation
}

// Schedule runs the full algorithm: binary search on the makespan guess T
// with LP feasibility as the rejection certificate and randomized rounding
// as the construction. The returned Result carries the best schedule seen
// (rounded or the greedy bootstrap) and the largest LP-infeasible guess as
// a certified lower bound on Opt. The context is checked between guesses
// and between rounding iterations; a cancelled run returns the best
// schedule seen so far with Result.Note explaining the early stop.
func Schedule(ctx context.Context, in *core.Instance, opt Options) (core.Result, error) {
	res, _, err := ScheduleDetailed(ctx, in, opt)
	return res, err
}

// ScheduleDetailed is Schedule with rounding-specific diagnostics.
func ScheduleDetailed(ctx context.Context, in *core.Instance, opt Options) (core.Result, Detail, error) {
	opt = opt.normalize()
	var det Detail
	det.PureMakespan = math.Inf(1)
	vol := exact.VolumeLowerBound(in)
	var fallback *core.Schedule
	var rel *Relaxation
	var ub, lb float64
	warm := opt.Warm
	if warm != nil && (warm.Fallback == nil || !(warm.Upper > 0) || !core.IsFinite(warm.Upper)) {
		warm = nil // unusable warm start: degrade to the cold path
	}
	if warm != nil {
		// Incremental re-solve path: the caller supplies the witness and
		// bracket, so the greedy bootstrap is skipped entirely.
		fallback = warm.Fallback
		ub = warm.Upper
		if ms := fallback.Makespan(in); ms < ub {
			ub = ms
		}
		lb = warm.Lower
		if r, ok := warm.State.(*Relaxation); ok && r != nil && r.Instance() == in && r.Envelope()+core.Eps >= ub {
			rel = r // retained relaxation, already patched onto in
		}
	} else {
		greedy, err := baseline.Greedy(in)
		if err != nil {
			return core.Result{}, det, fmt.Errorf("rounding: greedy bootstrap: %w", err)
		}
		fallback = greedy
		ub = greedy.Makespan(in)
	}
	if vol > lb {
		lb = vol
	}
	if opt.Bounds != nil {
		opt.Bounds.PublishUpper(ub) // the fallback schedule is feasible
		opt.Bounds.PublishLower(lb)
	}
	// Build the LP relaxation once at the envelope T = ub — unless the warm
	// start already carries one patched onto this instance, whose retained
	// basis then warm-starts the first guess directly. Every guess of the
	// binary search below re-solves it in place (mutated bounds and RHS,
	// warm-started basis) instead of rebuilding problem and tableau.
	if rel == nil {
		var err error
		rel, err = NewRelaxation(in, RelaxationConfig{Envelope: ub, Backend: lp.BackendKind(opt.LPBackend), NoPresolve: opt.LPNoPresolve})
		if err != nil {
			return core.Result{}, det, err
		}
	}
	det.LPBackend = rel.ResolvedBackend()
	// Seed the pure-rounding record at T = ub, where the LP is feasible by
	// construction (the greedy schedule is an integral witness); the binary
	// search may otherwise reject every interior guess and leave no
	// rounded schedule at all. The warm path skips this seed solve — its
	// fallback witness already bounds the bracket, and paying an LP solve
	// at the bracket's top edge would erase the latency win.
	if warm == nil && ub > 0 && ctx.Err() == nil {
		if f, err := rel.ReSolve(ub); err == nil && f != nil {
			sched, _ := Round(ctx, in, f, opt.C, opt.Rng)
			det.PureMakespan, det.PureSchedule = sched.Makespan(in), sched
			if opt.Bounds != nil {
				opt.Bounds.PublishUpper(det.PureMakespan)
			}
		}
	}
	// One decider per search worker: worker 0 re-solves the primary
	// relaxation, every further worker an independent clone (own backend,
	// own warm basis), and each worker draws from its own rng stream, so
	// the speculative search runs race-free without locking the LP layer.
	// The shared diagnostics (guess count, pure-rounding record) and the
	// abort-on-error channel are the only cross-worker state, guarded by mu.
	workers := dual.PlanParallelism(opt.SearchWorkers, opt.Budget)
	if ub <= 0 {
		// A zero-makespan instance: the search below returns without
		// evaluating a guess, so per-worker relaxation clones would be
		// pure waste.
		workers = 1
	}
	var mu sync.Mutex
	var solveErr error
	rels := make([]*Relaxation, workers)
	deciders := make([]dual.GuessDecider, workers)
	rels[0] = rel
	for w := 1; w < workers; w++ {
		rels[w] = rel.Clone()
	}
	for w := 0; w < workers; w++ {
		r, rng := rels[w], opt.Rng
		if w > 0 {
			rng = rand.New(rand.NewSource(opt.Rng.Int63()))
		}
		deciders[w] = func(g dual.Guess) (*core.Schedule, bool) {
			mu.Lock()
			det.Guesses++
			mu.Unlock()
			f, err := r.ReSolve(g.T)
			if err != nil {
				mu.Lock()
				if solveErr == nil {
					solveErr = err
				}
				mu.Unlock()
				return nil, true // abort ascent; error reported below
			}
			if f == nil {
				return nil, false
			}
			sched, _ := Round(g.Ctx, in, f, opt.C, rng)
			mu.Lock()
			if ms := sched.Makespan(in); ms < det.PureMakespan {
				det.PureMakespan, det.PureSchedule = ms, sched
			}
			mu.Unlock()
			return sched, true
		}
	}
	out := dual.Run(ctx, dual.Config{
		Instance:  in,
		Lower:     lb,
		Upper:     ub,
		Precision: opt.Precision,
		Fallback:  fallback,
		Bus:       opt.Bounds,
		Strategy:  dual.Speculate(workers),
		Deciders:  deciders,
		Budget:    opt.Budget,
	})
	for _, r := range rels {
		det.LPIterations += r.Iterations()
	}
	det.Accepted = out.Accepted
	det.Relaxation = rels[0]
	det.LPPresolve = rels[0].Presolve()
	if solveErr != nil {
		return core.Result{}, det, solveErr
	}
	if out.LowerBound > lb {
		lb = out.LowerBound
	}
	note := ""
	if out.Err != nil {
		note = fmt.Sprintf("binary search stopped early (%v after %d guesses); schedule is best-so-far, O(log n + log m) guarantee not certified", out.Err, det.Guesses)
	}
	return core.Result{
		Algorithm:  "randomized-rounding",
		Schedule:   out.Schedule,
		Makespan:   out.Makespan,
		LowerBound: lb,
		Note:       note,
		LPIters:    int64(det.LPIterations),
	}, det, nil
}
