package rounding

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/lp"
)

// checkFractional verifies that a fractional solution satisfies the LP
// rows for guess T within tolerance.
func checkFractional(t *testing.T, in *core.Instance, f *Fractional, T float64) {
	t.Helper()
	const tol = 1e-6
	for i := 0; i < in.M; i++ {
		load := 0.0
		for j := 0; j < in.N; j++ {
			x := f.X[i][j]
			if x < -tol || x > 1+tol {
				t.Fatalf("x[%d][%d]=%v outside [0,1]", i, j, x)
			}
			if in.P[i][j] > T+core.Eps && x > tol {
				t.Fatalf("x[%d][%d]=%v despite p=%v > T=%v (constraint 5)", i, j, x, in.P[i][j], T)
			}
			load += x * zeroIfInf(in.P[i][j])
			if x > f.Y[i][in.Class[j]]+tol {
				t.Fatalf("x[%d][%d]=%v exceeds y=%v (constraint 4)", i, j, x, f.Y[i][in.Class[j]])
			}
		}
		for k := 0; k < in.K; k++ {
			y := f.Y[i][k]
			if y < -tol || y > 1+tol {
				t.Fatalf("y[%d][%d]=%v outside [0,1]", i, k, y)
			}
			load += y * zeroIfInf(in.S[i][k])
		}
		if load > T+1e-5 {
			t.Fatalf("machine %d load %v exceeds T=%v (constraint 1)", i, load, T)
		}
	}
	for j := 0; j < in.N; j++ {
		sum := 0.0
		for i := 0; i < in.M; i++ {
			sum += f.X[i][j]
		}
		if math.Abs(sum-1) > tol {
			t.Fatalf("job %d assignment sums to %v (constraint 2)", j, sum)
		}
	}
}

func zeroIfInf(v float64) float64 {
	if !core.IsFinite(v) {
		return 0
	}
	return v
}

// runGuessSequence checks that a warm Relaxation and cold SolveLP agree on
// every guess of the sequence: identical feasible/infeasible verdicts, and
// feasible warm results satisfy the LP rows (the LP objective is zero, so
// any two feasible basic solutions are objective-equivalent).
func runGuessSequence(t *testing.T, in *core.Instance, kind lp.BackendKind, ub float64, guesses []float64) {
	t.Helper()
	rel, err := NewRelaxation(in, RelaxationConfig{Envelope: ub, Backend: kind})
	if err != nil {
		t.Fatalf("NewRelaxation(%s): %v", kind, err)
	}
	for gi, T := range guesses {
		warm, err := rel.ReSolve(T)
		if err != nil {
			t.Fatalf("%s ReSolve(T=%v) guess %d: %v", kind, T, gi, err)
		}
		cold, err := SolveLP(in, T)
		if err != nil {
			t.Fatalf("SolveLP(T=%v): %v", T, err)
		}
		if (warm == nil) != (cold == nil) {
			t.Fatalf("%s guess %d (T=%v): warm verdict %v, cold verdict %v",
				kind, gi, T, warm != nil, cold != nil)
		}
		if warm != nil {
			if warm.T != T {
				t.Fatalf("warm fractional labeled T=%v, want %v", warm.T, T)
			}
			checkFractional(t, in, warm, T)
		}
		cold.Release()
	}
	if rel.Iterations() <= 0 {
		t.Errorf("%s: no LP iterations recorded over %d guesses", kind, len(guesses))
	}
}

// TestReSolveMatchesColdMonotone drives a monotone descending guess
// sequence T₀ > T₁ > … (the shape the acceptance criterion names) through
// ReSolve on both backends and cross-checks every verdict against cold
// SolveLP calls, down past the infeasibility threshold.
func TestReSolveMatchesColdMonotone(t *testing.T) {
	for _, kind := range []lp.BackendKind{lp.Dense, lp.Sparse} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			for seed := int64(0); seed < 12; seed++ {
				rng := rand.New(rand.NewSource(seed))
				p := gen.Params{N: 6 + rng.Intn(14), M: 2 + rng.Intn(4), K: 1 + rng.Intn(4)}
				var in *core.Instance
				switch seed % 3 {
				case 0:
					in = gen.Unrelated(rng, p)
				case 1:
					in = gen.Restricted(rng, p)
				default:
					in = gen.UnrelatedClassUniform(rng, p)
				}
				g, err := baseline.Greedy(in)
				if err != nil {
					t.Fatalf("greedy: %v", err)
				}
				ub := g.Makespan(in)
				if ub <= 0 {
					continue
				}
				var guesses []float64
				for T := ub; T > ub/64; T *= 0.82 {
					guesses = append(guesses, T)
				}
				runGuessSequence(t, in, kind, ub, guesses)
			}
		})
	}
}

// TestReSolveMatchesColdBinarySearchPattern replays the non-monotone guess
// order an actual dual-approximation binary search produces (the bracket
// midpoint sequence), where the load RHS both shrinks and grows and
// constraint-5 clamps are applied and lifted again.
func TestReSolveMatchesColdBinarySearchPattern(t *testing.T) {
	for _, kind := range []lp.BackendKind{lp.Dense, lp.Sparse} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			for seed := int64(0); seed < 8; seed++ {
				rng := rand.New(rand.NewSource(100 + seed))
				in := gen.Unrelated(rng, gen.Params{N: 10 + rng.Intn(10), M: 3, K: 3})
				g, err := baseline.Greedy(in)
				if err != nil {
					t.Fatalf("greedy: %v", err)
				}
				ub := g.Makespan(in)
				if ub <= 0 {
					continue
				}
				// Geometric bisection in [ub/100, ub], feasibility decided by
				// the cold reference so both solvers walk the same midpoints.
				var guesses []float64
				lo, hi := ub/100, ub
				for hi/lo > 1.02 {
					mid := math.Sqrt(lo * hi)
					guesses = append(guesses, mid)
					cold, err := SolveLP(in, mid)
					if err != nil {
						t.Fatalf("SolveLP: %v", err)
					}
					if cold != nil {
						hi = mid
					} else {
						lo = mid
					}
					cold.Release()
				}
				runGuessSequence(t, in, kind, ub, guesses)
			}
		})
	}
}

// TestScheduleDetailedAcrossBackends runs the full algorithm end-to-end on
// each backend: results must be valid, bounded, and report LP effort.
func TestScheduleDetailedAcrossBackends(t *testing.T) {
	for _, backend := range []string{"", "dense", "sparse"} {
		backend := backend
		t.Run("backend="+backend, func(t *testing.T) {
			rng := rand.New(rand.NewSource(9))
			in := gen.Unrelated(rng, gen.Params{N: 14, M: 3, K: 3})
			res, det, err := ScheduleDetailed(context.Background(), in, Options{
				Rng:       rand.New(rand.NewSource(1)),
				LPBackend: backend,
			})
			if err != nil {
				t.Fatalf("ScheduleDetailed: %v", err)
			}
			if res.Schedule == nil || !res.Schedule.Complete() {
				t.Fatal("incomplete schedule")
			}
			if err := res.Schedule.Validate(in); err != nil {
				t.Errorf("Validate: %v", err)
			}
			if res.Makespan < res.LowerBound-core.Eps {
				t.Errorf("makespan %v below lower bound %v", res.Makespan, res.LowerBound)
			}
			if det.LPIterations <= 0 || res.LPIters <= 0 {
				t.Errorf("LP iterations not surfaced: detail %d, result %d", det.LPIterations, res.LPIters)
			}
			want := backend
			if want == "" {
				want = string(lp.DefaultBackend)
			}
			if det.LPBackend != want {
				t.Errorf("Detail.LPBackend = %q, want %q", det.LPBackend, want)
			}
		})
	}
	t.Run("unknown backend errors", func(t *testing.T) {
		rng := rand.New(rand.NewSource(9))
		in := gen.Unrelated(rng, gen.Params{N: 6, M: 2, K: 2})
		if _, _, err := ScheduleDetailed(context.Background(), in, Options{LPBackend: "nope"}); err == nil {
			t.Error("unknown LP backend accepted")
		}
	})
}

// TestRelaxationEnvelopeDefaults covers the zero-config constructor (greedy
// envelope, default backend).
func TestRelaxationEnvelopeDefaults(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	in := gen.Unrelated(rng, gen.Params{N: 8, M: 2, K: 2})
	rel, err := NewRelaxation(in, RelaxationConfig{})
	if err != nil {
		t.Fatalf("NewRelaxation: %v", err)
	}
	if rel.Backend() != lp.DefaultBackend {
		t.Errorf("backend = %v, want default %v", rel.Backend(), lp.DefaultBackend)
	}
	g, err := baseline.Greedy(in)
	if err != nil {
		t.Fatal(err)
	}
	f, err := rel.ReSolve(g.Makespan(in))
	if err != nil || f == nil {
		t.Fatalf("ReSolve at greedy bound: f=%v err=%v (must be feasible)", f, err)
	}
}
