package rounding

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dual"
	"repro/internal/gen"
	"repro/internal/lp"
)

// TestReportRounds logs the search-shape numbers (serial rounds, decider
// invocations) for the benchmark instance — run manually with -v.
func TestReportRounds(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	rng := rand.New(rand.NewSource(1))
	in := gen.Unrelated(rng, gen.Params{N: 100, M: 10, K: 8})
	g, err := baseline.Greedy(in)
	if err != nil {
		t.Fatal(err)
	}
	ub := g.Makespan(in)
	for _, workers := range []int{1, 2, 4} {
		rel, err := NewRelaxation(in, RelaxationConfig{Envelope: ub, Backend: lp.Sparse})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rel.ReSolve(ub); err != nil {
			t.Fatal(err)
		}
		rels := make([]*Relaxation, workers)
		rels[0] = rel
		for w := 1; w < workers; w++ {
			rels[w] = rel.Clone()
		}
		var mu sync.Mutex
		rounds := map[[2]float64]bool{}
		deciders := make([]dual.GuessDecider, workers)
		for w := range deciders {
			r := rels[w]
			deciders[w] = func(gu dual.Guess) (*core.Schedule, bool) {
				mu.Lock()
				rounds[[2]float64{gu.Lo, gu.Hi}] = true
				mu.Unlock()
				f, err := r.ReSolve(gu.T)
				if err != nil {
					t.Errorf("ReSolve: %v", err)
					return nil, true
				}
				return nil, f != nil
			}
		}
		out := dual.Run(context.Background(), dual.Config{
			Instance: in, Lower: 0, Upper: ub, Precision: 0.05,
			Strategy: dual.Speculate(workers), Deciders: deciders,
		})
		iters := 0
		for _, r := range rels {
			iters += r.Iterations()
		}
		t.Logf("workers=%d rounds=%d guesses=%d lower=%.4g lp-iters=%d", workers, len(rounds), out.Guesses, out.LowerBound, iters)
	}
}
