package rounding

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/gen"
)

func TestSolveLPFeasibleAtOptimum(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := gen.Params{N: 1 + rng.Intn(6), M: 1 + rng.Intn(3), K: 1 + rng.Intn(2)}
		in := gen.Unrelated(rng, p)
		_, opt, bst := exact.BranchAndBound(context.Background(), in, exact.Options{})
		proven := bst.Proven
		if !proven || opt <= 0 {
			return true
		}
		// The LP must be feasible at T = Opt (the integral optimum is a
		// fractional solution) …
		f, err := SolveLP(in, opt)
		if err != nil || f == nil {
			return false
		}
		// … and its solution must satisfy the LP rows.
		for i := 0; i < in.M; i++ {
			load := 0.0
			for j := 0; j < in.N; j++ {
				load += f.X[i][j] * in.P[i][j]
				if f.X[i][j] > f.Y[i][in.Class[j]]+1e-6 {
					return false // (4) violated
				}
			}
			for k := 0; k < in.K; k++ {
				if f.Y[i][k] > 0 {
					load += f.Y[i][k] * in.S[i][k]
				}
			}
			if load > opt+1e-6 {
				return false // (1) violated
			}
		}
		for j := 0; j < in.N; j++ {
			sum := 0.0
			for i := 0; i < in.M; i++ {
				sum += f.X[i][j]
			}
			if math.Abs(sum-1) > 1e-6 {
				return false // (2) violated
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSolveLPInfeasibleBelowVolumeBound(t *testing.T) {
	// Single machine: T below total load is infeasible.
	in, err := core.NewUnrelated(
		[][]float64{{5, 5}},
		[]int{0, 0},
		[][]float64{{2}},
	)
	if err != nil {
		t.Fatalf("NewUnrelated: %v", err)
	}
	f, err := SolveLP(in, 11) // needs 5+5+2 = 12
	if err != nil {
		t.Fatalf("SolveLP: %v", err)
	}
	if f != nil {
		t.Error("LP feasible at T=11, want infeasible (load 12 required)")
	}
	f, err = SolveLP(in, 12)
	if err != nil {
		t.Fatalf("SolveLP: %v", err)
	}
	if f == nil {
		t.Error("LP infeasible at T=12, want feasible")
	}
}

func TestSolveLPRespectsConstraint5(t *testing.T) {
	// Job 0 takes 10 on machine 0 and 3 on machine 1; at T=5 constraint (5)
	// forbids machine 0.
	in, err := core.NewUnrelated(
		[][]float64{{10}, {3}},
		[]int{0},
		[][]float64{{1}, {1}},
	)
	if err != nil {
		t.Fatalf("NewUnrelated: %v", err)
	}
	f, err := SolveLP(in, 5)
	if err != nil {
		t.Fatalf("SolveLP: %v", err)
	}
	if f == nil {
		t.Fatal("LP infeasible, want feasible via machine 1")
	}
	if f.X[0][0] > 1e-9 {
		t.Errorf("x[0][0] = %v, want 0 (p > T)", f.X[0][0])
	}
	if math.Abs(f.X[1][0]-1) > 1e-6 {
		t.Errorf("x[1][0] = %v, want 1", f.X[1][0])
	}
}

func TestRoundProducesCompleteFeasibleSchedules(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := gen.Params{N: 1 + rng.Intn(15), M: 1 + rng.Intn(4), K: 1 + rng.Intn(3)}
		in := gen.Unrelated(rng, p)
		// Use a generous T so the LP is surely feasible.
		T := 0.0
		for j := 0; j < in.N; j++ {
			worstBest := math.Inf(1)
			for i := 0; i < in.M; i++ {
				if v := in.P[i][j] + in.S[i][in.Class[j]]; v < worstBest {
					worstBest = v
				}
			}
			T += worstBest
		}
		if T == 0 {
			T = 1
		}
		frac, err := SolveLP(in, T)
		if err != nil || frac == nil {
			return false
		}
		sched, stats := Round(context.Background(), in, frac, 3, rng)
		if stats.Iterations < 1 {
			return false
		}
		return sched.Complete() && sched.Validate(in) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRoundIntegralLPIsExact(t *testing.T) {
	// When the LP solution is integral, rounding must reproduce it exactly
	// (probabilities are 0/1).
	in, err := core.NewUnrelated(
		[][]float64{{1, 100}, {100, 1}},
		[]int{0, 1},
		[][]float64{{1, 100}, {100, 1}},
	)
	if err != nil {
		t.Fatalf("NewUnrelated: %v", err)
	}
	frac, err := SolveLP(in, 2)
	if err != nil || frac == nil {
		t.Fatalf("SolveLP: f=%v err=%v", frac, err)
	}
	sched, stats := Round(context.Background(), in, frac, 3, rand.New(rand.NewSource(5)))
	if stats.Fallback != 0 {
		t.Errorf("fallback used %d times on integral LP", stats.Fallback)
	}
	if sched.Assign[0] != 0 || sched.Assign[1] != 1 {
		t.Errorf("assignment = %v, want [0 1]", sched.Assign)
	}
}

func TestScheduleEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	in := gen.Unrelated(rng, gen.Params{N: 12, M: 3, K: 3})
	res, err := Schedule(context.Background(), in, Options{Rng: rng})
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if res.Schedule == nil || !res.Schedule.Complete() {
		t.Fatal("incomplete schedule")
	}
	if err := res.Schedule.Validate(in); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if res.LowerBound <= 0 {
		t.Errorf("lower bound = %v, want > 0", res.LowerBound)
	}
	if res.Makespan < res.LowerBound-core.Eps {
		t.Errorf("makespan %v below certified lower bound %v", res.Makespan, res.LowerBound)
	}
}

// Theorem 3.3 sanity check on small instances: the measured ratio against
// the exact optimum stays within the (generous) theoretical envelope
// c·(log n + log m) for a small constant.
func TestScheduleRatioEnvelopeSmall(t *testing.T) {
	worst := 0.0
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		in := gen.Unrelated(rng, gen.Params{N: 8, M: 3, K: 2})
		_, opt, bst := exact.BranchAndBound(context.Background(), in, exact.Options{})
		proven := bst.Proven
		if !proven || opt <= 0 {
			continue
		}
		res, err := Schedule(context.Background(), in, Options{Rng: rng})
		if err != nil {
			t.Fatalf("Schedule: %v", err)
		}
		if r := res.Makespan / opt; r > worst {
			worst = r
		}
	}
	envelope := 3 * (math.Log2(8) + math.Log2(3))
	if worst > envelope {
		t.Errorf("worst ratio %v exceeds theoretical envelope %v", worst, envelope)
	}
	if worst == 0 {
		t.Error("no instance was solvable exactly; test vacuous")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.normalize()
	if o.C != 3 || o.Rng == nil || o.Precision != 0.05 {
		t.Errorf("defaults not applied: %+v", o)
	}
}

func TestBernThresh(t *testing.T) {
	cases := []struct {
		p    float64
		want uint64
	}{
		{-0.5, 0}, {0, 0}, {1, bernScale}, {2, bernScale},
		{0.5, bernScale / 2},
	}
	for _, c := range cases {
		if got := bernThresh(c.p); got != c.want {
			t.Errorf("bernThresh(%v) = %d, want %d", c.p, got, c.want)
		}
	}
	// A threshold of bernScale must succeed for every possible lane value
	// (probability-1 draws can never fail), 0 must always fail.
	d := bern{rng: rand.New(rand.NewSource(7))}
	for i := 0; i < 1000; i++ {
		if !d.draw(bernScale) {
			t.Fatal("draw(bernScale) failed; p=1 draws must always succeed")
		}
		if d.draw(0) {
			t.Fatal("draw(0) succeeded; p=0 draws must never succeed")
		}
	}
}

func TestBernDrawFrequency(t *testing.T) {
	// The batched drawer must still be a Bernoulli(p) sampler: over many
	// draws the success frequency concentrates near p.
	for _, p := range []float64{0.1, 0.5, 0.9} {
		d := bern{rng: rand.New(rand.NewSource(int64(p * 100)))}
		th := bernThresh(p)
		const n = 200000
		hits := 0
		for i := 0; i < n; i++ {
			if d.draw(th) {
				hits++
			}
		}
		got := float64(hits) / n
		if math.Abs(got-p) > 0.01 {
			t.Errorf("draw frequency for p=%v: got %v", p, got)
		}
	}
}

func TestRoundDeterministicPerSeed(t *testing.T) {
	// Seed-format v2 regression: the batched-draw rounding must stay
	// deterministic — the same seed yields byte-identical assignments.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		p := gen.Params{N: 2 + rng.Intn(14), M: 1 + rng.Intn(4), K: 1 + rng.Intn(3)}
		in := gen.Unrelated(rng, p)
		T := 0.0
		for j := 0; j < in.N; j++ {
			worstBest := math.Inf(1)
			for i := 0; i < in.M; i++ {
				if v := in.P[i][j] + in.S[i][in.Class[j]]; v < worstBest {
					worstBest = v
				}
			}
			T += worstBest
		}
		if T == 0 {
			T = 1
		}
		frac, err := SolveLP(in, T)
		if err != nil || frac == nil {
			t.Fatalf("trial %d: SolveLP: f=%v err=%v", trial, frac, err)
		}
		seed := rng.Int63()
		a, _ := Round(context.Background(), in, frac, 3, rand.New(rand.NewSource(seed)))
		b, _ := Round(context.Background(), in, frac, 3, rand.New(rand.NewSource(seed)))
		for j := range a.Assign {
			if a.Assign[j] != b.Assign[j] {
				t.Fatalf("trial %d seed %d: assignments diverge at job %d: %d vs %d",
					trial, seed, j, a.Assign[j], b.Assign[j])
			}
		}
		frac.Release()
	}
}
