package rounding

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/lp"
)

// randDeltaFor draws a random delta valid on in (it retries shapes Apply
// rejects, e.g. removing the machine a restricted job needs).
func randDeltaFor(t *testing.T, rng *rand.Rand, in *core.Instance) (core.Delta, *core.Instance) {
	t.Helper()
	for tries := 0; ; tries++ {
		if tries > 200 {
			t.Fatal("no valid delta found")
		}
		var d core.Delta
		switch rng.Intn(5) {
		case 0: // arrive
			d = core.Delta{Kind: core.DeltaJobArrive, Class: rng.Intn(in.K)}
			if in.Kind == core.Unrelated {
				d.Proc = make([]float64, in.M)
				for i := range d.Proc {
					d.Proc[i] = 1 + float64(rng.Intn(40))
				}
			} else {
				d.Size = 1 + float64(rng.Intn(40))
				if in.Kind == core.RestrictedAssignment {
					for i := 0; i < in.M; i++ {
						if rng.Float64() < 0.6 {
							d.Eligible = append(d.Eligible, i)
						}
					}
					if len(d.Eligible) == 0 {
						d.Eligible = []int{rng.Intn(in.M)}
					}
				}
			}
		case 1: // depart
			if in.N <= 2 {
				continue
			}
			d = core.DepartJob(rng.Intn(in.N))
		case 2: // resize
			d = core.Delta{Kind: core.DeltaJobResize, Job: rng.Intn(in.N)}
			if in.Kind == core.Unrelated {
				d.Proc = make([]float64, in.M)
				for i := range d.Proc {
					d.Proc[i] = 1 + float64(rng.Intn(40))
				}
			} else {
				d.Size = 1 + float64(rng.Intn(40))
			}
		case 3: // machine add
			d = core.Delta{Kind: core.DeltaMachineAdd}
			switch in.Kind {
			case core.Uniform:
				d.Speed = 1 + rng.Float64()*3
			case core.Unrelated:
				d.Proc = make([]float64, in.N)
				for j := range d.Proc {
					d.Proc[j] = 1 + float64(rng.Intn(40))
				}
				d.Setup = make([]float64, in.K)
				for c := range d.Setup {
					d.Setup[c] = 1 + float64(rng.Intn(20))
				}
			case core.RestrictedAssignment:
				for j := 0; j < in.N; j++ {
					if rng.Float64() < 0.5 {
						d.Eligible = append(d.Eligible, j)
					}
				}
				if len(d.Eligible) == 0 {
					d.Eligible = []int{rng.Intn(in.N)}
				}
			}
		default: // machine remove
			if in.M <= 2 {
				continue
			}
			d = core.RemoveMachine(rng.Intn(in.M))
		}
		next, err := d.Apply(in)
		if err != nil {
			continue
		}
		return d, next
	}
}

// reRelax replaces rel with a cold relaxation on in at the same envelope —
// the fallback rung of the engine's re-solve pipeline.
func reRelax(t *testing.T, in *core.Instance, env float64, kind lp.BackendKind) *Relaxation {
	t.Helper()
	rel, err := NewRelaxation(in, RelaxationConfig{Envelope: env, Backend: kind})
	if err != nil {
		t.Fatalf("cold fallback relaxation: %v", err)
	}
	return rel
}

// TestApplyDeltaMatchesFreshRelaxation drives a patched relaxation through
// random delta chains and asserts, at every step and for a grid of guesses,
// that its feasibility verdicts match a relaxation built cold on the
// post-delta instance at the same envelope — the correctness contract of
// the whole incremental re-solve pipeline. Fractional solutions of feasible
// guesses are additionally checked against the LP rows.
func TestApplyDeltaMatchesFreshRelaxation(t *testing.T) {
	kinds := []struct {
		name string
		make func(rng *rand.Rand) *core.Instance
	}{
		{"unrelated", func(rng *rand.Rand) *core.Instance {
			return gen.Unrelated(rng, gen.Params{N: 8 + rng.Intn(8), M: 3, K: 3})
		}},
		{"restricted", func(rng *rand.Rand) *core.Instance {
			return gen.Restricted(rng, gen.Params{N: 8 + rng.Intn(8), M: 3, K: 2})
		}},
		{"uniform", func(rng *rand.Rand) *core.Instance {
			return gen.Uniform(rng, gen.Params{N: 10, M: 3, K: 2})
		}},
	}
	for _, be := range []lp.BackendKind{lp.Dense, lp.Sparse} {
		for _, tc := range kinds {
			t.Run(string(be)+"/"+tc.name, func(t *testing.T) {
				rng := rand.New(rand.NewSource(41))
				in := tc.make(rng)
				rel, err := NewRelaxation(in, RelaxationConfig{Backend: be})
				if err != nil {
					t.Fatal(err)
				}
				// Give the relaxation basis state to retain, like a finished
				// dual search would.
				if _, err := rel.ReSolve(rel.Envelope()); err != nil {
					t.Fatal(err)
				}
				patched, fallbacks := 0, 0
				for step := 0; step < 12; step++ {
					d, next := randDeltaFor(t, rng, in)
					if err := rel.ApplyDelta(d, next, rel.Envelope()); err != nil {
						fallbacks++
						rel = reRelax(t, next, rel.Envelope(), be)
					} else {
						patched++
					}
					fresh := reRelax(t, next, rel.Envelope(), be)
					for _, f := range []float64{0.35, 0.6, 0.8, 1.0} {
						T := rel.Envelope() * f
						pf, err := rel.ReSolve(T)
						if err != nil {
							t.Fatalf("step %d (%s): patched ReSolve(%g): %v", step, d, T, err)
						}
						ff, err := fresh.ReSolve(T)
						if err != nil {
							t.Fatalf("step %d (%s): fresh ReSolve(%g): %v", step, d, T, err)
						}
						if (pf == nil) != (ff == nil) {
							t.Fatalf("step %d (%s): verdicts diverge at T=%g: patched feasible=%v fresh feasible=%v",
								step, d, T, pf != nil, ff != nil)
						}
						if pf != nil {
							checkFractional(t, next, pf, T)
						}
					}
					in = next
				}
				if patched == 0 {
					t.Fatalf("every delta fell back cold (%d fallbacks) — patch path never exercised", fallbacks)
				}
				t.Logf("%s/%s: %d patched, %d cold fallbacks", be, tc.name, patched, fallbacks)
			})
		}
	}
}

// TestApplyDeltaRejectsUnsoundBrackets checks the guard rungs: a bracket
// above the envelope, an arriving job with no machine under the envelope,
// and removal that strands a job must all refuse to patch.
func TestApplyDeltaRejectsUnsoundBrackets(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	in := gen.Unrelated(rng, gen.Params{N: 6, M: 3, K: 2})
	rel, err := NewRelaxation(in, RelaxationConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rel.ReSolve(rel.Envelope()); err != nil {
		t.Fatal(err)
	}
	d, next := randDeltaFor(t, rng, in)
	if err := rel.ApplyDelta(d, next, rel.Envelope()*2); err == nil {
		t.Fatal("bracket above the envelope accepted")
	}
	// An arriving job slower than the envelope everywhere cannot be
	// represented in the retained model.
	proc := make([]float64, in.M)
	for i := range proc {
		proc[i] = rel.Envelope() * 3
	}
	da := core.ArriveJobUnrelated(0, proc)
	na, err := da.Apply(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := rel.ApplyDelta(da, na, rel.Envelope()); err == nil {
		t.Fatal("arrival with no machine at the envelope accepted")
	}
}

// TestApplyDeltaDeferredMaterialize checks the lazy rebuild: a growing
// patch leaves the backend unbuilt until the next ReSolve, and Clone forces
// the rebuild so speculative workers always get a live backend.
func TestApplyDeltaDeferredMaterialize(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	in := gen.Unrelated(rng, gen.Params{N: 8, M: 3, K: 2})
	rel, err := NewRelaxation(in, RelaxationConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rel.ReSolve(rel.Envelope()); err != nil {
		t.Fatal(err)
	}
	d := core.ArriveJob(0, 5)
	if in.Kind == core.Unrelated {
		proc := make([]float64, in.M)
		for i := range proc {
			proc[i] = 3 + float64(rng.Intn(9))
		}
		d = core.ArriveJobUnrelated(1, proc)
	}
	next, err := d.Apply(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := rel.ApplyDelta(d, next, rel.Envelope()); err != nil {
		t.Fatal(err)
	}
	if !rel.stale || rel.be != nil {
		t.Fatal("growing patch did not defer the backend rebuild")
	}
	c := rel.Clone()
	if rel.stale || rel.be == nil || c.be == nil {
		t.Fatal("Clone did not materialize the deferred rebuild")
	}
	f, err := c.ReSolve(c.Envelope())
	if err != nil {
		t.Fatal(err)
	}
	if f == nil {
		t.Fatal("clone infeasible at the envelope after patch")
	}
}
