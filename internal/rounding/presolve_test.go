package rounding

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/lp"
)

// TestPresolveTrajectoryMatchesNoPresolve is the end-to-end equivalence
// check for the LP presolve pipeline at the relaxation layer: a 9-step
// shrinking-T warm trajectory (the dual search's access pattern — bound
// clamps plus load-RHS updates, warm-started re-solves) must produce the
// same feasibility verdict at every step with presolve on and off, for
// every backend kind, and the feasible fractional solutions must satisfy
// the LP rows either way.
func TestPresolveTrajectoryMatchesNoPresolve(t *testing.T) {
	kinds := []struct {
		name string
		make func(rng *rand.Rand) *core.Instance
	}{
		{"unrelated", func(rng *rand.Rand) *core.Instance {
			return gen.Unrelated(rng, gen.Params{N: 12 + rng.Intn(8), M: 3, K: 3})
		}},
		{"restricted", func(rng *rand.Rand) *core.Instance {
			return gen.Restricted(rng, gen.Params{N: 12 + rng.Intn(8), M: 3, K: 2})
		}},
	}
	for _, be := range []lp.BackendKind{lp.Dense, lp.Sparse, lp.IPM} {
		for _, tc := range kinds {
			t.Run(string(be)+"/"+tc.name, func(t *testing.T) {
				rng := rand.New(rand.NewSource(31))
				in := tc.make(rng)
				on, err := NewRelaxation(in, RelaxationConfig{Backend: be})
				if err != nil {
					t.Fatal(err)
				}
				off, err := NewRelaxation(in, RelaxationConfig{Backend: be, NoPresolve: true})
				if err != nil {
					t.Fatal(err)
				}
				if on.Envelope() != off.Envelope() {
					t.Fatalf("envelopes diverge: %v vs %v", on.Envelope(), off.Envelope())
				}
				T := on.Envelope()
				sawFeasible, sawInfeasible := false, false
				for step := 0; step < 9; step++ {
					fa, err := on.ReSolve(T)
					if err != nil {
						t.Fatalf("step %d: presolved ReSolve(%g): %v", step, T, err)
					}
					fb, err := off.ReSolve(T)
					if err != nil {
						t.Fatalf("step %d: plain ReSolve(%g): %v", step, T, err)
					}
					if (fa == nil) != (fb == nil) {
						t.Fatalf("step %d: verdicts diverge at T=%g: presolved feasible=%v plain feasible=%v",
							step, T, fa != nil, fb != nil)
					}
					if fa != nil {
						sawFeasible = true
						checkFractional(t, in, fa, T)
					} else {
						sawInfeasible = true
					}
					T *= 0.78
				}
				if !sawFeasible || !sawInfeasible {
					t.Logf("trajectory saw feasible=%v infeasible=%v — weak corpus", sawFeasible, sawInfeasible)
				}
				if pi := on.Presolve(); pi == nil {
					t.Fatal("presolved relaxation reported no PresolveInfo")
				} else if pi.Bypassed && tc.name == "unrelated" {
					// Unrelated instances only ever clamp to 0 and restore
					// to the recorded bound, which the reduction mapping
					// absorbs. (Restricted ones may pin a single-eligible
					// job's x by an EQ-singleton reduction; clamping that
					// column later legitimately bypasses.)
					t.Fatal("warm trajectory bypassed the presolve wrapper")
				}
				if off.Presolve() != nil {
					t.Fatal("NoPresolve relaxation reported PresolveInfo")
				}
			})
		}
	}
}

// TestPresolveApplyDeltaMatchesNoPresolve chains random deltas through two
// patched relaxations — presolve on and off — re-solving a guess grid after
// each patch: the incremental pipeline (ApplyDelta, deferred materialize,
// basis transplant) must be verdict-equivalent to the unpresolved path.
func TestPresolveApplyDeltaMatchesNoPresolve(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	in := gen.Unrelated(rng, gen.Params{N: 10, M: 3, K: 3})
	on, err := NewRelaxation(in, RelaxationConfig{Backend: lp.Sparse})
	if err != nil {
		t.Fatal(err)
	}
	off, err := NewRelaxation(in, RelaxationConfig{Backend: lp.Sparse, NoPresolve: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := on.ReSolve(on.Envelope()); err != nil {
		t.Fatal(err)
	}
	if _, err := off.ReSolve(off.Envelope()); err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 9; step++ {
		d, next := randDeltaFor(t, rng, in)
		env := math.Min(on.Envelope(), off.Envelope())
		if errOn, errOff := on.ApplyDelta(d, next, env), off.ApplyDelta(d, next, env); (errOn == nil) != (errOff == nil) {
			t.Fatalf("step %d (%s): patch acceptance diverges: on=%v off=%v", step, d, errOn, errOff)
		} else if errOn != nil {
			on = reRelax(t, next, env, lp.Sparse)
			off, err = NewRelaxation(next, RelaxationConfig{Envelope: env, Backend: lp.Sparse, NoPresolve: true})
			if err != nil {
				t.Fatal(err)
			}
		}
		for _, f := range []float64{0.4, 0.7, 1.0} {
			T := on.Envelope() * f
			fa, err := on.ReSolve(T)
			if err != nil {
				t.Fatalf("step %d (%s): presolved ReSolve(%g): %v", step, d, T, err)
			}
			fb, err := off.ReSolve(T)
			if err != nil {
				t.Fatalf("step %d (%s): plain ReSolve(%g): %v", step, d, T, err)
			}
			if (fa == nil) != (fb == nil) {
				t.Fatalf("step %d (%s): verdicts diverge at T=%g: presolved=%v plain=%v",
					step, d, T, fa != nil, fb != nil)
			}
			if fa != nil {
				checkFractional(t, next, fa, T)
			}
		}
		in = next
	}
}
