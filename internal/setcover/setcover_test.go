package setcover

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGreedyCoverCovers(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(12)
		m := 2 + rng.Intn(8)
		ci := HardNoLike(rng, n, m, 1+rng.Intn(n))
		if ci.Validate() != nil {
			return false
		}
		chosen := GreedyCover(ci)
		covered := make([]bool, n)
		for _, s := range chosen {
			for _, e := range ci.Sets[s] {
				covered[e] = true
			}
		}
		for _, ok := range covered {
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestExactCoverSizeMatchesKnownCases(t *testing.T) {
	// Universe {0,1,2}: sets {0,1}, {2}, {0}, {1,2}. Optimal cover: 2.
	ci := CoverInstance{N: 3, Sets: [][]int{{0, 1}, {2}, {0}, {1, 2}}}
	if got := ExactCoverSize(ci); got != 2 {
		t.Errorf("ExactCoverSize = %d, want 2", got)
	}
	// Single set covering everything.
	ci2 := CoverInstance{N: 4, Sets: [][]int{{0, 1, 2, 3}}}
	if got := ExactCoverSize(ci2); got != 1 {
		t.Errorf("ExactCoverSize = %d, want 1", got)
	}
}

func TestExactCoverSizeAgainstGreedy(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(9)
		m := 2 + rng.Intn(6)
		ci := HardNoLike(rng, n, m, 1+rng.Intn(3))
		exact := ExactCoverSize(ci)
		greedy := len(GreedyCover(ci))
		// exact ≤ greedy ≤ exact·(ln n + 1)
		return exact >= 1 && exact <= greedy &&
			float64(greedy) <= float64(exact)*(math.Log(float64(n))+1)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestExactCoverSizeTooLarge(t *testing.T) {
	ci := CoverInstance{N: 30, Sets: [][]int{{0}}}
	if got := ExactCoverSize(ci); got != -1 {
		t.Errorf("ExactCoverSize on N=30 = %d, want -1", got)
	}
}

func TestPlantedYesHasCoverOfSizeT(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(10)
		t0 := 1 + rng.Intn(3)
		m := t0 + 1 + rng.Intn(6)
		ci, planted := PlantedYes(rng, n, t0, m)
		if ci.Validate() != nil || len(planted) != t0 {
			return false
		}
		covered := make([]bool, n)
		for _, s := range planted {
			for _, e := range ci.Sets[s] {
				covered[e] = true
			}
		}
		for _, ok := range covered {
			if !ok {
				return false
			}
		}
		// Exact optimum is at most t (and certified by the DP).
		if ex := ExactCoverSize(ci); ex < 1 || ex > t0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestCoverLowerBoundSound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(10)
		m := 2 + rng.Intn(6)
		ci := HardNoLike(rng, n, m, 1+rng.Intn(2))
		return CoverLowerBound(ci) <= ExactCoverSize(ci)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestBuildReductionShape(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ci, _ := PlantedYes(rng, 8, 2, 6)
	red, err := Build(rng, ci, 2)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	in := red.Instance
	wantK := int(math.Ceil(6.0 / 2.0 * math.Log2(6)))
	if in.K != wantK {
		t.Errorf("K = %d, want %d", in.K, wantK)
	}
	if in.N != wantK*8 {
		t.Errorf("n = %d, want %d", in.N, wantK*8)
	}
	if in.M != 6 {
		t.Errorf("m = %d, want 6", in.M)
	}
	// All setups are 1.
	for i := 0; i < in.M; i++ {
		for k := 0; k < in.K; k++ {
			if in.S[i][k] != 1 {
				t.Fatalf("setup s[%d][%d] = %v, want 1", i, k, in.S[i][k])
			}
		}
	}
	// Processing times are 0 exactly where the permuted set covers.
	for c := 0; c < in.K; c++ {
		for e := 0; e < 8; e++ {
			j := c*8 + e
			for i := 0; i < in.M; i++ {
				covered := false
				for _, el := range ci.Sets[red.Perms[c][i]] {
					if el == e {
						covered = true
					}
				}
				if covered != (in.P[i][j] == 0) {
					t.Fatalf("p[%d][%d] inconsistent with permuted coverage", i, j)
				}
			}
		}
	}
}

func TestCoverScheduleFeasibleAndSeparated(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ci, planted := PlantedYes(rng, 10, 2, 8)
	red, err := Build(rng, ci, 2)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	sched, err := red.CoverSchedule(planted)
	if err != nil {
		t.Fatalf("CoverSchedule: %v", err)
	}
	if err := sched.Validate(red.Instance); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	yes := sched.Makespan(red.Instance)
	// Yes-side makespan is the max number of classes set up on a machine;
	// expectation K·t/m, whp O(K·t/m + log m).
	k := float64(red.K())
	envelope := 2*k*2/8 + 2*math.Log2(8) + 2
	if yes > envelope {
		t.Errorf("yes-side makespan %v exceeds whp envelope %v", yes, envelope)
	}
	// No-side bound formula.
	if lb := red.NoSideLowerBound(3); math.Abs(lb-k*3/8) > 1e-9 {
		t.Errorf("NoSideLowerBound = %v, want %v", lb, k*3/8)
	}
}

func TestCoverScheduleRejectsNonCover(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	ci, _ := PlantedYes(rng, 10, 2, 6)
	red, err := Build(rng, ci, 2)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// A single decoy set will not cover the universe (w.h.p. under this
	// seed; verified by the error).
	var decoy int = -1
	for s := range ci.Sets {
		isPlanted := false
		if ExactCoverSize(CoverInstance{N: ci.N, Sets: [][]int{ci.Sets[s]}}) == 1 {
			isPlanted = true // set alone covers everything
		}
		if !isPlanted {
			decoy = s
			break
		}
	}
	if decoy < 0 {
		t.Skip("all sets cover the universe alone")
	}
	if _, err := red.CoverSchedule([]int{decoy}); err == nil {
		t.Error("CoverSchedule accepted a non-cover")
	}
}

func TestBuildRejectsBadInput(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	uncoverable := CoverInstance{N: 3, Sets: [][]int{{0}}}
	if _, err := Build(rng, uncoverable, 1); err == nil {
		t.Error("Build accepted an uncoverable instance")
	}
	ci, _ := PlantedYes(rng, 6, 2, 4)
	if _, err := Build(rng, ci, 0); err == nil {
		t.Error("Build accepted t=0")
	}
	if _, err := Build(rng, ci, 9); err == nil {
		t.Error("Build accepted t>m")
	}
}

func TestValidateRejectsOutOfRange(t *testing.T) {
	ci := CoverInstance{N: 2, Sets: [][]int{{0, 5}}}
	if err := ci.Validate(); err == nil {
		t.Error("out-of-range element accepted")
	}
}
