package setcover

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
)

// Reduction is the scheduling instance produced by the randomized reduction
// of Theorem 3.5, together with the random permutations needed to interpret
// schedules back in set cover terms.
type Reduction struct {
	// Instance is the scheduling instance: m machines, K = (m/t)·log₂ m
	// classes, one job per (class, element) pair, all setup times 1, and
	// processing times 0 where the permuted set covers the element and ∞
	// elsewhere.
	Instance *core.Instance
	// Perms[k][i] is π_k(i): the set assigned to machine i for class k.
	Perms [][]int
	// Cover is the set cover instance the reduction was built from.
	Cover CoverInstance
	// T is the parameter t (the Yes-side cover size target).
	T int
}

// K returns the number of classes used by the reduction.
func (r *Reduction) K() int { return r.Instance.K }

// Build constructs the reduction from a cover instance: K = ⌈(m/t)·log₂ m⌉
// classes, each with an independent uniformly random permutation π_k of the
// machines, and a job j_e^k for every element e with
// p_{i, j_e^k} = 0 if e ∈ S_{π_k(i)} and ∞ otherwise; all setups are 1.
func Build(rng *rand.Rand, ci CoverInstance, t int) (*Reduction, error) {
	m := len(ci.Sets)
	k := int(math.Ceil(float64(m) / float64(t) * math.Log2(float64(m))))
	return BuildK(rng, ci, t, k)
}

// BuildK is Build with an explicit class count K. Theorem 3.5 needs the
// K = (m/t)·log₂ m choice for its concentration argument; the integrality-
// gap experiment (Corollary 3.4) only needs the per-class structure and
// uses a small fixed K to keep the LPs tractable (the gap is independent of
// K, which scales the LP bound and the integral bound alike).
func BuildK(rng *rand.Rand, ci CoverInstance, t, k int) (*Reduction, error) {
	if err := ci.Validate(); err != nil {
		return nil, err
	}
	m := len(ci.Sets)
	if t < 1 || t > m {
		return nil, fmt.Errorf("setcover: t=%d outside [1,%d]", t, m)
	}
	if k < 1 {
		k = 1
	}
	n := k * ci.N
	perms := make([][]int, k)
	class := make([]int, n)
	pm := make([][]float64, m)
	sm := make([][]float64, m)
	for i := range pm {
		pm[i] = make([]float64, n)
		for j := range pm[i] {
			pm[i][j] = core.Inf
		}
		sm[i] = make([]float64, k)
		for c := range sm[i] {
			sm[i][c] = 1
		}
	}
	// covers[s][e] reports e ∈ S_s.
	covers := make([][]bool, m)
	for s, set := range ci.Sets {
		covers[s] = make([]bool, ci.N)
		for _, e := range set {
			covers[s][e] = true
		}
	}
	for c := 0; c < k; c++ {
		perms[c] = rng.Perm(m)
		for e := 0; e < ci.N; e++ {
			j := c*ci.N + e
			class[j] = c
			for i := 0; i < m; i++ {
				if covers[perms[c][i]][e] {
					pm[i][j] = 0
				}
			}
		}
	}
	inst, err := core.NewUnrelated(pm, class, sm)
	if err != nil {
		return nil, fmt.Errorf("setcover: reduction produced invalid instance: %w", err)
	}
	return &Reduction{Instance: inst, Perms: perms, Cover: ci, T: t}, nil
}

// CoverSchedule builds the Yes-side schedule: for each class k, the
// machines i with π_k(i) in the given cover are set up, and every job of
// class k runs on such a machine that covers its element. Returns an error
// if the provided index set is not actually a cover.
func (r *Reduction) CoverSchedule(cover []int) (*core.Schedule, error) {
	inCover := map[int]bool{}
	for _, s := range cover {
		inCover[s] = true
	}
	in := r.Instance
	sched := core.NewSchedule(in.N)
	for c := 0; c < in.K; c++ {
		for e := 0; e < r.Cover.N; e++ {
			j := c*r.Cover.N + e
			placed := false
			for i := 0; i < in.M && !placed; i++ {
				if inCover[r.Perms[c][i]] && in.P[i][j] == 0 {
					sched.Assign[j] = i
					placed = true
				}
			}
			if !placed {
				return nil, fmt.Errorf("setcover: element %d of class %d not covered by the provided sets", e, c)
			}
		}
	}
	return sched, nil
}

// NoSideLowerBound is the averaging bound from the Theorem 3.5 proof: any
// finite-makespan schedule sets up, per class, at least OptCover machines
// (the machines processing a class induce a cover), so the total number of
// setups is at least K·OptCover and some machine has makespan at least
// K·OptCover/m. coverLB must be a valid lower bound on the optimal cover.
func (r *Reduction) NoSideLowerBound(coverLB int) float64 {
	return float64(r.K()) * float64(coverLB) / float64(r.Instance.M)
}
