package setcover

import "math/bits"

// BinaryGap returns the classic set cover integrality-gap family (as in
// Vazirani's textbook construction referenced by the paper for
// Corollary 3.4): the universe is F₂^d \ {0} (N = 2^d − 1 elements) and for
// every y ≠ 0 there is a set S_y = {x : ⟨x, y⟩ = 1 over F₂}.
//
// Each element belongs to exactly 2^{d−1} of the 2^d − 1 sets, so assigning
// every set the fraction 1/2^{d−1} is a fractional cover of total weight
// (2^d − 1)/2^{d−1} < 2, while every integral cover needs at least d sets:
// for any d−1 sets S_{y_1}, …, S_{y_{d−1}}, the linear system ⟨x, y_i⟩ = 0
// has a nonzero solution x, an uncovered element. The integrality gap is
// therefore ≥ d/2 = Ω(log N).
func BinaryGap(d int) CoverInstance {
	if d < 1 || d > 20 {
		panic("setcover: BinaryGap needs 1 ≤ d ≤ 20")
	}
	n := (1 << d) - 1
	sets := make([][]int, n)
	for y := 1; y <= n; y++ {
		for x := 1; x <= n; x++ {
			if bits.OnesCount(uint(x&y))%2 == 1 {
				sets[y-1] = append(sets[y-1], x-1)
			}
		}
	}
	return CoverInstance{N: n, Sets: sets}
}

// FractionalCoverValue returns the optimal fractional cover value of the
// BinaryGap instance in closed form: (2^d − 1)/2^{d−1}.
func FractionalCoverValue(d int) float64 {
	num := (1 << uint(d)) - 1
	den := 1 << uint(d-1)
	return float64(num) / float64(den)
}
