// Package setcover implements the machinery behind Section 3.2 of the
// paper: the SetCover problem (greedy and exact solvers), planted instance
// generators standing in for the NP-hard SetCoverGap instances of Lemma 3.6,
// and the randomized reduction of Theorem 3.5 that maps a SetCover instance
// to a restricted-assignment-with-setups scheduling instance on which
// Yes-instances admit makespan O((K/m)·t) while No-instances force
// makespan Ω((K/m)·αt). Experiments E5 and E6 use this package to exhibit
// the Ω(log n + log m) separation empirically.
package setcover

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"
)

// CoverInstance is a set cover instance over the universe {0, …, N-1}.
type CoverInstance struct {
	// N is the universe size.
	N int
	// Sets lists the subsets (element indices) available for covering.
	Sets [][]int
}

// Validate checks that all elements are in range and the union covers the
// universe.
func (ci CoverInstance) Validate() error {
	covered := make([]bool, ci.N)
	for s, set := range ci.Sets {
		for _, e := range set {
			if e < 0 || e >= ci.N {
				return fmt.Errorf("setcover: set %d contains element %d outside [0,%d)", s, e, ci.N)
			}
			covered[e] = true
		}
	}
	for e, ok := range covered {
		if !ok {
			return fmt.Errorf("setcover: element %d not coverable", e)
		}
	}
	return nil
}

// GreedyCover returns a cover computed by the classic greedy algorithm
// (repeatedly pick the set covering the most uncovered elements). Its size
// is at most (ln N + 1)·OptCover, so size/(ln N + 1) is a certified lower
// bound on the optimal cover.
func GreedyCover(ci CoverInstance) []int {
	uncovered := make([]bool, ci.N)
	remaining := ci.N
	for e := range uncovered {
		uncovered[e] = true
	}
	var chosen []int
	for remaining > 0 {
		best, bestGain := -1, 0
		for s, set := range ci.Sets {
			gain := 0
			for _, e := range set {
				if uncovered[e] {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = s, gain
			}
		}
		if best < 0 {
			return nil // not coverable; Validate would have caught this
		}
		chosen = append(chosen, best)
		for _, e := range ci.Sets[best] {
			if uncovered[e] {
				uncovered[e] = false
				remaining--
			}
		}
	}
	return chosen
}

// ExactCoverSize computes the optimal cover size by dynamic programming
// over element subsets. It requires N ≤ 24 (2^N states) and returns -1 for
// larger universes.
func ExactCoverSize(ci CoverInstance) int {
	if ci.N > 24 {
		return -1
	}
	full := (uint32(1) << ci.N) - 1
	masks := make([]uint32, len(ci.Sets))
	for s, set := range ci.Sets {
		for _, e := range set {
			masks[s] |= 1 << uint(e)
		}
	}
	const inf = math.MaxInt32
	dp := make([]int32, full+1)
	for i := range dp {
		dp[i] = inf
	}
	dp[0] = 0
	for state := uint32(0); state <= full; state++ {
		if dp[state] == inf {
			continue
		}
		if state == full {
			break
		}
		// Cover the lowest uncovered element (canonical branching).
		low := uint32(bits.TrailingZeros32(^state))
		for s, mask := range masks {
			if mask&(1<<low) == 0 {
				continue
			}
			next := state | mask
			if dp[next] > dp[state]+1 {
				dp[next] = dp[state] + 1
			}
			_ = s
		}
	}
	if dp[full] == inf {
		return -1
	}
	return int(dp[full])
}

// CoverLowerBound returns a certified lower bound on the optimal cover
// size: the exact value when the universe is small enough, otherwise
// ⌈|greedy| / (ln N + 1)⌉.
func CoverLowerBound(ci CoverInstance) int {
	if exact := ExactCoverSize(ci); exact >= 0 {
		return exact
	}
	g := GreedyCover(ci)
	if g == nil {
		return 0
	}
	lb := int(math.Ceil(float64(len(g)) / (math.Log(float64(ci.N)) + 1)))
	if lb < 1 {
		lb = 1
	}
	return lb
}

// PlantedYes generates a Yes-instance: the universe is partitioned into t
// planted sets (which form a cover of size t), and m−t decoy sets are
// random sparse subsets. The planted cover's indices are returned.
func PlantedYes(rng *rand.Rand, n, t, m int) (CoverInstance, []int) {
	if t < 1 || t > m || n < t {
		panic(fmt.Sprintf("setcover: bad PlantedYes parameters n=%d t=%d m=%d", n, t, m))
	}
	perm := rng.Perm(n)
	sets := make([][]int, m)
	planted := make([]int, t)
	// Spread the planted sets over random positions so the reduction's
	// permutations don't correlate with set indices.
	pos := rng.Perm(m)[:t]
	for pi, p := range pos {
		planted[pi] = p
	}
	// Partition elements over the t planted sets, roughly evenly.
	for idx, e := range perm {
		p := planted[idx%t]
		sets[p] = append(sets[p], e)
	}
	// Decoys: sparse random subsets (they may overlap the planted ones).
	for s := 0; s < m; s++ {
		if len(sets[s]) > 0 {
			continue
		}
		size := 1 + rng.Intn(max(1, n/(2*t)))
		seen := map[int]bool{}
		for len(seen) < size {
			seen[rng.Intn(n)] = true
		}
		for e := range seen {
			sets[s] = append(sets[s], e)
		}
	}
	return CoverInstance{N: n, Sets: sets}, planted
}

// HardNoLike generates a No-side surrogate: every set is a random subset of
// fixed small size, so w.h.p. any cover needs many sets (the coupon-
// collector bound). CoverLowerBound certifies the actual gap on the
// generated instance.
func HardNoLike(rng *rand.Rand, n, m, setSize int) CoverInstance {
	if setSize < 1 || setSize > n {
		panic(fmt.Sprintf("setcover: bad HardNoLike set size %d", setSize))
	}
	sets := make([][]int, m)
	for s := range sets {
		perm := rng.Perm(n)
		sets[s] = append([]int(nil), perm[:setSize]...)
	}
	// Ensure coverability: add each uncovered element to a random set.
	covered := make([]bool, n)
	for _, set := range sets {
		for _, e := range set {
			covered[e] = true
		}
	}
	for e, ok := range covered {
		if !ok {
			s := rng.Intn(m)
			sets[s] = append(sets[s], e)
		}
	}
	return CoverInstance{N: n, Sets: sets}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
