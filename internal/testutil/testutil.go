// Package testutil holds small cross-package test helpers (a test-support
// package like internal/boundtest; it is only imported from _test files).
package testutil

import (
	"runtime"
	"testing"
)

// ForceParallel raises GOMAXPROCS so a speculative dual search takes its
// concurrent round path even on a single-CPU test machine (the dual runner
// otherwise clamps speculation to the P count, which would leave the
// concurrency untested there; tests whose deciders block on Guess.Ctx
// additionally depend on true concurrency to make progress).
func ForceParallel(t *testing.T) {
	t.Helper()
	if old := runtime.GOMAXPROCS(0); old < 4 {
		runtime.GOMAXPROCS(4)
		t.Cleanup(func() { runtime.GOMAXPROCS(old) })
	}
}
