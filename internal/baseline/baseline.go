// Package baseline implements the constant-factor baseline algorithms the
// paper builds on: the setup-aware LPT rule of Lemma 2.1 (a
// 3(1+1/√3) ≈ 4.74-approximation for uniform machines, used to bootstrap
// the dual approximation framework) and a setup-aware greedy list scheduler
// that serves as the practical comparator for the unrelated-machines
// experiments.
package baseline

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
)

// Lemma21Factor is the proven approximation factor of Lemma21LPT on
// uniformly related machines: 3(1 + 1/√3).
var Lemma21Factor = 3 * (1 + 1/math.Sqrt(3))

// lptItem is a job or a placeholder in the LPT ordering.
type lptItem struct {
	size  float64
	class int
	job   int // -1 for placeholders
}

// Lemma21LPT implements the algorithm of Lemma 2.1 for identical or uniform
// instances:
//
//  1. for each class k, jobs smaller than the setup size s_k are replaced by
//     ⌈Σ p_j / s_k⌉ placeholder jobs of size s_k,
//  2. the standard LPT rule (ignoring classes and setups) schedules the
//     resulting jobs on the uniform machines, assigning each job to the
//     machine on which it would finish first,
//  3. placeholders are replaced by the actual small jobs and the required
//     setups are added.
//
// The returned schedule is feasible for the original instance; its makespan
// is at most 3(1+1/√3)·Opt.
func Lemma21LPT(in *core.Instance) (*core.Schedule, error) {
	return lemma21(in, true)
}

// LPTIgnoringClasses is the ablation variant of Lemma21LPT that skips the
// placeholder step: plain LPT on the raw jobs followed by adding setups. It
// has no constant-factor guarantee (a machine can collect many tiny jobs of
// distinct classes), and experiment E9 demonstrates the degradation.
func LPTIgnoringClasses(in *core.Instance) (*core.Schedule, error) {
	return lemma21(in, false)
}

func lemma21(in *core.Instance, placeholders bool) (*core.Schedule, error) {
	if in.Kind != core.Identical && in.Kind != core.Uniform {
		return nil, fmt.Errorf("baseline: Lemma 2.1 LPT requires identical or uniform machines, got %v", in.Kind)
	}
	speed := func(i int) float64 {
		if in.Kind == core.Uniform {
			return in.Speed[i]
		}
		return 1
	}

	// Step 1: split jobs into kept jobs and per-class small-job pools.
	items := []lptItem{}
	smallJobs := make([][]int, in.K) // per class, jobs replaced by placeholders
	for j := 0; j < in.N; j++ {
		k := in.Class[j]
		if placeholders && in.JobSize[j] < in.SetupSize[k] {
			smallJobs[k] = append(smallJobs[k], j)
		} else {
			items = append(items, lptItem{size: in.JobSize[j], class: k, job: j})
		}
	}
	for k, jobs := range smallJobs {
		if len(jobs) == 0 {
			continue
		}
		total := 0.0
		for _, j := range jobs {
			total += in.JobSize[j]
		}
		count := int(math.Ceil(total/in.SetupSize[k] - core.Eps))
		if count < 1 {
			count = 1
		}
		for c := 0; c < count; c++ {
			items = append(items, lptItem{size: in.SetupSize[k], class: k, job: -1})
		}
	}

	// Step 2: LPT ignoring classes and setups. Sort by non-increasing size
	// (stable tie-break on job index for reproducibility) and put each item
	// on the machine where it finishes first.
	sort.SliceStable(items, func(a, b int) bool { return items[a].size > items[b].size })
	loads := make([]float64, in.M) // load in *size* units per machine
	where := make([]int, len(items))
	for idx, it := range items {
		best, bestDone := -1, math.Inf(1)
		for i := 0; i < in.M; i++ {
			done := (loads[i] + it.size) / speed(i)
			if done < bestDone-core.Eps {
				best, bestDone = i, done
			}
		}
		loads[best] += it.size
		where[idx] = best
	}

	// Step 3: translate items back to a schedule; distribute the small jobs
	// of class k over that class's placeholders greedily, over-packing each
	// machine by at most one job.
	sched := core.NewSchedule(in.N)
	placeholderCount := make(map[[2]int]int) // (machine, class) -> count
	for idx, it := range items {
		if it.job >= 0 {
			sched.Assign[it.job] = where[idx]
		} else {
			placeholderCount[[2]int{where[idx], it.class}]++
		}
	}
	for k, jobs := range smallJobs {
		if len(jobs) == 0 {
			continue
		}
		// Deterministic machine order.
		type slot struct {
			machine  int
			capacity float64
		}
		var slots []slot
		for i := 0; i < in.M; i++ {
			if c := placeholderCount[[2]int{i, k}]; c > 0 {
				slots = append(slots, slot{i, float64(c) * in.SetupSize[k]})
			}
		}
		ji := 0
		for si := 0; si < len(slots) && ji < len(jobs); si++ {
			filled := 0.0
			for ji < len(jobs) && filled < slots[si].capacity-core.Eps {
				sched.Assign[jobs[ji]] = slots[si].machine
				filled += in.JobSize[jobs[ji]]
				ji++
			}
		}
		// Safety net: the ceiling guarantees total capacity, so this loop
		// only runs if rounding left a straggler; put it on the last slot.
		for ; ji < len(jobs); ji++ {
			sched.Assign[jobs[ji]] = slots[len(slots)-1].machine
		}
	}
	return sched, nil
}

// Greedy assigns jobs in non-increasing order of their best processing time
// to the machine minimizing the resulting load, accounting for the setup if
// the job's class is not yet present there. It works for every machine
// environment (infeasible machine/job pairs are skipped) and is the
// practical baseline for the unrelated-machines experiments.
func Greedy(in *core.Instance) (*core.Schedule, error) {
	order := make([]int, in.N)
	key := make([]float64, in.N)
	for j := range order {
		order[j] = j
		best := math.Inf(1)
		for i := 0; i < in.M; i++ {
			if in.Eligibility(i, j, math.Inf(1)) && in.P[i][j] < best {
				best = in.P[i][j]
			}
		}
		key[j] = best
	}
	sort.SliceStable(order, func(a, b int) bool { return key[order[a]] > key[order[b]] })

	sched := core.NewSchedule(in.N)
	loads := make([]float64, in.M)
	classOn := make([][]bool, in.M)
	for i := range classOn {
		classOn[i] = make([]bool, in.K)
	}
	for _, j := range order {
		k := in.Class[j]
		best, bestLoad := -1, math.Inf(1)
		for i := 0; i < in.M; i++ {
			if !in.Eligibility(i, j, math.Inf(1)) {
				continue
			}
			l := loads[i] + in.P[i][j]
			if !classOn[i][k] {
				l += in.S[i][k]
			}
			if l < bestLoad-core.Eps {
				best, bestLoad = i, l
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("baseline: job %d has no feasible machine", j)
		}
		loads[best] = bestLoad
		classOn[best][k] = true
		sched.Assign[j] = best
	}
	return sched, nil
}

// MinProcessing assigns every job to argmin_i p_{ij} ignoring load — the
// fallback rule from step 3 of the randomized rounding algorithm
// (Section 3.1). Exported for testing and ablations.
func MinProcessing(in *core.Instance) *core.Schedule {
	sched := core.NewSchedule(in.N)
	for j := 0; j < in.N; j++ {
		best, bestP := -1, math.Inf(1)
		for i := 0; i < in.M; i++ {
			if !in.Eligibility(i, j, math.Inf(1)) {
				continue
			}
			if in.P[i][j] < bestP {
				best, bestP = i, in.P[i][j]
			}
		}
		sched.Assign[j] = best
	}
	return sched
}
