package baseline

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/gen"
)

func TestLemma21LPTFeasible(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := gen.Params{N: 1 + rng.Intn(40), M: 1 + rng.Intn(6), K: 1 + rng.Intn(5)}
		var in *core.Instance
		if rng.Intn(2) == 0 {
			in = gen.Identical(rng, p)
		} else {
			in = gen.Uniform(rng, p)
		}
		sched, err := Lemma21LPT(in)
		if err != nil {
			return false
		}
		return sched.Complete() && sched.Validate(in) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// The heart of experiment E1: the Lemma 2.1 guarantee holds against the
// exact optimum on small instances.
func TestLemma21RatioWithinBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := gen.Params{N: 1 + rng.Intn(9), M: 1 + rng.Intn(3), K: 1 + rng.Intn(3)}
		var in *core.Instance
		if rng.Intn(2) == 0 {
			in = gen.Identical(rng, p)
		} else {
			in = gen.Uniform(rng, p)
		}
		_, opt, bst := exact.BranchAndBound(context.Background(), in, exact.Options{})
		proven := bst.Proven
		if !proven || opt <= 0 {
			return true // skip degenerate zero-makespan cases
		}
		sched, err := Lemma21LPT(in)
		if err != nil {
			return false
		}
		return sched.Makespan(in) <= Lemma21Factor*opt+core.Eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestLemma21SetupDominatedInstance(t *testing.T) {
	// Many tiny jobs of one class: the placeholder mechanism must batch
	// them instead of spreading across all machines.
	n, m := 40, 4
	p := make([]float64, n)
	class := make([]int, n)
	for j := range p {
		p[j] = 1
	}
	in, err := core.NewIdentical(p, class, []float64{100}, m)
	if err != nil {
		t.Fatalf("NewIdentical: %v", err)
	}
	sched, err := Lemma21LPT(in)
	if err != nil {
		t.Fatalf("Lemma21LPT: %v", err)
	}
	// 40 volume => one placeholder of size 100 => a single machine gets all
	// jobs: makespan 100(setup)+40 = 140. Spreading over 4 machines would
	// cost 4 setups; total 440 spread as ~110 each... the batched schedule
	// should use few machines. Opt = 140 here.
	if got := sched.Makespan(in); got > 140+core.Eps {
		t.Errorf("makespan = %v, want <= 140 (batched)", got)
	}
	if got := sched.SetupCount(in); got != 1 {
		t.Errorf("setups = %d, want 1", got)
	}
}

func TestLPTIgnoringClassesWorseOnSetupHeavy(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	in := gen.Identical(rng, gen.SetupHeavy(60, 4, 3))
	withPH, err := Lemma21LPT(in)
	if err != nil {
		t.Fatalf("Lemma21LPT: %v", err)
	}
	withoutPH, err := LPTIgnoringClasses(in)
	if err != nil {
		t.Fatalf("LPTIgnoringClasses: %v", err)
	}
	if withoutPH.Makespan(in) < withPH.Makespan(in)-core.Eps {
		// Not a theorem, but on setup-heavy instances the placeholder
		// variant should not lose; flag if it does so we notice.
		t.Logf("note: no-placeholder LPT beat Lemma 2.1 LPT: %v < %v",
			withoutPH.Makespan(in), withPH.Makespan(in))
	}
	if err := withoutPH.Validate(in); err != nil {
		t.Errorf("ablation schedule invalid: %v", err)
	}
}

func TestLemma21RejectsUnrelated(t *testing.T) {
	in, err := core.NewUnrelated([][]float64{{1}}, []int{0}, [][]float64{{1}})
	if err != nil {
		t.Fatalf("NewUnrelated: %v", err)
	}
	if _, err := Lemma21LPT(in); err == nil {
		t.Error("Lemma21LPT accepted an unrelated instance")
	}
}

func TestGreedyFeasibleAllKinds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := gen.Params{N: 1 + rng.Intn(30), M: 1 + rng.Intn(5), K: 1 + rng.Intn(4)}
		var in *core.Instance
		switch rng.Intn(4) {
		case 0:
			in = gen.Identical(rng, p)
		case 1:
			in = gen.Uniform(rng, p)
		case 2:
			in = gen.Unrelated(rng, p)
		default:
			in = gen.Restricted(rng, p)
		}
		sched, err := Greedy(in)
		if err != nil {
			return false
		}
		return sched.Complete() && sched.Validate(in) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestGreedyIsSetupAware(t *testing.T) {
	// A single job whose class has different setup times per machine:
	// greedy must include the setup in its load comparison and pick the
	// cheap-setup machine.
	in, err := core.NewUnrelated(
		[][]float64{{1}, {1}},
		[]int{0},
		[][]float64{{5}, {1}},
	)
	if err != nil {
		t.Fatalf("NewUnrelated: %v", err)
	}
	sched, err := Greedy(in)
	if err != nil {
		t.Fatalf("Greedy: %v", err)
	}
	if sched.Assign[0] != 1 {
		t.Errorf("greedy chose machine %d, want 1 (setup 1 vs 5)", sched.Assign[0])
	}
}

func TestGreedySpreadsWhenParallelSetupsWin(t *testing.T) {
	// 10 unit jobs of one class with setup 1000 on 4 machines: paying the
	// setup in parallel (makespan ≈ 1003) beats batching (1010); greedy
	// should find the spread solution.
	p := make([]float64, 10)
	class := make([]int, 10)
	for j := range p {
		p[j] = 1
	}
	in, err := core.NewIdentical(p, class, []float64{1000}, 4)
	if err != nil {
		t.Fatalf("NewIdentical: %v", err)
	}
	sched, err := Greedy(in)
	if err != nil {
		t.Fatalf("Greedy: %v", err)
	}
	if got := sched.Makespan(in); got > 1003+core.Eps {
		t.Errorf("makespan = %v, want <= 1003 (parallel setups)", got)
	}
}

func TestMinProcessing(t *testing.T) {
	in, err := core.NewUnrelated(
		[][]float64{{9, 1}, {2, 8}},
		[]int{0, 0},
		[][]float64{{1}, {1}},
	)
	if err != nil {
		t.Fatalf("NewUnrelated: %v", err)
	}
	sched := MinProcessing(in)
	if sched.Assign[0] != 1 || sched.Assign[1] != 0 {
		t.Errorf("assignment = %v, want [1 0]", sched.Assign)
	}
	if err := sched.Validate(in); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestLemma21FactorValue(t *testing.T) {
	if math.Abs(Lemma21Factor-4.732) > 0.001 {
		t.Errorf("Lemma21Factor = %v, want ≈ 4.732", Lemma21Factor)
	}
}
