package dual

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/core"
)

// Strategy proposes the makespan guesses a dual-approximation search
// evaluates next, given the live bracket. It owns the search's shape —
// how many guesses per round and where they sit — while the runner owns
// the verdict bookkeeping (bracket commits, bound-bus exchange,
// cancellation of irrelevant in-flight work).
type Strategy interface {
	// Name identifies the strategy in diagnostics.
	Name() string
	// Parallelism is the number of guesses the strategy wants evaluated
	// concurrently. The runner caps it at the number of deciders it was
	// given (and degrades gracefully to sequential evaluation of the
	// proposed batch when only one decider is available).
	Parallelism() int
	// Propose writes the next round of guesses for the open bracket
	// (lo, hi) into dst (reusing its storage) and returns it. Guesses
	// must be strictly inside the bracket and ascending.
	Propose(lo, hi float64, dst []float64) []float64
}

// Bisect is the sequential multiplicative bisection strategy, the default:
// one guess per round at the geometric mean of the bracket. It reproduces
// the classic Hochbaum–Shmoys binary search exactly.
type Bisect struct{}

// Name implements Strategy.
func (Bisect) Name() string { return "bisect" }

// Parallelism implements Strategy: bisection is inherently sequential.
func (Bisect) Parallelism() int { return 1 }

// Propose implements Strategy: the geometric mean of the bracket.
func (Bisect) Propose(lo, hi float64, dst []float64) []float64 {
	return append(dst[:0], math.Sqrt(lo*hi))
}

// Speculate returns the speculative parallel strategy: every round
// proposes k guesses splitting the bracket into k+1 geometrically equal
// segments and evaluates them concurrently, one worker per decider. After
// the round, the lowest accepted guess becomes the new upper edge and the
// highest rejected guess below it the new lower edge, so each round shrinks
// the bracket to a (k+1)-th of its (logarithmic) width — fewer serial
// rounds than bisection at the price of redundant decider work, which is
// exactly the portfolio-racing trade. Guesses made irrelevant by a
// concurrent verdict (above an accepted guess, below a rejected one) are
// cancelled through their Guess.Ctx while still in flight.
//
// For a decider whose rejections are certificates (monotone, as the dual
// approximation framework requires), the committed bracket trajectory is
// consistent with sequential bisection: the same accept/reject verdict
// would be reached at every committed edge, and the final makespan agrees
// within the search precision. Speculate(1) is equivalent to Bisect.
//
// The wall-clock win requires spare parallelism: when the process runs on
// a single P (GOMAXPROCS=1) the runner evaluates each round's batch
// sequentially in bisection order, dropping guesses implied by earlier
// verdicts, which costs no more evaluations than Bisect for the same
// bracket shrink.
func Speculate(k int) Strategy {
	if k <= 1 {
		// One guess per round at the geometric mean IS bisection; returning
		// Bisect keeps diagnostics honest and lets callers pass a computed
		// width (e.g. EffectiveParallelism's result) unconditionally.
		return Bisect{}
	}
	return speculate{k: k}
}

type speculate struct{ k int }

func (s speculate) Name() string     { return fmt.Sprintf("speculate(%d)", s.k) }
func (s speculate) Parallelism() int { return s.k }

func (s speculate) Propose(lo, hi float64, dst []float64) []float64 {
	dst = dst[:0]
	step := math.Pow(hi/lo, 1/float64(s.k+1))
	t := lo
	for i := 0; i < s.k; i++ {
		t *= step
		if t > lo && t < hi && (len(dst) == 0 || t > dst[len(dst)-1]) {
			dst = append(dst, t)
		}
	}
	if len(dst) == 0 {
		// The bracket is too narrow for interior quantiles to separate
		// numerically; fall back to the geometric mean.
		if m := math.Sqrt(lo * hi); m > lo && m < hi {
			dst = append(dst, m)
		}
	}
	return dst
}

// EffectiveParallelism caps a requested speculative search width at what
// the runtime can actually overlap (GOMAXPROCS): CPU-bound guess
// evaluations beyond the P count only time-slice, paying redundant decider
// work for no latency — and a wider batch at fixed worker count shrinks
// the bracket less per serial solve than a narrower one, so clamping the
// width itself (not just the worker pool) is what keeps speculation from
// ever pessimizing an under-provisioned box. Callers size their per-worker
// warm-start state (relaxation clones, rng streams) from the result; at 1
// the search is plain sequential bisection. Callers that want the
// concurrent machinery on a single CPU (tests, latency-bound deciders)
// raise GOMAXPROCS first.
func EffectiveParallelism(k int) int {
	if p := runtime.GOMAXPROCS(0); k > p {
		k = p
	}
	if k < 1 {
		k = 1
	}
	return k
}

// PlanParallelism sizes the per-worker warm-start state (relaxation
// clones, rng streams, decider slots) of a speculative search under the
// given concurrency budget. Ungoverned (nil budget) it is
// EffectiveParallelism: the GOMAXPROCS clamp. Governed, the budget is the
// width authority instead — the plan is capped at the budget's total
// capacity (the most width any round could ever be granted), and the
// actual per-round width is whatever Config.Budget grants live, so a
// saturated box shrinks rounds toward bisection without the solver having
// over-provisioned state for workers that can never run.
func PlanParallelism(k int, budget core.TokenBudget) int {
	if budget == nil {
		return EffectiveParallelism(k)
	}
	if c := budget.Cap(); k > c {
		k = c
	}
	if k < 1 {
		k = 1
	}
	return k
}

// Config parameterizes Run, the strategy-driven search runner that Search,
// SearchWithBounds and SearchGuesses are thin wrappers over.
type Config struct {
	// Instance evaluates the makespans of schedules the deciders return.
	Instance *core.Instance
	// Lower and Upper bracket the search; see Search for their contract.
	Lower, Upper float64
	// Precision is the relative gap at which the search stops (default
	// 0.05).
	Precision float64
	// Fallback seeds the outcome with a known-feasible schedule (may be
	// nil).
	Fallback *core.Schedule
	// Bus connects the search to a live bound exchange (may be nil); see
	// SearchWithBounds for the exchange semantics.
	Bus core.BoundBus
	// Strategy proposes the guesses; nil means Bisect{}.
	Strategy Strategy
	// Budget, when non-nil, connects the search to the engine's global
	// concurrency budget: the evaluating goroutine itself rides the solve's
	// guaranteed token, and every round TryAcquires up to
	// min(Strategy.Parallelism(), len(guesses))−1 extra tokens for its
	// concurrent workers, releasing each as its worker drains — so width
	// grows back the moment other solves free tokens. A short grant runs
	// the round narrower (at 1 worker: the sequential in-batch bisection),
	// which is the Speculate→Bisect degradation ladder, never a block. A
	// nil Budget keeps the ungoverned behavior: width clamped at
	// GOMAXPROCS.
	Budget core.TokenBudget
	// Deciders are the per-worker decision procedures. Worker w only ever
	// invokes Deciders[w], so each decider needs no internal locking as
	// long as distinct deciders share no mutable state (warm-start
	// carriers pass one independent clone per slot; see
	// rounding.Relaxation.Clone). Passing the same concurrency-safe
	// decider value in several slots is fine. At least one decider is
	// required; the effective parallelism is
	// min(Strategy.Parallelism(), len(Deciders)).
	Deciders []GuessDecider
}

// Run executes a dual-approximation search shaped by cfg.Strategy. Every
// round it proposes a batch of guesses, skips the suffix at or above the
// live incumbent, evaluates the rest (concurrently when the strategy and
// decider count allow), and commits the lowest accepted and highest
// rejected guesses as the new bracket. The loop invariant matches
// sequential bisection: the bracket's lower edge only ever carries
// committed rejections (certified lower bounds) and its upper edge only
// accepted witnesses, so the two strategies agree on the threshold within
// precision.
func Run(ctx context.Context, cfg Config) Outcome {
	in := cfg.Instance
	out := Outcome{LowerBound: cfg.Lower, Makespan: math.Inf(1)}
	if cfg.Fallback != nil {
		out.Schedule = cfg.Fallback
		out.Makespan = cfg.Fallback.Makespan(in)
	}
	if cfg.Upper <= 0 {
		// Zero-makespan instance (all sizes 0): any complete feasible
		// assignment achieves 0; the fallback already is one.
		return out
	}
	if len(cfg.Deciders) == 0 {
		panic("dual: Run needs at least one decider")
	}
	precision := cfg.Precision
	if precision <= 0 {
		precision = 0.05
	}
	strat := cfg.Strategy
	if strat == nil {
		strat = Bisect{}
	}
	workers := strat.Parallelism()
	if workers > len(cfg.Deciders) {
		workers = len(cfg.Deciders)
	}
	if workers < 1 {
		workers = 1
	}
	r := &runner{in: in, bus: cfg.Bus, deciders: cfg.Deciders, workers: workers, budget: cfg.Budget, out: &out}
	lo := searchFloor(cfg.Lower, cfg.Upper)
	hi := cfg.Upper
	var buf []float64
	for hi/lo > 1+precision {
		if err := ctx.Err(); err != nil {
			out.Err = err
			out.Accepted = hi
			return out
		}
		if r.bus != nil {
			if l := r.bus.Lower(); l > lo {
				// A concurrent racer certified a higher floor.
				lo = l
				if l > out.LowerBound {
					out.LowerBound = l
				}
				continue
			}
		}
		buf = strat.Propose(lo, hi, buf)
		guesses := buf
		if len(guesses) == 0 {
			out.Accepted = hi
			return out // bracket numerically exhausted
		}
		// Guesses at or above the live incumbent are accepted without
		// evaluation — the incumbent schedule is already a witness. They
		// form a suffix of the ascending batch.
		if r.bus != nil {
			up := r.bus.Upper()
			for len(guesses) > 0 && guesses[len(guesses)-1] >= up {
				out.Skipped++
				hi = guesses[len(guesses)-1]
				guesses = guesses[:len(guesses)-1]
			}
		}
		if len(guesses) == 0 {
			continue
		}
		lo, hi = r.round(ctx, guesses, lo, hi)
	}
	out.Accepted = hi
	return out
}

// runner carries the per-search state shared by the rounds.
type runner struct {
	in       *core.Instance
	bus      core.BoundBus
	deciders []GuessDecider
	workers  int
	budget   core.TokenBudget // nil = ungoverned (GOMAXPROCS clamp)
	out      *Outcome
}

// verdict is one guess's recorded outcome within a round. Guesses whose
// evaluation was skipped (made irrelevant by an earlier verdict) or
// interrupted stay !done and do not participate in the commit.
type verdict struct {
	t     float64
	sched *core.Schedule
	ok    bool
	done  bool
}

// roundState is the live view of one concurrent round: the bracket edges
// implied by the verdicts recorded so far, and the cancel handles of the
// in-flight evaluations, so a verdict can cancel the guesses it obsoletes.
type roundState struct {
	mu             sync.Mutex
	loEdge, hiEdge float64
	cancels        []context.CancelFunc
	launched       int
}

// round evaluates one proposed batch and returns the committed bracket.
func (r *runner) round(ctx context.Context, guesses []float64, lo, hi float64) (float64, float64) {
	n := len(guesses)
	vs := make([]verdict, n)
	order := bisectOrder(n)
	st := &roundState{loEdge: lo, hiEdge: hi, cancels: make([]context.CancelFunc, n)}
	workers := r.workers
	if workers > n {
		workers = n
	}
	if r.budget != nil {
		// Governed: the evaluating goroutine is the solve's guaranteed
		// compute lane; every further worker needs a token from the global
		// budget, acquire-or-degrade. A short grant narrows this round (at
		// the extreme to the sequential in-batch bisection below, which
		// costs no more evaluations than Bisect for the same bracket
		// shrink); the next round asks again, so width recovers as soon as
		// other solves release tokens.
		workers = 1 + r.budget.TryAcquire(workers-1)
	} else if p := runtime.GOMAXPROCS(0); workers > p {
		// Ungoverned: clamp at what the runtime can overlap. CPU-bound
		// decider evaluations beyond the P count cannot overlap: extra
		// goroutines would only time-slice cores, paying for every guess of
		// the batch. At the single-P extreme the sequential path below
		// evaluates midpoint-first and drops verdict-implied guesses, which
		// is never more evaluations than bisection needs for the same
		// bracket shrink — so a speculative strategy degrades to (at worst)
		// bisection parity instead of a k-fold slowdown. Callers that need
		// the concurrent path on one CPU (e.g. deciders that block on
		// Guess.Ctx) must raise GOMAXPROCS.
		workers = p
	}
	if workers == 1 {
		// Sequential evaluation of the batch, midpoint-first: each verdict
		// commits immediately and drops the guesses it obsoletes, so a
		// degraded (single-decider) Speculate performs an in-batch binary
		// search rather than a linear scan.
		for _, i := range order {
			r.eval(ctx, st, vs, guesses, i, lo, hi, r.deciders[0])
			if ctx.Err() != nil {
				break
			}
		}
	} else {
		queue := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int, decide GuessDecider) {
				defer wg.Done()
				if r.budget != nil && w > 0 {
					// Return this worker's token the moment its queue share
					// drains, not at round end: width flows back to the
					// governor (and to other solves) as evaluations finish.
					defer r.budget.Release(1)
				}
				for i := range queue {
					r.eval(ctx, st, vs, guesses, i, lo, hi, decide)
				}
			}(w, r.deciders[w])
		}
		for _, i := range order {
			queue <- i
		}
		close(queue)
		wg.Wait()
	}
	r.out.Guesses += st.launched
	return r.commit(vs, lo, hi)
}

// eval runs one guess through a decider, records its verdict and cancels
// the in-flight guesses the verdict obsoletes. Guesses already outside the
// live edges are skipped without invoking the decider; rejections returned
// after the guess's context was cancelled are discarded as interrupted
// (they are suspicions, not certificates).
func (r *runner) eval(ctx context.Context, st *roundState, vs []verdict, guesses []float64, i int, lo, hi float64, decide GuessDecider) {
	t := guesses[i]
	st.mu.Lock()
	if t <= st.loEdge || t >= st.hiEdge || ctx.Err() != nil {
		st.mu.Unlock()
		return
	}
	gctx, cancel := context.WithCancel(ctx)
	st.cancels[i] = cancel
	g := Guess{T: t, Index: r.out.Guesses + st.launched, Lo: lo, Hi: hi, Ctx: gctx}
	st.launched++
	st.mu.Unlock()

	sched, ok := decide(g)

	st.mu.Lock()
	st.cancels[i] = nil
	interrupted := gctx.Err() != nil
	if interrupted && !ok {
		st.mu.Unlock()
		cancel()
		return
	}
	vs[i] = verdict{t: t, sched: sched, ok: ok, done: true}
	if ok {
		if t < st.hiEdge {
			st.hiEdge = t
			for j, c := range st.cancels {
				if c != nil && guesses[j] >= t {
					c() // now irrelevant: at or above an accepted guess
				}
			}
		}
	} else if t > st.loEdge {
		st.loEdge = t
		for j, c := range st.cancels {
			if c != nil && guesses[j] <= t {
				c() // now irrelevant: at or below a certified rejection
			}
		}
	}
	st.mu.Unlock()
	cancel()
}

// commit folds a round's verdicts into the outcome and returns the new
// bracket: the lowest accepted guess caps the upper edge, the highest
// rejected guess below it raises the lower edge. Every accepted schedule
// is recorded and published (even one above the new upper edge — it is a
// genuine witness); rejections at or above the new upper edge are
// discarded unpublished, since an accept below them means the rejection
// cannot be a sound certificate.
func (r *runner) commit(vs []verdict, lo, hi float64) (float64, float64) {
	newLo, newHi := lo, hi
	for i := range vs {
		if v := &vs[i]; v.done && v.ok && v.t < newHi {
			newHi = v.t
		}
	}
	for i := range vs {
		v := &vs[i]
		if !v.done {
			continue
		}
		if v.ok {
			if v.sched != nil {
				ms := v.sched.Makespan(r.in)
				if ms < r.out.Makespan {
					r.out.Schedule, r.out.Makespan = v.sched, ms
				}
				if r.bus != nil {
					r.bus.PublishUpper(ms)
				}
			}
		} else if v.t < newHi {
			if v.t > newLo {
				newLo = v.t
			}
			if v.t > r.out.LowerBound {
				r.out.LowerBound = v.t
			}
			if r.bus != nil {
				r.bus.PublishLower(v.t)
			}
		}
	}
	return newLo, newHi
}

// bisectOrder returns the indices 0..n-1 midpoint-first (breadth-first
// binary subdivision), so the most informative guesses of a batch are
// evaluated or launched first.
func bisectOrder(n int) []int {
	order := make([]int, 0, n)
	type span struct{ a, b int }
	queue := make([]span, 0, n)
	queue = append(queue, span{0, n - 1})
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		if s.a > s.b {
			continue
		}
		mid := (s.a + s.b + 1) / 2
		order = append(order, mid)
		queue = append(queue, span{s.a, mid - 1}, span{mid + 1, s.b})
	}
	return order
}
