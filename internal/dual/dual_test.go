package dual

import (
	"context"
	"math"
	"testing"

	"repro/internal/boundtest"
	"repro/internal/core"
)

func testInstance(t *testing.T) *core.Instance {
	t.Helper()
	in, err := core.NewIdentical([]float64{4, 4}, []int{0, 1}, []float64{1, 1}, 2)
	if err != nil {
		t.Fatalf("NewIdentical: %v", err)
	}
	return in
}

func TestSearchConvergesToThreshold(t *testing.T) {
	in := testInstance(t)
	perfect := &core.Schedule{Assign: []int{0, 1}} // makespan 5
	// Decider accepts exactly when T >= 5 and returns the perfect schedule.
	out := Search(context.Background(), in, 1, 100, 0.01, nil, func(T float64) (*core.Schedule, bool) {
		if T >= 5 {
			return perfect, true
		}
		return nil, false
	})
	if out.Schedule == nil {
		t.Fatal("no schedule found")
	}
	if math.Abs(out.Makespan-5) > core.Eps {
		t.Errorf("makespan = %v, want 5", out.Makespan)
	}
	// Lower bound must be below 5 but close to it (within the precision).
	if out.LowerBound >= 5 || out.LowerBound < 5/1.02 {
		t.Errorf("lower bound = %v, want just below 5", out.LowerBound)
	}
	if out.Guesses == 0 {
		t.Error("no guesses recorded")
	}
}

func TestSearchAllRejectedKeepsFallback(t *testing.T) {
	in := testInstance(t)
	fb := &core.Schedule{Assign: []int{0, 0}} // makespan 10
	out := Search(context.Background(), in, 1, 100, 0.05, fb, func(T float64) (*core.Schedule, bool) {
		return nil, false
	})
	if out.Schedule != fb {
		t.Error("fallback schedule not kept")
	}
	if math.Abs(out.Makespan-10) > core.Eps {
		t.Errorf("makespan = %v, want 10 (fallback)", out.Makespan)
	}
	// Every guess rejected: lower bound should have climbed near ub.
	if out.LowerBound < 90 {
		t.Errorf("lower bound = %v, want near 100", out.LowerBound)
	}
}

func TestSearchZeroUpperBound(t *testing.T) {
	in := testInstance(t)
	fb := core.NewSchedule(2)
	out := Search(context.Background(), in, 0, 0, 0.05, fb, func(T float64) (*core.Schedule, bool) {
		t.Error("decider called despite ub=0")
		return nil, false
	})
	if out.Guesses != 0 || out.Schedule != fb {
		t.Error("zero upper bound not short-circuited")
	}
}

func TestSearchZeroLowerBound(t *testing.T) {
	in := testInstance(t)
	// lb=0 must not cause sqrt(0*ub)=0 loops forever.
	calls := 0
	out := Search(context.Background(), in, 0, 16, 0.05, nil, func(T float64) (*core.Schedule, bool) {
		calls++
		if calls > 200 {
			t.Fatal("search did not terminate")
		}
		return &core.Schedule{Assign: []int{0, 1}}, true
	})
	if out.Schedule == nil {
		t.Fatal("no schedule")
	}
}

// TestSearchWithBoundsPublishes is the satellite requirement: every
// rejected guess lands on the bus as a certified lower bound, and every
// accepted schedule's makespan as an incumbent — while the search runs,
// not after it.
func TestSearchWithBoundsPublishes(t *testing.T) {
	in := testInstance(t)
	bus := boundtest.New()
	perfect := &core.Schedule{Assign: []int{0, 1}} // makespan 5
	out := SearchWithBounds(context.Background(), in, 1, 100, 0.01, nil, bus, func(T float64) (*core.Schedule, bool) {
		if T >= 5 {
			return perfect, true
		}
		return nil, false
	})
	if len(bus.LowerPubs) == 0 {
		t.Fatal("no rejected guess was published as a lower bound")
	}
	if bus.L >= 5 || bus.L < 5/1.02 {
		t.Errorf("published lower bound = %v, want just below 5", bus.L)
	}
	if math.Abs(bus.L-out.LowerBound) > core.Eps {
		t.Errorf("bus lower %v != outcome lower %v", bus.L, out.LowerBound)
	}
	if bus.U != 5 {
		t.Errorf("published incumbent = %v, want 5 (the accepted schedule)", bus.U)
	}
}

// TestSearchWithBoundsConsumesIncumbent: guesses at or above a live
// incumbent are accepted without invoking the decider, and a foreign lower
// bound raises the search floor.
func TestSearchWithBoundsConsumesIncumbent(t *testing.T) {
	in := testInstance(t)
	bus := boundtest.New()
	bus.U = 5   // another racer already holds a makespan-5 schedule
	bus.L = 4.9 // and a near-matching certificate
	var calls int
	out := SearchWithBounds(context.Background(), in, 1, 100, 0.01, nil, bus, func(T float64) (*core.Schedule, bool) {
		calls++
		if T >= 5 {
			t.Errorf("decider invoked at T=%v despite incumbent 5", T)
		}
		return nil, false
	})
	if out.Skipped == 0 {
		t.Error("no guesses skipped against the incumbent")
	}
	if out.LowerBound < 4.9 {
		t.Errorf("foreign lower bound not consumed: LowerBound = %v", out.LowerBound)
	}
	if calls > 3 {
		t.Errorf("decider ran %d times inside [4.9, 5] at precision 0.01, want at most a few", calls)
	}
}

func TestSearchKeepsBestScheduleAcrossGuesses(t *testing.T) {
	in := testInstance(t)
	good := &core.Schedule{Assign: []int{0, 1}} // makespan 5
	bad := &core.Schedule{Assign: []int{0, 0}}  // makespan 10
	first := true
	out := Search(context.Background(), in, 1, 100, 0.05, nil, func(T float64) (*core.Schedule, bool) {
		if first {
			first = false
			return good, true
		}
		return bad, true // later guesses return worse schedules
	})
	if math.Abs(out.Makespan-5) > core.Eps {
		t.Errorf("makespan = %v, want 5 (best across guesses)", out.Makespan)
	}
}

func TestRunReportsAccepted(t *testing.T) {
	in := testInstance(t)
	perfect := &core.Schedule{Assign: []int{0, 1}} // makespan 5
	out := Search(context.Background(), in, 1, 100, 0.01, nil, func(T float64) (*core.Schedule, bool) {
		if T >= 5 {
			return perfect, true
		}
		return nil, false
	})
	// Accepted is the final upper bracket edge: an accept-backed guess just
	// above the threshold, within precision of the lower bound.
	if out.Accepted < 5 || out.Accepted > 5*1.02 {
		t.Errorf("Accepted = %v, want in [5, 5.1]", out.Accepted)
	}
	if out.Accepted < out.LowerBound {
		t.Errorf("Accepted %v below LowerBound %v", out.Accepted, out.LowerBound)
	}
	// A search whose bracket is already closed keeps the caller's Upper as
	// the accepted edge without any guesses.
	out2 := Search(context.Background(), in, 10, 10.05, 0.01, nil, func(T float64) (*core.Schedule, bool) {
		t.Fatalf("decider invoked on closed bracket")
		return nil, false
	})
	if out2.Accepted != 10.05 {
		t.Errorf("closed-bracket Accepted = %v, want 10.05", out2.Accepted)
	}
}
