package dual

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/boundtest"
	"repro/internal/core"
	"repro/internal/testutil"
)

// thresholdDecider builds the canonical monotone decision procedure: accept
// exactly at or above theta, returning the given witness schedule.
func thresholdDecider(theta float64, witness *core.Schedule) GuessDecider {
	return func(g Guess) (*core.Schedule, bool) {
		if g.T >= theta {
			return witness, true
		}
		return nil, false
	}
}

// runStrategy searches [lb, ub] with the given strategy and k copies of a
// concurrency-safe decider.
func runStrategy(t *testing.T, in *core.Instance, strat Strategy, k int, lb, ub, prec float64, decide GuessDecider) Outcome {
	t.Helper()
	deciders := make([]GuessDecider, k)
	for i := range deciders {
		deciders[i] = decide
	}
	return Run(context.Background(), Config{
		Instance:  in,
		Lower:     lb,
		Upper:     ub,
		Precision: prec,
		Strategy:  strat,
		Deciders:  deciders,
	})
}

// TestSpeculateMatchesBisectOnRandomThresholds is the differential core of
// the verdict-equivalence contract: over a corpus of random monotone
// threshold deciders, Speculate(k) must locate the same threshold as
// sequential Bisect — the accepted makespan and the certified lower bound of
// both searches must straddle theta within the search precision.
func TestSpeculateMatchesBisectOnRandomThresholds(t *testing.T) {
	testutil.ForceParallel(t)
	in, err := core.NewIdentical([]float64{4, 4}, []int{0, 1}, []float64{1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	witness := &core.Schedule{Assign: []int{0, 1}} // makespan 5 under in
	rng := rand.New(rand.NewSource(7))
	const prec = 0.01
	for trial := 0; trial < 60; trial++ {
		ub := 10 + rng.Float64()*1000
		lb := ub * rng.Float64() * 0.1
		theta := lb + (ub-lb)*(0.05+0.9*rng.Float64())
		for _, k := range []int{2, 4, 7} {
			seq := runStrategy(t, in, Bisect{}, 1, lb, ub, prec, thresholdDecider(theta, witness))
			spec := runStrategy(t, in, Speculate(k), k, lb, ub, prec, thresholdDecider(theta, witness))
			for name, out := range map[string]Outcome{"bisect": seq, "speculate": spec} {
				if out.Err != nil {
					t.Fatalf("trial %d %s(k=%d): unexpected error %v", trial, name, k, out.Err)
				}
				if out.Schedule != witness {
					t.Fatalf("trial %d %s(k=%d): threshold %g in [%g, %g] not reached (schedule %v)",
						trial, name, k, theta, lb, ub, out.Schedule)
				}
				// The certified lower bound must sit just below theta: a
				// rejected guess above theta would be an unsound verdict,
				// and a bound further than one precision step below theta
				// means the search stopped early.
				if out.LowerBound >= theta {
					t.Fatalf("trial %d %s(k=%d): lower bound %g at or above threshold %g",
						trial, name, k, out.LowerBound, theta)
				}
			}
			// Makespan equivalence: both searches return the witness, so
			// compare their certified brackets instead — they must agree on
			// theta within the combined precision.
			if seq.LowerBound > 0 && spec.LowerBound > 0 {
				ratio := seq.LowerBound / spec.LowerBound
				if ratio < 1/(1+prec)/(1+prec) || ratio > (1+prec)*(1+prec) {
					t.Fatalf("trial %d k=%d: bisect lower %g vs speculate lower %g diverge beyond precision",
						trial, k, seq.LowerBound, spec.LowerBound)
				}
			}
		}
	}
}

// TestSpeculateFewerRoundsThanBisect checks the latency model: with k
// workers each round shrinks the log-bracket by a factor k+1 instead of 2,
// so the number of serial rounds (batches) drops even though total guesses
// rise. Rounds are observed via the per-round bracket handle.
func TestSpeculateFewerRoundsThanBisect(t *testing.T) {
	testutil.ForceParallel(t)
	in, err := core.NewIdentical([]float64{4, 4}, []int{0, 1}, []float64{1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	witness := &core.Schedule{Assign: []int{0, 1}}
	countRounds := func(strat Strategy, k int) int {
		var mu sync.Mutex
		brackets := map[[2]float64]bool{}
		decide := func(g Guess) (*core.Schedule, bool) {
			mu.Lock()
			brackets[[2]float64{g.Lo, g.Hi}] = true
			mu.Unlock()
			if g.T >= 300 {
				return witness, true
			}
			return nil, false
		}
		out := runStrategy(t, in, strat, k, 1, 1000, 0.02, decide)
		if out.Err != nil {
			t.Fatal(out.Err)
		}
		return len(brackets)
	}
	seqRounds := countRounds(Bisect{}, 1)
	specRounds := countRounds(Speculate(4), 4)
	if specRounds >= seqRounds {
		t.Errorf("speculate(4) used %d rounds, want fewer than bisect's %d", specRounds, seqRounds)
	}
}

// TestSpeculateDegradesWithFewerDeciders: a Speculate(4) with a single
// decider slot must degrade to sequential evaluation (in-batch bisection
// order), still terminating with an equivalent verdict.
func TestSpeculateDegradesWithFewerDeciders(t *testing.T) {
	in, err := core.NewIdentical([]float64{4, 4}, []int{0, 1}, []float64{1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	witness := &core.Schedule{Assign: []int{0, 1}}
	out := Run(context.Background(), Config{
		Instance:  in,
		Lower:     1,
		Upper:     1000,
		Precision: 0.01,
		Strategy:  Speculate(4),
		Deciders:  []GuessDecider{thresholdDecider(250, witness)},
	})
	if out.Err != nil || out.Schedule != witness {
		t.Fatalf("degraded speculate failed: err=%v schedule=%v", out.Err, out.Schedule)
	}
	if out.LowerBound >= 250 || out.LowerBound < 250/1.03 {
		t.Errorf("lower bound %g, want just below 250", out.LowerBound)
	}
}

// TestSpeculateCancelsIrrelevantInFlightGuesses: when a low guess is
// accepted, the concurrently running higher guesses become irrelevant and
// must be cancelled through their Guess.Ctx rather than run to completion.
func TestSpeculateCancelsIrrelevantInFlightGuesses(t *testing.T) {
	testutil.ForceParallel(t)
	in, err := core.NewIdentical([]float64{4, 4}, []int{0, 1}, []float64{1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	witness := &core.Schedule{Assign: []int{0, 1}}
	var cancelled atomic.Int64
	// The first round over [1, 1000] proposes ≈5.6, 31.6, 178: the two high
	// guesses announce themselves and block until cancelled; the low guess
	// waits for both to be in flight before accepting, so its verdict must
	// cancel them (not merely drop them pre-launch).
	highStarted := make(chan struct{}, 2)
	decide := func(g Guess) (*core.Schedule, bool) {
		if g.Index < 3 { // first round only
			if g.T >= 6 {
				highStarted <- struct{}{}
				<-g.Ctx.Done()
				cancelled.Add(1)
				return nil, false // interrupted rejection: must be discarded
			}
			<-highStarted
			<-highStarted
			return witness, true
		}
		// Later rounds: plain threshold at 6 (the bracket is below it).
		if g.T < 6 {
			return witness, true
		}
		return nil, false
	}
	deciders := []GuessDecider{decide, decide, decide}
	out := Run(context.Background(), Config{
		Instance: in, Lower: 1, Upper: 1000, Precision: 0.5,
		Strategy: Speculate(3), Deciders: deciders,
	})
	if out.Err != nil {
		t.Fatalf("unexpected error: %v", out.Err)
	}
	if out.Schedule != witness {
		t.Fatal("accepted witness lost")
	}
	if cancelled.Load() == 0 {
		t.Error("no in-flight guess was cancelled despite an accepted lower guess")
	}
	// The blocked deciders returned rejections after cancellation; those are
	// interrupted verdicts and must not have raised the certified bound.
	if out.LowerBound > 2 {
		t.Errorf("lower bound %g was raised by an interrupted rejection", out.LowerBound)
	}
}

// TestRunMidSearchCancellation: cancelling the search context while a round
// is in flight stops the search promptly, reports the context error, and
// keeps the best schedule seen so far.
func TestRunMidSearchCancellation(t *testing.T) {
	testutil.ForceParallel(t)
	in, err := core.NewIdentical([]float64{4, 4}, []int{0, 1}, []float64{1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	fallback := &core.Schedule{Assign: []int{0, 0}}
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	decide := func(g Guess) (*core.Schedule, bool) {
		if calls.Add(1) == 2 {
			cancel() // kill the search from inside the second evaluation
		}
		<-g.Ctx.Done()
		return nil, false
	}
	out := Run(ctx, Config{
		Instance: in, Lower: 1, Upper: 1000, Precision: 0.01,
		Fallback: fallback,
		Strategy: Speculate(2), Deciders: []GuessDecider{decide, decide},
	})
	if out.Err == nil {
		t.Fatal("cancelled search reported no error")
	}
	if out.Schedule != fallback {
		t.Error("fallback schedule lost on cancellation")
	}
	// Every rejection was interrupted: the certified bound must still be
	// the initial floor.
	if out.LowerBound != 1 {
		t.Errorf("lower bound %g, want untouched initial 1", out.LowerBound)
	}
}

// TestSpeculateSkipsGuessesAboveIncumbent mirrors the sequential incumbent
// short-circuit: proposed guesses at or above the live incumbent are
// accepted without evaluation and counted in Skipped.
func TestSpeculateSkipsGuessesAboveIncumbent(t *testing.T) {
	testutil.ForceParallel(t)
	in, err := core.NewIdentical([]float64{4, 4}, []int{0, 1}, []float64{1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	bus := boundtest.New()
	bus.U = 5
	bus.L = 4.9
	var evaluated atomic.Int64
	decide := func(g Guess) (*core.Schedule, bool) {
		evaluated.Add(1)
		if g.T >= 5 {
			t.Errorf("decider invoked at T=%v despite incumbent 5", g.T)
		}
		return nil, false
	}
	out := Run(context.Background(), Config{
		Instance: in, Lower: 1, Upper: 100, Precision: 0.01,
		Bus:      bus,
		Strategy: Speculate(3), Deciders: []GuessDecider{decide, decide, decide},
	})
	if out.Skipped == 0 {
		t.Error("no guesses skipped against the incumbent")
	}
	if out.LowerBound < 4.9 {
		t.Errorf("foreign lower bound not consumed: %g", out.LowerBound)
	}
	if evaluated.Load() > 6 {
		t.Errorf("%d deciders ran inside [4.9, 5] at precision 0.01, want at most a few", evaluated.Load())
	}
}

// TestCommitResolvesNonMonotoneConflict: if a decider accepts a low guess
// and rejects a higher one within the same round (impossible for certified
// monotone deciders, possible for capped ones), the accept wins — it is a
// constructive witness — and the conflicting rejection is discarded without
// being published.
func TestCommitResolvesNonMonotoneConflict(t *testing.T) {
	testutil.ForceParallel(t)
	in, err := core.NewIdentical([]float64{4, 4}, []int{0, 1}, []float64{1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	witness := &core.Schedule{Assign: []int{0, 1}}
	bus := boundtest.New()
	var mu sync.Mutex
	started := make(chan struct{}, 16)
	release := make(chan struct{})
	var once sync.Once
	decide := func(g Guess) (*core.Schedule, bool) {
		// Hold every evaluation of the first round until both guesses are
		// in flight, so neither verdict can cancel the other's start.
		mu.Lock()
		first := g.Index < 2
		mu.Unlock()
		if first {
			started <- struct{}{}
			once.Do(func() {
				<-started
				<-started
				close(release)
			})
			<-release
		}
		// Non-monotone: accept below 10, reject everything above.
		if g.T < 10 {
			return witness, true
		}
		return nil, false
	}
	out := Run(context.Background(), Config{
		Instance: in, Lower: 5, Upper: 20, Precision: 0.01,
		Bus:      bus,
		Strategy: Speculate(2), Deciders: []GuessDecider{decide, decide},
	})
	if out.Err != nil {
		t.Fatalf("unexpected error: %v", out.Err)
	}
	if out.Schedule != witness {
		t.Fatal("constructive witness lost to a conflicting rejection")
	}
	// No rejection above an accepted guess may have been published or
	// committed: every guess below 10 accepted, every rejection at or above
	// 10 conflicted with a lower accept, so the certified bound must still
	// be the initial floor.
	if out.LowerBound != 5 {
		t.Errorf("lower bound %g, want untouched initial 5 (conflicting rejection committed?)", out.LowerBound)
	}
	if bus.L >= 10 {
		t.Errorf("conflicting rejection published: bus lower %g", bus.L)
	}
}

// TestBisectOrderIsPermutation guards the round's evaluation order helper.
func TestBisectOrderIsPermutation(t *testing.T) {
	for n := 1; n <= 9; n++ {
		seen := make([]bool, n)
		for _, i := range bisectOrder(n) {
			if i < 0 || i >= n || seen[i] {
				t.Fatalf("bisectOrder(%d) invalid: %v", n, bisectOrder(n))
			}
			seen[i] = true
		}
		for i, s := range seen {
			if !s {
				t.Fatalf("bisectOrder(%d) misses %d", n, i)
			}
		}
	}
}

// TestSpeculateProposeShape: k interior geometric quantiles, ascending, with
// the k=1 case matching the bisection midpoint.
func TestSpeculateProposeShape(t *testing.T) {
	var buf []float64
	got := Speculate(1).Propose(4, 64, buf)
	if len(got) != 1 || math.Abs(got[0]-16) > 1e-9 {
		t.Errorf("Speculate(1).Propose(4,64) = %v, want [16] (the geometric mean)", got)
	}
	got = Speculate(3).Propose(1, 16, got)
	want := []float64{2, 4, 8}
	if len(got) != 3 {
		t.Fatalf("Speculate(3).Propose(1,16) = %v, want 3 quantiles", got)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Errorf("quantile %d = %g, want %g", i, got[i], want[i])
		}
	}
}
