// Package dual implements the Hochbaum–Shmoys dual approximation framework
// (Section 1.1.1 of the paper): given a decision procedure that, for a
// makespan guess T, either produces a schedule with makespan at most α·T or
// correctly reports that no schedule with makespan T exists, a
// multiplicative binary search over T yields an α(1+δ)-approximation.
package dual

import (
	"context"
	"math"

	"repro/internal/core"
)

// Decider is the per-guess decision procedure. For a guess T it returns
// (schedule, true) when it constructed a schedule with makespan ≤ α·T, or
// (nil, false) when it certifies that no schedule with makespan ≤ T exists.
type Decider func(T float64) (*core.Schedule, bool)

// Guess is the handle a GuessDecider receives for one decision-procedure
// invocation: the makespan guess plus the state of the surrounding search.
// Deciders that keep warm-start state between guesses (an LP relaxation
// re-solved per guess, a reusable DP arena) use it to size and prime that
// state: Index tells them whether this is the build or a re-solve, and
// [Lo, Hi] brackets every future guess the search can still emit, so
// anything constructed for the envelope Hi remains valid for the rest of
// the search.
type Guess struct {
	// T is the makespan guess to decide.
	T float64
	// Index is the 0-based ordinal of this decider invocation (guesses
	// skipped via a shared incumbent do not count).
	Index int
	// Lo and Hi are the current search bracket: every remaining guess lies
	// in [Lo, Hi], and T itself is their geometric mean.
	Lo, Hi float64
}

// GuessDecider is a Decider that receives the full Guess handle instead of
// the bare T. See SearchGuesses.
type GuessDecider func(g Guess) (*core.Schedule, bool)

// Outcome is the result of a dual approximation search.
type Outcome struct {
	// Schedule is the best (smallest makespan) schedule produced by any
	// accepted guess; nil when every guess was rejected.
	Schedule *core.Schedule
	// Makespan is the makespan of Schedule under the instance the decider
	// was built for (recorded by the decider via Observe; see Search).
	Makespan float64
	// LowerBound is the largest guess that was rejected — a certified lower
	// bound on the optimal makespan (Opt > LowerBound). It equals the
	// initial lb if no guess was ever rejected.
	LowerBound float64
	// Guesses is the number of decision-procedure invocations.
	Guesses int
	// Skipped is the number of guesses short-circuited by a shared
	// incumbent (SearchWithBounds): guesses at or above the live incumbent
	// makespan are accepted without running the decider, since the
	// incumbent schedule is already a witness. Always 0 for Search.
	Skipped int
	// Err is the context error (context.Canceled or
	// context.DeadlineExceeded) when the search was stopped before
	// narrowing to the requested precision; nil when the search completed.
	// A stopped search still returns the best schedule and the soundest
	// lower bound seen so far.
	Err error
}

// Search runs multiplicative binary search for the smallest accepted guess
// in [lb, ub]. precision is the relative gap at which the search stops
// (e.g. 0.05 narrows to a factor 1.05). The instance is needed to evaluate
// makespans of returned schedules.
//
// The context is checked between guesses: a cancelled or expired ctx stops
// the search early and is reported in Outcome.Err. Deciders that loop
// internally should additionally observe the same context themselves.
//
// lb may be 0; it is raised to a tiny fraction of ub to keep the geometric
// search well-defined. ub must be achievable (the caller typically passes
// the makespan of a heuristic schedule and that schedule as a fallback via
// fallback; pass nil to allow an empty outcome when all guesses fail).
func Search(ctx context.Context, in *core.Instance, lb, ub, precision float64, fallback *core.Schedule, decide Decider) Outcome {
	return SearchWithBounds(ctx, in, lb, ub, precision, fallback, nil, decide)
}

// SearchWithBounds is Search connected to a live bound exchange (a nil bus
// degrades to plain Search). The search both consumes and feeds the bus:
//
//   - guesses at or above the live incumbent makespan are accepted without
//     running the decider — the incumbent schedule, wherever it lives, is
//     already a witness that a schedule with that makespan exists
//     (Outcome.Skipped counts these);
//   - the search floor is raised to the bus's certified lower bound before
//     every guess, so refutations by concurrent racers narrow this search;
//   - every rejected guess is published as a certified lower bound, and the
//     makespan of every schedule a guess produces is published as an
//     incumbent the moment it appears, not only at return.
//
// Deciders whose rejections are not certificates (e.g. a node-capped
// dynamic program) must wrap the bus to suppress PublishLower for those
// guesses, or they would poison every racer sharing it.
func SearchWithBounds(ctx context.Context, in *core.Instance, lb, ub, precision float64, fallback *core.Schedule, bus core.BoundBus, decide Decider) Outcome {
	return SearchGuesses(ctx, in, lb, ub, precision, fallback, bus, func(g Guess) (*core.Schedule, bool) {
		return decide(g.T)
	})
}

// SearchGuesses is SearchWithBounds for deciders that carry warm-start
// state across guesses: the callback receives the Guess handle (ordinal and
// live bracket) alongside T, so a decider can build an expensive structure
// once at the envelope and cheaply re-solve it for every subsequent guess
// (the randomized-rounding LP relaxation does exactly this).
func SearchGuesses(ctx context.Context, in *core.Instance, lb, ub, precision float64, fallback *core.Schedule, bus core.BoundBus, decide GuessDecider) Outcome {
	out := Outcome{LowerBound: lb, Makespan: math.Inf(1)}
	if fallback != nil {
		out.Schedule = fallback
		out.Makespan = fallback.Makespan(in)
	}
	if ub <= 0 {
		// Zero-makespan instance (all sizes 0): any complete feasible
		// assignment achieves 0; the fallback already is one.
		return out
	}
	if precision <= 0 {
		precision = 0.05
	}
	if lb < ub*1e-9 || lb <= 0 {
		lb = ub * 1e-9
	}
	lo, hi := lb, ub
	for hi/lo > 1+precision {
		if err := ctx.Err(); err != nil {
			out.Err = err
			return out
		}
		if bus != nil {
			if l := bus.Lower(); l > lo {
				lo = l
				if l > out.LowerBound {
					out.LowerBound = l
				}
				continue
			}
		}
		mid := math.Sqrt(lo * hi)
		if bus != nil && mid >= bus.Upper() {
			out.Skipped++
			hi = mid
			continue
		}
		g := Guess{T: mid, Index: out.Guesses, Lo: lo, Hi: hi}
		out.Guesses++
		if sched, ok := decide(g); ok {
			if sched != nil {
				ms := sched.Makespan(in)
				if ms < out.Makespan {
					out.Schedule, out.Makespan = sched, ms
				}
				if bus != nil {
					bus.PublishUpper(ms)
				}
			}
			hi = mid
		} else {
			lo = mid
			if mid > out.LowerBound {
				out.LowerBound = mid
			}
			if bus != nil {
				bus.PublishLower(mid)
			}
		}
	}
	return out
}
