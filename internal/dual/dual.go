// Package dual implements the Hochbaum–Shmoys dual approximation framework
// (Section 1.1.1 of the paper): given a decision procedure that, for a
// makespan guess T, either produces a schedule with makespan at most α·T or
// correctly reports that no schedule with makespan T exists, a
// multiplicative search over T yields an α(1+δ)-approximation.
//
// How the search picks guesses is pluggable (Strategy): Bisect is the
// classic sequential binary search, Speculate(k) evaluates k guesses of the
// bracket concurrently on a worker pool — speculative parallelism that
// trades redundant decider work for wall-clock latency. Search,
// SearchWithBounds and SearchGuesses are thin wrappers over the shared
// strategy runner (Run).
package dual

import (
	"context"

	"repro/internal/core"
)

// Decider is the per-guess decision procedure. For a guess T it returns
// (schedule, true) when it constructed a schedule with makespan ≤ α·T, or
// (nil, false) when it certifies that no schedule with makespan ≤ T exists.
type Decider func(T float64) (*core.Schedule, bool)

// Guess is the handle a GuessDecider receives for one decision-procedure
// invocation: the makespan guess plus the state of the surrounding search.
// Deciders that keep warm-start state between guesses (an LP relaxation
// re-solved per guess, a reusable DP arena) use it to size and prime that
// state: Index tells them whether this is the build or a re-solve, and
// [Lo, Hi] brackets every future guess the search can still emit, so
// anything constructed for the envelope Hi remains valid for the rest of
// the search.
type Guess struct {
	// T is the makespan guess to decide.
	T float64
	// Index is the 0-based ordinal of this decider invocation across the
	// whole search (guesses skipped via a shared incumbent do not count).
	// Under a parallel strategy ordinals are assigned in launch order, so
	// concurrent invocations carry distinct indices but may complete out
	// of order.
	Index int
	// Lo and Hi are the search bracket the guess was proposed from: every
	// remaining guess lies in [Lo, Hi]. Under Bisect, T is their geometric
	// mean; parallel strategies propose several interior points per round.
	Lo, Hi float64
	// Ctx is the evaluation's context. It is cancelled when the guess
	// becomes irrelevant — a concurrently evaluated guess already moved
	// the bracket past it — or when the whole search is stopped, so
	// deciders that loop internally should observe it instead of the
	// search-level context. A rejection returned after Ctx was cancelled
	// is treated as interrupted (not a certificate) and discarded.
	Ctx context.Context
}

// GuessDecider is a Decider that receives the full Guess handle instead of
// the bare T. See SearchGuesses.
type GuessDecider func(g Guess) (*core.Schedule, bool)

// Outcome is the result of a dual approximation search.
type Outcome struct {
	// Schedule is the best (smallest makespan) schedule produced by any
	// accepted guess; nil when every guess was rejected.
	Schedule *core.Schedule
	// Makespan is the makespan of Schedule under the instance the decider
	// was built for (recorded by the decider via Observe; see Search).
	Makespan float64
	// LowerBound is the largest guess that was rejected — a certified lower
	// bound on the optimal makespan (Opt > LowerBound). It equals the
	// initial lb if no guess was ever rejected.
	LowerBound float64
	// Accepted is the smallest guess value the search holds an acceptance
	// for when it returns: the final upper bracket edge. Like the initial
	// upper bound it is accept-backed — either a decider accepted it, or it
	// is the caller's Upper (assumed accepted by the Search contract), or a
	// live incumbent witnessed it. The incremental re-solve pipeline
	// retains it and lifts it through Delta.AcceptedCap to open the next
	// search's bracket near the threshold. Zero when Upper <= 0 (the
	// zero-makespan fast path).
	Accepted float64
	// Guesses is the number of decision-procedure invocations.
	Guesses int
	// Skipped is the number of guesses short-circuited by a shared
	// incumbent (SearchWithBounds): guesses at or above the live incumbent
	// makespan are accepted without running the decider, since the
	// incumbent schedule is already a witness. Always 0 for Search.
	Skipped int
	// Err is the context error (context.Canceled or
	// context.DeadlineExceeded) when the search was stopped before
	// narrowing to the requested precision; nil when the search completed.
	// A stopped search still returns the best schedule and the soundest
	// lower bound seen so far.
	Err error
}

// Search runs multiplicative binary search for the smallest accepted guess
// in [lb, ub]. precision is the relative gap at which the search stops
// (e.g. 0.05 narrows to a factor 1.05). The instance is needed to evaluate
// makespans of returned schedules.
//
// The context is checked between guesses: a cancelled or expired ctx stops
// the search early and is reported in Outcome.Err. Deciders that loop
// internally should additionally observe the same context themselves.
//
// lb may be 0; it is raised to a tiny fraction of ub to keep the geometric
// search well-defined. ub must be achievable (the caller typically passes
// the makespan of a heuristic schedule and that schedule as a fallback via
// fallback; pass nil to allow an empty outcome when all guesses fail).
func Search(ctx context.Context, in *core.Instance, lb, ub, precision float64, fallback *core.Schedule, decide Decider) Outcome {
	return SearchWithBounds(ctx, in, lb, ub, precision, fallback, nil, decide)
}

// SearchWithBounds is Search connected to a live bound exchange (a nil bus
// degrades to plain Search). The search both consumes and feeds the bus:
//
//   - guesses at or above the live incumbent makespan are accepted without
//     running the decider — the incumbent schedule, wherever it lives, is
//     already a witness that a schedule with that makespan exists
//     (Outcome.Skipped counts these);
//   - the search floor is raised to the bus's certified lower bound before
//     every round, so refutations by concurrent racers narrow this search;
//   - every committed rejected guess is published as a certified lower
//     bound, and the makespan of every schedule a guess produces is
//     published as an incumbent the moment its round commits, not only at
//     return.
//
// Deciders whose rejections are not certificates (e.g. a node-capped
// dynamic program) must wrap the bus to suppress PublishLower for those
// guesses, or they would poison every racer sharing it.
func SearchWithBounds(ctx context.Context, in *core.Instance, lb, ub, precision float64, fallback *core.Schedule, bus core.BoundBus, decide Decider) Outcome {
	return SearchGuesses(ctx, in, lb, ub, precision, fallback, bus, func(g Guess) (*core.Schedule, bool) {
		return decide(g.T)
	})
}

// SearchGuesses is SearchWithBounds for deciders that carry warm-start
// state across guesses: the callback receives the Guess handle (ordinal and
// live bracket) alongside T, so a decider can build an expensive structure
// once at the envelope and cheaply re-solve it for every subsequent guess
// (the randomized-rounding LP relaxation does exactly this).
func SearchGuesses(ctx context.Context, in *core.Instance, lb, ub, precision float64, fallback *core.Schedule, bus core.BoundBus, decide GuessDecider) Outcome {
	return Run(ctx, Config{
		Instance:  in,
		Lower:     lb,
		Upper:     ub,
		Precision: precision,
		Fallback:  fallback,
		Bus:       bus,
		Deciders:  []GuessDecider{decide},
	})
}

// searchFloor raises a lower bracket edge to keep the geometric search
// well-defined when the caller passes lb = 0 (or absurdly small).
func searchFloor(lb, ub float64) float64 {
	if lb < ub*1e-9 || lb <= 0 {
		return ub * 1e-9
	}
	return lb
}
