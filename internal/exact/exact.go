// Package exact computes optimal makespans for small instances by
// depth-first branch-and-bound, and certified lower bounds for instances too
// large to solve exactly. The experiment harness measures approximation
// ratios of the paper's algorithms against these values.
package exact

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
)

// MaxJobs is the default job-count guard above which BranchAndBound refuses
// to run (the search is exponential in n).
const MaxJobs = 16

// Options tunes the branch-and-bound search.
type Options struct {
	// MaxJobs overrides the job-count guard (0 means MaxJobs).
	MaxJobs int
	// NodeLimit caps the number of explored search nodes; 0 means no cap.
	// When the cap is hit, the returned schedule is the best found so far
	// and the search is reported as not proven optimal.
	NodeLimit int64
	// UpperBound primes the search with a known feasible makespan (e.g.
	// from a heuristic); 0 means start from the trivial single-machine
	// bound.
	UpperBound float64
	// Bounds, when non-nil, connects the search to a live bound exchange
	// (e.g. the engine portfolio's incumbent bus): the pruning threshold is
	// primed with Bounds.Upper(), re-read at every node expansion so
	// incumbents found by concurrent racers cut this search too, every
	// improved schedule found here is published back, and on exhaustion the
	// final threshold is published as a certified lower bound.
	Bounds core.BoundBus
}

// StopReason says why a branch-and-bound run ended.
type StopReason int

const (
	// StopProven: the search space was exhausted; the result is optimal.
	StopProven StopReason = iota
	// StopTooLarge: the instance exceeded the MaxJobs guard and the search
	// never started.
	StopTooLarge
	// StopNodeLimit: the NodeLimit cap was hit; the result is the best
	// schedule found so far.
	StopNodeLimit
	// StopCancelled: the context was cancelled or its deadline expired.
	StopCancelled
)

// String returns a short human-readable cause, suitable for Result notes.
func (r StopReason) String() string {
	switch r {
	case StopProven:
		return "proven optimal"
	case StopTooLarge:
		return "instance exceeds job guard"
	case StopNodeLimit:
		return "node limit reached"
	case StopCancelled:
		return "context cancelled"
	default:
		return fmt.Sprintf("StopReason(%d)", int(r))
	}
}

// Status reports how a branch-and-bound run ended.
type Status struct {
	// Proven is true when optimality was proven (search space exhausted).
	Proven bool
	// Reason says why the search stopped when Proven is false (and is
	// StopProven when it is true).
	Reason StopReason
	// Nodes is the number of search nodes explored.
	Nodes int64
	// Bound is the final pruning threshold: the best makespan known to the
	// search at exit, whether found locally, primed via Options.UpperBound,
	// or read from Options.Bounds. When Proven is true the search exhausted
	// every assignment with makespan below it, so Bound is a certified
	// lower bound on the optimum (and equals the optimum whenever some
	// schedule achieving it is known). +Inf when the search never started.
	Bound float64
}

// checkEvery is the node interval at which the searcher polls the context;
// a power of two so the test compiles to a mask.
const checkEvery = 1024

// BranchAndBound returns an optimal schedule and its makespan, observing
// ctx: a cancelled or expired context stops the search and returns the best
// schedule found so far (Status.Reason = StopCancelled). Instances with
// more than Options.MaxJobs jobs yield (nil, 0, Status{Reason:
// StopTooLarge}) immediately.
func BranchAndBound(ctx context.Context, in *core.Instance, opt Options) (*core.Schedule, float64, Status) {
	guard := opt.MaxJobs
	if guard == 0 {
		guard = MaxJobs
	}
	if in.N > guard {
		return nil, 0, Status{Reason: StopTooLarge, Bound: math.Inf(1)}
	}
	s := &searcher{in: in, nodeLimit: opt.NodeLimit, ctx: ctx, bounds: opt.Bounds}
	s.prepare()
	s.bound = math.Inf(1)
	if opt.UpperBound > 0 {
		s.bound = opt.UpperBound
	}
	if s.bounds != nil {
		if u := s.bounds.Upper(); u < s.bound {
			s.bound = u
		}
	}
	s.bestMs = math.Inf(1)
	s.cur = core.NewSchedule(in.N)
	s.loads = make([]float64, in.M)
	s.classOn = make([][]bool, in.M)
	for i := range s.classOn {
		s.classOn[i] = make([]bool, in.K)
	}
	s.dfs(0)
	st := Status{Proven: !s.limitHit, Reason: s.stopReason, Nodes: s.nodes, Bound: s.bound}
	if st.Proven && s.bounds != nil && core.IsFinite(s.bound) {
		// Exhausting every assignment below the threshold certifies it as a
		// lower bound on the optimum, even when the schedule achieving it
		// lives in another racer.
		s.bounds.PublishLower(s.bound)
	}
	if s.best == nil {
		return nil, 0, st
	}
	return s.best, s.bestMs, st
}

type searcher struct {
	in         *core.Instance
	ctx        context.Context
	bounds     core.BoundBus // optional live bound exchange; nil when standalone
	order      []int         // jobs sorted by decreasing min processing time
	sufMin     []float64     // suffix sums of min_i p_{ij} over the order
	sameRows   [][]bool      // sameRows[a][b]: machines a and b fully identical
	cur        *core.Schedule
	best       *core.Schedule
	bestMs     float64 // makespan of best (+Inf while none found locally)
	bound      float64 // pruning threshold: min of bestMs, priming, live incumbent
	loads      []float64
	classOn    [][]bool
	nodes      int64
	nodeLimit  int64
	limitHit   bool
	stopReason StopReason
}

func (s *searcher) prepare() {
	in := s.in
	s.order = make([]int, in.N)
	minP := make([]float64, in.N)
	for j := 0; j < in.N; j++ {
		s.order[j] = j
		m := math.Inf(1)
		for i := 0; i < in.M; i++ {
			if in.Eligibility(i, j, math.Inf(1)) && in.P[i][j] < m {
				m = in.P[i][j]
			}
		}
		minP[j] = m
	}
	sort.Slice(s.order, func(a, b int) bool { return minP[s.order[a]] > minP[s.order[b]] })
	s.sufMin = make([]float64, in.N+1)
	for idx := in.N - 1; idx >= 0; idx-- {
		s.sufMin[idx] = s.sufMin[idx+1] + minP[s.order[idx]]
	}
	// Machines with identical processing and setup rows are interchangeable;
	// record the relation once for symmetry pruning.
	s.sameRows = make([][]bool, in.M)
	for a := 0; a < in.M; a++ {
		s.sameRows[a] = make([]bool, in.M)
		for b := 0; b < in.M; b++ {
			s.sameRows[a][b] = equalRows(in, a, b)
		}
	}
}

func equalRows(in *core.Instance, a, b int) bool {
	for j := 0; j < in.N; j++ {
		if in.P[a][j] != in.P[b][j] {
			return false
		}
	}
	for k := 0; k < in.K; k++ {
		if in.S[a][k] != in.S[b][k] {
			return false
		}
	}
	return true
}

// lower bound for the partial assignment: max of the current max load and
// the average of (current total load + cheapest completion of the rest).
func (s *searcher) lowerBound(idx int) float64 {
	maxLoad, sumLoad := 0.0, 0.0
	for _, l := range s.loads {
		sumLoad += l
		if l > maxLoad {
			maxLoad = l
		}
	}
	avg := (sumLoad + s.sufMin[idx]) / float64(s.in.M)
	if avg > maxLoad {
		return avg
	}
	return maxLoad
}

func (s *searcher) dfs(idx int) {
	if s.limitHit {
		return
	}
	s.nodes++
	if s.nodeLimit > 0 && s.nodes > s.nodeLimit {
		s.limitHit = true
		s.stopReason = StopNodeLimit
		return
	}
	if s.nodes%checkEvery == 0 && s.ctx.Err() != nil {
		s.limitHit = true
		s.stopReason = StopCancelled
		return
	}
	if s.bounds != nil {
		// Re-read the live incumbent at every expansion: a better schedule
		// published by a concurrent racer tightens this search immediately.
		if u := s.bounds.Upper(); u < s.bound {
			s.bound = u
		}
	}
	if s.lowerBound(idx) >= s.bound-core.Eps {
		return
	}
	in := s.in
	if idx == in.N {
		ms := 0.0
		for _, l := range s.loads {
			if l > ms {
				ms = l
			}
		}
		if ms < s.bound-core.Eps {
			s.bound = ms
			s.bestMs = ms
			s.best = s.cur.Clone()
			if s.bounds != nil {
				s.bounds.PublishUpper(ms)
			}
		}
		return
	}
	j := s.order[idx]
	k := in.Class[j]
	// Symmetry breaking: if an earlier machine i2 is fully interchangeable
	// with i (identical processing and setup rows) and currently has the
	// same load and class profile, the subtree rooted at "j → i" is
	// isomorphic to "j → i2", so only the first is explored.
	for i := 0; i < in.M; i++ {
		if !in.Eligibility(i, j, math.Inf(1)) {
			continue
		}
		delta := in.P[i][j]
		addedSetup := false
		if !s.classOn[i][k] {
			delta += in.S[i][k]
			addedSetup = true
		}
		if s.loads[i]+delta >= s.bound-core.Eps {
			continue
		}
		skip := false
		for i2 := 0; i2 < i; i2++ {
			if s.sameRows[i][i2] && math.Abs(s.loads[i2]-s.loads[i]) < core.Eps &&
				sameProfile(s, i, i2) {
				skip = true
				break
			}
		}
		if skip {
			continue
		}
		s.loads[i] += delta
		if addedSetup {
			s.classOn[i][k] = true
		}
		s.cur.Assign[j] = i
		s.dfs(idx + 1)
		s.cur.Assign[j] = -1
		if addedSetup {
			s.classOn[i][k] = false
		}
		s.loads[i] -= delta
	}
}

// sameProfile reports whether machines a and b currently host exactly the
// same set of classes (used for symmetry pruning; only sound when the two
// machines also agree on loads and on the job's processing/setup times).
func sameProfile(s *searcher, a, b int) bool {
	for k := range s.classOn[a] {
		if s.classOn[a][k] != s.classOn[b][k] {
			return false
		}
	}
	return true
}

// VolumeLowerBound returns a certified lower bound on the optimal makespan:
// the maximum of
//
//   - the cheapest single placement max_j min_i (p_{ij} + s_{i,k_j}),
//   - total volume: (Σ_j min_i p_{ij} + Σ_k min_i s_{ik}) / m for identical
//     machines, and the speed-weighted analogue for uniform machines
//     (every class pays its setup at least once somewhere).
//
// For unrelated machines the volume term uses per-job minima, which remains
// valid (any schedule processes j somewhere at cost ≥ min_i p_{ij}).
func VolumeLowerBound(in *core.Instance) float64 {
	// Cheapest single placement.
	lb := 0.0
	for j := 0; j < in.N; j++ {
		best := math.Inf(1)
		for i := 0; i < in.M; i++ {
			if !core.IsFinite(in.P[i][j]) || !core.IsFinite(in.S[i][in.Class[j]]) {
				continue
			}
			if v := in.P[i][j] + in.S[i][in.Class[j]]; v < best {
				best = v
			}
		}
		if best > lb {
			lb = best
		}
	}
	// Volume: total minimal work plus one minimal setup per class, spread
	// over the machines. For uniform machines, "capacity" per unit time is
	// Σ v_i and job j consumes p_j capacity; for identical, v_i = 1; for
	// unrelated we use min_i p_{ij} over m machines (weaker but valid).
	switch in.Kind {
	case core.Uniform:
		totalSpeed := 0.0
		for _, v := range in.Speed {
			totalSpeed += v
		}
		vol := 0.0
		for _, pj := range in.JobSize {
			vol += pj
		}
		used := map[int]bool{}
		for _, k := range in.Class {
			used[k] = true
		}
		for k := range used {
			vol += in.SetupSize[k]
		}
		if v := vol / totalSpeed; v > lb {
			lb = v
		}
	default:
		vol := 0.0
		for j := 0; j < in.N; j++ {
			best := math.Inf(1)
			for i := 0; i < in.M; i++ {
				if in.P[i][j] < best {
					best = in.P[i][j]
				}
			}
			vol += best
		}
		used := map[int]bool{}
		for _, k := range in.Class {
			used[k] = true
		}
		for k := range used {
			best := math.Inf(1)
			for i := 0; i < in.M; i++ {
				if in.S[i][k] < best {
					best = in.S[i][k]
				}
			}
			vol += best
		}
		if v := vol / float64(in.M); v > lb {
			lb = v
		}
	}
	return lb
}
