package exact

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/boundtest"
	"repro/internal/core"
	"repro/internal/gen"
)

// bruteForce enumerates all m^n assignments (tiny instances only).
func bruteForce(in *core.Instance) float64 {
	sched := core.NewSchedule(in.N)
	best := math.Inf(1)
	var rec func(j int)
	rec = func(j int) {
		if j == in.N {
			if err := sched.Validate(in); err == nil {
				if ms := sched.Makespan(in); ms < best {
					best = ms
				}
			}
			return
		}
		for i := 0; i < in.M; i++ {
			sched.Assign[j] = i
			rec(j + 1)
		}
		sched.Assign[j] = -1
	}
	rec(0)
	return best
}

func TestBranchAndBoundMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := gen.Params{N: 1 + rng.Intn(7), M: 1 + rng.Intn(3), K: 1 + rng.Intn(3)}
		var in *core.Instance
		switch rng.Intn(4) {
		case 0:
			in = gen.Identical(rng, p)
		case 1:
			in = gen.Uniform(rng, p)
		case 2:
			in = gen.Unrelated(rng, p)
		default:
			in = gen.Restricted(rng, p)
		}
		want := bruteForce(in)
		sched, got, bst := BranchAndBound(context.Background(), in, Options{})
		proven := bst.Proven
		if !proven || sched == nil {
			return false
		}
		if err := sched.Validate(in); err != nil {
			return false
		}
		if math.Abs(sched.Makespan(in)-got) > core.Eps {
			return false
		}
		return math.Abs(got-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestBranchAndBoundKnownOptimum(t *testing.T) {
	// Two machines, two classes with setup 10 each, jobs 5+5 per class.
	// Optimal: dedicate one machine per class => makespan 20.
	in, err := core.NewIdentical(
		[]float64{5, 5, 5, 5}, []int{0, 0, 1, 1}, []float64{10, 10}, 2)
	if err != nil {
		t.Fatalf("NewIdentical: %v", err)
	}
	_, opt, bst := BranchAndBound(context.Background(), in, Options{})
	proven := bst.Proven
	if !proven || math.Abs(opt-20) > core.Eps {
		t.Errorf("opt = %v (proven=%v), want 20", opt, proven)
	}
}

func TestBranchAndBoundRespectsJobGuard(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	in := gen.Identical(rng, gen.Params{N: MaxJobs + 1, M: 2, K: 2})
	if sched, _, st := BranchAndBound(context.Background(), in, Options{}); sched != nil || st.Proven {
		t.Error("guard did not trip for oversized instance")
	}
	if sched, _, _ := BranchAndBound(context.Background(), in, Options{MaxJobs: MaxJobs + 1}); sched == nil {
		t.Error("override of job guard did not take effect")
	}
}

func TestBranchAndBoundNodeLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	in := gen.Unrelated(rng, gen.Params{N: 12, M: 4, K: 3})
	sched, _, bst := BranchAndBound(context.Background(), in, Options{NodeLimit: 50})
	proven := bst.Proven
	if proven {
		t.Error("claims proven optimality despite tiny node limit")
	}
	if sched != nil {
		if err := sched.Validate(in); err != nil {
			t.Errorf("partial-search schedule invalid: %v", err)
		}
	}
}

func TestBranchAndBoundUsesUpperBound(t *testing.T) {
	in, err := core.NewIdentical([]float64{4, 4}, []int{0, 1}, []float64{1, 1}, 2)
	if err != nil {
		t.Fatalf("NewIdentical: %v", err)
	}
	// Optimal makespan is 5 (one job per machine). Priming with a bound of
	// 5 means nothing strictly better exists; the search must still return
	// a schedule achieving it... it cannot, since pruning is strict. So
	// prime with 6: the optimum 5 must be found.
	sched, opt, bst := BranchAndBound(context.Background(), in, Options{UpperBound: 6})
	proven := bst.Proven
	if !proven || sched == nil || math.Abs(opt-5) > core.Eps {
		t.Errorf("opt = %v (proven=%v), want 5", opt, proven)
	}
}

// TestBranchAndBoundSharedBoundsPrune: a live incumbent primes the pruning
// threshold, so the bus-connected search explores strictly fewer nodes than
// the blind one, still proves optimality, and certifies the threshold as a
// lower bound on exhaustion.
func TestBranchAndBoundSharedBoundsPrune(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	in := gen.Uniform(rng, gen.Params{N: 12, M: 3, K: 3})
	_, opt0, st0 := BranchAndBound(context.Background(), in, Options{})
	if !st0.Proven {
		t.Fatal("baseline search not proven")
	}
	if math.Abs(st0.Bound-opt0) > core.Eps {
		t.Errorf("Status.Bound = %v, want the proven optimum %v", st0.Bound, opt0)
	}

	bus := boundtest.New()
	bus.U = opt0 // a racer already holds an optimal schedule
	_, _, st1 := BranchAndBound(context.Background(), in, Options{Bounds: bus})
	if st1.Nodes >= st0.Nodes {
		t.Errorf("incumbent-primed search explored %d nodes, blind search %d — want strictly fewer", st1.Nodes, st0.Nodes)
	}
	if !st1.Proven {
		t.Error("primed search not proven despite exhausting its (pruned) tree")
	}
	if math.Abs(bus.L-opt0) > core.Eps {
		t.Errorf("proven exhaustion published lower bound %v, want %v", bus.L, opt0)
	}

	// A bus-connected search publishes its own incumbents as it improves.
	bus2 := boundtest.New()
	_, opt2, _ := BranchAndBound(context.Background(), in, Options{Bounds: bus2})
	if len(bus2.UpperPubs) == 0 || math.Abs(bus2.U-opt2) > core.Eps {
		t.Errorf("search published %d incumbents ending at %v, want its optimum %v", len(bus2.UpperPubs), bus2.U, opt2)
	}
}

func TestVolumeLowerBoundSoundOnRandomInstances(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := gen.Params{N: 1 + rng.Intn(6), M: 1 + rng.Intn(3), K: 1 + rng.Intn(2)}
		var in *core.Instance
		switch rng.Intn(3) {
		case 0:
			in = gen.Identical(rng, p)
		case 1:
			in = gen.Uniform(rng, p)
		default:
			in = gen.Unrelated(rng, p)
		}
		opt := bruteForce(in)
		lb := VolumeLowerBound(in)
		return lb <= opt+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestVolumeLowerBoundPositive(t *testing.T) {
	in, err := core.NewIdentical([]float64{3}, []int{0}, []float64{2}, 4)
	if err != nil {
		t.Fatalf("NewIdentical: %v", err)
	}
	// Single job must pay 3+2 somewhere.
	if lb := VolumeLowerBound(in); math.Abs(lb-5) > core.Eps {
		t.Errorf("lb = %v, want 5", lb)
	}
}

func TestSymmetryPruningStillOptimal(t *testing.T) {
	// Many identical machines: symmetry pruning must not cut the optimum.
	in, err := core.NewIdentical(
		[]float64{9, 8, 7, 6, 5, 4}, []int{0, 0, 0, 0, 0, 0}, []float64{0}, 3)
	if err != nil {
		t.Fatalf("NewIdentical: %v", err)
	}
	_, opt, bst := BranchAndBound(context.Background(), in, Options{})
	proven := bst.Proven
	if !proven || math.Abs(opt-13) > core.Eps {
		// Sizes sum to 39; best balance on 3 machines is 13 = 9+4 = 8+5 = 7+6.
		t.Errorf("opt = %v (proven=%v), want 13", opt, proven)
	}
}
