package identical

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/gen"
)

func TestBothAlgorithmsFeasible(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := gen.Identical(rng, gen.Params{N: 1 + rng.Intn(40), M: 1 + rng.Intn(6), K: 1 + rng.Intn(5)})
		a, err := NextFitBatch(in)
		if err != nil || a.Validate(in) != nil || !a.Complete() {
			return false
		}
		b, err := SplitBigClasses(in)
		if err != nil || b.Validate(in) != nil || !b.Complete() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestSplitBigClassesConstantFactorEmpirical(t *testing.T) {
	worst := 0.0
	checked := 0
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		in := gen.Identical(rng, gen.Params{N: 9, M: 3, K: 3})
		_, opt, bst := exact.BranchAndBound(context.Background(), in, exact.Options{})
		proven := bst.Proven
		if !proven || opt <= 0 {
			continue
		}
		sched, err := SplitBigClasses(in)
		if err != nil {
			t.Fatal(err)
		}
		if r := sched.Makespan(in) / opt; r > worst {
			worst = r
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("vacuous")
	}
	if worst > 4 {
		t.Errorf("SplitBigClasses worst ratio %v, want ≤ 4 (constant-factor regime)", worst)
	}
	t.Logf("SplitBigClasses worst ratio over %d instances: %.3f", checked, worst)
}

func TestNextFitBatchBatchesClasses(t *testing.T) {
	// Whole-class batching: each class contributes exactly one setup.
	in, err := core.NewIdentical(
		[]float64{1, 1, 1, 2, 2}, []int{0, 0, 0, 1, 1}, []float64{10, 10}, 2)
	if err != nil {
		t.Fatalf("NewIdentical: %v", err)
	}
	sched, err := NextFitBatch(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := sched.SetupCount(in); got != 2 {
		t.Errorf("setups = %d, want 2 (one per class)", got)
	}
}

func TestSplitBigClassesSplitsWhenItPays(t *testing.T) {
	// One class of 12 unit jobs with setup 1 on 4 machines: volume bound is
	// (12+1)/4 ≈ 3.25, so the class splits into several batches and the
	// makespan stays near the bound instead of 13.
	p := make([]float64, 12)
	class := make([]int, 12)
	for j := range p {
		p[j] = 1
	}
	in, err := core.NewIdentical(p, class, []float64{1}, 4)
	if err != nil {
		t.Fatalf("NewIdentical: %v", err)
	}
	sched, err := SplitBigClasses(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := sched.Makespan(in); got > 8 {
		t.Errorf("makespan = %v, want far below the unsplit 13", got)
	}
	whole, err := NextFitBatch(in)
	if err != nil {
		t.Fatal(err)
	}
	if whole.Makespan(in) < sched.Makespan(in)-core.Eps {
		t.Errorf("whole-class batching (%v) beat splitting (%v) on a split-friendly instance",
			whole.Makespan(in), sched.Makespan(in))
	}
}

func TestRejectsNonIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	in := gen.Uniform(rng, gen.Params{N: 5, M: 2, K: 2})
	if _, err := NextFitBatch(in); err == nil {
		t.Error("NextFitBatch accepted a uniform instance")
	}
	if _, err := SplitBigClasses(in); err == nil {
		t.Error("SplitBigClasses accepted a uniform instance")
	}
}

func TestZeroSizeInstance(t *testing.T) {
	in, err := core.NewIdentical([]float64{0, 0}, []int{0, 0}, []float64{0}, 2)
	if err != nil {
		t.Fatalf("NewIdentical: %v", err)
	}
	for name, f := range map[string]func(*core.Instance) (*core.Schedule, error){
		"NextFitBatch": NextFitBatch, "SplitBigClasses": SplitBigClasses,
	} {
		sched, err := f(in)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if err := sched.Validate(in); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
