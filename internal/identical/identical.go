// Package identical implements the batch-scheduling algorithms for
// identical machines that predate the paper's results — the setting of
// Mäcker et al. [24], whose constant-factor algorithms the paper's
// Section 2 generalizes to uniform speeds. Two algorithms are provided:
//
//   - NextFitBatch: classes are treated as indivisible batches (setup +
//     jobs) and packed next-fit against a capacity derived from the volume
//     lower bound, doubling the capacity until everything fits. For
//     instances whose class batches all fit under the bound it is a
//     constant-factor approximation by the standard next-fit argument.
//   - SplitBigClasses: the refinement in the spirit of [24]: classes whose
//     batch exceeds the capacity are first split into capacity-sized
//     sub-batches (each paying its own setup), after which next-fit
//     packing applies; big jobs are placed individually.
//
// These serve as the identical-machines baselines in experiment E12 and as
// substrates that the Section 2 PTAS is measured against.
package identical

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
)

// volumeBound returns the classic lower bound max(volume/m, biggest item),
// where volume counts every job plus one setup per class present.
func volumeBound(in *core.Instance) float64 {
	vol, biggest := 0.0, 0.0
	present := make([]bool, in.K)
	for j := 0; j < in.N; j++ {
		vol += in.JobSize[j]
		k := in.Class[j]
		if !present[k] {
			present[k] = true
			vol += in.SetupSize[k]
		}
		if v := in.JobSize[j] + in.SetupSize[k]; v > biggest {
			biggest = v
		}
	}
	return math.Max(vol/float64(in.M), biggest)
}

// batch is a set of same-class jobs scheduled contiguously after one setup.
type batch struct {
	class int
	jobs  []int
	size  float64 // setup + job sizes
}

// buildBatches groups jobs per class into batches of total size at most
// cap, splitting classes greedily when necessary (each sub-batch pays the
// setup again). Jobs bigger than cap−setup get singleton batches.
func buildBatches(in *core.Instance, cap float64) []batch {
	byClass := in.JobsOfClass()
	var batches []batch
	for k, jobs := range byClass {
		if len(jobs) == 0 {
			continue
		}
		// Sort descending so splits put big jobs first.
		sorted := append([]int(nil), jobs...)
		sort.SliceStable(sorted, func(a, b int) bool {
			return in.JobSize[sorted[a]] > in.JobSize[sorted[b]]
		})
		cur := batch{class: k, size: in.SetupSize[k]}
		for _, j := range sorted {
			pj := in.JobSize[j]
			if len(cur.jobs) > 0 && cur.size+pj > cap+core.Eps {
				batches = append(batches, cur)
				cur = batch{class: k, size: in.SetupSize[k]}
			}
			cur.jobs = append(cur.jobs, j)
			cur.size += pj
		}
		if len(cur.jobs) > 0 {
			batches = append(batches, cur)
		}
	}
	return batches
}

// packNextFit places batches next-fit onto m machines with the given
// capacity; returns nil when they do not fit.
func packNextFit(in *core.Instance, batches []batch, cap float64) *core.Schedule {
	// Largest batches first (next-fit-decreasing) for stability.
	sorted := append([]batch(nil), batches...)
	sort.SliceStable(sorted, func(a, b int) bool { return sorted[a].size > sorted[b].size })
	sched := core.NewSchedule(in.N)
	machine, load := 0, 0.0
	for _, b := range sorted {
		if load+b.size > cap+core.Eps {
			machine++
			load = 0
			if machine >= in.M {
				return nil
			}
		}
		for _, j := range b.jobs {
			sched.Assign[j] = machine
		}
		load += b.size
	}
	return sched
}

// NextFitBatch schedules whole-class batches next-fit, doubling the
// capacity from the volume bound until the packing succeeds.
func NextFitBatch(in *core.Instance) (*core.Schedule, error) {
	if in.Kind != core.Identical {
		return nil, fmt.Errorf("identical: NextFitBatch requires identical machines, got %v", in.Kind)
	}
	lb := volumeBound(in)
	if lb == 0 {
		return &core.Schedule{Assign: make([]int, in.N)}, nil
	}
	// Whole classes as batches: the largest batch may exceed any capacity
	// multiple of lb, so cap at the largest batch size when needed.
	byClass := in.JobsOfClass()
	maxBatch := 0.0
	for k, jobs := range byClass {
		if len(jobs) == 0 {
			continue
		}
		s := in.SetupSize[k]
		for _, j := range jobs {
			s += in.JobSize[j]
		}
		if s > maxBatch {
			maxBatch = s
		}
	}
	batches := buildBatches(in, math.Inf(1)) // whole classes
	for cap := math.Max(lb, maxBatch); ; cap *= 2 {
		if sched := packNextFit(in, batches, cap); sched != nil {
			return sched, nil
		}
	}
}

// SplitBigClasses splits classes into capacity-sized sub-batches before
// packing, doubling the capacity from the volume bound until the packing
// succeeds (at capacity 2·Opt the split batches always fit, so the loop
// terminates with a constant-factor schedule).
func SplitBigClasses(in *core.Instance) (*core.Schedule, error) {
	if in.Kind != core.Identical {
		return nil, fmt.Errorf("identical: SplitBigClasses requires identical machines, got %v", in.Kind)
	}
	lb := volumeBound(in)
	if lb == 0 {
		return &core.Schedule{Assign: make([]int, in.N)}, nil
	}
	for cap := lb; ; cap *= 2 {
		batches := buildBatches(in, cap)
		ok := true
		for _, b := range batches {
			if b.size > cap+core.Eps && len(b.jobs) > 1 {
				ok = false // split failed to respect cap (shouldn't happen)
				break
			}
		}
		if ok {
			if sched := packNextFit(in, batches, cap); sched != nil {
				return sched, nil
			}
		}
	}
}
