// Package experiments implements the reproduction harness: one experiment
// per theorem/figure of the paper (see DESIGN.md §4 for the index). The
// paper is a theory paper without empirical tables, so each experiment
// validates the corresponding claim — approximation ratios against exact
// optima or certified lower bounds, the Θ(log n + log m) growth, the
// set-cover separation, and the Figure 1 structure.
//
// Experiments are deterministic for a fixed Config.Seed.
package experiments

import (
	"fmt"
	"sort"
)

// Config controls experiment scale.
type Config struct {
	// Seed drives all randomness.
	Seed int64
	// Quick shrinks instance sizes and repetition counts so the whole
	// suite runs in seconds (used by tests; benchmarks use full mode).
	Quick bool
}

// Experiment is one reproducible experiment.
type Experiment struct {
	// ID is the short identifier used by `schedbench -exp` and the
	// Benchmark functions (e.g. "E1").
	ID string
	// Name is a one-line description.
	Name string
	// Claim is the paper statement the experiment validates.
	Claim string
	// Run executes the experiment and returns its rendered tables.
	Run func(cfg Config) (string, error)
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns the experiments sorted by ID.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(a, b int) bool {
		// E1 < E2 < … < E10 < E11 (numeric order, not lexicographic).
		var na, nb int
		fmt.Sscanf(out[a].ID, "E%d", &na)
		fmt.Sscanf(out[b].ID, "E%d", &nb)
		return na < nb
	})
	return out
}

// ByID looks an experiment up by its identifier.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
