package experiments

import (
	"context"
	"math/rand"

	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/special"
	"repro/internal/stats"
	"repro/internal/table"
)

func init() {
	register(Experiment{
		ID:    "E7",
		Name:  "Theorem 3.10: 2-approx for class-uniform restricted assignment",
		Claim: "the pseudoforest rounding never exceeds 2·Opt",
		Run:   runE7,
	})
	register(Experiment{
		ID:    "E8",
		Name:  "Theorem 3.11: 3-approx for class-uniform processing times",
		Claim: "the proportional-redistribution rounding never exceeds 3·Opt",
		Run:   runE8,
	})
}

func runE7(cfg Config) (string, error) {
	return runSpecial(cfg, "E7 — class-uniform restricted assignment (Theorem 3.10)",
		2.0, func(rng *rand.Rand, p gen.Params) (*specialResult, error) {
			in := gen.RestrictedClassUniform(rng, p)
			res, err := special.ScheduleClassUniformRA(context.Background(), in, special.Options{})
			if err != nil {
				return nil, err
			}
			_, opt, bst := exact.BranchAndBound(context.Background(), in, exact.Options{})
			proven := bst.Proven
			return &specialResult{makespan: res.Makespan, lb: res.LowerBound, opt: opt, proven: proven}, nil
		})
}

func runE8(cfg Config) (string, error) {
	return runSpecial(cfg, "E8 — class-uniform processing times (Theorem 3.11)",
		3.0, func(rng *rand.Rand, p gen.Params) (*specialResult, error) {
			in := gen.UnrelatedClassUniform(rng, p)
			res, err := special.ScheduleClassUniformPT(context.Background(), in, special.Options{})
			if err != nil {
				return nil, err
			}
			_, opt, bst := exact.BranchAndBound(context.Background(), in, exact.Options{})
			proven := bst.Proven
			return &specialResult{makespan: res.Makespan, lb: res.LowerBound, opt: opt, proven: proven}, nil
		})
}

type specialResult struct {
	makespan, lb, opt float64
	proven            bool
}

func runSpecial(cfg Config, title string, bound float64,
	solve func(*rand.Rand, gen.Params) (*specialResult, error)) (string, error) {
	reps := 25
	if cfg.Quick {
		reps = 6
	}
	t := table.New(title,
		"regime", "instances", "mean ratio vs Opt", "max ratio vs Opt", "mean ratio vs LB", "bound")
	regimes := []struct {
		name   string
		params gen.Params
	}{
		{"balanced", gen.Params{N: 10, M: 3, K: 3}},
		{"setup-heavy", gen.SetupHeavy(10, 3, 3)},
		{"few-classes", gen.Params{N: 10, M: 4, K: 2}},
	}
	for _, reg := range regimes {
		var vsOpt, vsLB []float64
		for rep := 0; rep < reps; rep++ {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(rep)))
			r, err := solve(rng, reg.params)
			if err != nil {
				return "", err
			}
			if r.proven && r.opt > 0 {
				vsOpt = append(vsOpt, r.makespan/r.opt)
			}
			if r.lb > 0 {
				vsLB = append(vsLB, r.makespan/r.lb)
			}
		}
		so, sl := stats.Summarize(vsOpt), stats.Summarize(vsLB)
		t.AddRow(reg.name, so.N, so.Mean, so.Max, sl.Mean, bound)
	}
	t.AddNote("the theorem holds iff every \"max ratio vs Opt\" ≤ %.1f", bound)
	return t.String(), nil
}
