package experiments

import (
	"context"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dual"
	"repro/internal/rounding"
	"repro/internal/setcover"
	"repro/internal/table"
)

func init() {
	register(Experiment{
		ID:    "E5",
		Name:  "Corollary 3.4: integrality gap of the ILP-UM relaxation",
		Claim: "the LP relaxation has gap Ω(log n + log m) on set-cover-shaped instances",
		Run:   runE5,
	})
	register(Experiment{
		ID:    "E6",
		Name:  "Theorem 3.5: Yes/No makespan separation of the reduction",
		Claim: "Yes-instances schedule within O((K/m)·t + log m); No-instances force Ω((K/m)·OptCover)",
		Run:   runE6,
	})
}

// lpFeasibleMakespan binary-searches the smallest T at which the ILP-UM LP
// relaxation is feasible — the LP bound T*_LP. The relaxation is built once
// at the envelope and warm re-solved per guess.
func lpFeasibleMakespan(in *core.Instance, ub float64) (float64, error) {
	rel, err := rounding.NewRelaxation(in, rounding.RelaxationConfig{Envelope: ub})
	if err != nil {
		return 0, err
	}
	var solveErr error
	best := ub
	out := dual.SearchGuesses(context.Background(), in, 0, ub, 0.03, nil, nil, func(g dual.Guess) (*core.Schedule, bool) {
		f, err := rel.ReSolve(g.T)
		if err != nil {
			solveErr = err
			return nil, true
		}
		if f == nil {
			return nil, false
		}
		if g.T < best {
			best = g.T
		}
		return nil, true
	})
	if solveErr != nil {
		return 0, solveErr
	}
	// The search's lower bound is the largest infeasible guess; the LP
	// optimum lies between it and the smallest feasible guess.
	if out.LowerBound > 0 && out.LowerBound < best {
		return (out.LowerBound + best) / 2, nil
	}
	return best, nil
}

func runE5(cfg Config) (string, error) {
	// The binary-code gap family: universe F₂^d \ {0}; fractional cover
	// < 2, integral cover = d, so the induced scheduling LP has gap
	// Ω(d) = Ω(log N).
	ds := []int{2, 3, 4}
	if cfg.Quick {
		ds = []int{2, 3}
	}
	const kClasses = 4
	t := table.New("E5 — integrality gap on the binary-code set-cover family",
		"d", "N=m", "jobs n", "int cover", "frac cover", "LP bound T*", "integral LB", "gap", "d/2")
	for i, d := range ds {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)))
		ci := setcover.BinaryGap(d)
		intCover := setcover.ExactCoverSize(ci)
		red, err := setcover.BuildK(rng, ci, 2, kClasses)
		if err != nil {
			return "", err
		}
		in := red.Instance
		intLB := red.NoSideLowerBound(intCover)
		// An upper bound for the LP binary search: one setup per class per
		// machine would certainly do.
		ub := float64(in.K) + 1
		lpT, err := lpFeasibleMakespan(in, ub)
		if err != nil {
			return "", err
		}
		gap := intLB / math.Max(lpT, 1e-9)
		t.AddRow(d, ci.N, in.N, intCover, setcover.FractionalCoverValue(d),
			lpT, intLB, gap, float64(d)/2)
	}
	t.AddNote("gap = certified integral lower bound / LP-feasible makespan; it tracks d/2 = Ω(log N), matching Cor. 3.4")
	t.AddNote("K fixed to %d classes: the gap is K-independent and small K keeps the LP tractable", kClasses)
	return t.String(), nil
}

func runE6(cfg Config) (string, error) {
	type point struct{ n, t, m int }
	points := []point{{12, 2, 8}, {16, 2, 10}, {20, 2, 12}}
	if cfg.Quick {
		points = []point{{10, 2, 6}, {12, 2, 8}}
	}
	t := table.New("E6 — Theorem 3.5 reduction: Yes-side vs No-side makespans",
		"universe N", "t", "m", "K", "yes makespan", "yes bound O(Kt/m+log m)", "no-side LB", "separation")
	for i, pt := range points {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)))
		// Yes side: planted cover of size t.
		ciYes, planted := setcover.PlantedYes(rng, pt.n, pt.t, pt.m)
		redYes, err := setcover.Build(rng, ciYes, pt.t)
		if err != nil {
			return "", err
		}
		sched, err := redYes.CoverSchedule(planted)
		if err != nil {
			return "", err
		}
		yes := sched.Makespan(redYes.Instance)
		k := float64(redYes.K())
		yesBound := 2*k*float64(pt.t)/float64(pt.m) + 2*math.Log2(float64(pt.m)) + 2
		// No side: random sparse sets needing a large cover.
		ciNo := setcover.HardNoLike(rng, pt.n, pt.m, 2)
		coverLB := setcover.CoverLowerBound(ciNo)
		redNo, err := setcover.Build(rng, ciNo, pt.t)
		if err != nil {
			return "", err
		}
		noLB := redNo.NoSideLowerBound(coverLB)
		t.AddRow(pt.n, pt.t, pt.m, redYes.K(), yes, yesBound, noLB,
			noLB/math.Max(yes, 1e-9))
	}
	t.AddNote("separation = no-side lower bound / yes-side makespan; the reduction forces a gap growing like α = Θ(log N)")
	return t.String(), nil
}
