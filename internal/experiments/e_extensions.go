package experiments

import (
	"context"
	"math/rand"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/identical"
	"repro/internal/improve"
	"repro/internal/ptas"
	"repro/internal/special"
	"repro/internal/stats"
	"repro/internal/table"
)

func init() {
	register(Experiment{
		ID:    "E12",
		Name:  "Heuristic landscape on identical machines",
		Claim: "(context) the paper's machinery vs the pre-existing batch heuristics of [24] and plain greedy",
		Run:   runE12,
	})
	register(Experiment{
		ID:    "E13",
		Name:  "Ablation: local-search neighborhoods",
		Claim: "(engineering) moves, swaps and class consolidation each contribute improvements",
		Run:   runE13,
	})
	register(Experiment{
		ID:    "E14",
		Name:  "Splittable vs atomic scheduling (model of [5]/[6])",
		Claim: "splitting trades extra setups for balance; it wins when jobs dominate setups and loses little otherwise",
		Run:   runE14,
	})
}

func runE12(cfg Config) (string, error) {
	reps := 25
	if cfg.Quick {
		reps = 6
	}
	t := table.New("E12 — algorithms on identical machines (ratio vs exact optimum)",
		"algorithm", "balanced mean", "balanced max", "setup-heavy mean", "setup-heavy max")
	type algo struct {
		name string
		run  func(*core.Instance) (*core.Schedule, error)
	}
	algos := []algo{
		{"greedy list", baseline.Greedy},
		{"LPT (Lemma 2.1)", baseline.Lemma21LPT},
		{"NextFitBatch [24]", identical.NextFitBatch},
		{"SplitBigClasses [24]", identical.SplitBigClasses},
		{"PTAS ε=1/4 (Sec. 2)", func(in *core.Instance) (*core.Schedule, error) {
			res, _, err := ptas.Schedule(context.Background(), in, ptas.Options{Eps: 0.25})
			if err != nil {
				return nil, err
			}
			return res.Schedule, nil
		}},
		{"greedy + local search", func(in *core.Instance) (*core.Schedule, error) {
			g, err := baseline.Greedy(in)
			if err != nil {
				return nil, err
			}
			improved, _ := improve.Improve(context.Background(), in, g, improve.DefaultOptions())
			return improved, nil
		}},
	}
	regimes := []gen.Params{
		{N: 10, M: 3, K: 3},
		gen.SetupHeavy(10, 3, 3),
	}
	rows := make([][]float64, len(algos)) // per algo: means/maxes interleaved
	for ri, reg := range regimes {
		perAlgo := make([][]float64, len(algos))
		for rep := 0; rep < reps; rep++ {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(rep)))
			in := gen.Identical(rng, reg)
			_, opt, bst := exact.BranchAndBound(context.Background(), in, exact.Options{})
			proven := bst.Proven
			if !proven || opt <= 0 {
				continue
			}
			for ai, a := range algos {
				sched, err := a.run(in)
				if err != nil {
					return "", err
				}
				perAlgo[ai] = append(perAlgo[ai], sched.Makespan(in)/opt)
			}
		}
		for ai := range algos {
			s := stats.Summarize(perAlgo[ai])
			rows[ai] = append(rows[ai], s.Mean, s.Max)
		}
		_ = ri
	}
	for ai, a := range algos {
		t.AddRow(a.name, rows[ai][0], rows[ai][1], rows[ai][2], rows[ai][3])
	}
	t.AddNote("all algorithms share the same instance pool per regime; optimum by branch-and-bound")
	return t.String(), nil
}

func runE13(cfg Config) (string, error) {
	reps := 25
	if cfg.Quick {
		reps = 6
	}
	t := table.New("E13 — local-search neighborhood ablation (start: greedy on unrelated)",
		"neighborhoods", "mean improvement %", "max improvement %", "mean steps")
	variants := []struct {
		name string
		opt  improve.Options
	}{
		{"moves", improve.Options{MaxRounds: 50, Moves: true}},
		{"moves+swaps", improve.Options{MaxRounds: 50, Moves: true, Swaps: true}},
		{"moves+swaps+consolidate", improve.DefaultOptions()},
	}
	for _, v := range variants {
		var gains []float64
		steps := 0
		for rep := 0; rep < reps; rep++ {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(rep)))
			in := gen.Unrelated(rng, gen.Params{N: 20, M: 4, K: 4})
			start, err := baseline.Greedy(in)
			if err != nil {
				return "", err
			}
			_, res := improve.Improve(context.Background(), in, start, v.opt)
			if res.Before > 0 {
				gains = append(gains, 100*(res.Before-res.After)/res.Before)
			}
			steps += res.Applied
		}
		s := stats.Summarize(gains)
		t.AddRow(v.name, s.Mean, s.Max, float64(steps)/float64(reps))
	}
	t.AddNote("improvement measured relative to the greedy start; larger neighborhoods dominate smaller ones by construction")
	return t.String(), nil
}

func runE14(cfg Config) (string, error) {
	reps := 10
	if cfg.Quick {
		reps = 4
	}
	t := table.New("E14 — splittable vs atomic scheduling (class-uniform processing times)",
		"regime", "atomic (3-approx) mean", "splittable mean", "split/atomic", "mean extra setups")
	regimes := []struct {
		name   string
		params gen.Params
	}{
		{"job-heavy", gen.JobHeavy(12, 4, 3)},
		{"balanced", gen.Params{N: 12, M: 4, K: 3}},
		{"setup-heavy", gen.SetupHeavy(12, 4, 3)},
	}
	for _, reg := range regimes {
		var atomics, splits, extra []float64
		for rep := 0; rep < reps; rep++ {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(rep)))
			in := gen.UnrelatedClassUniform(rng, reg.params)
			at, err := special.ScheduleClassUniformPT(context.Background(), in, special.Options{})
			if err != nil {
				return "", err
			}
			sp, err := special.ScheduleSplittable(context.Background(), in, special.Options{})
			if err != nil {
				return "", err
			}
			atomics = append(atomics, at.Makespan)
			splits = append(splits, sp.Makespan)
			// Setup count difference: carriers beyond one per class.
			carriers := 0
			for k := 0; k < in.K; k++ {
				for i := 0; i < in.M; i++ {
					if sp.Split.Frac[i][k] > 1e-7 {
						carriers++
					}
				}
			}
			extra = append(extra, float64(carriers-at.Schedule.SetupCount(in)))
		}
		sa, ss, se := stats.Summarize(atomics), stats.Summarize(splits), stats.Summarize(extra)
		t.AddRow(reg.name, sa.Mean, ss.Mean, ss.Mean/sa.Mean, se.Mean)
	}
	t.AddNote("splitting buys balance at the cost of duplicate setups; the ratio column quantifies the [6] trade-off per regime")
	return t.String(), nil
}
