package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/baseline"
	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/ptas"
	"repro/internal/rounding"
	"repro/internal/stats"
	"repro/internal/table"
)

func init() {
	register(Experiment{
		ID:    "E4",
		Name:  "Theorem 3.3: randomized rounding on unrelated machines",
		Claim: "the rounding is an O(log n + log m)-approximation; ratio/(log₂n+log₂m) stays bounded",
		Run:   runE4,
	})
	register(Experiment{
		ID:    "E10",
		Name:  "Ablation: rounding iteration multiplier c",
		Claim: "more iterations reduce the fallback rate (Lemma 3.1: failure prob ≤ 1/n^c)",
		Run:   runE10,
	})
	register(Experiment{
		ID:    "E11",
		Name:  "Runtime scaling of all solvers",
		Claim: "(engineering) all algorithms run in polynomial time; wall-clock grows moderately",
		Run:   runE11,
	})
}

func runE4(cfg Config) (string, error) {
	sizes := []int{8, 16, 32, 48}
	reps := 3
	if cfg.Quick {
		sizes = []int{6, 10}
		reps = 2
	}
	t := table.New("E4 — randomized rounding vs certified LP lower bound (n = m)",
		"n=m", "K", "rounded mean", "rounded max", "max/(log₂n+log₂m)", "combined mean", "greedy mean")
	for _, n := range sizes {
		k := int(math.Max(2, math.Sqrt(float64(n))))
		var pure, combined, gratios []float64
		for rep := 0; rep < reps; rep++ {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(rep)))
			in := gen.Unrelated(rng, gen.Params{N: n, M: n, K: k})
			res, det, err := rounding.ScheduleDetailed(context.Background(), in, rounding.Options{Rng: rng})
			if err != nil {
				return "", err
			}
			if res.LowerBound <= 0 {
				continue
			}
			pure = append(pure, det.PureMakespan/res.LowerBound)
			combined = append(combined, res.Makespan/res.LowerBound)
			g, err := baseline.Greedy(in)
			if err != nil {
				return "", err
			}
			gratios = append(gratios, g.Makespan(in)/res.LowerBound)
		}
		sp := stats.Summarize(pure)
		sc := stats.Summarize(combined)
		gs := stats.Summarize(gratios)
		norm := sp.Max / (math.Log2(float64(n)) + math.Log2(float64(n)))
		t.AddRow(n, k, sp.Mean, sp.Max, norm, sc.Mean, gs.Mean)
	}
	t.AddNote("\"rounded\" is the pure Theorem 3.3 rounding; \"combined\" additionally keeps the greedy bootstrap when better")
	t.AddNote("paper claim holds iff the normalized column does not grow with n; lower bounds are largest LP-infeasible guesses")
	return t.String(), nil
}

func runE10(cfg Config) (string, error) {
	reps := 5
	if cfg.Quick {
		reps = 2
	}
	rounds := 10
	t := table.New("E10 — ablation: iteration multiplier c in the randomized rounding",
		"c", "rounded mean ratio vs LB", "fallback jobs per run (mean)", "fallback-free runs")
	for _, c := range []int{1, 2, 4} {
		var ratios []float64
		totalFallback, fallbackFree, runs := 0, 0, 0
		for rep := 0; rep < reps; rep++ {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(rep)))
			in := gen.Unrelated(rng, gen.Params{N: 14, M: 4, K: 3})
			res, det, err := rounding.ScheduleDetailed(context.Background(), in, rounding.Options{Rng: rng, C: c})
			if err != nil {
				return "", err
			}
			if res.LowerBound > 0 {
				ratios = append(ratios, det.PureMakespan/res.LowerBound)
			}
			// Fallback rate at a fixed feasible guess.
			frac, err := rounding.SolveLP(in, res.Makespan)
			if err != nil || frac == nil {
				continue
			}
			for rr := 0; rr < rounds; rr++ {
				_, st := rounding.Round(context.Background(), in, frac, c, rng)
				totalFallback += st.Fallback
				if st.Fallback == 0 {
					fallbackFree++
				}
				runs++
			}
			frac.Release()
		}
		s := stats.Summarize(ratios)
		t.AddRow(c, s.Mean,
			fmt.Sprintf("%.2f", float64(totalFallback)/math.Max(1, float64(runs))),
			fmt.Sprintf("%d/%d", fallbackFree, runs))
	}
	t.AddNote("Lemma 3.1: a job stays unassigned after c·log n iterations with probability ≤ 1/n^c")
	return t.String(), nil
}

func runE11(cfg Config) (string, error) {
	sizes := []int{10, 20, 40}
	if cfg.Quick {
		sizes = []int{10, 20}
	}
	t := table.New("E11 — wall-clock per solve (milliseconds)",
		"n", "m", "LPT", "greedy", "PTAS ε=1/2", "rounding")
	for _, n := range sizes {
		m := int(math.Max(2, float64(n)/5))
		rng := rand.New(rand.NewSource(cfg.Seed))
		uni := gen.Uniform(rng, gen.Params{N: n, M: m, K: 3})
		unr := gen.Unrelated(rng, gen.Params{N: n, M: m, K: 3})
		timeIt := func(f func() error) (string, error) {
			start := time.Now()
			if err := f(); err != nil {
				return "", err
			}
			return fmt.Sprintf("%.2f", float64(time.Since(start).Microseconds())/1000), nil
		}
		lpt, err := timeIt(func() error { _, e := baseline.Lemma21LPT(uni); return e })
		if err != nil {
			return "", err
		}
		grd, err := timeIt(func() error { _, e := baseline.Greedy(unr); return e })
		if err != nil {
			return "", err
		}
		pt, err := timeIt(func() error { _, _, e := ptas.Schedule(context.Background(), uni, ptas.Options{Eps: 0.5}); return e })
		if err != nil {
			return "", err
		}
		rd, err := timeIt(func() error { _, e := rounding.Schedule(context.Background(), unr, rounding.Options{}); return e })
		if err != nil {
			return "", err
		}
		t.AddRow(n, m, lpt, grd, pt, rd)
	}
	_ = exact.MaxJobs // exact is exercised by E1/E2; listed here for the inventory
	return t.String(), nil
}
