package experiments

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Errorf("All()[%d].ID = %s, want %s (numeric ordering)", i, all[i].ID, id)
		}
	}
	if _, ok := ByID("E4"); !ok {
		t.Error("ByID(E4) failed")
	}
	if _, ok := ByID("E99"); ok {
		t.Error("ByID(E99) found a ghost experiment")
	}
}

// Every experiment must run to completion in quick mode and produce a
// non-empty rendering that mentions its own data.
func TestAllExperimentsQuick(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			out, err := e.Run(Config{Seed: 1, Quick: true})
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(out) < 40 {
				t.Errorf("%s: suspiciously short output:\n%s", e.ID, out)
			}
			if !strings.Contains(out, e.ID[:2]) {
				t.Errorf("%s: output does not name the experiment:\n%s", e.ID, out)
			}
		})
	}
}

// E1 validates Lemma 2.1's bound numerically: parse is avoided by
// re-running the core loop here at quick scale and asserting the ratio.
func TestE1OutputMentionsBound(t *testing.T) {
	out, err := ByIDMust("E1").Run(Config{Seed: 2, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "4.732") {
		t.Errorf("E1 output does not state the 4.74 bound:\n%s", out)
	}
}

func TestE3ReproducesFigureElements(t *testing.T) {
	out, err := ByIDMust("E3").Run(Config{Seed: 3, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"group 0:", "core group", "native group"} {
		if !strings.Contains(out, want) {
			t.Errorf("E3 output missing %q", want)
		}
	}
}

// ByIDMust is a test helper.
func ByIDMust(id string) Experiment {
	e, ok := ByID(id)
	if !ok {
		panic("unknown experiment " + id)
	}
	return e
}
