package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/ptas"
	"repro/internal/stats"
	"repro/internal/table"
)

func init() {
	register(Experiment{
		ID:    "E1",
		Name:  "Lemma 2.1: setup-aware LPT on uniform machines",
		Claim: "LPT with placeholder jobs is a 3(1+1/√3) ≈ 4.74-approximation",
		Run:   runE1,
	})
	register(Experiment{
		ID:    "E2",
		Name:  "Section 2 PTAS: ratio vs ε on uniform machines",
		Claim: "the PTAS achieves (1+O(ε))·Opt; smaller ε gives better schedules",
		Run:   runE2,
	})
	register(Experiment{
		ID:    "E3",
		Name:  "Figure 1: speed groups, core and native intervals",
		Claim: "every class/job has a group fully containing its core/big speed interval",
		Run:   runE3,
	})
	register(Experiment{
		ID:    "E9",
		Name:  "Ablation: Lemma 2.1 placeholder step on/off",
		Claim: "without placeholders, LPT loses its constant-factor guarantee on setup-heavy inputs",
		Run:   runE9,
	})
}

// uniformRegimes are the workload regimes E1/E2/E9 sweep.
func uniformRegimes(quick bool) []struct {
	name   string
	params gen.Params
} {
	small := 10
	if quick {
		small = 8
	}
	return []struct {
		name   string
		params gen.Params
	}{
		{"balanced", gen.Params{N: small, M: 3, K: 2}},
		{"setup-heavy", gen.SetupHeavy(small, 3, 2)},
		{"job-heavy", gen.JobHeavy(small, 3, 2)},
		{"many-classes", gen.Params{N: small, M: 2, K: 5}},
	}
}

func runE1(cfg Config) (string, error) {
	reps := 30
	if cfg.Quick {
		reps = 8
	}
	t := table.New("E1 — Lemma 2.1 LPT vs exact optimum (uniform machines)",
		"regime", "n", "m", "K", "instances", "mean ratio", "max ratio", "bound")
	overallMax := 0.0
	for _, reg := range uniformRegimes(cfg.Quick) {
		var ratios []float64
		for rep := 0; rep < reps; rep++ {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(rep)))
			in := gen.Uniform(rng, reg.params)
			_, opt, bst := exact.BranchAndBound(context.Background(), in, exact.Options{})
			proven := bst.Proven
			if !proven || opt <= 0 {
				continue
			}
			sched, err := baseline.Lemma21LPT(in)
			if err != nil {
				return "", err
			}
			ratios = append(ratios, sched.Makespan(in)/opt)
		}
		s := stats.Summarize(ratios)
		if s.Max > overallMax {
			overallMax = s.Max
		}
		t.AddRow(reg.name, reg.params.N, reg.params.M, reg.params.K, s.N,
			s.Mean, s.Max, baseline.Lemma21Factor)
	}
	// Larger instances against the volume lower bound (optimum intractable).
	large := table.New("E1b — Lemma 2.1 LPT vs volume lower bound (large uniform)",
		"n", "m", "K", "mean ratio vs LB", "max ratio vs LB")
	sizes := [][3]int{{200, 8, 10}, {1000, 16, 25}}
	if cfg.Quick {
		sizes = [][3]int{{100, 6, 8}}
	}
	for _, sz := range sizes {
		var ratios []float64
		for rep := 0; rep < 5; rep++ {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(rep)))
			in := gen.Uniform(rng, gen.Params{N: sz[0], M: sz[1], K: sz[2]})
			lb := exact.VolumeLowerBound(in)
			if lb <= 0 {
				continue
			}
			sched, err := baseline.Lemma21LPT(in)
			if err != nil {
				return "", err
			}
			ratios = append(ratios, sched.Makespan(in)/lb)
		}
		s := stats.Summarize(ratios)
		large.AddRow(sz[0], sz[1], sz[2], s.Mean, s.Max)
	}
	t.AddNote("paper claim holds iff every max ratio ≤ %.4g (observed max %.4g)",
		baseline.Lemma21Factor, overallMax)
	return t.String() + "\n" + large.String(), nil
}

func runE2(cfg Config) (string, error) {
	reps := 15
	if cfg.Quick {
		reps = 5
	}
	epss := []float64{0.5, 0.25, 0.125}
	if cfg.Quick {
		epss = []float64{0.5, 0.25}
	}
	t := table.New("E2 — PTAS ratio vs ε (uniform machines, vs exact optimum)",
		"algorithm", "instances", "mean ratio", "max ratio", "DP nodes", "time")
	type inst struct {
		in  *core.Instance
		opt float64
	}
	var pool []inst
	for rep := 0; rep < reps*2 && len(pool) < reps; rep++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(rep)))
		in := gen.Uniform(rng, gen.Params{N: 11, M: 3, K: 3})
		_, opt, bst := exact.BranchAndBound(context.Background(), in, exact.Options{})
		proven := bst.Proven
		if proven && opt > 0 {
			pool = append(pool, inst{in, opt})
		}
	}
	// LPT baseline row.
	var lptRatios []float64
	for _, p := range pool {
		sched, err := baseline.Lemma21LPT(p.in)
		if err != nil {
			return "", err
		}
		lptRatios = append(lptRatios, sched.Makespan(p.in)/p.opt)
	}
	ls := stats.Summarize(lptRatios)
	t.AddRow("LPT (Lemma 2.1)", ls.N, ls.Mean, ls.Max, "-", "-")
	for _, eps := range epss {
		var ratios []float64
		var nodes int64
		start := time.Now()
		for _, p := range pool {
			res, st, err := ptas.Schedule(context.Background(), p.in, ptas.Options{Eps: eps})
			if err != nil {
				return "", err
			}
			ratios = append(ratios, res.Makespan/p.opt)
			nodes += st.Nodes
		}
		s := stats.Summarize(ratios)
		t.AddRow(fmt.Sprintf("PTAS ε=%.3g (1+ε=%.3g)", eps, 1+eps),
			s.N, s.Mean, s.Max, nodes, time.Since(start).Round(time.Millisecond).String())
	}
	t.AddNote("paper claim: ratio → 1 as ε → 0; compare the mean-ratio column across rows")
	return t.String(), nil
}

func runE3(cfg Config) (string, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	in := gen.Uniform(rng, gen.Params{N: 14, M: 5, K: 3, SpeedMax: 9})
	// Use the LPT makespan as the guess, as the dual approximation would.
	sched, err := baseline.Lemma21LPT(in)
	if err != nil {
		return "", err
	}
	fig, err := ptas.Figure1(in, sched.Makespan(in), 0.5)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("E3 — reproduction of Figure 1 (speed groups with logarithmic scale)\n\n")
	sb.WriteString(fig)
	return sb.String(), nil
}

func runE9(cfg Config) (string, error) {
	reps := 30
	if cfg.Quick {
		reps = 8
	}
	t := table.New("E9 — ablation: placeholder replacement in Lemma 2.1 LPT",
		"regime", "variant", "mean ratio", "max ratio")
	for _, reg := range []struct {
		name   string
		params gen.Params
	}{
		{"setup-heavy", gen.SetupHeavy(10, 3, 2)},
		{"tiny-jobs", gen.Params{N: 12, M: 3, K: 2, MinJob: 1, MaxJob: 3, MinSetup: 50, MaxSetup: 90}},
	} {
		withPH, withoutPH := []float64{}, []float64{}
		for rep := 0; rep < reps; rep++ {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(rep)))
			in := gen.Identical(rng, reg.params)
			_, opt, bst := exact.BranchAndBound(context.Background(), in, exact.Options{})
			proven := bst.Proven
			if !proven || opt <= 0 {
				continue
			}
			a, err := baseline.Lemma21LPT(in)
			if err != nil {
				return "", err
			}
			b, err := baseline.LPTIgnoringClasses(in)
			if err != nil {
				return "", err
			}
			withPH = append(withPH, a.Makespan(in)/opt)
			withoutPH = append(withoutPH, b.Makespan(in)/opt)
		}
		sa, sb := stats.Summarize(withPH), stats.Summarize(withoutPH)
		t.AddRow(reg.name, "with placeholders (paper)", sa.Mean, sa.Max)
		t.AddRow(reg.name, "without placeholders", sb.Mean, sb.Max)
	}
	t.AddNote("the placeholder step is what batches tiny jobs; removing it inflates the ratio on setup-dominated inputs")
	return t.String(), nil
}
