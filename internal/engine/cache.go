package engine

import (
	"math"
	"sync"

	"repro/internal/core"
)

// CachedBounds is the knowledge a BoundCache retains about one instance
// fingerprint: the best feasible makespan seen across all solves of that
// fingerprint, the schedule achieving it, and the strongest certified lower
// bound. It is the in-process realization of the roadmap's "persist final
// bounds per instance fingerprint" item: a later solve of an identical
// instance seeds its bound bus from these values, so branch-and-bound
// searches start with a primed pruning threshold and dual-approximation
// searches start with a raised floor.
type CachedBounds struct {
	// Upper is the best known feasible makespan; +Inf when none is known.
	Upper float64
	// Lower is the strongest certified lower bound; 0 when none is known.
	Lower float64
	// Schedule achieves Upper (nil while Upper is +Inf). The cache stores
	// and returns defensive copies, so callers may mutate it freely.
	Schedule *core.Schedule
	// Algorithm names the solver that produced Schedule.
	Algorithm string
}

// BoundCache is a concurrency-safe, capacity-bounded map from instance
// fingerprints (core.Instance.Fingerprint) to the bounds established by
// earlier solves. Updates merge monotonically — the upper bound only ever
// decreases, the lower bound only ever increases — so concurrent solves of
// the same fingerprint can race their updates without losing certified
// knowledge. When the capacity is exceeded the oldest-inserted fingerprint
// is evicted (the production traffic pattern is many repeats of recent
// instances, not uniform access over all history).
type BoundCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*CachedBounds
	order   []string // insertion order, for FIFO eviction
	hits    int64
	misses  int64
}

// DefaultBoundCacheSize is the entry capacity used when none is chosen.
const DefaultBoundCacheSize = 256

// NewBoundCache returns an empty cache holding at most capacity
// fingerprints (capacity <= 0 selects DefaultBoundCacheSize).
func NewBoundCache(capacity int) *BoundCache {
	if capacity <= 0 {
		capacity = DefaultBoundCacheSize
	}
	return &BoundCache{cap: capacity, entries: make(map[string]*CachedBounds)}
}

// Lookup returns the cached bounds for the fingerprint. The returned
// schedule is a copy.
func (c *BoundCache) Lookup(fp string) (CachedBounds, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[fp]
	if !ok {
		c.misses++
		return CachedBounds{Upper: math.Inf(1)}, false
	}
	c.hits++
	out := *e
	if out.Schedule != nil {
		out.Schedule = out.Schedule.Clone()
	}
	return out, true
}

// Update merges new knowledge for the fingerprint into the cache: b.Upper
// (with its schedule) replaces the stored upper bound only when strictly
// better and accompanied by a schedule, and b.Lower replaces the stored
// lower bound only when strictly better. Non-finite or non-positive lower
// bounds and upper bounds without schedules are ignored, so callers can
// pass partial knowledge (e.g. only a lower bound learned from a failed
// solve).
func (c *BoundCache) Update(fp string, b CachedBounds) {
	if fp == "" {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[fp]
	if !ok {
		improvesUpper := b.Schedule != nil && core.IsFinite(b.Upper)
		improvesLower := core.IsFinite(b.Lower) && b.Lower > 0
		if !improvesUpper && !improvesLower {
			return
		}
		e = &CachedBounds{Upper: math.Inf(1)}
		c.entries[fp] = e
		c.order = append(c.order, fp)
		c.evictLocked()
	}
	if b.Schedule != nil && core.IsFinite(b.Upper) && b.Upper < e.Upper {
		e.Upper = b.Upper
		e.Schedule = b.Schedule.Clone()
		e.Algorithm = b.Algorithm
	}
	if core.IsFinite(b.Lower) && b.Lower > e.Lower {
		e.Lower = b.Lower
	}
}

// evictLocked drops oldest-inserted fingerprints until the capacity holds.
func (c *BoundCache) evictLocked() {
	for len(c.order) > c.cap {
		victim := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, victim)
	}
}

// Len returns the number of cached fingerprints.
func (c *BoundCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns the lookup hit and miss counts since creation.
func (c *BoundCache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
