package engine

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sync"

	"repro/internal/core"
)

// CachedBounds is the knowledge a BoundCache retains about one instance
// fingerprint: the best feasible makespan seen across all solves of that
// fingerprint, the schedule achieving it, and the strongest certified lower
// bound. It is the in-process realization of the roadmap's "persist final
// bounds per instance fingerprint" item: a later solve of an identical
// instance seeds its bound bus from these values, so branch-and-bound
// searches start with a primed pruning threshold and dual-approximation
// searches start with a raised floor.
type CachedBounds struct {
	// Upper is the best known feasible makespan; +Inf when none is known.
	Upper float64
	// Lower is the strongest certified lower bound; 0 when none is known.
	Lower float64
	// Schedule achieves Upper (nil while Upper is +Inf). The cache stores
	// and returns defensive copies, so callers may mutate it freely.
	Schedule *core.Schedule
	// Algorithm names the solver that produced Schedule.
	Algorithm string
	// SimKey is the instance's delta-aware similarity key
	// (core.Instance.SimilarityKey). Updates carrying one index the
	// fingerprint for LookupSimilar, which serves near-identical instances
	// (same class-size profile, same machine-count bucket) that miss the
	// exact fingerprint. Empty means unindexed.
	SimKey string
}

// BoundCache is a concurrency-safe, capacity-bounded map from instance
// fingerprints (core.Instance.Fingerprint) to the bounds established by
// earlier solves. Updates merge monotonically — the upper bound only ever
// decreases, the lower bound only ever increases — so concurrent solves of
// the same fingerprint can race their updates without losing certified
// knowledge. When the capacity is exceeded the oldest-inserted fingerprint
// is evicted (the production traffic pattern is many repeats of recent
// instances, not uniform access over all history).
type BoundCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*CachedBounds
	order   []string            // insertion order, for FIFO eviction
	sim     map[string][]string // similarity key -> fingerprints, newest last
	hits    int64
	misses  int64
}

// simFanout bounds both the fingerprints indexed per similarity key and the
// candidates a LookupSimilar re-prices: under a delta stream every event
// shares one key, and re-evaluating an unbounded history per event would
// turn the O(1) cache probe into a linear scan.
const simFanout = 4

// DefaultBoundCacheSize is the entry capacity used when none is chosen.
const DefaultBoundCacheSize = 256

// NewBoundCache returns an empty cache holding at most capacity
// fingerprints (capacity <= 0 selects DefaultBoundCacheSize).
func NewBoundCache(capacity int) *BoundCache {
	if capacity <= 0 {
		capacity = DefaultBoundCacheSize
	}
	return &BoundCache{cap: capacity, entries: make(map[string]*CachedBounds), sim: make(map[string][]string)}
}

// Lookup returns the cached bounds for the fingerprint. The returned
// schedule is a copy.
func (c *BoundCache) Lookup(fp string) (CachedBounds, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[fp]
	if !ok {
		c.misses++
		return CachedBounds{Upper: math.Inf(1)}, false
	}
	c.hits++
	out := *e
	if out.Schedule != nil {
		out.Schedule = out.Schedule.Clone()
	}
	return out, true
}

// Update merges new knowledge for the fingerprint into the cache: b.Upper
// (with its schedule) replaces the stored upper bound only when strictly
// better and accompanied by a schedule, and b.Lower replaces the stored
// lower bound only when strictly better. Non-finite or non-positive lower
// bounds and upper bounds without schedules are ignored, so callers can
// pass partial knowledge (e.g. only a lower bound learned from a failed
// solve).
func (c *BoundCache) Update(fp string, b CachedBounds) {
	if fp == "" {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[fp]
	if !ok {
		improvesUpper := b.Schedule != nil && core.IsFinite(b.Upper)
		improvesLower := core.IsFinite(b.Lower) && b.Lower > 0
		if !improvesUpper && !improvesLower {
			return
		}
		e = &CachedBounds{Upper: math.Inf(1)}
		c.entries[fp] = e
		c.order = append(c.order, fp)
		c.evictLocked()
	}
	if b.Schedule != nil && core.IsFinite(b.Upper) && b.Upper < e.Upper {
		e.Upper = b.Upper
		e.Schedule = b.Schedule.Clone()
		e.Algorithm = b.Algorithm
	}
	if core.IsFinite(b.Lower) && b.Lower > e.Lower {
		e.Lower = b.Lower
	}
	if b.SimKey != "" && e.Schedule != nil && e.SimKey != b.SimKey {
		c.unindexLocked(e.SimKey, fp)
		e.SimKey = b.SimKey
		c.indexLocked(b.SimKey, fp)
	}
}

// indexLocked records fp as the newest fingerprint under the similarity
// key, keeping at most simFanout entries per key.
func (c *BoundCache) indexLocked(key, fp string) {
	fps := c.sim[key]
	for _, f := range fps {
		if f == fp {
			return
		}
	}
	fps = append(fps, fp)
	if len(fps) > simFanout {
		fps = fps[len(fps)-simFanout:]
	}
	c.sim[key] = fps
}

// unindexLocked drops fp from the similarity key's candidate list.
func (c *BoundCache) unindexLocked(key, fp string) {
	if key == "" {
		return
	}
	fps := c.sim[key]
	for i, f := range fps {
		if f == fp {
			fps = append(fps[:i], fps[i+1:]...)
			break
		}
	}
	if len(fps) == 0 {
		delete(c.sim, key)
	} else {
		c.sim[key] = fps
	}
}

// LookupSimilar serves an exact-fingerprint miss from the similarity index:
// it re-prices the cached schedules of up to simFanout fingerprints sharing
// the instance's similarity key ON the new instance and returns the best
// finite makespan as a certified upper bound with its witness schedule.
//
// Soundness does not rest on the similarity heuristic at all — a cached
// bound is never trusted across fingerprints. A candidate schedule is used
// only if it is structurally applicable to in (every job assigned, machine
// indices in range) and only at the makespan it achieves on in, evaluated
// here; candidates that price to +Inf (an assignment the new instance
// forbids) are skipped. Lower bounds never transfer — a delta can
// legitimately lower the optimum — so Lower is always 0. exceptFp excludes
// the instance's own fingerprint (an exact hit is Lookup's job, at full
// trust).
func (c *BoundCache) LookupSimilar(in *core.Instance, exceptFp string) (CachedBounds, bool) {
	key := in.SimilarityKey()
	c.mu.Lock()
	type cand struct {
		sched *core.Schedule
		alg   string
	}
	var cands []cand
	for _, fp := range c.sim[key] {
		if fp == exceptFp {
			continue
		}
		if e, ok := c.entries[fp]; ok && e.Schedule != nil && len(e.Schedule.Assign) == in.N {
			cands = append(cands, cand{sched: e.Schedule.Clone(), alg: e.Algorithm})
		}
	}
	c.mu.Unlock()
	best := CachedBounds{Upper: math.Inf(1)}
	for _, cd := range cands {
		ok := true
		for _, i := range cd.sched.Assign {
			if i < 0 || i >= in.M {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if ms := cd.sched.Makespan(in); ms < best.Upper {
			best.Upper = ms
			best.Schedule = cd.sched
			best.Algorithm = cd.alg + "~sim"
		}
	}
	if best.Schedule == nil {
		return CachedBounds{Upper: math.Inf(1)}, false
	}
	return best, true
}

// evictLocked drops oldest-inserted fingerprints until the capacity holds.
func (c *BoundCache) evictLocked() {
	for len(c.order) > c.cap {
		victim := c.order[0]
		c.order = c.order[1:]
		if e, ok := c.entries[victim]; ok {
			c.unindexLocked(e.SimKey, victim)
		}
		delete(c.entries, victim)
	}
}

// Len returns the number of cached fingerprints.
func (c *BoundCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns the lookup hit and miss counts since creation.
func (c *BoundCache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// --- snapshot persistence ---------------------------------------------------

// snapshotVersion is the on-disk format version of cache snapshots. Bumped
// when the entry layout changes; LoadSnapshot rejects unknown versions
// rather than merging misread bounds (a wrong certified lower bound is
// unsound, not just stale).
const snapshotVersion = 1

// cacheSnapshot is the serialized form of a BoundCache: the entries in FIFO
// insertion order, so a fresh cache loading the snapshot reproduces the
// eviction order of the cache that wrote it.
type cacheSnapshot struct {
	Version int             `json:"version"`
	Entries []snapshotEntry `json:"entries"`
}

// snapshotEntry is one fingerprint's persisted knowledge. An entry with no
// witness assignment carries only its lower bound (Upper +Inf is encoded by
// omission: a snapshot never stores non-finite numbers, which JSON cannot
// represent).
type snapshotEntry struct {
	Fingerprint string  `json:"fp"`
	Upper       float64 `json:"upper,omitempty"`
	Lower       float64 `json:"lower,omitempty"`
	Algorithm   string  `json:"algorithm,omitempty"`
	SimKey      string  `json:"simKey,omitempty"`
	Assign      []int   `json:"assign,omitempty"`
}

// Snapshot serializes the cache's current entries to w (JSON, versioned) so
// certified bounds survive process restarts: the first step of cross-process
// bound persistence. The snapshot is a consistent point-in-time copy —
// concurrent updates during the write land in the cache, not the snapshot.
func (c *BoundCache) Snapshot(w io.Writer) error {
	c.mu.Lock()
	snap := cacheSnapshot{Version: snapshotVersion, Entries: make([]snapshotEntry, 0, len(c.order))}
	for _, fp := range c.order {
		e, ok := c.entries[fp]
		if !ok {
			continue
		}
		se := snapshotEntry{Fingerprint: fp, Algorithm: e.Algorithm, SimKey: e.SimKey}
		if core.IsFinite(e.Upper) && e.Schedule != nil {
			se.Upper = e.Upper
			se.Assign = append([]int(nil), e.Schedule.Assign...)
		}
		if core.IsFinite(e.Lower) && e.Lower > 0 {
			se.Lower = e.Lower
		}
		snap.Entries = append(snap.Entries, se)
	}
	c.mu.Unlock()
	enc := json.NewEncoder(w)
	return enc.Encode(snap)
}

// LoadSnapshot reads a Snapshot-written stream and merges it into the cache
// monotonically: each entry goes through the same Update path as live solve
// results, so a loaded upper bound only ever improves the stored one, a
// loaded lower bound only ever raises it, and loading an older snapshot over
// a warmer cache can never regress certified knowledge. Returns the number
// of entries merged.
func (c *BoundCache) LoadSnapshot(r io.Reader) (int, error) {
	var snap cacheSnapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return 0, fmt.Errorf("engine: decoding bound-cache snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return 0, fmt.Errorf("engine: bound-cache snapshot version %d (want %d)", snap.Version, snapshotVersion)
	}
	n := 0
	for _, se := range snap.Entries {
		if se.Fingerprint == "" {
			continue
		}
		b := CachedBounds{Upper: math.Inf(1), Lower: se.Lower, Algorithm: se.Algorithm, SimKey: se.SimKey}
		if len(se.Assign) > 0 && core.IsFinite(se.Upper) && se.Upper > 0 {
			b.Upper = se.Upper
			b.Schedule = &core.Schedule{Assign: se.Assign}
		}
		c.Update(se.Fingerprint, b)
		n++
	}
	return n, nil
}
