package engine

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/improve"
	"repro/internal/ptas"
	"repro/internal/rounding"
	"repro/internal/special"
)

// Canonical solver names, used by the -algo flag and Registry.Get.
const (
	NameLPT      = "lpt"
	NameGreedy   = "greedy"
	NamePTAS     = "ptas"
	NameRounding = "rounding"
	NameRA2      = "class-uniform-ra"
	NamePT3      = "class-uniform-pt"
	NameExact    = "branch-and-bound"
)

// HasClassUniformRA reports the Theorem 3.10 structure (restricted
// assignment, all jobs of a class share one eligible machine set).
func HasClassUniformRA(in *core.Instance) bool {
	return special.CheckClassUniformRA(in) == nil
}

// HasClassUniformPT reports the Theorem 3.11 structure (all jobs of a
// class have identical processing times per machine).
func HasClassUniformPT(in *core.Instance) bool {
	return special.CheckClassUniformPT(in) == nil
}

// funcSolver adapts a plain function plus static capabilities.
type funcSolver struct {
	name  string
	caps  Caps
	solve func(ctx context.Context, in *core.Instance, opt Options) (core.Result, error)
}

func (f *funcSolver) Name() string       { return f.name }
func (f *funcSolver) Capabilities() Caps { return f.caps }
func (f *funcSolver) Solve(ctx context.Context, in *core.Instance, opt Options) (core.Result, error) {
	return f.solve(ctx, in, opt)
}

// NewSolver builds a Solver from a name, capabilities and a solve function
// (the hook third-party algorithms use to plug into a Registry).
func NewSolver(name string, caps Caps, solve func(ctx context.Context, in *core.Instance, opt Options) (core.Result, error)) Solver {
	return &funcSolver{name: name, caps: caps, solve: solve}
}

// defaultSeedStream is the source used when Options.Seed is 0 (the "fixed
// default" contract). It must not collide with small user-chosen seeds:
// mapping 0 to 1, as this function once did, made -seed 0 and -seed 1
// produce byte-identical randomized runs.
const defaultSeedStream int64 = 0x5DEECE66DA9C6B2F

func rngFor(opt Options) *rand.Rand {
	seed := opt.Seed
	if seed == 0 {
		seed = defaultSeedStream
	}
	return rand.New(rand.NewSource(seed))
}

// allKinds lists every machine environment.
var allKinds = []core.Kind{core.Identical, core.Uniform, core.RestrictedAssignment, core.Unrelated}

// uniformKinds are the environments of the Section 2 PTAS and Lemma 2.1.
var uniformKinds = []core.Kind{core.Identical, core.Uniform}

func newLPTSolver() Solver {
	return NewSolver(NameLPT, Caps{
		Kinds:     uniformKinds,
		Guarantee: "3(1+1/√3) ≈ 4.74-approximation (Lemma 2.1)",
		Priority:  10,
	}, func(ctx context.Context, in *core.Instance, opt Options) (core.Result, error) {
		sched, err := baseline.Lemma21LPT(in)
		if err != nil {
			return core.Result{}, err
		}
		return publishResult(core.Result{
			Algorithm:  NameLPT,
			Schedule:   sched,
			Makespan:   sched.Makespan(in),
			LowerBound: exact.VolumeLowerBound(in),
		}, opt), nil
	})
}

func newGreedySolver() Solver {
	return NewSolver(NameGreedy, Caps{
		Kinds:     allKinds,
		Guarantee: "none (practical baseline)",
		Priority:  1,
	}, func(ctx context.Context, in *core.Instance, opt Options) (core.Result, error) {
		sched, err := baseline.Greedy(in)
		if err != nil {
			return core.Result{}, err
		}
		return publishResult(core.Result{
			Algorithm:  NameGreedy,
			Schedule:   sched,
			Makespan:   sched.Makespan(in),
			LowerBound: exact.VolumeLowerBound(in),
		}, opt), nil
	})
}

// publishResult pushes a finished solver result onto the live bound bus, so
// fast heuristics seed the incumbent for the still-running racers.
func publishResult(res core.Result, opt Options) core.Result {
	if opt.Bounds != nil {
		opt.Bounds.PublishUpper(res.Makespan)
		opt.Bounds.PublishLower(res.LowerBound)
	}
	return res
}

func newPTASSolver() Solver {
	return NewSolver(NamePTAS, Caps{
		Kinds:     uniformKinds,
		Guarantee: "1+O(ε) (Section 2 PTAS)",
		Priority:  50,
	}, func(ctx context.Context, in *core.Instance, opt Options) (core.Result, error) {
		res, _, err := ptas.Schedule(ctx, in, ptas.Options{
			Eps:           opt.Eps,
			NodeCap:       opt.NodeCap,
			Precision:     opt.Precision,
			Bounds:        opt.Bounds,
			SearchWorkers: opt.SearchWorkers,
			Budget:        opt.Budget,
		})
		return res, err
	})
}

func newRoundingSolver() Solver {
	return NewSolver(NameRounding, Caps{
		Kinds:     []core.Kind{core.RestrictedAssignment, core.Unrelated},
		Guarantee: "O(log n + log m) (Theorem 3.3)",
		Priority:  20,
	}, func(ctx context.Context, in *core.Instance, opt Options) (core.Result, error) {
		res, det, err := rounding.ScheduleDetailed(ctx, in, rounding.Options{
			C:             opt.RoundingC,
			Rng:           rngFor(opt),
			Precision:     opt.Precision,
			Bounds:        opt.Bounds,
			LPBackend:     opt.LPBackend,
			LPNoPresolve:  opt.LPNoPresolve,
			SearchWorkers: opt.SearchWorkers,
			Budget:        opt.Budget,
			Warm:          opt.Warm,
		})
		if err == nil && opt.Retain != nil {
			opt.Retain(RetainedState{Accepted: det.Accepted, Rel: det.Relaxation})
		}
		return res, err
	})
}

func newRA2Solver() Solver {
	return NewSolver(NameRA2, Caps{
		Kinds:               []core.Kind{core.RestrictedAssignment},
		NeedsClassUniformRA: true,
		Guarantee:           "2-approximation (Theorem 3.10)",
		Priority:            40,
	}, func(ctx context.Context, in *core.Instance, opt Options) (core.Result, error) {
		return special.ScheduleClassUniformRA(ctx, in, special.Options{Precision: opt.Precision, Bounds: opt.Bounds, SearchWorkers: opt.SearchWorkers, Budget: opt.Budget})
	})
}

func newPT3Solver() Solver {
	return NewSolver(NamePT3, Caps{
		Kinds:               []core.Kind{core.Identical, core.Uniform, core.Unrelated},
		NeedsClassUniformPT: true,
		Guarantee:           "3-approximation (Theorem 3.11)",
		Priority:            30,
	}, func(ctx context.Context, in *core.Instance, opt Options) (core.Result, error) {
		return special.ScheduleClassUniformPT(ctx, in, special.Options{Precision: opt.Precision, Bounds: opt.Bounds, SearchWorkers: opt.SearchWorkers, Budget: opt.Budget})
	})
}

func newExactSolver() Solver {
	return NewSolver(NameExact, Caps{
		Kinds:     allKinds,
		MaxJobs:   exact.MaxJobs,
		Guarantee: "exact optimum (branch-and-bound)",
		Priority:  5,
	}, func(ctx context.Context, in *core.Instance, opt Options) (core.Result, error) {
		// Prime the search with a heuristic pass so the branch-and-bound
		// never starts from +Inf: the greedy makespan seeds the pruning
		// threshold, its schedule covers the case where the primed search
		// prunes its whole tree (nothing strictly better exists), and in
		// a portfolio the bus tightens the threshold further mid-search.
		var fallback *core.Schedule
		prime := 0.0
		if g, err := baseline.Greedy(in); err == nil {
			fallback = g
			prime = g.Makespan(in)
			if opt.Bounds != nil {
				opt.Bounds.PublishUpper(prime)
			}
		}
		sched, ms, st := exact.BranchAndBound(ctx, in, exact.Options{
			MaxJobs:    opt.MaxJobs,
			NodeLimit:  opt.NodeLimit,
			UpperBound: prime,
			Bounds:     opt.Bounds,
		})
		if sched == nil {
			if st.Reason == exact.StopTooLarge || fallback == nil {
				return core.Result{}, fmt.Errorf("branch-and-bound found no schedule (%s, n=%d, %d nodes)", st.Reason, in.N, st.Nodes)
			}
			sched, ms = fallback, prime
		}
		res := core.Result{
			Algorithm: NameExact,
			Schedule:  sched,
			Makespan:  ms,
			Nodes:     st.Nodes,
		}
		if st.Proven {
			res.LowerBound = ms
			if core.IsFinite(st.Bound) && st.Bound < ms {
				// A concurrent racer's incumbent tightened the threshold
				// below our schedule; only the threshold is certified.
				res.LowerBound = st.Bound
			}
		} else {
			res.LowerBound = exact.VolumeLowerBound(in)
			res.Note = fmt.Sprintf("search incomplete (%s after %d nodes); schedule is best-so-far, optimality not proven", st.Reason, st.Nodes)
		}
		return res, nil
	})
}

// postProcess applies the optional local-search descent to a solver result.
func postProcess(ctx context.Context, in *core.Instance, res core.Result, opt Options) core.Result {
	if !opt.LocalSearch || res.Schedule == nil {
		return res
	}
	improved, ir := improve.Improve(ctx, in, res.Schedule, improve.DefaultOptions())
	if ir.After < res.Makespan {
		res.Schedule = improved
		res.Makespan = ir.After
		res.Algorithm += "+ls"
	}
	return res
}

var (
	defaultOnce sync.Once
	defaultReg  *Registry
)

// NewDefaultRegistry returns a fresh registry with every algorithm of the
// paper registered: the Lemma 2.1 LPT rule, the setup-aware greedy
// baseline, the Section 2 PTAS, the Section 3.1 randomized LP rounding, the
// two class-uniform special cases of Section 3.3, and the exact
// branch-and-bound for small instances. Each call builds an independent
// registry, so callers (e.g. engine handles) can register additional
// solvers — alternative LP backends, heuristics — without affecting anyone
// else.
func NewDefaultRegistry() *Registry {
	reg := NewRegistry()
	reg.MustRegister(newPTASSolver())
	reg.MustRegister(newRA2Solver())
	reg.MustRegister(newPT3Solver())
	reg.MustRegister(newRoundingSolver())
	reg.MustRegister(newLPTSolver())
	reg.MustRegister(newExactSolver())
	reg.MustRegister(newGreedySolver())
	return reg
}

// Default returns the shared process-wide registry with the full paper
// solver set (see NewDefaultRegistry).
func Default() *Registry {
	defaultOnce.Do(func() {
		defaultReg = NewDefaultRegistry()
	})
	return defaultReg
}

// Solve dispatches through the default registry.
func Solve(ctx context.Context, in *core.Instance, opt Options) (core.Result, error) {
	return Default().Solve(ctx, in, opt)
}
