package engine

import (
	"fmt"
	"time"

	"repro/internal/core"
)

// EventKind distinguishes the two bound movements an anytime solve emits.
type EventKind int

const (
	// EventIncumbent: a strictly improved feasible makespan (the incumbent)
	// was published to the solve's bound bus.
	EventIncumbent EventKind = iota
	// EventLowerBound: a strictly improved certified lower bound on the
	// optimal makespan was published.
	EventLowerBound
)

// String returns the conventional short name of the event kind.
func (k EventKind) String() string {
	switch k {
	case EventIncumbent:
		return "incumbent"
	case EventLowerBound:
		return "lower-bound"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one observed bound improvement during a solve: the anytime
// progress signal of the engine. Subscribers see the incumbent makespan
// converge downward and the certified lower bound converge upward as the
// solvers work.
type Event struct {
	// Kind says which bound moved.
	Kind EventKind
	// Value is the new bound.
	Value float64
	// Fingerprint identifies the instance being solved
	// (core.Instance.Fingerprint), so subscribers watching a whole engine —
	// e.g. one running SolveBatch — can demultiplex events per instance.
	Fingerprint string
	// At is the elapsed time since the solve observing the improvement
	// started.
	At time.Duration
}

// EventSink consumes events. Sinks are called synchronously from solver
// goroutines at every bound improvement, so they must be safe for
// concurrent use and must not block (drop rather than stall a search).
type EventSink func(Event)

// eventBus decorates a BoundBus so that every publish that strictly
// improves the underlying bus is also reported to the sink. Reads pass
// through untouched; the improvement decision (and therefore event
// deduplication) is delegated to the inner bus, which for the engine's
// Incumbent is an atomic compare-and-swap — concurrent publishers emit
// exactly one event per strict improvement.
type eventBus struct {
	inner core.BoundBus
	fp    string
	sink  EventSink
	start time.Time
}

var _ core.BoundBus = (*eventBus)(nil)

// NewEventBus wraps bus so every strict bound improvement is reported to
// sink, stamped with the instance fingerprint and the time since the wrap.
func NewEventBus(bus core.BoundBus, fingerprint string, sink EventSink) core.BoundBus {
	return &eventBus{inner: bus, fp: fingerprint, sink: sink, start: time.Now()}
}

func (b *eventBus) Upper() float64 { return b.inner.Upper() }
func (b *eventBus) Lower() float64 { return b.inner.Lower() }

func (b *eventBus) PublishUpper(v float64) bool {
	if !b.inner.PublishUpper(v) {
		return false
	}
	b.sink(Event{Kind: EventIncumbent, Value: v, Fingerprint: b.fp, At: time.Since(b.start)})
	return true
}

func (b *eventBus) PublishLower(v float64) bool {
	if !b.inner.PublishLower(v) {
		return false
	}
	b.sink(Event{Kind: EventLowerBound, Value: v, Fingerprint: b.fp, At: time.Since(b.start)})
	return true
}
