package engine

import (
	"context"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
)

// Governor is the engine's global concurrency budget: a weighted semaphore
// sized in compute lanes (default GOMAXPROCS) that every parallel layer of
// a solve acquires from — batch dispatch workers, portfolio member
// launches, speculative search width. It implements core.TokenBudget for
// the acquire-or-degrade layers and adds the blocking Acquire the engine
// uses to admit solves, so the whole process never runs more concurrent
// compute lanes than the budget regardless of how batch size, portfolio
// fan-out and search width multiply.
//
// Deadlock freedom rests on the split contract (see core.TokenBudget): the
// blocking Acquire is only ever called by a goroutine holding no tokens
// (the engine admitting a solve), while in-solve layers use the
// non-blocking TryAcquire and degrade on a short grant.
type Governor struct {
	mu       sync.Mutex
	cap      int
	inUse    int
	peak     int
	waits    int64
	waitTime time.Duration
	maxWait  time.Duration
	degrade  int64
	waiters  []chan struct{} // FIFO: each is granted one token at hand-off
}

var _ core.TokenBudget = (*Governor)(nil)

// NewGovernor builds a governor with the given token budget; values < 1
// select runtime.GOMAXPROCS(0).
func NewGovernor(budget int) *Governor {
	if budget < 1 {
		budget = runtime.GOMAXPROCS(0)
	}
	return &Governor{cap: budget}
}

// Cap implements core.TokenBudget.
func (g *Governor) Cap() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.cap
}

// Acquire blocks until one token is free (or ctx is done) and takes it:
// the admission path that guarantees every solve one compute lane. It must
// not be called by a goroutine already holding tokens — that is what the
// non-blocking TryAcquire is for.
func (g *Governor) Acquire(ctx context.Context) error {
	g.mu.Lock()
	if g.inUse < g.cap {
		g.take(1)
		g.mu.Unlock()
		return nil
	}
	g.waits++
	ch := make(chan struct{})
	g.waiters = append(g.waiters, ch)
	g.mu.Unlock()
	start := time.Now()
	record := func() {
		wait := time.Since(start)
		g.mu.Lock()
		g.waitTime += wait
		if wait > g.maxWait {
			g.maxWait = wait
		}
		g.mu.Unlock()
	}
	select {
	case <-ch:
		record()
		return nil // the releaser transferred its token to us
	case <-ctx.Done():
		defer record()
		g.mu.Lock()
		for i, w := range g.waiters {
			if w == ch {
				g.waiters = append(g.waiters[:i], g.waiters[i+1:]...)
				g.mu.Unlock()
				return ctx.Err()
			}
		}
		g.mu.Unlock()
		// Lost the race: a token was handed to ch between ctx firing and
		// the queue scan. Give it back so it is not leaked.
		<-ch
		g.Release(1)
		return ctx.Err()
	}
}

// TryAcquire implements core.TokenBudget: grab up to n extra tokens
// without blocking, recording a degradation when the grant falls short.
func (g *Governor) TryAcquire(n int) int {
	if n <= 0 {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	granted := g.cap - g.inUse
	if granted > n {
		granted = n
	}
	if granted < 0 {
		granted = 0
	}
	if granted > 0 {
		g.take(granted)
	}
	if granted < n {
		g.degrade++
	}
	return granted
}

// Release implements core.TokenBudget. Freed tokens are handed to blocked
// Acquire callers in FIFO order before becoming generally available.
func (g *Governor) Release(n int) {
	if n <= 0 {
		return
	}
	g.mu.Lock()
	g.inUse -= n
	if g.inUse < 0 {
		panic("engine: Governor.Release without matching acquire")
	}
	for len(g.waiters) > 0 && g.inUse < g.cap {
		ch := g.waiters[0]
		g.waiters = g.waiters[1:]
		g.take(1)
		close(ch)
	}
	g.mu.Unlock()
}

// take grabs n tokens; the caller holds g.mu.
func (g *Governor) take(n int) {
	g.inUse += n
	if g.inUse > g.peak {
		g.peak = g.inUse
	}
}

// GovernorStats is a snapshot of the governor's live occupancy counters.
type GovernorStats struct {
	// Budget is the total token budget (WithWorkers, default GOMAXPROCS).
	Budget int
	// InUse is the number of tokens currently held.
	InUse int
	// Peak is the highest InUse observed since the engine was built.
	Peak int
	// Waits counts solve admissions that had to block for a token (the
	// batch/portfolio/solve front door queuing under load).
	Waits int64
	// WaitTime is the cumulative wall-clock time solve admissions spent
	// blocked for a token — with Waits, the admission-latency half of the
	// online workload's end-to-end latency budget (a per-event latency
	// percentile hides whether time went to solving or to queuing; this
	// separates them).
	WaitTime time.Duration
	// MaxWait is the longest single admission wait observed.
	MaxWait time.Duration
	// Degradations counts TryAcquire calls granted fewer tokens than asked:
	// portfolio races that fell back toward sequential and speculative
	// search rounds that ran narrower than their configured width.
	Degradations int64
}

// Stats returns a consistent snapshot of the occupancy counters.
func (g *Governor) Stats() GovernorStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return GovernorStats{
		Budget:       g.cap,
		InUse:        g.inUse,
		Peak:         g.peak,
		Waits:        g.waits,
		WaitTime:     g.waitTime,
		MaxWait:      g.maxWait,
		Degradations: g.degrade,
	}
}
