package engine

import (
	"context"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
)

// TestRegistrySelectsDocumentedSolver pins the automatic dispatch table:
// the strongest applicable solver per machine environment and structure.
func TestRegistrySelectsDocumentedSolver(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		name string
		in   *core.Instance
		want string
	}{
		{"identical", gen.Identical(rng, gen.Params{N: 20, M: 3, K: 2}), NamePTAS},
		{"uniform", gen.Uniform(rng, gen.Params{N: 20, M: 3, K: 2}), NamePTAS},
		{"restricted class-uniform", gen.RestrictedClassUniform(rng, gen.Params{N: 20, M: 3, K: 2}), NameRA2},
		{"restricted generic", gen.Restricted(rng, gen.Params{N: 20, M: 3, K: 2}), NameRounding},
		{"unrelated class-uniform", gen.UnrelatedClassUniform(rng, gen.Params{N: 20, M: 3, K: 2}), NamePT3},
		{"unrelated generic", gen.Unrelated(rng, gen.Params{N: 20, M: 3, K: 2}), NameRounding},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := Default().Select(tc.in, Options{})
			if err != nil {
				t.Fatalf("Select: %v", err)
			}
			if s.Name() != tc.want {
				t.Errorf("selected %q, want %q", s.Name(), tc.want)
			}
		})
	}
}

// TestApplicableCapabilityMatching checks kind, structure and size guards.
func TestApplicableCapabilityMatching(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	small := gen.Identical(rng, gen.Params{N: 10, M: 2, K: 2})
	large := gen.Identical(rng, gen.Params{N: 40, M: 4, K: 3})

	has := func(ss []Solver, name string) bool {
		for _, s := range ss {
			if s.Name() == name {
				return true
			}
		}
		return false
	}

	smallApp := Default().Applicable(small, Options{})
	if !has(smallApp, NameExact) {
		t.Error("exact solver missing for a 10-job instance")
	}
	if has(smallApp, NameRounding) {
		t.Error("rounding offered for identical machines")
	}
	largeApp := Default().Applicable(large, Options{})
	if has(largeApp, NameExact) {
		t.Error("exact solver offered beyond its job guard")
	}
	if !has(Default().Applicable(large, Options{MaxJobs: 64}), NameExact) {
		t.Error("MaxJobs override did not widen the exact solver's guard")
	}
	// Every environment must field at least two solvers so a portfolio can
	// race.
	for _, in := range []*core.Instance{
		small, large,
		gen.Uniform(rng, gen.Params{N: 20, M: 3, K: 2}),
		gen.Restricted(rng, gen.Params{N: 20, M: 3, K: 2}),
		gen.RestrictedClassUniform(rng, gen.Params{N: 20, M: 3, K: 2}),
		gen.Unrelated(rng, gen.Params{N: 20, M: 3, K: 2}),
		gen.UnrelatedClassUniform(rng, gen.Params{N: 20, M: 3, K: 2}),
	} {
		if app := Default().Applicable(in, Options{}); len(app) < 2 {
			t.Errorf("%v: only %d applicable solvers, want >= 2", in, len(app))
		}
	}
	// Applicable must come back strongest-first.
	if smallApp[0].Name() != NamePTAS {
		t.Errorf("strongest solver for identical is %q, want %q", smallApp[0].Name(), NamePTAS)
	}
}

func TestRegistryRegisterAndGet(t *testing.T) {
	r := NewRegistry()
	s := NewSolver("stub", Caps{Kinds: allKinds}, func(ctx context.Context, in *core.Instance, opt Options) (core.Result, error) {
		return core.Result{}, nil
	})
	if err := r.Register(s); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := r.Register(s); err == nil {
		t.Error("duplicate registration accepted")
	}
	if _, ok := r.Get("stub"); !ok {
		t.Error("Get failed for registered solver")
	}
	if _, ok := r.Get("nope"); ok {
		t.Error("Get succeeded for unknown solver")
	}
	rng := rand.New(rand.NewSource(3))
	in := gen.Unrelated(rng, gen.Params{N: 8, M: 2, K: 2})
	if _, err := NewRegistry().Solve(context.Background(), in, Options{}); err == nil {
		t.Error("empty registry solved an instance")
	}
}

// TestPortfolioReturnsMinimum verifies that the portfolio's best result is
// the minimum makespan over its members and that per-solver outcomes are
// reported.
func TestPortfolioReturnsMinimum(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, in := range []*core.Instance{
		gen.Identical(rng, gen.Params{N: 14, M: 3, K: 3}),
		gen.Unrelated(rng, gen.Params{N: 14, M: 3, K: 3}),
	} {
		pr, err := Portfolio(context.Background(), in, Options{})
		if err != nil {
			t.Fatalf("Portfolio(%v): %v", in, err)
		}
		if len(pr.Outcomes) < 2 {
			t.Fatalf("portfolio raced %d solvers, want >= 2", len(pr.Outcomes))
		}
		best := math.Inf(1)
		for _, o := range pr.Outcomes {
			if o.Err != nil {
				t.Errorf("solver %s failed: %v", o.Solver, o.Err)
				continue
			}
			if o.Result.Makespan < best {
				best = o.Result.Makespan
			}
		}
		if math.Abs(pr.Best.Makespan-best) > core.Eps {
			t.Errorf("portfolio best %v != member minimum %v", pr.Best.Makespan, best)
		}
		if pr.Winner == "" {
			t.Error("no winner reported")
		}
		if err := pr.Best.Schedule.Validate(in); err != nil {
			t.Errorf("winner schedule invalid: %v", err)
		}
		// A clean portfolio run must not flag itself as degraded: Note is
		// reserved for early-stop/guard causes (core.Result contract).
		if pr.Best.Note != "" {
			t.Errorf("Note = %q on a clean run, want empty", pr.Best.Note)
		}
	}
}

// TestSolveNamedHonorsLocalSearch: named dispatch must run the same
// post-pass as automatic dispatch.
func TestSolveNamedHonorsLocalSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	in := gen.Unrelated(rng, gen.Params{N: 30, M: 4, K: 3})
	plain, err := Default().SolveNamed(context.Background(), NameGreedy, in, Options{})
	if err != nil {
		t.Fatalf("SolveNamed: %v", err)
	}
	ls, err := Default().SolveNamed(context.Background(), NameGreedy, in, Options{LocalSearch: true})
	if err != nil {
		t.Fatalf("SolveNamed(LocalSearch): %v", err)
	}
	if ls.Makespan > plain.Makespan+core.Eps {
		t.Errorf("local search worsened makespan: %v > %v", ls.Makespan, plain.Makespan)
	}
	if ls.Makespan < plain.Makespan-core.Eps && !strings.HasSuffix(ls.Algorithm, "+ls") {
		t.Errorf("improved result not labeled: %q", ls.Algorithm)
	}
	if _, err := Default().SolveNamed(context.Background(), "nope", in, Options{}); err == nil {
		t.Error("SolveNamed accepted an unknown solver")
	}
}

// TestMaxJobsGuardSemantics: opt.MaxJobs replaces the exact solver's guard
// in both directions, so capability matching agrees with the solver.
func TestMaxJobsGuardSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	in := gen.Identical(rng, gen.Params{N: 12, M: 3, K: 2})
	has := func(ss []Solver, name string) bool {
		for _, s := range ss {
			if s.Name() == name {
				return true
			}
		}
		return false
	}
	if has(Default().Applicable(in, Options{MaxJobs: 8}), NameExact) {
		t.Error("exact solver offered with a guard below the instance size")
	}
	if !has(Default().Applicable(in, Options{MaxJobs: 12}), NameExact) {
		t.Error("exact solver missing with a guard equal to the instance size")
	}
}

// hardExactInstance needs tens of millions of branch-and-bound nodes
// (measured: >2s and >29M nodes without cancellation on a dev machine).
func hardExactInstance() *core.Instance {
	rng := rand.New(rand.NewSource(9))
	return gen.Uniform(rng, gen.Params{N: 24, M: 4, K: 12, MinJob: 500, MaxJob: 1500, SpeedMax: 3})
}

// hardPTASInstance drives the PTAS dynamic program into hundreds of
// thousands of nodes per rejected guess (measured: >3s uncancelled).
func hardPTASInstance() *core.Instance {
	rng := rand.New(rand.NewSource(3))
	return gen.Uniform(rng, gen.Params{N: 30, M: 8, K: 3, SpeedMax: 1})
}

// TestCancellationStopsBranchAndBound proves a context deadline interrupts
// an in-flight exact search orders of magnitude before its uncancelled
// runtime.
func TestCancellationStopsBranchAndBound(t *testing.T) {
	in := hardExactInstance()
	solver, ok := Default().Get(NameExact)
	if !ok {
		t.Fatal("exact solver not registered")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := solver.Solve(ctx, in, Options{MaxJobs: 30})
	elapsed := time.Since(start)
	if elapsed > 2*time.Second {
		t.Fatalf("cancelled branch-and-bound ran %v, want well under its multi-second uncancelled runtime", elapsed)
	}
	if err == nil {
		if res.Note == "" || !strings.Contains(res.Note, "context cancelled") {
			t.Errorf("Note = %q, want cancellation cause", res.Note)
		}
		if verr := res.Schedule.Validate(in); verr != nil {
			t.Errorf("best-so-far schedule invalid: %v", verr)
		}
	}
}

// TestCancellationStopsPTAS proves a context deadline interrupts the PTAS
// dual search and its in-flight DP node expansion.
func TestCancellationStopsPTAS(t *testing.T) {
	in := hardPTASInstance()
	solver, ok := Default().Get(NamePTAS)
	if !ok {
		t.Fatal("ptas solver not registered")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := solver.Solve(ctx, in, Options{Eps: 0.125, NodeCap: 1 << 40})
	elapsed := time.Since(start)
	if elapsed > 2*time.Second {
		t.Fatalf("cancelled PTAS ran %v, want well under its multi-second uncancelled runtime", elapsed)
	}
	if err != nil {
		t.Fatalf("cancelled PTAS errored instead of returning best-so-far: %v", err)
	}
	if res.Schedule == nil {
		t.Fatal("cancelled PTAS returned no schedule (LPT bootstrap expected)")
	}
	if verr := res.Schedule.Validate(in); verr != nil {
		t.Errorf("best-so-far schedule invalid: %v", verr)
	}
	if !strings.Contains(res.Note, "stopped early") {
		t.Errorf("Note = %q, want early-stop cause", res.Note)
	}
}

// TestPortfolioUnderDeadline: the race as a whole respects the shared
// deadline and still produces a feasible best-effort schedule.
func TestPortfolioUnderDeadline(t *testing.T) {
	in := hardExactInstance()
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	pr, err := Portfolio(ctx, in, Options{MaxJobs: 30})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("Portfolio: %v", err)
	}
	if elapsed > 3*time.Second {
		t.Fatalf("portfolio with 200ms deadline ran %v", elapsed)
	}
	if err := pr.Best.Schedule.Validate(in); err != nil {
		t.Errorf("best schedule invalid: %v", err)
	}
}

// TestNoteSurfacesGiveUpCause: the satellite requirement that node caps and
// size guards explain themselves through Result/err instead of failing
// silently.
func TestNoteSurfacesGiveUpCause(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	in := gen.Unrelated(rng, gen.Params{N: 12, M: 4, K: 3})
	solver, _ := Default().Get(NameExact)
	res, err := solver.Solve(context.Background(), in, Options{NodeLimit: 50})
	if err == nil {
		if !strings.Contains(res.Note, "node limit") {
			t.Errorf("Note = %q, want node-limit cause", res.Note)
		}
	}

	big := gen.Identical(rng, gen.Params{N: 40, M: 3, K: 2})
	if _, err := solver.Solve(context.Background(), big, Options{}); err == nil {
		t.Error("exact solver accepted an oversized instance without erroring")
	} else if !strings.Contains(err.Error(), "job guard") {
		t.Errorf("error %q does not name the size guard", err)
	}

	ptasSolver, _ := Default().Get(NamePTAS)
	res, err = ptasSolver.Solve(context.Background(), hardPTASInstance(), Options{Eps: 0.125, NodeCap: 2000})
	if err != nil {
		t.Fatalf("capped PTAS errored: %v", err)
	}
	if !strings.Contains(res.Note, "node cap") {
		t.Errorf("Note = %q, want node-cap cause", res.Note)
	}
}
