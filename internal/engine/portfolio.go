package engine

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/core"
)

// BoundContribution reports one portfolio member's effect on the shared
// incumbent bus.
type BoundContribution struct {
	// UpperImprovements counts how many times the member strictly improved
	// the shared incumbent makespan.
	UpperImprovements int
	// LowerImprovements counts how many times the member strictly improved
	// the shared certified lower bound.
	LowerImprovements int
	// BestUpper is the member's best published makespan (0 when it never
	// improved the incumbent).
	BestUpper float64
	// BestLower is the member's best published lower bound (0 when it never
	// improved the shared bound).
	BestLower float64
	// BestUpperAt is the race time at which the member last improved the
	// shared incumbent — the portfolio's time-to-incumbent is this value
	// for the member holding the final incumbent. 0 when it never did.
	BestUpperAt time.Duration
}

// memberBus wraps the shared Incumbent for one racer, tallying the racer's
// contributions. The tallies are mutex-guarded: the BoundBus contract
// promises concurrency safety, and a solver is free to publish from
// several internal goroutines. Improvements of the race-internal
// incumbent are additionally forwarded live to the caller-supplied observer
// bus (Options.Bounds) when one exists, so event streams and warm-start
// caches layered above the race see bounds as they appear, not only at the
// final mirror.
type memberBus struct {
	inc   *Incumbent
	obs   core.BoundBus // optional caller bus; must be concurrency-safe
	start time.Time
	mu    sync.Mutex
	c     BoundContribution
}

var _ core.BoundBus = (*memberBus)(nil)

func (m *memberBus) Upper() float64 { return m.inc.Upper() }
func (m *memberBus) Lower() float64 { return m.inc.Lower() }

// contribution returns a snapshot of the racer's tallies.
func (m *memberBus) contribution() BoundContribution {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.c
}

func (m *memberBus) PublishUpper(v float64) bool {
	if !m.inc.PublishUpper(v) {
		return false
	}
	if m.obs != nil {
		m.obs.PublishUpper(v)
	}
	m.mu.Lock()
	m.c.UpperImprovements++
	if m.c.BestUpper == 0 || v < m.c.BestUpper {
		m.c.BestUpper = v
	}
	m.c.BestUpperAt = time.Since(m.start)
	m.mu.Unlock()
	return true
}

func (m *memberBus) PublishLower(v float64) bool {
	if !m.inc.PublishLower(v) {
		return false
	}
	if m.obs != nil {
		m.obs.PublishLower(v)
	}
	m.mu.Lock()
	m.c.LowerImprovements++
	if v > m.c.BestLower {
		m.c.BestLower = v
	}
	m.mu.Unlock()
	return true
}

// SolverOutcome is one solver's contribution to a portfolio run.
type SolverOutcome struct {
	// Solver is the registry name of the solver.
	Solver string
	// Result is the solver's result; meaningful only when Err is nil.
	Result core.Result
	// Err is the solver's failure (or the recovered panic message); nil on
	// success.
	Err error
	// Elapsed is the solver's wall-clock runtime inside the race.
	Elapsed time.Duration
	// Bounds tallies what the member published to the shared incumbent bus
	// while racing (tracked even when Err is non-nil: bounds published
	// before a failure remain certified).
	Bounds BoundContribution
}

// PortfolioResult is the outcome of racing all applicable solvers.
type PortfolioResult struct {
	// Best is the minimum-makespan result across successful members. Its
	// LowerBound is the strongest certified bound any member produced
	// (clamped to Best.Makespan so Ratio is never below 1), so Best.Ratio()
	// reflects the whole portfolio's knowledge.
	Best core.Result
	// Winner is the registry name of the solver that produced Best.
	Winner string
	// Outcomes reports every raced solver in finish-priority order
	// (matching Applicable), including failures.
	Outcomes []SolverOutcome
	// WithinGap reports that Options.Gap was set and Best is certified
	// within that gap: Best.Makespan ≤ (1+Gap)·Best.LowerBound. The race's
	// early termination watches the shared bus (which a caller-seeded
	// Options.Bounds contributes to), but this flag describes the returned
	// result only — a warm-started race whose members could not match the
	// seeded incumbent reports false.
	WithinGap bool
}

// Portfolio races every applicable solver concurrently under the shared
// ctx and returns the best makespan found. Each member runs on its own
// goroutine with the same deadline, so a context timeout bounds the whole
// race; members that stop early contribute their best-so-far schedules.
//
// The racers share an incumbent bus (Incumbent): improved makespans and
// certified lower bounds published by one member prune and narrow the
// others mid-flight, so the race is faster than its slowest member rather
// than as slow as it. With Options.Gap set, the race is cancelled as soon
// as the incumbent is within a factor 1+Gap of the best certified lower
// bound. A caller-provided Options.Bounds seeds the race, receives every
// improvement live as racers publish it (anytime observability for event
// streams layered above), and is mirrored the race's final bounds (warm
// restarts). An error is returned only when no member produced a feasible
// schedule.
//
// With Options.Budget set the member launch is governed: the race runs on
// the solve's own guaranteed compute lane plus however many extra tokens
// the budget grants (acquire-or-degrade, never blocking), consuming the
// member queue strongest-first. At the degraded extreme the race becomes
// priority-sequential racing on one lane — later members still start
// primed by the incumbents and certified bounds of earlier ones, and the
// gap watcher can end the race before the queue drains. Members skipped
// because the race was already cancelled report the race context's error
// in their outcome. Each extra token is released as its worker finishes.
func (r *Registry) Portfolio(ctx context.Context, in *core.Instance, opt Options) (PortfolioResult, error) {
	solvers := r.Applicable(in, opt)
	if len(solvers) == 0 {
		return PortfolioResult{}, fmt.Errorf("engine: no registered solver is applicable to %v", in)
	}
	bus := NewIncumbent()
	if opt.Bounds != nil {
		bus.PublishUpper(opt.Bounds.Upper())
		bus.PublishLower(opt.Bounds.Lower())
	}
	raceCtx, stopRace := context.WithCancel(ctx)
	defer stopRace()
	if opt.Gap > 0 {
		go watchGap(raceCtx, bus, opt.Gap, stopRace)
	}

	outcomes := make([]SolverOutcome, len(solvers))
	start := time.Now()
	// race runs one member to completion, recording its outcome.
	race := func(idx int, s Solver) {
		mb := &memberBus{inc: bus, obs: opt.Bounds, start: start}
		mopt := opt
		mopt.Bounds = mb
		defer func() {
			if p := recover(); p != nil {
				outcomes[idx] = SolverOutcome{
					Solver:  s.Name(),
					Err:     fmt.Errorf("engine: solver %s panicked: %v", s.Name(), p),
					Elapsed: time.Since(start),
					Bounds:  mb.contribution(),
				}
			}
		}()
		res, err := s.Solve(raceCtx, in, mopt)
		if err == nil && res.Schedule == nil {
			err = fmt.Errorf("engine: solver %s returned no schedule", s.Name())
		}
		if err == nil {
			if verr := res.Schedule.Validate(in); verr != nil {
				err = fmt.Errorf("engine: solver %s produced an infeasible schedule: %w", s.Name(), verr)
			}
		}
		outcomes[idx] = SolverOutcome{Solver: s.Name(), Result: res, Err: err, Elapsed: time.Since(start), Bounds: mb.contribution()}
	}

	pool := len(solvers)
	if opt.Budget != nil && pool > 1 {
		// Governed launch: one lane is the solve's guaranteed token; every
		// further concurrent member costs an extra token, acquired without
		// blocking so a saturated box degrades the race instead of
		// deadlocking it.
		pool = 1 + opt.Budget.TryAcquire(pool-1)
	}
	var wg sync.WaitGroup
	if pool >= len(solvers) {
		for idx, s := range solvers {
			wg.Add(1)
			go func(idx int, s Solver) {
				defer wg.Done()
				if opt.Budget != nil && idx > 0 {
					defer opt.Budget.Release(1)
				}
				race(idx, s)
			}(idx, s)
		}
	} else {
		// Fewer lanes than members: a worker pool consumes the member queue
		// in Applicable order (strongest first), so the members most likely
		// to win run earliest and everything later starts primed by the
		// shared bus.
		queue := make(chan int)
		for w := 0; w < pool; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				if opt.Budget != nil && w > 0 {
					defer opt.Budget.Release(1)
				}
				for idx := range queue {
					if err := raceCtx.Err(); err != nil {
						// The race ended (gap hit or caller cancelled) before
						// this member started.
						outcomes[idx] = SolverOutcome{Solver: solvers[idx].Name(), Err: err, Elapsed: time.Since(start)}
						continue
					}
					race(idx, solvers[idx])
				}
			}(w)
		}
		for idx := range solvers {
			queue <- idx
		}
		close(queue)
	}
	wg.Wait()

	out := PortfolioResult{Outcomes: outcomes}
	bestMs := math.Inf(1)
	// Harvest the strongest certified lower bound from every member,
	// including failed ones: a bound certified before a member's schedule
	// flunked validation (or before it was cancelled) is still a bound.
	bestLB := bus.Lower()
	for _, o := range outcomes {
		if o.Result.LowerBound > bestLB {
			bestLB = o.Result.LowerBound
		}
		if o.Err != nil {
			continue
		}
		if o.Result.Makespan < bestMs {
			bestMs = o.Result.Makespan
			out.Best = o.Result
			out.Winner = o.Solver
		}
	}
	if out.Winner == "" {
		errs := ""
		for _, o := range outcomes {
			errs += fmt.Sprintf("; %s: %v", o.Solver, o.Err)
		}
		return out, fmt.Errorf("engine: every portfolio member failed%s", errs)
	}
	out.Best = postProcess(ctx, in, out.Best, opt)
	// Clamp: inconsistent members (a bound within floating-point slack of
	// another member's makespan) must never push Ratio below 1.
	if bestLB > out.Best.Makespan {
		bestLB = out.Best.Makespan
	}
	out.Best.LowerBound = bestLB
	out.WithinGap = opt.Gap > 0 && bestLB > 0 &&
		out.Best.Makespan <= (1+opt.Gap)*bestLB+core.Eps
	if opt.Bounds != nil {
		// Mirror the race's final knowledge back to the caller's bus.
		opt.Bounds.PublishUpper(out.Best.Makespan)
		opt.Bounds.PublishLower(bestLB)
	}
	// Winner provenance lives in out.Winner/Outcomes; Best.Note stays
	// reserved for degraded-run causes per the core.Result contract.
	return out, nil
}

// watchGap cancels the race once the incumbent is certified within the
// requested relative gap of the best lower bound. It wakes on every bus
// improvement and exits with the race context.
func watchGap(ctx context.Context, bus *Incumbent, gap float64, stop context.CancelFunc) {
	for {
		if bus.Gap() <= gap {
			stop()
			return
		}
		select {
		case <-ctx.Done():
			return
		case <-bus.Updates():
		}
	}
}

// Portfolio races the default registry.
func Portfolio(ctx context.Context, in *core.Instance, opt Options) (PortfolioResult, error) {
	return Default().Portfolio(ctx, in, opt)
}
