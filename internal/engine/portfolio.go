package engine

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/core"
)

// SolverOutcome is one solver's contribution to a portfolio run.
type SolverOutcome struct {
	// Solver is the registry name of the solver.
	Solver string
	// Result is the solver's result; meaningful only when Err is nil.
	Result core.Result
	// Err is the solver's failure (or the recovered panic message); nil on
	// success.
	Err error
	// Elapsed is the solver's wall-clock runtime inside the race.
	Elapsed time.Duration
}

// PortfolioResult is the outcome of racing all applicable solvers.
type PortfolioResult struct {
	// Best is the minimum-makespan result across successful members. Its
	// LowerBound is the strongest certified bound any member produced, so
	// Best.Ratio() reflects the whole portfolio's knowledge.
	Best core.Result
	// Winner is the registry name of the solver that produced Best.
	Winner string
	// Outcomes reports every raced solver in finish-priority order
	// (matching Applicable), including failures.
	Outcomes []SolverOutcome
}

// Portfolio races every applicable solver concurrently under the shared
// ctx and returns the best makespan found. Each member runs on its own
// goroutine with the same deadline, so a context timeout bounds the whole
// race; members that stop early contribute their best-so-far schedules.
// An error is returned only when no member produced a feasible schedule.
func (r *Registry) Portfolio(ctx context.Context, in *core.Instance, opt Options) (PortfolioResult, error) {
	solvers := r.Applicable(in, opt)
	if len(solvers) == 0 {
		return PortfolioResult{}, fmt.Errorf("engine: no registered solver is applicable to %v", in)
	}
	outcomes := make([]SolverOutcome, len(solvers))
	var wg sync.WaitGroup
	for idx, s := range solvers {
		wg.Add(1)
		go func(idx int, s Solver) {
			defer wg.Done()
			start := time.Now()
			defer func() {
				if p := recover(); p != nil {
					outcomes[idx] = SolverOutcome{
						Solver:  s.Name(),
						Err:     fmt.Errorf("engine: solver %s panicked: %v", s.Name(), p),
						Elapsed: time.Since(start),
					}
				}
			}()
			res, err := s.Solve(ctx, in, opt)
			if err == nil && res.Schedule == nil {
				err = fmt.Errorf("engine: solver %s returned no schedule", s.Name())
			}
			if err == nil {
				if verr := res.Schedule.Validate(in); verr != nil {
					err = fmt.Errorf("engine: solver %s produced an infeasible schedule: %w", s.Name(), verr)
				}
			}
			outcomes[idx] = SolverOutcome{Solver: s.Name(), Result: res, Err: err, Elapsed: time.Since(start)}
		}(idx, s)
	}
	wg.Wait()

	out := PortfolioResult{Outcomes: outcomes}
	bestMs := math.Inf(1)
	bestLB := 0.0
	for _, o := range outcomes {
		if o.Err != nil {
			continue
		}
		if o.Result.LowerBound > bestLB {
			bestLB = o.Result.LowerBound
		}
		if o.Result.Makespan < bestMs {
			bestMs = o.Result.Makespan
			out.Best = o.Result
			out.Winner = o.Solver
		}
	}
	if out.Winner == "" {
		errs := ""
		for _, o := range outcomes {
			errs += fmt.Sprintf("; %s: %v", o.Solver, o.Err)
		}
		return out, fmt.Errorf("engine: every portfolio member failed%s", errs)
	}
	out.Best.LowerBound = bestLB
	out.Best = postProcess(ctx, in, out.Best, opt)
	// Winner provenance lives in out.Winner/Outcomes; Best.Note stays
	// reserved for degraded-run causes per the core.Result contract.
	return out, nil
}

// Portfolio races the default registry.
func Portfolio(ctx context.Context, in *core.Instance, opt Options) (PortfolioResult, error) {
	return Default().Portfolio(ctx, in, opt)
}
