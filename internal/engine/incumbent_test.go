package engine

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/gen"
)

func TestIncumbentPublishSemantics(t *testing.T) {
	b := NewIncumbent()
	if !math.IsInf(b.Upper(), 1) || b.Lower() != 0 {
		t.Fatalf("fresh bus = (%v, %v), want (+Inf, 0)", b.Upper(), b.Lower())
	}
	if !math.IsInf(b.Gap(), 1) {
		t.Errorf("fresh Gap = %v, want +Inf", b.Gap())
	}
	if !b.PublishUpper(10) {
		t.Error("first upper publish not an improvement")
	}
	if b.PublishUpper(10) || b.PublishUpper(12) {
		t.Error("non-improving upper publish reported as improvement")
	}
	if !b.PublishUpper(8) || b.Upper() != 8 {
		t.Errorf("upper = %v after publishing 8", b.Upper())
	}
	if !b.PublishLower(4) || b.PublishLower(3) || b.Lower() != 4 {
		t.Errorf("lower = %v after publishing 4 then 3", b.Lower())
	}
	if got := b.Gap(); math.Abs(got-1) > core.Eps {
		t.Errorf("Gap = %v, want 1 (upper 8, lower 4)", got)
	}
	// Garbage values must be ignored.
	if b.PublishUpper(math.NaN()) || b.PublishUpper(math.Inf(1)) || b.PublishUpper(-1) {
		t.Error("accepted a non-finite or negative upper bound")
	}
	if b.PublishLower(math.NaN()) || b.PublishLower(math.Inf(1)) || b.PublishLower(0) {
		t.Error("accepted a non-finite or non-positive lower bound")
	}
	select {
	case <-b.Updates():
	default:
		t.Error("no update signal after improvements")
	}
}

// TestIncumbentConcurrentPublishers hammers the bus from many goroutines;
// run under -race this also proves the lock-free publishes are safe.
func TestIncumbentConcurrentPublishers(t *testing.T) {
	b := NewIncumbent()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 1000; i++ {
				b.PublishUpper(100 + rng.Float64()*900)
				b.PublishLower(rng.Float64() * 100)
				_ = b.Upper()
				_ = b.Lower()
			}
		}(g)
	}
	wg.Wait()
	if u := b.Upper(); u < 100 || u >= 1000 {
		t.Errorf("final upper %v outside published range [100, 1000)", u)
	}
	if l := b.Lower(); l <= 0 || l > 100 {
		t.Errorf("final lower %v outside published range (0, 100]", l)
	}
	if b.Upper() < b.Lower() {
		t.Errorf("bounds crossed: upper %v < lower %v", b.Upper(), b.Lower())
	}
}

// TestPortfolioGapTermination is the satellite requirement: a race with a
// deliberately slow refuting member ends as soon as the refuter certifies
// the incumbent within the requested gap, instead of waiting out the
// refuter's multi-second grind.
func TestPortfolioGapTermination(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	in := gen.Identical(rng, gen.Params{N: 10, M: 2, K: 2})
	reg := NewRegistry()
	reg.MustRegister(NewSolver("fast", Caps{Kinds: allKinds, Priority: 2},
		func(ctx context.Context, in *core.Instance, opt Options) (core.Result, error) {
			sched, err := baseline.Greedy(in)
			if err != nil {
				return core.Result{}, err
			}
			ms := sched.Makespan(in)
			if opt.Bounds != nil {
				opt.Bounds.PublishUpper(ms)
			}
			return core.Result{Algorithm: "fast", Schedule: sched, Makespan: ms}, nil
		}))
	reg.MustRegister(NewSolver("slow-refuter", Caps{Kinds: allKinds, Priority: 1},
		func(ctx context.Context, in *core.Instance, opt Options) (core.Result, error) {
			// Refute slowly: wait (bounded) for the fast member's incumbent
			// to land, certify it optimal, then grind until cancelled (5s
			// when it is not). Waiting on the bus rather than a fixed sleep
			// keeps the test robust on loaded runners: publishing +Inf
			// would be silently ignored and the gap would never close.
			for i := 0; i < 2000 && math.IsInf(opt.Bounds.Upper(), 1); i++ {
				time.Sleep(time.Millisecond)
			}
			opt.Bounds.PublishLower(opt.Bounds.Upper())
			select {
			case <-ctx.Done():
				return core.Result{}, ctx.Err()
			case <-time.After(5 * time.Second):
				return core.Result{}, fmt.Errorf("gap termination never cancelled the race")
			}
		}))
	start := time.Now()
	pr, err := reg.Portfolio(context.Background(), in, Options{Gap: 0.01})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("Portfolio: %v", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("gap-terminated race ran %v, want well under the refuter's 5s grind", elapsed)
	}
	if !pr.WithinGap {
		t.Error("WithinGap not reported despite lower == upper")
	}
	if pr.Winner != "fast" {
		t.Errorf("winner = %q, want fast", pr.Winner)
	}
	if math.Abs(pr.Best.LowerBound-pr.Best.Makespan) > core.Eps {
		t.Errorf("LowerBound %v != Makespan %v despite full certification", pr.Best.LowerBound, pr.Best.Makespan)
	}
}

// TestPortfolioPrimesBranchAndBound is the acceptance criterion: inside a
// portfolio, the branch-and-bound racer consumes incumbents published by
// the heuristic members and explores measurably fewer nodes than the same
// search does standalone.
func TestPortfolioPrimesBranchAndBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	in := gen.Uniform(rng, gen.Params{N: 13, M: 3, K: 4})
	_, _, st0 := exact.BranchAndBound(context.Background(), in, exact.Options{})
	if !st0.Proven || st0.Nodes == 0 {
		t.Fatalf("standalone baseline not proven (%d nodes)", st0.Nodes)
	}

	var nodes atomic.Int64
	reg := NewRegistry()
	reg.MustRegister(newGreedySolver())
	reg.MustRegister(newLPTSolver())
	reg.MustRegister(NewSolver("probe-exact", Caps{Kinds: allKinds, Priority: 1},
		func(ctx context.Context, in *core.Instance, opt Options) (core.Result, error) {
			if opt.Bounds == nil {
				return core.Result{}, fmt.Errorf("portfolio did not supply a bound bus")
			}
			// Let the heuristic racers seed the incumbent first, so the
			// node-count comparison is deterministic. Fail loudly if they
			// never do (instead of flunking the node-count assertion with a
			// misleading message on a badly overloaded runner).
			for i := 0; i < 20000 && math.IsInf(opt.Bounds.Upper(), 1); i++ {
				time.Sleep(100 * time.Microsecond)
			}
			if math.IsInf(opt.Bounds.Upper(), 1) {
				return core.Result{}, fmt.Errorf("heuristic racers never seeded the incumbent within 2s")
			}
			sched, ms, st := exact.BranchAndBound(ctx, in, exact.Options{Bounds: opt.Bounds})
			nodes.Store(st.Nodes)
			if sched == nil {
				return core.Result{}, fmt.Errorf("pruned out against the incumbent (%s)", st.Reason)
			}
			return core.Result{Algorithm: "probe-exact", Schedule: sched, Makespan: ms, LowerBound: st.Bound}, nil
		}))
	if _, err := reg.Portfolio(context.Background(), in, Options{}); err != nil {
		t.Fatalf("Portfolio: %v", err)
	}
	primed := nodes.Load()
	if primed == 0 {
		t.Fatal("probe never ran")
	}
	if primed >= st0.Nodes {
		t.Errorf("incumbent-primed search explored %d nodes, standalone %d — priming did not prune", primed, st0.Nodes)
	}
}

// TestPortfolioHarvestsBoundsFromFailedMembers is the satellite bugfix:
// a certified lower bound from a member whose schedule later flunked
// validation must still strengthen Best.LowerBound, and inconsistent
// bounds are clamped so Ratio never drops below 1.
func TestPortfolioHarvestsBoundsFromFailedMembers(t *testing.T) {
	in, err := core.NewIdentical([]float64{4, 4}, []int{0, 1}, []float64{1, 1}, 2)
	if err != nil {
		t.Fatalf("NewIdentical: %v", err)
	}
	valid := &core.Schedule{Assign: []int{0, 1}} // makespan 5
	for _, tc := range []struct {
		name   string
		certLB float64
		wantLB float64
	}{
		{"harvested", 4.5, 4.5}, // bound from the failed member survives
		{"clamped", 7, 5},       // inconsistent bound clamps to the makespan
	} {
		t.Run(tc.name, func(t *testing.T) {
			reg := NewRegistry()
			reg.MustRegister(NewSolver("ok", Caps{Kinds: allKinds, Priority: 2},
				func(ctx context.Context, in *core.Instance, opt Options) (core.Result, error) {
					return core.Result{Algorithm: "ok", Schedule: valid, Makespan: 5, LowerBound: 1}, nil
				}))
			reg.MustRegister(NewSolver("broken-cert", Caps{Kinds: allKinds, Priority: 1},
				func(ctx context.Context, in *core.Instance, opt Options) (core.Result, error) {
					// Certified a strong bound, then produced an infeasible
					// schedule (all jobs unassigned).
					return core.Result{Algorithm: "broken", Schedule: core.NewSchedule(in.N), Makespan: 3, LowerBound: tc.certLB}, nil
				}))
			pr, err := reg.Portfolio(context.Background(), in, Options{})
			if err != nil {
				t.Fatalf("Portfolio: %v", err)
			}
			if pr.Winner != "ok" {
				t.Fatalf("winner = %q, want ok (broken member must fail validation)", pr.Winner)
			}
			if math.Abs(pr.Best.LowerBound-tc.wantLB) > core.Eps {
				t.Errorf("Best.LowerBound = %v, want %v", pr.Best.LowerBound, tc.wantLB)
			}
			if r := pr.Best.Ratio(); r < 1-core.Eps {
				t.Errorf("Ratio = %v, want >= 1", r)
			}
		})
	}
}

// TestRngForSeedZeroDistinctStream is the satellite regression test: seed 0
// (the fixed default) must be deterministic but must not alias seed 1.
func TestRngForSeedZeroDistinctStream(t *testing.T) {
	draws := func(seed int64) [8]float64 {
		rng := rngFor(Options{Seed: seed})
		var out [8]float64
		for i := range out {
			out[i] = rng.Float64()
		}
		return out
	}
	if draws(0) != draws(0) {
		t.Error("seed 0 is not deterministic")
	}
	if draws(0) == draws(1) {
		t.Error("seed 0 aliases seed 1: the two seeds produce identical runs")
	}
}
