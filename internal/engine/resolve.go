package engine

import (
	"sync"

	"repro/internal/core"
	"repro/internal/rounding"
)

// SolveState is the retainable artifact of one finished solve: everything
// the incremental re-solve pipeline needs to re-enter the search after a
// core.Delta instead of solving the mutated instance cold. The public
// sched.Engine.Resolve path stores one per solved fingerprint and consumes
// it on the next delta.
type SolveState struct {
	// Fingerprint is the exact fingerprint of Instance (the store key).
	Fingerprint string
	// Instance is the instance the state was solved on.
	Instance *core.Instance
	// Schedule is the best schedule of that solve (a private copy).
	Schedule *core.Schedule
	// Upper is Schedule's makespan; Lower the certified lower bound.
	Upper, Lower float64
	// Accepted is the search's final accept-backed bracket edge
	// (dual.Outcome.Accepted), the value Delta.AcceptedCap lifts across a
	// delta. Zero when the solver ran no dual search.
	Accepted float64
	// Rel is the rounding solver's LP relaxation with its retained warm
	// basis, nil for solvers without retainable LP state. Whoever holds the
	// SolveState owns it exclusively (Relaxations are not safe for
	// concurrent use) — the store's Take hands each state out at most once.
	Rel *rounding.Relaxation
	// Algorithm names the solver that produced the state.
	Algorithm string
}

// RetainedState is what a solver hands back through Options.Retain: the
// solver-specific slice of a SolveState (the rest — schedule, bounds,
// fingerprint — is already in its Result and filled in by the engine).
type RetainedState struct {
	// Accepted is the final accept-backed bracket edge of the solver's
	// dual search (see SolveState.Accepted).
	Accepted float64
	// Rel is the rounding relaxation to retain, nil when the solver keeps
	// no LP state. Ownership transfers to the receiver.
	Rel *rounding.Relaxation
}

// StateStore is a concurrency-safe LRU of SolveStates keyed by instance
// fingerprint. Unlike the BoundCache — whose entries are immutable facts
// served by copy, any number of times — a SolveState contains a live,
// mutable LP backend, so the store hands entries out exclusively: Take
// removes the state it returns, and a second Take of the same fingerprint
// misses. Re-solving the same previous handle twice therefore warm-starts
// from the retained relaxation only the first time; later resolves still
// get the bound-and-witness warm start, just not the basis.
type StateStore struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*SolveState
	order   []string // LRU: oldest first
}

// DefaultStateStoreSize is the entry capacity used when none is chosen —
// sized like a handful of concurrent delta streams, not like the bound
// cache: each entry pins a built LP (O(M·(N+K)) floats plus factorization).
const DefaultStateStoreSize = 16

// NewStateStore returns an empty store holding at most capacity states
// (capacity <= 0 selects DefaultStateStoreSize).
func NewStateStore(capacity int) *StateStore {
	if capacity <= 0 {
		capacity = DefaultStateStoreSize
	}
	return &StateStore{cap: capacity, entries: make(map[string]*SolveState)}
}

// Put retains a state, replacing any state already stored for the same
// fingerprint and evicting the least-recently-stored entry over capacity.
// States without a fingerprint are ignored.
func (s *StateStore) Put(st *SolveState) {
	if st == nil || st.Fingerprint == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.entries[st.Fingerprint]; ok {
		s.removeOrderLocked(st.Fingerprint)
	}
	s.entries[st.Fingerprint] = st
	s.order = append(s.order, st.Fingerprint)
	for len(s.order) > s.cap {
		victim := s.order[0]
		s.order = s.order[1:]
		delete(s.entries, victim)
	}
}

// Take removes and returns the state for the fingerprint, transferring
// exclusive ownership (of the contained Relaxation in particular) to the
// caller. A miss returns nil.
func (s *StateStore) Take(fp string) *SolveState {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.entries[fp]
	if !ok {
		return nil
	}
	delete(s.entries, fp)
	s.removeOrderLocked(fp)
	return st
}

// Len reports the number of retained states.
func (s *StateStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

func (s *StateStore) removeOrderLocked(fp string) {
	for i, f := range s.order {
		if f == fp {
			s.order = append(s.order[:i], s.order[i+1:]...)
			return
		}
	}
}
