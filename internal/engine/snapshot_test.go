package engine

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	c := NewBoundCache(8)
	c.Update("a", CachedBounds{Upper: 10, Lower: 4, Schedule: schedOf(0, 1), Algorithm: "greedy", SimKey: "k1"})
	c.Update("b", CachedBounds{Upper: math.Inf(1), Lower: 7}) // lower-only entry
	c.Update("c", CachedBounds{Upper: 3, Schedule: schedOf(1), Algorithm: "ptas"})

	var buf bytes.Buffer
	if err := c.Snapshot(&buf); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}

	fresh := NewBoundCache(8)
	n, err := fresh.LoadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	if n != 3 {
		t.Fatalf("LoadSnapshot merged %d entries, want 3", n)
	}

	got, ok := fresh.Lookup("a")
	if !ok || got.Upper != 10 || got.Lower != 4 || got.Algorithm != "greedy" || got.Schedule == nil {
		t.Errorf("entry a after round trip = %+v ok=%v", got, ok)
	}
	if got.Schedule != nil && (len(got.Schedule.Assign) != 2 || got.Schedule.Assign[0] != 0 || got.Schedule.Assign[1] != 1) {
		t.Errorf("entry a schedule after round trip = %v", got.Schedule.Assign)
	}
	got, ok = fresh.Lookup("b")
	if !ok || !math.IsInf(got.Upper, 1) || got.Lower != 7 || got.Schedule != nil {
		t.Errorf("lower-only entry b after round trip = %+v ok=%v", got, ok)
	}
	if got, ok = fresh.Lookup("c"); !ok || got.Upper != 3 {
		t.Errorf("entry c after round trip = %+v ok=%v", got, ok)
	}
}

func TestSnapshotLoadMergesMonotonically(t *testing.T) {
	// A snapshot of an older, weaker cache state must not regress a cache
	// that has since learned better bounds — and must still improve entries
	// where the snapshot is stronger.
	old := NewBoundCache(8)
	old.Update("a", CachedBounds{Upper: 12, Lower: 3, Schedule: schedOf(1, 1), Algorithm: "lpt"})
	old.Update("b", CachedBounds{Upper: 5, Lower: 4, Schedule: schedOf(0), Algorithm: "exact"})
	var buf bytes.Buffer
	if err := old.Snapshot(&buf); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}

	live := NewBoundCache(8)
	live.Update("a", CachedBounds{Upper: 10, Lower: 4, Schedule: schedOf(0, 1), Algorithm: "ptas"})
	live.Update("b", CachedBounds{Upper: math.Inf(1), Lower: 2})
	if _, err := live.LoadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}

	got, _ := live.Lookup("a")
	if got.Upper != 10 || got.Lower != 4 || got.Algorithm != "ptas" {
		t.Errorf("weaker snapshot entry regressed live entry a: %+v", got)
	}
	got, _ = live.Lookup("b")
	if got.Upper != 5 || got.Lower != 4 || got.Schedule == nil || got.Algorithm != "exact" {
		t.Errorf("stronger snapshot entry did not improve live entry b: %+v", got)
	}
}

func TestSnapshotRejectsUnknownVersion(t *testing.T) {
	c := NewBoundCache(4)
	if _, err := c.LoadSnapshot(strings.NewReader(`{"version":99,"entries":[]}`)); err == nil {
		t.Fatal("LoadSnapshot accepted an unknown snapshot version")
	}
	if _, err := c.LoadSnapshot(strings.NewReader(`not json`)); err == nil {
		t.Fatal("LoadSnapshot accepted malformed input")
	}
}
