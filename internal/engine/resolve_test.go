package engine

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
)

func TestStateStoreTakeIsExclusive(t *testing.T) {
	s := NewStateStore(4)
	s.Put(&SolveState{Fingerprint: "a", Upper: 10})
	s.Put(&SolveState{Fingerprint: "b", Upper: 20})
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	st := s.Take("a")
	if st == nil || st.Upper != 10 {
		t.Fatalf("Take(a) = %+v", st)
	}
	if s.Take("a") != nil {
		t.Fatal("second Take of the same fingerprint hit — states must be consumed")
	}
	if s.Len() != 1 {
		t.Fatalf("Len after Take = %d, want 1", s.Len())
	}
	if s.Take("nope") != nil {
		t.Fatal("Take of unknown fingerprint hit")
	}
}

func TestStateStoreReplaceAndEvict(t *testing.T) {
	s := NewStateStore(2)
	s.Put(&SolveState{Fingerprint: "a", Upper: 1})
	s.Put(&SolveState{Fingerprint: "a", Upper: 2}) // replace, no growth
	if s.Len() != 1 {
		t.Fatalf("Len after replace = %d, want 1", s.Len())
	}
	s.Put(&SolveState{Fingerprint: "b", Upper: 3})
	s.Put(&SolveState{Fingerprint: "c", Upper: 4}) // evicts a (oldest)
	if s.Take("a") != nil {
		t.Fatal("oldest state not evicted at capacity")
	}
	if st := s.Take("a"); st != nil {
		t.Fatalf("evicted state still present: %+v", st)
	}
	if s.Take("b") == nil || s.Take("c") == nil {
		t.Fatal("recent states evicted instead of oldest")
	}
	s.Put(nil)
	s.Put(&SolveState{}) // no fingerprint: ignored
	if s.Len() != 0 {
		t.Fatalf("unkeyed Put stored an entry (Len=%d)", s.Len())
	}
}

// TestLookupSimilarRepricesOnNewInstance is the similarity-key soundness
// test: a hit is only ever the cached schedule re-evaluated on the new
// instance, so the returned Upper is exactly that schedule's makespan there
// — never the stale bound from the old instance.
func TestLookupSimilarRepricesOnNewInstance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := gen.Unrelated(rng, gen.Params{N: 12, M: 3, K: 3})
	// A second instance in the same similarity bucket: same class-size
	// profile, slightly perturbed times (well under one log1.25 volume
	// bucket).
	p2 := make([][]float64, in.M)
	for i := range p2 {
		p2[i] = append([]float64(nil), in.P[i]...)
		for j := range p2[i] {
			p2[i][j] *= 1.02
		}
	}
	in2, err := core.NewUnrelated(p2, in.Class, in.S)
	if err != nil {
		t.Fatal(err)
	}
	if in.SimilarityKey() != in2.SimilarityKey() {
		t.Skip("perturbation crossed a similarity bucket; key test covers bucketing")
	}
	if in.Fingerprint() == in2.Fingerprint() {
		t.Fatal("perturbed instance has identical fingerprint")
	}

	sched := &core.Schedule{Assign: make([]int, in.N)}
	for j := range sched.Assign {
		sched.Assign[j] = j % in.M
	}
	msOld := sched.Makespan(in)
	c := NewBoundCache(8)
	c.Update(in.Fingerprint(), CachedBounds{
		Upper: msOld, Lower: msOld / 2, Schedule: sched,
		Algorithm: "greedy", SimKey: in.SimilarityKey(),
	})

	got, ok := c.LookupSimilar(in2, in2.Fingerprint())
	if !ok {
		t.Fatal("similarity lookup missed")
	}
	wantMs := sched.Makespan(in2)
	if got.Upper != wantMs {
		t.Fatalf("Upper = %v, want the re-priced makespan %v (old %v)", got.Upper, wantMs, msOld)
	}
	if got.Schedule == nil || got.Schedule.Makespan(in2) != got.Upper {
		t.Fatal("returned schedule does not witness the returned Upper")
	}
	if got.Lower != 0 {
		t.Fatalf("Lower = %v transferred across fingerprints — lower bounds must not transfer", got.Lower)
	}
	if got.Algorithm != "greedy~sim" {
		t.Fatalf("Algorithm = %q, want greedy~sim", got.Algorithm)
	}

	// The instance's own fingerprint is excluded (exact hits are Lookup's).
	if _, ok := c.LookupSimilar(in, in.Fingerprint()); ok {
		t.Fatal("LookupSimilar served the excluded fingerprint")
	}
}

// TestLookupSimilarSkipsInapplicableSchedules: candidates whose schedules
// do not fit the new instance (wrong job count, machine out of range,
// infinite re-priced makespan) must be skipped, not served.
func TestLookupSimilarSkipsInapplicableSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	in := gen.Restricted(rng, gen.Params{N: 10, M: 3, K: 2})
	key := in.SimilarityKey()
	c := NewBoundCache(8)

	// Wrong length: a schedule of 9 jobs.
	c.Update("fpA", CachedBounds{Upper: 5, Schedule: &core.Schedule{Assign: make([]int, in.N-1)}, SimKey: key})
	// Machine index out of range.
	bad := &core.Schedule{Assign: make([]int, in.N)}
	bad.Assign[0] = in.M + 7
	c.Update("fpB", CachedBounds{Upper: 5, Schedule: bad, SimKey: key})
	if _, ok := c.LookupSimilar(in, "self"); ok {
		t.Fatal("inapplicable candidate served")
	}

	// A schedule violating eligibility re-prices to +Inf and is skipped.
	inf := &core.Schedule{Assign: make([]int, in.N)}
	priced := false
	for j := range inf.Assign {
		inf.Assign[j] = 0
		if !core.IsFinite(in.P[0][j]) {
			priced = true
		}
	}
	if priced && core.IsFinite(inf.Makespan(in)) {
		t.Fatal("test setup: expected an infinite re-priced makespan")
	}
	c.Update("fpC", CachedBounds{Upper: 5, Schedule: inf, SimKey: key})
	got, ok := c.LookupSimilar(in, "self")
	if priced {
		if ok {
			t.Fatalf("infinitely-priced candidate served: %+v", got)
		}
	} else if !ok || !core.IsFinite(got.Upper) {
		t.Fatalf("finite candidate not served: %+v ok=%v", got, ok)
	}
}

// TestLookupSimilarFanoutBounded: the per-key index keeps only the newest
// simFanout fingerprints, and eviction removes entries from the index.
func TestLookupSimilarFanoutBounded(t *testing.T) {
	c := NewBoundCache(4)
	sched := schedOf(0, 0)
	for i := 0; i < 6; i++ {
		c.Update(string(rune('a'+i)), CachedBounds{Upper: float64(10 - i), Schedule: sched, SimKey: "K"})
	}
	c.mu.Lock()
	n := len(c.sim["K"])
	c.mu.Unlock()
	if n > simFanout {
		t.Fatalf("similarity index holds %d fingerprints, cap %d", n, simFanout)
	}
	// All indexed fingerprints must still exist (evicted ones unindexed).
	c.mu.Lock()
	for _, fp := range c.sim["K"] {
		if _, ok := c.entries[fp]; !ok {
			c.mu.Unlock()
			t.Fatalf("similarity index references evicted fingerprint %q", fp)
		}
	}
	c.mu.Unlock()
}
