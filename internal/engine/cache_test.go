package engine

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
)

func schedOf(assign ...int) *core.Schedule {
	return &core.Schedule{Assign: assign}
}

func TestBoundCacheMergeMonotone(t *testing.T) {
	c := NewBoundCache(8)
	if _, ok := c.Lookup("a"); ok {
		t.Fatal("empty cache reported a hit")
	}

	c.Update("a", CachedBounds{Upper: 10, Lower: 4, Schedule: schedOf(0, 1), Algorithm: "greedy"})
	got, ok := c.Lookup("a")
	if !ok || got.Upper != 10 || got.Lower != 4 || got.Algorithm != "greedy" {
		t.Fatalf("Lookup after first update = %+v ok=%v", got, ok)
	}

	// A worse upper and worse lower must not overwrite.
	c.Update("a", CachedBounds{Upper: 12, Lower: 3, Schedule: schedOf(1, 1), Algorithm: "lpt"})
	got, _ = c.Lookup("a")
	if got.Upper != 10 || got.Lower != 4 || got.Algorithm != "greedy" {
		t.Errorf("non-improving update overwrote entry: %+v", got)
	}

	// A better upper replaces the schedule; a better lower replaces the bound.
	c.Update("a", CachedBounds{Upper: 8, Lower: 6, Schedule: schedOf(1, 0), Algorithm: "ptas"})
	got, _ = c.Lookup("a")
	if got.Upper != 8 || got.Lower != 6 || got.Algorithm != "ptas" {
		t.Errorf("improving update lost: %+v", got)
	}

	// Lower-only knowledge (e.g. from a failed solve) merges without a schedule.
	c.Update("a", CachedBounds{Upper: math.Inf(1), Lower: 7})
	got, _ = c.Lookup("a")
	if got.Lower != 7 || got.Upper != 8 || got.Schedule == nil {
		t.Errorf("lower-only update mishandled: %+v", got)
	}

	// An upper without a schedule is not storable knowledge.
	c.Update("b", CachedBounds{Upper: 5})
	if _, ok := c.Lookup("b"); ok {
		t.Error("schedule-less upper bound created an entry")
	}
}

func TestBoundCacheReturnsCopies(t *testing.T) {
	c := NewBoundCache(8)
	orig := schedOf(0, 1, 2)
	c.Update("a", CachedBounds{Upper: 9, Schedule: orig})
	orig.Assign[0] = 99 // caller mutates after storing

	got, _ := c.Lookup("a")
	if got.Schedule.Assign[0] == 99 {
		t.Error("cache aliased the stored schedule")
	}
	got.Schedule.Assign[1] = 77 // caller mutates the looked-up copy
	again, _ := c.Lookup("a")
	if again.Schedule.Assign[1] == 77 {
		t.Error("cache aliased the returned schedule")
	}
}

func TestBoundCacheEvictsOldest(t *testing.T) {
	c := NewBoundCache(3)
	for i := 0; i < 5; i++ {
		c.Update(fmt.Sprintf("fp%d", i), CachedBounds{Upper: float64(i + 1), Schedule: schedOf(0)})
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
	if _, ok := c.Lookup("fp0"); ok {
		t.Error("oldest entry survived eviction")
	}
	if _, ok := c.Lookup("fp4"); !ok {
		t.Error("newest entry was evicted")
	}
}

func TestBoundCacheConcurrentMerge(t *testing.T) {
	c := NewBoundCache(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c.Update("shared", CachedBounds{
					Upper:    float64(100 - i%50),
					Lower:    float64(i % 40),
					Schedule: schedOf(g),
				})
				c.Lookup("shared")
			}
		}(g)
	}
	wg.Wait()
	got, ok := c.Lookup("shared")
	if !ok || got.Upper != 51 || got.Lower != 39 {
		t.Errorf("after concurrent merge: %+v ok=%v (want Upper=51 Lower=39)", got, ok)
	}
}

func TestEventBusEmitsOnStrictImprovement(t *testing.T) {
	var mu sync.Mutex
	var events []Event
	bus := NewEventBus(NewIncumbent(), "fp-x", func(ev Event) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	})

	if !bus.PublishUpper(10) {
		t.Fatal("first upper rejected")
	}
	if bus.PublishUpper(11) {
		t.Fatal("worse upper accepted")
	}
	if !bus.PublishUpper(8) || !bus.PublishLower(3) || bus.PublishLower(2) {
		t.Fatal("unexpected publish outcomes")
	}

	want := []struct {
		kind  EventKind
		value float64
	}{{EventIncumbent, 10}, {EventIncumbent, 8}, {EventLowerBound, 3}}
	if len(events) != len(want) {
		t.Fatalf("got %d events, want %d: %+v", len(events), len(want), events)
	}
	for i, w := range want {
		if events[i].Kind != w.kind || events[i].Value != w.value || events[i].Fingerprint != "fp-x" {
			t.Errorf("event %d = %+v, want kind=%v value=%v", i, events[i], w.kind, w.value)
		}
	}
	if bus.Upper() != 8 || bus.Lower() != 3 {
		t.Errorf("bus reads upper=%v lower=%v", bus.Upper(), bus.Lower())
	}
}

func TestPortfolioForwardsBoundsLiveToCallerBus(t *testing.T) {
	// The caller's bus must see improvements while the race is running, not
	// only at the final mirror: count events observed through an event bus
	// wrapped around the caller-side incumbent.
	count := 0
	var mu sync.Mutex
	caller := NewEventBus(NewIncumbent(), "fp", func(ev Event) {
		mu.Lock()
		count++
		mu.Unlock()
	})

	rng := rand.New(rand.NewSource(5))
	in := gen.Uniform(rng, gen.Params{N: 14, M: 3, K: 3})
	pr, err := Default().Portfolio(t.Context(), in, Options{Bounds: caller})
	if err != nil {
		t.Fatalf("Portfolio: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if count == 0 {
		t.Error("caller bus saw no live improvements during the race")
	}
	if u := caller.Upper(); u > pr.Best.Makespan+core.Eps {
		t.Errorf("caller bus upper %v worse than race best %v", u, pr.Best.Makespan)
	}
}
