package engine

import (
	"math"
	"sync/atomic"

	"repro/internal/core"
)

// Incumbent is the shared bound bus of a portfolio race: a lock-free
// core.BoundBus holding the best feasible makespan published by any racer
// (the incumbent) and the strongest certified lower bound. Racers publish
// improvements via compare-and-swap on the raw float bits and read the live
// values with a single atomic load, so consulting the bus at every search
// node is cheap. Gap watchers can block on Updates to react to
// improvements.
type Incumbent struct {
	upper   atomic.Uint64 // math.Float64bits of the incumbent makespan
	lower   atomic.Uint64 // math.Float64bits of the certified lower bound
	updates chan struct{} // capacity-1 improvement signal
}

var _ core.BoundBus = (*Incumbent)(nil)

// NewIncumbent returns an empty bus: Upper is +Inf, Lower is 0.
func NewIncumbent() *Incumbent {
	inc := &Incumbent{updates: make(chan struct{}, 1)}
	inc.upper.Store(math.Float64bits(math.Inf(1)))
	inc.lower.Store(math.Float64bits(0))
	return inc
}

// Upper returns the incumbent makespan, +Inf when none has been published.
func (b *Incumbent) Upper() float64 { return math.Float64frombits(b.upper.Load()) }

// Lower returns the certified lower bound, 0 when none has been published.
func (b *Incumbent) Lower() float64 { return math.Float64frombits(b.lower.Load()) }

// PublishUpper records a feasible makespan; it reports whether the
// incumbent strictly improved. Non-finite and negative values are ignored.
func (b *Incumbent) PublishUpper(v float64) bool {
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return false
	}
	for {
		old := b.upper.Load()
		if v >= math.Float64frombits(old) {
			return false
		}
		if b.upper.CompareAndSwap(old, math.Float64bits(v)) {
			b.signal()
			return true
		}
	}
}

// PublishLower records a certified lower bound; it reports whether the
// strongest known bound strictly improved. Non-finite and non-positive
// values are ignored (0 is the empty bound already).
func (b *Incumbent) PublishLower(v float64) bool {
	if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
		return false
	}
	for {
		old := b.lower.Load()
		if v <= math.Float64frombits(old) {
			return false
		}
		if b.lower.CompareAndSwap(old, math.Float64bits(v)) {
			b.signal()
			return true
		}
	}
}

// Gap returns the relative optimality gap Upper/Lower − 1, or +Inf while
// either side is still missing. A non-positive gap means the incumbent is
// proven optimal (up to floating-point slack of the publishers).
func (b *Incumbent) Gap() float64 {
	u, l := b.Upper(), b.Lower()
	if l <= 0 || math.IsInf(u, 1) {
		return math.Inf(1)
	}
	return u/l - 1
}

// Updates returns a channel that receives a signal after bound
// improvements. The channel has capacity 1 and publishers never block on
// it, so a reader sees at least one signal for any improvement that
// happened since it last drained the channel (coalesced, not one-per-publish).
func (b *Incumbent) Updates() <-chan struct{} { return b.updates }

func (b *Incumbent) signal() {
	select {
	case b.updates <- struct{}{}:
	default:
	}
}
