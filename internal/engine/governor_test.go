package engine

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestGovernorTryAcquireBounds(t *testing.T) {
	g := NewGovernor(3)
	if g.Cap() != 3 {
		t.Fatalf("Cap = %d, want 3", g.Cap())
	}
	if got := g.TryAcquire(2); got != 2 {
		t.Fatalf("TryAcquire(2) = %d, want 2", got)
	}
	// Only one token left: the grant is short and counts a degradation.
	if got := g.TryAcquire(5); got != 1 {
		t.Fatalf("TryAcquire(5) = %d, want 1", got)
	}
	if got := g.TryAcquire(1); got != 0 {
		t.Fatalf("TryAcquire(1) at saturation = %d, want 0", got)
	}
	st := g.Stats()
	if st.InUse != 3 || st.Peak != 3 || st.Budget != 3 {
		t.Fatalf("stats = %+v, want inUse=peak=budget=3", st)
	}
	if st.Degradations != 2 {
		t.Fatalf("degradations = %d, want 2", st.Degradations)
	}
	g.Release(3)
	if st := g.Stats(); st.InUse != 0 {
		t.Fatalf("inUse after release = %d, want 0", st.InUse)
	}
	if got := g.TryAcquire(0); got != 0 {
		t.Fatalf("TryAcquire(0) = %d, want 0", got)
	}
	if st := g.Stats(); st.Degradations != 2 {
		t.Fatalf("TryAcquire(0) must not count a degradation: %d", st.Degradations)
	}
}

func TestGovernorAcquireBlocksAndHandsOff(t *testing.T) {
	g := NewGovernor(1)
	if err := g.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- g.Acquire(context.Background()) }()
	// The waiter must be blocked, not granted.
	select {
	case err := <-got:
		t.Fatalf("second Acquire returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	g.Release(1)
	select {
	case err := <-got:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("waiter never woke after Release")
	}
	st := g.Stats()
	if st.InUse != 1 {
		t.Fatalf("token not transferred: inUse = %d, want 1", st.InUse)
	}
	if st.Waits != 1 {
		t.Fatalf("waits = %d, want 1", st.Waits)
	}
	// The waiter blocked for at least the 20ms probe above, and that wait
	// must be visible in both the cumulative and the max counters.
	if st.WaitTime < 20*time.Millisecond {
		t.Fatalf("WaitTime = %v, want >= 20ms", st.WaitTime)
	}
	if st.MaxWait < 20*time.Millisecond || st.MaxWait > st.WaitTime {
		t.Fatalf("MaxWait = %v, want in [20ms, WaitTime=%v]", st.MaxWait, st.WaitTime)
	}
	g.Release(1)
}

func TestGovernorWaitTimeAccumulates(t *testing.T) {
	g := NewGovernor(1)
	if err := g.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	const waiters = 3
	done := make(chan error, waiters)
	for w := 0; w < waiters; w++ {
		go func() {
			if err := g.Acquire(context.Background()); err != nil {
				done <- err
				return
			}
			time.Sleep(5 * time.Millisecond)
			g.Release(1)
			done <- nil
		}()
	}
	time.Sleep(10 * time.Millisecond)
	g.Release(1)
	for w := 0; w < waiters; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	st := g.Stats()
	if st.Waits != waiters {
		t.Fatalf("waits = %d, want %d", st.Waits, waiters)
	}
	// Each waiter's blocked interval is counted in full, so the cumulative
	// wait exceeds any single max wait under FIFO hand-off chains.
	if st.WaitTime < st.MaxWait {
		t.Fatalf("WaitTime %v < MaxWait %v", st.WaitTime, st.MaxWait)
	}
	if st.MaxWait <= 0 {
		t.Fatalf("MaxWait = %v, want > 0", st.MaxWait)
	}
	// A cancelled waiter's time-in-queue is recorded too.
	if err := g.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	before := g.Stats().WaitTime
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if err := g.Acquire(ctx); err == nil {
		t.Fatal("Acquire at saturation with expiring ctx succeeded")
	}
	if after := g.Stats().WaitTime; after <= before {
		t.Fatalf("cancelled wait not recorded: WaitTime %v -> %v", before, after)
	}
	g.Release(1)
}

func TestGovernorAcquireHonorsContext(t *testing.T) {
	g := NewGovernor(1)
	if err := g.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() { got <- g.Acquire(ctx) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-got:
		if err != context.Canceled {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("cancelled waiter never returned")
	}
	// The abandoned waiter must not have leaked a slot.
	g.Release(1)
	if got := g.TryAcquire(1); got != 1 {
		t.Fatalf("token leaked by cancelled waiter: TryAcquire = %d, want 1", got)
	}
	g.Release(1)
}

func TestGovernorConcurrentInvariant(t *testing.T) {
	const budget = 3
	g := NewGovernor(budget)
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if err := g.Acquire(context.Background()); err != nil {
					t.Error(err)
					return
				}
				extra := g.TryAcquire(w % 4)
				g.Release(extra + 1)
			}
		}(w)
	}
	wg.Wait()
	st := g.Stats()
	if st.InUse != 0 {
		t.Fatalf("inUse after drain = %d, want 0", st.InUse)
	}
	if st.Peak > budget {
		t.Fatalf("peak %d exceeded budget %d", st.Peak, budget)
	}
}

func TestGovernorDefaultBudget(t *testing.T) {
	if got := NewGovernor(0).Cap(); got < 1 {
		t.Fatalf("default budget = %d, want >= 1", got)
	}
}
