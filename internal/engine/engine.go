// Package engine is the solver orchestration layer: a registry of pluggable
// Solver implementations with capability matching, automatic selection of
// the strongest applicable algorithm, and a portfolio mode that races all
// applicable solvers concurrently under a shared context and keeps the best
// schedule.
//
// Every algorithm of the paper (and every future one — new LP backends,
// heuristics, sharded searches) plugs in behind the Solver interface; the
// public sched API and the cmd tools dispatch exclusively through a
// Registry. Capability matching covers the machine environment (core.Kind),
// the class-uniform structural preconditions of Theorems 3.10/3.11, and
// instance-size guards for the exponential exact search.
package engine

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
)

// Options is the unified tuning surface passed to every solver. Each solver
// reads only the fields it understands; zero values mean per-solver
// defaults.
type Options struct {
	// Eps is the accuracy parameter for the PTAS (default 1/2).
	Eps float64
	// Precision is the relative precision of dual-approximation binary
	// searches (default per solver).
	Precision float64
	// Seed drives randomized solvers (the LP rounding); 0 means the fixed
	// default seed, so runs are deterministic unless a seed is chosen.
	Seed int64
	// MaxJobs overrides the job-count guard of the exact branch-and-bound
	// (0 means exact.MaxJobs). It also widens the capability match: an
	// instance with at most MaxJobs jobs is considered in-scope for the
	// exact solver.
	MaxJobs int
	// NodeLimit caps the branch-and-bound search nodes (0 = unlimited).
	NodeLimit int64
	// NodeCap bounds the PTAS dynamic-program nodes per guess (0 = solver
	// default).
	NodeCap int64
	// RoundingC is the iteration multiplier of the randomized rounding
	// (0 = solver default).
	RoundingC int
	// LPBackend selects the LP solver backend behind solvers that solve
	// LPs (the randomized rounding's per-guess feasibility tests):
	// "sparse" (warm-started revised simplex, the default), or "dense"
	// (the reference dense solver). Unknown names are a solve-time error.
	LPBackend string
	// LPNoPresolve disables the LP presolve + equilibration-scaling
	// pipeline that otherwise runs ahead of cold LP backend builds.
	LPNoPresolve bool
	// SearchWorkers is the speculative parallelism of dual-approximation
	// binary searches (dual.Speculate): solvers that search over a
	// makespan guess (PTAS, randomized rounding, the two class-uniform
	// special cases) evaluate that many guesses concurrently per round,
	// each worker on its own warm-start state (the rounding clones its LP
	// relaxation per worker). 0 or 1 keeps the sequential bisection. With
	// Budget set the width is additionally governed live: each round runs
	// as wide as the global budget grants, degrading toward sequential
	// bisection on a saturated box.
	SearchWorkers int
	// LocalSearch post-optimizes the chosen schedule with the
	// best-improvement descent of internal/improve before returning it.
	LocalSearch bool
	// Gap, in portfolio mode, is the relative optimality gap at which the
	// race terminates early: once the shared incumbent makespan is within a
	// factor 1+Gap of the best certified lower bound, the remaining racers
	// are cancelled and the incumbent is returned as certified-good-enough.
	// 0 disables early termination (racers run to completion or deadline).
	Gap float64
	// Bounds, when non-nil, connects the solve to a live incumbent bus
	// (core.BoundBus): solvers prime their searches from its bounds and
	// publish improved makespans and certified lower bounds back as they
	// appear. Portfolio supplies its own shared bus to its members; a
	// caller-provided bus seeds that race and receives its final bounds,
	// enabling warm restarts across repeated solves.
	Bounds core.BoundBus
	// Budget, when non-nil, is the engine's global concurrency budget (the
	// governor): portfolio member launches and speculative search width
	// draw their extra parallelism from it, acquire-or-degrade, instead of
	// clamping independently. The solve itself is assumed to already hold
	// one guaranteed token (the engine admits solves through the blocking
	// side of the governor), so solvers only ever use the non-blocking
	// TryAcquire/Release. Nil means ungoverned: each layer falls back to
	// its local GOMAXPROCS clamp.
	Budget core.TokenBudget
	// Warm, when non-nil, carries re-solve knowledge from a previous solve
	// of a related instance (see core.WarmStart): a certified lower bound,
	// an accept-backed upper bracket edge, a feasible fallback witness, and
	// optionally solver-specific retained state. Solvers that run dual
	// searches open their bracket on it instead of bootstrapping cold;
	// solvers that cannot use it ignore it. Correctness must never depend
	// on Warm — it is a latency hint with certified components.
	Warm *core.WarmStart
	// Retain, when non-nil, asks the solver to hand back its retainable
	// warm-start state after the solve (called at most once, before Solve
	// returns). Only solvers with such state call it (the randomized
	// rounding retains its LP relaxation and the search's accepted bracket
	// edge); the engine's resolve path combines it with the Result into a
	// SolveState.
	Retain func(RetainedState)
}

// Caps declares what instances a solver can handle and how strong it is.
type Caps struct {
	// Kinds lists the machine environments the solver accepts.
	Kinds []core.Kind
	// NeedsClassUniformRA requires the Theorem 3.10 structure: all jobs of
	// a class share one eligible machine set.
	NeedsClassUniformRA bool
	// NeedsClassUniformPT requires the Theorem 3.11 structure: all jobs of
	// a class have identical processing times per machine.
	NeedsClassUniformPT bool
	// MaxJobs, when positive, guards the solver against instances with
	// more jobs (used by the exponential exact search).
	MaxJobs int
	// Guarantee is the human-readable approximation guarantee ("1+O(ε)",
	// "2-approximation", "exact", "none").
	Guarantee string
	// Priority orders automatic selection: among applicable solvers the
	// highest priority wins (the strongest guarantee for the environment).
	Priority int
}

// SupportsKind reports whether the solver accepts the machine environment.
func (c Caps) SupportsKind(k core.Kind) bool {
	for _, ck := range c.Kinds {
		if ck == k {
			return true
		}
	}
	return false
}

// Solver is one schedulable algorithm. Solve must observe ctx: on
// cancellation it returns promptly, either with its best feasible schedule
// so far (Result.Note explaining the early stop) or with an error when it
// has nothing feasible yet.
type Solver interface {
	Name() string
	Capabilities() Caps
	Solve(ctx context.Context, in *core.Instance, opt Options) (core.Result, error)
}

// Registry holds named solvers and answers capability queries. The zero
// value is not usable; create with NewRegistry (empty) or Default (all
// paper solvers registered).
type Registry struct {
	mu      sync.RWMutex
	solvers map[string]Solver
	order   []string // registration order, for deterministic iteration
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{solvers: map[string]Solver{}}
}

// Register adds a solver; a duplicate name is an error.
func (r *Registry) Register(s Solver) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	name := s.Name()
	if name == "" {
		return fmt.Errorf("engine: solver with empty name")
	}
	if _, dup := r.solvers[name]; dup {
		return fmt.Errorf("engine: solver %q already registered", name)
	}
	r.solvers[name] = s
	r.order = append(r.order, name)
	return nil
}

// MustRegister is Register panicking on error (for static solver sets).
func (r *Registry) MustRegister(s Solver) {
	if err := r.Register(s); err != nil {
		panic(err)
	}
}

// Get looks a solver up by name.
func (r *Registry) Get(name string) (Solver, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.solvers[name]
	return s, ok
}

// Names returns the registered solver names in registration order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.order...)
}

// Solvers returns the registered solvers in registration order.
func (r *Registry) Solvers() []Solver {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Solver, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.solvers[name])
	}
	return out
}

// applies reports whether the solver's capabilities match the instance
// under the given options (environment, structure, size guard).
func applies(s Solver, in *core.Instance, opt Options) bool {
	caps := s.Capabilities()
	if !caps.SupportsKind(in.Kind) {
		return false
	}
	if guard := caps.MaxJobs; guard > 0 {
		// opt.MaxJobs replaces the guard outright (in either direction),
		// matching how the exact solver itself interprets it.
		if opt.MaxJobs > 0 {
			guard = opt.MaxJobs
		}
		if in.N > guard {
			return false
		}
	}
	if caps.NeedsClassUniformRA && !HasClassUniformRA(in) {
		return false
	}
	if caps.NeedsClassUniformPT && !HasClassUniformPT(in) {
		return false
	}
	return true
}

// Applicable returns the solvers whose capabilities match the instance,
// strongest (highest Priority) first; ties keep registration order.
func (r *Registry) Applicable(in *core.Instance, opt Options) []Solver {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []Solver
	for _, name := range r.order {
		if s := r.solvers[name]; applies(s, in, opt) {
			out = append(out, s)
		}
	}
	sort.SliceStable(out, func(a, b int) bool {
		return out[a].Capabilities().Priority > out[b].Capabilities().Priority
	})
	return out
}

// Select returns the strongest applicable solver for the instance: the
// PTAS for identical/uniform machines, the 2-approximation for
// class-uniform restricted assignment, the 3-approximation for
// class-uniform processing times, randomized rounding for general
// unrelated machines, with the baselines as last resorts.
func (r *Registry) Select(in *core.Instance, opt Options) (Solver, error) {
	app := r.Applicable(in, opt)
	if len(app) == 0 {
		return nil, fmt.Errorf("engine: no registered solver is applicable to %v", in)
	}
	return app[0], nil
}

// Solve picks the strongest applicable solver and runs it under ctx,
// applying the optional local-search post-pass.
func (r *Registry) Solve(ctx context.Context, in *core.Instance, opt Options) (core.Result, error) {
	s, err := r.Select(in, opt)
	if err != nil {
		return core.Result{}, err
	}
	return r.run(ctx, s, in, opt)
}

// SolveNamed runs the registered solver with the given name under ctx,
// applying the optional local-search post-pass (the path named-algorithm
// dispatch must use so Options.LocalSearch is honored).
func (r *Registry) SolveNamed(ctx context.Context, name string, in *core.Instance, opt Options) (core.Result, error) {
	s, ok := r.Get(name)
	if !ok {
		return core.Result{}, fmt.Errorf("engine: solver %q not registered", name)
	}
	return r.run(ctx, s, in, opt)
}

func (r *Registry) run(ctx context.Context, s Solver, in *core.Instance, opt Options) (core.Result, error) {
	res, err := s.Solve(ctx, in, opt)
	if err != nil {
		return core.Result{}, fmt.Errorf("engine: %s: %w", s.Name(), err)
	}
	return postProcess(ctx, in, res, opt), nil
}
