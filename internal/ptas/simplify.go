package ptas

import (
	"math"

	"repro/internal/core"
)

// simp is the simplified instance for one makespan guess T, together with
// everything needed to map a schedule on it back to the original instance.
type simp struct {
	in *core.Instance

	eps, delta, gamma float64
	// T is the original guess; T1 is the capacity bound the DP works
	// against. The paper charges a flat (1+ε)⁵ (one (1+ε) per
	// simplification step, Lemmas 2.2–2.4); we instantiate each lemma's
	// argument with the inflation *actually incurred* on this instance —
	// machine-removal volume, lifting volume, whether placeholders were
	// created, and the realized size/speed rounding ratios — which is
	// sound for rejection (any schedule with makespan T for the original
	// instance maps to one with makespan ≤ T1 on the simplified instance)
	// and far tighter in practice. T1 ≤ (1+ε)⁵·T always holds.
	T, T1 float64

	// Machines kept after the slow-machine removal, sorted by rounded
	// speed ascending.
	speed []float64 // rounded speeds
	origM []int     // simplified machine -> original machine
	vmin  float64   // smallest rounded speed

	// Jobs of the simplified instance: the kept original jobs plus the
	// placeholders of Lemma 2.3, with rounded sizes.
	size    []float64
	class   []int
	origJob []int // -1 for placeholders

	// setup[k] is the rounded setup size; phSize[k] the (pre-rounding)
	// placeholder size ε·s_k used when mapping back; smallJobs[k] the
	// original jobs replaced by placeholders.
	setup     []float64
	phSize    []float64
	smallJobs [][]int

	// Group structure (see groups below). G is the largest group index
	// holding a machine.
	G int
}

// simplify builds the simplified instance for guess T, or returns nil when
// T is trivially infeasible (some job cannot fit anywhere even alone).
func simplify(in *core.Instance, T float64, eps float64) *simp {
	// Upfront rejection on the *original* data: every job must fit with
	// its setup on some machine.
	origSpeed := func(i int) float64 {
		if in.Kind == core.Uniform {
			return in.Speed[i]
		}
		return 1
	}
	for j := 0; j < in.N; j++ {
		fits := false
		need := in.JobSize[j] + in.SetupSize[in.Class[j]]
		for i := 0; i < in.M; i++ {
			if need <= T*origSpeed(i)+core.Eps {
				fits = true
				break
			}
		}
		if !fits {
			return nil
		}
	}

	s := &simp{
		in:    in,
		eps:   eps,
		delta: eps * eps,
		gamma: eps * eps * eps,
		T:     T,
	}

	// Step 1 (Lemma 2.2): drop machines slower than ε·vmax/m.
	vmax := 0.0
	for i := 0; i < in.M; i++ {
		if v := origSpeed(i); v > vmax {
			vmax = v
		}
	}
	minKeep := eps * vmax / float64(in.M)
	var keptSpeeds []float64
	removedSpeed := 0.0
	for i := 0; i < in.M; i++ {
		if v := origSpeed(i); v >= minKeep-core.Eps {
			s.origM = append(s.origM, i)
			keptSpeeds = append(keptSpeeds, v)
		} else {
			removedSpeed += v
		}
	}
	origVmin := math.Inf(1)
	for _, v := range keptSpeeds {
		if v < origVmin {
			origVmin = v
		}
	}
	// Lemma 2.2 charge: the removed machines' load (≤ T·Σ_removed v_i)
	// moves onto the fastest machine.
	factorRemoval := 1 + removedSpeed/vmax

	// Step 1 continued: lift negligible job and setup sizes.
	floor := eps * origVmin * T / float64(in.N+in.K)
	liftVolume := 0.0
	liftedJob := make([]float64, in.N)
	for j := range liftedJob {
		liftedJob[j] = math.Max(in.JobSize[j], floor)
		liftVolume += liftedJob[j] - in.JobSize[j]
	}
	liftedSetup := make([]float64, in.K)
	for k := range liftedSetup {
		liftedSetup[k] = math.Max(in.SetupSize[k], floor)
		liftVolume += liftedSetup[k] - in.SetupSize[k]
	}
	// Lemma 2.2 charge: the lift volume lands on some machine, costing at
	// most liftVolume/(v_min·T) relative to its capacity.
	factorLift := 1.0
	if liftVolume > 0 {
		factorLift = 1 + liftVolume/(origVmin*T)
	}

	// Step 2 (Lemma 2.3): replace jobs with p_j ≤ ε·s_k by placeholders of
	// size ε·s_k.
	s.phSize = make([]float64, in.K)
	s.smallJobs = make([][]int, in.K)
	smallTotal := make([]float64, in.K)
	for j := 0; j < in.N; j++ {
		k := in.Class[j]
		if liftedJob[j] <= eps*liftedSetup[k]+core.Eps {
			s.smallJobs[k] = append(s.smallJobs[k], j)
			smallTotal[k] += liftedJob[j]
		} else {
			s.size = append(s.size, liftedJob[j])
			s.class = append(s.class, k)
			s.origJob = append(s.origJob, j)
		}
	}
	for k := 0; k < in.K; k++ {
		s.phSize[k] = eps * liftedSetup[k]
		if len(s.smallJobs[k]) == 0 {
			continue
		}
		count := int(math.Ceil(smallTotal[k]/s.phSize[k] - core.Eps))
		if count < 1 {
			count = 1
		}
		for c := 0; c < count; c++ {
			s.size = append(s.size, s.phSize[k])
			s.class = append(s.class, k)
			s.origJob = append(s.origJob, -1)
		}
	}

	// Lemma 2.3 charge: one (1+ε) when any placeholder exists.
	factorPH := 1.0
	for k := 0; k < in.K; k++ {
		if len(s.smallJobs[k]) > 0 {
			factorPH = 1 + eps
			break
		}
	}

	// Step 3 (Lemma 2.4): round sizes up on the grid 2^e·(1+ℓε) and speeds
	// down geometrically, charging the realized rounding ratios.
	factorSize := 1.0
	for j := range s.size {
		r := roundSizeUp(s.size[j], eps)
		if s.size[j] > 0 && r/s.size[j] > factorSize {
			factorSize = r / s.size[j]
		}
		s.size[j] = r
	}
	s.setup = make([]float64, in.K)
	for k := 0; k < in.K; k++ {
		s.setup[k] = roundSizeUp(liftedSetup[k], eps)
		if liftedSetup[k] > 0 && s.setup[k]/liftedSetup[k] > factorSize {
			factorSize = s.setup[k] / liftedSetup[k]
		}
	}
	factorSpeed := 1.0
	s.speed = make([]float64, len(keptSpeeds))
	for i, v := range keptSpeeds {
		s.speed[i] = roundSpeedDown(v, origVmin, eps)
		if r := v / s.speed[i]; r > factorSpeed {
			factorSpeed = r
		}
	}
	s.T1 = T * factorRemoval * factorLift * factorPH * factorSize * factorSpeed
	// Sort machines by rounded speed ascending (stable on original index).
	order := make([]int, len(s.speed))
	for i := range order {
		order[i] = i
	}
	for a := 1; a < len(order); a++ { // insertion sort: m is small and this keeps it stable
		for b := a; b > 0 && s.speed[order[b]] < s.speed[order[b-1]]; b-- {
			order[b], order[b-1] = order[b-1], order[b]
		}
	}
	speed2 := make([]float64, len(order))
	origM2 := make([]int, len(order))
	for pos, idx := range order {
		speed2[pos] = s.speed[idx]
		origM2[pos] = s.origM[idx]
	}
	s.speed, s.origM = speed2, origM2
	s.vmin = s.speed[0]

	// Group bookkeeping.
	s.G = 0
	for i := range s.speed {
		if g := s.groupHi(i); g > s.G {
			s.G = g
		}
	}
	return s
}

// roundSizeUp rounds t up to the next value of the form 2^e·(1 + ℓ·ε) with
// e = ⌊log₂ t⌋ (the rounding of Gálvez et al. used in the paper).
func roundSizeUp(t, eps float64) float64 {
	if t <= 0 {
		return 0
	}
	e := math.Floor(math.Log2(t))
	base := math.Pow(2, e)
	l := math.Ceil((t - base) / (eps * base))
	return base + l*eps*base
}

// roundSpeedDown rounds v down to vmin·(1+ε)^⌊log_{1+ε}(v/vmin)⌋.
func roundSpeedDown(v, vmin, eps float64) float64 {
	k := math.Floor(math.Log(v/vmin) / math.Log(1+eps))
	if k < 0 {
		k = 0
	}
	return vmin * math.Pow(1+eps, k)
}

// --- speed groups (Section 2, "Preliminaries") -----------------------------

// vLow returns v̌_g = vmin/γ^{g−1}, the lower end of group g; the group is
// the speed interval [v̌_g, v̌_{g+2}).
func (s *simp) vLow(g int) float64 {
	return s.vmin * math.Pow(1/s.gamma, float64(g-1))
}

// groupHi returns the larger of the two groups machine i belongs to (every
// speed lies in exactly two consecutive groups). The machine "leaves" the
// DP's sliding window after group groupHi is processed.
func (s *simp) groupHi(i int) int {
	r := math.Log(s.speed[i]/s.vmin) / math.Log(1/s.gamma)
	return int(math.Floor(r+1e-9)) + 1
}

// inGroup reports whether machine i belongs to group g.
func (s *simp) inGroup(i, g int) bool {
	hi := s.groupHi(i)
	return g == hi || g == hi-1
}

// relTol is the relative tolerance for group-boundary comparisons.
const relTol = 1e-9

// nativeGroup returns the native group of a job size p: the smallest g
// whose speed range [v̌_g, v̌_{g+2}) contains the whole interval
// [p/T1, p/(ε·T1)] of speeds for which p is big. May be negative (p small
// everywhere) but never exceeds G for sizes that fit on the fastest
// machine.
func (s *simp) nativeGroup(p float64) int {
	r := math.Log(p/(s.T1*s.vmin)) / math.Log(1/s.gamma)
	g := int(math.Floor(r)) - 2
	for ; ; g++ {
		lowOK := p/s.T1 >= s.vLow(g)*(1-relTol)
		highOK := p/(s.eps*s.T1) <= s.vLow(g+2)*(1+relTol)
		if lowOK && highOK {
			return g
		}
		if g > s.G+6 {
			return g // defensive; callers reject sizes this large upfront
		}
	}
}

// coreGroup returns the core group of class k: the smallest g whose speed
// range contains the whole interval [s_k/T1, s_k/(γ·T1)) of possible
// core-machine speeds of k.
func (s *simp) coreGroup(k int) int {
	sk := s.setup[k]
	if sk <= 0 {
		return math.MinInt32 / 4 // zero setups: treat as far below all groups
	}
	r := math.Log(sk/(s.T1*s.vmin)) / math.Log(1/s.gamma)
	g := int(math.Floor(r)) - 2
	for ; ; g++ {
		lowOK := sk/s.T1 >= s.vLow(g)*(1-relTol)
		highOK := sk/(s.gamma*s.T1) <= s.vLow(g+2)*(1+relTol)
		if lowOK && highOK {
			return g
		}
		if g > s.G+6 {
			return g
		}
	}
}

// isCore reports whether simplified job j is a core job of its class
// (ε·s_k ≤ p < s_k/δ); larger jobs are fringe jobs.
func (s *simp) isCore(j int) bool {
	k := s.class[j]
	if s.setup[k] <= 0 {
		return false // zero setup: every job is a fringe job of its class
	}
	return s.size[j] < s.setup[k]/s.delta
}

// capacity returns the DP load capacity of machine i: v_i·T1.
func (s *simp) capacity(i int) float64 { return s.speed[i] * s.T1 }

// mapBack translates a complete assignment of simplified jobs to simplified
// machines into a schedule for the original instance: real jobs map
// directly, and the small jobs of each class are distributed over the
// machines that received that class's placeholders (over-packing each by at
// most one job, as in Lemma 2.3).
func (s *simp) mapBack(assign []int) *core.Schedule {
	in := s.in
	sched := core.NewSchedule(in.N)
	phCount := map[[2]int]int{} // (simplified machine, class) -> placeholders
	for j, i := range assign {
		if s.origJob[j] >= 0 {
			sched.Assign[s.origJob[j]] = s.origM[i]
		} else {
			phCount[[2]int{i, s.class[j]}]++
		}
	}
	for k := 0; k < in.K; k++ {
		jobs := s.smallJobs[k]
		if len(jobs) == 0 {
			continue
		}
		type slot struct {
			simM     int
			capacity float64
		}
		var slots []slot
		for i := range s.speed {
			if c := phCount[[2]int{i, k}]; c > 0 {
				slots = append(slots, slot{i, float64(c) * s.phSize[k]})
			}
		}
		if len(slots) == 0 {
			// Defensive: placeholders exist whenever small jobs do, so
			// this only triggers on construction bugs; use the fastest
			// machine.
			slots = append(slots, slot{len(s.speed) - 1, math.Inf(1)})
		}
		ji := 0
		for si := 0; si < len(slots) && ji < len(jobs); si++ {
			filled := 0.0
			for ji < len(jobs) && filled < slots[si].capacity-core.Eps {
				j := jobs[ji]
				sched.Assign[j] = s.origM[slots[si].simM]
				filled += in.JobSize[j]
				ji++
			}
		}
		for ; ji < len(jobs); ji++ {
			sched.Assign[jobs[ji]] = s.origM[slots[len(slots)-1].simM]
		}
	}
	return sched
}
