package ptas

import (
	"context"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/boundtest"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/gen"
)

func TestRoundSizeUp(t *testing.T) {
	eps := 0.5
	cases := []struct{ in, wantAtLeast float64 }{
		{1, 1}, {1.2, 1.2}, {3, 3}, {5, 5}, {7.3, 7.3},
	}
	for _, c := range cases {
		got := roundSizeUp(c.in, eps)
		if got < c.in-core.Eps {
			t.Errorf("roundSizeUp(%v) = %v, must not round down", c.in, got)
		}
		if got > c.in*(1+eps)+core.Eps {
			t.Errorf("roundSizeUp(%v) = %v, exceeds (1+ε) factor", c.in, got)
		}
	}
	// Grid membership: result is 2^e(1+ℓε).
	got := roundSizeUp(1.3, eps)
	if math.Abs(got-1.5) > core.Eps {
		t.Errorf("roundSizeUp(1.3, 0.5) = %v, want 1.5", got)
	}
}

func TestRoundSpeedDown(t *testing.T) {
	eps := 0.5
	for _, v := range []float64{1, 1.4, 2, 3.7, 9} {
		got := roundSpeedDown(v, 1, eps)
		if got > v+core.Eps {
			t.Errorf("roundSpeedDown(%v) = %v, must not round up", v, got)
		}
		if got < v/(1+eps)-core.Eps {
			t.Errorf("roundSpeedDown(%v) = %v, lost more than (1+ε)", v, got)
		}
	}
}

func TestGroupMembershipInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	in := gen.Uniform(rng, gen.Params{N: 10, M: 5, K: 2, SpeedMax: 9})
	s := simplify(in, 100, 0.5)
	if s == nil {
		t.Fatal("simplify rejected a generous guess")
	}
	for i := range s.speed {
		count := 0
		for g := -3; g <= s.G+3; g++ {
			if s.inGroup(i, g) {
				count++
			}
		}
		if count != 2 {
			t.Errorf("machine %d belongs to %d groups, want 2", i, count)
		}
	}
}

func TestNativeGroupContainsBigInterval(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	in := gen.Uniform(rng, gen.Params{N: 14, M: 4, K: 2, SpeedMax: 6})
	s := simplify(in, 50, 0.5)
	if s == nil {
		t.Fatal("simplify rejected a generous guess")
	}
	for j := range s.size {
		p := s.size[j]
		g := s.nativeGroup(p)
		// The native group must contain the whole interval of speeds for
		// which p is big: [p/T1, p/(ε·T1)] ⊆ [v̌_g, v̌_{g+2}).
		if p/s.T1 < s.vLow(g)-core.Eps {
			t.Errorf("job %d: big-interval start %v below group %d start %v", j, p/s.T1, g, s.vLow(g))
		}
		if p/(s.eps*s.T1) >= s.vLow(g+2)+core.Eps {
			t.Errorf("job %d: big-interval end %v beyond group %d end %v", j, p/(s.eps*s.T1), g, s.vLow(g+2))
		}
	}
}

func TestCoreGroupContainsCoreMachineInterval(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := gen.Uniform(rng, gen.Params{N: 10, M: 4, K: 3, SpeedMax: 6})
	s := simplify(in, 80, 0.5)
	if s == nil {
		t.Fatal("simplify rejected a generous guess")
	}
	for k := 0; k < in.K; k++ {
		g := s.coreGroup(k)
		lo := s.setup[k] / s.T1
		hi := s.setup[k] / (s.gamma * s.T1)
		if lo < s.vLow(g)-core.Eps {
			t.Errorf("class %d: core-speed start %v below group %d start %v", k, lo, g, s.vLow(g))
		}
		if hi > s.vLow(g+2)+core.Eps {
			t.Errorf("class %d: core-speed end %v beyond group %d end %v", k, hi, g, s.vLow(g+2))
		}
	}
}

func TestSimplifyRejectsImpossibleGuess(t *testing.T) {
	in, err := core.NewIdentical([]float64{10}, []int{0}, []float64{5}, 2)
	if err != nil {
		t.Fatalf("NewIdentical: %v", err)
	}
	if s := simplify(in, 14, 0.5); s != nil {
		t.Error("guess below p+s accepted")
	}
	if s := simplify(in, 15, 0.5); s == nil {
		t.Error("feasible guess rejected")
	}
}

func TestMapBackCoversAllJobs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := gen.Params{N: 1 + rng.Intn(20), M: 1 + rng.Intn(4), K: 1 + rng.Intn(3)}
		var in *core.Instance
		if rng.Intn(2) == 0 {
			in = gen.Identical(rng, p)
		} else {
			in = gen.Uniform(rng, p)
		}
		// Generous guess so simplification succeeds.
		T := 10 * (exact.VolumeLowerBound(in) + 1000)
		s := simplify(in, T, 0.5)
		if s == nil {
			return false
		}
		// Assign every simplified job to machine 0 and map back.
		assign := make([]int, len(s.size))
		sched := s.mapBack(assign)
		return sched.Complete() && sched.Validate(in) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestScheduleFeasibleOnRandomInstances(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := gen.Params{N: 1 + rng.Intn(10), M: 1 + rng.Intn(3), K: 1 + rng.Intn(3)}
		var in *core.Instance
		if rng.Intn(2) == 0 {
			in = gen.Identical(rng, p)
		} else {
			in = gen.Uniform(rng, p)
		}
		res, _, err := Schedule(context.Background(), in, Options{Eps: 0.5})
		if err != nil {
			return false
		}
		return res.Schedule != nil && res.Schedule.Complete() && res.Schedule.Validate(in) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// The key PTAS test (experiment E2 in miniature): with ε = 1/2 the measured
// ratio must stay below the theoretical (1+O(ε)) envelope; we use the
// concrete bound (1+ε)⁸ ≈ 1.5⁸ᐟ⁵ · search slack, far below the LPT factor,
// and additionally check the certified lower bound is sound.
func TestScheduleNearOptimalSmall(t *testing.T) {
	envelope := math.Pow(1.5, 8) // extremely generous; typical ratios ≈ 1.0–1.3
	worst := 1.0
	checked := 0
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := gen.Params{N: 5 + rng.Intn(5), M: 2 + rng.Intn(2), K: 1 + rng.Intn(2)}
		var in *core.Instance
		if seed%2 == 0 {
			in = gen.Identical(rng, p)
		} else {
			in = gen.Uniform(rng, p)
		}
		_, opt, bst := exact.BranchAndBound(context.Background(), in, exact.Options{})
		proven := bst.Proven
		if !proven || opt <= 0 {
			continue
		}
		res, stats, err := Schedule(context.Background(), in, Options{Eps: 0.5})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		r := res.Makespan / opt
		if r > worst {
			worst = r
		}
		if r > envelope {
			t.Errorf("seed %d: ratio %v exceeds envelope %v (capped=%v)", seed, r, envelope, stats.Capped)
		}
		if !stats.Capped && res.LowerBound > opt+1e-6 {
			t.Errorf("seed %d: certified lower bound %v exceeds optimum %v", seed, res.LowerBound, opt)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no instance checked; test vacuous")
	}
	t.Logf("worst PTAS ratio over %d instances: %.4f", checked, worst)
}

// The defining property of a PTAS: smaller ε gives better schedules. Not a
// per-instance theorem, so the assertion is on the mean ratio over a fixed
// seed set (the same regression the E2 experiment reports).
func TestEpsilonImprovesMeanRatio(t *testing.T) {
	mean := func(eps float64) float64 {
		sum, cnt := 0.0, 0
		for seed := int64(0); seed < 12; seed++ {
			rng := rand.New(rand.NewSource(seed))
			in := gen.Uniform(rng, gen.Params{N: 12, M: 3, K: 3})
			_, opt, bst := exact.BranchAndBound(context.Background(), in, exact.Options{})
			proven := bst.Proven
			if !proven || opt <= 0 {
				continue
			}
			res, _, err := Schedule(context.Background(), in, Options{Eps: eps})
			if err != nil {
				t.Fatalf("eps=%v seed=%d: %v", eps, seed, err)
			}
			sum += res.Makespan / opt
			cnt++
		}
		if cnt == 0 {
			t.Fatal("no instances solvable exactly")
		}
		return sum / float64(cnt)
	}
	coarse := mean(0.5)
	fine := mean(0.125)
	if fine > coarse+0.02 {
		t.Errorf("mean ratio at ε=1/8 (%.4f) worse than at ε=1/2 (%.4f)", fine, coarse)
	}
	if fine > 1.25 {
		t.Errorf("mean ratio at ε=1/8 is %.4f, want close to 1", fine)
	}
}

func TestScheduleBeatsOrMatchesLPTOnSetupHeavy(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	in := gen.Uniform(rng, gen.Params{N: 12, M: 3, K: 2, MinJob: 1, MaxJob: 10, MinSetup: 40, MaxSetup: 60})
	res, _, err := Schedule(context.Background(), in, Options{Eps: 0.5})
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if err := res.Schedule.Validate(in); err != nil {
		t.Fatalf("invalid schedule: %v", err)
	}
	// The PTAS bootstraps from LPT and only keeps improvements, so it can
	// never be worse than the Lemma 2.1 schedule.
	lpt, err := baselineLPT(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan > lpt+core.Eps {
		t.Errorf("PTAS makespan %v worse than its LPT bootstrap %v", res.Makespan, lpt)
	}
}

func TestRejectsUnrelated(t *testing.T) {
	in, err := core.NewUnrelated([][]float64{{1}}, []int{0}, [][]float64{{1}})
	if err != nil {
		t.Fatalf("NewUnrelated: %v", err)
	}
	if _, _, err := Schedule(context.Background(), in, Options{}); err == nil {
		t.Error("PTAS accepted an unrelated instance")
	}
}

func TestFigure1(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	in := gen.Uniform(rng, gen.Params{N: 12, M: 4, K: 3, SpeedMax: 8})
	fig, err := Figure1(in, 200, 0.5)
	if err != nil {
		t.Fatalf("Figure1: %v", err)
	}
	for _, want := range []string{"group 0:", "core group", "native group", "vmin"} {
		if !strings.Contains(fig, want) {
			t.Errorf("figure missing %q:\n%s", want, fig)
		}
	}
	if _, err := Figure1(in, 0.0001, 0.5); err == nil {
		t.Error("Figure1 accepted an infeasible guess")
	}
}

func TestOptionsNormalize(t *testing.T) {
	o := Options{}.normalize()
	if o.Eps != 0.5 || o.NodeCap != 2_000_000 || o.Precision != 0.125 {
		t.Errorf("defaults not applied: %+v", o)
	}
	o2 := Options{Eps: 0.25}.normalize()
	if o2.Precision != 0.0625 {
		t.Errorf("precision should default to eps/4, got %v", o2.Precision)
	}
}

// TestCappedRejectionsNotPublished: a node-capped guess is a suspicion, not
// a certificate, so the guarded bus must keep it off the shared bound bus —
// every published lower bound stays sound against the true optimum.
func TestCappedRejectionsNotPublished(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	in := gen.Uniform(rng, gen.Params{N: 12, M: 3, K: 3})
	_, opt, bst := exact.BranchAndBound(context.Background(), in, exact.Options{})
	if !bst.Proven {
		t.Fatal("reference optimum not proven")
	}
	bus := boundtest.New()
	res, stats, err := Schedule(context.Background(), in, Options{Eps: 0.25, NodeCap: 2, Bounds: bus})
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if !stats.Capped {
		t.Skip("node cap never hit; instance too easy for the guard to matter")
	}
	for _, lb := range bus.LowerPubs {
		if lb > opt+1e-6 {
			t.Errorf("unsound lower bound %v published to the bus (optimum %v)", lb, opt)
		}
	}
	if bus.U > res.Makespan+core.Eps {
		t.Errorf("bus incumbent %v worse than returned makespan %v", bus.U, res.Makespan)
	}
	if bus.U < opt-1e-6 {
		t.Errorf("bus incumbent %v below the optimum %v (infeasible publish)", bus.U, opt)
	}
}
