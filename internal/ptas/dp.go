package ptas

import (
	"context"
	"encoding/binary"
	"math"
	"sort"

	"repro/internal/core"
)

// fracItem describes one fractional object produced by the DP: a job whose
// volume was pushed to faster groups instead of being placed integrally.
type fracItem struct {
	job    int // simplified job index
	class  int
	group  int  // native group (fringe) or core group (core)
	isCore bool // core job of its class vs fringe job
}

// dp executes the paper's dynamic program over the state graph
// (g, k, ι, ξ, µ, λ) as a depth-first search with memoization of failed
// states. Loads are exact, machine symmetry is canonicalized by sorting
// (speed, load, flag) triples, and jobs within one (group, class) list are
// processed in fixed non-increasing size order, which makes the position
// index an exact stand-in for the multiset ι.
type dp struct {
	s   *simp
	cap int64
	ctx context.Context // optional; nil means never cancelled

	nodes     int64
	capped    bool
	cancelled bool

	// static structure
	machines   [][]int // machines of group g (g in [0, G])
	leaveAt    []int   // per machine: the group after which it leaves
	dummyJobs  [][]int // per group: fringe jobs with that native group
	groupClass [][]int // per group: classes with that core group (sorted)
	coreJobs   [][]int // per class: core jobs, non-increasing size
	hasFringe  []bool  // per class: does it have at least one fringe job?

	// start-state fractional volume (groups < 0)
	startL2, startL3 float64
	preFrac          []fracItem

	// mutable search state
	mLoad  []float64
	mFlag  []bool
	assign []int // job -> machine (-1: unassigned/fractional)
	isFrac []bool

	memo    map[string]bool // failed states, keyed by their binary encoding
	keyBuf  []byte          // reused state-key scratch (grown once, then flat)
	cellBuf []memoCell      // reused machine-cell scratch for key canonicalization
	ok      bool
}

// memoCell is one (speed, load, flag) machine triple of a state key;
// sorting the cells factors out machine symmetry.
type memoCell struct {
	speed, load float64
	flag        bool
}

// newDP builds the DP context; returns a context whose solve() immediately
// fails if structural preconditions are violated (fringe job or core class
// above the last group).
func newDP(s *simp, nodeCap int64) *dp {
	d := &dp{
		s:    s,
		cap:  nodeCap,
		memo: map[string]bool{},
	}
	n := len(s.size)
	m := len(s.speed)
	d.machines = make([][]int, s.G+1)
	d.leaveAt = make([]int, m)
	for i := 0; i < m; i++ {
		d.leaveAt[i] = s.groupHi(i)
		for g := 0; g <= s.G; g++ {
			if s.inGroup(i, g) {
				d.machines[g] = append(d.machines[g], i)
			}
		}
	}
	d.dummyJobs = make([][]int, s.G+1)
	d.groupClass = make([][]int, s.G+1)
	d.coreJobs = make([][]int, s.in.K)
	d.hasFringe = make([]bool, s.in.K)
	coreGroupOf := make([]int, s.in.K)
	for k := range coreGroupOf {
		coreGroupOf[k] = s.coreGroup(k)
	}
	structuralFail := false
	for j := 0; j < n; j++ {
		if s.isCore(j) {
			d.coreJobs[s.class[j]] = append(d.coreJobs[s.class[j]], j)
			continue
		}
		d.hasFringe[s.class[j]] = true
		g := s.nativeGroup(s.size[j])
		switch {
		case g > s.G:
			structuralFail = true // cannot be placed or pushed anywhere
		case g >= 0:
			d.dummyJobs[g] = append(d.dummyJobs[g], j)
		default:
			// Small on every machine: fractional from the start.
			d.preFrac = append(d.preFrac, fracItem{job: j, class: s.class[j], group: g})
			if g == -1 {
				d.startL2 += s.size[j]
			} else {
				d.startL3 += s.size[j]
			}
		}
	}
	for k := 0; k < s.in.K; k++ {
		if len(d.coreJobs[k]) == 0 {
			continue
		}
		g := coreGroupOf[k]
		switch {
		case g > s.G:
			structuralFail = true
		case g >= 0:
			d.groupClass[g] = append(d.groupClass[g], k)
		default:
			// All core jobs of this class are fractional from the start;
			// classes without a fringe job additionally carry one setup.
			vol := 0.0
			for _, j := range d.coreJobs[k] {
				d.preFrac = append(d.preFrac, fracItem{job: j, class: k, group: g, isCore: true})
				vol += s.size[j]
			}
			if !d.hasFringe[k] {
				vol += s.setup[k]
			}
			if g == -1 {
				d.startL2 += vol
			} else {
				d.startL3 += vol
			}
		}
	}
	for g := range d.dummyJobs {
		sortDescBySize(s, d.dummyJobs[g])
	}
	for k := range d.coreJobs {
		sortDescBySize(s, d.coreJobs[k])
	}
	for g := range d.groupClass {
		sort.Ints(d.groupClass[g])
	}
	d.mLoad = make([]float64, m)
	d.mFlag = make([]bool, m)
	d.assign = make([]int, n)
	d.isFrac = make([]bool, n)
	for j := range d.assign {
		d.assign[j] = -1
	}
	for _, f := range d.preFrac {
		d.isFrac[f.job] = true
	}
	if structuralFail {
		d.cap = 0 // force immediate (capped=false) failure
		d.memo = nil
	}
	return d
}

func sortDescBySize(s *simp, jobs []int) {
	sort.SliceStable(jobs, func(a, b int) bool { return s.size[jobs[a]] > s.size[jobs[b]] })
}

// solve searches for a relaxed schedule; on success the integral
// assignments are in d.assign and the fractional choices in d.isFrac.
func (d *dp) solve() bool {
	if d.memo == nil {
		return false
	}
	d.ok = d.rec(0, -1, 0, false, 0, d.startL2, d.startL3)
	return d.ok
}

// jobList returns the job list for class position ci within group g:
// ci == -1 is the dummy class (fringe jobs native to g), otherwise the
// ci-th class with core group g.
func (d *dp) jobList(g, ci int) []int {
	if ci < 0 {
		return d.dummyJobs[g]
	}
	return d.coreJobs[d.groupClass[g][ci]]
}

// rec advances the DP: place job ji of class position ci in group g, or
// transition to the next class/group. ξ records whether the current class
// already contributed a fractional setup to λ1.
func (d *dp) rec(g, ci, ji int, xi bool, l1, l2, l3 float64) bool {
	d.nodes++
	if d.nodes > d.cap {
		d.capped = true
		return false
	}
	// Poll the context every 4096 nodes: cheap relative to the state-key
	// hashing below, frequent enough that a deadline stops in-flight
	// expansion within milliseconds. Once cancelled, every further rec
	// call fails immediately so the whole recursion unwinds.
	if d.cancelled {
		return false
	}
	if d.ctx != nil && d.nodes%4096 == 0 && d.ctx.Err() != nil {
		d.cancelled = true
		return false
	}
	if d.failedState(g, ci, ji, xi, l1, l2, l3) {
		return false
	}
	list := d.jobList(g, ci)
	if ji >= len(list) {
		if d.advance(g, ci, l1, l2, l3) {
			return true
		}
		d.markFailed(g, ci, ji, xi, l1, l2, l3)
		return false
	}

	j := list[ji]
	p := d.s.size[j]
	isCore := ci >= 0
	var k int
	if isCore {
		k = d.groupClass[g][ci]
	}

	// Placement edges: one per distinct (speed, load, flag) cell among the
	// group's machines. A machine matching an earlier machine's cell leads
	// to an isomorphic subtree (capacity is a function of speed alone), so
	// only the first is expanded.
	group := d.machines[g]
	for mi, i := range group {
		dup := false
		for _, i2 := range group[:mi] {
			if d.s.speed[i2] == d.s.speed[i] && d.mLoad[i2] == d.mLoad[i] && d.mFlag[i2] == d.mFlag[i] {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		delta := p
		setFlag := false
		if isCore && !d.mFlag[i] {
			delta += d.s.setup[k]
			setFlag = true
		}
		if d.mLoad[i]+delta > d.s.capacity(i)+core.Eps {
			continue
		}
		d.mLoad[i] += delta
		if setFlag {
			d.mFlag[i] = true
		}
		d.assign[j] = i
		if d.rec(g, ci, ji+1, xi, l1, l2, l3) {
			return true
		}
		d.assign[j] = -1
		if setFlag {
			d.mFlag[i] = false
		}
		d.mLoad[i] -= delta
	}

	// Fractional edge: push the job's volume up. Jobs from groups G−1 and
	// G have no group ≥ g+2 to go to, so the edge is pruned there.
	if g <= d.s.G-2 {
		nl1 := l1 + p
		nxi := xi
		if isCore && !d.hasFringe[k] && !xi {
			nl1 += d.s.setup[k]
			nxi = true
		}
		d.isFrac[j] = true
		if d.rec(g, ci, ji+1, nxi, nl1, l2, l3) {
			return true
		}
		d.isFrac[j] = false
	}

	d.markFailed(g, ci, ji, xi, l1, l2, l3)
	return false
}

// advance handles class and group transitions (edge types 1 and 2 of the
// paper) including the λ bookkeeping and the end-state test.
func (d *dp) advance(g, ci int, l1, l2, l3 float64) bool {
	if ci+1 < len(d.groupClass[g]) {
		// Class transition: merge the flag dimension (µ′ resets ζ to 0).
		saved := d.saveFlags(g)
		if d.rec(g, ci+1, 0, false, l1, l2, l3) {
			return true
		}
		d.restoreFlags(saved)
		return false
	}
	if g == d.s.G {
		// End state: W_G = W_{G−1} = 0 and the remaining pushed-up volume
		// must fit into the free space of the group-G machines.
		if l1 > core.Eps || l2 > core.Eps {
			return false
		}
		free := 0.0
		for _, i := range d.machines[g] {
			if f := d.s.capacity(i) - d.mLoad[i]; f > 0 {
				free += f
			}
		}
		return l3 <= free+core.Eps
	}
	// Group transition: machines leaving the window absorb λ3.
	free := 0.0
	for i, at := range d.leaveAt {
		if at == g {
			if f := d.s.capacity(i) - d.mLoad[i]; f > 0 {
				free += f
			}
		}
	}
	nl3 := l2 + maxf(0, l3-free)
	saved := d.saveFlags(g)
	if d.rec(g+1, -1, 0, false, 0, l1, nl3) {
		return true
	}
	d.restoreFlags(saved)
	return false
}

type flagSave struct {
	idx []int
	val []bool
}

func (d *dp) saveFlags(g int) flagSave {
	var fs flagSave
	for _, i := range d.machines[g] {
		if d.mFlag[i] {
			fs.idx = append(fs.idx, i)
			fs.val = append(fs.val, true)
			d.mFlag[i] = false
		}
	}
	return fs
}

func (d *dp) restoreFlags(fs flagSave) {
	for n, i := range fs.idx {
		d.mFlag[i] = fs.val[n]
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// encodeState writes the canonical binary state key into d.keyBuf (reused
// across calls, so it stays allocation-free once grown). Machine symmetry
// is factored out by sorting the (speed, load, flag) triples of the
// *group-relevant* machines (machines of groups > g have load 0 and flag
// false; machines of earlier groups never change again but their loads
// still matter for λ absorption only through past decisions, which the λ
// values capture — they are excluded from the key only when they can no
// longer influence the future, i.e. after their leave transition). Floats
// are keyed by their IEEE bits, which agrees with value equality for every
// value the DP produces (loads are finite and never −0).
func (d *dp) encodeState(g, ci, ji int, xi bool, l1, l2, l3 float64) {
	buf := d.keyBuf[:0]
	buf = binary.LittleEndian.AppendUint32(buf, uint32(g))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(ci+1))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(ji))
	buf = append(buf, boolByte(xi))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(l1))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(l2))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(l3))
	cells := d.cellBuf[:0]
	for i := range d.mLoad {
		if d.leaveAt[i] < g {
			continue // left the window; its free space is folded into λ3
		}
		cells = append(cells, memoCell{d.s.speed[i], d.mLoad[i], d.mFlag[i]})
	}
	// Insertion sort: cell counts are at most m and typically tiny, and
	// sort.Slice would allocate its closure on every node.
	for a := 1; a < len(cells); a++ {
		for b := a; b > 0 && cellLess(cells[b], cells[b-1]); b-- {
			cells[b], cells[b-1] = cells[b-1], cells[b]
		}
	}
	for _, c := range cells {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(c.speed))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(c.load))
		buf = append(buf, boolByte(c.flag))
	}
	d.keyBuf = buf
	d.cellBuf = cells[:0]
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

func cellLess(a, b memoCell) bool {
	if a.speed != b.speed {
		return a.speed < b.speed
	}
	if a.load != b.load {
		return a.load < b.load
	}
	return !a.flag && b.flag
}

// failedState reports whether the state is memoized as failed. The
// string(keyBuf) map index compiles to an allocation-free lookup.
func (d *dp) failedState(g, ci, ji int, xi bool, l1, l2, l3 float64) bool {
	d.encodeState(g, ci, ji, xi, l1, l2, l3)
	return d.memo[string(d.keyBuf)]
}

// markFailed memoizes the state as failed. The key is re-encoded because
// the recursive expansion of the state's children clobbered the shared
// buffer; backtracking restored the loads and flags, so the encoding is
// identical to the one probed on entry.
func (d *dp) markFailed(g, ci, ji int, xi bool, l1, l2, l3 float64) {
	d.encodeState(g, ci, ji, xi, l1, l2, l3)
	d.memo[string(d.keyBuf)] = true
}

// integralAssign returns a copy of the integral job → machine assignment.
func (d *dp) integralAssign() []int {
	return append([]int(nil), d.assign...)
}

// fractionalItems lists all fractional objects (including the pre-start
// ones) with their class/group tags for the conversion step.
func (d *dp) fractionalItems() []fracItem {
	items := append([]fracItem(nil), d.preFrac...)
	for j, f := range d.isFrac {
		if !f || d.assign[j] >= 0 {
			continue
		}
		pre := false
		for _, p := range d.preFrac {
			if p.job == j {
				pre = true
				break
			}
		}
		if pre {
			continue
		}
		it := fracItem{job: j, class: d.s.class[j]}
		if d.s.isCore(j) {
			it.isCore = true
			it.group = d.s.coreGroup(d.s.class[j])
		} else {
			it.group = d.s.nativeGroup(d.s.size[j])
		}
		items = append(items, it)
	}
	return items
}
