package ptas

import "sort"

// convert turns a relaxed schedule (integral assignment + fractional items)
// into a complete assignment of simplified jobs to simplified machines,
// following the constructive proof of Lemma 2.8:
//
//   - fractional core jobs of a class WITH a fringe job (set F1) are
//     attached, at the very end, to a machine hosting one of the class's
//     fringe jobs (the fringe job is ≥ s_k/ε² so the addition is an ε
//     fraction of it);
//   - fractional core jobs of a class without fringe jobs and with total
//     size ≤ s_k/ε (set F2) are packed into a single container together
//     with one setup;
//   - everything else (fringe jobs and large class chunks, set F3) is kept
//     as individual jobs, ordered class-contiguously;
//   - containers and F3 items of group g are filled greedily, in group
//     order, onto machines of groups ≥ g+2 (slowest first), each machine
//     accepting items until its load exceeds v_i·T1.
func convert(s *simp, assign []int, fracs []fracItem) []int {
	out := append([]int(nil), assign...)
	m := len(s.speed)

	// Current loads including setups of classes already present.
	loads := make([]float64, m)
	classOn := make([]map[int]bool, m)
	for i := range classOn {
		classOn[i] = map[int]bool{}
	}
	place := func(j, i int) {
		out[j] = i
		loads[i] += s.size[j]
		k := s.class[j]
		if !classOn[i][k] {
			classOn[i][k] = true
			loads[i] += s.setup[k]
		}
	}
	for j, i := range assign {
		if i >= 0 {
			loads[i] += s.size[j]
			k := s.class[j]
			if !classOn[i][k] {
				classOn[i][k] = true
				loads[i] += s.setup[k]
			}
		}
	}

	// Partition the fractional items.
	type item struct {
		group int
		jobs  []int
		order int // stable tie-break
	}
	var queue []item
	deferred := map[int][]int{} // class -> F1 core jobs
	coreByClass := map[int][]fracItem{}
	for _, f := range fracs {
		if f.isCore {
			coreByClass[f.class] = append(coreByClass[f.class], f)
			continue
		}
		queue = append(queue, item{group: f.group, jobs: []int{f.job}})
	}
	for k, items := range coreByClass {
		total := 0.0
		for _, f := range items {
			total += s.size[f.job]
		}
		switch {
		case total > s.setup[k]/s.eps:
			// F3: large chunk, jobs go individually (class-contiguous
			// since they share one item each but adjacent order values).
			for _, f := range items {
				queue = append(queue, item{group: f.group, jobs: []int{f.job}})
			}
		case s.hasFringeJob(k):
			// F1: attach to a fringe job's machine at the end.
			for _, f := range items {
				deferred[k] = append(deferred[k], f.job)
			}
		default:
			// F2: one container holding the whole chunk (its setup is
			// charged when the first job lands via place()).
			jobs := make([]int, len(items))
			for n, f := range items {
				jobs[n] = f.job
			}
			queue = append(queue, item{group: items[0].group, jobs: jobs})
		}
	}
	for n := range queue {
		queue[n].order = n
	}
	sort.SliceStable(queue, func(a, b int) bool {
		if queue[a].group != queue[b].group {
			return queue[a].group < queue[b].group
		}
		return queue[a].order < queue[b].order
	})

	// Greedy fill: machines ascending by speed; machine i absorbs pending
	// items of groups ≤ leave(i)−2 while its load is below capacity.
	leave := make([]int, m)
	for i := range leave {
		leave[i] = s.groupHi(i)
	}
	qi := 0
	for i := 0; i < m && qi < len(queue); i++ {
		for qi < len(queue) && queue[qi].group <= leave[i]-2 && loads[i] < s.capacity(i) {
			for _, j := range queue[qi].jobs {
				place(j, i)
			}
			qi++
		}
	}
	// Leftovers (possible only through overpacking effects): fastest
	// machine takes them; the measured makespan stays honest.
	for ; qi < len(queue); qi++ {
		for _, j := range queue[qi].jobs {
			place(j, m-1)
		}
	}

	// F1 attachment: all deferred core jobs of class k go to a machine
	// hosting one of k's fringe jobs.
	for k, jobs := range deferred {
		host := -1
		for j, i := range out {
			if i >= 0 && s.class[j] == k && !s.isCore(j) {
				host = i
				break
			}
		}
		if host < 0 {
			// Defensive: hasFringeJob(k) held, so some fringe job exists
			// and everything is placed by now; fall back to least loaded.
			host = 0
			for i := 1; i < m; i++ {
				if loads[i]/s.speed[i] < loads[host]/s.speed[host] {
					host = i
				}
			}
		}
		for _, j := range jobs {
			place(j, host)
		}
	}
	return out
}

// hasFringeJob reports whether class k has at least one fringe job among
// the simplified jobs.
func (s *simp) hasFringeJob(k int) bool {
	for j := range s.size {
		if s.class[j] == k && !s.isCore(j) {
			return true
		}
	}
	return false
}
