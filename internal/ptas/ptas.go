// Package ptas implements the polynomial-time approximation scheme of
// Section 2 of the paper: scheduling with setup times on uniformly related
// machines within a factor 1+O(ε) of the optimum.
//
// The algorithm follows the paper's four phases inside a dual approximation
// (package dual):
//
//  1. Simplify the instance for the current makespan guess T (Lemmas
//     2.2–2.4): drop very slow machines, lift negligible sizes, replace
//     tiny jobs of each class by placeholders of size ε·s_k, and round job
//     sizes, setup sizes and machine speeds.
//  2. Search for a *relaxed schedule* (Section 2, "Relaxed Schedule") with
//     the dynamic program over speed groups: integral jobs go to machines
//     of their native group (fringe jobs) or their class's core group (core
//     jobs); the remaining jobs are fractional and their volume λ is pushed
//     to faster groups subject to the space condition.
//  3. Convert the relaxed schedule into a regular schedule for the
//     simplified instance (the constructive proof of Lemma 2.8).
//  4. Map the schedule back to the original instance (undo placeholders,
//     rounding and machine removal).
//
// The DP is realized as a depth-first search with memoization of failed
// states over the paper's state graph (g, k, ι, ξ, µ, λ). Loads are kept
// exact instead of grid-quantized — the paper's quantization only serves
// the polynomial bound, not correctness — so the procedure accepts a guess
// T exactly when a relaxed schedule with makespan (1+ε)⁵T exists for the
// simplified instance. A configurable node cap keeps worst-case runs
// bounded; hitting it is reported in Stats and treated as a (conservative)
// rejection.
package ptas

import (
	"context"
	"fmt"
	"math"
	"sync"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dual"
	"repro/internal/exact"
)

// Options configures the PTAS.
type Options struct {
	// Eps is the accuracy parameter ε ∈ (0, 1/2]; 1/ε should be an integer
	// (the paper requires 1/ε ∈ Z≥2). Default 1/2.
	Eps float64
	// NodeCap bounds the number of DP search nodes per guess
	// (default 2e6). Exceeding it counts as a rejection and sets
	// Stats.Capped.
	NodeCap int64
	// Precision is the relative precision of the binary search on T;
	// default ε/4 (so the search loss is dominated by ε).
	Precision float64
	// Bounds, when non-nil, connects the run to a live bound exchange (the
	// engine portfolio's incumbent bus): the LPT bootstrap and every
	// accepted guess are published as incumbents the moment they appear,
	// certified rejections as lower bounds, and the binary search skips
	// guesses at or above the live incumbent. Capped or cancelled
	// rejections are never published — they are suspicions, not
	// certificates.
	Bounds core.BoundBus
	// SearchWorkers is the speculative parallelism of the binary search on
	// T (dual.Speculate): that many guesses are simplified and DP-solved
	// concurrently. The decision procedure is stateless per guess
	// (simplify + fresh DP arena), so workers share nothing but the
	// instance. 0 or 1 keeps the sequential bisection.
	SearchWorkers int
	// Budget, when non-nil, governs the search width live (the engine's
	// global concurrency budget): each round runs as wide as the budget
	// grants, degrading toward sequential bisection when the box is
	// saturated. Nil keeps the local GOMAXPROCS clamp.
	Budget core.TokenBudget
}

func (o Options) normalize() Options {
	if o.Eps <= 0 || o.Eps > 0.5 {
		o.Eps = 0.5
	}
	if o.NodeCap <= 0 {
		o.NodeCap = 2_000_000
	}
	if o.Precision <= 0 {
		o.Precision = o.Eps / 4
	}
	return o
}

// Stats reports diagnostic counters accumulated over all guesses.
type Stats struct {
	// Guesses is the number of makespan guesses tested.
	Guesses int
	// Nodes is the total number of DP search nodes explored.
	Nodes int64
	// Capped reports whether any guess hit the node cap (in which case the
	// 1+O(ε) guarantee may be lost for that guess; the returned schedule
	// and the measured makespan remain valid).
	Capped bool
	// Cancelled reports whether the context was cancelled (or its deadline
	// expired) during the search; the returned schedule is the best seen
	// up to that point.
	Cancelled bool
}

// Schedule runs the PTAS on an identical or uniform instance. The context
// is observed both between makespan guesses and inside the DP node
// expansion, so a deadline stops in-flight work; a cancelled run returns
// the best schedule found so far with Result.Note explaining the early
// stop.
func Schedule(ctx context.Context, in *core.Instance, opt Options) (core.Result, Stats, error) {
	opt = opt.normalize()
	var stats Stats
	if in.Kind != core.Identical && in.Kind != core.Uniform {
		return core.Result{}, stats, fmt.Errorf("ptas: need identical or uniform machines, got %v", in.Kind)
	}
	// Bootstrap with the Lemma 2.1 LPT schedule: a 4.74-approximation, so
	// Opt ∈ [lpt/4.74, lpt].
	lptSched, err := baseline.Lemma21LPT(in)
	if err != nil {
		return core.Result{}, stats, err
	}
	ub := lptSched.Makespan(in)
	lb := ub / baseline.Lemma21Factor
	if v := exact.VolumeLowerBound(in); v > lb {
		lb = v
	}
	// The guard marks guesses whose rejection is not a certificate: a
	// capped or cancelled DP run only suspects infeasibility and must not
	// be published as a lower bound. It is keyed by the guess value, so it
	// stays sound when several guesses are decided concurrently.
	var guard *guardedBus
	var bus core.BoundBus
	if opt.Bounds != nil {
		opt.Bounds.PublishUpper(ub) // the LPT schedule is feasible
		opt.Bounds.PublishLower(lb) // Lemma 2.1 ratio and volume bound are certified
		guard = &guardedBus{BoundBus: opt.Bounds}
		bus = guard
	}
	workers := dual.PlanParallelism(opt.SearchWorkers, opt.Budget)
	// The decision procedure is stateless per guess; shared stats are the
	// only mutable cross-worker state, so one concurrency-safe decider
	// serves every worker slot.
	var mu sync.Mutex
	decider := func(g dual.Guess) (*core.Schedule, bool) {
		sched, st := decide(g.Ctx, in, g.T, opt)
		mu.Lock()
		stats.Nodes += st.Nodes
		if st.Capped {
			stats.Capped = true
		}
		stats.Guesses++
		mu.Unlock()
		// A guess cancelled mid-DP is not marked in Stats.Cancelled here:
		// under a speculative strategy per-guess cancellation is routine
		// (the guess became irrelevant) and the runner discards the
		// interrupted rejection, so nothing unsound is committed. A
		// search-level cancellation surfaces as Outcome.Err below. The
		// guard still suppresses the rejection's publication either way.
		if guard != nil && (st.Capped || st.Cancelled) {
			guard.markUnsound(g.T)
		}
		return sched, sched != nil
	}
	deciders := make([]dual.GuessDecider, workers)
	for w := range deciders {
		deciders[w] = decider
	}
	out := dual.Run(ctx, dual.Config{
		Instance:  in,
		Lower:     lb,
		Upper:     ub,
		Precision: opt.Precision,
		Fallback:  lptSched,
		Bus:       bus,
		Strategy:  dual.Speculate(workers),
		Deciders:  deciders,
		Budget:    opt.Budget,
	})
	if out.Err != nil {
		stats.Cancelled = true
	}
	low := out.LowerBound
	if stats.Capped || stats.Cancelled {
		// A capped or cancelled rejection is not a certificate; fall back
		// to the sound bounds only.
		low = math.Min(low, lb)
		if v := exact.VolumeLowerBound(in); v > low {
			low = v
		}
	}
	note := ""
	switch {
	case stats.Cancelled:
		note = fmt.Sprintf("search stopped early (context cancelled after %d guesses); schedule is best-so-far, 1+O(ε) guarantee not certified", stats.Guesses)
	case stats.Capped:
		note = fmt.Sprintf("DP node cap hit (%d nodes total); capped guesses treated as rejections, 1+O(ε) guarantee may be lost", stats.Nodes)
	}
	return core.Result{
		Algorithm:  fmt.Sprintf("ptas(eps=%.3g)", opt.Eps),
		Schedule:   out.Schedule,
		Makespan:   out.Makespan,
		LowerBound: low,
		Note:       note,
		Nodes:      stats.Nodes,
	}, stats, nil
}

// guardedBus filters PublishLower through a set of unsound guess values:
// rejections caused by the node cap or a cancelled context are not
// infeasibility certificates, and publishing them would poison the shared
// bound bus for every racer. The decider marks such guesses by their exact
// value before returning, and the search runner publishes a committed
// rejection with that same value, so the filter matches exactly. Keying by
// value (rather than a "last guess" flag) keeps the guard sound when a
// parallel strategy decides several guesses concurrently.
type guardedBus struct {
	core.BoundBus
	mu      sync.Mutex
	unsound map[float64]bool
}

func (g *guardedBus) markUnsound(t float64) {
	g.mu.Lock()
	if g.unsound == nil {
		g.unsound = make(map[float64]bool)
	}
	g.unsound[t] = true
	g.mu.Unlock()
}

func (g *guardedBus) PublishLower(v float64) bool {
	g.mu.Lock()
	bad := g.unsound[v]
	g.mu.Unlock()
	if bad {
		return false
	}
	return g.BoundBus.PublishLower(v)
}

// guessStats reports counters for a single guess.
type guessStats struct {
	Nodes     int64
	Capped    bool
	Cancelled bool
}

// decide is the dual approximation decision procedure: it returns a
// feasible schedule for the original instance whose makespan is (1+O(ε))·T
// when a schedule with makespan ≤ T exists, and nil when it certifies (or,
// if Capped/Cancelled, merely suspects) that none exists.
func decide(ctx context.Context, in *core.Instance, T float64, opt Options) (*core.Schedule, guessStats) {
	var gs guessStats
	s := simplify(in, T, opt.Eps)
	if s == nil {
		return nil, gs // trivially infeasible (a job or setup fits nowhere)
	}
	d := newDP(s, opt.NodeCap)
	d.ctx = ctx
	ok := d.solve()
	gs.Nodes = d.nodes
	gs.Capped = d.capped
	gs.Cancelled = d.cancelled
	if !ok {
		return nil, gs
	}
	assign := convert(s, d.integralAssign(), d.fractionalItems())
	sched := s.mapBack(assign)
	if err := sched.Validate(in); err != nil {
		// Construction bug guard: never return an invalid schedule.
		return nil, gs
	}
	return sched, gs
}

// DebugDecide exposes the per-guess decision procedure for diagnostics and
// the experiment harness (it is not part of the algorithmic API).
func DebugDecide(in *core.Instance, T float64, opt Options) (*core.Schedule, guessStats) {
	return decide(context.Background(), in, T, opt.normalize())
}
