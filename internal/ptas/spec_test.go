package ptas

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/boundtest"
	"repro/internal/gen"
	"repro/internal/testutil"
)

// TestSpeculativeSearchMatchesSequential: the PTAS decision procedure is
// deterministic and monotone (a relaxed schedule at T exists at every
// T' ≥ T), so the speculative parallel search must return the same makespan
// as sequential bisection within the search precision. Run under -race this
// also audits the decider's concurrency safety (fresh simplify + DP arena
// per guess, stats behind a mutex).
func TestSpeculativeSearchMatchesSequential(t *testing.T) {
	testutil.ForceParallel(t)
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		in := gen.Uniform(rng, gen.Params{N: 12, M: 4, K: 2, SpeedMax: 6})
		seq, _, err := Schedule(context.Background(), in, Options{Eps: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4} {
			spec, _, err := Schedule(context.Background(), in, Options{Eps: 0.5, SearchWorkers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if err := spec.Schedule.Validate(in); err != nil {
				t.Fatalf("seed %d workers=%d: invalid schedule: %v", seed, workers, err)
			}
			// Both makespans bracket the same DP threshold: they agree
			// within the squared search precision (ε/4 each side).
			prec := 0.5 / 4
			ratio := seq.Makespan / spec.Makespan
			if ratio < 1/(1+prec)/(1+prec) || ratio > (1+prec)*(1+prec) {
				t.Errorf("seed %d workers=%d: sequential makespan %g vs speculative %g beyond precision",
					seed, workers, seq.Makespan, spec.Makespan)
			}
			if spec.LowerBound > spec.Makespan+1e-9 {
				t.Errorf("seed %d workers=%d: lower bound %g above makespan %g",
					seed, workers, spec.LowerBound, spec.Makespan)
			}
		}
	}
}

// TestSpeculativeGuardSuppressesCappedRejections: with a starvation-level
// node cap every rejection is a suspicion, and none of them may reach the
// shared bus as a certified lower bound even when guesses are decided
// concurrently.
func TestSpeculativeGuardSuppressesCappedRejections(t *testing.T) {
	testutil.ForceParallel(t)
	rng := rand.New(rand.NewSource(2))
	in := gen.Uniform(rng, gen.Params{N: 16, M: 4, K: 3, SpeedMax: 5})
	bus := boundtest.New()
	res, stats, err := Schedule(context.Background(), in, Options{
		Eps:           0.5,
		NodeCap:       1, // every DP run caps immediately
		SearchWorkers: 3,
		Bounds:        bus,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Capped {
		t.Fatal("node cap of 1 did not cap")
	}
	// The only lower bound on the bus is the sound bootstrap one published
	// before the search; no capped rejection may have raised it.
	if bus.L > res.LowerBound+1e-9 {
		t.Errorf("bus lower %g exceeds the sound lower bound %g: a capped rejection leaked", bus.L, res.LowerBound)
	}
	if math.IsInf(res.Makespan, 0) || res.Schedule == nil {
		t.Error("capped run lost the LPT fallback schedule")
	}
}
