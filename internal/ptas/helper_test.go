package ptas

import (
	"repro/internal/baseline"
	"repro/internal/core"
)

// baselineLPT returns the makespan of the Lemma 2.1 LPT schedule, shared by
// tests comparing against the PTAS bootstrap.
func baselineLPT(in *core.Instance) (float64, error) {
	sched, err := baseline.Lemma21LPT(in)
	if err != nil {
		return 0, err
	}
	return sched.Makespan(in), nil
}
