package ptas

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
)

// Figure1 reproduces the structural diagnostic of the paper's Figure 1 for
// a uniform instance and makespan guess T: the speed groups on a
// logarithmic scale, the machines they contain, and — for each setup class
// — the core group with the speed interval of its potential core machines,
// plus, for each distinct fringe job size, the native group and the speed
// interval on which the size is big. Experiment E3 prints this figure.
func Figure1(in *core.Instance, T float64, eps float64) (string, error) {
	if in.Kind != core.Identical && in.Kind != core.Uniform {
		return "", fmt.Errorf("ptas: Figure 1 requires identical or uniform machines, got %v", in.Kind)
	}
	s := simplify(in, T, eps)
	if s == nil {
		return "", fmt.Errorf("ptas: guess T=%g is trivially infeasible", T)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 1 — speed groups (ε=%.3g, γ=ε³=%.3g, T=%.6g, T1=%.6g)\n", s.eps, s.gamma, s.T, s.T1)
	fmt.Fprintf(&sb, "vmin=%.6g (rounded), G=%d\n\n", s.vmin, s.G)
	for g := 0; g <= s.G; g++ {
		var members []string
		for i := range s.speed {
			if s.inGroup(i, g) {
				members = append(members, fmt.Sprintf("M%d(v=%.4g)", s.origM[i], s.speed[i]))
			}
		}
		fmt.Fprintf(&sb, "group %d: speeds [%.6g, %.6g)  machines: %s\n",
			g, s.vLow(g), s.vLow(g+2), strings.Join(members, " "))
	}
	sb.WriteString("\nclasses (core groups, dashed interval of Fig. 1):\n")
	for k := 0; k < in.K; k++ {
		cg := s.coreGroup(k)
		lo := s.setup[k] / s.T1             // core machines: s_k ≤ T·v
		hi := s.setup[k] / (s.gamma * s.T1) // … and T·v < s_k/γ
		fmt.Fprintf(&sb, "  class %d: setup=%.6g core group=%d core-machine speeds ⊆ [%.6g, %.6g)\n",
			k, s.setup[k], cg, lo, hi)
	}
	sb.WriteString("\nfringe job sizes (native groups, dotted interval of Fig. 1):\n")
	seen := map[float64]bool{}
	var sizes []float64
	for j := range s.size {
		if s.isCore(j) || seen[s.size[j]] {
			continue
		}
		seen[s.size[j]] = true
		sizes = append(sizes, s.size[j])
	}
	sort.Float64s(sizes)
	for _, p := range sizes {
		ng := s.nativeGroup(p)
		fmt.Fprintf(&sb, "  size %.6g: native group=%d big on speeds [%.6g, %.6g]\n",
			p, ng, p/s.T1, p/(s.eps*s.T1))
	}
	return sb.String(), nil
}
