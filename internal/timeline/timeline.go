// Package timeline materializes an assignment into a concrete executable
// timeline: on every machine, jobs of one class run as a contiguous batch
// preceded by the class's setup (the batching the paper's load definition
// L_i = Σ p_ij + Σ s_ik presumes — since setups are sequence-independent,
// batching per class is always optimal for a fixed assignment). The
// timeline carries explicit start/end times per setup and job, so it can
// drive downstream systems or render a Gantt chart.
package timeline

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
)

// Entry is one interval on a machine.
type Entry struct {
	// Machine executing the interval.
	Machine int
	// Class of the interval.
	Class int
	// Job is the job index, or -1 for a setup interval.
	Job int
	// Start and End are the interval bounds.
	Start, End float64
}

// Timeline is an executable plan: entries per machine in time order.
type Timeline struct {
	// PerMachine[i] lists machine i's intervals in increasing time.
	PerMachine [][]Entry
	// Makespan is the maximum end time.
	Makespan float64
}

// Build materializes a complete feasible schedule. Classes on a machine run
// in ascending class order (any order yields the same makespan because
// setups are sequence-independent); jobs within a class in ascending index.
func Build(in *core.Instance, sched *core.Schedule) (*Timeline, error) {
	if err := sched.Validate(in); err != nil {
		return nil, err
	}
	tl := &Timeline{PerMachine: make([][]Entry, in.M)}
	byMachine := sched.MachineJobs(in)
	for i := 0; i < in.M; i++ {
		jobs := byMachine[i]
		byClass := map[int][]int{}
		var classes []int
		for _, j := range jobs {
			k := in.Class[j]
			if len(byClass[k]) == 0 {
				classes = append(classes, k)
			}
			byClass[k] = append(byClass[k], j)
		}
		sort.Ints(classes)
		t := 0.0
		for _, k := range classes {
			if s := in.S[i][k]; s > 0 {
				tl.PerMachine[i] = append(tl.PerMachine[i], Entry{
					Machine: i, Class: k, Job: -1, Start: t, End: t + s,
				})
				t += s
			}
			sort.Ints(byClass[k])
			for _, j := range byClass[k] {
				p := in.P[i][j]
				tl.PerMachine[i] = append(tl.PerMachine[i], Entry{
					Machine: i, Class: k, Job: j, Start: t, End: t + p,
				})
				t += p
			}
		}
		if t > tl.Makespan {
			tl.Makespan = t
		}
	}
	return tl, nil
}

// Validate checks the executable-semantics invariants: intervals per
// machine are contiguous-in-order and non-overlapping, every job appears
// exactly once with its correct duration, every batch is preceded by
// exactly one setup of its class (when the setup time is positive), and
// the timeline's makespan equals the schedule's load-based makespan.
func (tl *Timeline) Validate(in *core.Instance, sched *core.Schedule) error {
	seen := make([]bool, in.N)
	for i, entries := range tl.PerMachine {
		last := 0.0
		setupDone := map[int]bool{}
		for _, e := range entries {
			if e.Start < last-core.Eps {
				return fmt.Errorf("timeline: overlap on machine %d at %v", i, e.Start)
			}
			last = e.End
			if e.Job < 0 {
				if setupDone[e.Class] {
					return fmt.Errorf("timeline: duplicate setup of class %d on machine %d", e.Class, i)
				}
				setupDone[e.Class] = true
				if dur := e.End - e.Start; absDiff(dur, in.S[i][e.Class]) > core.Eps {
					return fmt.Errorf("timeline: setup duration %v ≠ s[%d][%d]=%v", dur, i, e.Class, in.S[i][e.Class])
				}
				continue
			}
			if seen[e.Job] {
				return fmt.Errorf("timeline: job %d scheduled twice", e.Job)
			}
			seen[e.Job] = true
			if sched.Assign[e.Job] != i {
				return fmt.Errorf("timeline: job %d on machine %d, assignment says %d", e.Job, i, sched.Assign[e.Job])
			}
			if !setupDone[e.Class] && in.S[i][e.Class] > 0 {
				return fmt.Errorf("timeline: job %d of class %d runs before its setup", e.Job, e.Class)
			}
			if dur := e.End - e.Start; absDiff(dur, in.P[i][e.Job]) > core.Eps {
				return fmt.Errorf("timeline: job %d duration %v ≠ p=%v", e.Job, dur, in.P[i][e.Job])
			}
		}
	}
	for j, ok := range seen {
		if !ok {
			return fmt.Errorf("timeline: job %d missing", j)
		}
	}
	if absDiff(tl.Makespan, sched.Makespan(in)) > 1e-6 {
		return fmt.Errorf("timeline: makespan %v ≠ schedule makespan %v", tl.Makespan, sched.Makespan(in))
	}
	return nil
}

func absDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

// Gantt renders an ASCII Gantt chart with the given width in characters.
// Setups render as '=', jobs as the last digit of their class.
func (tl *Timeline) Gantt(width int) string {
	if width < 10 {
		width = 60
	}
	if tl.Makespan <= 0 {
		return "(empty timeline)\n"
	}
	scale := float64(width) / tl.Makespan
	var sb strings.Builder
	for i, entries := range tl.PerMachine {
		row := make([]byte, width)
		for c := range row {
			row[c] = '.'
		}
		for _, e := range entries {
			lo := int(e.Start * scale)
			hi := int(e.End * scale)
			if hi > width {
				hi = width
			}
			ch := byte('0' + e.Class%10)
			if e.Job < 0 {
				ch = '='
			}
			for c := lo; c < hi; c++ {
				row[c] = ch
			}
		}
		fmt.Fprintf(&sb, "M%-2d |%s|\n", i, row)
	}
	fmt.Fprintf(&sb, "     0%*s%.4g\n", width-1, "t=", tl.Makespan)
	return sb.String()
}
