package timeline

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/gen"
)

// Property: for any feasible schedule on any environment, the materialized
// timeline passes its own executable-semantics validation.
func TestBuildValidatesOnRandomSchedules(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := gen.Params{N: 1 + rng.Intn(25), M: 1 + rng.Intn(5), K: 1 + rng.Intn(4)}
		var in *core.Instance
		switch rng.Intn(4) {
		case 0:
			in = gen.Identical(rng, p)
		case 1:
			in = gen.Uniform(rng, p)
		case 2:
			in = gen.Unrelated(rng, p)
		default:
			in = gen.Restricted(rng, p)
		}
		sched, err := baseline.Greedy(in)
		if err != nil {
			return false
		}
		tl, err := Build(in, sched)
		if err != nil {
			return false
		}
		return tl.Validate(in, sched) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestBuildKnownTimeline(t *testing.T) {
	in, err := core.NewIdentical([]float64{3, 4}, []int{0, 1}, []float64{2, 5}, 1)
	if err != nil {
		t.Fatalf("NewIdentical: %v", err)
	}
	sched := &core.Schedule{Assign: []int{0, 0}}
	tl, err := Build(in, sched)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// Machine 0: setup0 [0,2), job0 [2,5), setup1 [5,10), job1 [10,14).
	if tl.Makespan != 14 {
		t.Errorf("makespan = %v, want 14", tl.Makespan)
	}
	es := tl.PerMachine[0]
	if len(es) != 4 {
		t.Fatalf("entries = %d, want 4", len(es))
	}
	if es[0].Job != -1 || es[0].End != 2 || es[1].Job != 0 || es[1].End != 5 {
		t.Errorf("unexpected head entries: %+v", es[:2])
	}
	if err := tl.Validate(in, sched); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestBuildRejectsInfeasible(t *testing.T) {
	in, err := core.NewRestricted([]float64{1}, []int{0}, []float64{1}, 2, [][]int{{0}})
	if err != nil {
		t.Fatalf("NewRestricted: %v", err)
	}
	bad := &core.Schedule{Assign: []int{1}}
	if _, err := Build(in, bad); err == nil {
		t.Error("infeasible schedule accepted")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	in, err := core.NewIdentical([]float64{3, 4}, []int{0, 0}, []float64{2}, 2)
	if err != nil {
		t.Fatalf("NewIdentical: %v", err)
	}
	sched := &core.Schedule{Assign: []int{0, 1}}
	fresh := func() *Timeline {
		tl, err := Build(in, sched)
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		return tl
	}
	mutations := map[string]func(*Timeline){
		"overlap":        func(tl *Timeline) { tl.PerMachine[0][1].Start -= 1 },
		"wrong duration": func(tl *Timeline) { tl.PerMachine[0][1].End += 1 },
		"drop job":       func(tl *Timeline) { tl.PerMachine[0] = tl.PerMachine[0][:1] },
		"bad makespan":   func(tl *Timeline) { tl.Makespan += 3 },
	}
	for name, mutate := range mutations {
		tl := fresh()
		mutate(tl)
		if err := tl.Validate(in, sched); err == nil {
			t.Errorf("corruption %q passed validation", name)
		}
	}
}

func TestGantt(t *testing.T) {
	in, err := core.NewIdentical([]float64{3, 4}, []int{0, 1}, []float64{2, 5}, 2)
	if err != nil {
		t.Fatalf("NewIdentical: %v", err)
	}
	sched := &core.Schedule{Assign: []int{0, 1}}
	tl, err := Build(in, sched)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	g := tl.Gantt(40)
	if !strings.Contains(g, "M0") || !strings.Contains(g, "M1") {
		t.Errorf("Gantt missing machine rows:\n%s", g)
	}
	if !strings.Contains(g, "=") {
		t.Errorf("Gantt missing setup marks:\n%s", g)
	}
	empty := &Timeline{PerMachine: [][]Entry{}}
	if !strings.Contains(empty.Gantt(40), "empty") {
		t.Error("empty timeline not handled")
	}
}
