package lp

import "fmt"

// BackendKind selects one of the LP backend implementations behind the
// Backend interface.
type BackendKind string

const (
	// Dense is the dense simplex backend: it maintains an explicit dense
	// basis inverse, so per-pivot work is Θ(m²) regardless of sparsity.
	// It is the reference/fallback implementation.
	Dense BackendKind = "dense"
	// Sparse is the sparse revised simplex backend: columns are stored
	// sparse and the basis inverse is kept in product form (an eta file
	// with periodic refactorization), so per-pivot work scales with the
	// number of nonzeros rather than the matrix dimensions.
	Sparse BackendKind = "sparse"
	// IPM is the interior-point backend: a Mehrotra predictor-corrector
	// on the normal equations A·D·Aᵀ (sparse Cholesky kernel with a dense
	// supernode tail) for the cold first solve, followed by a crossover to
	// a vertex basis — every subsequent Solve, and any Warm-transplanted
	// state, runs on the embedded simplex core. The simplex is always the
	// arbiter: a non-converged IPM falls back to a cold simplex solve, so
	// verdicts (including infeasibility certificates) are exact.
	IPM BackendKind = "ipm"
	// Auto picks by size at construction: IPM when the problem crosses
	// AutoIPMMinRows rows or AutoIPMMinNNZ structural nonzeros (cold huge
	// sparse LPs are where interior point wins), Sparse otherwise. The
	// resolved choice is reported by Backend.Kind.
	Auto BackendKind = "auto"
)

// DefaultBackend is the backend used when a caller does not choose one.
const DefaultBackend = Sparse

// Auto-selection thresholds: Auto resolves to IPM when the problem has at
// least AutoIPMMinRows constraint rows or AutoIPMMinNNZ structural
// nonzeros. Exported as variables so tests (and unusual deployments) can
// move the cutover; the defaults come from the scheduling-relaxation
// corpus, where the simplex cold solve falls behind around 2k rows.
var (
	AutoIPMMinRows = 2000
	AutoIPMMinNNZ  = 40000
)

// ParseBackend validates a backend name ("" means DefaultBackend).
func ParseBackend(s string) (BackendKind, error) {
	switch BackendKind(s) {
	case "":
		return DefaultBackend, nil
	case Dense, Sparse, IPM, Auto:
		return BackendKind(s), nil
	default:
		return "", fmt.Errorf("lp: unknown backend %q (want %q, %q, %q or %q)", s, Dense, Sparse, IPM, Auto)
	}
}

// VarStatus is the state of a column in a Basis snapshot.
type VarStatus int8

const (
	// NonbasicLower: the variable sits at its lower bound (0).
	NonbasicLower VarStatus = iota
	// NonbasicUpper: the variable sits at its upper bound.
	NonbasicUpper
	// BasicVar: the variable is basic; its value is determined by the basis.
	BasicVar
)

// Basis is a snapshot of a simplex basis, transplantable between backends
// bound to the same Problem. The column space is the standard form shared
// by all backends: structural variables [0, NumVars()), then one slack per
// constraint row (column NumVars()+r for row r).
type Basis struct {
	// Cols[r] is the column basic in row r.
	Cols []int
	// Status[j] is the state of column j; exactly the columns listed in
	// Cols must be BasicVar.
	Status []VarStatus
}

// ExtendBasis remaps a basis snapshot taken from a backend bound to a
// Problem with oldVars variables and oldRows rows onto the standard form of
// the same Problem after it grew (append-only) to newVars variables and
// newRows rows. Structural columns keep their indices, old slack columns
// shift from oldVars+r to newVars+r, new structural columns enter nonbasic
// at their lower bound, and each new row is made basic in its own slack.
//
// The result is a valid basis for Warm on a backend built from the grown
// problem: the basis matrix is block-triangular (old basis over old rows,
// identity slacks over new rows), hence nonsingular, and for a
// zero-objective feasibility LP it is dual feasible — a Solve then repairs
// primal feasibility with a handful of dual-simplex pivots instead of a
// cold phase-1 run. This is the transplant step of the incremental
// re-solve pipeline (rounding.Relaxation.ApplyDelta): extend the retained
// Problem with a delta's rows and columns, rebuild the backend, ExtendBasis
// the retained snapshot, Warm, Solve.
func ExtendBasis(b *Basis, oldVars, newVars, oldRows, newRows int) (*Basis, error) {
	if b == nil || len(b.Cols) != oldRows || len(b.Status) != oldVars+oldRows {
		return nil, fmt.Errorf("lp: ExtendBasis snapshot has wrong shape (want %d rows, %d columns)", oldRows, oldVars+oldRows)
	}
	if newVars < oldVars || newRows < oldRows {
		return nil, fmt.Errorf("lp: ExtendBasis cannot shrink (%d→%d vars, %d→%d rows)", oldVars, newVars, oldRows, newRows)
	}
	out := &Basis{
		Cols:   make([]int, newRows),
		Status: make([]VarStatus, newVars+newRows),
	}
	remap := func(c int) int {
		if c >= oldVars {
			return newVars + (c - oldVars)
		}
		return c
	}
	for r := 0; r < oldRows; r++ {
		out.Cols[r] = remap(b.Cols[r])
	}
	copy(out.Status[:oldVars], b.Status[:oldVars])
	for j := oldVars; j < newVars; j++ {
		out.Status[j] = NonbasicLower
	}
	for r := 0; r < oldRows; r++ {
		out.Status[newVars+r] = b.Status[oldVars+r]
	}
	for r := oldRows; r < newRows; r++ {
		out.Cols[r] = newVars + r
		out.Status[newVars+r] = BasicVar
	}
	return out, nil
}

// Backend is a mutable LP solver instance bound to one Problem. Unlike
// Problem.Solve, a Backend persists its basis and factorization between
// calls: after an optimal Solve, the RHS and variable upper bounds can be
// changed in place and the next Solve warm-starts from the previous basis
// (dual simplex when the basis went primal-infeasible, an immediate exit
// when it is still optimal). This turns a sequence of related solves —
// e.g. the per-guess LP feasibility tests of a dual-approximation search —
// from guesses × full-solve into one build plus cheap re-solves.
//
// Backends are not safe for concurrent use. The Solution returned by Solve
// (including its X slice) is owned by the backend and valid only until the
// next Solve call; callers that need to retain it must copy.
type Backend interface {
	// Solve optimizes from the current state. The first call solves cold;
	// later calls warm-start from the previous basis.
	Solve() (*Solution, error)
	// SetRHS replaces the right-hand side of constraint row r (rows are
	// indexed in Problem.AddConstraint order).
	SetRHS(r int, rhs float64)
	// SetVarUpper replaces the upper bound of structural variable v.
	// Clamping a variable to 0 fixes it without rebuilding the problem.
	SetVarUpper(v int, upper float64)
	// Basis snapshots the current basis (after a Solve).
	Basis() *Basis
	// Warm installs a basis snapshot (e.g. taken from another backend bound
	// to the same problem), refactorizing as needed. The next Solve starts
	// from it.
	Warm(*Basis) error
	// Kind reports the resolved implementation kind (never Auto: an
	// auto-constructed backend reports what the size trigger picked).
	Kind() BackendKind
	// Clone returns an independent backend with the same problem data,
	// mutation state (RHS, variable bounds) and basis/factorization, backed
	// by its own private Workspace: mutating or solving the clone never
	// perturbs the parent and vice versa, so clones can solve concurrently
	// on separate goroutines (one goroutine per backend — a single Backend
	// remains non-thread-safe). Clone must not be called concurrently with
	// a Solve or mutation on the receiver. This is the substrate of the
	// speculative parallel dual search: each search worker re-solves on its
	// own clone, keeping the locality of its warm basis.
	Clone() Backend
}

// NewBackend builds a backend of the given kind bound to p. The problem's
// rows and variables are copied into the backend's standard form at
// construction; later Problem mutations are not observed (use the backend's
// own SetRHS/SetVarUpper mutators). ws supplies reusable scratch so that
// building and solving allocates from the workspace's grow-only buffers;
// nil allocates a private workspace.
//
// By default the backend runs behind the presolve+scaling pipeline (see
// WithPresolve): the first cold Solve reduces the mutated problem to a
// fixed point and equilibrates it before the inner solver sees it. Auto is
// resolved against the original (unreduced) dimensions, so the size
// trigger's meaning is unchanged.
func NewBackend(kind BackendKind, p *Problem, ws *Workspace, opts ...BackendOption) (Backend, error) {
	kind, err := ParseBackend(string(kind))
	if err != nil {
		return nil, err
	}
	cfg := backendConfig{presolve: true}
	for _, o := range opts {
		o(&cfg)
	}
	if ws == nil {
		ws = NewWorkspace()
	}
	if kind == Auto {
		if len(p.rows) >= AutoIPMMinRows || len(p.tRow) >= AutoIPMMinNNZ {
			kind = IPM
		} else {
			kind = Sparse
		}
	}
	if cfg.presolve && len(p.rows) > 0 && len(p.obj) > 0 {
		return newPresolveBackend(kind, p, ws), nil
	}
	return newResolvedBackend(kind, p, ws)
}

// newResolvedBackend constructs a concrete (unwrapped) backend of an
// already-resolved kind. This is the build path the presolve wrapper uses
// for its inner solver, on both the reduced problem and the full-problem
// bypass.
func newResolvedBackend(kind BackendKind, p *Problem, ws *Workspace) (Backend, error) {
	if kind == IPM {
		return newIPMState(p, ws), nil
	}
	s := newSolverState(p, ws)
	s.kind = kind
	switch kind {
	case Dense:
		s.inv = &denseInverse{}
	default:
		s.inv = &etaFile{}
	}
	s.inv.reset(s.sf.m)
	return s, nil
}
