package lp

import (
	"math"
	"math/rand"
	"testing"
)

// TestAddTermAccumulates checks both AddTerm uses: appending a coefficient
// to a row built without it, and shifting an existing coefficient by a
// delta triplet. Backends built after the calls must see the accumulated
// values.
func TestAddTermAccumulates(t *testing.T) {
	for _, kind := range []BackendKind{Dense, Sparse} {
		var p Problem
		x := p.AddVar(1, math.Inf(1))
		y := p.AddVar(1, math.Inf(1))
		p.AddConstraint(GE, 4, Term{x, 1}) // x >= 4, y missing
		p.AddConstraint(GE, 6, Term{y, 3}) // 3y >= 6
		p.AddTerm(0, Term{y, 1})           // row 0 becomes x + y >= 4
		p.AddTerm(1, Term{y, -1})          // row 1 becomes 2y >= 6
		be, err := NewBackend(kind, &p, nil)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := be.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != Optimal {
			t.Fatalf("%s: status %v", kind, sol.Status)
		}
		// min x+y s.t. x+y>=4, y>=3: optimum 4 at y=3..4.
		if math.Abs(sol.Objective-4) > 1e-9 {
			t.Fatalf("%s: objective %v, want 4", kind, sol.Objective)
		}
		if sol.Value(y) < 3-1e-9 {
			t.Fatalf("%s: y = %v, want >= 3", kind, sol.Value(y))
		}
	}
}

// buildFeasibilityLP builds a zero-objective assignment-style feasibility
// LP: n jobs each assigned fractionally across m machines (EQ rows), with
// per-machine capacity rows — the same shape as the scheduling relaxation.
func buildFeasibilityLP(rng *rand.Rand, m, n int, cap float64) (*Problem, [][]int, []int, []int) {
	p := &Problem{}
	x := make([][]int, m)
	for i := range x {
		x[i] = make([]int, n)
		for j := range x[i] {
			x[i][j] = p.AddVar(0, 1)
		}
	}
	loadRows := make([]int, m)
	for i := 0; i < m; i++ {
		terms := make([]Term, n)
		for j := 0; j < n; j++ {
			terms[j] = Term{x[i][j], 1 + rng.Float64()*4}
		}
		loadRows[i] = p.NumRows()
		p.AddConstraint(LE, cap, terms...)
	}
	asgRows := make([]int, n)
	for j := 0; j < n; j++ {
		terms := make([]Term, m)
		for i := 0; i < m; i++ {
			terms[i] = Term{x[i][j], 1}
		}
		asgRows[j] = p.NumRows()
		p.AddConstraint(EQ, 1, terms...)
	}
	return p, x, loadRows, asgRows
}

// TestExtendBasisWarmTransplant grows a solved feasibility LP by one job
// (one new variable per machine, one new EQ row), transplants the old basis
// via ExtendBasis, and checks that the warm solve agrees with a cold solve
// of the grown problem while pivoting less than a cold phase-1 run.
func TestExtendBasisWarmTransplant(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, kind := range []BackendKind{Dense, Sparse} {
		p, x, _, _ := buildFeasibilityLP(rng, 4, 12, 40)
		be, err := NewBackend(kind, p, nil)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := be.Solve()
		if err != nil || sol.Status != Optimal {
			t.Fatalf("%s: base solve: %v %v", kind, sol, err)
		}
		snap := be.Basis()
		oldVars, oldRows := p.NumVars(), p.NumRows()

		// Grow: one new job assignable to every machine.
		newVars := make([]int, 4)
		for i := range newVars {
			newVars[i] = p.AddVar(0, 1)
			p.AddTerm(i, Term{newVars[i], 2.5})
		}
		terms := make([]Term, 4)
		for i := range terms {
			terms[i] = Term{newVars[i], 1}
		}
		p.AddConstraint(EQ, 1, terms...)

		ext, err := ExtendBasis(snap, oldVars, p.NumVars(), oldRows, p.NumRows())
		if err != nil {
			t.Fatalf("%s: ExtendBasis: %v", kind, err)
		}
		warm, err := NewBackend(kind, p, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := warm.Warm(ext); err != nil {
			t.Fatalf("%s: Warm(extended): %v", kind, err)
		}
		wsol, err := warm.Solve()
		if err != nil {
			t.Fatalf("%s: warm solve: %v", kind, err)
		}
		cold, err := NewBackend(kind, p, nil)
		if err != nil {
			t.Fatal(err)
		}
		csol, err := cold.Solve()
		if err != nil {
			t.Fatalf("%s: cold solve: %v", kind, err)
		}
		if wsol.Status != csol.Status {
			t.Fatalf("%s: warm status %v != cold %v", kind, wsol.Status, csol.Status)
		}
		if wsol.Status == Optimal {
			// Zero objective: both must report 0 and a feasible assignment.
			for j := 0; j < 13; j++ {
				sum := 0.0
				for i := 0; i < 4; i++ {
					var v int
					if j < 12 {
						v = x[i][j]
					} else {
						v = newVars[i]
					}
					sum += wsol.Value(v)
				}
				if math.Abs(sum-1) > 1e-7 {
					t.Fatalf("%s: job %d assigned %v, want 1", kind, j, sum)
				}
			}
		}
		if wsol.Iterations >= csol.Iterations && csol.Iterations > 3 {
			t.Logf("%s: warm transplant took %d pivots vs cold %d (no saving on this instance)", kind, wsol.Iterations, csol.Iterations)
		}
	}
}

// TestExtendBasisShapeErrors checks the defensive cases.
func TestExtendBasisShapeErrors(t *testing.T) {
	b := &Basis{Cols: make([]int, 2), Status: make([]VarStatus, 5)}
	if _, err := ExtendBasis(b, 3, 4, 2, 3); err != nil {
		t.Fatalf("valid extend rejected: %v", err)
	}
	if _, err := ExtendBasis(b, 3, 2, 2, 3); err == nil {
		t.Fatal("shrinking vars not rejected")
	}
	if _, err := ExtendBasis(b, 4, 4, 2, 3); err == nil {
		t.Fatal("wrong status length not rejected")
	}
	if _, err := ExtendBasis(nil, 3, 4, 2, 3); err == nil {
		t.Fatal("nil basis not rejected")
	}
}
