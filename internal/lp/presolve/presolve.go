// Package presolve reduces a bounded-variable LP
//
//	minimize    c·x
//	subject to  a_r·x {≤,=,≥} b_r
//	            0 ≤ x_j ≤ u_j   (u_j may be +∞)
//
// before it reaches a solver, and maps solutions of the reduced problem
// back to the original one exactly. The reductions are the classical safe
// set for this form, run to a fixed point:
//
//   - fixed-variable elimination: u_j = 0 (the clamp idiom the rounding
//     layer's ReSolve writes) pins x_j = 0; the column is folded into the
//     right-hand sides and dropped
//   - empty-row removal: a row with no live entries is either trivially
//     satisfied (removed) or a proof of infeasibility
//   - singleton-row removal with bound folding: a_rj·x_j {≤,=,≥} b_r
//     tightens u_j (or fixes x_j for an equality), then the row goes away
//   - singleton-column fixing: a column appearing in one inequality row is
//     fixed at the bound that relaxes the row, when the objective agrees
//   - zero-column drop: a column in no rows moves to its cost-optimal bound
//   - redundant-row detection: a row whose activity range [minact, maxact]
//     cannot violate it is removed; a range that cannot satisfy it is an
//     infeasibility certificate
//
// plus Ruiz-style iterative row/column equilibration scaling of the
// surviving matrix, which conditions the normal equations the IPM backend
// factors (iteration counts on ill-scaled instances drop sharply) and
// stabilizes simplex pricing.
//
// Every reduction is recorded so the Result can postsolve: reconstruct the
// original-space primal vector, report which fixed column sits at which
// bound (for basis reconstruction by the caller), and forward later RHS and
// bound mutations into the reduced-and-scaled coordinates. The package is
// deliberately solver-agnostic — it speaks flat arrays, not lp.Problem — so
// the lp package can wrap it behind the Backend seam without an import
// cycle.
package presolve

import "math"

// Sense values, numerically identical to lp.Sense.
const (
	SenseLE int8 = 0
	SenseGE int8 = 1
	SenseEQ int8 = 2
)

// FixKind says how an eliminated column was pinned.
type FixKind int8

const (
	// NotFixed: the column survives into the reduced problem.
	NotFixed FixKind = iota
	// FixLower: pinned at 0 (clamped bound, or cost-optimal lower).
	FixLower
	// FixUpper: pinned at its presolve-time upper bound.
	FixUpper
	// FixValue: pinned at an interior value by an equality singleton row.
	FixValue
)

// Input is a bounded-variable LP in flat triplet form. Duplicate (row, col)
// triplets are allowed and accumulate, matching lp.Problem semantics. The
// caller retains ownership; Reduce copies what it mutates.
type Input struct {
	NumCols int
	NumRows int
	Obj     []float64 // len NumCols
	UB      []float64 // len NumCols, +Inf allowed
	Sense   []int8    // len NumRows
	RHS     []float64 // len NumRows
	Row     []int32   // triplets
	Col     []int32
	Coef    []float64
}

// Options controls the pipeline.
type Options struct {
	// Scale enables Ruiz equilibration of the reduced matrix.
	Scale bool
	// MaxPasses caps the reduction fixed-point loop (safety; default 32).
	MaxPasses int
	// ScalePasses caps Ruiz iterations (default 8).
	ScalePasses int
	// Tol is the feasibility tolerance for redundancy/infeasibility
	// decisions (default 1e-9, relative to magnitudes involved).
	Tol float64
}

// Stats summarizes what the pipeline did.
type Stats struct {
	RowsBefore, RowsAfter int
	ColsBefore, ColsAfter int
	NNZBefore, NNZAfter   int
	FixedCols             int
	RemovedRows           int
	RedundantRows         int
	ScalePasses           int
	Passes                int
}

// Result is the reduced problem plus everything needed to go back.
type Result struct {
	// Infeasible is set when a reduction proved the original LP infeasible.
	// The reduced problem arrays are not populated in that case.
	Infeasible bool

	NumCols, NumRows int // original dimensions

	// Maps between original and reduced index spaces (-1 = eliminated).
	ColMap, RowMap   []int32
	ColOrig, RowOrig []int32

	// Per original column: how (if) it was eliminated and at what value.
	Fix    []FixKind
	FixVal []float64

	// Per original row: Σ a_rj·fix_j folded out of the RHS, and the RHS /
	// UB values the reductions assumed (mutating past these invalidates
	// recorded reductions — the caller's cue to bypass).
	RHSShift []float64
	RHSAt    []float64
	UBAt     []float64
	// UBFold[j] is the tightest bound folded onto column j by singleton
	// rows (+Inf when none); later bound mutations forward min(u, fold).
	UBFold []float64

	// Reduced (and, when enabled, scaled) problem in dedup triplet form.
	RObj, RUB, RRHS []float64
	RSense          []int8
	RRow, RCol      []int32
	RCoef           []float64

	// Diagonal scalings (all-ones when scaling is off): the reduced matrix
	// is diag(RowScale)·A·diag(ColScale) over the kept submatrix of A, the
	// reduced variable is x' = x/ColScale.
	RowScale, ColScale []float64

	// FixedObj is Σ c_j·fix_j — add to the reduced objective value.
	FixedObj float64

	Stats Stats
}

// HasReductions reports whether any row or column was eliminated (scaling
// alone does not count).
func (res *Result) HasReductions() bool {
	return res.Stats.RowsAfter != res.Stats.RowsBefore || res.Stats.ColsAfter != res.Stats.ColsBefore
}

// PostsolveX writes the original-space primal vector: eliminated columns at
// their pinned values, kept columns unscaled from xRed. xOrig must have
// length NumCols; xRed length len(ColOrig) (may be nil when no columns
// survived).
func (res *Result) PostsolveX(xRed, xOrig []float64) {
	for j := 0; j < res.NumCols; j++ {
		if res.Fix[j] != NotFixed {
			xOrig[j] = res.FixVal[j]
			continue
		}
		rj := res.ColMap[j]
		x := xRed[rj] * res.ColScale[rj]
		if x < 0 {
			x = 0 // scaling round-off must not leak a negative value
		}
		xOrig[j] = x
	}
}

// reducer is the in-flight working state.
type reducer struct {
	nv, m int
	tol   float64

	obj   []float64
	ub    []float64 // mutable (folds)
	rhs   []float64 // mutable (fix shifts)
	sense []int8

	// Deduplicated CSR of the constraint matrix with per-entry liveness.
	rPtr, rEnd []int32
	eCol       []int32
	eRow       []int32
	eVal       []float64
	alive      []bool
	rowLen     []int32
	// CSC view: cEnt lists CSR entry ids per column.
	cPtr, cEnt []int32
	colLen     []int32

	fix      []FixKind
	fixVal   []float64
	rowGone  []bool
	shift    []float64
	ubFold   []float64
	fixedObj float64

	fixedCols, removedRows, redundantRows int
}

// Reduce runs the pipeline. The returned Result is immutable afterwards and
// safe for concurrent readers.
func Reduce(in *Input, opt Options) *Result {
	if opt.MaxPasses <= 0 {
		opt.MaxPasses = 32
	}
	if opt.ScalePasses <= 0 {
		opt.ScalePasses = 8
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-9
	}
	rd := newReducer(in, opt.Tol)
	res := &Result{
		NumCols: in.NumCols,
		NumRows: in.NumRows,
		RHSAt:   append([]float64(nil), in.RHS...),
		UBAt:    append([]float64(nil), in.UB...),
	}
	res.Stats.RowsBefore = in.NumRows
	res.Stats.ColsBefore = in.NumCols
	res.Stats.NNZBefore = rd.liveEntries()

	feasible := rd.run(opt.MaxPasses, &res.Stats)
	res.Fix = rd.fix
	res.FixVal = rd.fixVal
	res.RHSShift = rd.shift
	res.UBFold = rd.ubFold
	res.FixedObj = rd.fixedObj
	res.Stats.FixedCols = rd.fixedCols
	res.Stats.RemovedRows = rd.removedRows
	res.Stats.RedundantRows = rd.redundantRows
	if !feasible {
		res.Infeasible = true
		return res
	}
	rd.emit(res)
	if opt.Scale {
		ruizScale(res, opt.ScalePasses)
	}
	// Apply scalings to the reduced bounds/costs/rhs (all-ones when off).
	for t := range res.RCoef {
		res.RCoef[t] *= res.RowScale[res.RRow[t]] * res.ColScale[res.RCol[t]]
	}
	for r := range res.RRHS {
		res.RRHS[r] *= res.RowScale[r]
	}
	for j := range res.RUB {
		res.RUB[j] /= res.ColScale[j] // +Inf stays +Inf
		res.RObj[j] *= res.ColScale[j]
	}
	return res
}

func newReducer(in *Input, tol float64) *reducer {
	nv, m := in.NumCols, in.NumRows
	rd := &reducer{
		nv: nv, m: m, tol: tol,
		obj:    in.Obj,
		ub:     append([]float64(nil), in.UB...),
		rhs:    append([]float64(nil), in.RHS...),
		sense:  in.Sense,
		fix:    make([]FixKind, nv),
		fixVal: make([]float64, nv),
		rowGone: make([]bool, m),
		shift:   make([]float64, m),
		ubFold:  make([]float64, nv),
		rowLen:  make([]int32, m),
		colLen:  make([]int32, nv),
	}
	for j := range rd.ubFold {
		rd.ubFold[j] = math.Inf(1)
	}

	// CSR with duplicate accumulation. Row segments are sized by the raw
	// triplet counts; dedup compacts in place and rEnd records live ends.
	nnz := len(in.Row)
	rd.rPtr = make([]int32, m+1)
	for _, r := range in.Row {
		rd.rPtr[r+1]++
	}
	for r := 0; r < m; r++ {
		rd.rPtr[r+1] += rd.rPtr[r]
	}
	rd.eCol = make([]int32, nnz)
	rd.eVal = make([]float64, nnz)
	next := append([]int32(nil), rd.rPtr[:m]...)
	for t := 0; t < nnz; t++ {
		r := in.Row[t]
		rd.eCol[next[r]] = in.Col[t]
		rd.eVal[next[r]] = in.Coef[t]
		next[r]++
	}
	rd.rEnd = make([]int32, m)
	mark := make([]int32, nv)
	for j := range mark {
		mark[j] = -1
	}
	for r := 0; r < m; r++ {
		w := rd.rPtr[r]
		for q := rd.rPtr[r]; q < rd.rPtr[r+1]; q++ {
			j := rd.eCol[q]
			if p := mark[j]; p >= 0 {
				rd.eVal[p] += rd.eVal[q]
				continue
			}
			mark[j] = w
			rd.eCol[w] = j
			rd.eVal[w] = rd.eVal[q]
			w++
		}
		// Second compaction: drop entries that accumulated to (near) zero.
		w2 := rd.rPtr[r]
		for q := rd.rPtr[r]; q < w; q++ {
			mark[rd.eCol[q]] = -1
			if math.Abs(rd.eVal[q]) <= 1e-12 {
				continue
			}
			rd.eCol[w2] = rd.eCol[q]
			rd.eVal[w2] = rd.eVal[q]
			w2++
		}
		rd.rEnd[r] = w2
		rd.rowLen[r] = w2 - rd.rPtr[r]
	}

	// Liveness, entry→row map, CSC cross-links.
	rd.alive = make([]bool, nnz)
	rd.eRow = make([]int32, nnz)
	for r := 0; r < m; r++ {
		for q := rd.rPtr[r]; q < rd.rEnd[r]; q++ {
			rd.alive[q] = true
			rd.eRow[q] = int32(r)
			rd.colLen[rd.eCol[q]]++
		}
	}
	rd.cPtr = make([]int32, nv+1)
	for j := 0; j < nv; j++ {
		rd.cPtr[j+1] = rd.cPtr[j] + rd.colLen[j]
	}
	rd.cEnt = make([]int32, rd.cPtr[nv])
	cnext := append([]int32(nil), rd.cPtr[:nv]...)
	for r := 0; r < m; r++ {
		for q := rd.rPtr[r]; q < rd.rEnd[r]; q++ {
			j := rd.eCol[q]
			rd.cEnt[cnext[j]] = q
			cnext[j]++
		}
	}
	return rd
}

func (rd *reducer) liveEntries() int {
	n := 0
	for r := 0; r < rd.m; r++ {
		n += int(rd.rowLen[r])
	}
	return n
}

func (rd *reducer) killEntry(q int32) {
	rd.alive[q] = false
	rd.rowLen[rd.eRow[q]]--
	rd.colLen[rd.eCol[q]]--
}

// fixCol pins column j at v, folds its coefficients into the RHS of every
// live row it touches, and removes its entries.
func (rd *reducer) fixCol(j int, v float64, kind FixKind) {
	rd.fix[j] = kind
	rd.fixVal[j] = v
	rd.fixedObj += rd.obj[j] * v
	rd.fixedCols++
	for p := rd.cPtr[j]; p < rd.cPtr[j+1]; p++ {
		q := rd.cEnt[p]
		if !rd.alive[q] {
			continue
		}
		r := rd.eRow[q]
		if v != 0 {
			rd.rhs[r] -= rd.eVal[q] * v
			rd.shift[r] += rd.eVal[q] * v
		}
		rd.killEntry(q)
	}
}

func (rd *reducer) removeRow(r int, redundant bool) {
	rd.rowGone[r] = true
	rd.removedRows++
	if redundant {
		rd.redundantRows++
	}
	for q := rd.rPtr[r]; q < rd.rEnd[r]; q++ {
		if rd.alive[q] {
			rd.killEntry(q)
		}
	}
}

// run iterates the reduction passes to a fixed point. Returns false when a
// reduction proves infeasibility.
func (rd *reducer) run(maxPasses int, st *Stats) bool {
	for pass := 0; pass < maxPasses; pass++ {
		st.Passes = pass + 1
		changed := false
		// Clamped/degenerate bounds → fixed columns.
		for j := 0; j < rd.nv; j++ {
			if rd.fix[j] == NotFixed && rd.ub[j] <= 1e-11 {
				rd.fixCol(j, 0, FixLower)
				changed = true
			}
		}
		// Row reductions.
		for r := 0; r < rd.m; r++ {
			if rd.rowGone[r] {
				continue
			}
			switch rd.rowLen[r] {
			case 0:
				if !rd.emptyRowFeasible(r) {
					return false
				}
				rd.removeRow(r, false)
				changed = true
			case 1:
				ok, ch := rd.singletonRow(r)
				if !ok {
					return false
				}
				changed = changed || ch
			default:
				ok, ch := rd.activityRow(r)
				if !ok {
					return false
				}
				changed = changed || ch
			}
		}
		// Column reductions.
		for j := 0; j < rd.nv; j++ {
			if rd.fix[j] != NotFixed {
				continue
			}
			switch rd.colLen[j] {
			case 0:
				if rd.obj[j] >= 0 {
					rd.fixCol(j, 0, FixLower)
					changed = true
				} else if !math.IsInf(rd.ub[j], 1) {
					rd.fixCol(j, rd.ub[j], FixUpper)
					changed = true
				}
				// obj < 0 with infinite bound: keep the empty column so the
				// solver reports unboundedness itself.
			case 1:
				if rd.singletonCol(j) {
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return true
}

func (rd *reducer) emptyRowFeasible(r int) bool {
	tol := rd.tol * (1 + math.Abs(rd.shift[r]))
	switch rd.sense[r] {
	case SenseLE:
		return rd.rhs[r] >= -tol
	case SenseGE:
		return rd.rhs[r] <= tol
	default:
		return math.Abs(rd.rhs[r]) <= tol
	}
}

// singletonRow reduces a row with one live entry a·x_j {≤,=,≥} b.
// Returns (feasible, changed).
func (rd *reducer) singletonRow(r int) (bool, bool) {
	var q int32 = -1
	for e := rd.rPtr[r]; e < rd.rEnd[r]; e++ {
		if rd.alive[e] {
			q = e
			break
		}
	}
	if q < 0 { // raced with a concurrent reduction in this pass
		return true, false
	}
	j := int(rd.eCol[q])
	a := rd.eVal[q]
	b := rd.rhs[r]
	bound := b / a
	tol := rd.tol * (1 + math.Abs(bound))
	sense := rd.sense[r]
	if sense == SenseEQ {
		// x_j = b/a exactly: fix and drop the row.
		if bound < -tol || bound > rd.ub[j]+tol {
			return false, false
		}
		v := bound
		if v < 0 {
			v = 0
		}
		if v > rd.ub[j] {
			v = rd.ub[j]
		}
		kind := FixValue
		if v == 0 {
			kind = FixLower
		} else if v == rd.ub[j] {
			kind = FixUpper
		}
		rd.fixCol(j, v, kind)
		rd.removeRow(r, false)
		return true, true
	}
	// Normalize to a "≤" (upper bound on x_j) or "≥" (lower bound) view.
	upperBound := (sense == SenseLE && a > 0) || (sense == SenseGE && a < 0)
	if upperBound {
		if bound < -tol {
			return false, false
		}
		if bound < 0 {
			bound = 0
		}
		if bound < rd.ubFold[j] {
			rd.ubFold[j] = bound
		}
		if bound < rd.ub[j] {
			rd.ub[j] = bound
		}
		rd.removeRow(r, false)
		return true, true
	}
	// Lower-bound view: x_j ≥ bound.
	if bound > rd.ub[j]+tol {
		return false, false
	}
	if bound <= tol {
		// Implied by x_j ≥ 0: the row is vacuous.
		rd.removeRow(r, false)
		return true, true
	}
	// A strictly positive lower bound cannot be represented in the 0-lower
	// form; leave the row for the solver.
	return true, false
}

// activityRow removes rows whose activity range cannot violate them and
// detects rows whose range cannot satisfy them.
func (rd *reducer) activityRow(r int) (bool, bool) {
	minact, maxact := 0.0, 0.0
	for q := rd.rPtr[r]; q < rd.rEnd[r]; q++ {
		if !rd.alive[q] {
			continue
		}
		a := rd.eVal[q]
		u := rd.ub[rd.eCol[q]]
		if a > 0 {
			if math.IsInf(u, 1) {
				maxact = math.Inf(1)
			} else {
				maxact += a * u
			}
		} else {
			if math.IsInf(u, 1) {
				minact = math.Inf(-1)
			} else {
				minact += a * u
			}
		}
	}
	b := rd.rhs[r]
	tol := rd.tol * (1 + math.Abs(b) + math.Abs(maxact) + math.Abs(minact))
	if math.IsInf(maxact, 1) || math.IsInf(minact, -1) {
		tol = rd.tol * (1 + math.Abs(b))
	}
	switch rd.sense[r] {
	case SenseLE:
		if minact > b+tol {
			return false, false
		}
		if maxact <= b+tol {
			rd.removeRow(r, true)
			return true, true
		}
	case SenseGE:
		if maxact < b-tol {
			return false, false
		}
		if minact >= b-tol {
			rd.removeRow(r, true)
			return true, true
		}
	default: // EQ
		if minact > b+tol || maxact < b-tol {
			return false, false
		}
	}
	return true, false
}

// singletonCol fixes a column with one live entry at the bound that relaxes
// its row, when the objective points the same way. Equality rows are left
// alone (the column is needed to satisfy them).
func (rd *reducer) singletonCol(j int) bool {
	var q int32 = -1
	for p := rd.cPtr[j]; p < rd.cPtr[j+1]; p++ {
		if rd.alive[rd.cEnt[p]] {
			q = rd.cEnt[p]
			break
		}
	}
	if q < 0 {
		return false
	}
	r := rd.eRow[q]
	a := rd.eVal[q]
	var relaxAtZero bool
	switch rd.sense[r] {
	case SenseLE:
		relaxAtZero = a > 0
	case SenseGE:
		relaxAtZero = a < 0
	default:
		return false
	}
	if relaxAtZero {
		if rd.obj[j] >= 0 {
			rd.fixCol(j, 0, FixLower)
			return true
		}
	} else if rd.obj[j] <= 0 && !math.IsInf(rd.ub[j], 1) {
		rd.fixCol(j, rd.ub[j], FixUpper)
		return true
	}
	return false
}

// emit compacts the surviving submatrix into the Result.
func (rd *reducer) emit(res *Result) {
	res.ColMap = make([]int32, rd.nv)
	res.RowMap = make([]int32, rd.m)
	for j := 0; j < rd.nv; j++ {
		res.ColMap[j] = -1
		if rd.fix[j] == NotFixed {
			res.ColMap[j] = int32(len(res.ColOrig))
			res.ColOrig = append(res.ColOrig, int32(j))
		}
	}
	for r := 0; r < rd.m; r++ {
		res.RowMap[r] = -1
		if !rd.rowGone[r] {
			res.RowMap[r] = int32(len(res.RowOrig))
			res.RowOrig = append(res.RowOrig, int32(r))
		}
	}
	nr, nc := len(res.RowOrig), len(res.ColOrig)
	res.RRHS = make([]float64, nr)
	res.RSense = make([]int8, nr)
	for r2, r := range res.RowOrig {
		res.RRHS[r2] = rd.rhs[r]
		res.RSense[r2] = rd.sense[r]
	}
	res.RObj = make([]float64, nc)
	res.RUB = make([]float64, nc)
	for j2, j := range res.ColOrig {
		res.RObj[j2] = rd.obj[j]
		res.RUB[j2] = rd.ub[j]
	}
	nnz := 0
	for r := 0; r < rd.m; r++ {
		if !rd.rowGone[r] {
			nnz += int(rd.rowLen[r])
		}
	}
	res.RRow = make([]int32, 0, nnz)
	res.RCol = make([]int32, 0, nnz)
	res.RCoef = make([]float64, 0, nnz)
	for r2, r := range res.RowOrig {
		for q := rd.rPtr[r]; q < rd.rEnd[r]; q++ {
			if !rd.alive[q] {
				continue
			}
			res.RRow = append(res.RRow, int32(r2))
			res.RCol = append(res.RCol, res.ColMap[rd.eCol[q]])
			res.RCoef = append(res.RCoef, rd.eVal[q])
		}
	}
	res.RowScale = make([]float64, nr)
	res.ColScale = make([]float64, nc)
	for r := range res.RowScale {
		res.RowScale[r] = 1
	}
	for j := range res.ColScale {
		res.ColScale[j] = 1
	}
	res.Stats.RowsAfter = nr
	res.Stats.ColsAfter = nc
	res.Stats.NNZAfter = nnz
}

// ruizScale runs Ruiz equilibration on the reduced triplets, accumulating
// the diagonal factors into res.RowScale/ColScale. The matrix values in
// RCoef are NOT modified here — Reduce applies the final scales once.
func ruizScale(res *Result, maxPasses int) {
	nr, nc := len(res.RRHS), len(res.RObj)
	if nr == 0 || nc == 0 || len(res.RCoef) == 0 {
		return
	}
	rmax := make([]float64, nr)
	cmax := make([]float64, nc)
	for pass := 0; pass < maxPasses; pass++ {
		for r := range rmax {
			rmax[r] = 0
		}
		for j := range cmax {
			cmax[j] = 0
		}
		for t, v := range res.RCoef {
			av := math.Abs(v) * res.RowScale[res.RRow[t]] * res.ColScale[res.RCol[t]]
			if r := res.RRow[t]; av > rmax[r] {
				rmax[r] = av
			}
			if j := res.RCol[t]; av > cmax[j] {
				cmax[j] = av
			}
		}
		converged := true
		for _, v := range rmax {
			if v != 0 && (v < 0.9 || v > 1.1) {
				converged = false
				break
			}
		}
		if converged {
			for _, v := range cmax {
				if v != 0 && (v < 0.9 || v > 1.1) {
					converged = false
					break
				}
			}
		}
		if converged {
			break
		}
		res.Stats.ScalePasses++
		for r, v := range rmax {
			if v > 0 {
				res.RowScale[r] /= math.Sqrt(v)
			}
		}
		for j, v := range cmax {
			if v > 0 {
				res.ColScale[j] /= math.Sqrt(v)
			}
		}
	}
}
