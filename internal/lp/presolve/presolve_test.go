package presolve

import (
	"math"
	"math/rand"
	"testing"
)

// tinyInput builds an Input from dense row descriptions for readable
// hand-constructed cases.
func tinyInput(obj, ub []float64, sense []int8, rhs []float64, rows [][]float64) *Input {
	in := &Input{NumCols: len(obj), NumRows: len(rows), Obj: obj, UB: ub, Sense: sense, RHS: rhs}
	for r, row := range rows {
		for j, v := range row {
			if v != 0 {
				in.Row = append(in.Row, int32(r))
				in.Col = append(in.Col, int32(j))
				in.Coef = append(in.Coef, v)
			}
		}
	}
	return in
}

func TestFixedColumnElimination(t *testing.T) {
	// x0 clamped to 0 (ub=0): its coefficients must fold out, and the row
	// with only x0 must disappear entirely.
	in := tinyInput(
		[]float64{1, 1},
		[]float64{0, 5},
		[]int8{SenseLE, SenseLE},
		[]float64{3, 4},
		[][]float64{{2, 1}, {1, 0}},
	)
	res := Reduce(in, Options{})
	if res.Infeasible {
		t.Fatal("unexpectedly infeasible")
	}
	if res.Fix[0] != FixLower || res.FixVal[0] != 0 {
		t.Fatalf("x0 not eliminated at 0: fix=%v val=%v", res.Fix[0], res.FixVal[0])
	}
	if res.Stats.ColsAfter >= res.Stats.ColsBefore {
		t.Fatalf("no column reduction: %+v", res.Stats)
	}
	// Row 1 (only x0) becomes 0 ≤ 3 and must be removed.
	if res.RowMap[1] != -1 {
		t.Fatalf("row with only the fixed column survived: RowMap=%v", res.RowMap)
	}
}

func TestEmptyRowInfeasible(t *testing.T) {
	// 0·x ≥ 2 is infeasible once x0 is eliminated.
	in := tinyInput(
		[]float64{1},
		[]float64{0},
		[]int8{SenseGE},
		[]float64{2},
		[][]float64{{1}},
	)
	res := Reduce(in, Options{})
	if !res.Infeasible {
		t.Fatal("want infeasible from empty GE row with positive rhs")
	}
}

func TestSingletonEQRowFixesColumn(t *testing.T) {
	// 2·x1 = 4 pins x1 = 2; the other row folds 3·2 = 6 out of its RHS.
	in := tinyInput(
		[]float64{1, 1},
		[]float64{10, 10},
		[]int8{SenseEQ, SenseLE},
		[]float64{4, 10},
		[][]float64{{0, 2}, {1, 3}},
	)
	res := Reduce(in, Options{})
	if res.Infeasible {
		t.Fatal("unexpectedly infeasible")
	}
	if res.Fix[1] != FixValue || math.Abs(res.FixVal[1]-2) > 1e-12 {
		t.Fatalf("x1 not pinned at 2: fix=%v val=%v", res.Fix[1], res.FixVal[1])
	}
	if math.Abs(res.RHSShift[1]-6) > 1e-12 {
		t.Fatalf("RHS fold on row 1 = %v, want 6", res.RHSShift[1])
	}
}

func TestSingletonLERowFoldsBound(t *testing.T) {
	// 2·x0 ≤ 3 is a bound x0 ≤ 1.5, tighter than ub=10: the row folds away.
	in := tinyInput(
		[]float64{-1, 0},
		[]float64{10, 1},
		[]int8{SenseLE, SenseLE},
		[]float64{3, 5},
		[][]float64{{2, 0}, {1, 1}},
	)
	res := Reduce(in, Options{})
	if res.Infeasible {
		t.Fatal("unexpectedly infeasible")
	}
	if res.RowMap[0] != -1 {
		t.Fatal("singleton LE row not removed")
	}
	if res.UBFold[0] > 1.5+1e-12 {
		t.Fatalf("UBFold[0]=%v, want ≤1.5", res.UBFold[0])
	}
	// The reduced ub of the kept column must reflect the fold (modulo the
	// column scaling, which is identity here with Scale off).
	if rj := res.ColMap[0]; rj >= 0 {
		if got := res.RUB[rj] * res.ColScale[rj]; math.Abs(got-1.5) > 1e-12 {
			t.Fatalf("reduced ub for x0 = %v, want 1.5", got)
		}
	}
}

func TestRedundantRowRemoval(t *testing.T) {
	// x0 + x1 ≤ 100 with ub 1 each is slack at any feasible point.
	in := tinyInput(
		[]float64{-1, -1},
		[]float64{1, 1},
		[]int8{SenseLE, SenseLE},
		[]float64{100, 1.5},
		[][]float64{{1, 1}, {1, 1}},
	)
	res := Reduce(in, Options{})
	if res.Stats.RedundantRows != 1 || res.RowMap[0] != -1 {
		t.Fatalf("redundant row not removed: %+v", res.Stats)
	}
	if res.RowMap[1] == -1 {
		t.Fatal("binding row was removed")
	}
}

func TestActivityInfeasible(t *testing.T) {
	// x0 + x1 ≥ 5 with ub 1 each can never reach 5.
	in := tinyInput(
		[]float64{0, 0},
		[]float64{1, 1},
		[]int8{SenseGE},
		[]float64{5},
		[][]float64{{1, 1}},
	)
	res := Reduce(in, Options{})
	if !res.Infeasible {
		t.Fatal("want infeasible from unreachable GE activity")
	}
}

func TestRuizScalingEquilibrates(t *testing.T) {
	// Wildly unbalanced coefficients: after scaling every row and column
	// max |a| must sit near 1.
	rng := rand.New(rand.NewSource(7))
	n, m := 12, 8
	in := &Input{NumCols: n, NumRows: m,
		Obj: make([]float64, n), UB: make([]float64, n),
		Sense: make([]int8, m), RHS: make([]float64, m)}
	for j := 0; j < n; j++ {
		in.Obj[j] = rng.NormFloat64()
		in.UB[j] = 1 + rng.Float64()*9
	}
	for r := 0; r < m; r++ {
		in.Sense[r] = SenseLE
		in.RHS[r] = 1e3 * (1 + rng.Float64())
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.5 {
				mag := math.Pow(10, float64(rng.Intn(9))-4) // 1e-4 … 1e4
				in.Row = append(in.Row, int32(r))
				in.Col = append(in.Col, int32(j))
				in.Coef = append(in.Coef, mag*(1+rng.Float64()))
			}
		}
	}
	res := Reduce(in, Options{Scale: true})
	if res.Infeasible {
		t.Fatal("unexpectedly infeasible")
	}
	if res.Stats.ScalePasses == 0 {
		t.Fatal("scaling did not run")
	}
	rmax := make([]float64, len(res.RRHS))
	cmax := make([]float64, len(res.RObj))
	for q, v := range res.RCoef {
		a := math.Abs(v)
		if a > rmax[res.RRow[q]] {
			rmax[res.RRow[q]] = a
		}
		if a > cmax[res.RCol[q]] {
			cmax[res.RCol[q]] = a
		}
	}
	for r, v := range rmax {
		if v != 0 && (v < 0.5 || v > 2) {
			t.Fatalf("row %d max |a| = %v after scaling", r, v)
		}
	}
	for j, v := range cmax {
		if v != 0 && (v < 0.5 || v > 2) {
			t.Fatalf("col %d max |a| = %v after scaling", j, v)
		}
	}
}

func TestPostsolveXMapsFixedAndScaled(t *testing.T) {
	in := tinyInput(
		[]float64{1, 1, 1},
		[]float64{0, 10, 10},
		[]int8{SenseEQ},
		[]float64{4},
		[][]float64{{1, 2, 0}},
	)
	res := Reduce(in, Options{Scale: true})
	if res.Infeasible {
		t.Fatal("unexpectedly infeasible")
	}
	// x0 fixed at 0; x1 pinned by the singleton EQ at 2 (after x0 folds
	// out); x2 is a zero column fixed at its cheapest bound 0.
	xOrig := make([]float64, 3)
	var xRed []float64
	if len(res.ColOrig) > 0 {
		xRed = make([]float64, len(res.ColOrig))
	}
	res.PostsolveX(xRed, xOrig)
	want := []float64{0, 2, 0}
	for j := range want {
		if math.Abs(xOrig[j]-want[j]) > 1e-9 {
			t.Fatalf("postsolve x = %v, want %v", xOrig, want)
		}
	}
}

// TestReduceFixedPointIdempotent: reducing an already-reduced problem must
// find nothing further (the fixed-point property the pass cap relies on).
func TestReduceFixedPointIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(8)
		m := 3 + rng.Intn(6)
		in := &Input{NumCols: n, NumRows: m,
			Obj: make([]float64, n), UB: make([]float64, n),
			Sense: make([]int8, m), RHS: make([]float64, m)}
		for j := 0; j < n; j++ {
			in.Obj[j] = rng.NormFloat64()
			in.UB[j] = rng.Float64() * 4
			if rng.Float64() < 0.2 {
				in.UB[j] = 0
			}
		}
		for r := 0; r < m; r++ {
			in.Sense[r] = int8(rng.Intn(3))
			in.RHS[r] = rng.Float64() * 6
			for j := 0; j < n; j++ {
				if rng.Float64() < 0.4 {
					in.Row = append(in.Row, int32(r))
					in.Col = append(in.Col, int32(j))
					in.Coef = append(in.Coef, rng.NormFloat64())
				}
			}
		}
		res := Reduce(in, Options{})
		if res.Infeasible {
			continue
		}
		again := Reduce(&Input{
			NumCols: len(res.RObj), NumRows: len(res.RRHS),
			Obj: res.RObj, UB: res.RUB, Sense: res.RSense, RHS: res.RRHS,
			Row: res.RRow, Col: res.RCol, Coef: res.RCoef,
		}, Options{})
		if again.Infeasible {
			t.Fatalf("trial %d: reduced problem re-reduces to infeasible", trial)
		}
		if again.HasReductions() {
			t.Fatalf("trial %d: second Reduce still found work: %+v", trial, again.Stats)
		}
	}
}

// schedShapedInput builds a scheduling-relaxation-shaped Input (load rows,
// assignment rows, link rows) with a clampFrac share of the x columns at
// ub=0 — the state a mid-search guess leaves the problem in.
func schedShapedInput(rng *rand.Rand, m, n int, clampFrac float64) *Input {
	nx := m * n
	nc := nx + m // x vars + one y var per machine
	in := &Input{NumCols: nc, Obj: make([]float64, nc), UB: make([]float64, nc)}
	for j := 0; j < nc; j++ {
		in.UB[j] = 1
		if j < nx && rng.Float64() < clampFrac {
			in.UB[j] = 0
		}
	}
	addRow := func(sense int8, rhs float64) int32 {
		r := int32(in.NumRows)
		in.NumRows++
		in.Sense = append(in.Sense, sense)
		in.RHS = append(in.RHS, rhs)
		return r
	}
	add := func(r int32, j int, v float64) {
		in.Row = append(in.Row, r)
		in.Col = append(in.Col, int32(j))
		in.Coef = append(in.Coef, v)
	}
	for i := 0; i < m; i++ {
		r := addRow(SenseLE, 2+float64(n)/float64(m)*2)
		for j := 0; j < n; j++ {
			add(r, i*n+j, 0.5+rng.Float64()*2)
		}
		add(r, nx+i, 0.2+rng.Float64())
	}
	for j := 0; j < n; j++ {
		r := addRow(SenseEQ, 1)
		for i := 0; i < m; i++ {
			add(r, i*n+j, 1)
		}
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			r := addRow(SenseLE, 0)
			add(r, i*n+j, 1)
			add(r, nx+i, -1)
		}
	}
	return in
}

// BenchmarkPresolveReduce measures the whole pipeline (reductions to a
// fixed point plus Ruiz scaling) on scheduling-shaped LPs, unclamped (the
// envelope build) and with a third of the columns clamped (a mid-search
// guess).
func BenchmarkPresolveReduce(b *testing.B) {
	for _, tc := range []struct {
		name      string
		m, n      int
		clampFrac float64
	}{
		{"m20n200/envelope", 20, 200, 0},
		{"m20n200/clamped", 20, 200, 0.33},
	} {
		b.Run(tc.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(2))
			in := schedShapedInput(rng, tc.m, tc.n, tc.clampFrac)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := Reduce(in, Options{Scale: true})
				if res.Infeasible {
					b.Fatal("unexpectedly infeasible")
				}
			}
		})
	}
}
