package lp

import "math"

// standardForm is the canonical shape shared by all backends:
//
//	minimize    c·x
//	subject to  A x + I s = b
//	            0 ≤ x_j ≤ u_j,  0 ≤ s_r ≤ su_r
//
// GE rows are negated at build time so every row is LE (slack ub +∞) or EQ
// (slack ub 0); b may therefore be negative, which the bound-violation
// phase 1 handles without artificial variables. Structural columns are
// stored sparse (CSC); slack columns are implicit unit vectors.
type standardForm struct {
	m  int // rows
	nv int // structural variables
	n  int // total columns: nv + m (one slack per row)

	colPtr []int32 // nv+1 offsets into colRow/colVal
	colRow []int32
	colVal []float64

	obj     []float64 // length nv (slack cost is 0)
	ub      []float64 // length n: structural bounds then slack bounds
	rhs     []float64 // length m, current (sign-adjusted) right-hand sides
	rowSign []float64 // +1/-1 per row, applied to SetRHS updates

	objZero bool // every objective coefficient is 0 (a feasibility LP)
}

// build populates the standard form from a Problem, reusing ws buffers.
func (sf *standardForm) build(p *Problem, ws *Workspace) {
	m, nv := len(p.rows), len(p.obj)
	n := nv + m
	sf.m, sf.nv, sf.n = m, nv, n

	sf.obj = growF(&ws.sfObj, nv)
	copy(sf.obj, p.obj)
	sf.objZero = true
	for _, c := range sf.obj {
		if c != 0 {
			sf.objZero = false
			break
		}
	}
	sf.ub = growF(&ws.sfUB, n)
	copy(sf.ub, p.ub)
	sf.rhs = growF(&ws.sfRHS, m)
	sf.rowSign = growF(&ws.sfSign, m)

	// Column counts first, then prefix sums, then fill. The problem stores
	// coefficients as append-only triplets; a variable repeated within one
	// row simply yields duplicate (row, col) CSC entries, which is harmless
	// because every access path (scatterColumn, dotColumn) accumulates.
	cnt := growI32(&ws.sfCnt, nv+1)
	for i := range cnt {
		cnt[i] = 0
	}
	nnz := len(p.tRow)
	for _, v := range p.tVar {
		cnt[v+1]++
	}
	sf.colPtr = growI32(&ws.sfPtr, nv+1)
	sf.colPtr[0] = 0
	for j := 0; j < nv; j++ {
		sf.colPtr[j+1] = sf.colPtr[j] + cnt[j+1]
	}
	sf.colRow = growI32(&ws.sfRow, nnz)
	sf.colVal = growF(&ws.sfVal, nnz)
	next := growI32(&ws.sfNext, nv)
	copy(next, sf.colPtr[:nv])
	for r, row := range p.rows {
		sign := 1.0
		if row.sense == GE {
			sign = -1 // a·x ≥ b  ⇔  −a·x ≤ −b
		}
		sf.rowSign[r] = sign
		sf.rhs[r] = sign * row.rhs
		switch row.sense {
		case EQ:
			sf.ub[nv+r] = 0 // slack pinned: equality
		default:
			sf.ub[nv+r] = math.Inf(1)
		}
	}
	for t, r := range p.tRow {
		v := p.tVar[t]
		k := next[v]
		sf.colRow[k] = r
		sf.colVal[k] = sf.rowSign[r] * p.tCoef[t]
		next[v] = k + 1
	}
}

// copyFrom deep-copies src into sf using ws-backed storage, so the copy
// shares no mutable state with the source (Backend.Clone's substrate).
func (sf *standardForm) copyFrom(src *standardForm, ws *Workspace) {
	sf.m, sf.nv, sf.n, sf.objZero = src.m, src.nv, src.n, src.objZero
	sf.obj = growF(&ws.sfObj, len(src.obj))
	copy(sf.obj, src.obj)
	sf.ub = growF(&ws.sfUB, len(src.ub))
	copy(sf.ub, src.ub)
	sf.rhs = growF(&ws.sfRHS, len(src.rhs))
	copy(sf.rhs, src.rhs)
	sf.rowSign = growF(&ws.sfSign, len(src.rowSign))
	copy(sf.rowSign, src.rowSign)
	sf.colPtr = growI32(&ws.sfPtr, len(src.colPtr))
	copy(sf.colPtr, src.colPtr)
	sf.colRow = growI32(&ws.sfRow, len(src.colRow))
	copy(sf.colRow, src.colRow)
	sf.colVal = growF(&ws.sfVal, len(src.colVal))
	copy(sf.colVal, src.colVal)
}

// scatterColumn adds scale·(column j) into the dense vector v.
func (sf *standardForm) scatterColumn(j int, scale float64, v []float64) {
	if j >= sf.nv {
		v[j-sf.nv] += scale
		return
	}
	for k := sf.colPtr[j]; k < sf.colPtr[j+1]; k++ {
		v[sf.colRow[k]] += scale * sf.colVal[k]
	}
}

// dotColumn returns y·a_j for the dense vector y.
func (sf *standardForm) dotColumn(j int, y []float64) float64 {
	if j >= sf.nv {
		return y[j-sf.nv]
	}
	s := 0.0
	for k := sf.colPtr[j]; k < sf.colPtr[j+1]; k++ {
		s += y[sf.colRow[k]] * sf.colVal[k]
	}
	return s
}

// colNNZ returns the stored nonzero count of column j (1 for slacks).
func (sf *standardForm) colNNZ(j int) int {
	if j >= sf.nv {
		return 1
	}
	return int(sf.colPtr[j+1] - sf.colPtr[j])
}

// objAt returns the objective coefficient of column j (0 for slacks).
func (sf *standardForm) objAt(j int) float64 {
	if j >= sf.nv {
		return 0
	}
	return sf.obj[j]
}

// basisRep abstracts the representation of the basis inverse B⁻¹. The
// solver core drives it through four operations; the dense backend keeps an
// explicit m×m inverse, the sparse backend a product-form eta file.
type basisRep interface {
	// reset reinstalls the identity (the all-slack basis).
	reset(m int)
	// ftran overwrites v with B⁻¹·v.
	ftran(v []float64)
	// btran overwrites y with yᵀ·B⁻¹ (y is treated as a row vector).
	btran(y []float64)
	// btranUnit overwrites y with row r of B⁻¹ (eᵣᵀ·B⁻¹).
	btranUnit(r int, y []float64)
	// update records a basis change at row r whose entering column, in
	// current basis coordinates, is w (so w[r] is the pivot element).
	update(r int, w []float64)
	// shouldRefactor reports that the representation has grown stale
	// (e.g. the eta file is long) and a refactorization would pay off.
	shouldRefactor() bool
	// markRefactored tells the representation that the updates applied
	// since the last reset constitute a fresh factorization (so its size
	// is the new staleness baseline, not accumulated churn).
	markRefactored()
	// clone returns an independent deep copy: applying updates to either
	// copy never perturbs the other (Backend.Clone's substrate).
	clone() basisRep
}

// etaDropTol drops negligible eta entries; values this small are far below
// the solver's pivot tolerance and only bloat the file.
const etaDropTol = 1e-13

// etaFile is the product-form inverse: B⁻¹ = E_K···E_1 where each eta
// matrix E is the identity with column pivRow replaced by the stored
// entries. ftran applies etas oldest→newest, btran newest→oldest.
type etaFile struct {
	m      int
	pivRow []int32
	start  []int32 // len(pivRow)+1 offsets into idx/val
	idx    []int32
	val    []float64
	nnz    int

	// Refactorization baseline: the file size right after the last
	// refactorization. A large basis legitimately factorizes into a large
	// file, so staleness is measured relative to it, not absolutely —
	// otherwise refactoring could re-trigger itself forever.
	baseNNZ  int
	baseEtas int
}

func (e *etaFile) reset(m int) {
	e.m = m
	e.pivRow = e.pivRow[:0]
	e.start = append(e.start[:0], 0)
	e.idx = e.idx[:0]
	e.val = e.val[:0]
	e.nnz = 0
	e.baseNNZ = 0
	e.baseEtas = 0
}

func (e *etaFile) ftran(v []float64) {
	for k := 0; k < len(e.pivRow); k++ {
		r := e.pivRow[k]
		t := v[r]
		if t == 0 {
			continue
		}
		v[r] = 0
		for q := e.start[k]; q < e.start[k+1]; q++ {
			v[e.idx[q]] += e.val[q] * t
		}
	}
}

func (e *etaFile) btran(y []float64) {
	for k := len(e.pivRow) - 1; k >= 0; k-- {
		s := 0.0
		for q := e.start[k]; q < e.start[k+1]; q++ {
			s += y[e.idx[q]] * e.val[q]
		}
		y[e.pivRow[k]] = s
	}
}

func (e *etaFile) btranUnit(r int, y []float64) {
	for i := range y {
		y[i] = 0
	}
	y[r] = 1
	e.btran(y)
}

func (e *etaFile) update(r int, w []float64) {
	inv := 1 / w[r]
	e.pivRow = append(e.pivRow, int32(r))
	for i, wi := range w {
		var v float64
		if i == r {
			v = inv
		} else if wi != 0 {
			v = -wi * inv
		} else {
			continue
		}
		if math.Abs(v) < etaDropTol {
			continue
		}
		e.idx = append(e.idx, int32(i))
		e.val = append(e.val, v)
		e.nnz++
	}
	e.start = append(e.start, int32(len(e.idx)))
}

func (e *etaFile) shouldRefactor() bool {
	// Refactorizing replays one ftran+update per basic column; it pays off
	// once the accumulated churn (file growth beyond the post-refactor
	// baseline) costs several times a fresh factorization, and is pointless
	// before a meaningful number of pivots has accumulated.
	if len(e.pivRow)-e.baseEtas < 64 {
		return false
	}
	return e.nnz > 2*e.baseNNZ+4*e.m+1024
}

func (e *etaFile) markRefactored() {
	e.baseNNZ = e.nnz
	e.baseEtas = len(e.pivRow)
}

func (e *etaFile) clone() basisRep {
	return &etaFile{
		m:        e.m,
		pivRow:   append([]int32(nil), e.pivRow...),
		start:    append([]int32(nil), e.start...),
		idx:      append([]int32(nil), e.idx...),
		val:      append([]float64(nil), e.val...),
		nnz:      e.nnz,
		baseNNZ:  e.baseNNZ,
		baseEtas: e.baseEtas,
	}
}
