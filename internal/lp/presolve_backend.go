package lp

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/lp/presolve"
)

// BackendOption configures NewBackend beyond the kind/problem/workspace
// triple. Options are additive so existing call sites keep compiling.
type BackendOption func(*backendConfig)

type backendConfig struct {
	presolve bool
}

// WithPresolve toggles the presolve+scaling pipeline in front of the
// backend (default: on). When on, the first cold Solve runs the reduction
// pipeline on the mutated problem (so clamps written before the first
// Solve are eliminated, not ground through), solves the reduced/equilibrated
// LP, and postsolves solutions and bases exactly. Mutations that invalidate
// a recorded reduction transparently fall back to the unreduced problem,
// transplanting the postsolved basis, so verdicts are always exact.
func WithPresolve(on bool) BackendOption {
	return func(c *backendConfig) { c.presolve = on }
}

// PresolveInfo reports what the presolve pipeline did for one backend
// build. It is attached to every Solution solved through a presolved
// backend (Solution.Presolve).
type PresolveInfo struct {
	RowsBefore, RowsAfter int
	ColsBefore, ColsAfter int
	NNZBefore, NNZAfter   int
	ScalePasses           int
	// Bypassed is set when a mutation invalidated the recorded reductions
	// and the backend fell back to the full problem.
	Bypassed bool
}

// RowReduction returns the fraction of rows eliminated (0 when bypassed).
func (pi *PresolveInfo) RowReduction() float64 {
	if pi == nil || pi.RowsBefore == 0 {
		return 0
	}
	return float64(pi.RowsBefore-pi.RowsAfter) / float64(pi.RowsBefore)
}

// NNZReduction returns the fraction of nonzeros eliminated.
func (pi *PresolveInfo) NNZReduction() float64 {
	if pi == nil || pi.NNZBefore == 0 {
		return 0
	}
	return float64(pi.NNZBefore-pi.NNZAfter) / float64(pi.NNZBefore)
}

// PresolveTotalsSnapshot is a process-wide aggregate of presolve activity,
// for /statsz and schedbench reporting.
type PresolveTotalsSnapshot struct {
	Runs        int64 `json:"runs"`
	Bypasses    int64 `json:"bypasses"`
	Infeasible  int64 `json:"infeasible"`
	RowsBefore  int64 `json:"rowsBefore"`
	RowsAfter   int64 `json:"rowsAfter"`
	ColsBefore  int64 `json:"colsBefore"`
	ColsAfter   int64 `json:"colsAfter"`
	NNZBefore   int64 `json:"nnzBefore"`
	NNZAfter    int64 `json:"nnzAfter"`
	ScalePasses int64 `json:"scalePasses"`
}

var presolveAgg struct {
	runs, bypasses, infeasible                atomic.Int64
	rowsBefore, rowsAfter                     atomic.Int64
	colsBefore, colsAfter                     atomic.Int64
	nnzBefore, nnzAfter, scalePasses          atomic.Int64
}

// PresolveTotals snapshots the process-wide presolve aggregates.
func PresolveTotals() PresolveTotalsSnapshot {
	return PresolveTotalsSnapshot{
		Runs:        presolveAgg.runs.Load(),
		Bypasses:    presolveAgg.bypasses.Load(),
		Infeasible:  presolveAgg.infeasible.Load(),
		RowsBefore:  presolveAgg.rowsBefore.Load(),
		RowsAfter:   presolveAgg.rowsAfter.Load(),
		ColsBefore:  presolveAgg.colsBefore.Load(),
		ColsAfter:   presolveAgg.colsAfter.Load(),
		NNZBefore:   presolveAgg.nnzBefore.Load(),
		NNZAfter:    presolveAgg.nnzAfter.Load(),
		ScalePasses: presolveAgg.scalePasses.Load(),
	}
}

// ResetPresolveTotals zeroes the process-wide presolve aggregates.
func ResetPresolveTotals() {
	presolveAgg.runs.Store(0)
	presolveAgg.bypasses.Store(0)
	presolveAgg.infeasible.Store(0)
	presolveAgg.rowsBefore.Store(0)
	presolveAgg.rowsAfter.Store(0)
	presolveAgg.colsBefore.Store(0)
	presolveAgg.colsAfter.Store(0)
	presolveAgg.nnzBefore.Store(0)
	presolveAgg.nnzAfter.Store(0)
	presolveAgg.scalePasses.Store(0)
}

// presolveBackend wraps a concrete backend behind the reduction pipeline.
// It has three states:
//
//   - pending: no inner backend yet. Mutations accumulate in the local
//     full-space arrays; the first Solve presolves the mutated problem
//     (this is how the ub-clamps ReSolve writes before the first solve get
//     eliminated instead of solved around).
//   - presolved: the inner backend holds the reduced+scaled problem.
//     Mutations that touch surviving rows/columns forward in reduced
//     coordinates; verdicts, X, objective and bases postsolve exactly.
//   - bypass: a mutation invalidated a recorded reduction (raising a bound
//     the redundancy analysis consumed, re-activating an eliminated column,
//     moving the RHS of a removed row). The inner backend is rebuilt on the
//     full problem, warm-started from the postsolved basis, and the wrapper
//     becomes a transparent passthrough.
//
// The wrapper snapshots the Problem at construction (same contract as the
// concrete backends: later Problem mutations are not observed).
type presolveBackend struct {
	kind BackendKind // resolved inner kind (never Auto)
	ws   *Workspace

	// Full-space problem snapshot; rhs/ub are the mutable mutation state.
	nv, m int
	obj   []float64 // immutable, shared across clones
	sense []int8    // immutable, shared
	tRow  []int32   // immutable, shared
	tVar  []int32
	tCoef []float64
	ub    []float64 // current bounds (per-clone)
	rhs   []float64 // current rhs (per-clone)

	inner Backend          // nil ⇒ pending
	red   *presolve.Result // nil with inner ⇒ bypass
	info  *PresolveInfo    // stats of the last presolve/bypass (may be nil)

	xFull  []float64
	solBuf Solution
}

func newPresolveBackend(kind BackendKind, p *Problem, ws *Workspace) *presolveBackend {
	s := &presolveBackend{
		kind:  kind,
		ws:    ws,
		nv:    len(p.obj),
		m:     len(p.rows),
		obj:   append([]float64(nil), p.obj...),
		ub:    append([]float64(nil), p.ub...),
		tRow:  append([]int32(nil), p.tRow...),
		tVar:  append([]int32(nil), p.tVar...),
		tCoef: append([]float64(nil), p.tCoef...),
	}
	s.sense = make([]int8, s.m)
	s.rhs = make([]float64, s.m)
	for r, rm := range p.rows {
		s.sense[r] = int8(rm.sense)
		s.rhs[r] = rm.rhs
	}
	return s
}

// fullProblem materializes the current full-space state as a Problem for a
// bypass rebuild. The triplet slices are shared (the backends copy them
// into their standard form at construction).
func (s *presolveBackend) fullProblem() *Problem {
	p := &Problem{
		obj:   s.obj,
		ub:    s.ub,
		rows:  make([]rowMeta, s.m),
		tRow:  s.tRow,
		tVar:  s.tVar,
		tCoef: s.tCoef,
	}
	for r := range p.rows {
		p.rows[r] = rowMeta{sense: Sense(s.sense[r]), rhs: s.rhs[r]}
	}
	return p
}

// runPresolve reduces the current full-space state and, unless the outcome
// is trivial (infeasible, or nothing survives), builds the inner backend on
// the reduced problem.
func (s *presolveBackend) runPresolve() *presolve.Result {
	in := &presolve.Input{
		NumCols: s.nv,
		NumRows: s.m,
		Obj:     s.obj,
		UB:      s.ub,
		Sense:   s.sense,
		RHS:     s.rhs,
		Row:     s.tRow,
		Col:     s.tVar,
		Coef:    s.tCoef,
	}
	res := presolve.Reduce(in, presolve.Options{Scale: true})
	st := &res.Stats
	s.info = &PresolveInfo{
		RowsBefore: st.RowsBefore, RowsAfter: st.RowsAfter,
		ColsBefore: st.ColsBefore, ColsAfter: st.ColsAfter,
		NNZBefore: st.NNZBefore, NNZAfter: st.NNZAfter,
		ScalePasses: st.ScalePasses,
	}
	presolveAgg.runs.Add(1)
	presolveAgg.rowsBefore.Add(int64(st.RowsBefore))
	presolveAgg.rowsAfter.Add(int64(st.RowsAfter))
	presolveAgg.colsBefore.Add(int64(st.ColsBefore))
	presolveAgg.colsAfter.Add(int64(st.ColsAfter))
	presolveAgg.nnzBefore.Add(int64(st.NNZBefore))
	presolveAgg.nnzAfter.Add(int64(st.NNZAfter))
	presolveAgg.scalePasses.Add(int64(st.ScalePasses))
	if res.Infeasible {
		presolveAgg.infeasible.Add(1)
	}
	return res
}

// reducedProblem assembles the reduced+scaled LP as a Problem.
func reducedProblem(res *presolve.Result) *Problem {
	p := &Problem{
		obj:   res.RObj,
		ub:    res.RUB,
		rows:  make([]rowMeta, len(res.RRHS)),
		tRow:  res.RRow,
		tVar:  res.RCol,
		tCoef: res.RCoef,
	}
	for r := range p.rows {
		p.rows[r] = rowMeta{sense: Sense(res.RSense[r]), rhs: res.RRHS[r]}
	}
	return p
}

func (s *presolveBackend) Solve() (*Solution, error) {
	if s.inner == nil {
		res := s.runPresolve()
		if res.Infeasible {
			// Stay pending: later mutations can restore feasibility, and
			// the next Solve re-presolves the then-current state.
			return s.verdictSolution(Infeasible, 0), nil
		}
		if len(res.RowOrig) == 0 || len(res.ColOrig) == 0 {
			return s.trivialSolution(res), nil
		}
		inner, err := newResolvedBackend(s.kind, reducedProblem(res), s.ws)
		if err != nil {
			return nil, err
		}
		s.inner = inner
		s.red = res
	}
	innerSol, err := s.inner.Solve()
	if err != nil {
		return nil, err
	}
	if s.red == nil { // bypass passthrough
		out := &s.solBuf
		*out = *innerSol
		out.Presolve = s.info
		return out, nil
	}
	out := &s.solBuf
	out.Status = innerSol.Status
	out.Iterations = innerSol.Iterations
	out.Presolve = s.info
	out.X = growF(&s.xFull, s.nv)
	out.Objective = 0
	if innerSol.Status == Optimal {
		s.red.PostsolveX(innerSol.X, out.X)
		out.Objective = innerSol.Objective + s.red.FixedObj
	} else {
		for i := range out.X {
			out.X[i] = 0
		}
	}
	return out, nil
}

// verdictSolution reports a presolve-determined verdict without an inner
// backend. The wrapper stays pending so the next Solve re-presolves.
func (s *presolveBackend) verdictSolution(st Status, obj float64) *Solution {
	out := &s.solBuf
	out.Status = st
	out.Iterations = 0
	out.Objective = obj
	out.Presolve = s.info
	out.X = growF(&s.xFull, s.nv)
	for i := range out.X {
		out.X[i] = 0
	}
	return out
}

// trivialSolution finishes a solve where presolve eliminated every row or
// every column: the survivors are independent, so the optimum is read off
// directly. The wrapper stays pending (re-presolving per Solve keeps later
// mutations exact; the reduction is cheap at these sizes).
func (s *presolveBackend) trivialSolution(res *presolve.Result) *Solution {
	const tol = 1e-9
	// Rows that survived with no columns left must hold at zero activity.
	for r2 := range res.RowOrig {
		b := res.RRHS[r2]
		t := tol * (1 + math.Abs(b))
		switch res.RSense[r2] {
		case presolve.SenseLE:
			if b < -t {
				return s.verdictSolution(Infeasible, 0)
			}
		case presolve.SenseGE:
			if b > t {
				return s.verdictSolution(Infeasible, 0)
			}
		default:
			if math.Abs(b) > t {
				return s.verdictSolution(Infeasible, 0)
			}
		}
	}
	// Columns that survived with no rows left move to their cost bound.
	obj := res.FixedObj
	xRed := make([]float64, len(res.ColOrig))
	for j2 := range res.ColOrig {
		if c := res.RObj[j2]; c < 0 {
			u := res.RUB[j2]
			if math.IsInf(u, 1) {
				return s.verdictSolution(Unbounded, 0)
			}
			xRed[j2] = u
			obj += c * u
		}
	}
	out := s.verdictSolution(Optimal, obj)
	res.PostsolveX(xRed, out.X)
	return out
}

func (s *presolveBackend) SetRHS(r int, rhs float64) {
	if r < 0 || r >= s.m {
		panic(fmt.Sprintf("lp: SetRHS row %d out of range", r))
	}
	if math.IsNaN(rhs) || math.IsInf(rhs, 0) {
		panic(fmt.Sprintf("lp: invalid rhs %v", rhs))
	}
	s.rhs[r] = rhs
	switch {
	case s.inner == nil: // pending: picked up by the next presolve
	case s.red == nil:
		s.inner.SetRHS(r, rhs)
	default:
		r2 := s.red.RowMap[r]
		if r2 < 0 {
			// The row was eliminated assuming its presolve-time RHS; a
			// different value invalidates that reduction.
			if rhs == s.red.RHSAt[r] {
				return
			}
			s.bypass()
			s.inner.SetRHS(r, rhs)
			return
		}
		s.inner.SetRHS(int(r2), (rhs-s.red.RHSShift[r])*s.red.RowScale[r2])
	}
}

func (s *presolveBackend) SetVarUpper(v int, upper float64) {
	if v < 0 || v >= s.nv {
		panic(fmt.Sprintf("lp: SetVarUpper variable %d out of range", v))
	}
	if upper < 0 || math.IsNaN(upper) {
		panic(fmt.Sprintf("lp: invalid upper bound %v", upper))
	}
	s.ub[v] = upper
	switch {
	case s.inner == nil: // pending
	case s.red == nil:
		s.inner.SetVarUpper(v, upper)
	default:
		red := s.red
		if red.Fix[v] != presolve.NotFixed {
			// Re-clamping an eliminated-at-zero column is a no-op; anything
			// else re-activates it and invalidates the elimination.
			if red.Fix[v] == presolve.FixLower && red.FixVal[v] == 0 && upper == 0 {
				return
			}
			s.bypass()
			s.inner.SetVarUpper(v, upper)
			return
		}
		if upper > red.UBAt[v] && red.Stats.RedundantRows > 0 {
			// Redundant-row removal consumed activity bounds built from the
			// presolve-time ub's; raising one past that envelope could
			// resurrect a removed row.
			s.bypass()
			s.inner.SetVarUpper(v, upper)
			return
		}
		eff := upper
		if f := red.UBFold[v]; f < eff {
			eff = f
		}
		j2 := red.ColMap[v]
		s.inner.SetVarUpper(int(j2), eff/red.ColScale[j2])
	}
}

func (s *presolveBackend) Basis() *Basis {
	if s.inner == nil {
		// Pending: the canonical all-slack starting basis.
		b := &Basis{Cols: make([]int, s.m), Status: make([]VarStatus, s.nv+s.m)}
		for r := 0; r < s.m; r++ {
			b.Cols[r] = s.nv + r
			b.Status[s.nv+r] = BasicVar
		}
		return b
	}
	if s.red == nil {
		return s.inner.Basis()
	}
	return s.postsolveBasis(s.inner.Basis())
}

// postsolveBasis maps a reduced-space basis onto the full standard form:
// kept rows and columns carry their statuses over, every removed row is
// basic in its own slack, and eliminated columns sit nonbasic at the bound
// they were pinned to (interior equality-singleton fixes map to the lower
// bound; the receiving dual simplex repairs those in a pivot each). The
// result is block-diagonal over (kept, removed) and hence nonsingular
// whenever the reduced basis is.
func (s *presolveBackend) postsolveBasis(rb *Basis) *Basis {
	red := s.red
	rnv := len(red.ColOrig)
	nb := &Basis{Cols: make([]int, s.m), Status: make([]VarStatus, s.nv+s.m)}
	for r := 0; r < s.m; r++ {
		nb.Cols[r] = s.nv + r
		nb.Status[s.nv+r] = BasicVar
	}
	for r2, rOrig := range red.RowOrig {
		c := rb.Cols[r2]
		if c < rnv {
			nb.Cols[rOrig] = int(red.ColOrig[c])
		} else {
			nb.Cols[rOrig] = s.nv + int(red.RowOrig[c-rnv])
		}
		nb.Status[s.nv+int(rOrig)] = rb.Status[rnv+r2]
	}
	for j2, jOrig := range red.ColOrig {
		nb.Status[jOrig] = rb.Status[j2]
	}
	for j := 0; j < s.nv; j++ {
		switch red.Fix[j] {
		case presolve.FixLower, presolve.FixValue:
			nb.Status[j] = NonbasicLower
		case presolve.FixUpper:
			nb.Status[j] = NonbasicUpper
		}
	}
	return nb
}

func (s *presolveBackend) Warm(b *Basis) error {
	if b == nil || len(b.Cols) != s.m || len(b.Status) != s.nv+s.m {
		return fmt.Errorf("lp: Warm basis has wrong shape (want %d rows, %d columns)", s.m, s.nv+s.m)
	}
	// A full-space basis transplant only makes sense on the full problem.
	if s.inner == nil || s.red != nil {
		if err := s.bypass(); err != nil {
			return err
		}
	}
	return s.inner.Warm(b)
}

// bypass rebuilds the inner backend on the unreduced problem, carrying the
// postsolved basis over so the re-solve is a dual-simplex repair rather
// than a cold start.
func (s *presolveBackend) bypass() error {
	var wb *Basis
	if s.inner != nil && s.red != nil {
		wb = s.postsolveBasis(s.inner.Basis())
	}
	s.red = nil
	inner, err := newResolvedBackend(s.kind, s.fullProblem(), s.ws)
	if err != nil {
		return err
	}
	s.inner = inner
	if wb != nil {
		// Best effort: a failed transplant just means a cold re-solve.
		_ = inner.Warm(wb)
	}
	s.info = &PresolveInfo{
		RowsBefore: s.m, RowsAfter: s.m,
		ColsBefore: s.nv, ColsAfter: s.nv,
		Bypassed: true,
	}
	presolveAgg.bypasses.Add(1)
	return nil
}

func (s *presolveBackend) Kind() BackendKind { return s.kind }

func (s *presolveBackend) Clone() Backend {
	c := &presolveBackend{
		kind: s.kind,
		ws:   NewWorkspace(),
		nv:   s.nv, m: s.m,
		obj:   s.obj, // immutable: shared
		sense: s.sense,
		tRow:  s.tRow,
		tVar:  s.tVar,
		tCoef: s.tCoef,
		ub:    append([]float64(nil), s.ub...),
		rhs:   append([]float64(nil), s.rhs...),
		red:   s.red, // immutable after Reduce: shared
		info:  s.info,
	}
	if s.inner != nil {
		c.inner = s.inner.Clone()
	}
	return c
}
