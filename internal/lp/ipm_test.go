package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestIPMAgreesOnRandomCorpus is the IPM differential against the legacy
// tableau oracle over the same corpus shapes as the simplex backends. The
// hybrid design makes this unconditional: any LP the interior-point phase
// cannot converge on (tiny, degenerate, unbounded, …) falls back to the
// exact simplex inside the same backend.
func TestIPMAgreesOnRandomCorpus(t *testing.T) {
	gens := map[string]func(*rand.Rand) *problemSpec{
		"box":   randomBoxSpec,
		"eq":    randomEqSpec,
		"mixed": randomMixedSpec,
	}
	for name, gen := range gens {
		gen := gen
		t.Run(name, func(t *testing.T) {
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				ps := gen(rng)
				legacy, err := ps.build().Solve()
				if err != nil {
					t.Fatalf("legacy Solve: %v", err)
				}
				be, err := NewBackend(IPM, ps.build(), nil)
				if err != nil {
					t.Fatalf("NewBackend(ipm): %v", err)
				}
				sol, err := be.Solve()
				if err != nil {
					t.Fatalf("ipm Solve: %v", err)
				}
				agree(t, ps, "ipm", legacy, cloneSolution(sol))
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestIPMDetectsInfeasible: contradicting equalities must still come back
// Infeasible — the verdict is the simplex fallback's certificate, never an
// interior-point guess.
func TestIPMDetectsInfeasible(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 + rng.Intn(4)
		ps := &problemSpec{}
		for j := 0; j < d; j++ {
			ps.obj = append(ps.obj, 0)
			ps.ub = append(ps.ub, 10)
		}
		var terms []Term
		for j := 0; j < d; j++ {
			terms = append(terms, Term{j, 1 + rng.Float64()})
		}
		ps.rows = append(ps.rows, specRow{EQ, 5, terms})
		ps.rows = append(ps.rows, specRow{EQ, 7, terms})
		be, err := NewBackend(IPM, ps.build(), nil)
		if err != nil {
			t.Fatalf("NewBackend: %v", err)
		}
		sol, err := be.Solve()
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		return sol.Status == Infeasible
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// schedSpec builds an ILP-UM-shaped feasibility LP (load rows, assignment
// rows, x≤y link rows) big enough for the interior-point phase to engage
// and converge rather than fall back.
func schedSpec(rng *rand.Rand, m, n, K int, T float64) *problemSpec {
	ps := &problemSpec{}
	class := make([]int, n)
	for j := range class {
		class[j] = rng.Intn(K)
	}
	x := make([][]int, m)
	y := make([][]int, m)
	id := 0
	for i := 0; i < m; i++ {
		x[i] = make([]int, n)
		y[i] = make([]int, K)
		for j := 0; j < n; j++ {
			ps.obj = append(ps.obj, 0)
			ps.ub = append(ps.ub, 1)
			x[i][j] = id
			id++
		}
		for k := 0; k < K; k++ {
			ps.obj = append(ps.obj, 0)
			ps.ub = append(ps.ub, 1)
			y[i][k] = id
			id++
		}
	}
	for i := 0; i < m; i++ {
		var terms []Term
		for j := 0; j < n; j++ {
			terms = append(terms, Term{x[i][j], 1 + rng.Float64()})
		}
		for k := 0; k < K; k++ {
			terms = append(terms, Term{y[i][k], 1 + rng.Float64()})
		}
		ps.rows = append(ps.rows, specRow{LE, T, terms})
	}
	for j := 0; j < n; j++ {
		var terms []Term
		for i := 0; i < m; i++ {
			terms = append(terms, Term{x[i][j], 1})
		}
		ps.rows = append(ps.rows, specRow{EQ, 1, terms})
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			ps.rows = append(ps.rows, specRow{LE, 0, []Term{{x[i][j], 1}, {y[i][class[j]], -1}}})
		}
	}
	return ps
}

// TestIPMConvergesAndCrossesOver drives the interior-point internals
// directly on a scheduling-shaped LP: mehrotra must converge (no fallback),
// crossover must produce a basis the sparse simplex accepts via Warm, and
// the re-certified vertex must cost only a handful of cleanup pivots.
func TestIPMConvergesAndCrossesOver(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ps := schedSpec(rng, 4, 24, 3, 14)
		// White-box: this test drives mehrotra/crossover on the concrete
		// solver state, so it opts out of the presolve wrapper.
		be, err := NewBackend(Sparse, ps.build(), nil, WithPresolve(false))
		if err != nil {
			t.Fatal(err)
		}
		ss := be.(*solverState)
		iters, x, ok := mehrotra(&ss.sf)
		if !ok {
			t.Fatalf("seed %d: mehrotra did not converge in %d iterations", seed, iters)
		}
		b := crossoverBasis(&ss.sf, x)
		if b == nil {
			t.Fatalf("seed %d: crossover found no nonsingular basis", seed)
		}
		// The recovered basis must be primal-feasible at the IPM point up
		// to the simplex's own cleanup: Warm + Solve from it must agree
		// with a cold sparse solve, in few pivots.
		if err := be.Warm(b); err != nil {
			t.Fatalf("seed %d: Warm(crossover basis): %v", seed, err)
		}
		warm, err := be.Solve()
		if err != nil {
			t.Fatalf("seed %d: warm Solve: %v", seed, err)
		}
		cold, err := NewBackend(Sparse, ps.build(), nil, WithPresolve(false))
		if err != nil {
			t.Fatal(err)
		}
		coldSol, err := cold.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if warm.Status != coldSol.Status {
			t.Fatalf("seed %d: warm status %v, cold %v", seed, warm.Status, coldSol.Status)
		}
		if math.Abs(warm.Objective-coldSol.Objective) > 1e-6 {
			t.Fatalf("seed %d: warm objective %v, cold %v", seed, warm.Objective, coldSol.Objective)
		}
		if !feasible(ps.build(), warm.X) {
			t.Fatalf("seed %d: crossover-seeded solution infeasible", seed)
		}
		if warm.Iterations > coldSol.Iterations/2+8 {
			t.Fatalf("seed %d: crossover cleanup took %d pivots (cold needs %d) — basis not near-optimal",
				seed, warm.Iterations, coldSol.Iterations)
		}
	}
}

// TestIPMWarmTrajectoryMatchesSimplex re-solves a shrinking-T trajectory on
// an IPM backend and a pure-sparse backend side by side: every verdict and
// objective must match — the acceptance contract that lets `auto` swap the
// cold solver without perturbing the dual search.
func TestIPMWarmTrajectoryMatchesSimplex(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ub := 16.0
		ps := schedSpec(rng, 3, 18, 3, ub)
		ipm, err := NewBackend(IPM, ps.build(), nil)
		if err != nil {
			t.Fatal(err)
		}
		sp, err := NewBackend(Sparse, ps.build(), nil)
		if err != nil {
			t.Fatal(err)
		}
		T := ub
		for step := 0; step < 9; step++ {
			for r := 0; r < 3; r++ { // the load rows carry the guess
				ipm.SetRHS(r, T)
				sp.SetRHS(r, T)
			}
			a, err := ipm.Solve()
			if err != nil {
				t.Fatalf("seed %d step %d: ipm: %v", seed, step, err)
			}
			b, err := sp.Solve()
			if err != nil {
				t.Fatalf("seed %d step %d: sparse: %v", seed, step, err)
			}
			if a.Status != b.Status {
				t.Fatalf("seed %d step %d (T=%g): ipm %v, sparse %v", seed, step, T, a.Status, b.Status)
			}
			if a.Status == Optimal && math.Abs(a.Objective-b.Objective) > 1e-6 {
				t.Fatalf("seed %d step %d: objective %v vs %v", seed, step, a.Objective, b.Objective)
			}
			T *= 0.82
		}
	}
}

// TestIPMGaugeCountsOneSolve: the hybrid Solve (IPM + crossover + simplex
// cleanup) must hold exactly one SolveGauge slot — the governor's
// LP-peak ≤ budget invariant depends on it.
func TestIPMGaugeCountsOneSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ps := schedSpec(rng, 3, 18, 3, 12)
	be, err := NewBackend(IPM, ps.build(), nil)
	if err != nil {
		t.Fatal(err)
	}
	SolveGauge.Reset()
	if _, err := be.Solve(); err != nil {
		t.Fatal(err)
	}
	if peak := SolveGauge.Peak(); peak != 1 {
		t.Fatalf("SolveGauge peak = %d after one hybrid solve, want 1", peak)
	}
	SolveGauge.Reset()
}

// TestAutoBackendResolvesBySize pins the size trigger: a problem over the
// row threshold resolves to IPM, under it to Sparse, and Kind() reports
// the resolved implementation (never "auto").
func TestAutoBackendResolvesBySize(t *testing.T) {
	oldRows := AutoIPMMinRows
	AutoIPMMinRows = 30
	defer func() { AutoIPMMinRows = oldRows }()

	rng := rand.New(rand.NewSource(3))
	big := schedSpec(rng, 3, 12, 2, 10) // 3 + 12 + 36 = 51 rows ≥ 30
	be, err := NewBackend(Auto, big.build(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if be.Kind() != IPM {
		t.Fatalf("auto over threshold resolved to %v, want %v", be.Kind(), IPM)
	}
	small := randomBoxSpec(rng)
	be, err = NewBackend(Auto, small.build(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if be.Kind() != Sparse {
		t.Fatalf("auto under threshold resolved to %v, want %v", be.Kind(), Sparse)
	}
	if k := be.Kind(); k == Auto {
		t.Fatal("Kind() must never report auto")
	}
}
