package lp

import (
	"fmt"
	"math"
)

// solverState is the revised simplex core shared by every Backend: a
// bounded-variable simplex method over the canonical standard form, driven
// through a basisRep (dense explicit inverse or sparse eta file). It keeps
// the basis, the nonbasic statuses and the factorization alive between
// Solve calls, which is what makes warm re-solving after SetRHS /
// SetVarUpper mutations cheap:
//
//   - a cold Solve runs a bound-violation composite phase 1 (no artificial
//     variables: the all-slack basis is always factorizable and basics are
//     simply allowed to start outside their bounds) followed by a primal
//     phase 2;
//   - a warm Solve after mutations re-prices the unchanged reduced costs,
//     and when the previous optimal basis is still dual feasible repairs
//     primal feasibility with the dual simplex — typically a handful of
//     pivots instead of a full two-phase solve.
//
// Dantzig pricing switches to Bland's rule after a stall, as in the legacy
// tableau solver, so degenerate instances cannot cycle forever.
type solverState struct {
	sf  standardForm
	inv basisRep
	ws  *Workspace

	basis  []int       // column basic in each row
	status []varStatus // per column
	xB     []float64   // values of the basic variables (ws-backed)

	sol    Solution
	iters  int  // pivots in the current Solve call
	dualOK bool // the current basis is known dual feasible (prior optimum)

	kind BackendKind // resolved implementation kind (Dense or Sparse)
}

const (
	// feasTol is the per-variable bound-violation tolerance.
	feasTol = 1e-7
	// dualTol is the reduced-cost tolerance for dual feasibility.
	dualTol = 1e-7
	// infeasTol is the total phase-1 violation above which the LP is
	// declared infeasible (mirrors the legacy tableau solver).
	infeasTol = 1e-6
)

func newSolverState(p *Problem, ws *Workspace) *solverState {
	s := &solverState{ws: ws}
	s.sf.build(p, ws)
	s.basis = make([]int, s.sf.m)
	s.status = make([]varStatus, s.sf.n)
	for r := 0; r < s.sf.m; r++ {
		s.basis[r] = s.sf.nv + r
		s.status[s.sf.nv+r] = basic
	}
	return s
}

// --- Backend interface -------------------------------------------------------

func (s *solverState) SetRHS(r int, rhs float64) {
	if r < 0 || r >= s.sf.m {
		panic(fmt.Sprintf("lp: SetRHS row %d out of range", r))
	}
	if math.IsNaN(rhs) || math.IsInf(rhs, 0) {
		panic(fmt.Sprintf("lp: invalid rhs %v", rhs))
	}
	s.sf.rhs[r] = s.sf.rowSign[r] * rhs
}

func (s *solverState) SetVarUpper(v int, upper float64) {
	if v < 0 || v >= s.sf.nv {
		panic(fmt.Sprintf("lp: SetVarUpper variable %d out of range", v))
	}
	if upper < 0 || math.IsNaN(upper) {
		panic(fmt.Sprintf("lp: invalid upper bound %v", upper))
	}
	s.sf.ub[v] = upper
	if s.status[v] == atUpper && math.IsInf(upper, 1) {
		// A nonbasic variable cannot sit at an infinite bound.
		s.status[v] = atLower
	}
}

func (s *solverState) Kind() BackendKind { return s.kind }

func (s *solverState) Clone() Backend {
	c := &solverState{ws: NewWorkspace(), dualOK: s.dualOK, kind: s.kind}
	c.sf.copyFrom(&s.sf, c.ws)
	c.basis = append([]int(nil), s.basis...)
	c.status = append([]varStatus(nil), s.status...)
	c.inv = s.inv.clone()
	return c
}

func (s *solverState) Basis() *Basis {
	b := &Basis{
		Cols:   make([]int, s.sf.m),
		Status: make([]VarStatus, s.sf.n),
	}
	copy(b.Cols, s.basis)
	for j, st := range s.status {
		b.Status[j] = VarStatus(st)
	}
	return b
}

func (s *solverState) Warm(b *Basis) error {
	if b == nil || len(b.Cols) != s.sf.m || len(b.Status) != s.sf.n {
		return fmt.Errorf("lp: Warm basis has wrong shape (want %d rows, %d columns)", s.sf.m, s.sf.n)
	}
	nBasic := 0
	for j, st := range b.Status {
		switch st {
		case BasicVar:
			nBasic++
		case NonbasicUpper:
			if math.IsInf(s.sf.ub[j], 1) {
				return fmt.Errorf("lp: Warm basis puts column %d at an infinite upper bound", j)
			}
		case NonbasicLower:
		default:
			return fmt.Errorf("lp: Warm basis has invalid status %d for column %d", st, j)
		}
	}
	if nBasic != s.sf.m {
		return fmt.Errorf("lp: Warm basis has %d basic columns, want %d", nBasic, s.sf.m)
	}
	for _, j := range b.Cols {
		if j < 0 || j >= s.sf.n || b.Status[j] != BasicVar {
			return fmt.Errorf("lp: Warm basis row column %d is not a basic column", j)
		}
	}
	copy(s.basis, b.Cols)
	for j, st := range b.Status {
		s.status[j] = varStatus(st)
	}
	if err := s.refactor(); err != nil {
		s.coldReset()
		return fmt.Errorf("lp: Warm basis is singular: %w", err)
	}
	// Optimality of the transplanted basis is verified (not assumed) at the
	// next Solve: the dual-feasibility check gates the warm path.
	s.dualOK = true
	return nil
}

// Solve optimizes from the current state. See the Backend docs for the
// ownership rules of the returned Solution.
func (s *solverState) Solve() (*Solution, error) {
	SolveGauge.enter()
	defer SolveGauge.exit()
	return s.solve()
}

// solve is Solve without the gauge accounting, for callers that already
// hold a gauge slot (the IPM backend wraps its whole hybrid solve — IPM
// phase, crossover and simplex cleanup — in one enter/exit, so delegating
// here must not count a second concurrent solve).
func (s *solverState) solve() (*Solution, error) {
	s.iters = 0
	s.xB = growF(&s.ws.xB, s.sf.m)
	s.computeXB()
	maxIters := 200*(s.sf.m+s.sf.n) + 20000

	if s.dualOK && s.dualFeasible() {
		s.dualOK = false
		st, err := s.dualSimplex(maxIters)
		if err == nil {
			switch st {
			case Infeasible:
				// The failing ray left the basis untouched, so it remains
				// dual feasible for the next warm attempt.
				s.dualOK = true
				return s.finish(Infeasible), nil
			default:
				// Primal feasibility restored; confirm optimality (exits
				// immediately unless numerics left a stray reduced cost).
				st2, err2 := s.primal(true, maxIters)
				if err2 == nil {
					if st2 == Unbounded {
						return s.finish(Unbounded), nil
					}
					s.dualOK = true
					return s.finish(Optimal), nil
				}
			}
		}
		// Numerical trouble on the warm path: restart cold.
		s.coldReset()
		s.computeXB()
	}
	s.dualOK = false

	st, err := s.primal(false, maxIters)
	if err != nil {
		return nil, err
	}
	if st == Infeasible {
		return s.finish(Infeasible), nil
	}
	st, err = s.primal(true, maxIters)
	if err != nil {
		return nil, err
	}
	if st == Unbounded {
		return s.finish(Unbounded), nil
	}
	s.dualOK = true
	return s.finish(Optimal), nil
}

// --- state maintenance -------------------------------------------------------

// coldReset reinstalls the all-slack identity basis.
func (s *solverState) coldReset() {
	for j := range s.status {
		s.status[j] = atLower
	}
	for r := 0; r < s.sf.m; r++ {
		s.basis[r] = s.sf.nv + r
		s.status[s.sf.nv+r] = basic
	}
	s.inv.reset(s.sf.m)
	s.dualOK = false
}

// computeXB recomputes the basic values from the current rhs, bounds and
// nonbasic statuses: xB = B⁻¹(b − Σ_{j at upper} u_j·a_j).
func (s *solverState) computeXB() {
	rhsEff := growF(&s.ws.rhsEff, s.sf.m)
	copy(rhsEff, s.sf.rhs)
	for j := 0; j < s.sf.n; j++ {
		if s.status[j] == atUpper {
			if u := s.sf.ub[j]; u != 0 {
				s.sf.scatterColumn(j, -u, rhsEff)
			}
		}
	}
	s.inv.ftran(rhsEff)
	copy(s.xB, rhsEff)
}

// refactorPivRel is the relative threshold of the sparsity-driven pivot
// preference: a structurally chosen pivot row is accepted when its
// magnitude is within this factor of the numerically best live pivot
// (standard Markowitz threshold pivoting).
const refactorPivRel = 0.1

// refactor rebuilds the basis representation from scratch for the current
// basic column set, in a Markowitz-style ordering. In the product-form
// inverse, fill is created exactly when a placed column carries entries in
// the pivot rows of earlier placements — every retired row costs one
// future hit per live column that touches it — so the pass works to keep
// pivot rows out of live columns' patterns:
//
//   - row singletons first: whenever some live row is hit by exactly one
//     unplaced column, that column is placed with that row as preferred
//     pivot. A chain of such placements is a permuted triangle and
//     factorizes with zero fill, and the retired row can never hit anyone.
//   - otherwise the sparsest remaining column enters (the same
//     sparsest-first heuristic the previous static sort.Slice computed,
//     now a counting sort walked through count buckets), and the numeric
//     pivot prefers the live row hit by the fewest live columns among
//     those within refactorPivRel of the largest available magnitude
//     (threshold pivoting), minimizing the hits the retirement mints.
//
// Row counts update in O(1) per retired pattern entry through a row→column
// CSR of the basic pattern, and the numeric scan walks only the shrinking
// unpivoted-row set (the former full-row scan per column was the
// refactorization's O(m²) hot spot).
func (s *solverState) refactor() error {
	m := s.sf.m
	cols := growInt(&s.ws.newBasis, m)
	copy(cols, s.basis)

	// cnt[i] = stored nonzeros of column cols[i] (CSC duplicates count with
	// multiplicity, in step with the row CSR below). −1 marks placed.
	cnt := growInt(&s.ws.cnt, m)
	maxCnt, nnz := 0, 0
	for i, j := range cols {
		c := s.sf.colNNZ(j)
		cnt[i] = c
		nnz += c
		if c > maxCnt {
			maxCnt = c
		}
	}
	// Row → column-position CSR over the basic pattern, so retiring a pivot
	// row decrements exactly the columns it touches (and vice versa).
	rowPtr := growI32(&s.ws.rowPtr, m+1)
	for r := range rowPtr {
		rowPtr[r] = 0
	}
	for _, j := range cols {
		if j >= s.sf.nv {
			rowPtr[j-s.sf.nv+1]++
			continue
		}
		for k := s.sf.colPtr[j]; k < s.sf.colPtr[j+1]; k++ {
			rowPtr[s.sf.colRow[k]+1]++
		}
	}
	for r := 0; r < m; r++ {
		rowPtr[r+1] += rowPtr[r]
	}
	rowCol := growI32(&s.ws.rowCol, nnz)
	fill := growI32(&s.ws.rowFill, m)
	copy(fill, rowPtr[:m])
	for i, j := range cols {
		if j >= s.sf.nv {
			r := j - s.sf.nv
			rowCol[fill[r]] = int32(i)
			fill[r]++
			continue
		}
		for k := s.sf.colPtr[j]; k < s.sf.colPtr[j+1]; k++ {
			r := s.sf.colRow[k]
			rowCol[fill[r]] = int32(i)
			fill[r]++
		}
	}
	// Live-column count per row; rows whose count drops to 1 are singleton
	// candidates (re-checked at pop: counts keep moving). −1 marks retired.
	rc := growInt(&s.ws.rc, m)
	stack := s.ws.rowStack[:0]
	for r := 0; r < m; r++ {
		rc[r] = int(rowPtr[r+1] - rowPtr[r])
		if rc[r] == 1 {
			stack = append(stack, r)
		}
	}

	// Sparsest-first fallback order: a counting sort of the columns by
	// nonzero count, walked through singly-linked count buckets (bhead[c]
	// chains the columns with exactly c nonzeros; placed columns are
	// skipped by their cnt mark as the walk passes them).
	bhead := growInt(&s.ws.bhead, maxCnt+1)
	for c := range bhead {
		bhead[c] = -1
	}
	bnext := growInt(&s.ws.bnext, m)
	for i := m - 1; i >= 0; i-- {
		c := cnt[i]
		bnext[i] = bhead[c]
		bhead[c] = i
	}

	// The unpivoted-row set for the numeric pivot scan (swap-remove).
	unrows := growInt(&s.ws.unrows, m)
	rowIdx := growInt(&s.ws.rowIdx, m)
	for r := 0; r < m; r++ {
		unrows[r] = r
		rowIdx[r] = r
	}
	nun := m

	// dropRow retires one pattern entry of a placed column: its row loses a
	// live column, minting a singleton candidate at count 1.
	dropRow := func(r int32) {
		if rc[r] > 0 {
			if rc[r]--; rc[r] == 1 {
				stack = append(stack, int(r))
			}
		}
	}

	w := growF(&s.ws.w, m)
	s.inv.reset(m)
	cur := 0
	for placed := 0; placed < m; placed++ {
		// Selection: a row singleton when one exists, else the sparsest
		// unplaced column from the counting-sort walk.
		i := -1
		for len(stack) > 0 {
			r := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if rc[r] != 1 {
				continue // count moved on or row retired since the push
			}
			for k := rowPtr[r]; k < rowPtr[r+1]; k++ {
				if ci := int(rowCol[k]); cnt[ci] >= 0 {
					i = ci
					break
				}
			}
			if i >= 0 {
				break
			}
		}
		if i < 0 {
			for {
				for bhead[cur] >= 0 && cnt[bhead[cur]] < 0 {
					bhead[cur] = bnext[bhead[cur]] // shed singleton-placed columns
				}
				if bhead[cur] >= 0 {
					break
				}
				cur++
			}
			i = bhead[cur]
			bhead[cur] = bnext[i]
		}
		j := cols[i]
		// Retire the column structurally: rows it touched lose one live
		// column.
		if j >= s.sf.nv {
			dropRow(int32(j - s.sf.nv))
		} else {
			for k := s.sf.colPtr[j]; k < s.sf.colPtr[j+1]; k++ {
				dropRow(s.sf.colRow[k])
			}
		}
		cnt[i] = -1
		for k := range w {
			w[k] = 0
		}
		s.sf.scatterColumn(j, 1, w)
		s.inv.ftran(w)
		// Numerically largest live pivot first; then, among live rows
		// within refactorPivRel of it, the row hit by the fewest live
		// columns (larger magnitude breaks ties) — the retirement then
		// mints the fewest future hits. A singleton-selected column finds
		// its rc=1 row here without special-casing, numerics permitting.
		maxAbs := 0.0
		for t := 0; t < nun; t++ {
			if a := math.Abs(w[unrows[t]]); a > maxAbs {
				maxAbs = a
			}
		}
		if maxAbs <= 1e-10 {
			return fmt.Errorf("lp: singular basis (column %d)", j)
		}
		floor := refactorPivRel * maxAbs
		if floor < 1e-10 {
			floor = 1e-10
		}
		best, bestAbs, bestRC := -1, 0.0, 0
		for t := 0; t < nun; t++ {
			r := unrows[t]
			a := math.Abs(w[r])
			if a < floor {
				continue
			}
			// rc can be 0 here: eta fill made w[r] nonzero in a row no live
			// column's static pattern touches — the ideal pivot.
			if c := rc[r]; best < 0 || c < bestRC || (c == bestRC && a > bestAbs) {
				best, bestAbs, bestRC = r, a, c
			}
		}
		s.basis[best] = j
		s.inv.update(best, w)
		// Retire row best from the scan set and the live counts.
		nun--
		pos := rowIdx[best]
		last := unrows[nun]
		unrows[pos] = last
		rowIdx[last] = pos
		rc[best] = -1
	}
	s.ws.rowStack = stack[:0]
	s.inv.markRefactored()
	return nil
}

// ftranColumn loads column j in current basis coordinates into ws.w.
func (s *solverState) ftranColumn(j int) []float64 {
	w := growF(&s.ws.w, s.sf.m)
	for i := range w {
		w[i] = 0
	}
	s.sf.scatterColumn(j, 1, w)
	s.inv.ftran(w)
	return w
}

// dualsFor computes y = c_Bᵀ·B⁻¹ for the given phase into ws.y. The
// second return value reports y ≡ 0 (every basic cost is zero — always
// the case in phase 2 of a feasibility LP), which lets callers skip the
// per-column pricing dot products entirely.
func (s *solverState) dualsFor(phase2 bool) ([]float64, bool) {
	y := growF(&s.ws.y, s.sf.m)
	zero := true
	for i := 0; i < s.sf.m; i++ {
		var c float64
		if phase2 {
			c = s.sf.objAt(s.basis[i])
		} else {
			switch {
			case s.xB[i] < -feasTol:
				c = -1
			case s.xB[i] > s.sf.ub[s.basis[i]]+feasTol:
				c = 1
			}
		}
		y[i] = c
		if c != 0 {
			zero = false
		}
	}
	if !zero {
		s.inv.btran(y)
	}
	return y, zero
}

// reducedCost returns d_j for the given phase ('cost' is 0 for every
// column in phase 1, whose objective is pure bound violation).
func (s *solverState) reducedCost(j int, y []float64, yZero, phase2 bool) float64 {
	c := 0.0
	if phase2 {
		c = s.sf.objAt(j)
	}
	if yZero {
		return c
	}
	return c - s.sf.dotColumn(j, y)
}

// dualFeasible reports whether the current basis is dual feasible for the
// real (phase 2) objective within dualTol.
func (s *solverState) dualFeasible() bool {
	if s.sf.objZero {
		return true // all reduced costs are identically zero
	}
	y, yZero := s.dualsFor(true)
	for j := 0; j < s.sf.n; j++ {
		if s.status[j] == basic || s.sf.ub[j] == 0 {
			continue // fixed columns cannot move: sign irrelevant
		}
		d := s.reducedCost(j, y, yZero, true)
		if s.status[j] == atLower && d < -dualTol {
			return false
		}
		if s.status[j] == atUpper && d > dualTol {
			return false
		}
	}
	return true
}

// violation returns the total and maximum bound violation of the basics.
func (s *solverState) violation() (sum, max float64) {
	for i := 0; i < s.sf.m; i++ {
		v := s.xB[i]
		var excess float64
		if v < 0 {
			excess = -v
		} else if ubB := s.sf.ub[s.basis[i]]; v > ubB {
			excess = v - ubB
		}
		if excess > 0 {
			sum += excess
			if excess > max {
				max = excess
			}
		}
	}
	return sum, max
}

// --- primal simplex (composite phase 1 + phase 2) ---------------------------

// primal runs bounded primal simplex iterations. With phase2=false it
// minimizes the total bound violation of the basic variables (the
// artificial-free composite phase 1): out-of-bounds basics price as ±1 and
// block the ratio test only when they reach the bound they violate, from
// outside. Returns Optimal when feasible/optimal, Infeasible when the
// phase-1 optimum has positive violation, Unbounded for a phase-2 ray.
func (s *solverState) primal(phase2 bool, maxIters int) (Status, error) {
	stall, bland := 0, false
	sinceRecompute := 0
	for {
		if s.iters > maxIters {
			return 0, fmt.Errorf("lp: simplex iteration limit reached (%d pivots)", s.iters)
		}
		if s.inv.shouldRefactor() {
			if err := s.refactor(); err != nil {
				return 0, err
			}
			s.computeXB()
		}
		vSum, vMax := s.violation()
		if !phase2 && vMax <= feasTol {
			return Optimal, nil
		}
		y, yZero := s.dualsFor(phase2)
		j, dir, dj := s.chooseEntering(y, yZero, phase2, bland)
		if j < 0 {
			if phase2 {
				return Optimal, nil
			}
			if vSum > infeasTol {
				return Infeasible, nil
			}
			return Optimal, nil // violation within noise: accept as feasible
		}
		w := s.ftranColumn(j)
		leave, leaveAt, t, flip := s.ratioTest(j, dir, w, !phase2, bland)
		if leave < 0 && !flip {
			if phase2 {
				return Unbounded, nil
			}
			// Phase 1 is bounded below by 0; an unblocked ray is numerics.
			return 0, fmt.Errorf("lp: phase 1 found an unblocked ray (violation %g)", vSum)
		}
		if flip {
			s.applyFlip(j, dir, w)
		} else {
			s.applyPivot(j, dir, w, leave, leaveAt, t)
		}
		// Stall detection: |d_j|·t is the objective improvement.
		if math.Abs(dj)*t > tol {
			stall = 0
		} else if stall++; stall > stallLimit {
			bland = true
		}
		if sinceRecompute++; sinceRecompute >= 256 {
			s.computeXB() // shed accumulated floating-point drift
			sinceRecompute = 0
		}
	}
}

// chooseEntering picks a nonbasic column whose move improves the phase
// objective: at lower bound with d < −tol, or at upper bound with d > tol.
// Dantzig (largest |d|) normally, first eligible index under Bland's rule.
// Fixed columns (upper bound 0) never enter. Returns (-1,0,0) at phase
// optimality.
func (s *solverState) chooseEntering(y []float64, yZero, phase2, bland bool) (j int, dir, dj float64) {
	best, bestScore, bestDir, bestD := -1, tol, 1.0, 0.0
	for c := 0; c < s.sf.n; c++ {
		st := s.status[c]
		if st == basic || s.sf.ub[c] == 0 {
			continue
		}
		d := s.reducedCost(c, y, yZero, phase2)
		var score float64
		var dr float64
		if st == atLower {
			score, dr = -d, 1
		} else {
			score, dr = d, -1
		}
		if score > bestScore {
			if bland {
				return c, dr, d
			}
			best, bestScore, bestDir, bestD = c, score, dr, d
		}
	}
	return best, bestDir, bestD
}

// ratioTest finds the maximum step t for entering column j moving in
// direction dir (+1 from lower bound, −1 from upper), with column w =
// B⁻¹a_j. allowViolated enables the phase-1 rules: an out-of-bounds basic
// does not block until it reaches the bound it violates (from outside),
// and blocks there. Returns the leaving row and the bound it leaves at, or
// flip=true when the entering column's own opposite bound is the binding
// limit. leave<0 && !flip means unblocked (unbounded ray).
func (s *solverState) ratioTest(j int, dir float64, w []float64, allowViolated, bland bool) (leave int, leaveAt varStatus, t float64, flip bool) {
	limit := math.Inf(1)
	if u := s.sf.ub[j]; !math.IsInf(u, 1) {
		limit, flip = u, true
	}
	leave = -1
	for i := 0; i < s.sf.m; i++ {
		wi := w[i]
		if wi > -pivTol && wi < pivTol {
			continue
		}
		delta := -wi * dir // d(xB[i])/dt
		v := s.xB[i]
		ubB := s.sf.ub[s.basis[i]]
		var ti float64
		var at varStatus
		switch {
		case allowViolated && v < -feasTol:
			if delta <= 0 {
				continue // moves further below: accounted by the phase cost
			}
			ti, at = -v/delta, atLower
		case allowViolated && v > ubB+feasTol:
			if delta >= 0 {
				continue
			}
			ti, at = (ubB-v)/delta, atUpper
		default:
			if delta < 0 {
				ti, at = v/(-delta), atLower
			} else if !math.IsInf(ubB, 1) {
				ti, at = (ubB-v)/delta, atUpper
			} else {
				continue
			}
		}
		if ti < 0 {
			ti = 0 // degeneracy: a basic variable slightly past its bound
		}
		take := ti < limit-tol
		if !take && ti < limit+tol && leave >= 0 {
			// Near-tie between rows: Bland prefers the smallest basic
			// index (anti-cycling); otherwise take the larger pivot.
			if bland {
				take = s.basis[i] < s.basis[leave]
			} else {
				take = math.Abs(wi) > math.Abs(w[leave])
			}
		}
		if take {
			limit, leave, leaveAt, flip = ti, i, at, false
		}
	}
	return leave, leaveAt, limit, flip
}

// applyFlip moves entering column j across to its opposite bound without a
// basis change.
func (s *solverState) applyFlip(j int, dir float64, w []float64) {
	if u := s.sf.ub[j]; u != 0 {
		for i, wi := range w {
			if wi != 0 {
				s.xB[i] -= wi * dir * u
			}
		}
	}
	if s.status[j] == atLower {
		s.status[j] = atUpper
	} else {
		s.status[j] = atLower
	}
	s.iters++
}

// applyPivot performs the basis exchange: entering j (moving dir·t) for
// the basic variable of row leave, which exits at leaveAt.
func (s *solverState) applyPivot(j int, dir float64, w []float64, leave int, leaveAt varStatus, t float64) {
	if t != 0 {
		for i, wi := range w {
			if wi != 0 {
				s.xB[i] -= wi * dir * t
			}
		}
	}
	enterVal := t
	if dir < 0 {
		enterVal = s.sf.ub[j] - t
	}
	old := s.basis[leave]
	s.status[old] = leaveAt
	s.basis[leave] = j
	s.status[j] = basic
	s.xB[leave] = enterVal
	s.inv.update(leave, w)
	s.iters++
}

// --- dual simplex (the warm-restart workhorse) -------------------------------

// dualSimplex restores primal feasibility from a dual-feasible basis: the
// state after RHS or bound mutations of a previously optimal solve. Each
// iteration evicts the worst bound-violating basic variable and enters the
// column chosen by the bounded-variable dual ratio test, so dual
// feasibility is invariant and termination means optimality. Returns
// Infeasible when no column can repair a violated row — with a
// dual-feasible basis that is a certificate that the mutated LP has no
// feasible point, exactly what a shrinking-makespan feasibility probe
// needs. Errors signal numerical trouble; the caller falls back to a cold
// solve.
func (s *solverState) dualSimplex(maxIters int) (Status, error) {
	m := s.sf.m
	rho := growF(&s.ws.rho, m)
	stall := 0
	lastViol := math.Inf(1)
	for iter := 0; ; iter++ {
		if s.iters > maxIters || iter > maxIters {
			return 0, fmt.Errorf("lp: dual simplex iteration limit reached (%d pivots)", s.iters)
		}
		if s.inv.shouldRefactor() {
			if err := s.refactor(); err != nil {
				return 0, err
			}
			s.computeXB()
		}
		// Leaving variable: the basic with the largest bound violation.
		r, below := -1, false
		worst := feasTol
		vSum := 0.0
		for i := 0; i < m; i++ {
			v := s.xB[i]
			ubB := s.sf.ub[s.basis[i]]
			if excess := -v; excess > worst {
				worst, r, below = excess, i, true
			} else if excess := v - ubB; excess > worst {
				worst, r, below = excess, i, false
			}
			if v < 0 {
				vSum -= v
			} else if v > ubB {
				vSum += v - ubB
			}
		}
		if r < 0 {
			return Optimal, nil // primal feasible (and dual feasible): done
		}
		if vSum < lastViol-tol {
			lastViol, stall = vSum, 0
		} else if stall++; stall > 2*stallLimit {
			// Degenerate dual pivots are not making progress (possible when
			// every reduced cost ties at zero, as in pure feasibility LPs).
			return 0, fmt.Errorf("lp: dual simplex stalled (violation %g)", vSum)
		}
		// Row r of B⁻¹, then the dual ratio test over nonbasic columns.
		// A feasibility LP (all costs zero) keeps every reduced cost at
		// exactly zero, so the duals and per-column pricing are skipped:
		// every sign-eligible column ties at ratio 0 and the stability
		// tie-break picks among them.
		s.inv.btranUnit(r, rho)
		var y []float64
		yZero := true
		if !s.sf.objZero {
			y, yZero = s.dualsFor(true)
		}
		e, dirE := -1, 1.0
		bestRatio, bestAbs := math.Inf(1), 0.0
		for c := 0; c < s.sf.n; c++ {
			st := s.status[c]
			if st == basic || s.sf.ub[c] == 0 {
				continue
			}
			alpha := s.sf.dotColumn(c, rho)
			if alpha > -pivTol && alpha < pivTol {
				continue
			}
			dirC := 1.0
			if st == atUpper {
				dirC = -1
			}
			eff := alpha * dirC
			// xB[r] must move toward the violated bound: up when below
			// the lower bound, down when above the upper.
			if below {
				if eff >= 0 {
					continue
				}
			} else if eff <= 0 {
				continue
			}
			ratio := 0.0
			if !s.sf.objZero {
				d := s.reducedCost(c, y, yZero, true)
				ratio = math.Abs(d) / math.Abs(alpha)
			}
			take := ratio < bestRatio-dualTol
			if !take && ratio < bestRatio+dualTol {
				take = math.Abs(alpha) > bestAbs // stability tie-break
			}
			if take {
				e, dirE, bestRatio, bestAbs = c, dirC, ratio, math.Abs(alpha)
			}
		}
		if e < 0 {
			// No column can push row r back inside its bounds while keeping
			// dual feasibility: the LP is infeasible (dual unbounded).
			return Infeasible, nil
		}
		w := s.ftranColumn(e)
		if math.Abs(w[r]) < pivTol {
			return 0, fmt.Errorf("lp: dual pivot element vanished (row %d, col %d)", r, e)
		}
		target, leaveAt := 0.0, atLower
		if !below {
			target, leaveAt = s.sf.ub[s.basis[r]], atUpper
		}
		t := (s.xB[r] - target) / (w[r] * dirE)
		if t < 0 {
			if t < -feasTol {
				return 0, fmt.Errorf("lp: negative dual step %g", t)
			}
			t = 0
		}
		// Deliberately no dual bound-flip here: when t exceeds the entering
		// column's own span, the pivot brings it into the basis above its
		// bound and later iterations repair that manufactured violation.
		// Measured on the rounding guess trajectory this converges several
		// times faster than the textbook flip (which pays a full pricing
		// iteration to absorb only |alpha|·u of violation), and a search
		// that churns anyway is best abandoned to the stall guard above —
		// the caller's cold re-solve is cheaper than grinding out flips.
		s.applyPivot(e, dirE, w, r, leaveAt, t)
	}
}

// --- solution extraction -----------------------------------------------------

func (s *solverState) finish(st Status) *Solution {
	s.sol = Solution{Status: st, Iterations: s.iters}
	if st != Optimal {
		return &s.sol
	}
	x := growF(&s.ws.x, s.sf.nv)
	for j := 0; j < s.sf.nv; j++ {
		if s.status[j] == atUpper {
			x[j] = s.sf.ub[j]
		} else {
			x[j] = 0
		}
	}
	for r := 0; r < s.sf.m; r++ {
		if b := s.basis[r]; b < s.sf.nv {
			v := s.xB[r]
			if v < 0 && v > -infeasTol {
				v = 0
			}
			x[b] = v
		}
	}
	obj := 0.0
	for j, c := range s.sf.obj {
		obj += c * x[j]
	}
	s.sol.X = x
	s.sol.Objective = obj
	return &s.sol
}
