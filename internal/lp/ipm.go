package lp

import (
	"math"
	"sort"

	"repro/internal/lp/chol"
)

// ipmState is the interior-point backend: a hybrid that runs a primal-dual
// Mehrotra predictor-corrector on the normal equations A·D·Aᵀ for the cold
// first Solve, crosses the converged interior point over to a vertex basis,
// and hands that basis to the embedded revised-simplex core — which then
// owns every subsequent warm re-solve exactly as the pure simplex backends
// do. The division of labor is deliberate:
//
//   - the IPM is an accelerator, never an arbiter: its solution is only
//     used when it fully converged, and even then the simplex re-certifies
//     optimality from the crossover basis. Any other IPM exit (iteration
//     cap, stall, numerical trouble, an infeasible or unbounded instance
//     pushing the iterates apart) falls back to a cold simplex solve, so
//     verdicts — including infeasibility certificates — are always exact
//     simplex verdicts;
//   - Warm() transplants outrank the IPM: installing a basis marks the
//     interior-point phase spent, which keeps ExtendBasis/ApplyDelta
//     pipelines on the cheap dual-simplex path.
//
// The whole hybrid Solve (IPM phase, crossover, simplex cleanup) holds one
// SolveGauge slot, so the governor's LP-peak accounting sees exactly one
// concurrent solve regardless of which phases run.
type ipmState struct {
	sim *solverState
	// crossed: the interior-point phase is spent (a converged first solve
	// crossed over, a fallback ran, or a Warm transplant arrived); every
	// Solve from here on is a plain simplex solve on sim.
	crossed bool
}

func newIPMState(p *Problem, ws *Workspace) *ipmState {
	s := newSolverState(p, ws)
	s.kind = Sparse
	s.inv = &etaFile{}
	s.inv.reset(s.sf.m)
	ip := &ipmState{sim: s}
	if s.sf.m == 0 || s.sf.nv == 0 {
		ip.crossed = true // nothing for an IPM to do on a trivial shape
	}
	return ip
}

func (ip *ipmState) Kind() BackendKind { return IPM }

func (ip *ipmState) SetRHS(r int, rhs float64) { ip.sim.SetRHS(r, rhs) }

func (ip *ipmState) SetVarUpper(v int, upper float64) { ip.sim.SetVarUpper(v, upper) }

func (ip *ipmState) Basis() *Basis { return ip.sim.Basis() }

func (ip *ipmState) Warm(b *Basis) error {
	if err := ip.sim.Warm(b); err != nil {
		return err
	}
	ip.crossed = true
	return nil
}

func (ip *ipmState) Clone() Backend {
	return &ipmState{sim: ip.sim.Clone().(*solverState), crossed: ip.crossed}
}

func (ip *ipmState) Solve() (*Solution, error) {
	SolveGauge.enter()
	defer SolveGauge.exit()
	if ip.crossed {
		return ip.sim.solve()
	}
	ip.crossed = true
	sim := ip.sim
	iters, x, ok := mehrotra(&sim.sf)
	if ok {
		if b := crossoverBasis(&sim.sf, x); b != nil {
			if err := sim.Warm(b); err == nil {
				if sol, err := sim.solve(); err == nil {
					sol.Iterations += iters
					return sol, nil
				}
			}
		}
	}
	// Fallback: the exact two-phase simplex from scratch.
	sim.coldReset()
	sol, err := sim.solve()
	if err != nil {
		return nil, err
	}
	sol.Iterations += iters
	return sol, nil
}

// --- Mehrotra predictor-corrector on the normal equations --------------------

const (
	ipmMaxIters = 100
	// ipmTolFeas is the relative primal/dual residual tolerance.
	ipmTolFeas = 1e-8
	// ipmTolGap is the relative complementarity-gap tolerance.
	ipmTolGap = 1e-9
	// ipmStepFrac keeps the iterates strictly interior.
	ipmStepFrac = 0.9995
	// ipmScatterCap bounds the Σ nnz(a_j)² pair-index table; a column
	// structure dense enough to cross it would also make A·D·Aᵀ explode,
	// so the simplex fallback is the right answer there.
	ipmScatterCap = 1 << 26
	// ipmRefineTol triggers one step of iterative refinement on the normal-
	// equations solve when the relative residual ‖rhs − M·Δy‖∞ exceeds it.
	ipmRefineTol = 1e-9
)

// mehrotra solves min c·x̂ s.t. Â x̂ = b, 0 ≤ x̂ ≤ u over the full column
// space of sf (structural columns and slacks uniformly; fixed columns with
// u=0 are excluded). On convergence it returns the interior primal point
// (length sf.n, slacks included) for the crossover; ok=false means the
// caller must fall back to simplex. iters is always the number of IPM
// iterations spent, converged or not.
func mehrotra(sf *standardForm) (iters int, x []float64, ok bool) {
	m, nv, n := sf.m, sf.nv, sf.n

	// Active set for this (first) solve: the bound state is frozen for the
	// whole IPM run, so clamped columns simply drop out of D and of the
	// residuals. The normal-equations pattern is built over every
	// structural column regardless — it is the superset pattern, and a
	// zero d_j contributes zero values on it.
	act := make([]bool, n)
	fin := make([]bool, n)
	comp := 0 // complementarity pair count
	for j := 0; j < n; j++ {
		u := sf.ub[j]
		if u <= 0 {
			continue
		}
		act[j] = true
		comp++
		if !math.IsInf(u, 1) {
			fin[j] = true
			comp++
		}
	}
	if comp == 0 {
		return 0, nil, false
	}

	// --- symbolic setup: pattern of M = Â·D·Âᵀ (diagonal always present),
	// plus the per-column pair→entry scatter table that makes each numeric
	// assembly a single indexed pass.
	snnz := int(sf.colPtr[nv])
	rowPtr := make([]int32, m+1)
	for _, r := range sf.colRow[:snnz] {
		rowPtr[r+1]++
	}
	for r := 0; r < m; r++ {
		rowPtr[r+1] += rowPtr[r]
	}
	rowEnt := make([]int32, snnz)  // CSC position of each row-major entry
	rowColJ := make([]int32, snnz) // its column
	next := append([]int32(nil), rowPtr[:m]...)
	for j := 0; j < nv; j++ {
		for p := sf.colPtr[j]; p < sf.colPtr[j+1]; p++ {
			r := sf.colRow[p]
			rowEnt[next[r]] = p
			rowColJ[next[r]] = int32(j)
			next[r]++
		}
	}
	markRow := make([]int32, m)
	for i := range markRow {
		markRow[i] = -1
	}
	mp := make([]int32, m+1)
	mi := make([]int32, 0, 4*m)
	diagPos := make([]int32, m)
	for r := 0; r < m; r++ {
		markRow[r] = int32(r)
		diagPos[r] = int32(len(mi))
		mi = append(mi, int32(r))
		for q := rowPtr[r]; q < rowPtr[r+1]; q++ {
			j := rowColJ[q]
			for p := sf.colPtr[j]; p < sf.colPtr[j+1]; p++ {
				r2 := sf.colRow[p]
				if markRow[r2] != int32(r) {
					markRow[r2] = int32(r)
					mi = append(mi, r2)
				}
			}
		}
		mp[r+1] = int32(len(mi))
	}
	scatterOff := make([]int, nv+1)
	for j := 0; j < nv; j++ {
		w := int(sf.colPtr[j+1] - sf.colPtr[j])
		scatterOff[j+1] = scatterOff[j] + w*w
	}
	if scatterOff[nv] > ipmScatterCap {
		return 0, nil, false
	}
	scatterIdx := make([]int32, scatterOff[nv])
	pos := make([]int32, m)
	for r := 0; r < m; r++ {
		for q := mp[r]; q < mp[r+1]; q++ {
			pos[mi[q]] = q
		}
		for q := rowPtr[r]; q < rowPtr[r+1]; q++ {
			j := int(rowColJ[q])
			c0 := sf.colPtr[j]
			w := int(sf.colPtr[j+1] - c0)
			row := scatterIdx[scatterOff[j]+int(rowEnt[q]-c0)*w:]
			for b := 0; b < w; b++ {
				row[b] = pos[sf.colRow[c0+int32(b)]]
			}
		}
	}
	sym := chol.Analyze(m, mp, mi)
	var fac chol.Factor
	mx := make([]float64, len(mi))

	// --- iterate storage (full column space; inactive entries stay zero).
	x = make([]float64, n)
	wv := make([]float64, n) // w = u − x for finite-u columns
	sv := make([]float64, n) // dual of x ≥ 0
	tv := make([]float64, n) // dual of x ≤ u
	dx := make([]float64, n)
	dw := make([]float64, n)
	ds := make([]float64, n)
	dt := make([]float64, n)
	rd := make([]float64, n)
	ru := make([]float64, n)
	r2 := make([]float64, n)
	dv := make([]float64, n) // D = diag(1/(s/x + t/w))
	rxs := make([]float64, n)
	rwt := make([]float64, n)
	y := make([]float64, m)
	dy := make([]float64, m)
	rp := make([]float64, m)
	rhs := make([]float64, m)
	resv := make([]float64, m) // refinement residual scratch

	bNorm, cNorm := 1.0, 1.0
	for _, v := range sf.rhs {
		if a := math.Abs(v); a > bNorm {
			bNorm = a
		}
	}
	for _, v := range sf.obj {
		if a := math.Abs(v); a > cNorm {
			cNorm = a
		}
	}

	// Starting point: finite-bound columns at the bound midpoint; free-side
	// slacks at the residual the structural start leaves them (clamped into
	// the interior), which zeroes the primal residual of every LE row with
	// room. Duals at unit scale.
	for j := 0; j < nv; j++ {
		if !act[j] {
			continue
		}
		if fin[j] {
			x[j] = sf.ub[j] / 2
		} else {
			x[j] = 1
		}
	}
	copy(rp, sf.rhs)
	for j := 0; j < nv; j++ {
		if x[j] != 0 {
			sf.scatterColumn(j, -x[j], rp)
		}
	}
	for j := nv; j < n; j++ {
		if !act[j] {
			continue
		}
		if fin[j] {
			x[j] = sf.ub[j] / 2
		} else if r := rp[j-nv]; r > 1 {
			x[j] = r
		} else {
			x[j] = 1
		}
	}
	for j := 0; j < n; j++ {
		if !act[j] {
			continue
		}
		sv[j] = 1 + math.Abs(sf.objAt(j))
		if fin[j] {
			wv[j] = sf.ub[j] - x[j]
			tv[j] = 1
		}
	}

	for iters = 0; iters < ipmMaxIters; iters++ {
		// Residuals and the barrier parameter.
		copy(rp, sf.rhs)
		gap, obj := 0.0, 0.0
		for j := 0; j < n; j++ {
			if !act[j] {
				continue
			}
			sf.scatterColumn(j, -x[j], rp)
			obj += sf.objAt(j) * x[j]
			gap += x[j] * sv[j]
			if fin[j] {
				gap += wv[j] * tv[j]
			}
		}
		pinf := 0.0
		for _, v := range rp {
			if a := math.Abs(v); a > pinf {
				pinf = a
			}
		}
		dinf, binf := 0.0, 0.0
		for j := 0; j < n; j++ {
			if !act[j] {
				rd[j], ru[j] = 0, 0
				continue
			}
			v := sf.objAt(j) - sf.dotColumn(j, y) - sv[j]
			if fin[j] {
				v += tv[j]
				ru[j] = sf.ub[j] - x[j] - wv[j]
				if a := math.Abs(ru[j]); a > binf {
					binf = a
				}
			} else {
				ru[j] = 0
			}
			rd[j] = v
			if a := math.Abs(v); a > dinf {
				dinf = a
			}
		}
		mu := gap / float64(comp)
		if math.IsNaN(mu) || math.IsInf(mu, 0) {
			return iters, nil, false
		}
		if pinf/bNorm <= ipmTolFeas && dinf/cNorm <= ipmTolFeas && binf <= ipmTolFeas*(1+bNorm) &&
			mu <= ipmTolGap*(1+math.Abs(obj)) {
			return iters, x, true
		}
		if pinf/bNorm > 1e10 || mu > 1e13 {
			return iters, nil, false // diverging: primal or dual infeasible
		}

		// Scaling matrix and normal-equations assembly.
		maxDiag := 0.0
		for i := range mx {
			mx[i] = 0
		}
		for j := 0; j < n; j++ {
			if !act[j] {
				dv[j] = 0
				continue
			}
			den := sv[j] / x[j]
			if fin[j] {
				den += tv[j] / wv[j]
			}
			dv[j] = 1 / den
		}
		for j := 0; j < nv; j++ {
			dj := dv[j]
			if dj == 0 {
				continue
			}
			c0 := sf.colPtr[j]
			w := int(sf.colPtr[j+1] - c0)
			idx := scatterIdx[scatterOff[j]:]
			for a := 0; a < w; a++ {
				va := sf.colVal[c0+int32(a)] * dj
				row := idx[a*w:]
				for b := 0; b < w; b++ {
					mx[row[b]] += va * sf.colVal[c0+int32(b)]
				}
			}
		}
		for r := 0; r < m; r++ {
			mx[diagPos[r]] += dv[nv+r]
			if d := mx[diagPos[r]]; d > maxDiag {
				maxDiag = d
			}
		}
		delta := 1e-10*(1+maxDiag) + 1e-12
		for r := 0; r < m; r++ {
			mx[diagPos[r]] += delta
		}
		sym.Factorize(mp, mi, mx, 1e-13*(1+maxDiag), &fac)

		// Predictor (affine, σ=0) then corrector on the same factorization.
		for j := range rxs {
			if act[j] {
				rxs[j] = -x[j] * sv[j]
				if fin[j] {
					rwt[j] = -wv[j] * tv[j]
				}
			}
		}
		solveKKT(sf, act, fin, x, wv, sv, tv, dv, rd, ru, rxs, rwt, r2, rp, rhs, dy, dx, dw, ds, dt, &fac, mp, mi, mx, resv)
		apAff := maxStep(x, dx, wv, dw, act, fin, 1)
		adAff := maxStep(sv, ds, tv, dt, act, fin, 1)
		muAff := 0.0
		for j := 0; j < n; j++ {
			if !act[j] {
				continue
			}
			muAff += (x[j] + apAff*dx[j]) * (sv[j] + adAff*ds[j])
			if fin[j] {
				muAff += (wv[j] + apAff*dw[j]) * (tv[j] + adAff*dt[j])
			}
		}
		muAff /= float64(comp)
		sigma := 1e-6
		if muAff > 0 {
			r := muAff / mu
			sigma = r * r * r
			if sigma > 1 {
				sigma = 1
			} else if sigma < 1e-6 {
				sigma = 1e-6
			}
		}
		target := sigma * mu
		for j := 0; j < n; j++ {
			if !act[j] {
				continue
			}
			rxs[j] = target - x[j]*sv[j] - dx[j]*ds[j]
			if fin[j] {
				rwt[j] = target - wv[j]*tv[j] - dw[j]*dt[j]
			}
		}
		solveKKT(sf, act, fin, x, wv, sv, tv, dv, rd, ru, rxs, rwt, r2, rp, rhs, dy, dx, dw, ds, dt, &fac, mp, mi, mx, resv)

		ap := ipmStepFrac * maxStep(x, dx, wv, dw, act, fin, 1/ipmStepFrac)
		ad := ipmStepFrac * maxStep(sv, ds, tv, dt, act, fin, 1/ipmStepFrac)
		if ap < 1e-10 && ad < 1e-10 {
			return iters, nil, false // jammed against the boundary
		}
		for j := 0; j < n; j++ {
			if !act[j] {
				continue
			}
			x[j] += ap * dx[j]
			sv[j] += ad * ds[j]
			if x[j] < 1e-300 {
				x[j] = 1e-300
			}
			if sv[j] < 1e-300 {
				sv[j] = 1e-300
			}
			if fin[j] {
				wv[j] += ap * dw[j]
				tv[j] += ad * dt[j]
				if wv[j] < 1e-300 {
					wv[j] = 1e-300
				}
				if tv[j] < 1e-300 {
					tv[j] = 1e-300
				}
			}
		}
		for r := 0; r < m; r++ {
			y[r] += ad * dy[r]
		}
	}
	return iters, nil, false
}

// solveKKT performs one Newton solve of the KKT system for the given
// complementarity right-hand sides (rxs, rwt), using the factorization of
// M = Â·D·Âᵀ already in fac. Eliminating Δs, Δt, Δw reduces the system to
// M·Δy = rp + Â·D·r2 with
//
//	r2_j = rd_j − rxs_j/x_j + rwt_j/w_j − (t_j/w_j)·ru_j
//
// after which the eliminated directions are recovered column by column.
func solveKKT(sf *standardForm, act, fin []bool, x, wv, sv, tv, dv, rd, ru, rxs, rwt, r2 []float64, rp, rhs, dy []float64, dx, dw, ds, dt []float64, fac *chol.Factor, mp, mi []int32, mx, resv []float64) {
	n := sf.n
	copy(rhs, rp)
	for j := 0; j < n; j++ {
		if !act[j] {
			continue
		}
		v := rd[j] - rxs[j]/x[j]
		if fin[j] {
			v += rwt[j]/wv[j] - tv[j]/wv[j]*ru[j]
		}
		r2[j] = v
		sf.scatterColumn(j, dv[j]*v, rhs)
	}
	copy(dy, rhs)
	fac.Solve(dy)
	// One step of iterative refinement. Late in the path-following run the
	// diagonal of D spans many orders of magnitude and the Cholesky solve
	// (with its clamped pivots) can lose enough digits in Δy to stall the
	// centering step. M is stored full-symmetric in (mp, mi, mx), so the
	// true residual is one sparse matvec; when it is no longer negligible
	// against the right-hand side, a single corrective solve on the same
	// factorization recovers the lost accuracy.
	rhsInf := 0.0
	for _, v := range rhs {
		if a := math.Abs(v); a > rhsInf {
			rhsInf = a
		}
	}
	resInf := 0.0
	for r := range resv {
		t := rhs[r]
		for q := mp[r]; q < mp[r+1]; q++ {
			t -= mx[q] * dy[mi[q]]
		}
		resv[r] = t
		if a := math.Abs(t); a > resInf {
			resInf = a
		}
	}
	if resInf > ipmRefineTol*(1+rhsInf) {
		fac.Solve(resv)
		for r := range dy {
			dy[r] += resv[r]
		}
	}
	for j := 0; j < n; j++ {
		if !act[j] {
			dx[j], dw[j], ds[j], dt[j] = 0, 0, 0, 0
			continue
		}
		dx[j] = dv[j] * (sf.dotColumn(j, dy) - r2[j])
		ds[j] = rxs[j]/x[j] - sv[j]/x[j]*dx[j]
		if fin[j] {
			dw[j] = ru[j] - dx[j]
			dt[j] = rwt[j]/wv[j] - tv[j]/wv[j]*dw[j]
		} else {
			dw[j], dt[j] = 0, 0
		}
	}
}

// maxStep returns the largest α ≤ cap with v + α·dv ≥ 0 and (for finite
// columns) w + α·dw ≥ 0.
func maxStep(v, dvec, w, dwvec []float64, act, fin []bool, cap float64) float64 {
	a := cap
	for j := range v {
		if !act[j] {
			continue
		}
		if d := dvec[j]; d < 0 {
			if r := v[j] / -d; r < a {
				a = r
			}
		}
		if fin[j] {
			if d := dwvec[j]; d < 0 {
				if r := w[j] / -d; r < a {
					a = r
				}
			}
		}
	}
	if a > 1 {
		a = 1
	}
	return a
}

// --- crossover ---------------------------------------------------------------

const (
	// crossTol: columns whose interiorness (distance from the nearer
	// bound) is below this are nonbasic at that bound.
	crossTol = 1e-9
	// crossPivRel/crossPivAbs gate the incremental-LU pivot acceptance.
	crossPivRel = 1e-7
	crossPivAbs = 1e-10
)

// crossoverBasis turns a converged interior point into a vertex basis:
// columns are considered in decreasing interiorness and accepted greedily
// while they remain linearly independent of the columns already placed
// (incremental product-form LU via the eta file — the same machinery the
// simplex refactorization uses), then leftover rows are completed with
// slack columns. Nonbasic columns take the status of their nearer bound.
// The result is exactly feasible at the basis's own vertex up to the IPM
// tolerance, and the subsequent simplex Solve re-certifies (or repairs)
// it with a handful of pivots. Returns nil when no nonsingular completion
// is found; the caller falls back to a cold simplex solve.
func crossoverBasis(sf *standardForm, x []float64) *Basis {
	m, nv, n := sf.m, sf.nv, sf.n
	type cand struct {
		j     int32
		score float64
	}
	cands := make([]cand, 0, n)
	for j := 0; j < n; j++ {
		u := sf.ub[j]
		if u <= 0 {
			continue
		}
		score := x[j]
		if !math.IsInf(u, 1) && u-x[j] < score {
			score = u - x[j]
		}
		if score > crossTol {
			cands = append(cands, cand{int32(j), score})
		}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].score > cands[b].score })

	eta := &etaFile{}
	eta.reset(m)
	isBasic := make([]bool, n)
	cols := make([]int, m)
	unpiv := make([]bool, m)
	for r := range cols {
		cols[r] = -1
		unpiv[r] = true
	}
	placed := 0
	w := make([]float64, m)

	place := func(j int) bool {
		for i := range w {
			w[i] = 0
		}
		sf.scatterColumn(j, 1, w)
		eta.ftran(w)
		best, bestAbs, maxAbs := -1, 0.0, 0.0
		for r := 0; r < m; r++ {
			a := math.Abs(w[r])
			if a > maxAbs {
				maxAbs = a
			}
			if unpiv[r] && a > bestAbs {
				best, bestAbs = r, a
			}
		}
		if best < 0 || bestAbs < crossPivAbs || bestAbs < crossPivRel*maxAbs {
			return false
		}
		cols[best] = j
		unpiv[best] = false
		isBasic[j] = true
		eta.update(best, w)
		placed++
		return true
	}

	for _, c := range cands {
		if placed == m {
			break
		}
		place(int(c.j))
	}
	// Complete with slacks: each leftover row tries its own slack first
	// (almost always a clean unit pivot), then any remaining free slack.
	for r := 0; r < m && placed < m; r++ {
		if unpiv[r] && !isBasic[nv+r] {
			place(nv + r)
		}
	}
	for j := nv; j < n && placed < m; j++ {
		if !isBasic[j] {
			place(j)
		}
	}
	if placed < m {
		return nil
	}

	b := &Basis{Cols: cols, Status: make([]VarStatus, n)}
	for j := 0; j < n; j++ {
		if isBasic[j] {
			b.Status[j] = BasicVar
			continue
		}
		if u := sf.ub[j]; !math.IsInf(u, 1) && u > 0 && x[j] > u/2 {
			b.Status[j] = NonbasicUpper
		} else {
			b.Status[j] = NonbasicLower
		}
	}
	return b
}
