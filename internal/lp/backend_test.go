package lp

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// problemSpec is a rebuildable LP description, so differential tests can
// hand the same (possibly mutated) problem to every solver.
type problemSpec struct {
	obj  []float64
	ub   []float64
	rows []specRow
}

type specRow struct {
	sense Sense
	rhs   float64
	terms []Term
}

func (ps *problemSpec) build() *Problem {
	p := &Problem{}
	for j := range ps.obj {
		p.AddVar(ps.obj[j], ps.ub[j])
	}
	for _, r := range ps.rows {
		p.AddConstraint(r.sense, r.rhs, r.terms...)
	}
	return p
}

// clone deep-copies the spec so mutations do not alias.
func (ps *problemSpec) clone() *problemSpec {
	c := &problemSpec{
		obj: append([]float64(nil), ps.obj...),
		ub:  append([]float64(nil), ps.ub...),
	}
	for _, r := range ps.rows {
		c.rows = append(c.rows, specRow{sense: r.sense, rhs: r.rhs, terms: append([]Term(nil), r.terms...)})
	}
	return c
}

// randomBoxSpec mirrors the quick_test corpus: LE rows with nonnegative
// coefficients over a bounded box (always feasible at 0).
func randomBoxSpec(rng *rand.Rand) *problemSpec {
	d := 2 + rng.Intn(4)
	nr := 1 + rng.Intn(5)
	ps := &problemSpec{}
	for j := 0; j < d; j++ {
		ps.obj = append(ps.obj, rng.NormFloat64())
		ps.ub = append(ps.ub, 1+rng.Float64()*4)
	}
	for r := 0; r < nr; r++ {
		var terms []Term
		for j := 0; j < d; j++ {
			if rng.Float64() < 0.7 {
				terms = append(terms, Term{j, rng.Float64() * 3})
			}
		}
		ps.rows = append(ps.rows, specRow{LE, 1 + rng.Float64()*8, terms})
	}
	return ps
}

// randomEqSpec mirrors the quick_test equality corpus: EQ rows generated
// from a known feasible point (feasible by construction).
func randomEqSpec(rng *rand.Rand) *problemSpec {
	d := 2 + rng.Intn(5)
	nr := 1 + rng.Intn(4)
	ps := &problemSpec{}
	x0 := make([]float64, d)
	for j := 0; j < d; j++ {
		ub := 1 + rng.Float64()*3
		x0[j] = rng.Float64() * ub
		ps.obj = append(ps.obj, rng.NormFloat64())
		ps.ub = append(ps.ub, ub)
	}
	for r := 0; r < nr; r++ {
		var terms []Term
		rhs := 0.0
		for j := 0; j < d; j++ {
			c := rng.NormFloat64()
			terms = append(terms, Term{j, c})
			rhs += c * x0[j]
		}
		ps.rows = append(ps.rows, specRow{EQ, rhs, terms})
	}
	return ps
}

// randomMixedSpec adds GE rows and infinite upper bounds to exercise the
// row-negation and unbounded-variable paths of the standard form.
func randomMixedSpec(rng *rand.Rand) *problemSpec {
	d := 2 + rng.Intn(4)
	ps := &problemSpec{}
	for j := 0; j < d; j++ {
		// Nonnegative costs keep the LP bounded despite infinite bounds.
		ps.obj = append(ps.obj, rng.Float64()*2)
		if rng.Float64() < 0.3 {
			ps.ub = append(ps.ub, math.Inf(1))
		} else {
			ps.ub = append(ps.ub, 1+rng.Float64()*5)
		}
	}
	// A few GE rows with nonnegative coefficients force activity.
	for r := 0; r < 1+rng.Intn(3); r++ {
		var terms []Term
		for j := 0; j < d; j++ {
			if rng.Float64() < 0.8 {
				terms = append(terms, Term{j, 0.2 + rng.Float64()*2})
			}
		}
		if len(terms) == 0 {
			terms = append(terms, Term{0, 1})
		}
		ps.rows = append(ps.rows, specRow{GE, rng.Float64() * 3, terms})
	}
	// And LE caps so it stays interesting.
	for r := 0; r < rng.Intn(3); r++ {
		var terms []Term
		for j := 0; j < d; j++ {
			if rng.Float64() < 0.6 {
				terms = append(terms, Term{j, rng.Float64() * 2})
			}
		}
		if len(terms) > 0 {
			ps.rows = append(ps.rows, specRow{LE, 5 + rng.Float64()*10, terms})
		}
	}
	return ps
}

// solveAll runs the legacy tableau solver and both backends on the spec.
func solveAll(t *testing.T, ps *problemSpec) (legacy, dense, sparse *Solution) {
	t.Helper()
	var err error
	legacy, err = ps.build().Solve()
	if err != nil {
		t.Fatalf("legacy Solve: %v", err)
	}
	for _, kind := range []BackendKind{Dense, Sparse} {
		be, err := NewBackend(kind, ps.build(), nil)
		if err != nil {
			t.Fatalf("NewBackend(%s): %v", kind, err)
		}
		sol, err := be.Solve()
		if err != nil {
			t.Fatalf("%s Solve: %v", kind, err)
		}
		if kind == Dense {
			dense = cloneSolution(sol)
		} else {
			sparse = cloneSolution(sol)
		}
	}
	return legacy, dense, sparse
}

func cloneSolution(s *Solution) *Solution {
	c := *s
	c.X = append([]float64(nil), s.X...)
	return &c
}

// agree checks status equality and, when optimal, objective agreement
// within 1e-6 plus primal feasibility of the backend solutions.
func agree(t *testing.T, ps *problemSpec, name string, ref, got *Solution) {
	t.Helper()
	if ref.Status != got.Status {
		t.Fatalf("%s: status %v, legacy %v", name, got.Status, ref.Status)
	}
	if ref.Status != Optimal {
		return
	}
	if math.Abs(ref.Objective-got.Objective) > 1e-6 {
		t.Fatalf("%s: objective %v, legacy %v (diff %g)", name, got.Objective, ref.Objective,
			math.Abs(ref.Objective-got.Objective))
	}
	p := ps.build()
	if !feasible(p, got.X) {
		t.Fatalf("%s: solution violates constraints: %v", name, got.X)
	}
	for j, x := range got.X {
		if x < -1e-6 || x > ps.ub[j]+1e-6 {
			t.Fatalf("%s: x[%d]=%v outside [0,%v]", name, j, x, ps.ub[j])
		}
	}
}

// TestBackendsAgreeOnRandomCorpus is the dense-vs-revised differential over
// the same random-LP corpus shapes as quick_test.go: every seed must give
// the same status and (when optimal) the same objective within 1e-6.
func TestBackendsAgreeOnRandomCorpus(t *testing.T) {
	gens := map[string]func(*rand.Rand) *problemSpec{
		"box":   randomBoxSpec,
		"eq":    randomEqSpec,
		"mixed": randomMixedSpec,
	}
	for name, gen := range gens {
		gen := gen
		t.Run(name, func(t *testing.T) {
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				ps := gen(rng)
				legacy, dense, sparse := solveAll(t, ps)
				agree(t, ps, "dense", legacy, dense)
				agree(t, ps, "sparse", legacy, sparse)
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestBackendsDetectInfeasible mirrors the contradicting-equalities corpus.
func TestBackendsDetectInfeasible(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 + rng.Intn(4)
		ps := &problemSpec{}
		for j := 0; j < d; j++ {
			ps.obj = append(ps.obj, 0)
			ps.ub = append(ps.ub, 10)
		}
		var terms []Term
		for j := 0; j < d; j++ {
			terms = append(terms, Term{j, 1 + rng.Float64()})
		}
		ps.rows = append(ps.rows, specRow{EQ, 5, terms})
		ps.rows = append(ps.rows, specRow{EQ, 7, terms})
		legacy, dense, sparse := solveAll(t, ps)
		return legacy.Status == Infeasible && dense.Status == Infeasible && sparse.Status == Infeasible
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestBackendWarmResolveMatchesCold mutates RHS values and upper bounds
// after an optimal solve and checks the warm re-solve against a cold solve
// of the mutated problem by all three solvers.
func TestBackendWarmResolveMatchesCold(t *testing.T) {
	for _, kind := range []BackendKind{Dense, Sparse, IPM} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				ps := randomBoxSpec(rng)
				if rng.Intn(2) == 0 {
					ps = randomEqSpec(rng)
				}
				be, err := NewBackend(kind, ps.build(), NewWorkspace())
				if err != nil {
					t.Fatalf("NewBackend: %v", err)
				}
				if _, err := be.Solve(); err != nil {
					t.Fatalf("cold Solve: %v", err)
				}
				// Three rounds of mutations with warm re-solves; RHS shrinks
				// and grows, bounds clamp to 0 and restore.
				mut := ps.clone()
				for round := 0; round < 3; round++ {
					for r := range mut.rows {
						if rng.Float64() < 0.5 {
							f := 0.4 + rng.Float64()*1.2
							mut.rows[r].rhs *= f
							be.SetRHS(r, mut.rows[r].rhs)
						}
					}
					for j := range mut.ub {
						switch rng.Intn(4) {
						case 0:
							mut.ub[j] = 0
							be.SetVarUpper(j, 0)
						case 1:
							mut.ub[j] = 0.5 + rng.Float64()*3
							be.SetVarUpper(j, mut.ub[j])
						}
					}
					warm, err := be.Solve()
					if err != nil {
						t.Fatalf("warm Solve (round %d): %v", round, err)
					}
					cold, err := mut.build().Solve()
					if err != nil {
						t.Fatalf("legacy cold Solve: %v", err)
					}
					if warm.Status != cold.Status {
						t.Fatalf("round %d: warm status %v, cold %v (seed %d)", round, warm.Status, cold.Status, seed)
					}
					if warm.Status == Optimal {
						if math.Abs(warm.Objective-cold.Objective) > 1e-6 {
							t.Fatalf("round %d: warm objective %v, cold %v", round, warm.Objective, cold.Objective)
						}
						if !feasible(mut.build(), warm.X) {
							t.Fatalf("round %d: warm solution infeasible", round)
						}
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestBackendWarmTransplant moves an optimal basis from one backend into
// the other; the receiving backend must confirm optimality essentially for
// free (no more pivots than a cold solve, same objective). The ≤2-pivot
// budget is a property of the concrete backends, so presolve is off here;
// postsolved-basis transplants (which may legitimately need a repair pivot
// per folded bound) are covered by the presolve differential tests.
func TestBackendWarmTransplant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		ps := randomBoxSpec(rng)
		from, err := NewBackend(Dense, ps.build(), nil, WithPresolve(false))
		if err != nil {
			t.Fatalf("NewBackend: %v", err)
		}
		ref, err := from.Solve()
		if err != nil || ref.Status != Optimal {
			t.Fatalf("donor solve: %v (%v)", err, ref.Status)
		}
		refObj := ref.Objective
		to, err := NewBackend(Sparse, ps.build(), nil, WithPresolve(false))
		if err != nil {
			t.Fatalf("NewBackend: %v", err)
		}
		if err := to.Warm(from.Basis()); err != nil {
			t.Fatalf("Warm: %v", err)
		}
		sol, err := to.Solve()
		if err != nil {
			t.Fatalf("warm-transplant Solve: %v", err)
		}
		if sol.Status != Optimal || math.Abs(sol.Objective-refObj) > 1e-6 {
			t.Fatalf("transplant: status %v obj %v, want optimal %v", sol.Status, sol.Objective, refObj)
		}
		if sol.Iterations > 2 {
			t.Errorf("transplanted basis needed %d pivots, want ≤2", sol.Iterations)
		}
	}
}

// TestBackendWarmRejectsBadBasis checks the validation paths of Warm.
func TestBackendWarmRejectsBadBasis(t *testing.T) {
	ps := randomBoxSpec(rand.New(rand.NewSource(3)))
	be, err := NewBackend(Sparse, ps.build(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := be.Warm(nil); err == nil {
		t.Error("Warm(nil) accepted")
	}
	if err := be.Warm(&Basis{Cols: []int{0}, Status: []VarStatus{BasicVar}}); err == nil {
		t.Error("Warm with wrong shape accepted")
	}
}

// TestBackendDegenerateCyclingRegression solves Beale's classic cycling
// example, which loops forever under pure Dantzig pricing with a naive
// ratio test. The stall detector must switch to Bland's rule and terminate
// at the known optimum -1/20.
func TestBackendDegenerateCyclingRegression(t *testing.T) {
	spec := &problemSpec{
		obj: []float64{-0.75, 150, -0.02, 6},
		ub:  []float64{math.Inf(1), math.Inf(1), math.Inf(1), math.Inf(1)},
		rows: []specRow{
			{LE, 0, []Term{{0, 0.25}, {1, -60}, {2, -1.0 / 25}, {3, 9}}},
			{LE, 0, []Term{{0, 0.5}, {1, -90}, {2, -1.0 / 50}, {3, 3}}},
			{LE, 1, []Term{{2, 1}}},
		},
	}
	legacy, dense, sparse := solveAll(t, spec)
	for name, sol := range map[string]*Solution{"legacy": legacy, "dense": dense, "sparse": sparse} {
		if sol.Status != Optimal {
			t.Errorf("%s: status %v, want optimal", name, sol.Status)
			continue
		}
		if math.Abs(sol.Objective-(-0.05)) > 1e-6 {
			t.Errorf("%s: objective %v, want -0.05", name, sol.Objective)
		}
	}
}

// TestBackendSchedulingShape runs the ILP-UM-shaped LP of quick_test.go
// through both backends and cross-checks the y ≥ x rows.
func TestBackendSchedulingShape(t *testing.T) {
	m, n, K := 2, 3, 2
	class := []int{0, 0, 1}
	ps := &problemSpec{}
	x := make([][]int, m)
	y := make([][]int, m)
	id := 0
	for i := 0; i < m; i++ {
		x[i] = make([]int, n)
		y[i] = make([]int, K)
		for j := 0; j < n; j++ {
			ps.obj = append(ps.obj, 0)
			ps.ub = append(ps.ub, 1)
			x[i][j] = id
			id++
		}
		for k := 0; k < K; k++ {
			ps.obj = append(ps.obj, 0)
			ps.ub = append(ps.ub, 1)
			y[i][k] = id
			id++
		}
	}
	T := 3.0
	for i := 0; i < m; i++ {
		var terms []Term
		for j := 0; j < n; j++ {
			terms = append(terms, Term{x[i][j], 1})
		}
		for k := 0; k < K; k++ {
			terms = append(terms, Term{y[i][k], 1})
		}
		ps.rows = append(ps.rows, specRow{LE, T, terms})
	}
	for j := 0; j < n; j++ {
		var terms []Term
		for i := 0; i < m; i++ {
			terms = append(terms, Term{x[i][j], 1})
		}
		ps.rows = append(ps.rows, specRow{EQ, 1, terms})
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			ps.rows = append(ps.rows, specRow{LE, 0, []Term{{x[i][j], 1}, {y[i][class[j]], -1}}})
		}
	}
	_, dense, sparse := solveAll(t, ps)
	for name, sol := range map[string]*Solution{"dense": dense, "sparse": sparse} {
		if sol.Status != Optimal {
			t.Fatalf("%s: status %v, want optimal", name, sol.Status)
		}
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				if sol.X[x[i][j]] > sol.X[y[i][class[j]]]+1e-6 {
					t.Errorf("%s: x[%d][%d]=%v exceeds y=%v", name, i, j, sol.X[x[i][j]], sol.X[y[i][class[j]]])
				}
			}
		}
	}
}

// TestParseBackend covers the flag-parsing helper.
func TestParseBackend(t *testing.T) {
	if k, err := ParseBackend(""); err != nil || k != DefaultBackend {
		t.Errorf("ParseBackend(\"\") = %v, %v", k, err)
	}
	if k, err := ParseBackend("dense"); err != nil || k != Dense {
		t.Errorf("ParseBackend(dense) = %v, %v", k, err)
	}
	if k, err := ParseBackend("ipm"); err != nil || k != IPM {
		t.Errorf("ParseBackend(ipm) = %v, %v", k, err)
	}
	if k, err := ParseBackend("auto"); err != nil || k != Auto {
		t.Errorf("ParseBackend(auto) = %v, %v", k, err)
	}
	if _, err := ParseBackend("nope"); err == nil {
		t.Error("ParseBackend(nope) accepted")
	}
}

// TestBackendCloneIndependence: a clone carries the parent's problem data,
// mutation state and warm basis, but mutating and solving either side never
// perturbs the other. Verified against cold solves of the mutated specs.
func TestBackendCloneIndependence(t *testing.T) {
	for _, kind := range []BackendKind{Dense, Sparse, IPM} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				ps := randomBoxSpec(rng)
				if rng.Intn(2) == 0 {
					ps = randomEqSpec(rng)
				}
				parent, err := NewBackend(kind, ps.build(), NewWorkspace())
				if err != nil {
					t.Fatalf("NewBackend: %v", err)
				}
				base, err := parent.Solve()
				if err != nil {
					t.Fatalf("parent cold Solve: %v", err)
				}
				baseStatus, baseObj := base.Status, base.Objective

				// Mutate and solve the clone along its own trajectory.
				clone := parent.Clone()
				mut := ps.clone()
				for round := 0; round < 2; round++ {
					for r := range mut.rows {
						if rng.Float64() < 0.6 {
							mut.rows[r].rhs *= 0.3 + rng.Float64()
							clone.SetRHS(r, mut.rows[r].rhs)
						}
					}
					for j := range mut.ub {
						if rng.Intn(3) == 0 {
							mut.ub[j] = 0
							clone.SetVarUpper(j, 0)
						}
					}
					warm, err := clone.Solve()
					if err != nil {
						t.Fatalf("clone warm Solve: %v", err)
					}
					cold, err := mut.build().Solve()
					if err != nil {
						t.Fatalf("legacy cold Solve: %v", err)
					}
					if warm.Status != cold.Status {
						t.Fatalf("clone status %v, cold %v (seed %d)", warm.Status, cold.Status, seed)
					}
					if warm.Status == Optimal && math.Abs(warm.Objective-cold.Objective) > 1e-6 {
						t.Fatalf("clone objective %v, cold %v", warm.Objective, cold.Objective)
					}
				}

				// The parent must be untouched: same verdict and objective as
				// before the clone existed.
				again, err := parent.Solve()
				if err != nil {
					t.Fatalf("parent re-Solve: %v", err)
				}
				if again.Status != baseStatus {
					t.Fatalf("parent status drifted after clone mutations: %v -> %v", baseStatus, again.Status)
				}
				if baseStatus == Optimal && math.Abs(again.Objective-baseObj) > 1e-9 {
					t.Fatalf("parent objective drifted after clone mutations: %v -> %v", baseObj, again.Objective)
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestBackendCloneConcurrentSolves runs several clones of one warmed parent
// concurrently (run under -race), each on its own RHS trajectory, and
// checks every verdict against a cold solve — the speculative dual search's
// exact usage pattern.
func TestBackendCloneConcurrentSolves(t *testing.T) {
	for _, kind := range []BackendKind{Dense, Sparse, IPM} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			ps := randomEqSpec(rng)
			parent, err := NewBackend(kind, ps.build(), NewWorkspace())
			if err != nil {
				t.Fatal(err)
			}
			if _, err := parent.Solve(); err != nil {
				t.Fatal(err)
			}
			const workers = 4
			type job struct {
				be  Backend
				mut *problemSpec
			}
			jobs := make([]job, workers)
			for w := range jobs {
				mut := ps.clone()
				be := parent.Clone()
				for r := range mut.rows {
					mut.rows[r].rhs *= 0.5 + float64(w)*0.3
					be.SetRHS(r, mut.rows[r].rhs)
				}
				jobs[w] = job{be: be, mut: mut}
			}
			errs := make(chan error, workers)
			for _, jb := range jobs {
				jb := jb
				go func() {
					warm, err := jb.be.Solve()
					if err != nil {
						errs <- err
						return
					}
					cold, err := jb.mut.build().Solve()
					if err != nil {
						errs <- err
						return
					}
					if warm.Status != cold.Status {
						errs <- fmt.Errorf("concurrent clone status %v, cold %v", warm.Status, cold.Status)
						return
					}
					if warm.Status == Optimal && math.Abs(warm.Objective-cold.Objective) > 1e-6 {
						errs <- fmt.Errorf("concurrent clone objective %v, cold %v", warm.Objective, cold.Objective)
						return
					}
					errs <- nil
				}()
			}
			for range jobs {
				if err := <-errs; err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}
