package lp

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// refactorStaticOrder replicates the pre-Markowitz refactorization — the
// static sparsest-column-first sort with a full-row pivot scan per column —
// as the differential baseline for the dynamic bucket ordering in
// solverState.refactor.
func refactorStaticOrder(s *solverState) error {
	m := s.sf.m
	cols := append([]int(nil), s.basis...)
	order := make([]int, m)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return s.sf.colNNZ(cols[order[a]]) < s.sf.colNNZ(cols[order[b]])
	})
	marks := make([]bool, m)
	w := make([]float64, m)
	s.inv.reset(m)
	for _, i := range order {
		j := cols[i]
		for k := range w {
			w[k] = 0
		}
		s.sf.scatterColumn(j, 1, w)
		s.inv.ftran(w)
		best, bestAbs := -1, 1e-10
		for r := 0; r < m; r++ {
			if !marks[r] {
				if a := math.Abs(w[r]); a > bestAbs {
					best, bestAbs = r, a
				}
			}
		}
		if best < 0 {
			return fmt.Errorf("lp: singular basis (column %d)", j)
		}
		marks[best] = true
		s.basis[best] = j
		s.inv.update(best, w)
	}
	s.inv.markRefactored()
	return nil
}

// randomSchedShapeSpec builds a scheduling-relaxation-shaped feasibility LP
// (the refactorization's production workload): machine load rows, job
// assignment rows, setup-dominance rows, with random eligibility gaps.
func randomSchedShapeSpec(rng *rand.Rand) *problemSpec {
	m := 3 + rng.Intn(4)
	n := 8 + rng.Intn(12)
	K := 2 + rng.Intn(3)
	class := make([]int, n)
	for j := range class {
		class[j] = rng.Intn(K)
	}
	ps := &problemSpec{}
	x := make([][]int, m)
	y := make([][]int, m)
	for i := 0; i < m; i++ {
		x[i] = make([]int, n)
		y[i] = make([]int, K)
		for j := 0; j < n; j++ {
			x[i][j] = -1
			if i == j%m || rng.Float64() < 0.7 { // every job runs somewhere
				ps.obj = append(ps.obj, 0)
				ps.ub = append(ps.ub, 1)
				x[i][j] = len(ps.obj) - 1
			}
		}
		for k := 0; k < K; k++ {
			ps.obj = append(ps.obj, 0)
			ps.ub = append(ps.ub, 1)
			y[i][k] = len(ps.obj) - 1
		}
	}
	T := 2 + float64(n)/float64(m)*2
	for i := 0; i < m; i++ {
		var terms []Term
		for j := 0; j < n; j++ {
			if x[i][j] >= 0 {
				terms = append(terms, Term{x[i][j], 0.5 + rng.Float64()*2})
			}
		}
		for k := 0; k < K; k++ {
			terms = append(terms, Term{y[i][k], 0.2 + rng.Float64()})
		}
		ps.rows = append(ps.rows, specRow{LE, T, terms})
	}
	for j := 0; j < n; j++ {
		var terms []Term
		for i := 0; i < m; i++ {
			if x[i][j] >= 0 {
				terms = append(terms, Term{x[i][j], 1})
			}
		}
		ps.rows = append(ps.rows, specRow{EQ, 1, terms})
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if x[i][j] >= 0 {
				ps.rows = append(ps.rows, specRow{LE, 0, []Term{{x[i][j], 1}, {y[i][class[j]], -1}}})
			}
		}
	}
	return ps
}

// TestRefactorMarkowitzDifferential pins the bucket-ordered refactorization
// against the static-sort baseline on a scheduling-shaped corpus: both
// orderings must factorize the same bases to the same verdicts, and the
// dynamic order must not produce more total eta fill than the static one
// (less is the point of the change).
func TestRefactorMarkowitzDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	totalNew, totalOld := 0, 0
	solved := 0
	for trial := 0; trial < 40; trial++ {
		ps := randomSchedShapeSpec(rng)
		// White-box: the clones are downcast to solverState to compare eta
		// fill, so the presolve wrapper is off.
		be, err := NewBackend(Sparse, ps.build(), nil, WithPresolve(false))
		if err != nil {
			t.Fatalf("trial %d: NewBackend: %v", trial, err)
		}
		ref, err := be.Solve()
		if err != nil {
			t.Fatalf("trial %d: Solve: %v", trial, err)
		}
		if ref.Status != Optimal {
			continue // rare over-tight load rows: nothing to refactorize against
		}
		solved++
		refObj := ref.Objective
		a := be.Clone().(*solverState)
		b := be.Clone().(*solverState)
		if err := a.refactor(); err != nil {
			t.Fatalf("trial %d: dynamic refactor: %v", trial, err)
		}
		if err := refactorStaticOrder(b); err != nil {
			t.Fatalf("trial %d: static refactor: %v", trial, err)
		}
		fillA := a.inv.(*etaFile).nnz
		fillB := b.inv.(*etaFile).nnz
		totalNew += fillA
		totalOld += fillB
		// Both factorizations represent the same basis: re-solving from
		// them must reproduce the verdict and objective of the original.
		for name, s := range map[string]*solverState{"dynamic": a, "static": b} {
			sol, err := s.Solve()
			if err != nil {
				t.Fatalf("trial %d: %s re-solve: %v", trial, name, err)
			}
			if sol.Status != Optimal {
				t.Fatalf("trial %d: %s re-solve status %v, want optimal", trial, name, sol.Status)
			}
			if math.Abs(sol.Objective-refObj) > 1e-6 {
				t.Fatalf("trial %d: %s re-solve objective %v, want %v", trial, name, sol.Objective, refObj)
			}
		}
	}
	if solved < 20 {
		t.Fatalf("corpus degenerated: only %d/40 instances optimal", solved)
	}
	if totalNew > totalOld {
		t.Errorf("dynamic ordering produced more fill than the static sort: %d > %d", totalNew, totalOld)
	}
	t.Logf("eta fill across %d factorizations: dynamic %d, static %d", solved, totalNew, totalOld)
}

// TestRefactorPreservesWarmVerdicts drives a shrinking-RHS warm trajectory
// (the rounding search's access pattern, which is what forces periodic
// refactorization) and checks the sparse backend agrees with the dense one
// at every step.
func TestRefactorPreservesWarmVerdicts(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		ps := randomSchedShapeSpec(rng)
		sp, err := NewBackend(Sparse, ps.build(), nil)
		if err != nil {
			t.Fatalf("NewBackend sparse: %v", err)
		}
		de, err := NewBackend(Dense, ps.build(), nil)
		if err != nil {
			t.Fatalf("NewBackend dense: %v", err)
		}
		// Load rows are the first m rows; shrink them in steps.
		m := 3
		for i, r := range ps.rows {
			if r.sense != LE || len(r.terms) < 3 {
				m = i
				break
			}
		}
		base := ps.rows[0].rhs
		for step := 0; step < 12; step++ {
			T := base * (1 - 0.06*float64(step))
			for r := 0; r < m; r++ {
				sp.SetRHS(r, T)
				de.SetRHS(r, T)
			}
			ss, err := sp.Solve()
			if err != nil {
				t.Fatalf("trial %d step %d: sparse: %v", trial, step, err)
			}
			ds, err := de.Solve()
			if err != nil {
				t.Fatalf("trial %d step %d: dense: %v", trial, step, err)
			}
			if ss.Status != ds.Status {
				t.Fatalf("trial %d step %d: sparse %v vs dense %v", trial, step, ss.Status, ds.Status)
			}
			if ss.Status != Optimal {
				break
			}
		}
	}
}
