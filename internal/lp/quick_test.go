package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// enumerateOptimum solves a small LP with all-bounded variables by grid
// search over vertices of the box plus midpoints — it is only a *sound*
// check when used as below: we verify (a) the simplex solution is feasible,
// and (b) no sampled feasible point beats it. This avoids reimplementing a
// second exact solver while still catching wrong-optimum bugs.
func feasible(p *Problem, x []float64) bool {
	lhs := make([]float64, len(p.rows))
	for k, r := range p.tRow {
		lhs[r] += p.tCoef[k] * x[p.tVar[k]]
	}
	for i, r := range p.rows {
		switch r.sense {
		case LE:
			if lhs[i] > r.rhs+1e-7 {
				return false
			}
		case GE:
			if lhs[i] < r.rhs-1e-7 {
				return false
			}
		case EQ:
			if math.Abs(lhs[i]-r.rhs) > 1e-7 {
				return false
			}
		}
	}
	return true
}

// TestRandomLPsSimplexNotBeatenBySampling generates random LPs over the box
// [0,u]^d with LE rows (always feasible: 0 may violate nothing since rhs>=0)
// and checks simplex optimality against dense random sampling.
func TestRandomLPsSimplexNotBeatenBySampling(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 2 + rng.Intn(4)
		nr := 1 + rng.Intn(5)
		p := &Problem{}
		ubs := make([]float64, d)
		for j := 0; j < d; j++ {
			ubs[j] = 1 + rng.Float64()*4
			p.AddVar(rng.NormFloat64(), ubs[j])
		}
		for r := 0; r < nr; r++ {
			terms := []Term{}
			for j := 0; j < d; j++ {
				if rng.Float64() < 0.7 {
					terms = append(terms, Term{j, rng.Float64() * 3}) // nonneg coefs
				}
			}
			p.AddConstraint(LE, 1+rng.Float64()*8, terms...)
		}
		sol, err := p.Solve()
		if err != nil || sol.Status != Optimal {
			return false
		}
		// (a) feasibility of the simplex answer.
		if !feasible(p, sol.X) {
			return false
		}
		for j := 0; j < d; j++ {
			if sol.X[j] < -1e-7 || sol.X[j] > ubs[j]+1e-7 {
				return false
			}
		}
		// (b) sampling cannot beat it.
		x := make([]float64, d)
		for trial := 0; trial < 300; trial++ {
			for j := 0; j < d; j++ {
				switch rng.Intn(3) {
				case 0:
					x[j] = 0
				case 1:
					x[j] = ubs[j]
				default:
					x[j] = rng.Float64() * ubs[j]
				}
			}
			if !feasible(p, x) {
				continue
			}
			obj := 0.0
			for j := 0; j < d; j++ {
				obj += p.obj[j] * x[j]
			}
			if obj < sol.Objective-1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestRandomEqualityLPsFeasibilityAgreement builds random LPs with equality
// rows generated from a known feasible point, so the LP is feasible by
// construction; simplex must never report infeasible, and its solution must
// satisfy the rows.
func TestRandomEqualityLPsFeasibilityAgreement(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 2 + rng.Intn(5)
		nr := 1 + rng.Intn(4)
		// Known feasible point within bounds.
		x0 := make([]float64, d)
		p := &Problem{}
		for j := 0; j < d; j++ {
			ub := 1 + rng.Float64()*3
			x0[j] = rng.Float64() * ub
			p.AddVar(rng.NormFloat64(), ub)
		}
		for r := 0; r < nr; r++ {
			terms := []Term{}
			rhs := 0.0
			for j := 0; j < d; j++ {
				c := rng.NormFloat64()
				terms = append(terms, Term{j, c})
				rhs += c * x0[j]
			}
			p.AddConstraint(EQ, rhs, terms...)
		}
		sol, err := p.Solve()
		if err != nil {
			return false
		}
		if sol.Status == Infeasible {
			return false // feasible by construction
		}
		if sol.Status == Optimal && !feasible(p, sol.X) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestRandomInfeasibleDetected crafts LPs that are infeasible by
// construction (two contradicting equalities) and checks detection.
func TestRandomInfeasibleDetected(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 + rng.Intn(4)
		p := &Problem{}
		for j := 0; j < d; j++ {
			p.AddVar(0, 10)
		}
		terms := []Term{}
		for j := 0; j < d; j++ {
			terms = append(terms, Term{j, 1 + rng.Float64()})
		}
		p.AddConstraint(EQ, 5, terms...)
		p.AddConstraint(EQ, 7, terms...) // same lhs, different rhs
		sol, err := p.Solve()
		if err != nil {
			return false
		}
		return sol.Status == Infeasible
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestSchedulingShapedLP exercises the solver on the exact row/column shape
// of the ILP-UM relaxation on a tiny instance, including the yik >= xij rows.
func TestSchedulingShapedLP(t *testing.T) {
	// 2 machines, 3 jobs (classes 0,0,1), p[i][j] = 1, s = 1, T = 3.
	// Fractionally splitting everything is feasible.
	m, n, K := 2, 3, 2
	class := []int{0, 0, 1}
	p := &Problem{}
	x := make([][]int, m)
	y := make([][]int, m)
	for i := 0; i < m; i++ {
		x[i] = make([]int, n)
		y[i] = make([]int, K)
		for j := 0; j < n; j++ {
			x[i][j] = p.AddVar(0, 1)
		}
		for k := 0; k < K; k++ {
			y[i][k] = p.AddVar(0, 1)
		}
	}
	T := 3.0
	for i := 0; i < m; i++ {
		terms := []Term{}
		for j := 0; j < n; j++ {
			terms = append(terms, Term{x[i][j], 1})
		}
		for k := 0; k < K; k++ {
			terms = append(terms, Term{y[i][k], 1})
		}
		p.AddConstraint(LE, T, terms...)
	}
	for j := 0; j < n; j++ {
		terms := []Term{}
		for i := 0; i < m; i++ {
			terms = append(terms, Term{x[i][j], 1})
		}
		p.AddConstraint(EQ, 1, terms...)
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			p.AddConstraint(LE, 0, Term{x[i][j], 1}, Term{y[i][class[j]], -1})
		}
	}
	sol := solveOK(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal (fractional split is feasible)", sol.Status)
	}
	// Verify the y >= x rows numerically.
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if sol.X[x[i][j]] > sol.X[y[i][class[j]]]+1e-6 {
				t.Errorf("x[%d][%d]=%v exceeds y=%v", i, j, sol.X[x[i][j]], sol.X[y[i][class[j]]])
			}
		}
	}
}
