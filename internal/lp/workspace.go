package lp

// Workspace holds every per-solve scratch buffer a backend needs — work
// vectors, the standard-form arrays, refactorization marks, the solution
// vector — as grow-only slices, so that building a backend and re-solving
// it repeatedly allocates (almost) nothing after the first use. A
// Workspace can be handed to successive NewBackend calls (e.g. one per
// makespan guess, or a cold rebuild after a warm-start failure) to recycle
// the memory across problem instances of similar shape.
//
// A Workspace must not be shared by two backends that are alive at the
// same time, and is not safe for concurrent use.
type Workspace struct {
	// standard-form storage
	sfObj, sfUB, sfRHS, sfSign, sfVal []float64
	sfCnt, sfPtr, sfRow, sfNext       []int32

	// dense m-vectors
	xB, w, y, rho, rhsEff, cB []float64
	// solution output (nv)
	x []float64
	// refactorization scratch: the basic column set, its residual pattern
	// counts and count-bucket links, the unpivoted-row scan set, and the
	// row→column CSR of the basic pattern.
	newBasis                []int
	cnt, bhead, bnext       []int
	unrows, rowIdx          []int
	rc, rowStack            []int
	rowPtr, rowCol, rowFill []int32
}

// NewWorkspace returns an empty workspace; buffers grow on first use.
func NewWorkspace() *Workspace { return &Workspace{} }

// growF resizes *s to n, reallocating only when capacity is exceeded.
// Contents are unspecified (callers overwrite).
func growF(s *[]float64, n int) []float64 {
	if cap(*s) < n {
		*s = make([]float64, n)
	}
	*s = (*s)[:n]
	return *s
}

func growI32(s *[]int32, n int) []int32 {
	if cap(*s) < n {
		*s = make([]int32, n)
	}
	*s = (*s)[:n]
	return *s
}

func growInt(s *[]int, n int) []int {
	if cap(*s) < n {
		*s = make([]int, n)
	}
	*s = (*s)[:n]
	return *s
}
