package lp

import "sync/atomic"

// Gauge tracks how many LP solves run at the same instant, remembering the
// high-water mark. It exists so concurrency tests can assert, from outside
// the engine, that the governor's token budget really bounds the number of
// simultaneous LP solves — the resource the budget is meant to meter —
// rather than trusting the engine's own bookkeeping.
//
// Every solverState.Solve and Problem.Solve increments the package-level
// SolveGauge for its duration. The gauge is a test observability hook, not
// a throttle: it never blocks.
type Gauge struct {
	cur, peak atomic.Int64
}

func (g *Gauge) enter() {
	c := g.cur.Add(1)
	for {
		p := g.peak.Load()
		if c <= p || g.peak.CompareAndSwap(p, c) {
			return
		}
	}
}

func (g *Gauge) exit() { g.cur.Add(-1) }

// Peak reports the highest simultaneous solve count observed since the last
// Reset.
func (g *Gauge) Peak() int { return int(g.peak.Load()) }

// Reset clears the high-water mark (in-flight solves keep counting).
func (g *Gauge) Reset() { g.peak.Store(g.cur.Load()) }

// SolveGauge meters every LP solve in the process.
var SolveGauge Gauge
