package lp

import (
	"fmt"
	"math"
)

const (
	// tol is the feasibility/optimality tolerance of the solver.
	tol = 1e-8
	// pivTol is the minimum magnitude of an acceptable pivot element.
	pivTol = 1e-9
	// stallLimit is the number of non-improving pivots after which the
	// solver switches from Dantzig pricing to Bland's rule.
	stallLimit = 200
)

// nonbasic status of a column.
type varStatus int8

const (
	atLower varStatus = iota
	atUpper
	basic
)

// tableau is the working state of the bounded-variable simplex method.
type tableau struct {
	m, n   int         // rows, total columns (structural + slack + artificial)
	a      [][]float64 // m×n constraint matrix in current basis coordinates
	xB     []float64   // values of the basic variables, per row
	basis  []int       // column basic in each row
	status []varStatus
	ub     []float64 // per-column upper bound
	cost   []float64 // reduced-cost row for the current phase
	z      float64   // current objective value (for stall detection)

	nStruct int // number of structural columns
	nArt    int // number of artificial columns (suffix of the columns)

	iters    int
	bland    bool
	stall    int
	hitLimit bool
}

// Solve runs the two-phase simplex method and returns the solution.
// It returns an error only for internal failures (iteration explosion),
// which indicates a solver bug rather than a property of the input.
func (p *Problem) Solve() (*Solution, error) {
	SolveGauge.enter()
	defer SolveGauge.exit()
	t := newTableau(p)
	// Phase 1: minimize the sum of artificials.
	if t.nArt > 0 {
		t.setPhaseCost(t.phase1Cost())
		if st := t.iterate(); st != Optimal {
			// Phase 1 is bounded below by 0; Unbounded cannot happen.
			return nil, fmt.Errorf("lp: phase 1 ended with status %v", st)
		}
		if t.hitLimit {
			return nil, fmt.Errorf("lp: simplex iteration limit reached in phase 1 (%d pivots)", t.iters)
		}
		if t.objective() > 1e-6 {
			return &Solution{Status: Infeasible, Iterations: t.iters}, nil
		}
		t.dropArtificials()
	}
	// Phase 2: minimize the real objective.
	t.setPhaseCost(t.phase2Cost(p))
	st := t.iterate()
	if t.hitLimit {
		return nil, fmt.Errorf("lp: simplex iteration limit reached (%d pivots)", t.iters)
	}
	if st == Unbounded {
		return &Solution{Status: Unbounded, Iterations: t.iters}, nil
	}
	x := t.structuralValues()
	obj := 0.0
	for j, c := range p.obj {
		obj += c * x[j]
	}
	return &Solution{Status: Optimal, X: x, Objective: obj, Iterations: t.iters}, nil
}

// newTableau builds the initial tableau: all rows converted to equalities
// with slacks, rhs made non-negative, artificials added where no natural
// identity column exists. Structural variables start nonbasic at lower
// bound (0), so the initial basic solution is x_B = b ≥ 0.
func newTableau(p *Problem) *tableau {
	m := len(p.rows)
	nStruct := len(p.obj)
	// Column layout: [0,nStruct) structural, then one slack per LE/GE row,
	// then artificials for rows that need them.
	type rowPlan struct {
		sign     float64 // +1 or -1 applied to the whole row
		slackCol int     // -1 if none
		slackCoe float64
		artCol   int // -1 if none
	}
	plans := make([]rowPlan, m)
	next := nStruct
	for r, row := range p.rows {
		pl := rowPlan{sign: 1, slackCol: -1, artCol: -1}
		sense := row.sense
		if row.rhs < 0 {
			pl.sign = -1
			switch sense {
			case LE:
				sense = GE
			case GE:
				sense = LE
			}
		}
		switch sense {
		case LE:
			pl.slackCol, pl.slackCoe = next, 1
			next++
		case GE:
			pl.slackCol, pl.slackCoe = next, -1
			next++
		}
		plans[r] = pl
	}
	nArt := 0
	for r := range p.rows {
		// LE rows (after sign fix) have a +1 slack that can start basic.
		// GE and EQ rows need an artificial.
		needArt := plans[r].slackCol == -1 || plans[r].slackCoe < 0
		if needArt {
			plans[r].artCol = next
			next++
			nArt++
		}
	}
	n := next
	t := &tableau{
		m: m, n: n,
		a:       make([][]float64, m),
		xB:      make([]float64, m),
		basis:   make([]int, m),
		status:  make([]varStatus, n),
		ub:      make([]float64, n),
		nStruct: nStruct,
		nArt:    nArt,
	}
	for j := 0; j < nStruct; j++ {
		t.ub[j] = p.ub[j]
	}
	for j := nStruct; j < n; j++ {
		t.ub[j] = math.Inf(1) // slacks and artificials are unbounded above
	}
	for r := range p.rows {
		t.a[r] = make([]float64, n)
	}
	for k, r := range p.tRow {
		t.a[r][p.tVar[k]] += plans[r].sign * p.tCoef[k]
	}
	for r, row := range p.rows {
		pl := plans[r]
		rhs := pl.sign * row.rhs
		if pl.slackCol >= 0 {
			t.a[r][pl.slackCol] = pl.slackCoe
		}
		if pl.artCol >= 0 {
			t.a[r][pl.artCol] = 1
			t.basis[r] = pl.artCol
		} else {
			t.basis[r] = pl.slackCol
		}
		t.xB[r] = rhs
		t.status[t.basis[r]] = basic
	}
	return t
}

// phase1Cost is 1 on artificial columns, 0 elsewhere.
func (t *tableau) phase1Cost() []float64 {
	c := make([]float64, t.n)
	for j := t.n - t.nArt; j < t.n; j++ {
		c[j] = 1
	}
	return c
}

// phase2Cost is the structural objective, with a prohibitive cost on any
// remaining artificial column so it can never re-enter.
func (t *tableau) phase2Cost(p *Problem) []float64 {
	c := make([]float64, t.n)
	copy(c, p.obj)
	for j := t.n - t.nArt; j < t.n; j++ {
		if t.ub[j] != 0 {
			c[j] = 1e30 // dropArtificials pins ub to 0, this is belt-and-braces
		}
	}
	return c
}

// setPhaseCost installs a cost vector and prices out the basic columns so
// that reduced costs of basic variables are zero.
func (t *tableau) setPhaseCost(c []float64) {
	t.cost = c
	for r := 0; r < t.m; r++ {
		cb := t.cost[t.basis[r]]
		if cb == 0 {
			continue
		}
		row := t.a[r]
		for j := 0; j < t.n; j++ {
			t.cost[j] -= cb * row[j]
		}
		// Pricing introduces rounding noise on the basic column itself.
		t.cost[t.basis[r]] = 0
	}
	t.z = 0 // tracked incrementally; only changes matter
	t.stall = 0
	t.bland = false
}

// objective returns the phase-1 infeasibility measure: the total value
// carried by artificial variables (all artificials are basic or at their
// lower/pinned bound, so summing basic artificial values suffices).
func (t *tableau) objective() float64 {
	sum := 0.0
	for r := 0; r < t.m; r++ {
		if t.basis[r] >= t.n-t.nArt {
			sum += t.xB[r]
		}
	}
	return sum
}

// iterate runs simplex pivots until optimality or unboundedness.
func (t *tableau) iterate() Status {
	maxIters := 200*(t.m+t.n) + 20000
	for {
		j := t.chooseEntering()
		if j < 0 {
			return Optimal
		}
		prevZ := t.z
		if st := t.pivot(j); st != Optimal {
			return st
		}
		t.iters++
		if t.iters > maxIters {
			t.hitLimit = true
			return Optimal
		}
		if t.z < prevZ-tol {
			t.stall = 0
		} else {
			t.stall++
			if t.stall > stallLimit {
				t.bland = true
			}
		}
	}
}

// chooseEntering picks a nonbasic column whose move improves the objective:
// at lower bound with negative reduced cost, or at upper bound with positive
// reduced cost. Returns -1 at optimality.
func (t *tableau) chooseEntering() int {
	best, bestScore := -1, tol
	for j := 0; j < t.n; j++ {
		switch t.status[j] {
		case atLower:
			if d := -t.cost[j]; d > bestScore {
				if t.bland {
					return j
				}
				best, bestScore = j, d
			}
		case atUpper:
			if d := t.cost[j]; d > bestScore {
				if t.bland {
					return j
				}
				best, bestScore = j, d
			}
		}
	}
	return best
}

// pivot moves entering column j from its bound. dir=+1 when increasing from
// the lower bound, -1 when decreasing from the upper bound. It performs the
// bounded-variable ratio test (leaving at lower bound, leaving at upper
// bound, or a bound flip of j itself) and updates the tableau.
func (t *tableau) pivot(j int) Status {
	dir := 1.0
	if t.status[j] == atUpper {
		dir = -1
	}
	// Max step before some basic variable hits one of its bounds.
	limit := math.Inf(1)
	leave := -1
	leaveAt := atLower
	for r := 0; r < t.m; r++ {
		arj := t.a[r][j] * dir
		var ratio float64
		var at varStatus
		switch {
		case arj > pivTol:
			// Basic variable decreases toward 0.
			ratio, at = t.xB[r]/arj, atLower
		case arj < -pivTol:
			// Basic variable increases toward its upper bound.
			ubB := t.ub[t.basis[r]]
			if math.IsInf(ubB, 1) {
				continue
			}
			ratio, at = (ubB-t.xB[r])/(-arj), atUpper
		default:
			continue
		}
		if ratio < 0 {
			ratio = 0 // degeneracy: a basic variable slightly past its bound
		}
		// Strictly smaller ratio wins; on (near-)ties prefer the smallest
		// basic index, which combined with Bland pricing prevents cycling.
		if ratio < limit-tol || (ratio < limit+tol && leave >= 0 && t.basis[r] < t.basis[leave]) {
			limit, leave, leaveAt = ratio, r, at
		}
	}
	// Bound flip: j travels the full distance between its bounds.
	if u := t.ub[j]; u < limit {
		// Flip without changing the basis.
		for r := 0; r < t.m; r++ {
			t.xB[r] -= t.a[r][j] * dir * u
		}
		t.z += t.cost[j] * dir * u
		if t.status[j] == atLower {
			t.status[j] = atUpper
		} else {
			t.status[j] = atLower
		}
		return Optimal
	}
	if leave < 0 {
		return Unbounded
	}
	// Update basic values for a step of size limit.
	t.z += t.cost[j] * dir * limit
	for r := 0; r < t.m; r++ {
		t.xB[r] -= t.a[r][j] * dir * limit
	}
	enterVal := limit
	if t.status[j] == atUpper {
		enterVal = t.ub[j] - limit
	}
	// The leaving variable exits exactly at a bound; clamp away rounding.
	old := t.basis[leave]
	if leaveAt == atLower {
		t.status[old] = atLower
	} else {
		t.status[old] = atUpper
	}
	t.basis[leave] = j
	t.status[j] = basic
	t.xB[leave] = enterVal

	// Gaussian elimination to restore the identity column for j.
	prow := t.a[leave]
	pv := prow[j]
	inv := 1 / pv
	for c := 0; c < t.n; c++ {
		prow[c] *= inv
	}
	prow[j] = 1 // exact
	for r := 0; r < t.m; r++ {
		if r == leave {
			continue
		}
		f := t.a[r][j]
		if f == 0 {
			continue
		}
		row := t.a[r]
		for c := 0; c < t.n; c++ {
			row[c] -= f * prow[c]
		}
		row[j] = 0 // exact
	}
	if f := t.cost[j]; f != 0 {
		for c := 0; c < t.n; c++ {
			t.cost[c] -= f * prow[c]
		}
		t.cost[j] = 0
	}
	return Optimal
}

// dropArtificials removes artificial columns from consideration after a
// successful phase 1: basic artificials (necessarily at value ~0) are pivoted
// out where possible, and every artificial's upper bound is pinned to 0 so
// none can ever carry value again.
func (t *tableau) dropArtificials() {
	artStart := t.n - t.nArt
	for r := 0; r < t.m; r++ {
		if t.basis[r] < artStart {
			continue
		}
		// Try to pivot the artificial out in favor of a non-artificial
		// column with a usable pivot element in this row. Only columns at
		// their lower bound qualify: forcePivot keeps the incoming
		// variable's value at the artificial's (zero), which would be
		// wrong for a column currently sitting at a nonzero upper bound.
		done := false
		for j := 0; j < artStart && !done; j++ {
			if t.status[j] != atLower {
				continue
			}
			if math.Abs(t.a[r][j]) > 1e-7 {
				t.forcePivot(r, j)
				done = true
			}
		}
		// If no pivot exists the row is redundant (all-zero over real
		// columns); the artificial stays basic at value 0, harmless since
		// its bound is pinned below.
	}
	for j := artStart; j < t.n; j++ {
		t.ub[j] = 0
		if t.status[j] == atUpper {
			t.status[j] = atLower
		}
	}
}

// forcePivot performs a degenerate pivot bringing column j into the basis at
// row r. Used only to evict zero-valued artificials, so the basic values do
// not change beyond the swap itself.
func (t *tableau) forcePivot(r, j int) {
	old := t.basis[r]
	t.status[old] = atLower
	t.basis[r] = j
	t.status[j] = basic
	// xB[r] keeps its (zero) value: the incoming variable assumes it.
	prow := t.a[r]
	pv := prow[j]
	inv := 1 / pv
	for c := 0; c < t.n; c++ {
		prow[c] *= inv
	}
	prow[j] = 1
	t.xB[r] *= inv
	for rr := 0; rr < t.m; rr++ {
		if rr == r {
			continue
		}
		f := t.a[rr][j]
		if f == 0 {
			continue
		}
		row := t.a[rr]
		for c := 0; c < t.n; c++ {
			row[c] -= f * prow[c]
		}
		row[j] = 0
		t.xB[rr] -= f * t.xB[r]
	}
	if f := t.cost[j]; f != 0 {
		for c := 0; c < t.n; c++ {
			t.cost[c] -= f * prow[c]
		}
		t.cost[j] = 0
	}
}

// structuralValues extracts the structural part of the current basic
// solution, clamping small negatives introduced by floating point.
func (t *tableau) structuralValues() []float64 {
	x := make([]float64, t.nStruct)
	for j := 0; j < t.nStruct; j++ {
		switch t.status[j] {
		case atUpper:
			x[j] = t.ub[j]
		default:
			x[j] = 0
		}
	}
	for r := 0; r < t.m; r++ {
		if b := t.basis[r]; b < t.nStruct {
			v := t.xB[r]
			if v < 0 && v > -1e-6 {
				v = 0
			}
			x[b] = v
		}
	}
	return x
}
