// Package lp implements a dense, bounded-variable, two-phase primal simplex
// solver for linear programs in the form
//
//	minimize    c·x
//	subject to  a_r·x {≤,=,≥} b_r    for every constraint r
//	            0 ≤ x_j ≤ u_j        for every variable j (u_j may be +∞)
//
// The Go ecosystem has no production pure-Go LP solver and this module is
// restricted to the standard library, so the solver is built from scratch.
// It is the substrate for the LP relaxations used by the paper's unrelated-
// machines algorithms: the relaxation of ILP-UM (Section 3.1) and
// LP-RelaxedRA (Section 3.3). Because it is a simplex method, optimal
// solutions are basic feasible solutions, i.e. extreme points of the
// polytope — exactly the property the pseudoforest rounding of Section 3.3
// relies on.
//
// The implementation uses Dantzig pricing with an automatic switch to
// Bland's rule when the objective stalls, which guarantees termination.
package lp

import (
	"fmt"
	"math"
)

// Sense is the relation of a constraint row.
type Sense int

const (
	// LE is a_r·x ≤ b_r.
	LE Sense = iota
	// GE is a_r·x ≥ b_r.
	GE
	// EQ is a_r·x = b_r.
	EQ
)

// Status reports the outcome of Solve.
type Status int

const (
	// Optimal means an optimal basic feasible solution was found.
	Optimal Status = iota
	// Infeasible means the constraints admit no solution.
	Infeasible
	// Unbounded means the objective is unbounded below.
	Unbounded
)

// String returns the status name.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Term is one coefficient of a constraint row.
type Term struct {
	Var  int
	Coef float64
}

// Problem is a linear program under construction. The zero value is an empty
// problem ready for AddVar/AddConstraint.
//
// Coefficients are stored as append-only (row, var, coef) triplets in three
// flat parallel slices rather than per-row term maps: AddConstraint is pure
// appends (amortized zero allocations per row), and accumulation of repeated
// variables is deferred to the consumers, all of which build additively — the
// dense tableau adds coefficients into cells, and the backends' CSC form
// tolerates duplicate (row, var) entries because every access is a scatter or
// a dot product.
type Problem struct {
	obj  []float64
	ub   []float64
	rows []rowMeta

	// Coefficient triplets, in AddConstraint order: entry t is the
	// coefficient tCoef[t] of variable tVar[t] in row tRow[t].
	tRow  []int32
	tVar  []int32
	tCoef []float64
}

// rowMeta is the per-constraint metadata (the coefficients live in the
// problem-wide triplet slices).
type rowMeta struct {
	sense Sense
	rhs   float64
}

// NumVars returns the number of variables added so far.
func (p *Problem) NumVars() int { return len(p.obj) }

// NumRows returns the number of constraints added so far.
func (p *Problem) NumRows() int { return len(p.rows) }

// AddVar appends a variable with objective coefficient obj and upper bound
// upper (use math.Inf(1) for an unbounded variable) and returns its index.
// All variables have lower bound 0.
func (p *Problem) AddVar(obj, upper float64) int {
	if upper < 0 || math.IsNaN(upper) || math.IsNaN(obj) || math.IsInf(obj, 0) {
		panic(fmt.Sprintf("lp: invalid variable (obj=%v, upper=%v)", obj, upper))
	}
	p.obj = append(p.obj, obj)
	p.ub = append(p.ub, upper)
	return len(p.obj) - 1
}

// AddConstraint appends the constraint Σ terms {≤,=,≥} rhs. Terms may repeat
// a variable; coefficients are accumulated (additively, by the consumers of
// the triplet storage). Referencing a variable that has not been added panics
// (a construction bug, not an input condition).
func (p *Problem) AddConstraint(sense Sense, rhs float64, terms ...Term) {
	if math.IsNaN(rhs) || math.IsInf(rhs, 0) {
		panic(fmt.Sprintf("lp: invalid rhs %v", rhs))
	}
	r := int32(len(p.rows))
	p.rows = append(p.rows, rowMeta{sense: sense, rhs: rhs})
	for _, t := range terms {
		if t.Var < 0 || t.Var >= len(p.obj) {
			panic(fmt.Sprintf("lp: constraint references unknown variable %d", t.Var))
		}
		if math.IsNaN(t.Coef) || math.IsInf(t.Coef, 0) {
			panic(fmt.Sprintf("lp: invalid coefficient %v", t.Coef))
		}
		if t.Coef == 0 {
			continue
		}
		p.tRow = append(p.tRow, r)
		p.tVar = append(p.tVar, int32(t.Var))
		p.tCoef = append(p.tCoef, t.Coef)
	}
}

// AddTerm appends one coefficient triplet to an existing constraint row.
// Because the triplet storage is additive, a repeated (row, var) pair
// accumulates onto the earlier coefficient — AddTerm(r, {v, Δ}) is therefore
// also the in-place idiom for changing an existing coefficient by Δ without
// rewriting the row. Backends built before the call do not observe it; the
// incremental re-solve pipeline extends a retained Problem this way and then
// rebuilds its backend, transplanting the old basis (see ExtendBasis).
func (p *Problem) AddTerm(row int, t Term) {
	if row < 0 || row >= len(p.rows) {
		panic(fmt.Sprintf("lp: AddTerm references unknown row %d", row))
	}
	if t.Var < 0 || t.Var >= len(p.obj) {
		panic(fmt.Sprintf("lp: AddTerm references unknown variable %d", t.Var))
	}
	if math.IsNaN(t.Coef) || math.IsInf(t.Coef, 0) {
		panic(fmt.Sprintf("lp: invalid coefficient %v", t.Coef))
	}
	if t.Coef == 0 {
		return
	}
	p.tRow = append(p.tRow, int32(row))
	p.tVar = append(p.tVar, int32(t.Var))
	p.tCoef = append(p.tCoef, t.Coef)
}

// Solution is the result of Solve.
type Solution struct {
	// Status is Optimal, Infeasible or Unbounded.
	Status Status
	// X holds the values of the structural variables (valid when Optimal).
	X []float64
	// Objective is c·X (valid when Optimal).
	Objective float64
	// Iterations is the total number of simplex pivots performed.
	Iterations int
	// Presolve reports what the reduction pipeline did for this backend,
	// when the solve ran through one (nil otherwise). See WithPresolve.
	Presolve *PresolveInfo
}

// Value returns the value of variable v in the solution.
func (s *Solution) Value(v int) float64 { return s.X[v] }
