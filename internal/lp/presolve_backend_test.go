package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomInfeasibleSpec builds LPs that are infeasible by construction:
// either a pair of contradicting equalities or a GE row whose activity can
// never reach the rhs under the box bounds.
func randomInfeasibleSpec(rng *rand.Rand) *problemSpec {
	d := 2 + rng.Intn(4)
	ps := &problemSpec{}
	for j := 0; j < d; j++ {
		ps.obj = append(ps.obj, rng.NormFloat64())
		ps.ub = append(ps.ub, 1+rng.Float64()*2)
	}
	if rng.Float64() < 0.5 {
		var terms []Term
		for j := 0; j < d; j++ {
			terms = append(terms, Term{j, 1 + rng.Float64()})
		}
		ps.rows = append(ps.rows, specRow{EQ, 2, terms})
		ps.rows = append(ps.rows, specRow{EQ, 5, terms})
	} else {
		var terms []Term
		cap := 0.0
		for j := 0; j < d; j++ {
			c := 0.5 + rng.Float64()
			terms = append(terms, Term{j, c})
			cap += c * ps.ub[j]
		}
		ps.rows = append(ps.rows, specRow{GE, cap * (1.5 + rng.Float64()), terms})
	}
	// A few innocent LE rows so presolve has material besides the
	// contradiction.
	for r := 0; r < rng.Intn(3); r++ {
		var terms []Term
		for j := 0; j < d; j++ {
			if rng.Float64() < 0.6 {
				terms = append(terms, Term{j, rng.Float64() * 2})
			}
		}
		if len(terms) > 0 {
			ps.rows = append(ps.rows, specRow{LE, 1 + rng.Float64()*6, terms})
		}
	}
	return ps
}

// TestPresolveDifferentialCorpus is the acceptance differential for the
// reduction pipeline: on random box/eq/mixed/infeasible LPs, every backend
// solved through presolve must reproduce the verdict and objective of the
// same backend solved without it, the postsolved primal point must be
// feasible in the original problem, and the postsolved basis must be
// transplantable into a fresh unpresolved backend that then re-certifies
// the same verdict.
func TestPresolveDifferentialCorpus(t *testing.T) {
	gens := map[string]func(*rand.Rand) *problemSpec{
		"box":        randomBoxSpec,
		"eq":         randomEqSpec,
		"mixed":      randomMixedSpec,
		"infeasible": randomInfeasibleSpec,
	}
	for name, gen := range gens {
		gen := gen
		t.Run(name, func(t *testing.T) {
			for _, kind := range []BackendKind{Dense, Sparse, IPM} {
				kind := kind
				t.Run(string(kind), func(t *testing.T) {
					f := func(seed int64) bool {
						rng := rand.New(rand.NewSource(seed))
						ps := gen(rng)
						off, err := NewBackend(kind, ps.build(), nil, WithPresolve(false))
						if err != nil {
							t.Fatalf("NewBackend(off): %v", err)
						}
						ref, err := off.Solve()
						if err != nil {
							t.Fatalf("off Solve: %v", err)
						}
						on, err := NewBackend(kind, ps.build(), nil)
						if err != nil {
							t.Fatalf("NewBackend(on): %v", err)
						}
						sol, err := on.Solve()
						if err != nil {
							t.Fatalf("presolved Solve: %v", err)
						}
						if sol.Status != ref.Status {
							t.Fatalf("status %v with presolve, %v without", sol.Status, ref.Status)
						}
						if sol.Presolve == nil {
							t.Fatal("Solution.Presolve not populated on the presolve path")
						}
						if sol.Status != Optimal {
							return true
						}
						if math.Abs(sol.Objective-ref.Objective) > 1e-6 {
							t.Fatalf("objective %v with presolve, %v without", sol.Objective, ref.Objective)
						}
						agree(t, ps, "presolved "+string(kind), ref, cloneSolution(sol))
						// Basis postsolve: the mapped basis must be accepted
						// by a fresh concrete backend and re-certify the same
						// optimum (cleanup pivots allowed).
						if b := on.Basis(); b != nil {
							fresh, err := NewBackend(Sparse, ps.build(), nil, WithPresolve(false))
							if err != nil {
								t.Fatalf("NewBackend(fresh): %v", err)
							}
							if err := fresh.Warm(b); err == nil {
								ws, err := fresh.Solve()
								if err != nil {
									t.Fatalf("warm Solve from postsolved basis: %v", err)
								}
								if ws.Status != Optimal || math.Abs(ws.Objective-ref.Objective) > 1e-6 {
									t.Fatalf("postsolved-basis warm solve: status %v obj %v, want optimal %v",
										ws.Status, ws.Objective, ref.Objective)
								}
							}
						}
						return true
					}
					if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
						t.Error(err)
					}
				})
			}
		})
	}
}

// TestPresolveWarmTrajectoryEquivalence drives the rounding search's exact
// access pattern — clamp x_ij with p_ij > T to 0, restore on upward moves,
// shrink the load RHS — for 9 steps on a scheduling-shaped LP, with
// presolve on and off side by side. Verdicts and objectives must match at
// every step, and the presolved backend must stay on its reduced problem
// (no bypass): the trajectory only writes values the recorded reductions
// already account for.
func TestPresolveWarmTrajectoryEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ub := 16.0
		ps := schedSpec(rng, 3, 18, 3, ub)
		for _, kind := range []BackendKind{Dense, Sparse, IPM} {
			on, err := NewBackend(kind, ps.build(), nil)
			if err != nil {
				t.Fatal(err)
			}
			off, err := NewBackend(kind, ps.build(), nil, WithPresolve(false))
			if err != nil {
				t.Fatal(err)
			}
			// Per-variable "processing times" to clamp against, mirroring
			// constraint (5) of the relaxation: x-var j is banned when
			// p[j] > T.
			p := make([]float64, len(ps.ub))
			for j := range p {
				p[j] = rng.Float64() * ub
			}
			banned := make([]bool, len(ps.ub))
			T := ub
			for step := 0; step < 9; step++ {
				for j := range p {
					now := p[j] > T
					if now == banned[j] {
						continue
					}
					u := ps.ub[j]
					if now {
						u = 0
					}
					on.SetVarUpper(j, u)
					off.SetVarUpper(j, u)
					banned[j] = now
				}
				for r := 0; r < 3; r++ { // load rows carry the guess
					on.SetRHS(r, T)
					off.SetRHS(r, T)
				}
				a, err := on.Solve()
				if err != nil {
					t.Fatalf("%s seed %d step %d: presolved: %v", kind, seed, step, err)
				}
				b, err := off.Solve()
				if err != nil {
					t.Fatalf("%s seed %d step %d: plain: %v", kind, seed, step, err)
				}
				if a.Status != b.Status {
					t.Fatalf("%s seed %d step %d (T=%g): presolved %v, plain %v",
						kind, seed, step, T, a.Status, b.Status)
				}
				if a.Status == Optimal && math.Abs(a.Objective-b.Objective) > 1e-6 {
					t.Fatalf("%s seed %d step %d: objective %v vs %v",
						kind, seed, step, a.Objective, b.Objective)
				}
				if a.Presolve != nil && a.Presolve.Bypassed {
					t.Fatalf("%s seed %d step %d: trajectory bypassed the presolve wrapper", kind, seed, step)
				}
				T *= 0.85
			}
		}
	}
}

// TestPresolveCloneIndependence: clones of a presolved backend must not
// share mutable clamp state — divergent SetVarUpper trajectories on parent
// and clone must both match their unpresolved twins.
func TestPresolveCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ps := schedSpec(rng, 3, 12, 2, 12)
	on, err := NewBackend(Sparse, ps.build(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := on.Solve(); err != nil {
		t.Fatal(err)
	}
	cl := on.Clone()
	// Parent clamps column 0, clone clamps column 1.
	on.SetVarUpper(0, 0)
	cl.SetVarUpper(1, 0)
	for i, be := range []Backend{on, cl} {
		psi := ps.clone()
		psi.ub[i] = 0
		ref, err := NewBackend(Sparse, psi.build(), nil, WithPresolve(false))
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.Solve()
		if err != nil {
			t.Fatal(err)
		}
		got, err := be.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if got.Status != want.Status {
			t.Fatalf("backend %d: status %v, want %v", i, got.Status, want.Status)
		}
		if got.Status == Optimal && math.Abs(got.Objective-want.Objective) > 1e-6 {
			t.Fatalf("backend %d: objective %v, want %v", i, got.Objective, want.Objective)
		}
	}
}
