package lp

import (
	"math"
	"testing"
)

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return sol
}

func TestTrivialMinimum(t *testing.T) {
	// min x s.t. x >= 3
	p := &Problem{}
	x := p.AddVar(1, math.Inf(1))
	p.AddConstraint(GE, 3, Term{x, 1})
	sol := solveOK(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if math.Abs(sol.X[x]-3) > 1e-7 {
		t.Errorf("x = %v, want 3", sol.X[x])
	}
}

func TestTwoVarLP(t *testing.T) {
	// max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (classic Dantzig
	// example; optimum (2,6) value 36). We minimize the negation.
	p := &Problem{}
	x := p.AddVar(-3, math.Inf(1))
	y := p.AddVar(-5, math.Inf(1))
	p.AddConstraint(LE, 4, Term{x, 1})
	p.AddConstraint(LE, 12, Term{y, 2})
	p.AddConstraint(LE, 18, Term{x, 3}, Term{y, 2})
	sol := solveOK(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective+36) > 1e-6 {
		t.Errorf("objective = %v, want -36", sol.Objective)
	}
	if math.Abs(sol.X[x]-2) > 1e-6 || math.Abs(sol.X[y]-6) > 1e-6 {
		t.Errorf("solution = (%v,%v), want (2,6)", sol.X[x], sol.X[y])
	}
}

func TestEqualityConstraint(t *testing.T) {
	// min x+y s.t. x+y = 5, x <= 2  => optimum 5 with x in [0,2].
	p := &Problem{}
	x := p.AddVar(1, 2)
	y := p.AddVar(1, math.Inf(1))
	p.AddConstraint(EQ, 5, Term{x, 1}, Term{y, 1})
	sol := solveOK(t, p)
	if sol.Status != Optimal || math.Abs(sol.Objective-5) > 1e-6 {
		t.Fatalf("status=%v obj=%v, want optimal 5", sol.Status, sol.Objective)
	}
	if sol.X[x]+sol.X[y] < 5-1e-6 || sol.X[x] > 2+1e-9 {
		t.Errorf("infeasible solution (%v,%v)", sol.X[x], sol.X[y])
	}
}

func TestInfeasible(t *testing.T) {
	// x <= 1 and x >= 2.
	p := &Problem{}
	x := p.AddVar(0, math.Inf(1))
	p.AddConstraint(LE, 1, Term{x, 1})
	p.AddConstraint(GE, 2, Term{x, 1})
	sol := solveOK(t, p)
	if sol.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
}

func TestInfeasibleByUpperBound(t *testing.T) {
	// x <= 1 (bound) but x >= 2 (row).
	p := &Problem{}
	x := p.AddVar(0, 1)
	p.AddConstraint(GE, 2, Term{x, 1})
	sol := solveOK(t, p)
	if sol.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	// min -x with x free above.
	p := &Problem{}
	x := p.AddVar(-1, math.Inf(1))
	p.AddConstraint(GE, 0, Term{x, 1})
	sol := solveOK(t, p)
	if sol.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", sol.Status)
	}
}

func TestUpperBoundsRespected(t *testing.T) {
	// min -x - y with x <= 1.5, y <= 2.5 and x + y <= 3: optimum is on the
	// constraint + bound mix; value -(3) with x=1.5 (bound), y=1.5 or
	// x=0.5,y=2.5. Objective is what matters.
	p := &Problem{}
	x := p.AddVar(-1, 1.5)
	y := p.AddVar(-1, 2.5)
	p.AddConstraint(LE, 3, Term{x, 1}, Term{y, 1})
	sol := solveOK(t, p)
	if sol.Status != Optimal || math.Abs(sol.Objective+3) > 1e-6 {
		t.Fatalf("obj = %v, want -3", sol.Objective)
	}
	if sol.X[x] > 1.5+1e-9 || sol.X[y] > 2.5+1e-9 {
		t.Errorf("bounds violated: %v", sol.X)
	}
}

func TestBoundFlipPath(t *testing.T) {
	// Pure bound-flip optimum: min -x1 -x2 -x3 with xi <= 1, no binding rows
	// except a loose one.
	p := &Problem{}
	var vs []int
	for i := 0; i < 3; i++ {
		vs = append(vs, p.AddVar(-1, 1))
	}
	p.AddConstraint(LE, 100, Term{vs[0], 1}, Term{vs[1], 1}, Term{vs[2], 1})
	sol := solveOK(t, p)
	if math.Abs(sol.Objective+3) > 1e-7 {
		t.Errorf("objective = %v, want -3 (all vars at upper bound)", sol.Objective)
	}
}

func TestNegativeRHS(t *testing.T) {
	// -x <= -2 means x >= 2; min x should give 2.
	p := &Problem{}
	x := p.AddVar(1, math.Inf(1))
	p.AddConstraint(LE, -2, Term{x, -1})
	sol := solveOK(t, p)
	if sol.Status != Optimal || math.Abs(sol.X[x]-2) > 1e-7 {
		t.Errorf("x = %v (status %v), want 2", sol.X[x], sol.Status)
	}
}

func TestDuplicateTermsAccumulate(t *testing.T) {
	// x + x >= 4 => x >= 2.
	p := &Problem{}
	x := p.AddVar(1, math.Inf(1))
	p.AddConstraint(GE, 4, Term{x, 1}, Term{x, 1})
	sol := solveOK(t, p)
	if math.Abs(sol.X[x]-2) > 1e-7 {
		t.Errorf("x = %v, want 2", sol.X[x])
	}
}

func TestDegenerateLP(t *testing.T) {
	// A degenerate vertex: multiple constraints meet at the optimum.
	p := &Problem{}
	x := p.AddVar(-1, math.Inf(1))
	y := p.AddVar(-1, math.Inf(1))
	p.AddConstraint(LE, 1, Term{x, 1})
	p.AddConstraint(LE, 1, Term{y, 1})
	p.AddConstraint(LE, 2, Term{x, 1}, Term{y, 1})
	p.AddConstraint(LE, 2, Term{x, 2}, Term{y, 1}, Term{y, -1}) // 2x <= 2, redundant with x<=1
	sol := solveOK(t, p)
	if math.Abs(sol.Objective+2) > 1e-6 {
		t.Errorf("objective = %v, want -2", sol.Objective)
	}
}

func TestZeroRowsProblem(t *testing.T) {
	// No constraints at all: bounded vars only.
	p := &Problem{}
	x := p.AddVar(-2, 3)
	sol := solveOK(t, p)
	if sol.Status != Optimal || math.Abs(sol.X[x]-3) > 1e-9 {
		t.Errorf("x = %v (status %v), want 3", sol.X[x], sol.Status)
	}
}

func TestTransportationLP(t *testing.T) {
	// 2 supplies (cap 10, 20), 3 demands (7, 8, 9); costs chosen so the
	// optimum is known: greedy by cost works here.
	// costs: s0: [1 5 5], s1: [4 2 1].
	p := &Problem{}
	cost := [][]float64{{1, 5, 5}, {4, 2, 1}}
	caps := []float64{10, 20}
	dem := []float64{7, 8, 9}
	x := make([][]int, 2)
	for i := range x {
		x[i] = make([]int, 3)
		for j := range x[i] {
			x[i][j] = p.AddVar(cost[i][j], math.Inf(1))
		}
	}
	for i := range caps {
		terms := []Term{}
		for j := range dem {
			terms = append(terms, Term{x[i][j], 1})
		}
		p.AddConstraint(LE, caps[i], terms...)
	}
	for j := range dem {
		terms := []Term{}
		for i := range caps {
			terms = append(terms, Term{x[i][j], 1})
		}
		p.AddConstraint(EQ, dem[j], terms...)
	}
	sol := solveOK(t, p)
	// Optimal: x00=7 (7), x11=8 (16), x12=9 (9) => 32.
	if sol.Status != Optimal || math.Abs(sol.Objective-32) > 1e-6 {
		t.Errorf("objective = %v (status %v), want 32", sol.Objective, sol.Status)
	}
}

func TestSolutionValue(t *testing.T) {
	p := &Problem{}
	x := p.AddVar(1, math.Inf(1))
	p.AddConstraint(GE, 7, Term{x, 1})
	sol := solveOK(t, p)
	if got := sol.Value(x); math.Abs(got-7) > 1e-7 {
		t.Errorf("Value = %v, want 7", got)
	}
}

func TestAddVarPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AddVar with negative upper bound did not panic")
		}
	}()
	p := &Problem{}
	p.AddVar(0, -1)
}

func TestAddConstraintPanicsOnUnknownVar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AddConstraint with unknown variable did not panic")
		}
	}()
	p := &Problem{}
	p.AddConstraint(LE, 1, Term{5, 1})
}

func TestStatusString(t *testing.T) {
	for st, want := range map[Status]string{
		Optimal: "optimal", Infeasible: "infeasible", Unbounded: "unbounded",
		Status(9): "Status(9)",
	} {
		if got := st.String(); got != want {
			t.Errorf("Status(%d).String() = %q, want %q", int(st), got, want)
		}
	}
}
